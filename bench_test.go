package ivory

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding experiment from scratch, so `go test
// -bench=.` both times the pipeline and re-checks that every experiment
// still completes. Custom metrics surface the headline numbers
// (speedup, efficiency, noise, improvement) in the bench output.

import (
	"math"
	"testing"

	"ivory/internal/experiments"
	"ivory/internal/spice"
	"ivory/internal/topology"
)

func BenchmarkFig4SpeedupSweep(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(2e-6)
		if err != nil {
			b.Fatal(err)
		}
		last = r.Rows[len(r.Rows)-1].Speedup
	}
	b.ReportMetric(last, "peak-speedup-x")
}

func BenchmarkFig6RegulationSpectrum(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Tones[0].Ratio
	}
	b.ReportMetric(ratio, "subfsw-conv/cap")
}

func BenchmarkFig7SCValidation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, c := range r.Cases {
			if c.MaxErr > worst {
				worst = c.MaxErr
			}
		}
	}
	b.ReportMetric(worst*100, "max-err-pp")
}

func BenchmarkFig8BuckValidation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, c := range r.Cases {
			if c.MaxErr > worst {
				worst = c.MaxErr
			}
		}
	}
	b.ReportMetric(worst*100, "max-err-pp")
}

func BenchmarkFig9TransientValidation(b *testing.B) {
	var rmse float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		rmse = r.CycleRMSE
	}
	b.ReportMetric(rmse*1e3, "cycle-rmse-mV")
}

func BenchmarkTable2Exploration(b *testing.B) {
	var scEff float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range t.Rows {
			if row.Kind.String() == "SC" {
				for j, ok := range row.Feasible {
					if ok {
						scEff = row.Efficiency[j]
						break
					}
					_ = j
				}
			}
		}
	}
	b.ReportMetric(scEff*100, "sc-eff-pct")
}

func BenchmarkFig10NoiseAnalysis(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(10e-6, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
		worst = r.NoiseByConfig["off-chip VRM"]
	}
	b.ReportMetric(worst*1e3, "offchip-noise-mV")
}

func BenchmarkFig11CFDWaveforms(b *testing.B) {
	var four float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(10e-6, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
		four = r.NoiseByConfig["4 distributed IVRs"]
		_ = r.FormatFig11()
	}
	b.ReportMetric(four*1e3, "4ivr-noise-mV")
}

func BenchmarkFig12AreaTradeoff(b *testing.B) {
	var cross float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		cross = r.CrossoverMM2
	}
	b.ReportMetric(cross, "sc-beats-buck-mm2")
}

func BenchmarkFig13PowerBreakdown(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		noise, err := experiments.Fig10(10e-6, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
		r, err := experiments.Fig13(noise)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.ImprovementPP
	}
	b.ReportMetric(gain, "ivr-gain-pp")
}

// Extension benches: the ablation studies and future-work explorations.

func BenchmarkAblations(b *testing.B) {
	var recyclingGain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Name == "bottom-plate charge recycling" {
				recyclingGain = row.Baseline - row.Ablated
			}
		}
	}
	b.ReportMetric(recyclingGain, "recycling-gain-pp")
}

func BenchmarkTwoStageExploration(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TwoStage()
		if err != nil {
			b.Fatal(err)
		}
		if r.Inner.Best != nil {
			best = r.Inner.Best.Combined
		}
	}
	b.ReportMetric(best*100, "best-twostage-pct")
}

func BenchmarkGearEnvelope(b *testing.B) {
	var shift float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Gears()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.ShiftV) > 0 {
			shift = r.ShiftV[0]
		}
	}
	b.ReportMetric(shift, "gear-shift-V")
}

func BenchmarkGridScale(b *testing.B) {
	var ratio4 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.GridScale()
		if err != nil {
			b.Fatal(err)
		}
		ratio4 = r.Rows[2].Ratio
	}
	b.ReportMetric(ratio4, "4ivr-grid-ratio")
}

func BenchmarkFamilyTransients(b *testing.B) {
	var scDroop float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.FamilyTransients()
		if err != nil {
			b.Fatal(err)
		}
		scDroop = r.Rows[0].WorstDroopMV
	}
	b.ReportMetric(scDroop, "sc-droop-mV")
}

func BenchmarkFastDVFS(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.FastDVFS()
		if err != nil {
			b.Fatal(err)
		}
		saving = r.Rows[0].EnergySavingPct
	}
	b.ReportMetric(saving, "subus-saving-pct")
}

func BenchmarkHybridSweep(b *testing.B) {
	var bestEff float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Hybrid()
		if err != nil {
			b.Fatal(err)
		}
		if best := r.Best(); best != nil {
			bestEff = best.Efficiency
		}
	}
	b.ReportMetric(bestEff*100, "best-hybrid-eff-pct")
}

// Component-level micro-benchmarks: the building blocks whose speed makes
// the 10^3-10^5x modeling advantage possible.

func BenchmarkStaticSCEvaluate(b *testing.B) {
	spec := CaseStudySpec("45nm")
	res, err := Explore(spec)
	if err != nil {
		b.Fatal(err)
	}
	c, ok := res.BestOfKind(KindSC)
	if !ok {
		b.Fatal("no SC design")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SC.Evaluate(spec.IMax); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreFullSpace(b *testing.B) {
	spec := CaseStudySpec("45nm")
	for i := 0; i < b.N; i++ {
		if _, err := Explore(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreAdaptive times the pruned search on the same case-study
// spec as BenchmarkExploreFullSpace, so the pair quantifies the adaptive
// speedup directly. The eval-ratio metric is the exhaustive candidate count
// over the number the adaptive run actually sized (the equivalence tests in
// internal/core pin that both modes return the same ranked winners).
func BenchmarkExploreAdaptive(b *testing.B) {
	spec := CaseStudySpec("45nm")
	spec.Search = SearchAdaptive
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := Explore(spec)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(res.Stats.Evaluated()+res.Stats.Pruned()) / float64(res.Stats.Evaluated())
	}
	b.ReportMetric(ratio, "eval-ratio-x")
}

// BenchmarkExploreSerial/Parallel time the same full-space exploration with
// one worker versus one per CPU. The outputs are bit-identical (enforced by
// TestExploreDeterministicAcrossWorkers); only wall-clock differs.

func BenchmarkExploreSerial(b *testing.B) {
	spec := CaseStudySpec("45nm")
	spec.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Explore(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreParallel(b *testing.B) {
	spec := CaseStudySpec("45nm")
	spec.Workers = 0 // one worker per CPU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Explore(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceIVRs times the greedy placement on the case-study mesh at
// the hardest distribution count of the grid-scaling experiment.
func BenchmarkPlaceIVRs(b *testing.B) {
	m, err := NewGridMesh(24, 24, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	cores := m.QuadCores()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PlaceIVRs(8, cores); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyAnalyze(b *testing.B) {
	top, err := Ladder(7, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicSCMicrosecond(b *testing.B) {
	spec := CaseStudySpec("45nm")
	res, err := Explore(spec)
	if err != nil {
		b.Fatal(err)
	}
	c, _ := res.BestOfKind(KindSC)
	params, err := SCDynamicParams(c.SC, spec.IMax)
	if err != nil {
		b.Fatal(err)
	}
	sim := &SCSimulator{P: params}
	dt := 1 / (params.FClk * float64(maxi(params.Interleave, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(ConstantSignal(spec.IMax/2), ConstantSignal(spec.VOut), 1e-6, dt); err != nil {
			b.Fatal(err)
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkVariationStudy(b *testing.B) {
	var std float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Variation(100, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		std = r.Stats.Std
	}
	b.ReportMetric(std*100, "eff-sigma-pp")
}

func BenchmarkNodeSweep(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.NodeSweep()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Feasible && row.Efficiency > best {
				best = row.Efficiency
			}
		}
	}
	b.ReportMetric(best*100, "best-node-eff-pct")
}

// --- MNA kernel benchmarks (spice transient + AC) ---------------------------
//
// BenchmarkTransient and BenchmarkAC time the converter-level MNA simulator
// on the two committed netlist families (synchronous buck, 2:1
// series-parallel SC). They are the gate for the structure-aware kernel
// work: the transient loop must stay allocation-free per step and the AC
// sweep must reuse one symbolic factorization across frequencies.

func benchBuckCircuit(b *testing.B) *spice.Circuit {
	b.Helper()
	ckt, err := spice.BuildBuck(spice.BuckOptions{
		VIn: 3.3, Duty: 0.4, FSw: 20e6,
		L: 100e-9, RL: 0.05, COut: 1e-6,
		RHigh: 0.05, RLow: 0.05,
		ILoad: 1.0,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ckt
}

func benchSC21Circuit(b *testing.B) *spice.Circuit {
	b.Helper()
	top, err := topology.SeriesParallel(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	an, err := top.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	ctot, gtot := 10e-9, 100.0
	caps := make([]float64, an.NumCaps)
	for i, m := range an.CapMultipliers {
		caps[i] = ctot * m / an.SumAC
	}
	rons := make([]float64, an.NumSwitches)
	for i, m := range an.SwitchMultipliers {
		rons[i] = an.SumAR / (gtot * m)
	}
	ckt, err := spice.BuildSC(top, an, caps, rons, spice.SCOptions{
		VIn: 2.0, FSw: 50e6, CLoad: 20e-9, ILoad: 0.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ckt
}

func BenchmarkTransient(b *testing.B) {
	run := func(fsw float64, build func(*testing.B) *spice.Circuit) func(*testing.B) {
		return func(b *testing.B) {
			h := 1 / (fsw * 64)
			T := 40 / fsw
			var steps int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ckt := build(b)
				res, err := ckt.Tran(h, T)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "steps")
		}
	}
	b.Run("buck", run(20e6, benchBuckCircuit))
	b.Run("sc21", run(50e6, benchSC21Circuit))
}

func BenchmarkAC(b *testing.B) {
	freqs := make([]float64, 200)
	for i := range freqs {
		freqs[i] = 1e3 * math.Pow(10, 6*float64(i)/float64(len(freqs)-1))
	}
	run := func(build func(*testing.B) *spice.Circuit) func(*testing.B) {
		return func(b *testing.B) {
			ckt := build(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ckt.AC(freqs, "vsrc"); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("buck", run(benchBuckCircuit))
	b.Run("sc21", run(benchSC21Circuit))
}
