// Package ivory is a high-level design space exploration tool for
// integrated voltage regulators (IVRs), reproducing the system described in
// "Ivory: Early-Stage Design Space Exploration Tool for Integrated Voltage
// Regulators" (DAC 2017).
//
// Ivory models the three mainstream IVR topologies — switched-capacitor
// converters (Seeman charge-multiplier methodology), buck converters with
// frequency-dependent integrated inductors, and digital low-dropout linear
// regulators — on top of a built-in technology database spanning 130 nm to
// 10 nm. It evaluates conversion efficiency, static ripple, and die area;
// derives full dynamic voltage waveforms under load transients and fast
// DVFS with a combined cycle-by-cycle + in-cycle model; and explores the
// design space (topology x ratio x sizing x interleaving x distribution)
// under an area budget. An MNA-based transient circuit simulator is
// included as the validation baseline.
//
// Quick start:
//
//	spec := ivory.Spec{NodeName: "45nm", VIn: 3.3, VOut: 1.0, IMax: 6, AreaMax: 6e-6}
//	res, err := ivory.Explore(spec)
//	// res.Best.Metrics.Efficiency, res.Best.Metrics.FSw, ...
//
// The package is a façade: the implementation lives in the internal
// packages (topology, sc, buck, ldo, pdn, spice, dynamic, workload, pds,
// core), re-exported here as type aliases so downstream users need a single
// import.
package ivory

import (
	"io"

	"ivory/internal/buck"
	"ivory/internal/core"
	"ivory/internal/dynamic"
	"ivory/internal/grid"
	"ivory/internal/ivr"
	"ivory/internal/ldo"
	"ivory/internal/parallel"
	"ivory/internal/pdn"
	"ivory/internal/pds"
	"ivory/internal/sc"
	"ivory/internal/server"
	"ivory/internal/spice"
	"ivory/internal/tech"
	"ivory/internal/topology"
	"ivory/internal/workload"
)

// Design-space exploration (the paper's design optimization module).
type (
	// Spec is the user's high-level input (paper Table 1).
	Spec = core.Spec
	// Objective selects the optimization target.
	Objective = core.Objective
	// Kind identifies a converter family.
	Kind = core.Kind
	// Candidate is one evaluated design point.
	Candidate = core.Candidate
	// ExplorationResult holds ranked candidates.
	ExplorationResult = core.Result
	// DistributionTable is the paper's Table 2 output.
	DistributionTable = core.DistributionTable
	// ExploreStats is the run-telemetry record of one exploration: job and
	// per-family accept/reject counts, topology-cache and grid-solver
	// counters, wall time, and throughput. A snapshot is handed to
	// Spec.Progress after every completed job and the final record is on
	// ExplorationResult.Stats.
	ExploreStats = core.Stats
	// ExploreKindStats is one converter family's accept/reject tally.
	ExploreKindStats = core.KindStats
	// SearchStrategy selects how Explore walks the configuration lattice:
	// the exhaustive reference sweep, or the adaptive bound-and-halve mode
	// that skips dominated candidates without sizing them (Spec.Search).
	SearchStrategy = core.SearchStrategy
	// PanicError wraps a panic that escaped an exploration job; it is
	// re-raised on the caller's goroutine tagged with the job index.
	PanicError = parallel.PanicError
)

// Objective and kind constants.
const (
	MaxEfficiency = core.MaxEfficiency
	MinArea       = core.MinArea
	MinNoise      = core.MinNoise

	KindSC   = core.KindSC
	KindBuck = core.KindBuck
	KindLDO  = core.KindLDO

	SearchExhaustive = core.SearchExhaustive
	SearchAdaptive   = core.SearchAdaptive
)

// Explore runs the design optimizer over the spec.
func Explore(spec Spec) (*ExplorationResult, error) { return core.Explore(spec) }

// ParseObjective maps "eff"/"area"/"noise" (or the canonical long forms)
// to an Objective.
func ParseObjective(s string) (Objective, error) { return core.ParseObjective(s) }

// ParseKind maps "SC"/"buck"/"LDO" (case-insensitive) to a Kind.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// ParseSearch maps "exhaustive"/"adaptive" (and the aliases "full" and
// "pruned"; "" selects exhaustive) to a SearchStrategy.
func ParseSearch(s string) (SearchStrategy, error) { return core.ParseSearch(s) }

// Serving: the DTO schema and server core behind cmd/ivoryd. The same
// types back `ivory explore -json`, so CLI output and service responses
// are byte-compatible.
type (
	// SpecDTO is the JSON wire form of Spec (engine inputs only).
	SpecDTO = server.SpecDTO
	// ExploreRequest is the body of POST /v1/explore.
	ExploreRequest = server.ExploreRequest
	// ExploreResponse is a completed exploration in wire form.
	ExploreResponse = server.ExploreResponse
	// ExploreCandidate is one ranked design point in wire form.
	ExploreCandidate = server.CandidateDTO
	// TransientRequest is the body of POST /v1/transient.
	TransientRequest = server.TransientRequest
	// TransientResponse is a completed transient noise sweep in wire form.
	TransientResponse = server.TransientResponse
	// Server is the ivoryd serving core (queue, cache, metrics, drain).
	Server = server.Server
	// ServerConfig sizes a Server; the zero value uses production defaults.
	ServerConfig = server.Config
)

// NewServer builds the ivoryd serving core.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewExploreResponse converts an exploration result — complete, or the
// ranked partial of a cancelled run — into the shared wire form. runErr is
// the error Explore returned alongside a partial result (nil when the run
// completed).
func NewExploreResponse(res *ExplorationResult, runErr error) *ExploreResponse {
	return server.ExploreResponseFromResult(res, runErr)
}

// SpecHash returns the canonical cache/coalescing key of a normalized
// spec (see Spec.Normalized).
func SpecHash(spec Spec) string { return server.SpecHash(spec) }

// ExploreDistribution evaluates every family at each distribution count.
func ExploreDistribution(spec Spec, counts []int) (*DistributionTable, error) {
	return core.ExploreDistribution(spec, counts)
}

// CaseStudySpec returns the GPU case-study input of the paper's Table 1.
func CaseStudySpec(node string) Spec { return core.CaseStudySpec(node) }

// Technology database.
type (
	// TechNode is one technology-node entry.
	TechNode = tech.Node
	// SwitchDevice is a power-switch option.
	SwitchDevice = tech.SwitchDevice
	// CapacitorOption is an on-chip capacitor flavour.
	CapacitorOption = tech.CapacitorOption
	// InductorOption is an inductor implementation.
	InductorOption = tech.InductorOption
)

// Capacitor and inductor kind constants.
const (
	MOSCap             = tech.MOSCap
	MIMCap             = tech.MIMCap
	DeepTrench         = tech.DeepTrench
	SurfaceMount       = tech.SurfaceMount
	IntegratedThinFilm = tech.IntegratedThinFilm
)

// LookupNode returns a technology node by name (e.g. "45nm").
func LookupNode(name string) (*TechNode, error) { return tech.Lookup(name) }

// TechNodes lists the registered node names.
func TechNodes() []string { return tech.Nodes() }

// AddTechNode registers a user-supplied node.
func AddTechNode(n *TechNode) error { return tech.AddNode(n) }

// Topologies and charge-multiplier analysis.
type (
	// Topology is a two-phase SC netlist.
	Topology = topology.Topology
	// TopologyAnalysis holds the ratio and charge-multiplier vectors.
	TopologyAnalysis = topology.Analysis
	// TopologyBuilder constructs custom topologies.
	TopologyBuilder = topology.Builder
)

// SeriesParallel returns the series-parallel converter with ratio q/p.
func SeriesParallel(p, q int) (*Topology, error) { return topology.SeriesParallel(p, q) }

// Ladder returns the symmetric ladder converter with ratio q/p.
func Ladder(p, q int) (*Topology, error) { return topology.Ladder(p, q) }

// Dickson returns the Dickson charge-pump p:1 step-down.
func Dickson(p int) (*Topology, error) { return topology.Dickson(p) }

// Doubler returns a cascade of k 2:1 stages.
func Doubler(k int) (*Topology, error) { return topology.Doubler(k) }

// Fibonacci returns the k-stage Fibonacci converter.
func Fibonacci(k int) (*Topology, error) { return topology.Fibonacci(k) }

// CustomTopology wraps user-supplied charge-multiplier vectors.
func CustomTopology(name string, ratio float64, capMult, switchMult []float64) (*TopologyAnalysis, error) {
	return topology.Custom(name, ratio, capMult, switchMult)
}

// NewTopologyBuilder starts a custom netlist.
func NewTopologyBuilder(name string) *TopologyBuilder { return topology.NewBuilder(name) }

// Reserved topology nodes and the two switching phases, for custom
// netlists built with TopologyBuilder.
const (
	GndNode  = topology.Gnd
	VinNode  = topology.Vin
	VoutNode = topology.Vout
	Phi1     = topology.Phi1
	Phi2     = topology.Phi2
)

// Static converter models.
type (
	// Metrics is the static evaluation record shared by all families.
	Metrics = ivr.Metrics
	// LossBreakdown itemizes converter losses.
	LossBreakdown = ivr.LossBreakdown
	// SCConfig parameterizes a switched-capacitor design.
	SCConfig = sc.Config
	// SCDesign is a validated switched-capacitor converter.
	SCDesign = sc.Design
	// BuckConfig parameterizes a buck design.
	BuckConfig = buck.Config
	// BuckDesign is a validated buck converter.
	BuckDesign = buck.Design
	// LDOConfig parameterizes a digital LDO.
	LDOConfig = ldo.Config
	// LDODesign is a validated LDO.
	LDODesign = ldo.Design
)

// NewSC validates and builds a switched-capacitor design.
func NewSC(cfg SCConfig) (*SCDesign, error) { return sc.New(cfg) }

// ReconfigurableSC is a gear-shifting switched-capacitor converter.
type ReconfigurableSC = sc.Reconfigurable

// NewReconfigurableSC builds a multi-ratio converter from a shared fabric
// configuration and one topology analysis per gear.
func NewReconfigurableSC(base SCConfig, gears []*TopologyAnalysis) (*ReconfigurableSC, error) {
	return sc.NewReconfigurable(base, gears)
}

// CascadeTopologies composes two analyzed stages into a multi-stage
// analysis (A's output feeds B's input).
func CascadeTopologies(name string, a, b *TopologyAnalysis) (*TopologyAnalysis, error) {
	return topology.Cascade(name, a, b)
}

// NewBuck validates and builds a buck design.
func NewBuck(cfg BuckConfig) (*BuckDesign, error) { return buck.New(cfg) }

// NewLDO validates and builds a digital-LDO design.
func NewLDO(cfg LDOConfig) (*LDODesign, error) { return ldo.New(cfg) }

// Dynamic (transient) models.
type (
	// Signal is a time-varying input.
	Signal = dynamic.Signal
	// DynamicTrace is a simulated waveform.
	DynamicTrace = dynamic.Trace
	// SCSimulator runs the combined cycle-by-cycle + in-cycle SC model.
	SCSimulator = dynamic.SCSimulator
	// BuckSimulator runs the interleaved buck dynamic model.
	BuckSimulator = dynamic.BuckSimulator
	// LDOSimulator runs the digital-LDO dynamic model.
	LDOSimulator = dynamic.LDOSimulator
	// FreqModel is the interference frequency-response model (Eqs. 3-5).
	FreqModel = dynamic.FreqModel
)

// ConstantSignal returns a constant signal.
func ConstantSignal(v float64) Signal { return dynamic.Constant(v) }

// StepSignal returns a step at tStep between two unit-agnostic levels
// (amperes for load steps, volts for reference steps).
func StepSignal(from, to, tStep float64) Signal { return dynamic.Step(from, to, tStep) }

// SampledSignal wraps uniformly sampled data.
func SampledSignal(data []float64, dt float64) Signal { return dynamic.Sampled(data, dt) }

// SCDynamicParams maps a static SC design to its dynamic model, clocking
// the feedback for the given worst-case load.
func SCDynamicParams(d *SCDesign, iMax float64) (dynamic.SCParams, error) {
	return dynamic.SCFromDesignAtLoad(d, iMax)
}

// PDN, workloads, and system composition.
type (
	// PDNStage is one ladder segment of the power delivery network.
	PDNStage = pdn.Stage
	// PDNNetwork is a source-to-load PDN ladder.
	PDNNetwork = pdn.Network
	// Benchmark is a synthetic GPU workload.
	Benchmark = workload.Benchmark
	// LoadModel converts power demand into supply current.
	LoadModel = workload.LoadModel
	// PDSSystem is the manycore platform description.
	PDSSystem = pds.System
	// NoiseResult is one configuration x benchmark noise simulation.
	NoiseResult = pds.NoiseResult
	// PowerBreakdown itemizes source-to-core power (Fig. 13).
	PowerBreakdown = pds.Breakdown
	// BreakdownParams configures a power-breakdown computation.
	BreakdownParams = pds.BreakdownParams
)

// NewPDN builds a validated PDN ladder.
func NewPDN(stages ...PDNStage) (*PDNNetwork, error) { return pdn.New(stages...) }

// TypicalOffChipPDN returns the case study's three-level network.
func TypicalOffChipPDN(dieDecap, gridR float64) (*PDNNetwork, error) {
	return pdn.TypicalOffChip(dieDecap, gridR)
}

// Benchmarks lists the built-in workload names.
func Benchmarks() []string { return workload.Names() }

// GetBenchmark returns a built-in workload by name.
func GetBenchmark(name string) (Benchmark, error) { return workload.Get(name) }

// Circuit-level simulation (the validation baseline).
type (
	// Circuit is an MNA netlist.
	Circuit = spice.Circuit
	// TranResult is a transient simulation result.
	TranResult = spice.Result
	// Waveform is a source driving function.
	Waveform = spice.Waveform
	// SCNetlistOptions parameterizes an SC converter testbench.
	SCNetlistOptions = spice.SCOptions
	// BuckNetlistOptions parameterizes a buck testbench.
	BuckNetlistOptions = spice.BuckOptions
)

// BuildBuckNetlist constructs a synchronous-buck testbench.
func BuildBuckNetlist(opt BuckNetlistOptions) (*Circuit, error) { return spice.BuildBuck(opt) }

// ParseNetlist reads a SPICE-style text netlist into a Circuit.
func ParseNetlist(r io.Reader) (*Circuit, error) { return spice.ParseNetlist(r) }

// ParseSpiceValue parses a number with SPICE engineering suffixes
// ("10n", "4.7k", "2meg").
func ParseSpiceValue(s string) (float64, error) { return spice.ParseValue(s) }

// LoadNodeJSON parses a technology-node definition; register it with
// AddTechNode to make it available to Lookup/Explore.
func LoadNodeJSON(r io.Reader) (*TechNode, error) { return tech.LoadJSON(r) }

// On-chip grid floorplanning.
type (
	// GridMesh is a 2-D resistive power-grid mesh.
	GridMesh = grid.Mesh
	// GridPoint is a tile coordinate on a mesh.
	GridPoint = grid.Point
	// GridSolver is a per-tap-set solving context: the mesh Laplacian is
	// assembled and factored once (GridMesh.NewSolver) and reused across
	// EffectiveResistance / IRDrop / WorstCaseResistance queries.
	GridSolver = grid.Solver
)

// NewGridMesh builds a W x H power-grid mesh with the given per-link
// resistance.
func NewGridMesh(w, h int, rTile float64) (*GridMesh, error) { return grid.NewMesh(w, h, rTile) }

// NewCircuit returns an empty netlist.
func NewCircuit() *Circuit { return spice.NewCircuit() }

// BuildSCNetlist converts a topology + element values into a switch-level
// testbench.
func BuildSCNetlist(top *Topology, an *TopologyAnalysis, caps, rons []float64, opt spice.SCOptions) (*Circuit, error) {
	return spice.BuildSC(top, an, caps, rons, opt)
}
