# Ivory build/test/reproduction targets.

GO ?= go

.PHONY: all build test vet lint race bench experiments examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Physics-aware static analysis (floatcmp, nonfinite, powsquare,
# unitsuffix, droppederr); exits non-zero on any finding.
lint:
	$(GO) run ./cmd/ivory-lint ./...

test:
	$(GO) test ./...

# Race-detector pass over the model packages.
race:
	$(GO) test -race ./internal/...

# Full benchmark sweep (one timed iteration per experiment is enough to
# regenerate every figure; raise -benchtime for stable timings).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus the extension studies, with
# plot-ready CSVs under results/data/.
experiments:
	$(GO) run ./cmd/ivory-exp -outdir results/data all | tee results/experiments.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/topology-sweep
	$(GO) run ./examples/dvfs-transient
	$(GO) run ./examples/gpu-casestudy

clean:
	rm -rf results
