# Ivory build/test/reproduction targets.

GO ?= go

.PHONY: all build test vet lint race bench bench-full bench-profile benchdiff benchgate experiments examples serve smoke smoke-cluster clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Physics- and concurrency-aware static analysis (floatcmp, nonfinite,
# powsquare, unitsuffix, droppederr, unitflow, ctxflow, locksafe,
# wgsafe); exits non-zero on any finding or stale //lint:ignore.
lint:
	$(GO) run ./cmd/ivory-lint ./...

test:
	$(GO) test ./...

# Race-detector pass over the model packages.
race:
	$(GO) test -race ./internal/...

# Benchmark smoke run over the root harness (Explore serial/parallel/
# cluster, PlaceIVRs, per-figure regeneration, MNA kernel Transient/AC
# sweeps) — one iteration each — plus a focused pass over the transient
# case-study engine (Fig 10/11/13, grid scaling) and the simulation
# kernels. The raw `go test -json` streams are condensed through
# `ivory-benchdiff -compact` so the committed BENCH_*.json files hold one
# row per benchmark instead of thousands of wrapper events.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem -json . > BENCH_explore.raw
	$(GO) run ./cmd/ivory-benchdiff -compact BENCH_explore.raw > BENCH_explore.json && rm BENCH_explore.raw
	cat BENCH_explore.json
	$(GO) test -run '^$$' -bench 'Fig10|Fig11|Fig13|GridScale|Transient|AC' -benchtime=1x -benchmem -json . > BENCH_transient.raw
	$(GO) run ./cmd/ivory-benchdiff -compact BENCH_transient.raw > BENCH_transient.json && rm BENCH_transient.raw
	cat BENCH_transient.json

# Old-vs-new comparison of the shared benchmarks in two `make bench` outputs
# (override OLD/NEW to compare arbitrary runs). Informational: the target
# never fails on a regression.
OLD ?= BENCH_baseline.json
NEW ?= BENCH_explore.json
benchdiff:
	$(GO) run ./cmd/ivory-benchdiff $(OLD) $(NEW)

# Gating flavor of benchdiff, as CI runs it: fails when any shared
# benchmark got more than FAIL_OVER (default 15) times slower than the
# committed baseline. scripts/benchgate.sh is covered by a test in
# cmd/ivory-benchdiff that seeds a >15x regression and asserts exit 1.
benchgate:
	./scripts/benchgate.sh $(OLD) $(NEW)

# Full benchmark sweep over every package (raise -benchtime for stable
# timings).
bench-full:
	$(GO) test -bench=. -benchmem ./...

# CPU + heap profile capture over the simulation kernels: the circuit-level
# Transient/AC benchmarks and the numeric LU microbenchmarks. Emits pprof
# artifacts under profiles/ (uploaded from CI); the trailing `go tool pprof
# -top` both prints the hot spots and fails the target if a profile is
# unreadable. Flame graph: `go tool pprof -http=: profiles/kernel.test
# profiles/kernel_cpu.pprof`.
bench-profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'Transient|AC' -benchtime=50x \
		-cpuprofile profiles/kernel_cpu.pprof -memprofile profiles/kernel_mem.pprof \
		-o profiles/kernel.test .
	$(GO) test -run '^$$' -bench 'SparseLU|DenseFactorize|ComplexLU' -benchtime=2000x \
		-cpuprofile profiles/lu_cpu.pprof -memprofile profiles/lu_mem.pprof \
		-o profiles/lu.test ./internal/numeric
	$(GO) tool pprof -top -nodecount=12 profiles/kernel.test profiles/kernel_cpu.pprof
	$(GO) tool pprof -top -nodecount=12 -sample_index=alloc_objects profiles/kernel.test profiles/kernel_mem.pprof

# Run the exploration daemon (POST /v1/explore, /v1/transient; GET
# /healthz, /metrics). -addr :0 picks a free port.
serve:
	$(GO) run ./cmd/ivoryd -addr :7077

# End-to-end daemon smoke: build ivoryd, boot it on a random port, probe
# the API over HTTP, SIGTERM it and assert a clean drain.
smoke:
	./scripts/ivoryd_smoke.sh

# End-to-end cluster smoke: boot two worker replicas and a coordinator,
# explore through the cluster, assert the body is byte-identical to a
# single-node run of the same spec, scrape /v1/cluster and the shard
# metrics, then SIGTERM everything and assert clean drains.
smoke-cluster:
	./scripts/cluster_smoke.sh

# Regenerate every paper table/figure plus the extension studies, with
# plot-ready CSVs under results/data/.
experiments:
	$(GO) run ./cmd/ivory-exp -outdir results/data all | tee results/experiments.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/topology-sweep
	$(GO) run ./examples/dvfs-transient
	$(GO) run ./examples/gpu-casestudy

clean:
	rm -rf results
