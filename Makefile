# Ivory build/test/reproduction targets.

GO ?= go

.PHONY: all build test vet bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark sweep (one timed iteration per experiment is enough to
# regenerate every figure; raise -benchtime for stable timings).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus the extension studies, with
# plot-ready CSVs under results/data/.
experiments:
	$(GO) run ./cmd/ivory-exp -outdir results/data all | tee results/experiments.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/topology-sweep
	$(GO) run ./examples/dvfs-transient
	$(GO) run ./examples/gpu-casestudy

clean:
	rm -rf results
