module ivory

go 1.22
