package ivory

import (
	"math"
	"testing"

	"ivory/internal/numeric"
)

// The façade re-exports everything a downstream user needs; exercise the
// whole public surface end to end.

func TestPublicExploreFlow(t *testing.T) {
	spec := Spec{NodeName: "32nm", VIn: 1.8, VOut: 0.9, IMax: 1.5, AreaMax: 3e-6}
	res, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Metrics.Efficiency <= 0 {
		t.Fatal("no best candidate")
	}
	for _, k := range []Kind{KindSC, KindBuck, KindLDO} {
		if _, ok := res.BestOfKind(k); !ok {
			t.Errorf("missing %v candidate", k)
		}
	}
}

func TestPublicTechDatabase(t *testing.T) {
	if len(TechNodes()) < 8 {
		t.Fatal("missing builtin nodes")
	}
	n, err := LookupNode("45nm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Capacitor(DeepTrench); err != nil {
		t.Error(err)
	}
	if _, err := n.Inductor(IntegratedThinFilm); err != nil {
		t.Error(err)
	}
	if _, err := n.Capacitor(MOSCap); err != nil {
		t.Error(err)
	}
	if _, err := n.Capacitor(MIMCap); err != nil {
		t.Error(err)
	}
	if _, err := n.Inductor(SurfaceMount); err != nil {
		t.Error(err)
	}
	custom := *n
	custom.Name = "my-node"
	if err := AddTechNode(&custom); err != nil {
		t.Error(err)
	}
	if _, err := LookupNode("my-node"); err != nil {
		t.Error(err)
	}
}

func TestPublicTopologies(t *testing.T) {
	for _, mk := range []func() (*Topology, error){
		func() (*Topology, error) { return SeriesParallel(3, 1) },
		func() (*Topology, error) { return Ladder(5, 2) },
		func() (*Topology, error) { return Dickson(3) },
		func() (*Topology, error) { return Doubler(2) },
		func() (*Topology, error) { return Fibonacci(2) },
	} {
		top, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		an, err := top.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if an.Ratio <= 0 || an.Ratio >= 1 {
			t.Errorf("%s: ratio %v", an.Name, an.Ratio)
		}
	}
	// Build the classic 2:1 by hand through the public builder and check
	// the solver recovers its ratio.
	b := NewTopologyBuilder("user 2:1")
	p := b.NewNode()
	nn := b.NewNode()
	b.AddCap(p, nn, "C1")
	b.AddSwitch(VinNode, p, Phi1, "s_in")
	b.AddSwitch(nn, VoutNode, Phi1, "s_mid")
	b.AddSwitch(p, VoutNode, Phi2, "s_top")
	b.AddSwitch(nn, GndNode, Phi2, "s_bot")
	userAn, err := b.Build().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(userAn.Ratio-0.5) > 1e-6 {
		t.Errorf("user topology ratio %v", userAn.Ratio)
	}
	// Or supply charge-multiplier vectors directly:
	an, err := CustomTopology("user 2:1 vectors", 0.5, []float64{0.5}, []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.SumAR-2.0) > 1e-12 {
		t.Error("custom SumAR wrong")
	}
}

func TestPublicConverterModels(t *testing.T) {
	node, err := LookupNode("45nm")
	if err != nil {
		t.Fatal(err)
	}
	top, _ := SeriesParallel(2, 1)
	an, _ := top.Analyze()
	scd, err := NewSC(SCConfig{
		Analysis: an, Node: node, CapKind: DeepTrench,
		VIn: 1.8, VOut: 0.8, CTotal: 40e-9, GTotal: 120, CDecap: 10e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := scd.Evaluate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Efficiency <= 0.4 {
		t.Errorf("SC efficiency %v", m.Efficiency)
	}
	bkd, err := NewBuck(BuckConfig{
		Node: node, Inductor: IntegratedThinFilm, OutCap: DeepTrench,
		VIn: 1.8, VOut: 0.9, L: 8e-9, COut: 50e-9, FSw: 100e6,
		GHigh: 5, GLow: 8, Interleave: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bkd.Evaluate(1.0); err != nil {
		t.Fatal(err)
	}
	ld, err := NewLDO(LDOConfig{Node: node, VIn: 1.2, VOut: 0.9, GPass: 10, COut: 10e-9, FSample: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Evaluate(0.5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDynamicAndSpice(t *testing.T) {
	node, _ := LookupNode("45nm")
	top, _ := SeriesParallel(2, 1)
	an, _ := top.Analyze()
	scd, err := NewSC(SCConfig{
		Analysis: an, Node: node, CapKind: DeepTrench,
		VIn: 1.8, VOut: 0.8, CTotal: 40e-9, GTotal: 120, CDecap: 10e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	params, err := SCDynamicParams(scd, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sim := &SCSimulator{P: params}
	dt := 1 / params.FClk
	tr, err := sim.Run(StepSignal(0.1, 0.5, 1e-6), ConstantSignal(0.8), 3e-6, dt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PeakToPeak() <= 0 {
		t.Error("no dynamics recorded")
	}
	// And the circuit-level baseline through the façade.
	caps, rons := scd.ElementValues()
	ckt, err := BuildSCNetlist(top, an, caps, rons, SCNetlistOptions{
		VIn: 1.8, FSw: 50e6, CLoad: 100e-9, ILoad: 0.3, VOutIC: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ckt.Tran(1/(50e6*64), 20/50e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Avg("vout", 0.5) <= 0 {
		t.Error("netlist simulation produced nothing")
	}
}

func TestPublicPDSComposition(t *testing.T) {
	net, err := TypicalOffChipPDN(60e-9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sys := &PDSSystem{
		Cores: 4, TDPPerCore: 5, VNominal: 0.85, VSource: 3.3,
		Load:  LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25},
		GridR: 3e-3, GridL: 30e-12, Network: net, Seed: 7,
	}
	bench, err := GetBenchmark("HOTSP")
	if err != nil {
		t.Fatal(err)
	}
	if len(Benchmarks()) != 7 {
		t.Error("benchmark list wrong")
	}
	nr, err := sys.SimulateOffChipVRM(bench, 5e-6, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if nr.NoiseVpp <= 0 {
		t.Error("no noise measured")
	}
	b, err := sys.PowerBreakdown(BreakdownParams{
		Config: "off", Margin: 0.1, VRMEfficiency: 0.9, NumIVRs: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Efficiency <= 0 || b.Efficiency >= 1 {
		t.Error("breakdown efficiency out of range")
	}
}

func TestCaseStudySpecShape(t *testing.T) {
	s := CaseStudySpec("45nm")
	if !numeric.ApproxEqual(s.VIn, 3.3, 0) || !numeric.ApproxEqual(s.VOut, 1.0, 0) || !numeric.ApproxEqual(s.AreaMax, 20e-6, 0) {
		t.Errorf("case study spec wrong: %+v", s)
	}
}
