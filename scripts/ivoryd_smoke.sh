#!/usr/bin/env bash
# End-to-end smoke test for the ivoryd daemon: build it, boot it on a
# random port, probe /healthz, /v1/explore and /metrics, then SIGTERM it
# and assert a clean drain ("ivoryd: drained cleanly", exit 0).
#
# Used by `make smoke` and the CI ivoryd-smoke job. Needs only bash, curl
# and the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
log="$workdir/ivoryd.log"
cleanup() {
    [ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/ivoryd" ./cmd/ivoryd

echo "== boot"
"$workdir/ivoryd" -addr 127.0.0.1:0 -workers 1 -queue 4 -drain-timeout 20s >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^ivoryd: listening on //p' "$log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "ivoryd died during startup:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ivoryd never printed its listen address:" >&2
    cat "$log" >&2
    exit 1
fi
base="http://$addr"
echo "   listening on $addr"

echo "== probe /healthz"
curl -fsS "$base/healthz" | grep -q '"status": "ok"'

echo "== probe /v1/explore"
curl -fsS -X POST "$base/v1/explore" \
    -H 'Content-Type: application/json' \
    -d '{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"top":3}' \
    | grep -q '"spec_hash"'

echo "== probe /v1/explore/stream"
# An adaptive exploration streamed as SSE. The stream must end with a
# well-formed terminal: exactly one "event: result" whose data line carries
# the spec hash — a missing or malformed terminal event fails the smoke.
stream=$(curl -fsS -N -X POST "$base/v1/explore/stream" \
    -H 'Content-Type: application/json' \
    -d '{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2,"search":"adaptive"}}')
results=$(echo "$stream" | grep -c '^event: result') || true
if [ "$results" -ne 1 ]; then
    echo "stream carried $results terminal result events, want exactly 1:" >&2
    echo "$stream" | head -n 20 >&2
    exit 1
fi
echo "$stream" | grep -A1 '^event: result' | grep -q '^data: {.*"spec_hash".*}$' || {
    echo "terminal result event is malformed:" >&2
    echo "$stream" | tail -n 5 >&2
    exit 1
}
echo "$stream" | grep -q '^event: best' || {
    echo "stream emitted no best-so-far events:" >&2
    echo "$stream" | head -n 20 >&2
    exit 1
}

echo "== probe /v1/hybrid"
# A tiny one-domain hybrid sweep, submitted async: poll the job to the
# ranked result, then resubmit synchronously and assert the cache served it.
hybrid_spec='"domains":[{"name":"cpu","cores":2,"tdp_per_core_w":5,"vnominal_v":0.85,"grid_r_ohm":0.0035,"grid_l_h":5e-11,"benchmark":"CFD"}],"rails":["vrm","ivr"],"t_us":2,"dt_ns":5'
job=$(curl -fsS -X POST "$base/v1/hybrid" \
    -H 'Content-Type: application/json' \
    -d "{$hybrid_spec,\"async\":true}")
job_id=$(echo "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
if [ -z "$job_id" ]; then
    echo "async hybrid submit returned no job id:" >&2
    echo "$job" >&2
    exit 1
fi
hybrid=""
for _ in $(seq 1 100); do
    hybrid=$(curl -fsS "$base/v1/jobs/$job_id")
    echo "$hybrid" | grep -q '"status": "running"' || break
    sleep 0.1
done
echo "$hybrid" | grep -q '"status": "done"' || {
    echo "hybrid job never completed:" >&2
    echo "$hybrid" >&2
    exit 1
}
echo "$hybrid" | grep -q '"assignment": "cpu=' || {
    echo "hybrid job result carried no ranked assignment:" >&2
    echo "$hybrid" >&2
    exit 1
}
# Synchronous resubmission of the identical sweep must be a cache hit.
hits_before=$(curl -fsS "$base/metrics" | sed -n 's/^ivoryd_result_cache_hits_total //p')
curl -fsS -X POST "$base/v1/hybrid" \
    -H 'Content-Type: application/json' \
    -d "{$hybrid_spec}" | grep -q '"assignment": "cpu='
hits_after=$(curl -fsS "$base/metrics" | sed -n 's/^ivoryd_result_cache_hits_total //p')
if [ "$hits_after" -le "$hits_before" ]; then
    echo "hybrid resubmission was not served from the cache ($hits_before -> $hits_after)" >&2
    exit 1
fi

echo "== probe /metrics"
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^ivoryd_queue_depth'
echo "$metrics" | grep -q 'ivoryd_requests_total{endpoint="explore",code="200"} 1'
# The adaptive stream above pruned candidates; the counter must be scrapeable.
echo "$metrics" | grep -q 'ivoryd_candidates_pruned_total{strategy="bound"}'
# The hybrid sweep above examined assignments; one compute, so exactly the
# ranked count from a single run (the cached resubmission must not recount).
echo "$metrics" | grep -q 'ivoryd_hybrid_candidates_total{outcome="ranked"}'

echo "== SIGTERM drain"
kill -TERM "$pid"
for _ in $(seq 1 300); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "ivoryd still running 30s after SIGTERM:" >&2
    cat "$log" >&2
    exit 1
fi
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "ivoryd exited $rc after SIGTERM:" >&2
    cat "$log" >&2
    exit 1
fi
grep -q 'drained cleanly' "$log" || {
    echo "no clean-drain message in the log:" >&2
    cat "$log" >&2
    exit 1
}

echo "ivoryd smoke OK ($addr)"
