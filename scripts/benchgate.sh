#!/usr/bin/env bash
# benchgate.sh — gating benchmark comparison for CI.
#
# Diffs two `make bench` outputs (go test -json streams or raw bench text)
# and FAILS when any benchmark present in both files got more than
# FAIL_OVER times slower. Added/removed benchmarks never gate: a missing
# baseline is not a regression.
#
#   usage: benchgate.sh [old.json [new.json]]
#   env:   FAIL_OVER  slowdown factor that fails the gate (default 15 —
#          wide enough for single-iteration CI noise, tight enough to
#          catch an accidental O(n^2) or a lost fast path)
#
# Exit codes mirror ivory-benchdiff: 0 ok, 1 regression, 2 unusable input.
set -u
cd "$(dirname "$0")/.."

OLD=${1:-BENCH_baseline.json}
NEW=${2:-BENCH_explore.json}
FAIL_OVER=${FAIL_OVER:-15}

exec go run ./cmd/ivory-benchdiff -fail-over "$FAIL_OVER" "$OLD" "$NEW"
