#!/usr/bin/env bash
# lint_annotations.sh — run ivory-lint in JSON mode and re-emit every
# finding as a GitHub Actions workflow annotation
# (::error file=F,line=L,col=C::message) so findings show up inline on the
# PR diff. Outside Actions (or without jq) the raw JSON still prints and
# the exit code still gates.
#
#   usage: lint_annotations.sh [packages...]   (default ./...)
#
# Exit codes mirror ivory-lint: 0 clean, 1 findings, 2 load failure.
set -u
cd "$(dirname "$0")/.."

out=$(go run ./cmd/ivory-lint -json "${@:-./...}")
code=$?
printf '%s\n' "$out"
if [ "$code" -eq 1 ] && command -v jq >/dev/null 2>&1; then
	printf '%s\n' "$out" | jq -r \
		'.[] | "::error file=\(.file),line=\(.line),col=\(.column),title=ivory-lint [\(.analyzer)]::\(.message)"'
fi
exit "$code"
