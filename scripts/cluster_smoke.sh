#!/usr/bin/env bash
# End-to-end cluster smoke test: build ivoryd, boot two worker replicas and
# a coordinator wired to them, explore through the cluster, assert the
# response body is byte-identical to a single-node run of the same spec
# (modulo volatile timing stats), scrape /v1/cluster and the shard metrics,
# then SIGTERM all three daemons and assert clean drains.
#
# Used by `make smoke-cluster` and the CI cluster-smoke job. Needs bash,
# curl, jq and the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
    for p in "${w1pid:-}" "${w2pid:-}" "${cpid:-}"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/ivoryd" ./cmd/ivoryd

# boot_daemon <logfile> <args...>: starts ivoryd and stores its pid and
# parsed listen address in the globals $pid and $addr. Runs in the current
# shell (not a command substitution) so the globals survive.
boot_daemon() {
    local log=$1
    shift
    "$workdir/ivoryd" "$@" >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^ivoryd: listening on //p' "$log" | head -n 1)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "ivoryd died during startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "ivoryd never printed its listen address:" >&2
        cat "$log" >&2
        exit 1
    fi
}

echo "== boot workers"
boot_daemon "$workdir/w1.log" -addr 127.0.0.1:0 -role worker -workers 2 -drain-timeout 20s
w1pid=$pid w1="http://$addr"
boot_daemon "$workdir/w2.log" -addr 127.0.0.1:0 -role worker -workers 2 -drain-timeout 20s
w2pid=$pid w2="http://$addr"
echo "   workers on $w1 $w2"

echo "== boot coordinator"
boot_daemon "$workdir/coord.log" -addr 127.0.0.1:0 -role coordinator \
    -cluster-workers "$w1,$w2" -workers 1 -drain-timeout 20s
cpid=$pid coord="http://$addr"
echo "   coordinator on $coord"

# Two areas: 2 mm² survives the mm²→m² float64 unit conversion exactly;
# 0.8 mm² drifts 1 ULP, so it only works if the shard wire carries the
# coordinator's engine-precision area (ShardRequest.area_m2).
for area in 2 0.8; do
    spec='{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":'$area'},"top":-1}'

    echo "== explore through the cluster (area_mm2=$area)"
    curl -fsS -X POST "$coord/v1/explore" -H 'Content-Type: application/json' \
        -d "$spec" >"$workdir/cluster.json"
    jq -e '.incomplete != true and .cancelled != true and (.candidates | length) > 0' \
        "$workdir/cluster.json" >/dev/null || {
        echo "cluster exploration returned no complete result:" >&2
        head -c 400 "$workdir/cluster.json" >&2
        exit 1
    }

    echo "== compare against single-node (area_mm2=$area)"
    # Worker 1 serves the same spec directly; everything except the volatile
    # timing stats must be byte-identical after canonical re-serialization.
    curl -fsS -X POST "$w1/v1/explore" -H 'Content-Type: application/json' \
        -d "$spec" >"$workdir/single.json"
    normalize='del(.stats.wall_ms, .stats.candidates_per_sec, .stats.topo_cache_hits,
                   .stats.topo_cache_misses, .stats.grid_cholesky, .stats.grid_cg)'
    jq -S "$normalize" "$workdir/cluster.json" >"$workdir/cluster.norm.json"
    jq -S "$normalize" "$workdir/single.json" >"$workdir/single.norm.json"
    if ! diff -q "$workdir/cluster.norm.json" "$workdir/single.norm.json" >/dev/null; then
        echo "cluster result diverged from single-node (area_mm2=$area):" >&2
        diff "$workdir/cluster.norm.json" "$workdir/single.norm.json" | head -n 20 >&2
        exit 1
    fi
done

echo "== probe /v1/cluster"
curl -fsS "$coord/v1/cluster" >"$workdir/cluster_status.json"
jq -e '.role == "coordinator" and (.workers | length) == 2 and
       ([.workers[] | select(.healthy)] | length) == 2 and
       ([.workers[].shards_ok] | add) > 0' "$workdir/cluster_status.json" >/dev/null || {
    echo "unexpected /v1/cluster body:" >&2
    cat "$workdir/cluster_status.json" >&2
    exit 1
}
# A worker replica answers /v1/cluster too, with its own role.
curl -fsS "$w1/v1/cluster" | jq -e '.role == "worker"' >/dev/null

echo "== probe coordinator /metrics"
metrics=$(curl -fsS "$coord/metrics")
echo "$metrics" | grep -q 'ivoryd_shards_dispatched_total{worker="' || {
    echo "no shard dispatch counters in the exposition" >&2
    exit 1
}
echo "$metrics" | grep -q 'ivoryd_worker_healthy{worker="' || {
    echo "no worker health gauges in the exposition" >&2
    exit 1
}

echo "== SIGTERM drain"
for p in "$cpid" "$w1pid" "$w2pid"; do
    kill -TERM "$p"
done
for p in "$cpid" "$w1pid" "$w2pid"; do
    for _ in $(seq 1 300); do
        kill -0 "$p" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$p" 2>/dev/null; then
        echo "daemon $p still running 30s after SIGTERM" >&2
        exit 1
    fi
    rc=0
    wait "$p" || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "daemon $p exited $rc after SIGTERM" >&2
        cat "$workdir"/*.log >&2
        exit 1
    fi
done
for log in "$workdir/coord.log" "$workdir/w1.log" "$workdir/w2.log"; do
    grep -q 'drained cleanly' "$log" || {
        echo "no clean-drain message in $log:" >&2
        cat "$log" >&2
        exit 1
    }
done

echo "cluster smoke OK (coordinator $coord, workers $w1 $w2)"
