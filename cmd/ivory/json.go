package main

import (
	"encoding/json"
	"io"

	"ivory"
)

// writeExploreJSON renders an exploration result in the ivoryd wire schema
// (ivory.ExploreResponse), so `ivory explore -json` output is
// byte-compatible with POST /v1/explore bodies and one set of downstream
// tooling parses both. runErr is the error Explore returned alongside a
// partial result (nil on a complete run); it is folded into the body and
// returned so the command still exits nonzero on an interrupted run.
func writeExploreJSON(w io.Writer, res *ivory.ExplorationResult, runErr error, top int) error {
	resp := ivory.NewExploreResponse(res, runErr).Trimmed(top)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		return err
	}
	return runErr
}
