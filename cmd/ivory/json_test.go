package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"ivory"
)

// fixedResult builds a deterministic exploration result so the JSON output
// is stable without running the engine.
func fixedResult(t *testing.T) *ivory.ExplorationResult {
	t.Helper()
	spec := ivory.Spec{NodeName: "45nm", VIn: 1.8, VOut: 0.9, IMax: 1, AreaMax: 2e-6}
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	res := &ivory.ExplorationResult{Spec: norm, Rejected: 2}
	for _, label := range []string{"a", "b", "c"} {
		res.Candidates = append(res.Candidates, ivory.Candidate{Kind: ivory.KindSC, Label: label})
	}
	res.Best = res.Candidates[0]
	return res
}

// TestWriteExploreJSONSchema pins the CLI's -json output to the ivoryd wire
// schema: the bytes must decode into ivory.ExploreResponse with the same
// top-level keys a /v1/explore body carries, and with no extras.
func TestWriteExploreJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := writeExploreJSON(&buf, fixedResult(t), nil, 2); err != nil {
		t.Fatal(err)
	}

	var resp ivory.ExploreResponse
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("-json output is not an ExploreResponse: %v\n%s", err, buf.Bytes())
	}
	if resp.SpecHash == "" {
		t.Error("no spec_hash")
	}
	if want := ivory.SpecHash(fixedResult(t).Spec); resp.SpecHash != want {
		t.Errorf("spec_hash %q != SpecHash %q", resp.SpecHash, want)
	}
	if len(resp.Candidates) != 2 {
		t.Errorf("top=2 emitted %d candidates", len(resp.Candidates))
	}
	if resp.TotalCandidates != 3 {
		t.Errorf("total_candidates = %d, want the untrimmed 3", resp.TotalCandidates)
	}
	if resp.Cancelled || resp.Error != "" {
		t.Errorf("complete run marked cancelled: %+v", resp)
	}

	// Key order and naming are part of the contract with the server schema.
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"spec_hash", "spec", "best", "candidates", "total_candidates", "rejected", "stats"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("key %q missing from -json output", k)
		}
	}
}

// TestWriteExploreJSONPartial: an interrupted run still emits the ranked
// prefix, marked cancelled, and the command-level error is preserved.
func TestWriteExploreJSONPartial(t *testing.T) {
	var buf bytes.Buffer
	runErr := errors.New("context canceled")
	if err := writeExploreJSON(&buf, fixedResult(t), runErr, 0); !errors.Is(err, runErr) {
		t.Fatalf("writeExploreJSON swallowed the run error: %v", err)
	}
	var resp ivory.ExploreResponse
	if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cancelled || resp.Error != "context canceled" {
		t.Errorf("partial not marked: cancelled=%v error=%q", resp.Cancelled, resp.Error)
	}
	if len(resp.Candidates) != 3 {
		t.Errorf("partial lost candidates: %d", len(resp.Candidates))
	}
}
