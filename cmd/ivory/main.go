// Command ivory is the command-line front end of the Ivory design space
// exploration tool.
//
// Usage:
//
//	ivory nodes
//	ivory topology  -family sp -p 3 -q 1
//	ivory explore   -node 45nm -vin 3.3 -vout 1.0 -imax 6 -area-mm2 6 [-objective eff|area|noise] [-search exhaustive|adaptive] [-stream] [-top 10] [-json] [-timeout 30s] [-progress] [-workers N]
//	ivory table2    -node 45nm -vin 3.3 -vout 1.0 -imax 23.5 -area-mm2 20 [-counts 1,2,4]
//	ivory dynamic   -node 45nm -vin 3.3 -vout 1.0 -imax 6 -area-mm2 6 -step-to 9 [-csv out.csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"ivory"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "nodes":
		err = cmdNodes()
	case "topology":
		err = cmdTopology(os.Args[2:])
	case "explore":
		err = cmdExplore(os.Args[2:])
	case "table2":
		err = cmdTable2(os.Args[2:])
	case "dynamic":
		err = cmdDynamic(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "node-dump":
		err = cmdNodeDump(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ivory: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivory:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `ivory — IVR design space exploration

commands:
  nodes      list built-in technology nodes
  topology   analyze an SC topology (charge multipliers, ratio)
  explore    run the design-space optimizer for a spec
  table2     explore across distributed-IVR counts
  dynamic    simulate a load-step transient of the best SC design
  sim        run a transient on a SPICE-style text netlist
  node-dump  write a technology node as JSON (template for custom nodes)`)
}

// specFlags registers the spec and run-control flags. The returned getter
// builds the spec — Context wired to SIGINT (and -timeout when set),
// Progress wired to a stderr ticker under -progress — plus a cleanup
// function the command must defer to release the signal registration.
func specFlags(fs *flag.FlagSet) func() (ivory.Spec, context.CancelFunc, error) {
	node := fs.String("node", "45nm", "technology node")
	vin := fs.Float64("vin", 3.3, "input voltage (V)")
	vout := fs.Float64("vout", 1.0, "output voltage target (V)")
	imax := fs.Float64("imax", 6, "maximum load current (A)")
	area := fs.Float64("area-mm2", 6, "die area budget (mm2)")
	objective := fs.String("objective", "eff", "optimization objective: eff|area|noise")
	search := fs.String("search", "exhaustive", "search strategy: exhaustive|adaptive (adaptive prunes dominated configurations without sizing them)")
	timeout := fs.Duration("timeout", 0, "abort the exploration after this long (0 = no limit)")
	progress := fs.Bool("progress", false, "print live exploration progress to stderr")
	workers := fs.Int("workers", 0, "exploration worker count (0 = one per CPU, 1 = serial)")
	return func() (ivory.Spec, context.CancelFunc, error) {
		s := ivory.Spec{
			NodeName: *node,
			VIn:      *vin,
			VOut:     *vout,
			IMax:     *imax,
			AreaMax:  *area * 1e-6,
			Workers:  *workers,
		}
		switch *objective {
		case "eff":
			s.Objective = ivory.MaxEfficiency
		case "area":
			s.Objective = ivory.MinArea
		case "noise":
			s.Objective = ivory.MinNoise
		default:
			return s, nil, fmt.Errorf("unknown objective %q", *objective)
		}
		strategy, err := ivory.ParseSearch(*search)
		if err != nil {
			return s, nil, err
		}
		s.Search = strategy
		// ^C cancels the exploration instead of killing the process: the
		// run drains in-flight jobs and the command still prints whatever
		// ranked prefix completed plus the stats line.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		cancel := stop
		if *timeout > 0 {
			tctx, tcancel := context.WithTimeout(ctx, *timeout)
			ctx = tctx
			cancel = func() { tcancel(); stop() }
		}
		s.Context = ctx
		if *progress {
			s.Progress = progressPrinter()
		}
		return s, cancel, nil
	}
}

// progressPrinter returns a Spec.Progress callback that repaints one
// stderr status line, rate-limited so terminals aren't flooded. Calls are
// already serialized by the exploration engine.
func progressPrinter() func(ivory.ExploreStats) {
	var last time.Time
	return func(s ivory.ExploreStats) {
		if s.Done != s.Jobs && time.Since(last) < 100*time.Millisecond {
			return
		}
		last = time.Now()
		fmt.Fprintf(os.Stderr, "\rexplore: %d/%d jobs, %d accepted, %d rejected",
			s.Done, s.Jobs, s.Accepted(), s.Rejected())
		if s.Done == s.Jobs {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func cmdNodes() error {
	for _, n := range ivory.TechNodes() {
		node, err := ivory.LookupNode(n)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s Vdd=%.2fV  feature=%.0fnm\n", n, node.VddNominal, node.FeatureM*1e9)
	}
	return nil
}

func cmdTopology(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ExitOnError)
	family := fs.String("family", "sp", "family: sp|ladder|dickson|fibonacci|doubler")
	p := fs.Int("p", 2, "input ratio term / stage count")
	q := fs.Int("q", 1, "output ratio term")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		top *ivory.Topology
		err error
	)
	switch *family {
	case "sp":
		top, err = ivory.SeriesParallel(*p, *q)
	case "ladder":
		top, err = ivory.Ladder(*p, *q)
	case "dickson":
		top, err = ivory.Dickson(*p)
	case "fibonacci":
		top, err = ivory.Fibonacci(*p)
	case "doubler":
		top, err = ivory.Doubler(*p)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}
	an, err := top.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("%s\n  ideal ratio M = %.6f\n  caps: %d  Σ|a_c| = %.4f\n  switches: %d  Σ|a_r| = %.4f\n",
		an.Name, an.Ratio, an.NumCaps, an.SumAC, an.NumSwitches, an.SumAR)
	fmt.Printf("  a_c = %v\n  a_r = %v\n", round(an.CapMultipliers), round(an.SwitchMultipliers))
	fmt.Printf("  cap voltages (xVin) = %v\n  switch blocking (xVin) = %v\n",
		round(an.CapVoltages), round(an.SwitchBlockVoltages))
	return nil
}

func round(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1e4+0.5)) / 1e4
	}
	return out
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	get := specFlags(fs)
	top := fs.Int("top", 10, "number of candidates to print")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (the ivoryd /v1/explore wire schema)")
	stream := fs.Bool("stream", false, "print each best-so-far improvement to stderr as the search finds it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, cancel, err := get()
	if err != nil {
		return err
	}
	defer cancel()
	if *stream {
		spec.OnImproved = func(c ivory.Candidate, st ivory.ExploreStats) {
			fmt.Fprintf(os.Stderr, "best: [%-4s] %-44s eff=%5.1f%%  area=%5.2fmm2  (evaluated %d, pruned %d)\n",
				c.Kind, c.Label, c.Metrics.Efficiency*100, c.Metrics.AreaDie*1e6,
				st.Evaluated(), st.Pruned())
		}
	}
	res, err := ivory.Explore(spec)
	if err != nil && res == nil {
		return err
	}
	if *jsonOut {
		return writeExploreJSON(os.Stdout, res, err, *top)
	}
	if err != nil {
		// Cancelled or timed out mid-run: Explore still returns the ranked
		// prefix that completed, so show it before exiting nonzero.
		fmt.Fprintf(os.Stderr, "ivory: exploration interrupted (%v); showing partial results\n", err)
	}
	fmt.Printf("explored %d feasible candidates (%d rejected), objective %v\n",
		len(res.Candidates), res.Rejected, spec.Objective)
	n := *top
	if n > len(res.Candidates) {
		n = len(res.Candidates)
	}
	for i := 0; i < n; i++ {
		c := res.Candidates[i]
		fmt.Printf("%2d. [%-4s] %-44s eff=%5.1f%%  ripple=%6.2fmV  fsw=%6.1fMHz  area=%5.2fmm2\n",
			i+1, c.Kind, c.Label, c.Metrics.Efficiency*100, c.Metrics.RippleVpp*1e3,
			c.Metrics.FSw/1e6, c.Metrics.AreaDie*1e6)
	}
	fmt.Printf("stats: %s\n", res.Stats.String())
	return err
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	get := specFlags(fs)
	counts := fs.String("counts", "1,2,4", "distribution counts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, cancel, err := get()
	if err != nil {
		return err
	}
	defer cancel()
	var cs []int
	for _, s := range strings.Split(*counts, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad count %q: %w", s, err)
		}
		cs = append(cs, v)
	}
	tbl, err := ivory.ExploreDistribution(spec, cs)
	if err != nil {
		return err
	}
	fmt.Print(tbl.Format())
	return nil
}

func cmdDynamic(args []string) error {
	fs := flag.NewFlagSet("dynamic", flag.ExitOnError)
	get := specFlags(fs)
	stepTo := fs.Float64("step-to", 0, "load step target (A); default 1.5x imax/2")
	csv := fs.String("csv", "", "write waveform CSV to this file")
	span := fs.Float64("span-us", 5, "simulated span (us)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, cancel, err := get()
	if err != nil {
		return err
	}
	defer cancel()
	res, err := ivory.Explore(spec)
	if err != nil {
		return err
	}
	cand, ok := res.BestOfKind(ivory.KindSC)
	if !ok {
		return fmt.Errorf("no feasible SC design for this spec")
	}
	i0 := spec.IMax / 2
	i1 := *stepTo
	if i1 == 0 {
		i1 = spec.IMax * 0.9
	}
	params, err := ivory.SCDynamicParams(cand.SC, spec.IMax)
	if err != nil {
		return err
	}
	sim := &ivory.SCSimulator{P: params}
	T := *span * 1e-6
	dt := 1 / (params.FClk * float64(maxInt(params.Interleave, 1)))
	tr, err := sim.Run(ivory.StepSignal(i0, i1, T/3), ivory.ConstantSignal(spec.VOut), T, dt)
	if err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Printf("design: %s\nload step %.2f -> %.2f A at t=%.2f us over %.1f us\n",
		cand.Label, i0, i1, T/3*1e6, T*1e6)
	fmt.Printf("V_out: mean %.4f V, min %.4f V, max %.4f V, noise %.1f mVpp, avg fsw %.1f MHz\n",
		st.Mean, st.Min, st.Max, tr.PeakToPeak()*1e3, tr.AvgFSw/1e6)
	if *csv != "" {
		var b strings.Builder
		b.WriteString("t_s,v_out\n")
		for i := range tr.Times {
			fmt.Fprintf(&b, "%.9e,%.6f\n", tr.Times[i], tr.V[i])
		}
		if err := os.WriteFile(*csv, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("waveform written to %s (%d samples)\n", *csv, len(tr.Times))
	}
	return nil
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	step := fs.String("h", "1n", "time step (SPICE value syntax)")
	span := fs.String("t", "10u", "simulated span")
	probe := fs.String("probe", "", "node to report (default: all node averages)")
	csv := fs.String("csv", "", "write waveforms CSV to this file")
	nodeFile := fs.String("tech", "", "load a custom technology node JSON before running (registers it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sim needs exactly one netlist file")
	}
	if *nodeFile != "" {
		f, err := os.Open(*nodeFile)
		if err != nil {
			return err
		}
		n, err := ivory.LoadNodeJSON(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if err := ivory.AddTechNode(n); err != nil {
			return err
		}
	}
	h, err := ivory.ParseSpiceValue(*step)
	if err != nil {
		return fmt.Errorf("bad -h: %w", err)
	}
	T, err := ivory.ParseSpiceValue(*span)
	if err != nil {
		return fmt.Errorf("bad -t: %w", err)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	// Read-only handle: a close failure cannot lose data.
	defer func() { _ = f.Close() }()
	ckt, err := ivory.ParseNetlist(f)
	if err != nil {
		return err
	}
	res, err := ckt.Tran(h, T)
	if err != nil {
		return err
	}
	fmt.Printf("%d steps, %d matrix factorizations\n", res.Steps, res.Refactorizations)
	if *probe != "" {
		w, ok := res.V[*probe]
		if !ok {
			return fmt.Errorf("no node %q in the netlist", *probe)
		}
		mn, mx := w[0], w[0]
		for _, v := range w {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		fmt.Printf("v(%s): avg %.6f V (trailing half), min %.6f, max %.6f\n",
			*probe, res.Avg(*probe, 0.5), mn, mx)
	} else {
		for _, node := range ckt.Nodes() {
			fmt.Printf("v(%-10s) avg %.6f V\n", node, res.Avg(node, 0.5))
		}
	}
	if *csv != "" {
		var b strings.Builder
		nodes := ckt.Nodes()
		b.WriteString("t_s")
		for _, n := range nodes {
			fmt.Fprintf(&b, ",%s", n)
		}
		b.WriteByte('\n')
		for k := range res.Times {
			fmt.Fprintf(&b, "%.9e", res.Times[k])
			for _, n := range nodes {
				fmt.Fprintf(&b, ",%.6f", res.V[n][k])
			}
			b.WriteByte('\n')
		}
		if err := os.WriteFile(*csv, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("waveforms written to %s\n", *csv)
	}
	return nil
}

func cmdNodeDump(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("node-dump needs exactly one node name")
	}
	n, err := ivory.LookupNode(args[0])
	if err != nil {
		return err
	}
	return n.WriteJSON(os.Stdout)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
