// Command ivory-exp regenerates the paper's evaluation tables and figures,
// plus this reproduction's extension studies.
//
// Usage:
//
//	ivory-exp [-outdir dir] [-timeout 10m] [-progress] [-workers n] <experiment> [...]
//	ivory-exp all
//
// Experiments: fig4, fig6, fig7, fig8, fig9, table1, table2, fig10, fig11,
// fig12, fig13, ablations, twostage, dvfs, families, gridscale, gears,
// variation, nodes, hybrid.
// Text tables print to stdout; with -outdir, plot-ready CSV data files are
// written as well. See EXPERIMENTS.md for the paper-vs-measured comparison.
//
// ^C (or an elapsed -timeout) cancels the in-flight experiment's
// exploration and stops the run; `all` otherwise continues past individual
// experiment failures and exits nonzero at the end if any failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"ivory/internal/experiments"
	"ivory/internal/report"
)

// csvWriter is implemented by every experiment result that has plot data.
type csvWriter interface {
	WriteCSV(*report.Writer) error
}

// outcome bundles an experiment's text rendering and optional CSV data.
type outcome struct {
	text string
	data csvWriter
}

type noiseFn func(ctx context.Context) (*experiments.Fig10Result, error)

type runner func(ctx context.Context, noise noiseFn) (outcome, error)

// engineOpt carries the transient-engine knobs (-workers, -progress) into
// the runners that fan simulation cells out.
var engineOpt experiments.TransientOptions

var runners = map[string]runner{
	"fig4": func(context.Context, noiseFn) (outcome, error) {
		r, err := experiments.Fig4(0)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig6": func(context.Context, noiseFn) (outcome, error) {
		r, err := experiments.Fig6()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig7": func(context.Context, noiseFn) (outcome, error) {
		r, err := experiments.Fig7()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig8": func(context.Context, noiseFn) (outcome, error) {
		r, err := experiments.Fig8()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig9": func(context.Context, noiseFn) (outcome, error) {
		r, err := experiments.Fig9()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"table1": func(context.Context, noiseFn) (outcome, error) {
		s, err := experiments.Table1()
		return outcome{text: s}, err
	},
	"table2": func(ctx context.Context, _ noiseFn) (outcome, error) {
		t, err := experiments.Table2Context(ctx)
		if err != nil {
			return outcome{}, err
		}
		return outcome{text: "Table 2 — " + t.Format()}, nil
	},
	"fig10": func(ctx context.Context, noise noiseFn) (outcome, error) {
		r, err := noise(ctx)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig11": func(ctx context.Context, noise noiseFn) (outcome, error) {
		r, err := noise(ctx)
		if err != nil {
			return outcome{}, err
		}
		// fig10's CSV writer also emits the fig11 traces.
		return outcome{text: r.FormatFig11()}, nil
	},
	"fig12": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.Fig12Run(ctx, engineOpt)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig13": func(ctx context.Context, noise noiseFn) (outcome, error) {
		n, err := noise(ctx)
		if err != nil {
			return outcome{}, err
		}
		r, err := experiments.Fig13Run(ctx, n, engineOpt)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"ablations": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.AblationsRun(ctx, engineOpt)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"twostage": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.TwoStageContext(ctx)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"dvfs": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.FastDVFSContext(ctx)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"families": func(context.Context, noiseFn) (outcome, error) {
		r, err := experiments.FamilyTransients()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"gridscale": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.GridScaleRun(ctx, engineOpt)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"gears": func(context.Context, noiseFn) (outcome, error) {
		r, err := experiments.Gears()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"variation": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.VariationContext(ctx, 0, 0)
		if err != nil {
			return outcome{}, err
		}
		return outcome{text: r.Format()}, nil
	},
	"nodes": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.NodeSweepContext(ctx)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"hybrid": func(ctx context.Context, _ noiseFn) (outcome, error) {
		r, err := experiments.HybridRun(ctx, engineOpt)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
}

var order = []string{
	"fig4", "fig6", "fig7", "fig8", "fig9", "table1", "table2",
	"fig10", "fig11", "fig12", "fig13",
	"ablations", "twostage", "dvfs", "families", "gridscale", "gears", "variation", "nodes",
	"hybrid",
}

func main() {
	outdir := flag.String("outdir", "", "write plot-ready CSV data files to this directory")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "print per-experiment and per-cell progress to stderr")
	workers := flag.Int("workers", 0, "simulation-cell fan-out width (0 = all CPUs, 1 = serial)")
	flag.Parse()
	engineOpt.Workers = *workers
	if *progress {
		// Per-cell telemetry from the transient engine: completed cells,
		// trace-cache effectiveness, and the explore/sim wall-time split.
		engineOpt.Progress = func(s experiments.TransientStats) {
			fmt.Fprintf(os.Stderr, "  engine: %s\n", s)
		}
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: ivory-exp [-outdir dir] [-timeout d] [-progress] [-workers n] <experiment|all> ...\nexperiments: %v\n", order)
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	// Validate every requested experiment before running any: a typo at the
	// end of the list should not cost an hour of compute first.
	for _, name := range args {
		if _, ok := runners[name]; !ok {
			fmt.Fprintf(os.Stderr, "ivory-exp: unknown experiment %q (have %v)\n", name, order)
			os.Exit(2)
		}
	}
	// ^C cancels the in-flight experiment's explorations instead of killing
	// the process, so partially written CSVs still get the summary below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// fig10/fig11/fig13 share the noise analysis; cache it across the run.
	// Only a successful result is memoized — a failed (e.g. cancelled)
	// attempt must not satisfy later callers with a partial analysis.
	var cached *experiments.Fig10Result
	noise := func(ctx context.Context) (*experiments.Fig10Result, error) {
		if cached != nil {
			return cached, nil
		}
		r, err := experiments.Fig10Run(ctx, engineOpt)
		if err != nil {
			return nil, err
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "  noise analysis done: %s\n", r.RunStats)
		}
		cached = r
		return cached, nil
	}
	var w *report.Writer
	if *outdir != "" {
		w = report.NewWriter(*outdir)
	}
	start := time.Now()
	failed := 0
	for k, name := range args {
		// A cancelled run stops here; individual experiment failures below
		// do not, so one broken figure can't abort the rest of `all`.
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "ivory-exp: run cancelled (%v) after %d/%d experiments\n", err, k, len(args))
			failed++
			break
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%.0fs elapsed)\n", k+1, len(args), name, time.Since(start).Seconds())
		}
		out, err := runners[name](ctx, noise)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivory-exp: %s: %v\n", name, err)
			failed++
			continue
		}
		fmt.Println(out.text)
		if w != nil && out.data != nil {
			if err := out.data.WriteCSV(w); err != nil {
				fmt.Fprintf(os.Stderr, "ivory-exp: %s: %v\n", name, err)
				failed++
			}
		}
	}
	if w != nil {
		for _, p := range w.Written {
			fmt.Fprintf(os.Stderr, "wrote %s\n", p)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ivory-exp: %d of %d experiments failed\n", failed, len(args))
		os.Exit(1)
	}
}
