// Command ivory-exp regenerates the paper's evaluation tables and figures,
// plus this reproduction's extension studies.
//
// Usage:
//
//	ivory-exp [-outdir dir] <experiment> [...]
//	ivory-exp all
//
// Experiments: fig4, fig6, fig7, fig8, fig9, table1, table2, fig10, fig11,
// fig12, fig13, ablations, twostage, dvfs, families, gridscale, gears.
// Text tables print to stdout; with -outdir, plot-ready CSV data files are
// written as well. See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"ivory/internal/experiments"
	"ivory/internal/report"
)

// csvWriter is implemented by every experiment result that has plot data.
type csvWriter interface {
	WriteCSV(*report.Writer) error
}

// outcome bundles an experiment's text rendering and optional CSV data.
type outcome struct {
	text string
	data csvWriter
}

type noiseFn func() (*experiments.Fig10Result, error)

type runner func(noise noiseFn) (outcome, error)

var runners = map[string]runner{
	"fig4": func(noiseFn) (outcome, error) {
		r, err := experiments.Fig4(0)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig6": func(noiseFn) (outcome, error) {
		r, err := experiments.Fig6()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig7": func(noiseFn) (outcome, error) {
		r, err := experiments.Fig7()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig8": func(noiseFn) (outcome, error) {
		r, err := experiments.Fig8()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig9": func(noiseFn) (outcome, error) {
		r, err := experiments.Fig9()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"table1": func(noiseFn) (outcome, error) {
		s, err := experiments.Table1()
		return outcome{text: s}, err
	},
	"table2": func(noiseFn) (outcome, error) {
		t, err := experiments.Table2()
		if err != nil {
			return outcome{}, err
		}
		return outcome{text: "Table 2 — " + t.Format()}, nil
	},
	"fig10": func(noise noiseFn) (outcome, error) {
		r, err := noise()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig11": func(noise noiseFn) (outcome, error) {
		r, err := noise()
		if err != nil {
			return outcome{}, err
		}
		// fig10's CSV writer also emits the fig11 traces.
		return outcome{text: r.FormatFig11()}, nil
	},
	"fig12": func(noiseFn) (outcome, error) {
		r, err := experiments.Fig12()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"fig13": func(noise noiseFn) (outcome, error) {
		n, err := noise()
		if err != nil {
			return outcome{}, err
		}
		r, err := experiments.Fig13(n)
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"ablations": func(noiseFn) (outcome, error) {
		r, err := experiments.Ablations()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"twostage": func(noiseFn) (outcome, error) {
		r, err := experiments.TwoStage()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"dvfs": func(noiseFn) (outcome, error) {
		r, err := experiments.FastDVFS()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"families": func(noiseFn) (outcome, error) {
		r, err := experiments.FamilyTransients()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"gridscale": func(noiseFn) (outcome, error) {
		r, err := experiments.GridScale()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"gears": func(noiseFn) (outcome, error) {
		r, err := experiments.Gears()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
	"variation": func(noiseFn) (outcome, error) {
		r, err := experiments.Variation(0, 0)
		if err != nil {
			return outcome{}, err
		}
		return outcome{text: r.Format()}, nil
	},
	"nodes": func(noiseFn) (outcome, error) {
		r, err := experiments.NodeSweep()
		if err != nil {
			return outcome{}, err
		}
		return outcome{r.Format(), r}, nil
	},
}

var order = []string{
	"fig4", "fig6", "fig7", "fig8", "fig9", "table1", "table2",
	"fig10", "fig11", "fig12", "fig13",
	"ablations", "twostage", "dvfs", "families", "gridscale", "gears", "variation", "nodes",
}

func main() {
	outdir := flag.String("outdir", "", "write plot-ready CSV data files to this directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: ivory-exp [-outdir dir] <experiment|all> ...\nexperiments: %v\n", order)
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	// fig10/fig11/fig13 share the noise analysis; cache it across the run.
	var cached *experiments.Fig10Result
	noise := func() (*experiments.Fig10Result, error) {
		if cached != nil {
			return cached, nil
		}
		var err error
		cached, err = experiments.Fig10(0, 0)
		return cached, err
	}
	var w *report.Writer
	if *outdir != "" {
		w = report.NewWriter(*outdir)
	}
	for _, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ivory-exp: unknown experiment %q (have %v)\n", name, order)
			os.Exit(2)
		}
		out, err := run(noise)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivory-exp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out.text)
		if w != nil && out.data != nil {
			if err := out.data.WriteCSV(w); err != nil {
				fmt.Fprintf(os.Stderr, "ivory-exp: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	if w != nil {
		for _, p := range w.Written {
			fmt.Fprintf(os.Stderr, "wrote %s\n", p)
		}
	}
}
