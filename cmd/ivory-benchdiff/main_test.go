package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivory/internal/numeric"
)

func TestParseBenchLine(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkExplore-8  10  123456 ns/op  2048 B/op  17 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "BenchmarkExplore" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", name)
	}
	if !numeric.ApproxEqual(r.NsPerOp, 123456, 0) || !numeric.ApproxEqual(r.AllocsPerOp, 17, 0) || !r.hasMem {
		t.Errorf("parsed %+v", r)
	}

	if _, _, ok := parseBenchLine("ok  	ivory/internal/core	1.2s"); ok {
		t.Error("non-benchmark line accepted")
	}
	if _, r, ok := parseBenchLine("BenchmarkX-4 100 50 ns/op"); !ok || r.hasMem {
		t.Errorf("time-only line: ok=%v r=%+v", ok, r)
	}
}

// TestCompactRoundTrip: writing the compact format and parsing it back
// must reproduce the result set exactly, including the has-memory
// distinction for time-only benchmarks.
func TestCompactRoundTrip(t *testing.T) {
	in := map[string]result{
		"BenchmarkWithMem": {NsPerOp: 123456, BytesPerOp: 2048, AllocsPerOp: 17, hasMem: true},
		"BenchmarkTime":    {NsPerOp: 50},
	}
	var buf strings.Builder
	if err := writeCompact(&buf, in); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, compactHeader+"\n") {
		t.Fatalf("missing format header:\n%s", text)
	}
	if n := strings.Count(text, "\n"); n != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", n, text)
	}

	p := writeTemp(t, "compact.json", text)
	got, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round-trip lost rows: %d of %d", len(got), len(in))
	}
	for name, want := range in {
		if got[name] != want {
			t.Errorf("%s round-tripped to %+v, want %+v", name, got[name], want)
		}
	}
}

// TestParseFileAutoDetect: one diff may mix a compact baseline with a raw
// test2json (or plain text) run; every format must parse to the same rows.
func TestParseFileAutoDetect(t *testing.T) {
	raw := writeTemp(t, "raw.json",
		`{"Action":"start","Package":"ivory"}
{"Action":"output","Package":"ivory","Output":"BenchmarkExplore-8   \t"}
{"Action":"output","Package":"ivory","Output":"10\t100 ns/op\t64 B/op\t2 allocs/op\n"}
{"Action":"pass","Package":"ivory"}
`)
	plain := writeTemp(t, "plain.txt", "BenchmarkExplore-8\t10\t100 ns/op\t64 B/op\t2 allocs/op\n")
	compact := writeTemp(t, "compact.json",
		compactHeader+"\n"+`{"name":"BenchmarkExplore","ns_per_op":100,"bytes_per_op":64,"allocs_per_op":2}`+"\n")
	want := result{NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2, hasMem: true}
	for _, p := range []string{raw, plain, compact} {
		got, err := parseFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(got) != 1 || got["BenchmarkExplore"] != want {
			t.Errorf("%s parsed to %+v, want {BenchmarkExplore: %+v}", p, got, want)
		}
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func row(out, name string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	return ""
}

func TestRunDiffUnion(t *testing.T) {
	oldRes := map[string]result{
		"BenchmarkShared":  {NsPerOp: 100, AllocsPerOp: 5, hasMem: true},
		"BenchmarkRemoved": {NsPerOp: 42},
	}
	newRes := map[string]result{
		"BenchmarkShared": {NsPerOp: 50, AllocsPerOp: 4, hasMem: true},
		"BenchmarkAdded":  {NsPerOp: 7},
	}
	var out, errw strings.Builder
	if code := runDiff(0, oldRes, newRes, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
	text := out.String()

	added := row(text, "Added")
	if added == "" || !strings.Contains(added, "added") {
		t.Errorf("no added row for one-file-only benchmark:\n%s", text)
	}
	if !strings.Contains(added, "-") {
		t.Errorf("added row lacks '-' placeholders: %q", added)
	}
	removed := row(text, "Removed")
	if removed == "" || !strings.Contains(removed, "removed") {
		t.Errorf("no removed row:\n%s", text)
	}
	shared := row(text, "Shared")
	if shared == "" || !strings.Contains(shared, "2.00x") {
		t.Errorf("shared speedup missing:\n%s", text)
	}
}

// TestRunDiffFailOverIgnoresUnshared: a benchmark with no baseline (or no
// successor) must never trip the regression gate.
func TestRunDiffFailOverIgnoresUnshared(t *testing.T) {
	oldRes := map[string]result{
		"BenchmarkGone": {NsPerOp: 1}, // would be a "massive regression" if compared against nothing
	}
	newRes := map[string]result{
		"BenchmarkNew": {NsPerOp: 1e9},
	}
	var out, errw strings.Builder
	if code := runDiff(1.05, oldRes, newRes, &out, &errw); code != 0 {
		t.Fatalf("unshared benchmarks gated -fail-over: exit %d, stderr %q", code, errw.String())
	}

	// A genuine shared regression still fails.
	oldRes["BenchmarkHot"] = result{NsPerOp: 100}
	newRes["BenchmarkHot"] = result{NsPerOp: 200}
	out.Reset()
	errw.Reset()
	if code := runDiff(1.05, oldRes, newRes, &out, &errw); code != 1 {
		t.Fatalf("shared 2x regression passed -fail-over 1.05: exit %d", code)
	}
	if !strings.Contains(errw.String(), "1 of 1 shared") {
		t.Errorf("gate counted unshared rows: %q", errw.String())
	}
}

func TestRunDiffEmptyInputs(t *testing.T) {
	var out, errw strings.Builder
	if code := runDiff(0, map[string]result{}, map[string]result{}, &out, &errw); code != 2 {
		t.Fatalf("two empty files: exit %d, want 2", code)
	}

	// One empty side is a valid diff (a brand-new or fully-retired suite).
	out.Reset()
	errw.Reset()
	newOnly := map[string]result{"BenchmarkFresh": {NsPerOp: 10}}
	if code := runDiff(2, map[string]result{}, newOnly, &out, &errw); code != 0 {
		t.Fatalf("empty baseline: exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "added") {
		t.Errorf("empty-baseline diff did not mark rows added:\n%s", out.String())
	}
}
