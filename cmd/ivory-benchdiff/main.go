// Command ivory-benchdiff compares two benchmark result files and prints an
// old-vs-new table of time and allocation deltas. Benchmarks present in only
// one file are reported as added/removed rows with "-" in the missing
// columns rather than silently dropped.
//
// Usage:
//
//	ivory-benchdiff [-fail-over ratio] old.json new.json
//	ivory-benchdiff -compact bench.json > compact.json
//
// Inputs are accepted in three formats, auto-detected per file: the compact
// one-row-per-benchmark NDJSON `make bench` commits (header line
// {"format":"ivory-bench-compact/v1"}), raw `go test -json` event streams,
// and plain `go test -bench` text output. -compact converts any of them to
// the compact form on stdout — `make bench` pipes the raw stream through it
// so the committed BENCH_*.json files hold one row per benchmark instead of
// thousands of wrapper events.
//
// In diff mode the exit code is 0 regardless of deltas unless -fail-over is
// set: then any shared benchmark whose ns/op grew by more than the given
// factor fails the run. Added and removed benchmarks never gate -fail-over —
// a missing baseline is not a regression. Exit 2 is reserved for unusable
// inputs (unreadable files, or no benchmarks in either file).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	hasMem      bool
}

// compactHeader is the first line of the compact format; the version
// suffix leaves room to evolve the row schema without breaking detection.
const compactHeader = `{"format":"ivory-bench-compact/v1"}`

// compactRow is one benchmark in the compact committed format. The memory
// columns are pointers so time-only benchmarks round-trip without growing
// fabricated zero measurements.
type compactRow struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// jsonLine is the union of the JSON shapes a line can take: a test2json
// event (Action/Output) or a compact row (name/ns_per_op). Format tags the
// compact header line, which carries no data.
type jsonLine struct {
	Action      string   `json:"Action"`
	Output      string   `json:"Output"`
	Format      string   `json:"format"`
	Name        string   `json:"name"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// parseFile reads a bench result file — compact NDJSON, go test -json
// stream, or raw bench text, auto-detected line by line — and returns
// benchmark name -> result.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to report
	out := map[string]result{}
	// Reassemble the test2json output stream as we go: test2json splits one
	// benchmark's result line across multiple Output events (the name+tab
	// and the measurements arrive separately). Compact rows carry complete
	// measurements per line and are recorded directly.
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var jl jsonLine
			if err := json.Unmarshal([]byte(line), &jl); err == nil {
				switch {
				case jl.Name != "" && jl.NsPerOp != nil:
					r := result{NsPerOp: *jl.NsPerOp}
					if jl.BytesPerOp != nil {
						r.BytesPerOp, r.hasMem = *jl.BytesPerOp, true
					}
					if jl.AllocsPerOp != nil {
						r.AllocsPerOp, r.hasMem = *jl.AllocsPerOp, true
					}
					out[jl.Name] = r
				case jl.Action == "output":
					text.WriteString(jl.Output)
				}
				continue
			}
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, line := range strings.Split(text.String(), "\n") {
		name, r, ok := parseBenchLine(line)
		if ok {
			out[name] = r
		}
	}
	return out, nil
}

// writeCompact renders the result set in the compact committed format:
// the header line, then one sorted row per benchmark.
func writeCompact(w io.Writer, res map[string]result) error {
	if _, err := fmt.Fprintln(w, compactHeader); err != nil {
		return err
	}
	names := make([]string, 0, len(res))
	for name := range res {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := res[name]
		row := compactRow{Name: name, NsPerOp: r.NsPerOp}
		if r.hasMem {
			b, a := r.BytesPerOp, r.AllocsPerOp
			row.BytesPerOp, row.AllocsPerOp = &b, &a
		}
		data, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
			return err
		}
	}
	return nil
}

// parseBenchLine parses "BenchmarkName-8  1  123 ns/op  45 B/op  6 allocs/op"
// (custom ReportMetric columns are skipped).
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix so runs on different machines still match.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var r result
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
			r.hasMem = true
		case "allocs/op":
			r.AllocsPerOp = v
			r.hasMem = true
		}
	}
	return name, r, seen
}

func ratio(old, new float64) string {
	if old <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", old/new)
}

// runDiff prints the union diff of the two result sets and returns the
// process exit code: 0 on success, 1 when -fail-over catches a shared
// regression, 2 when neither file holds a single benchmark. Benchmarks in
// only one file become added/removed rows with "-" in the missing side's
// columns, and never participate in the -fail-over gate.
func runDiff(failOver float64, oldRes, newRes map[string]result, out, errw io.Writer) int {
	if len(oldRes) == 0 && len(newRes) == 0 {
		_, _ = fmt.Fprintln(errw, "ivory-benchdiff: no benchmarks in either file")
		return 2
	}
	names := make([]string, 0, len(oldRes)+len(newRes))
	for name := range oldRes {
		names = append(names, name)
	}
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	_, _ = fmt.Fprintf(out, "%-36s %14s %14s %8s %12s %12s %8s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "ratio", "status")
	regressed, shared := 0, 0
	for _, name := range names {
		o, hasOld := oldRes[name]
		n, hasNew := newRes[name]
		timeCols := [3]string{"-", "-", "-"}
		allocCols := [3]string{"-", "-", "-"}
		status := ""
		switch {
		case hasOld && hasNew:
			shared++
			timeCols = [3]string{fmt.Sprintf("%.0f", o.NsPerOp), fmt.Sprintf("%.0f", n.NsPerOp), ratio(o.NsPerOp, n.NsPerOp)}
			if o.hasMem && n.hasMem {
				allocCols = [3]string{fmt.Sprintf("%.0f", o.AllocsPerOp), fmt.Sprintf("%.0f", n.AllocsPerOp), ratio(o.AllocsPerOp, n.AllocsPerOp)}
			}
			if failOver > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*failOver {
				regressed++
			}
		case hasNew:
			status = "added"
			timeCols[1] = fmt.Sprintf("%.0f", n.NsPerOp)
			if n.hasMem {
				allocCols[1] = fmt.Sprintf("%.0f", n.AllocsPerOp)
			}
		default:
			status = "removed"
			timeCols[0] = fmt.Sprintf("%.0f", o.NsPerOp)
			if o.hasMem {
				allocCols[0] = fmt.Sprintf("%.0f", o.AllocsPerOp)
			}
		}
		_, _ = fmt.Fprintf(out, "%-36s %14s %14s %8s %12s %12s %8s %8s\n",
			strings.TrimPrefix(name, "Benchmark"), timeCols[0], timeCols[1], timeCols[2],
			allocCols[0], allocCols[1], allocCols[2], status)
	}
	if regressed > 0 {
		_, _ = fmt.Fprintf(errw, "ivory-benchdiff: %d of %d shared benchmarks regressed beyond %.2fx\n",
			regressed, shared, failOver)
		return 1
	}
	return 0
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit nonzero when any shared benchmark's ns/op grew by more than this factor (0 disables)")
	compact := flag.Bool("compact", false, "convert one input file (any accepted format) to compact NDJSON on stdout")
	flag.Parse()
	if *compact {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ivory-benchdiff -compact bench.json > compact.json")
			os.Exit(2)
		}
		res, err := parseFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
			os.Exit(2)
		}
		if len(res) == 0 {
			fmt.Fprintf(os.Stderr, "ivory-benchdiff: no benchmarks in %s\n", flag.Arg(0))
			os.Exit(2)
		}
		if err := writeCompact(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ivory-benchdiff [-fail-over ratio] old.json new.json")
		os.Exit(2)
	}
	oldRes, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
		os.Exit(2)
	}
	os.Exit(runDiff(*failOver, oldRes, newRes, os.Stdout, os.Stderr))
}
