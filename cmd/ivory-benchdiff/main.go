// Command ivory-benchdiff compares two benchmark result files and prints an
// old-vs-new table of time and allocation deltas. Benchmarks present in only
// one file are reported as added/removed rows with "-" in the missing
// columns rather than silently dropped.
//
// Usage:
//
//	ivory-benchdiff [-fail-over ratio] old.json new.json
//
// Inputs are `go test -json` streams (the BENCH_*.json files `make bench`
// writes); plain `go test -bench` text output is accepted too. The exit code
// is 0 regardless of deltas unless -fail-over is set: then any shared
// benchmark whose ns/op grew by more than the given factor fails the run.
// Added and removed benchmarks never gate -fail-over — a missing baseline is
// not a regression. Exit 2 is reserved for unusable inputs (unreadable
// files, or no benchmarks in either file).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	hasMem      bool
}

// event is the subset of the test2json record benchdiff needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// parseFile reads a go test -json stream (or raw bench text) and returns
// benchmark name -> result.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to report
	// Reassemble the output stream first: test2json splits one benchmark's
	// result line across multiple Output events (the name+tab and the
	// measurements arrive separately).
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]result{}
	for _, line := range strings.Split(text.String(), "\n") {
		name, r, ok := parseBenchLine(line)
		if ok {
			out[name] = r
		}
	}
	return out, nil
}

// parseBenchLine parses "BenchmarkName-8  1  123 ns/op  45 B/op  6 allocs/op"
// (custom ReportMetric columns are skipped).
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix so runs on different machines still match.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var r result
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
			r.hasMem = true
		case "allocs/op":
			r.AllocsPerOp = v
			r.hasMem = true
		}
	}
	return name, r, seen
}

func ratio(old, new float64) string {
	if old <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", old/new)
}

// runDiff prints the union diff of the two result sets and returns the
// process exit code: 0 on success, 1 when -fail-over catches a shared
// regression, 2 when neither file holds a single benchmark. Benchmarks in
// only one file become added/removed rows with "-" in the missing side's
// columns, and never participate in the -fail-over gate.
func runDiff(failOver float64, oldRes, newRes map[string]result, out, errw io.Writer) int {
	if len(oldRes) == 0 && len(newRes) == 0 {
		_, _ = fmt.Fprintln(errw, "ivory-benchdiff: no benchmarks in either file")
		return 2
	}
	names := make([]string, 0, len(oldRes)+len(newRes))
	for name := range oldRes {
		names = append(names, name)
	}
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	_, _ = fmt.Fprintf(out, "%-36s %14s %14s %8s %12s %12s %8s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "ratio", "status")
	regressed, shared := 0, 0
	for _, name := range names {
		o, hasOld := oldRes[name]
		n, hasNew := newRes[name]
		timeCols := [3]string{"-", "-", "-"}
		allocCols := [3]string{"-", "-", "-"}
		status := ""
		switch {
		case hasOld && hasNew:
			shared++
			timeCols = [3]string{fmt.Sprintf("%.0f", o.NsPerOp), fmt.Sprintf("%.0f", n.NsPerOp), ratio(o.NsPerOp, n.NsPerOp)}
			if o.hasMem && n.hasMem {
				allocCols = [3]string{fmt.Sprintf("%.0f", o.AllocsPerOp), fmt.Sprintf("%.0f", n.AllocsPerOp), ratio(o.AllocsPerOp, n.AllocsPerOp)}
			}
			if failOver > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*failOver {
				regressed++
			}
		case hasNew:
			status = "added"
			timeCols[1] = fmt.Sprintf("%.0f", n.NsPerOp)
			if n.hasMem {
				allocCols[1] = fmt.Sprintf("%.0f", n.AllocsPerOp)
			}
		default:
			status = "removed"
			timeCols[0] = fmt.Sprintf("%.0f", o.NsPerOp)
			if o.hasMem {
				allocCols[0] = fmt.Sprintf("%.0f", o.AllocsPerOp)
			}
		}
		_, _ = fmt.Fprintf(out, "%-36s %14s %14s %8s %12s %12s %8s %8s\n",
			strings.TrimPrefix(name, "Benchmark"), timeCols[0], timeCols[1], timeCols[2],
			allocCols[0], allocCols[1], allocCols[2], status)
	}
	if regressed > 0 {
		_, _ = fmt.Fprintf(errw, "ivory-benchdiff: %d of %d shared benchmarks regressed beyond %.2fx\n",
			regressed, shared, failOver)
		return 1
	}
	return 0
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit nonzero when any shared benchmark's ns/op grew by more than this factor (0 disables)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ivory-benchdiff [-fail-over ratio] old.json new.json")
		os.Exit(2)
	}
	oldRes, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
		os.Exit(2)
	}
	os.Exit(runDiff(*failOver, oldRes, newRes, os.Stdout, os.Stderr))
}
