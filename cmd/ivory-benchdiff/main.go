// Command ivory-benchdiff compares two benchmark result files and prints an
// old-vs-new table of time and allocation deltas for the benchmarks the two
// runs share.
//
// Usage:
//
//	ivory-benchdiff [-fail-over ratio] old.json new.json
//
// Inputs are `go test -json` streams (the BENCH_*.json files `make bench`
// writes); plain `go test -bench` text output is accepted too. The exit code
// is 0 regardless of deltas unless -fail-over is set: then any shared
// benchmark whose ns/op grew by more than the given factor fails the run
// (CI keeps the step non-gating via continue-on-error either way).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	hasMem      bool
}

// event is the subset of the test2json record benchdiff needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// parseFile reads a go test -json stream (or raw bench text) and returns
// benchmark name -> result.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to report
	// Reassemble the output stream first: test2json splits one benchmark's
	// result line across multiple Output events (the name+tab and the
	// measurements arrive separately).
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]result{}
	for _, line := range strings.Split(text.String(), "\n") {
		name, r, ok := parseBenchLine(line)
		if ok {
			out[name] = r
		}
	}
	return out, nil
}

// parseBenchLine parses "BenchmarkName-8  1  123 ns/op  45 B/op  6 allocs/op"
// (custom ReportMetric columns are skipped).
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix so runs on different machines still match.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var r result
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
			r.hasMem = true
		case "allocs/op":
			r.AllocsPerOp = v
			r.hasMem = true
		}
	}
	return name, r, seen
}

func ratio(old, new float64) string {
	if old <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", old/new)
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit nonzero when any shared benchmark's ns/op grew by more than this factor (0 disables)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ivory-benchdiff [-fail-over ratio] old.json new.json")
		os.Exit(2)
	}
	oldRes, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: %v\n", err)
		os.Exit(2)
	}
	var shared []string
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			shared = append(shared, name)
		}
	}
	if len(shared) == 0 {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: no shared benchmarks between %s (%d) and %s (%d)\n",
			flag.Arg(0), len(oldRes), flag.Arg(1), len(newRes))
		os.Exit(2)
	}
	sort.Strings(shared)
	fmt.Printf("%-36s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "ratio")
	regressed := 0
	for _, name := range shared {
		o, n := oldRes[name], newRes[name]
		allocCols := [3]string{"-", "-", "-"}
		if o.hasMem && n.hasMem {
			allocCols[0] = fmt.Sprintf("%.0f", o.AllocsPerOp)
			allocCols[1] = fmt.Sprintf("%.0f", n.AllocsPerOp)
			allocCols[2] = ratio(o.AllocsPerOp, n.AllocsPerOp)
		}
		fmt.Printf("%-36s %14.0f %14.0f %8s %12s %12s %8s\n",
			strings.TrimPrefix(name, "Benchmark"), o.NsPerOp, n.NsPerOp, ratio(o.NsPerOp, n.NsPerOp),
			allocCols[0], allocCols[1], allocCols[2])
		if *failOver > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(*failOver) {
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "ivory-benchdiff: %d of %d shared benchmarks regressed beyond %.2fx\n",
			regressed, len(shared), *failOver)
		os.Exit(1)
	}
}
