package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchGateScript runs scripts/benchgate.sh — the exact command CI's
// gating step executes — against seeded bench files and checks both sides
// of the gate: a >15x slowdown on a shared benchmark turns it red (exit
// 1), while a mild regression plus added/removed benchmarks stays green.
func TestBenchGateScript(t *testing.T) {
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(root, "scripts", "benchgate.sh")
	if _, err := os.Stat(script); err != nil {
		t.Fatalf("gate script missing: %v", err)
	}

	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := write("old.txt", `BenchmarkExplore-8	10	100 ns/op	64 B/op	2 allocs/op
BenchmarkPlace-8	10	200 ns/op
BenchmarkRetired-8	10	50 ns/op
`)
	// Explore regressed 20x (> the 15x gate); Place regressed 2x (noise);
	// Retired disappeared and Fresh is new — neither may gate.
	red := write("red.txt", `BenchmarkExplore-8	10	2000 ns/op	64 B/op	2 allocs/op
BenchmarkPlace-8	10	400 ns/op
BenchmarkFresh-8	10	1 ns/op
`)
	green := write("green.txt", `BenchmarkExplore-8	10	140 ns/op	64 B/op	2 allocs/op
BenchmarkPlace-8	10	400 ns/op
BenchmarkFresh-8	10	1 ns/op
`)

	run := func(oldF, newF string) (int, string) {
		cmd := exec.Command("bash", script, oldF, newF)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("gate script did not run: %v\n%s", err, out)
		}
		return ee.ExitCode(), string(out)
	}

	code, out := run(old, red)
	if code != 1 {
		t.Fatalf("20x regression: gate exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "regressed beyond") {
		t.Errorf("red gate output does not name the regression:\n%s", out)
	}

	code, out = run(old, green)
	if code != 0 {
		t.Fatalf("mild regression + churn: gate exited %d, want 0\n%s", code, out)
	}

	// Format transition: a compact committed baseline diffed against a raw
	// text run must gate identically — green on mild noise, red past 15x.
	compactOld := write("old_compact.json", compactHeader+"\n"+
		`{"name":"BenchmarkExplore","ns_per_op":100,"bytes_per_op":64,"allocs_per_op":2}`+"\n"+
		`{"name":"BenchmarkPlace","ns_per_op":200}`+"\n")
	code, out = run(compactOld, green)
	if code != 0 {
		t.Fatalf("compact baseline vs raw run: gate exited %d, want 0\n%s", code, out)
	}
	code, out = run(compactOld, red)
	if code != 1 {
		t.Fatalf("compact baseline vs 20x regression: gate exited %d, want 1\n%s", code, out)
	}
}
