// Command ivoryd is the Ivory exploration daemon: a long-running HTTP/JSON
// service wrapping the design-space exploration and transient case-study
// engines behind a bounded job queue, an LRU result cache with singleflight
// coalescing, Prometheus-style metrics, and a graceful SIGTERM drain.
//
// Usage:
//
//	ivoryd [-addr :7077] [-workers 2] [-engine-workers 0] [-queue 16]
//	       [-cache 128] [-timeout 60s] [-drain-timeout 30s] [-job-history 256]
//	       [-job-ttl 15m] [-role single|worker|coordinator]
//	       [-cluster-workers http://w1,http://w2] [-health-interval 2s]
//	       [-shard-timeout 30s] [-shard-retries 2]
//
// Endpoints:
//
//	POST /v1/explore    design-space exploration (async with "async": true)
//	POST /v1/explore/stream  the same exploration as live SSE telemetry
//	POST /v1/transient  workload-driven transient noise sweep
//	POST /v1/hybrid     per-domain rail assignment sweep over an SoC
//	                    floorplan (hybrid power delivery under an area
//	                    budget; async with "async": true)
//	POST /v1/shard/explore   internal shard API (cluster workers)
//	GET  /v1/cluster    cluster role; on a coordinator, worker health and
//	                    shard latency/retry telemetry
//	GET  /v1/jobs/{id}  poll an async job
//	GET  /healthz       200 ok | 503 draining
//	GET  /metrics       Prometheus text exposition
//
// Cluster mode: start replicas with -role=worker, then a coordinator with
// -role=coordinator -cluster-workers=http://w1:7077,http://w2:7077. The
// coordinator partitions each exploration's enumerated design space into
// contiguous index ranges, fans them out to the workers, and merges the
// outcomes deterministically — the ranked result is bit-identical to a
// single-node run. Lost shards are retried on other replicas; when retries
// exhaust, the response carries the completed slices with
// "incomplete": true.
//
// On SIGTERM/SIGINT the daemon stops admission (healthz flips to
// draining), drains in-flight jobs within -drain-timeout — cancelling
// stragglers so explorations return their ranked partial results — and
// exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ivory/internal/server"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = default: 2)")
	engineWorkers := flag.Int("engine-workers", 0, "engine worker goroutines per job (0 = NumCPU/workers)")
	queue := flag.Int("queue", 0, "pending-job queue depth before 429s (0 = default: 16)")
	cache := flag.Int("cache", 0, "LRU result-cache entries (0 = default: 128, negative disables)")
	timeout := flag.Duration("timeout", 0, "per-job compute deadline (0 = default: 60s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	jobHistory := flag.Int("job-history", 0, "async job records retained (0 = default: 256)")
	jobTTL := flag.Duration("job-ttl", 0, "retention window for finished async job records; polling past it returns 404 (0 = default: 15m, negative disables)")
	role := flag.String("role", "", "cluster role: single (default), worker, or coordinator")
	clusterWorkers := flag.String("cluster-workers", "", "comma-separated worker base URLs (coordinator mode)")
	healthInterval := flag.Duration("health-interval", 0, "worker health-check cadence (0 = default: 2s)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard attempt deadline (0 = default: 30s)")
	shardRetries := flag.Int("shard-retries", 0, "shard reassignments before returning a partial result (0 = default: 2, negative disables)")
	flag.Parse()

	switch *role {
	case "", "single", "worker", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "ivoryd: unknown -role %q (want single|worker|coordinator)\n", *role)
		os.Exit(2)
	}
	var cluster *server.ClusterConfig
	if *clusterWorkers != "" {
		var urls []string
		for _, u := range strings.Split(*clusterWorkers, ",") {
			if u = strings.TrimSpace(strings.TrimSuffix(u, "/")); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "ivoryd: -cluster-workers has no usable URLs")
			os.Exit(2)
		}
		cluster = &server.ClusterConfig{
			Workers:        urls,
			HealthInterval: *healthInterval,
			ShardTimeout:   *shardTimeout,
			MaxRetries:     *shardRetries,
		}
	} else if *role == "coordinator" {
		fmt.Fprintln(os.Stderr, "ivoryd: -role=coordinator requires -cluster-workers")
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		EngineWorkers:  *engineWorkers,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		JobHistory:     *jobHistory,
		JobTTL:         *jobTTL,
		Role:           *role,
		Cluster:        cluster,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivoryd:", err)
		os.Exit(1)
	}
	// The smoke harness parses this line to find a :0-assigned port; keep
	// the format stable.
	fmt.Printf("ivoryd: listening on %s\n", l.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	shutdownErr := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Printf("ivoryd: %v received, draining (up to %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	serveErr := srv.Serve(l)
	if serveErr != nil && serveErr != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "ivoryd:", serveErr)
		os.Exit(1)
	}
	if err := <-shutdownErr; err != nil {
		fmt.Fprintln(os.Stderr, "ivoryd: drain incomplete:", err)
		os.Exit(1)
	}
	fmt.Println("ivoryd: drained cleanly")
}
