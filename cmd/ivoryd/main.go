// Command ivoryd is the Ivory exploration daemon: a long-running HTTP/JSON
// service wrapping the design-space exploration and transient case-study
// engines behind a bounded job queue, an LRU result cache with singleflight
// coalescing, Prometheus-style metrics, and a graceful SIGTERM drain.
//
// Usage:
//
//	ivoryd [-addr :7077] [-workers 2] [-engine-workers 0] [-queue 16]
//	       [-cache 128] [-timeout 60s] [-drain-timeout 30s] [-job-history 256]
//	       [-job-ttl 15m]
//
// Endpoints:
//
//	POST /v1/explore    design-space exploration (async with "async": true)
//	POST /v1/explore/stream  the same exploration as live SSE telemetry
//	POST /v1/transient  workload-driven transient noise sweep
//	GET  /v1/jobs/{id}  poll an async job
//	GET  /healthz       200 ok | 503 draining
//	GET  /metrics       Prometheus text exposition
//
// On SIGTERM/SIGINT the daemon stops admission (healthz flips to
// draining), drains in-flight jobs within -drain-timeout — cancelling
// stragglers so explorations return their ranked partial results — and
// exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ivory/internal/server"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = default: 2)")
	engineWorkers := flag.Int("engine-workers", 0, "engine worker goroutines per job (0 = NumCPU/workers)")
	queue := flag.Int("queue", 0, "pending-job queue depth before 429s (0 = default: 16)")
	cache := flag.Int("cache", 0, "LRU result-cache entries (0 = default: 128, negative disables)")
	timeout := flag.Duration("timeout", 0, "per-job compute deadline (0 = default: 60s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	jobHistory := flag.Int("job-history", 0, "async job records retained (0 = default: 256)")
	jobTTL := flag.Duration("job-ttl", 0, "retention window for finished async job records; polling past it returns 404 (0 = default: 15m, negative disables)")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		EngineWorkers:  *engineWorkers,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		JobHistory:     *jobHistory,
		JobTTL:         *jobTTL,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivoryd:", err)
		os.Exit(1)
	}
	// The smoke harness parses this line to find a :0-assigned port; keep
	// the format stable.
	fmt.Printf("ivoryd: listening on %s\n", l.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	shutdownErr := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Printf("ivoryd: %v received, draining (up to %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	serveErr := srv.Serve(l)
	if serveErr != nil && serveErr != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "ivoryd:", serveErr)
		os.Exit(1)
	}
	if err := <-shutdownErr; err != nil {
		fmt.Fprintln(os.Stderr, "ivoryd: drain incomplete:", err)
		os.Exit(1)
	}
	fmt.Println("ivoryd: drained cleanly")
}
