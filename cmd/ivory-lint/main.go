// Command ivory-lint runs Ivory's physics-aware static-analysis suite
// (internal/analysis) over the module.
//
// Usage:
//
//	ivory-lint [flags] [packages]
//
// Packages default to ./... and accept plain directories or recursive
// ./dir/... patterns. Exit status is 0 when clean, 1 when any analyzer
// reports a finding, and 2 on usage or load errors.
//
// Findings are suppressed by a comment on the same line or the line
// above:
//
//	//lint:ignore floatcmp comparing against the exact sentinel we stored
//
// The reason is mandatory; a directive without one is itself reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ivory/internal/analysis"
)

// jsonDiagnostic is the -json wire format, one object per finding. The
// field names are stable: CI tooling turns them into annotations.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run())
}

func run() int {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list analyzers and exit")
	unitAllow := flag.String("unitsuffix.allow", "", "comma-separated extra unit tokens for the unitsuffix analyzer")
	nonfinitePkgs := flag.String("nonfinite.pkgs", "", "comma-separated extra package suffixes for the nonfinite analyzer")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ivory-lint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	disabled := map[string]bool{}
	for _, n := range splitList(*disable) {
		if !known[n] {
			fmt.Fprintf(os.Stderr, "ivory-lint: unknown analyzer %q in -disable (have:", n)
			for _, a := range all {
				fmt.Fprintf(os.Stderr, " %s", a.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			return 2
		}
		disabled[n] = true
	}
	for _, tok := range splitList(*unitAllow) {
		analysis.UnitWords[strings.ToLower(tok)] = true
	}
	analysis.NonFinitePackages = append(analysis.NonFinitePackages, splitList(*nonfinitePkgs)...)

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivory-lint:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivory-lint:", err)
		return 2
	}
	runner := &analysis.Runner{Analyzers: all, Disabled: disabled}
	diags, err := runner.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivory-lint:", err)
		return 2
	}
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		out = append(out, jsonDiagnostic{
			File: pos.Filename, Line: pos.Line, Column: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ivory-lint:", err)
			return 2
		}
	} else {
		for _, d := range out {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ivory-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
