package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ivory/internal/core"
	"ivory/internal/ivr"
	"ivory/internal/numeric"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenResult is a deterministic engine result: fixed metrics, fixed
// telemetry, no wall-clock dependence, so the JSON rendering is stable.
func goldenResult(t *testing.T) *core.Result {
	t.Helper()
	dto := SpecDTO{Node: "45nm", VInV: 1.8, VOutV: 0.9, IMaxA: 1, AreaMM2: 2, Kinds: []string{"SC", "buck"}}
	spec, err := dto.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{
		Spec:     norm,
		Rejected: 3,
		Candidates: []core.Candidate{
			{Kind: core.KindSC, Label: "2:1 MIM 16ph", Metrics: ivr.Metrics{
				Efficiency: 0.82, RippleVpp: 0.004, FSw: 120e6, AreaDie: 1.5e-6, POut: 0.9,
				Loss: ivr.LossBreakdown{Conduction: 0.08, GateDrive: 0.03, Parasitic: 0.02, Leakage: 0.005, Control: 0.002},
			}},
			{Kind: core.KindBuck, Label: "buck 2ph L=2nH", Metrics: ivr.Metrics{
				Efficiency: 0.78, RippleVpp: 0.006, FSw: 200e6, AreaDie: 1.8e-6, POut: 0.9,
				Loss: ivr.LossBreakdown{Conduction: 0.1, GateDrive: 0.04, Magnetic: 0.05},
			}},
		},
	}
	res.Best = res.Candidates[0]
	res.Stats = core.Stats{
		Jobs: 4, Done: 4,
		TopoCacheHits: 7, TopoCacheMisses: 2,
		GridCholesky: 1,
		Wall:         1500 * time.Millisecond, CandidatesPerSec: 42,
	}
	res.Stats.PerKind[core.KindSC] = core.KindStats{Accepted: 1, Rejected: 2}
	res.Stats.PerKind[core.KindBuck] = core.KindStats{Accepted: 1, Rejected: 1}
	return res
}

// TestExploreResponseGolden pins the wire schema byte-for-byte: a renamed or
// re-typed JSON field is an API break and must show up in review as a golden
// diff, not as a surprised client.
func TestExploreResponseGolden(t *testing.T) {
	resp := ExploreResponseFromResult(goldenResult(t), nil)
	got, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "explore_response.golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ExploreResponse JSON drifted from golden schema.\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestSpecHashCanonical(t *testing.T) {
	vout := 0.9
	elided := SpecDTO{Node: "45nm", VInV: 1.8, VOutV: vout, IMaxA: 1, AreaMM2: 2}
	explicit := SpecDTO{
		Node: "45nm", VInV: 1.8, VOutV: vout, IMaxA: 1, AreaMM2: 2,
		// Computed, not literal: the engine defaults ripple to the runtime
		// product 0.01*VOut, which differs from the 0.009 literal in the
		// last bit.
		RippleMaxV: 0.01 * vout, EfficiencyFloor: 0.25, FSwMaxHz: 1e9,
		Objective: "max-efficiency", Kinds: []string{"LDO", "SC", "buck"},
	}
	h1 := hashOf(t, elided)
	h2 := hashOf(t, explicit)
	if h1 != h2 {
		t.Errorf("elided defaults hash %s != explicit defaults hash %s", h1, h2)
	}
	other := elided
	other.VOutV = 1.0
	if h3 := hashOf(t, other); h3 == h1 {
		t.Error("distinct specs collided")
	}
	if len(h1) != 16 {
		t.Errorf("hash %q is not 16 hex chars", h1)
	}
}

func hashOf(t *testing.T, d SpecDTO) string {
	t.Helper()
	spec, err := d.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return SpecHash(norm)
}

func TestTransientRequestHashOrderInsensitive(t *testing.T) {
	a := TransientRequest{TUS: 5, Benchmarks: []string{"b", "a"}, Configs: []int{4, 0}}
	b := TransientRequest{TUS: 5, Benchmarks: []string{"a", "b"}, Configs: []int{0, 4}}
	if a.Hash() != b.Hash() {
		t.Error("benchmark/config order changed the hash")
	}
	c := TransientRequest{TUS: 5, Benchmarks: []string{"a"}, Configs: []int{0, 4}}
	if a.Hash() == c.Hash() {
		t.Error("distinct benchmark sets collided")
	}
}

func TestTrimmed(t *testing.T) {
	resp := &ExploreResponse{Candidates: make([]CandidateDTO, 25), TotalCandidates: 25}
	if n := len(resp.Trimmed(0).Candidates); n != 10 {
		t.Errorf("Trimmed(0) kept %d candidates, want the default 10", n)
	}
	if n := len(resp.Trimmed(-1).Candidates); n != 25 {
		t.Errorf("Trimmed(-1) kept %d, want all 25", n)
	}
	if n := len(resp.Trimmed(3).Candidates); n != 3 {
		t.Errorf("Trimmed(3) kept %d", n)
	}
	if n := len(resp.Trimmed(100).Candidates); n != 25 {
		t.Errorf("Trimmed(100) kept %d, want all 25", n)
	}
	// Trimming must not mutate the cached full response.
	if len(resp.Candidates) != 25 {
		t.Error("Trimmed mutated the receiver")
	}
	if resp.Trimmed(3).TotalCandidates != 25 {
		t.Error("Trimmed lost TotalCandidates")
	}
}

// TestSpecDTORoundTrip checks DTO -> Spec -> DTO is lossless for the fields
// the wire form carries.
func TestSpecDTORoundTrip(t *testing.T) {
	in := SpecDTO{
		Node: "45nm", VInV: 1.8, VOutV: 0.9, IMaxA: 2.5, AreaMM2: 4,
		RippleMaxV: 0.01, Objective: "min-area", EfficiencyFloor: 0.5,
		Kinds: []string{"SC", "LDO"}, FSwMaxHz: 5e8,
	}
	spec, err := in.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	out := SpecDTOFromSpec(spec)
	if out.Node != in.Node || out.Objective != "min-area" {
		t.Errorf("round trip drifted: %+v -> %+v", in, out)
	}
	for _, f := range []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"vin_v", out.VInV, in.VInV, 0},
		{"vout_v", out.VOutV, in.VOutV, 0},
		{"imax_a", out.IMaxA, in.IMaxA, 0},
		{"ripple_max_v", out.RippleMaxV, in.RippleMaxV, 0},
		{"efficiency_floor", out.EfficiencyFloor, in.EfficiencyFloor, 0},
		{"fsw_max_hz", out.FSwMaxHz, in.FSwMaxHz, 0},
		// Area goes through mm² -> m² -> mm²; allow float rounding.
		{"area_mm2", out.AreaMM2, in.AreaMM2, 1e-12},
	} {
		if !numeric.ApproxEqual(f.got, f.want, f.tol) {
			t.Errorf("%s round trip: %g -> %g", f.name, f.want, f.got)
		}
	}
	if len(out.Kinds) != 2 || out.Kinds[0] != "SC" || out.Kinds[1] != "LDO" {
		t.Errorf("kinds round trip: %v", out.Kinds)
	}
}
