package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Cluster-mode acceptance tests: coordinator output must be bit-identical
// to single-node output for both search strategies at any worker count and
// shard granularity, a cache hit must short-circuit shard dispatch, shard
// requests must never pollute the full-result cache, and degraded fleets
// must either reassign (identical output) or degrade to an explicit
// incomplete partial — never a torn merge.

// newWorkerServer boots a worker replica behind httptest. The deep queue
// absorbs shard storms from fine-grained partition tests without 429 noise.
func newWorkerServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, QueueDepth: 256, EngineWorkers: 1, Role: "worker"})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// newCoordinator boots a coordinator wired to the given worker URLs.
func newCoordinator(t *testing.T, urls []string, mutate func(*ClusterConfig)) (*Server, *httptest.Server) {
	t.Helper()
	cc := &ClusterConfig{Workers: urls, HealthInterval: 50 * time.Millisecond}
	if mutate != nil {
		mutate(cc)
	}
	s := New(Config{Workers: 2, QueueDepth: 8, EngineWorkers: 1, Cluster: cc})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// exploreBody requests the full ranked list for one of the committed paper
// sweeps (the smoke spec) under the given strategy.
func exploreBody(search string) string {
	return fmt.Sprintf(`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2,"search":%q},"top":-1}`, search)
}

// normalizeVolatileStats zeroes the measurement fields that legitimately
// differ between runs (wall clock, throughput, package-wide cache diffs).
// Everything else — candidates, ranking, per-kind counts, jobs/done,
// pruning telemetry — must match bit-for-bit.
func normalizeVolatileStats(r *ExploreResponse) {
	r.Stats.WallMS = 0
	r.Stats.CandidatesPerSec = 0
	r.Stats.TopoCacheHits = 0
	r.Stats.TopoCacheMisses = 0
	r.Stats.GridCholesky = 0
	r.Stats.GridCG = 0
}

// canonicalExploreJSON re-marshals a wire body with volatile stats zeroed.
func canonicalExploreJSON(t *testing.T, body []byte) string {
	t.Helper()
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad explore body %.200s: %v", body, err)
	}
	normalizeVolatileStats(&er)
	out, err := json.Marshal(er)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestClusterEquivalence proves the tentpole determinism contract:
// coordinator output over 1, 2, and 4 workers is bit-identical to the
// single-node wire body for both the exhaustive sweep and the adaptive
// search.
func TestClusterEquivalence(t *testing.T) {
	_, single := newWorkerServer(t)
	for _, search := range []string{"exhaustive", "adaptive"} {
		_, refBody := postJSON(t, single.URL+"/v1/explore", exploreBody(search))
		ref := canonicalExploreJSON(t, refBody)
		var er ExploreResponse
		if err := json.Unmarshal(refBody, &er); err != nil || len(er.Candidates) == 0 {
			t.Fatalf("single-node %s returned no candidates (err %v)", search, err)
		}
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%dw", search, workers), func(t *testing.T) {
				urls := make([]string, workers)
				for i := range urls {
					_, ts := newWorkerServer(t)
					urls[i] = ts.URL
				}
				_, coord := newCoordinator(t, urls, nil)
				resp, body := postJSON(t, coord.URL+"/v1/explore", exploreBody(search))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("coordinator explore: %d %s", resp.StatusCode, body)
				}
				if got := canonicalExploreJSON(t, body); got != ref {
					t.Errorf("cluster result diverged from single-node\n got: %.400s\nwant: %.400s", got, ref)
				}
			})
		}
	}
}

// TestClusterFineShardsOnTies slices the space far finer than the worker
// count — shard boundaries land between adjacent configurations whose
// candidates share labels and tie under the objective (the two SC
// allocation policies of one cell, neighbouring shares at the same
// interleave) — so the merge leans on the canonical-key tie-break instead
// of arrival order. Output must still be bit-identical.
func TestClusterFineShardsOnTies(t *testing.T) {
	_, single := newWorkerServer(t)
	_, refBody := postJSON(t, single.URL+"/v1/explore", exploreBody("exhaustive"))
	ref := canonicalExploreJSON(t, refBody)

	// Confirm duplicate labels actually exist, so the tie-break is
	// load-bearing in this sweep rather than vacuous.
	var er ExploreResponse
	if err := json.Unmarshal(refBody, &er); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	dup := false
	for _, c := range er.Candidates {
		if seen[c.Label] {
			dup = true
			break
		}
		seen[c.Label] = true
	}
	if !dup {
		t.Fatal("sweep has no duplicate-label candidates; tie-boundary test is vacuous")
	}

	urls := make([]string, 2)
	for i := range urls {
		_, ts := newWorkerServer(t)
		urls[i] = ts.URL
	}
	_, coord := newCoordinator(t, urls, func(cc *ClusterConfig) {
		cc.ShardsPerWorker = 8 // 16 slices over ~600 refs: boundaries every ~40 refs
	})
	resp, body := postJSON(t, coord.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator explore: %d %s", resp.StatusCode, body)
	}
	if got := canonicalExploreJSON(t, body); got != ref {
		t.Error("fine-grained sharding diverged from single-node")
	}
}

// countingHandler tallies shard API calls reaching a worker.
type countingHandler struct {
	h      http.Handler
	shards atomic.Int64
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard/explore" {
		c.shards.Add(1)
	}
	c.h.ServeHTTP(w, r)
}

// TestCoordinatorCacheHitSkipsDispatch proves the cache-coherence
// satellite's first half: a repeated spec is served from the coordinator's
// result cache with zero new shard dispatches.
func TestCoordinatorCacheHitSkipsDispatch(t *testing.T) {
	ws, _ := newWorkerServer(t)
	counter := &countingHandler{h: ws.Handler()}
	ts := httptest.NewServer(counter)
	t.Cleanup(ts.Close)

	_, coord := newCoordinator(t, []string{ts.URL}, nil)
	resp, first := postJSON(t, coord.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first explore: %d %s", resp.StatusCode, first)
	}
	afterFirst := counter.shards.Load()
	if afterFirst == 0 {
		t.Fatal("first exploration dispatched no shards")
	}
	resp, second := postJSON(t, coord.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second explore: %d", resp.StatusCode)
	}
	if got := counter.shards.Load(); got != afterFirst {
		t.Errorf("cache hit dispatched %d new shards, want 0", got-afterFirst)
	}
	if string(first) != string(second) {
		t.Error("cached response differs from computed response")
	}
}

// TestShardRequestDoesNotPolluteCache proves the satellite's second half:
// serving a shard slice must leave the worker's full-result cache empty,
// so a later full exploration of the same spec computes the whole space
// instead of replaying a fragment.
func TestShardRequestDoesNotPolluteCache(t *testing.T) {
	ws, ts := newWorkerServer(t)
	shardReq := `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"lo":0,"hi":5}`
	resp, body := postJSON(t, ts.URL+"/v1/shard/explore", shardReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard explore: %d %s", resp.StatusCode, body)
	}
	var sr ShardResponse
	if err := json.Unmarshal(body, &sr); err != nil || len(sr.Outcomes) != 5 {
		t.Fatalf("want 5 outcomes, got %d (err %v)", len(sr.Outcomes), err)
	}
	if n := ws.cache.Len(); n != 0 {
		t.Fatalf("shard request left %d entries in the result cache, want 0", n)
	}
	// The later full request must sweep the whole space, not the fragment.
	resp, body = postJSON(t, ts.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full explore after shard: %d", resp.StatusCode)
	}
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Stats.Jobs <= 5 {
		t.Errorf("full exploration ran %d jobs; looks like the shard fragment leaked into the cache", er.Stats.Jobs)
	}
}

// failAfterHandler serves a worker that starts returning 500 on the shard
// API after the first n shard calls — a replica dying mid-sweep.
type failAfterHandler struct {
	h      http.Handler
	n      int64
	shards atomic.Int64
}

func (f *failAfterHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard/explore" {
		if f.shards.Add(1) > f.n {
			http.Error(w, "worker lost", http.StatusInternalServerError)
			return
		}
	}
	f.h.ServeHTTP(w, r)
}

// TestClusterReassignsLostWorker kills one of two workers mid-sweep (500s
// after 2 shards) and asserts reassignment reproduces the single-node
// result exactly, with the retry counters visible on /v1/cluster.
func TestClusterReassignsLostWorker(t *testing.T) {
	_, single := newWorkerServer(t)
	_, refBody := postJSON(t, single.URL+"/v1/explore", exploreBody("exhaustive"))
	ref := canonicalExploreJSON(t, refBody)

	dying, _ := newWorkerServer(t)
	fh := &failAfterHandler{h: dying.Handler(), n: 2}
	dyingTS := httptest.NewServer(fh)
	t.Cleanup(dyingTS.Close)
	_, healthyTS := newWorkerServer(t)

	_, coord := newCoordinator(t, []string{dyingTS.URL, healthyTS.URL}, func(cc *ClusterConfig) {
		cc.ShardsPerWorker = 4
		cc.MaxRetries = 3
	})
	resp, body := postJSON(t, coord.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore with dying worker: %d %s", resp.StatusCode, body)
	}
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Incomplete || er.Cancelled {
		t.Fatalf("reassignment should complete the sweep, got incomplete=%v cancelled=%v", er.Incomplete, er.Cancelled)
	}
	if got := canonicalExploreJSON(t, body); got != ref {
		t.Error("result after worker loss diverged from single-node")
	}

	resp, cbody := getJSON(t, coord.URL+"/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster: %d", resp.StatusCode)
	}
	var cr ClusterResponse
	if err := json.Unmarshal(cbody, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Role != "coordinator" || len(cr.Workers) != 2 {
		t.Fatalf("bad cluster body: %s", cbody)
	}
	var retries, shardsErr int64
	for _, w := range cr.Workers {
		retries += w.Retries
		shardsErr += w.ShardsErr
	}
	if retries == 0 || shardsErr == 0 {
		t.Errorf("worker loss left no telemetry: retries=%d shards_err=%d", retries, shardsErr)
	}
}

// TestClusterIncompleteAfterRetryExhaustion wires a fleet where one worker
// always fails the shard API and retries are disabled: lost slices must
// surface as a 200 partial with incomplete=true (mirroring the PR 3
// cancellation contract), every returned candidate drawn from the
// single-node result, never an error or a torn merge.
func TestClusterIncompleteAfterRetryExhaustion(t *testing.T) {
	_, single := newWorkerServer(t)
	_, refBody := postJSON(t, single.URL+"/v1/explore", exploreBody("exhaustive"))
	var ref ExploreResponse
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatal(err)
	}
	refSet := map[string]bool{}
	for _, c := range ref.Candidates {
		refSet[fmt.Sprintf("%s|%s|%.17g|%.17g", c.Kind, c.Label, c.EfficiencyPct, c.AreaMM2)] = true
	}

	broken, _ := newWorkerServer(t)
	fh := &failAfterHandler{h: broken.Handler(), n: 0} // every shard 500s
	brokenTS := httptest.NewServer(fh)
	t.Cleanup(brokenTS.Close)
	_, healthyTS := newWorkerServer(t)

	_, coord := newCoordinator(t, []string{brokenTS.URL, healthyTS.URL}, func(cc *ClusterConfig) {
		cc.MaxRetries = -1 // no reassignment: lost slices stay lost
		cc.ShardsPerWorker = 2
		// Slow health checks keep the broken worker in rotation (its
		// /healthz is fine; only the shard API fails), so slices genuinely
		// land on it and die.
		cc.HealthInterval = time.Hour
	})
	resp, body := postJSON(t, coord.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded explore: %d %s", resp.StatusCode, body)
	}
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Incomplete || !er.Cancelled || er.Error == "" {
		t.Fatalf("want incomplete+cancelled partial with error, got incomplete=%v cancelled=%v error=%q",
			er.Incomplete, er.Cancelled, er.Error)
	}
	if len(er.Candidates) == 0 || len(er.Candidates) >= len(ref.Candidates) {
		t.Fatalf("partial should hold some but not all candidates: got %d of %d", len(er.Candidates), len(ref.Candidates))
	}
	if er.Stats.Done >= er.Stats.Jobs {
		t.Errorf("incomplete run reports done=%d jobs=%d", er.Stats.Done, er.Stats.Jobs)
	}
	for _, c := range er.Candidates {
		if !refSet[fmt.Sprintf("%s|%s|%.17g|%.17g", c.Kind, c.Label, c.EfficiencyPct, c.AreaMM2)] {
			t.Fatalf("partial contains candidate absent from the single-node sweep: %s %s", c.Kind, c.Label)
		}
	}
	if !strings.Contains(er.Error, "incomplete") {
		t.Errorf("error %q does not name the incomplete condition", er.Error)
	}
}

// TestClusterEquivalenceNonRoundTripArea pins the area-unit wire contract:
// 0.8 mm² (like ~27% of float64 values) does not survive the mm²→m² unit
// conversion round trip — it drifts 1 ULP — so without the
// engine-precision area_m2 field on ShardRequest the worker would compute
// a different spec hash (blanket 409 version skew) and evaluate a
// different area budget. Cluster output must match single-node
// bit-for-bit for such areas under both strategies.
func TestClusterEquivalenceNonRoundTripArea(t *testing.T) {
	//lint:ignore floatcmp the test exists because this bit-exact round trip fails
	if a := 0.8 * 1e-6; (a*1e6)*1e-6 == a {
		t.Fatal("0.8 mm² round-trips exactly on this platform; pick a drifting area")
	}
	_, single := newWorkerServer(t)
	urls := make([]string, 2)
	for i := range urls {
		_, ts := newWorkerServer(t)
		urls[i] = ts.URL
	}
	_, coord := newCoordinator(t, urls, nil)
	for _, search := range []string{"exhaustive", "adaptive"} {
		t.Run(search, func(t *testing.T) {
			req := fmt.Sprintf(`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":0.8,"search":%q},"top":-1}`, search)
			resp, refBody := postJSON(t, single.URL+"/v1/explore", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("single-node explore: %d %s", resp.StatusCode, refBody)
			}
			ref := canonicalExploreJSON(t, refBody)
			resp, body := postJSON(t, coord.URL+"/v1/explore", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("coordinator explore: %d %s", resp.StatusCode, body)
			}
			var er ExploreResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatal(err)
			}
			if er.Incomplete || er.Cancelled || er.Error != "" {
				t.Fatalf("cluster run degraded: incomplete=%v cancelled=%v error=%q", er.Incomplete, er.Cancelled, er.Error)
			}
			if got := canonicalExploreJSON(t, body); got != ref {
				t.Errorf("cluster result for a non-round-tripping area diverged from single-node\n got: %.400s\nwant: %.400s", got, ref)
			}
		})
	}
}

// skewHandler 409s every shard call, simulating a worker from a
// mismatched build whose canonical hash disagrees with the coordinator's.
type skewHandler struct{ h http.Handler }

func (s *skewHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard/explore" {
		http.Error(w, `{"error":"spec hash mismatch (version skew?)"}`, http.StatusConflict)
		return
	}
	s.h.ServeHTTP(w, r)
}

// TestClusterVersionSkewFailsHard pins the failure taxonomy: a fatal shard
// disagreement (409 version skew) must fail the exploration outright — a
// mis-versioned fleet is a hard error operators must see, never a
// benign-looking incomplete partial.
func TestClusterVersionSkewFailsHard(t *testing.T) {
	ws, _ := newWorkerServer(t)
	ts := httptest.NewServer(&skewHandler{h: ws.Handler()})
	t.Cleanup(ts.Close)
	_, coord := newCoordinator(t, []string{ts.URL}, nil)
	resp, body := postJSON(t, coord.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("want 500 on version skew, got %d %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "409") {
		t.Errorf("error %q does not surface the worker's 409", er.Error)
	}
	if strings.Contains(er.Error, "incomplete") {
		t.Errorf("version skew mislabelled as incomplete: %q", er.Error)
	}
}

// TestPickWorkerCursorWrap pins the round-robin cursor arithmetic: a
// cursor past int range (counter wrap, or any value above 2^31 on a
// 32-bit int) must never yield a negative ring index. Before the
// uint64-space modulo this panicked once the cursor crossed 2^63.
func TestPickWorkerCursorWrap(t *testing.T) {
	c := newCluster(ClusterConfig{Workers: []string{"http://a", "http://b", "http://c"}}, newMetrics())
	c.rr.Store(math.MaxInt64) // the next few picks straddle the int boundary
	for i := 0; i < 8; i++ {
		if w := c.pickWorker(); w == nil {
			t.Fatal("pickWorker returned nil with a populated ring")
		}
	}
}

// TestShardSpecHashMismatchIs409 pins the version-skew guard: a
// coordinator hash that disagrees with the worker's canonical hash must be
// rejected with 409, not evaluated into a mismatched merge.
func TestShardSpecHashMismatchIs409(t *testing.T) {
	_, ts := newWorkerServer(t)
	req := `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"spec_hash":"deadbeefdeadbeef","lo":0,"hi":5}`
	resp, body := postJSON(t, ts.URL+"/v1/shard/explore", req)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("want 409 on hash mismatch, got %d %s", resp.StatusCode, body)
	}
}

// TestShardRangeOutOfBoundsIs400 pins slice validation on the worker.
func TestShardRangeOutOfBoundsIs400(t *testing.T) {
	_, ts := newWorkerServer(t)
	req := `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"lo":0,"hi":1000000}`
	resp, body := postJSON(t, ts.URL+"/v1/shard/explore", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 on out-of-range slice, got %d %s", resp.StatusCode, body)
	}
}

// TestClusterMetricsExposition asserts the new Prometheus families appear
// with per-worker labels after a cluster run.
func TestClusterMetricsExposition(t *testing.T) {
	_, wts := newWorkerServer(t)
	_, coord := newCoordinator(t, []string{wts.URL}, nil)
	resp, _ := postJSON(t, coord.URL+"/v1/explore", exploreBody("exhaustive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: %d", resp.StatusCode)
	}
	resp, body := getJSON(t, coord.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	samples := parseExposition(string(body))
	dispatched := 0.0
	for name, v := range samples {
		if strings.HasPrefix(name, `ivoryd_shards_dispatched_total{worker="`) {
			dispatched += v
		}
	}
	if dispatched == 0 {
		t.Error("ivoryd_shards_dispatched_total has no per-worker samples")
	}
	found := false
	for name := range samples {
		if strings.HasPrefix(name, `ivoryd_worker_healthy{worker="`) {
			found = true
		}
	}
	if !found {
		t.Error("ivoryd_worker_healthy gauge missing")
	}
}
