package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ivory/internal/core"
	"ivory/internal/experiments"
	"ivory/internal/numeric"
)

// fakeExploreResult builds a small deterministic result for engine stubs.
func fakeExploreResult(spec core.Spec, n int) *core.Result {
	res := &core.Result{Spec: spec}
	for i := 0; i < n; i++ {
		res.Candidates = append(res.Candidates, core.Candidate{
			Kind:  core.KindSC,
			Label: fmt.Sprintf("stub-%d", i),
		})
	}
	if n > 0 {
		res.Best = res.Candidates[0]
	}
	res.Stats.Jobs = n
	res.Stats.Done = n
	res.Stats.PerKind[core.KindSC] = core.KindStats{Accepted: n}
	return res
}

func fakeTransientResult() *experiments.Fig10Result {
	return &experiments.Fig10Result{
		Cells: []experiments.Fig10Cell{{
			Benchmark: "stub", Config: "VRM",
			Stats:    numeric.Summary{N: 3, Min: 0.89, Max: 0.91, Median: 0.9, Q1: 0.895, Q3: 0.905},
			NoiseVpp: 0.02, WorstDroop: 0.01,
		}},
		NoiseByConfig: map[string]float64{"VRM": 0.02},
		DroopByConfig: map[string]float64{"VRM": 0.01},
		Configs:       []int{0},
		RunStats:      experiments.TransientStats{Cells: 1, Done: 1},
	}
}

func specBody(vout float64) string {
	return fmt.Sprintf(`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":%g,"imax_a":1,"area_mm2":2}}`, vout)
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestConcurrentIdenticalSpecsRunOnce is acceptance criterion (1): N
// concurrent requests for one spec execute the engine exactly once
// (singleflight), and a later identical request is a pure cache hit.
func TestConcurrentIdenticalSpecsRunOnce(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, EngineWorkers: 1})
	var calls atomic.Int64
	release := make(chan struct{})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		calls.Add(1)
		<-release
		return fakeExploreResult(sp, 2), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	hashes := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/explore", specBody(0.9))
			codes[i] = resp.StatusCode
			var er ExploreResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Errorf("request %d: bad body %q: %v", i, body, err)
				return
			}
			hashes[i] = er.SpecHash
		}(i)
	}
	// All n requests hit one unresolved flight: 1 leader + n-1 coalesced.
	// Wait for that state before releasing the engine so none of them can
	// sneak in as a post-completion cache hit.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.Coalesced() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests coalesced", s.flights.Coalesced())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("engine ran %d times for %d identical concurrent requests, want exactly 1", got, n)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("request %d: status %d", i, codes[i])
		}
		if hashes[i] == "" || hashes[i] != hashes[0] {
			t.Errorf("request %d: hash %q != %q", i, hashes[i], hashes[0])
		}
	}

	// One more identical request: served from the LRU, engine untouched.
	resp, _ := postJSON(t, ts.URL+"/v1/explore", specBody(0.9))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request: status %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("cache hit re-ran the engine (%d calls)", got)
	}
	if hits, _ := s.cache.Stats(); hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", hits)
	}

	// With no work in flight the drain is clean.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestFullQueueSheds429 is acceptance criterion (2): when the queue is
// full the server answers 429 with Retry-After instead of blocking.
func TestFullQueueSheds429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, EngineWorkers: 1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		started <- struct{}{}
		<-release
		return fakeExploreResult(sp, 1), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	async := func(vout float64) string {
		return fmt.Sprintf(`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":%g,"imax_a":1,"area_mm2":2},"async":true}`, vout)
	}

	// First job occupies the single worker...
	resp, body := postJSON(t, ts.URL+"/v1/explore", async(0.6))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d (%s)", resp.StatusCode, body)
	}
	var job1 JobStatus
	if err := json.Unmarshal(body, &job1); err != nil || job1.ID == "" {
		t.Fatalf("job 1: bad 202 body %q (%v)", body, err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up job 1")
	}

	// ...the second fills the depth-1 queue...
	resp, body = postJSON(t, ts.URL+"/v1/explore", async(0.7))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d (%s)", resp.StatusCode, body)
	}

	// ...and the third must be shed, not blocked.
	resp, body = postJSON(t, ts.URL+"/v1/explore", async(0.8))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d (%s), want 429", resp.StatusCode, body)
	}
	// The hint is derived from the observed drain rate but always lands in
	// the sane [1, 60]s window — at least 1s so clients never hot-loop.
	raSecs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || raSecs < 1 || raSecs > 60 {
		t.Errorf("429 Retry-After %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.RetryAfterS <= 0 {
		t.Errorf("429 body %q lacked retry_after_s", body)
	}

	close(release)

	// The accepted jobs still complete.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := getJSON(t, ts.URL+"/v1/jobs/"+job1.ID)
		var js JobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatalf("poll: %v (%s)", err, body)
		}
		if js.Status == JobDone {
			if js.Result == nil {
				t.Fatal("done job carried no result")
			}
			break
		}
		if js.Status == JobError {
			t.Fatalf("job 1 failed: %s", js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 1 stuck in %q", js.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShutdownDrainsInflight is acceptance criterion (3): during drain
// /healthz flips to 503 "draining", admission closes, and an in-flight
// exploration is cancelled and still delivers its ranked partial result.
func TestShutdownDrainsInflight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, EngineWorkers: 1})
	started := make(chan struct{})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		close(started)
		<-sp.Context.Done() // block until the drain window cancels compute
		res := fakeExploreResult(sp, 1)
		res.Stats.Cancelled = true
		return res, sp.Context.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(specBody(0.9)))
		if err != nil {
			t.Errorf("in-flight POST: %v", err)
			replies <- reply{}
			return
		}
		defer func() { _ = resp.Body.Close() }()
		b, _ := io.ReadAll(resp.Body)
		replies <- reply{resp.StatusCode, b}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("engine never started")
	}

	// Healthy before the drain begins.
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain healthz: %d", resp.StatusCode)
	}

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	go func() { shutdownErr <- s.Shutdown(ctx) }()

	// The draining flag flips synchronously at the head of Shutdown; poll
	// only for the goroutine to have entered it.
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d (%s)", resp.StatusCode, body)
	}
	var hb struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &hb); err != nil || hb.Status != "draining" {
		t.Fatalf("draining healthz body %q", body)
	}

	// New work is refused while draining.
	if resp, _ := postJSON(t, ts.URL+"/v1/explore", specBody(0.7)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission during drain: %d, want 503", resp.StatusCode)
	}

	// The blocked exploration is cancelled by the closing drain window and
	// its ranked partial still reaches the waiting client as a 200.
	r := <-replies
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d (%s)", r.code, r.body)
	}
	var er ExploreResponse
	if err := json.Unmarshal(r.body, &er); err != nil {
		t.Fatalf("in-flight body: %v (%s)", err, r.body)
	}
	if !er.Cancelled || er.Error == "" {
		t.Errorf("partial not marked cancelled: cancelled=%v error=%q", er.Cancelled, er.Error)
	}
	if len(er.Candidates) != 1 {
		t.Errorf("partial lost its ranked candidates: %d", len(er.Candidates))
	}

	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want context.DeadlineExceeded", err)
	}
}

// TestMetricsScrape is the scrape-and-parse acceptance criterion: /metrics
// exposes queue depth, request latency, and cache hit-ratio counters in
// parseable Prometheus text format.
func TestMetricsScrape(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, EngineWorkers: 1})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		return fakeExploreResult(sp, 1), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One miss-and-compute, one cache hit, one health check.
	postJSON(t, ts.URL+"/v1/explore", specBody(0.9))
	postJSON(t, ts.URL+"/v1/explore", specBody(0.9))
	getJSON(t, ts.URL+"/healthz")

	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	m := parseExposition(string(body))

	mustEq := func(key string, want float64) {
		t.Helper()
		got, ok := m[key]
		if !ok {
			t.Errorf("metric %s missing", key)
			return
		}
		if !numeric.ApproxEqual(got, want, 0) {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	mustEq(`ivoryd_requests_total{endpoint="explore",code="200"}`, 2)
	mustEq(`ivoryd_requests_total{endpoint="healthz",code="200"}`, 1)
	mustEq(`ivoryd_jobs_submitted_total{endpoint="explore"}`, 1)
	mustEq(`ivoryd_result_cache_hits_total`, 1)
	mustEq(`ivoryd_result_cache_misses_total`, 1)
	mustEq(`ivoryd_result_cache_hit_ratio`, 0.5)
	mustEq(`ivoryd_result_cache_entries`, 1)
	mustEq(`ivoryd_queue_depth`, 0)
	mustEq(`ivoryd_draining`, 0)
	mustEq(`ivoryd_request_duration_seconds_count{endpoint="explore"}`, 2)
	// The +Inf bucket always equals the count.
	mustEq(`ivoryd_request_duration_seconds_bucket{endpoint="explore",le="+Inf"}`, 2)
	for _, engineCounter := range []string{
		"ivory_topology_cache_hits_total",
		"ivory_grid_solver_cholesky_total",
		"ivory_pds_trace_cache_hits_total",
	} {
		if _, ok := m[engineCounter]; !ok {
			t.Errorf("engine counter %s missing from exposition", engineCounter)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestAsyncJobLifecycle: a 202 submit is pollable to completion and the
// record carries the full response body.
func TestAsyncJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, EngineWorkers: 1})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		return fakeExploreResult(sp, 3), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explore",
		`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.ID == "" || js.Kind != "explore" || js.Hash == "" {
		t.Fatalf("bad job record: %+v", js)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := getJSON(t, ts.URL+"/v1/jobs/"+js.ID)
		var got JobStatus
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Status == JobDone {
			res, err := json.Marshal(got.Result)
			if err != nil {
				t.Fatal(err)
			}
			var er ExploreResponse
			if err := json.Unmarshal(res, &er); err != nil {
				t.Fatalf("job result is not an ExploreResponse: %v", err)
			}
			if er.SpecHash != js.Hash || er.TotalCandidates != 3 {
				t.Errorf("job result drifted: hash %q vs %q, %d candidates", er.SpecHash, js.Hash, er.TotalCandidates)
			}
			if got.FinishedAt == "" {
				t.Error("done job has no finished_at")
			}
			break
		}
		if got.Status == JobError {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestRequestValidation: malformed inputs are client errors before any
// compute is admitted.
func TestRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, EngineWorkers: 1})
	var calls atomic.Int64
	s.explore = func(sp core.Spec) (*core.Result, error) {
		calls.Add(1)
		return fakeExploreResult(sp, 1), nil
	}
	s.transient = func(context.Context, experiments.TransientOptions) (*experiments.Fig10Result, error) {
		calls.Add(1)
		return fakeTransientResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown field", "/v1/explore", `{"spec":{"node":"45nm"},"bogus":1}`, http.StatusBadRequest},
		{"bad objective", "/v1/explore", `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2,"objective":"banana"}}`, http.StatusBadRequest},
		{"bad kind", "/v1/explore", `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2,"kinds":["flyback"]}}`, http.StatusBadRequest},
		{"vout above vin", "/v1/explore", `{"spec":{"node":"45nm","vin_v":0.9,"vout_v":1.8,"imax_a":1,"area_mm2":2}}`, http.StatusBadRequest},
		{"missing node", "/v1/explore", `{"spec":{"vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2}}`, http.StatusBadRequest},
		{"not json", "/v1/explore", `hello`, http.StatusBadRequest},
		{"negative span", "/v1/transient", `{"t_us":-1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not an ErrorResponse", c.name, body)
		}
	}
	if calls.Load() != 0 {
		t.Errorf("validation failures reached the engine %d times", calls.Load())
	}

	// Method mismatches are routed by the mux, not the handlers.
	resp, err := http.Get(ts.URL + "/v1/explore")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/explore: %d, want 405", resp.StatusCode)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestPerRequestDeadline: a request-scoped timeout_ms that fires with no
// partial result surfaces as 504.
func TestPerRequestDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, EngineWorkers: 1})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		<-sp.Context.Done()
		return nil, sp.Context.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explore",
		`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"timeout_ms":30}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestTransientEndpoint: the stubbed sweep maps to wire form, and identical
// transient requests share one computation just like explorations.
func TestTransientEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, EngineWorkers: 1})
	var calls atomic.Int64
	s.transient = func(ctx context.Context, opt experiments.TransientOptions) (*experiments.Fig10Result, error) {
		calls.Add(1)
		if len(opt.Benchmarks) != 1 || opt.Benchmarks[0] != "stub" || len(opt.Configs) != 1 {
			return nil, fmt.Errorf("request scoping lost: %+v", opt)
		}
		return fakeTransientResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"t_us":1,"benchmarks":["stub"],"configs":[0]}`
	resp, b := postJSON(t, ts.URL+"/v1/transient", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, b)
	}
	var tr TransientResponse
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Cells) != 1 || tr.Cells[0].Benchmark != "stub" {
		t.Fatalf("cells drifted: %+v", tr.Cells)
	}
	if !numeric.ApproxEqual(tr.Cells[0].NoiseMVpp, 20, 1e-12) { // 0.02 V -> 20 mV
		t.Errorf("noise unit conversion: %g mVpp, want 20", tr.Cells[0].NoiseMVpp)
	}
	if tr.RequestHash == "" {
		t.Error("no request hash")
	}

	// Identical request: cache hit, engine untouched.
	postJSON(t, ts.URL+"/v1/transient", body)
	if calls.Load() != 1 {
		t.Errorf("transient engine ran %d times, want 1", calls.Load())
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestExploreEndToEnd runs the real engine through the full HTTP stack once:
// decode -> normalize -> queue -> core.Explore -> DTO -> JSON.
func TestExploreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine sweep")
	}
	s := New(Config{Workers: 1, QueueDepth: 2, EngineWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/explore",
		`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"top":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Best == nil || er.TotalCandidates == 0 || len(er.Candidates) == 0 {
		t.Fatalf("empty exploration: %s", body)
	}
	if len(er.Candidates) > 3 {
		t.Errorf("top=3 returned %d candidates", len(er.Candidates))
	}
	if er.Stats.Jobs == 0 || er.Stats.Done != er.Stats.Jobs {
		t.Errorf("stats drifted: %+v", er.Stats)
	}
	if !numeric.ApproxEqual(er.Spec.RippleMaxV, 0.01*0.9, 1e-12) { // normalized echo: 1% of VOut
		t.Errorf("spec echo not normalized: ripple %g", er.Spec.RippleMaxV)
	}
	if er.Best.EfficiencyPct <= 0 || er.Best.EfficiencyPct > 100 {
		t.Errorf("best efficiency %g%% out of range", er.Best.EfficiencyPct)
	}

	// An unmeetable budget is a 422, not a server error.
	resp, body = postJSON(t, ts.URL+"/v1/explore",
		`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":100,"area_mm2":0.000001}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible spec: status %d (%s), want 422", resp.StatusCode, body)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestTransientRejectsUnknownBenchmark exercises the real engine's input
// validation through the endpoint (no simulation runs for a bad name).
func TestTransientRejectsUnknownBenchmark(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, EngineWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/transient", `{"benchmarks":["no-such-benchmark"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("no-such-benchmark")) {
		t.Errorf("error body %q does not name the offending benchmark", body)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShutdownTeardownBoundedByCallerCtx pins the HTTP-teardown contract:
// the post-drain connection grace derives from the caller's context, so a
// hung client connection cannot pin Shutdown for the full internal grace
// period once the caller has given up. Regression test for the teardown
// timeout being derived from context.Background instead of ctx.
func TestShutdownTeardownBoundedByCallerCtx(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, EngineWorkers: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	// A connection stuck mid-request-header is active, so the HTTP layer's
	// graceful shutdown would wait its whole grace window for it.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := io.WriteString(conn, "GET /healthz HTTP/1.1\r\nHost: ivory\r\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server observe the bytes

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v with a cancelled caller ctx; the teardown grace is not bounded by it", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown error = %v, want context.Canceled", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}
