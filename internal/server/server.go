package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ivory/internal/core"
	"ivory/internal/experiments"
	"ivory/internal/parallel"
	"ivory/internal/soc"
)

// Config sizes the serving subsystem. The zero value is usable: every
// field has a production-shaped default.
type Config struct {
	// Workers is the number of jobs executing concurrently (the pool
	// width). Each job additionally fans out EngineWorkers goroutines
	// inside the engine, so total compute parallelism is roughly
	// Workers x EngineWorkers; the defaults keep that near NumCPU.
	// 0 selects 2 (or 1 on a single-core box).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// sheds load with 429 + Retry-After. 0 selects 16.
	QueueDepth int
	// EngineWorkers is the per-job engine worker count (core.Spec.Workers /
	// TransientOptions.Workers). 0 selects NumCPU / Workers, floored at 1.
	EngineWorkers int
	// CacheEntries bounds the LRU result cache. 0 selects 128; negative
	// disables caching.
	CacheEntries int
	// RequestTimeout is the per-job compute deadline (requests may lower
	// it via timeout_ms, never raise it). 0 selects 60s.
	RequestTimeout time.Duration
	// JobHistory bounds retained async job records. 0 selects 256.
	JobHistory int
	// JobTTL expires finished async job records this long after they
	// complete; polling an expired id returns 404. 0 selects 15m; negative
	// disables TTL expiry (the JobHistory cap still applies).
	JobTTL time.Duration
	// Role names this replica's cluster role for /v1/cluster: "single"
	// (default), "worker" (serves the shard API for a coordinator), or
	// "coordinator" (implied by a non-nil Cluster). Every role serves the
	// full route table; the role is reporting, the wiring is Cluster.
	Role string
	// Cluster, when non-nil with at least one worker URL, turns this
	// replica into a coordinator: explorations fan their evaluation batches
	// out to the worker replicas over the shard API instead of the local
	// pool, with bit-identical ranked results (see cluster.go).
	Cluster *ClusterConfig
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 2
		if runtime.NumCPU() < 2 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.NumCPU() / c.Workers
		if c.EngineWorkers < 1 {
			c.EngineWorkers = 1
		}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 256
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.Role == "" {
		c.Role = "single"
		if c.Cluster != nil && len(c.Cluster.Workers) > 0 {
			c.Role = "coordinator"
		}
	}
}

// ErrBusy is returned (as HTTP 429) when the job queue is full.
var ErrBusy = errors.New("server: job queue full")

// errDraining is returned (as HTTP 503) once shutdown has begun.
var errDraining = errors.New("server: draining")

// Server is the ivoryd serving core: admission control, the worker pool,
// the result cache, singleflight coalescing, async job records, metrics,
// and drain. Build with New, mount Handler on any http.Server or call
// Serve, stop with Shutdown.
type Server struct {
	cfg      Config
	pool     *parallel.Pool
	cache    *resultCache
	flights  *flightGroup
	jobs     *jobRegistry
	metrics  *metrics
	drainEst *drainEstimator

	// baseCtx parents every job context; baseCancel fires when the drain
	// window closes so in-flight engines return their ranked partials.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining atomic.Bool
	inflight sync.WaitGroup
	panics   atomic.Int64

	httpMu  sync.Mutex
	httpSrv *http.Server

	// cluster is non-nil on a coordinator; its evaluator replaces the
	// engine's local pool while everything upstream (cache, singleflight,
	// queue) stays identical.
	cluster *Cluster

	// Engine seams: production wiring in New, overridden in tests to pin
	// queue/coalescing behavior without real compute.
	explore   func(core.Spec) (*core.Result, error)
	transient func(context.Context, experiments.TransientOptions) (*experiments.Fig10Result, error)
	hybrid    func(soc.SweepSpec) (*soc.SweepResult, error)
}

// New builds a Server from the config (zero value fine; see Config).
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheEntries),
		flights:   newFlightGroup(),
		jobs:      newJobRegistry(cfg.JobHistory, cfg.JobTTL),
		metrics:   newMetrics(),
		drainEst:  &drainEstimator{},
		explore:   core.Explore,
		transient: experiments.Fig10Run,
		hybrid:    soc.Sweep,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// The pool-level panic hook is a backstop; the per-job wrapper in
	// execute already recovers and resolves the flight.
	s.pool = parallel.NewPool(cfg.Workers, cfg.QueueDepth, func(*parallel.PanicError) {
		s.panics.Add(1)
	})
	if cfg.Cluster != nil && len(cfg.Cluster.Workers) > 0 {
		s.cluster = newCluster(*cfg.Cluster, s.metrics)
		s.explore = s.clusterExplore
		s.cluster.start()
	}
	return s
}

// drainEstimator keeps an exponentially weighted moving average of
// completed job wall times. The 429/503 Retry-After hint is derived from
// it: how long until a queue slot plausibly frees up at the observed
// drain rate, rather than a constant guess.
type drainEstimator struct {
	mu     sync.Mutex
	avg    time.Duration
	seeded bool
}

func (d *drainEstimator) note(dt time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.seeded {
		d.avg, d.seeded = dt, true
		return
	}
	// α = 1/4: a few recent jobs dominate, one outlier does not.
	d.avg += (dt - d.avg) / 4
}

func (d *drainEstimator) estimate() (time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.avg, d.seeded
}

// retryAfterSeconds converts the observed drain rate into the Retry-After
// hint: the queue must drain depth+1 jobs across the worker pool before a
// shed request can land. Bounded to [1, 60] — never so low a client
// hot-loops, never so high one transient spike parks clients for minutes.
func (s *Server) retryAfterSeconds() int {
	avg, ok := s.drainEst.estimate()
	if !ok {
		return 1
	}
	wait := avg * time.Duration(s.pool.Depth()+1) / time.Duration(s.cfg.Workers)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// jobFunc computes one response. cacheable=false keeps partial or failed
// results out of the LRU so a later identical request recomputes.
type jobFunc func(ctx context.Context) (val any, err error, cacheable bool)

// execute is the single admission path for both endpoints, sync and async:
// result cache, then singleflight join, then bounded queue submission.
// The returned flight is already resolved on a cache hit. ErrBusy means
// the queue shed the job; errDraining means admission is closed.
func (s *Server) execute(endpoint, hash string, timeout time.Duration, fn jobFunc) (*flight, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if v, ok := s.cache.Get(hash); ok {
		f := &flight{done: make(chan struct{}), val: v}
		close(f.done)
		return f, nil
	}
	f, leader := s.flights.join(hash)
	if !leader {
		return f, nil
	}
	s.inflight.Add(1)
	submitted := s.pool.TrySubmit(func() {
		defer s.inflight.Done()
		start := time.Now()
		defer func() { s.drainEst.note(time.Since(start)) }()
		ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
		defer cancel()
		var (
			val       any
			err       error
			cacheable bool
		)
		// Contain job panics here so the flight always resolves; a waiter
		// blocked on a flight whose job died would otherwise hang forever.
		func() {
			defer func() {
				if r := recover(); r != nil {
					s.panics.Add(1)
					err = fmt.Errorf("server: %s job panicked: %v", endpoint, r)
				}
			}()
			val, err, cacheable = fn(ctx)
		}()
		if err == nil && cacheable {
			s.cache.Put(hash, val)
		}
		s.flights.finish(hash, f, val, err)
	})
	if !submitted {
		s.inflight.Done()
		s.metrics.jobsRejected.inc(endpointLabel(endpoint))
		s.flights.abort(hash, f, ErrBusy)
		return nil, ErrBusy
	}
	s.metrics.jobsSubmitted.inc(endpointLabel(endpoint))
	return f, nil
}

// timeoutFor clamps a request's timeout_ms under the server deadline.
func (s *Server) timeoutFor(timeoutMS int) time.Duration {
	if timeoutMS <= 0 {
		return s.cfg.RequestTimeout
	}
	d := time.Duration(timeoutMS) * time.Millisecond
	if d > s.cfg.RequestTimeout {
		return s.cfg.RequestTimeout
	}
	return d
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, mirroring net/http.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// Shutdown drains and stops the server:
//
//  1. admission closes — /healthz flips to 503 "draining", new jobs and
//     submissions are refused;
//  2. in-flight jobs drain to completion within ctx's deadline;
//  3. if the deadline fires first, the base context is cancelled so every
//     running engine returns promptly — explorations with their ranked
//     partial results, which still resolve their waiting requests;
//  4. the pool and the HTTP listener shut down.
//
// Shutdown is safe to call once; it returns ctx.Err() when the drain
// window closed early, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.cluster != nil {
		// Health loops stop immediately; in-flight shard dispatches drain
		// with their parent jobs below.
		s.cluster.stop()
	}
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		// Cancel compute; the engines poll their contexts inside the hot
		// loops (PR3/PR4 contract), so this wait is prompt.
		s.baseCancel()
		<-drained
	}
	s.baseCancel()
	s.pool.Close()
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		// Give connection teardown a short grace, bounded by the caller's
		// ctx: once the caller gives up, teardown must not keep Shutdown
		// blocked for the full grace period.
		hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if herr := srv.Shutdown(hctx); err == nil {
			err = herr
		}
	}
	return err
}

// gauges assembles the point-in-time snapshot for /metrics.
func (s *Server) gauges() gaugeSnapshot {
	hits, misses := s.cache.Stats()
	g := gaugeSnapshot{
		queueDepth:   s.pool.Depth(),
		running:      s.pool.Running(),
		inflight:     s.flights.Inflight(),
		draining:     s.draining.Load(),
		cacheEntries: s.cache.Len(),
		cacheHits:    hits,
		cacheMisses:  misses,
		coalesced:    s.flights.Coalesced(),
		jobsTracked:  s.jobs.len(),
	}
	if s.cluster != nil {
		g.workerHealth = s.cluster.healthGauges()
	}
	return g
}
