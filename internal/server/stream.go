package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ivory/internal/core"
)

// Streaming exploration: POST /v1/explore/stream runs one exploration on
// the shared worker pool and emits Server-Sent Events while it computes.
//
// Wire format (text/event-stream, one JSON object per data line):
//
//	event: progress   — StreamProgressEvent, sampled every progressStride
//	                    completed jobs (and at the final job)
//	event: best       — StreamBestEvent, once per strict improvement of
//	                    the best-so-far candidate under the objective
//	event: result     — ExploreResponse, terminal on success (also on a
//	                    ranked partial, with cancelled=true)
//	event: error      — ErrorResponse, terminal on failure
//
// Exactly one terminal event (result | error) ends every stream. The
// telemetry events are best-effort: a slow reader sheds progress/best
// events rather than stalling the engine, so consumers must treat them as
// a sampled view. The final result is also published to the result cache,
// so a later synchronous POST /v1/explore with the same spec hash returns
// the identical body without recomputing.

// progressStride samples the per-job progress callback down to one event
// every N completed jobs; the final job always emits.
const progressStride = 64

// StreamProgressEvent is the data payload of an SSE "progress" event.
type StreamProgressEvent struct {
	Jobs          int `json:"jobs"`
	Done          int `json:"done"`
	Evaluated     int `json:"evaluated"`
	Accepted      int `json:"accepted"`
	PrunedBound   int `json:"pruned_bound"`
	PrunedHalving int `json:"pruned_halving"`
	FrontSize     int `json:"front_size"`
}

// StreamBestEvent is the data payload of an SSE "best" event: a new
// best-so-far candidate and the exploration state when it was found.
type StreamBestEvent struct {
	Candidate CandidateDTO `json:"candidate"`
	Evaluated int          `json:"evaluated"`
	Pruned    int          `json:"pruned"`
	FrontSize int          `json:"front_size"`
}

// sseEvent is one rendered server-sent event.
type sseEvent struct {
	name string
	data []byte
}

func jsonEvent(name string, v any) sseEvent {
	data, err := json.Marshal(v)
	if err != nil {
		// Payloads are our own DTOs; a marshal failure is a programming
		// error, surfaced rather than silently dropped.
		name, data = "error", []byte(fmt.Sprintf(`{"error":"marshal: %v"}`, err))
	}
	return sseEvent{name: name, data: data}
}

// submitStream admits one streaming exploration: result cache first, then
// the bounded queue — the same backpressure as the synchronous path (a
// full queue sheds the stream with 429 before any event is written).
// Telemetry arrives on events until it closes; exactly one terminal event
// then arrives on final. The compute job never blocks on the consumer:
// telemetry sends are lossy and the final channel is buffered, so an
// abandoned stream drains and caches like a normal job.
func (s *Server) submitStream(hash string, timeout time.Duration, norm core.Spec) (<-chan sseEvent, <-chan sseEvent, error) {
	if s.draining.Load() {
		return nil, nil, errDraining
	}
	events := make(chan sseEvent, 64)
	final := make(chan sseEvent, 1)
	if v, ok := s.cache.Get(hash); ok {
		close(events)
		final <- jsonEvent("result", v)
		return events, final, nil
	}
	engineWorkers := s.cfg.EngineWorkers
	s.inflight.Add(1)
	submitted := s.pool.TrySubmit(func() {
		defer s.inflight.Done()
		start := time.Now()
		defer func() { s.drainEst.note(time.Since(start)) }()
		ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
		defer cancel()

		push := func(ev sseEvent) {
			select {
			case events <- ev:
			default: // slow or gone consumer: shed telemetry, never stall
			}
		}
		sp := norm
		sp.Context = ctx
		sp.Workers = engineWorkers
		sp.Progress = func(st core.Stats) {
			if st.Done%progressStride == 0 || st.Done == st.Jobs {
				push(jsonEvent("progress", StreamProgressEvent{
					Jobs: st.Jobs, Done: st.Done,
					Evaluated: st.Evaluated(), Accepted: st.Accepted(),
					PrunedBound: st.PrunedBound, PrunedHalving: st.PrunedHalving,
					FrontSize: st.FrontSize,
				}))
			}
		}
		sp.OnImproved = func(c core.Candidate, st core.Stats) {
			push(jsonEvent("best", StreamBestEvent{
				Candidate: candidateDTO(c),
				Evaluated: st.Evaluated(), Pruned: st.Pruned(),
				FrontSize: st.FrontSize,
			}))
		}

		var ev sseEvent
		func() {
			defer func() {
				if r := recover(); r != nil {
					s.panics.Add(1)
					ev = jsonEvent("error", ErrorResponse{Error: fmt.Sprintf("server: explore_stream job panicked: %v", r)})
				}
			}()
			res, err := s.explore(sp)
			switch {
			case err == nil:
				resp := ExploreResponseFromResult(res, nil)
				s.metrics.notePruned(res.Stats.PrunedBound, res.Stats.PrunedHalving)
				// Publish so a later synchronous request for the same spec
				// hash returns this exact body from the cache.
				s.cache.Put(hash, resp)
				ev = jsonEvent("result", resp)
			case res != nil && len(res.Candidates) > 0 && (isCancel(err) || errors.Is(err, ErrIncomplete)):
				// Ranked partial (deadline/drain/lost shards): terminal
				// result with cancelled=true, not cached.
				s.metrics.notePruned(res.Stats.PrunedBound, res.Stats.PrunedHalving)
				ev = jsonEvent("result", ExploreResponseFromResult(res, err))
			default:
				ev = jsonEvent("error", ErrorResponse{Error: err.Error()})
			}
		}()
		// Telemetry closes before the terminal event is offered, so the
		// handler can drain events fully and still write the terminal last.
		close(events)
		final <- ev
	})
	if !submitted {
		s.inflight.Done()
		s.metrics.jobsRejected.inc(endpointLabel("explore_stream"))
		return nil, nil, ErrBusy
	}
	s.metrics.jobsSubmitted.inc(endpointLabel("explore_stream"))
	return events, final, nil
}

func (s *Server) handleExploreStream(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Async {
		s.writeError(w, http.StatusBadRequest, "stream and async are mutually exclusive: the stream is the progress feed")
		return
	}
	spec, err := req.Spec.ToSpec()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	norm, err := spec.Normalized()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := SpecHash(norm)
	events, final, err := s.submitStream(hash, s.timeoutFor(req.TimeoutMS), norm)
	if err != nil {
		s.submitError(w, err)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeEvent := func(ev sseEvent) {
		// The stream is committed; a write failure means the client left,
		// which the terminal-event guarantee does not extend to.
		_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Telemetry done; exactly one terminal event follows.
				select {
				case tev := <-final:
					writeEvent(tev)
				case <-r.Context().Done():
				}
				return
			}
			writeEvent(ev)
		case <-r.Context().Done():
			// Client gone: the job keeps computing and caches its result;
			// only this subscription ends.
			return
		}
	}
}
