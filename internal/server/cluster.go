package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ivory/internal/core"
)

// Cluster mode: a coordinator ivoryd partitions each exploration's
// enumerated design space into contiguous slices and fans them out to
// worker replicas over the shard API (shard.go). The deterministic-merge
// contract does the heavy lifting — outcomes land in per-ref slots and the
// engine merges them in enumeration order — so the coordinator's ranked
// result is bit-identical to a single-node run at any worker count, for
// both the exhaustive sweep and the staged adaptive search (whose
// branch-and-bound control loop runs on the coordinator; only evaluation
// batches travel).
//
// Failure model: shards are all-or-nothing and idempotent (keyed by
// spec hash + slice), so a timed-out or 5xx'd shard is simply retried on
// the next replica — at most once in flight per attempt, never merged
// twice. When a shard exhausts its retries the coordinator returns what
// completed with ErrIncomplete, mirroring the cancellation contract:
// ranked partial results with an explicit marker, never a torn merge.

// ErrIncomplete marks a cluster exploration that lost shards after
// exhausting retries: the result is a valid ranked partial over the
// completed slices. It surfaces on the wire as `incomplete: true`.
var ErrIncomplete = errors.New("server: cluster result incomplete (shard retries exhausted)")

// ClusterConfig wires a coordinator to its worker replicas. The zero value
// of every field but Workers is usable.
type ClusterConfig struct {
	// Workers is the list of replica base URLs (e.g. "http://w1:8080").
	Workers []string
	// HealthInterval is the per-worker health-check cadence. Failed checks
	// back off exponentially (jittered, capped at 30s) until the replica
	// answers again. 0 selects 2s.
	HealthInterval time.Duration
	// ShardTimeout bounds one shard attempt end to end. 0 selects 30s.
	ShardTimeout time.Duration
	// MaxRetries is how many times a failed shard is reassigned before the
	// exploration returns ErrIncomplete. 0 selects 2; negative disables
	// retries.
	MaxRetries int
	// ShardsPerWorker scales the partition: a stage of N refs splits into
	// min(N, healthyWorkers x ShardsPerWorker) slices, so one slow replica
	// holds back at most 1/ShardsPerWorker of the wall clock. 0 selects 2.
	ShardsPerWorker int
	// HTTPClient overrides the transport (tests inject httptest clients).
	// nil selects a client with sane defaults.
	HTTPClient *http.Client
}

func (c *ClusterConfig) defaults() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.ShardsPerWorker <= 0 {
		c.ShardsPerWorker = 2
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
}

// latencyRing keeps the last ringSize shard latencies for the /v1/cluster
// quantiles.
const ringSize = 256

// workerState tracks one replica: health, failure streak, shard counters,
// and a latency ring buffer.
type workerState struct {
	url string

	mu        sync.Mutex
	healthy   bool
	checked   bool // at least one health check completed
	fails     int  // consecutive failed checks
	lastErr   string
	latencies [ringSize]float64 // seconds
	latIdx    int
	latCount  int
	shardsOK  int64
	shardsErr int64
	retries   int64
}

func (w *workerState) noteHealth(ok bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.checked = true
	w.healthy = ok
	if ok {
		w.fails = 0
		w.lastErr = ""
		return
	}
	w.fails++
	if err != nil {
		w.lastErr = err.Error()
	}
}

func (w *workerState) noteShard(dt time.Duration, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.latencies[w.latIdx] = dt.Seconds()
	w.latIdx = (w.latIdx + 1) % ringSize
	if w.latCount < ringSize {
		w.latCount++
	}
	if ok {
		w.shardsOK++
	} else {
		w.shardsErr++
	}
}

func (w *workerState) noteRetry() {
	w.mu.Lock()
	w.retries++
	w.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the latency ring in seconds.
func (w *workerState) quantiles() (p50, p90, p99 float64) {
	w.mu.Lock()
	lat := append([]float64(nil), w.latencies[:w.latCount]...)
	w.mu.Unlock()
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return q(0.50), q(0.90), q(0.99)
}

// snapshot returns the wire view of the worker.
func (w *workerState) snapshot() ClusterWorkerDTO {
	p50, p90, p99 := w.quantiles()
	w.mu.Lock()
	defer w.mu.Unlock()
	return ClusterWorkerDTO{
		URL:              w.url,
		Healthy:          w.healthy,
		ConsecutiveFails: w.fails,
		LastError:        w.lastErr,
		ShardsOK:         w.shardsOK,
		ShardsErr:        w.shardsErr,
		Retries:          w.retries,
		LatencyP50MS:     p50 * 1e3,
		LatencyP90MS:     p90 * 1e3,
		LatencyP99MS:     p99 * 1e3,
	}
}

// Cluster is the coordinator side of cluster mode: worker registry, health
// loops, and the shard-dispatching Evaluator the engine runs on.
type Cluster struct {
	cfg     ClusterConfig
	workers []*workerState
	metrics *metrics

	rr     atomic.Uint64 // round-robin cursor for shard assignment
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func newCluster(cfg ClusterConfig, m *metrics) *Cluster {
	cfg.defaults()
	c := &Cluster{cfg: cfg, metrics: m, stopCh: make(chan struct{})}
	for _, u := range cfg.Workers {
		c.workers = append(c.workers, &workerState{url: u})
	}
	return c
}

// start launches one health loop per worker.
func (c *Cluster) start() {
	for _, w := range c.workers {
		c.wg.Add(1)
		go c.healthLoop(w)
	}
}

// stop terminates the health loops and waits for them.
func (c *Cluster) stop() {
	close(c.stopCh)
	c.wg.Wait()
}

// healthLoop probes one worker's /healthz on the configured cadence.
// Consecutive failures back off exponentially — interval x 2^fails, capped
// at 30s — with ±20% jitter so a restarted fleet does not thunder back in
// lockstep.
func (c *Cluster) healthLoop(w *workerState) {
	defer c.wg.Done()
	timer := time.NewTimer(0) // first check immediately
	defer timer.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-timer.C:
		}
		c.checkHealth(w)
		delay := c.cfg.HealthInterval
		w.mu.Lock()
		fails := w.fails
		w.mu.Unlock()
		if fails > 0 {
			shift := fails
			if shift > 5 {
				shift = 5
			}
			delay *= time.Duration(1) << shift
			if delay > 30*time.Second {
				delay = 30 * time.Second
			}
		}
		timer.Reset(jitter(delay))
	}
}

// jitter spreads d by ±20%.
func jitter(d time.Duration) time.Duration {
	return d + time.Duration((rand.Float64()-0.5)*0.4*float64(d))
}

func (c *Cluster) checkHealth(w *workerState) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthInterval+2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		w.noteHealth(false, err)
		return
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		w.noteHealth(false, err)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A draining worker answers 503: alive, but shedding — route
		// shards elsewhere.
		w.noteHealth(false, fmt.Errorf("healthz returned %d", resp.StatusCode))
		return
	}
	w.noteHealth(true, nil)
}

// healthyCount counts workers currently passing health checks; workers not
// yet probed count as healthy so the first exploration after boot does not
// serialize onto one replica.
func (c *Cluster) healthyCount() int {
	n := 0
	for _, w := range c.workers {
		w.mu.Lock()
		if w.healthy || !w.checked {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// pickWorker returns the next replica in round-robin order, preferring
// healthy (or unprobed) workers and falling back to the full ring when
// none pass — health state may simply be stale, and the shard retry loop
// is the real arbiter.
func (c *Cluster) pickWorker() *workerState {
	n := len(c.workers)
	if n == 0 {
		return nil
	}
	// The modulo runs in uint64 space: converting the cursor to int first
	// can go negative (32-bit int, or a wrapped counter) and index the ring
	// with a negative start.
	start := int((c.rr.Add(1) - 1) % uint64(n))
	for i := 0; i < n; i++ {
		w := c.workers[(start+i)%n]
		w.mu.Lock()
		ok := w.healthy || !w.checked
		w.mu.Unlock()
		if ok {
			return w
		}
	}
	return c.workers[start]
}

// snapshot returns the wire view of every worker.
func (c *Cluster) snapshot() []ClusterWorkerDTO {
	out := make([]ClusterWorkerDTO, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w.snapshot())
	}
	return out
}

// healthGauges returns url -> 0/1 for the ivoryd_worker_healthy gauge.
func (c *Cluster) healthGauges() map[string]bool {
	out := make(map[string]bool, len(c.workers))
	for _, w := range c.workers {
		w.mu.Lock()
		out[w.url] = w.healthy
		w.mu.Unlock()
	}
	return out
}

// shardChunk is one contiguous slice of a stage's ref list.
type shardChunk struct{ lo, hi int }

// splitChunks partitions n refs into at most parts contiguous,
// near-balanced slices.
func splitChunks(n, parts int) []shardChunk {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]shardChunk, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		out = append(out, shardChunk{lo: lo, hi: hi})
		lo = hi
	}
	return out
}

// retryableShardError marks shard attempts worth reassigning (timeouts,
// 5xx, 429, transport failures) as opposed to fatal disagreements (409
// version skew, 4xx invalid slices).
type retryableShardError struct{ err error }

func (e *retryableShardError) Error() string { return e.err.Error() }
func (e *retryableShardError) Unwrap() error { return e.err }

// fatalShardError marks shard failures reassignment cannot fix — 409
// version skew, 4xx invalid slices: the fleet itself is broken or
// mismatched, so the exploration fails outright instead of degrading to a
// benign-looking ErrIncomplete partial.
type fatalShardError struct{ err error }

func (e *fatalShardError) Error() string { return e.err.Error() }
func (e *fatalShardError) Unwrap() error { return e.err }

// shardSpec is the per-exploration constant block every shard request
// carries: the wire spec, its canonical hash, and the engine-precision
// area budget (see ShardRequest.AreaM2).
type shardSpec struct {
	dto    SpecDTO
	hash   string
	areaM2 float64
}

// evaluator returns the core.Evaluator that dispatches each evaluation
// batch over the cluster. canonical marks the exhaustive path, where the
// single batch is the full enumeration and slices travel as [lo, hi)
// index ranges; adaptive stages ship their ref lists explicitly. The
// returned outcomes slice has zero-valued slots for refs whose shard was
// lost — exactly the shape a cancelled local run produces — and the error
// wraps ErrIncomplete when retries were exhausted. Fatal shard failures
// (version skew, invalid slices) propagate as-is: a broken fleet is a hard
// error, not a benign incomplete partial.
func (c *Cluster) evaluator(spec core.Spec, canonical bool) core.Evaluator {
	ss := shardSpec{dto: SpecDTOFromSpec(spec), hash: SpecHash(spec), areaM2: spec.AreaMax}
	return func(ctx context.Context, refs []core.ConfigRef, done func(int, *core.RefOutcome)) ([]core.RefOutcome, error) {
		outs := make([]core.RefOutcome, len(refs))
		if len(refs) == 0 {
			return outs, nil
		}
		// Range mode is only sound when positional index == canonical
		// enumeration index, which holds for the exhaustive path's single
		// full-space batch.
		rangeMode := canonical
		chunks := splitChunks(len(refs), c.healthyCount()*c.cfg.ShardsPerWorker)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var fatalErr, firstErr error
		for _, ch := range chunks {
			wg.Add(1)
			go func(ch shardChunk) {
				defer wg.Done()
				err := c.runShard(ctx, ss, rangeMode, refs, ch, outs, done)
				if err != nil {
					var fatal *fatalShardError
					mu.Lock()
					if errors.As(err, &fatal) {
						if fatalErr == nil {
							fatalErr = err
						}
					} else if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(ch)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return outs, err
		}
		if fatalErr != nil {
			return outs, fatalErr
		}
		if firstErr != nil {
			return outs, fmt.Errorf("%w: %v", ErrIncomplete, firstErr)
		}
		return outs, nil
	}
}

// runShard evaluates one chunk with retry/reassignment: each attempt posts
// the whole slice to the next replica, and only a complete response is
// merged — at most one attempt is in flight per chunk, so a slice can
// never be merged twice.
func (c *Cluster) runShard(ctx context.Context, ss shardSpec, rangeMode bool,
	refs []core.ConfigRef, ch shardChunk, outs []core.RefOutcome, done func(int, *core.RefOutcome)) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		w := c.pickWorker()
		if w == nil {
			return errors.New("server: cluster has no workers")
		}
		if attempt > 0 {
			w.noteRetry()
			c.metrics.shardRetries.inc(workerLabel(w.url))
			// Jittered linear backoff before re-dispatch; bounded so a
			// short request deadline still gets its retries.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(jitter(50 * time.Millisecond * time.Duration(attempt))):
			}
		}
		c.metrics.shardsDispatched.inc(workerLabel(w.url))
		start := time.Now()
		resp, err := c.postShard(ctx, w, ss, rangeMode, refs, ch)
		w.noteShard(time.Since(start), err == nil)
		if err == nil {
			if len(resp.Outcomes) != ch.hi-ch.lo {
				// A short response would tear the positional merge.
				lastErr = fmt.Errorf("worker %s returned %d outcomes for a %d-ref slice", w.url, len(resp.Outcomes), ch.hi-ch.lo)
				continue
			}
			for i, o := range resp.Outcomes {
				outs[ch.lo+i] = o.toRefOutcome()
				done(ch.lo+i, &outs[ch.lo+i])
			}
			return nil
		}
		var retryable *retryableShardError
		if !errors.As(err, &retryable) {
			// Version skew / invalid slice: reassignment cannot help, and
			// the exploration must fail hard rather than degrade.
			return &fatalShardError{err: err}
		}
		lastErr = err
	}
	return lastErr
}

// postShard runs one shard attempt against one worker.
func (c *Cluster) postShard(ctx context.Context, w *workerState, ss shardSpec,
	rangeMode bool, refs []core.ConfigRef, ch shardChunk) (*ShardResponse, error) {
	req := ShardRequest{
		Spec:      ss.dto,
		SpecHash:  ss.hash,
		AreaM2:    ss.areaM2,
		Lo:        ch.lo,
		Hi:        ch.hi,
		TimeoutMS: int(c.cfg.ShardTimeout / time.Millisecond),
	}
	if rangeMode {
		req.Total = len(refs)
	} else {
		req.Refs = refs[ch.lo:ch.hi]
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+"/v1/shard/explore", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return nil, &retryableShardError{err: err}
	}
	defer func() {
		_, _ = io.Copy(io.Discard, hresp.Body)
		_ = hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		err := fmt.Errorf("worker %s: shard [%d,%d) returned %d: %s", w.url, ch.lo, ch.hi, hresp.StatusCode, bytes.TrimSpace(msg))
		// 5xx (worker dying/draining/timing out) and 429 (queue full) are
		// transient; 409 and the rest of 4xx mean the request itself is
		// wrong for this fleet.
		if hresp.StatusCode >= 500 || hresp.StatusCode == http.StatusTooManyRequests {
			return nil, &retryableShardError{err: err}
		}
		return nil, err
	}
	var out ShardResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, &retryableShardError{err: fmt.Errorf("worker %s: bad shard response: %v", w.url, err)}
	}
	return &out, nil
}

// clusterExplore is the coordinator's engine seam: identical inputs and
// outputs to core.Explore, evaluation fanned over the cluster. The
// admission path (cache, singleflight, queue) is untouched — a cache hit
// short-circuits before any shard is dispatched.
func (s *Server) clusterExplore(spec core.Spec) (*core.Result, error) {
	canonical := spec.Search == core.SearchExhaustive
	return core.ExploreWith(spec, s.cluster.evaluator(spec, canonical))
}
