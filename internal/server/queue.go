package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Async job tracking. A job here is bookkeeping around a flight: the
// compute itself runs on the shared worker pool exactly like a synchronous
// request (and coalesces with synchronous requests for the same hash); the
// record is what GET /v1/jobs/{id} serves.

// Job statuses.
const (
	// JobRunning covers queued-or-executing: the flight is unresolved.
	JobRunning = "running"
	// JobDone means the result is attached.
	JobDone = "done"
	// JobError means the computation failed (or was cancelled without a
	// partial result).
	JobError = "error"
)

// JobStatus is the wire form of one async job record.
type JobStatus struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Hash is the request's cache/coalescing key; two jobs with one hash
	// share one computation.
	Hash       string `json:"hash"`
	Status     string `json:"status"`
	CreatedAt  string `json:"created_at"`
	FinishedAt string `json:"finished_at,omitempty"`
	// Result is the endpoint's response body, present once Status is done.
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

type jobRecord struct {
	mu       sync.Mutex
	id       string
	kind     string
	hash     string
	status   string
	created  time.Time
	finished time.Time
	result   any
	err      string
}

func (j *jobRecord) complete(val any, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.status = JobError
		j.err = err.Error()
		// A drain can resolve a flight with both a partial result and an
		// error; keep the partial so the poller still gets the ranked
		// prefix.
		j.result = val
		return
	}
	j.status = JobDone
	j.result = val
}

func (j *jobRecord) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:        j.id,
		Kind:      j.kind,
		Hash:      j.hash,
		Status:    j.status,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Result:    j.result,
		Error:     j.err,
	}
	if !j.finished.IsZero() {
		s.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return s
}

// finishedAt reports the record's completion time, if it has one.
func (j *jobRecord) finishedAt() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished, !j.finished.IsZero()
}

// jobRegistry bounds retained records two ways. A TTL expires finished
// records a fixed window after completion (running records never age out —
// their flight is still live), swept lazily on every add/get/len so the
// ivoryd_async_jobs_tracked gauge stabilizes under churn instead of only
// shrinking when the cap overflows. The cap is the hard memory bound:
// once over it, finished records are evicted oldest-first; only when every
// retained record is still running does the registry drop running handles,
// oldest-first (the evicted job keeps computing and lands in the result
// cache; only its polling handle is gone).
type jobRegistry struct {
	mu    sync.Mutex
	m     map[string]*jobRecord
	order []string // insertion order, oldest first
	cap   int
	ttl   time.Duration    // <= 0 disables TTL expiry
	now   func() time.Time // injectable clock for the retention tests
}

func newJobRegistry(capacity int, ttl time.Duration) *jobRegistry {
	return &jobRegistry{m: map[string]*jobRecord{}, cap: capacity, ttl: ttl, now: time.Now}
}

// sweepLocked applies TTL expiry, then the cap. r.mu must be held.
func (r *jobRegistry) sweepLocked() {
	if r.ttl > 0 {
		cutoff := r.now().Add(-r.ttl)
		keep := r.order[:0]
		for _, id := range r.order {
			if t, done := r.m[id].finishedAt(); done && t.Before(cutoff) {
				delete(r.m, id)
				continue
			}
			keep = append(keep, id)
		}
		r.order = keep
	}
	if over := len(r.order) - r.cap; over > 0 {
		keep := r.order[:0]
		for _, id := range r.order {
			if _, done := r.m[id].finishedAt(); done && over > 0 {
				delete(r.m, id)
				over--
				continue
			}
			keep = append(keep, id)
		}
		r.order = keep
	}
	// Still over cap: everything left is running. Drop the oldest handles.
	if over := len(r.order) - r.cap; over > 0 {
		for _, id := range r.order[:over] {
			delete(r.m, id)
		}
		r.order = append(r.order[:0], r.order[over:]...)
	}
}

func (r *jobRegistry) add(rec *jobRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[rec.id] = rec
	r.order = append(r.order, rec.id)
	r.sweepLocked()
}

func (r *jobRegistry) get(id string) (*jobRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	rec, ok := r.m[id]
	return rec, ok
}

func (r *jobRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	return len(r.m)
}

// newJobID returns a 16-hex-char random identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of on supported platforms; fall
		// back to a time-derived id rather than refusing the job.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}
