package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Async job tracking. A job here is bookkeeping around a flight: the
// compute itself runs on the shared worker pool exactly like a synchronous
// request (and coalesces with synchronous requests for the same hash); the
// record is what GET /v1/jobs/{id} serves.

// Job statuses.
const (
	// JobRunning covers queued-or-executing: the flight is unresolved.
	JobRunning = "running"
	// JobDone means the result is attached.
	JobDone = "done"
	// JobError means the computation failed (or was cancelled without a
	// partial result).
	JobError = "error"
)

// JobStatus is the wire form of one async job record.
type JobStatus struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Hash is the request's cache/coalescing key; two jobs with one hash
	// share one computation.
	Hash       string `json:"hash"`
	Status     string `json:"status"`
	CreatedAt  string `json:"created_at"`
	FinishedAt string `json:"finished_at,omitempty"`
	// Result is the endpoint's response body, present once Status is done.
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

type jobRecord struct {
	mu       sync.Mutex
	id       string
	kind     string
	hash     string
	status   string
	created  time.Time
	finished time.Time
	result   any
	err      string
}

func (j *jobRecord) complete(val any, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.status = JobError
		j.err = err.Error()
		// A drain can resolve a flight with both a partial result and an
		// error; keep the partial so the poller still gets the ranked
		// prefix.
		j.result = val
		return
	}
	j.status = JobDone
	j.result = val
}

func (j *jobRecord) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:        j.id,
		Kind:      j.kind,
		Hash:      j.hash,
		Status:    j.status,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Result:    j.result,
		Error:     j.err,
	}
	if !j.finished.IsZero() {
		s.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return s
}

// jobRegistry retains up to cap records, evicting the oldest once over
// capacity (finished or not — an evicted running job keeps computing and
// lands in the result cache; only its polling handle is gone).
type jobRegistry struct {
	mu    sync.Mutex
	m     map[string]*jobRecord
	order []string
	cap   int
}

func newJobRegistry(capacity int) *jobRegistry {
	return &jobRegistry{m: map[string]*jobRecord{}, cap: capacity}
}

func (r *jobRegistry) add(rec *jobRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[rec.id] = rec
	r.order = append(r.order, rec.id)
	for len(r.order) > r.cap {
		delete(r.m, r.order[0])
		r.order = r.order[1:]
	}
}

func (r *jobRegistry) get(id string) (*jobRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.m[id]
	return rec, ok
}

func (r *jobRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// newJobID returns a 16-hex-char random identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of on supported platforms; fall
		// back to a time-derived id rather than refusing the job.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}
