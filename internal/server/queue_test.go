package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ivory/internal/core"
)

// TestJobRegistryTTLExpiresFinishedOnly: the TTL ages out finished records
// and never touches running ones — their flight is still live and a poller
// holding the id must keep seeing it.
func TestJobRegistryTTLExpiresFinishedOnly(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	now := base
	r := newJobRegistry(8, time.Minute)
	r.now = func() time.Time { return now }

	r.add(&jobRecord{id: "done-1", status: JobDone, created: base, finished: base})
	r.add(&jobRecord{id: "run-1", status: JobRunning, created: base})
	if got := r.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}

	now = base.Add(30 * time.Second) // inside the TTL: nothing expires
	if got := r.len(); got != 2 {
		t.Fatalf("len inside TTL = %d, want 2", got)
	}

	now = base.Add(2 * time.Minute) // past the TTL
	if _, ok := r.get("done-1"); ok {
		t.Error("finished record survived past the TTL")
	}
	if _, ok := r.get("run-1"); !ok {
		t.Error("running record aged out; running jobs must never expire")
	}
	if got := r.len(); got != 1 {
		t.Errorf("len past TTL = %d, want 1", got)
	}
}

// TestJobRegistryCapEvictsFinishedFirst: over the cap, finished records go
// oldest-first; running handles are dropped only when every retained
// record is still running.
func TestJobRegistryCapEvictsFinishedFirst(t *testing.T) {
	mk := func(id, status string) *jobRecord {
		rec := &jobRecord{id: id, status: status, created: time.Now()}
		if status != JobRunning {
			rec.finished = time.Now()
		}
		return rec
	}
	r := newJobRegistry(3, -1) // TTL disabled: the cap is the only bound

	r.add(mk("run-1", JobRunning))
	r.add(mk("done-1", JobDone))
	r.add(mk("run-2", JobRunning))
	r.add(mk("done-2", JobDone)) // 4th record: oldest finished goes
	if _, ok := r.get("done-1"); ok {
		t.Error("oldest finished record survived the cap")
	}
	for _, id := range []string{"run-1", "run-2", "done-2"} {
		if _, ok := r.get(id); !ok {
			t.Errorf("record %s evicted ahead of the oldest finished one", id)
		}
	}

	r.add(mk("run-3", JobRunning)) // evicts done-2, the only finished record
	if _, ok := r.get("done-2"); ok {
		t.Error("finished record retained while over cap")
	}

	r.add(mk("run-4", JobRunning)) // all running: oldest running handle goes
	if _, ok := r.get("run-1"); ok {
		t.Error("oldest running handle survived an all-running overflow")
	}
	for _, id := range []string{"run-2", "run-3", "run-4"} {
		if _, ok := r.get(id); !ok {
			t.Errorf("running record %s dropped out of order", id)
		}
	}
	if got := r.len(); got != 3 {
		t.Errorf("len = %d, want cap 3", got)
	}
}

// TestAsyncJobGaugeStabilizesUnderChurn is the retention acceptance test:
// a burst of async jobs far beyond the history cap leaves
// ivoryd_async_jobs_tracked at (or under) the cap instead of growing
// without bound, and an evicted id polls as 404.
func TestAsyncJobGaugeStabilizesUnderChurn(t *testing.T) {
	const histCap = 4
	s := New(Config{Workers: 2, QueueDepth: 32, EngineWorkers: 1, JobHistory: histCap, JobTTL: -1})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		return fakeExploreResult(sp, 1), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const churn = 20
	ids := make([]string, 0, churn)
	for i := 0; i < churn; i++ {
		// Distinct specs so no two jobs coalesce onto one flight.
		body := fmt.Sprintf(`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":%g,"imax_a":1,"area_mm2":2},"async":true}`, 0.5+float64(i)*0.01)
		resp, b := postJSON(t, ts.URL+"/v1/explore", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d (%s)", i, resp.StatusCode, b)
		}
		var js JobStatus
		if err := json.Unmarshal(b, &js); err != nil || js.ID == "" {
			t.Fatalf("job %d: bad 202 body %q (%v)", i, b, err)
		}
		ids = append(ids, js.ID)
		// Drive each job to done before submitting the next, so the registry
		// sees a steady stream of finished records churning through.
		deadline := time.Now().Add(10 * time.Second)
		for {
			_, pb := getJSON(t, ts.URL+"/v1/jobs/"+js.ID)
			var got JobStatus
			if err := json.Unmarshal(pb, &got); err != nil {
				t.Fatalf("poll %d: %v (%s)", i, err, pb)
			}
			if got.Status == JobDone {
				break
			}
			if got.Status == JobError {
				t.Fatalf("job %d failed: %s", i, got.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d stuck in %q", i, got.Status)
			}
			time.Sleep(time.Millisecond)
		}
	}

	if got := s.jobs.len(); got > histCap {
		t.Errorf("registry holds %d records after churn, want <= cap %d", got, histCap)
	}
	_, mb := getJSON(t, ts.URL+"/metrics")
	m := parseExposition(string(mb))
	if g, ok := m["ivoryd_async_jobs_tracked"]; !ok || g > histCap {
		t.Errorf("ivoryd_async_jobs_tracked = %g (present=%v), want <= %d", g, ok, histCap)
	}

	// The earliest job finished long ago and was evicted under the cap.
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job id: status %d, want 404", resp.StatusCode)
	}
	// The most recent job is still pollable.
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+ids[churn-1]); resp.StatusCode != http.StatusOK {
		t.Errorf("freshest job id: status %d, want 200", resp.StatusCode)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestAsyncJobTTLReturns404: a finished record polls as 404 once its
// retention TTL lapses, and the tracked-jobs gauge returns to zero.
func TestAsyncJobTTLReturns404(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, EngineWorkers: 1, JobTTL: 30 * time.Millisecond})
	s.explore = func(sp core.Spec) (*core.Result, error) {
		return fakeExploreResult(sp, 1), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, b := postJSON(t, ts.URL+"/v1/explore",
		`{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, b)
	}
	var js JobStatus
	if err := json.Unmarshal(b, &js); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, pb := getJSON(t, ts.URL+"/v1/jobs/"+js.ID)
		var got JobStatus
		if err := json.Unmarshal(pb, &got); err != nil {
			t.Fatalf("poll: %v (%s)", err, pb)
		}
		if got.Status == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", got.Status)
		}
		time.Sleep(time.Millisecond)
	}

	time.Sleep(60 * time.Millisecond) // 2x the TTL: the record has lapsed
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+js.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("expired job id: status %d, want 404", resp.StatusCode)
	}
	if got := s.jobs.len(); got != 0 {
		t.Errorf("registry holds %d records after TTL expiry, want 0", got)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
