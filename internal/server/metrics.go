package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ivory/internal/grid"
	"ivory/internal/pds"
	"ivory/internal/soc"
	"ivory/internal/topology"
)

// The metrics layer is a deliberately tiny, stdlib-only subset of a
// Prometheus client: labeled counters, one labeled histogram, and gauges
// computed at scrape time. Exposition follows the text format
// (https://prometheus.io/docs/instrumenting/exposition_formats/) closely
// enough for promtool and the scrape-and-parse test.

// counterVec is a monotonically increasing counter family keyed by a
// pre-rendered label string (`endpoint="explore",code="200"`).
type counterVec struct {
	mu sync.Mutex
	m  map[string]int64
}

func newCounterVec() *counterVec { return &counterVec{m: map[string]int64{}} }

func (c *counterVec) inc(labels string) { c.add(labels, 1) }

func (c *counterVec) add(labels string, n int64) {
	c.mu.Lock()
	c.m[labels] += n
	c.mu.Unlock()
}

func (c *counterVec) snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// latencyBuckets are the request-duration histogram bounds in seconds,
// spanning cache hits (sub-millisecond) to long sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60}

// histogramVec is a cumulative histogram family keyed by endpoint.
type histogramVec struct {
	mu sync.Mutex
	m  map[string]*histogram
}

type histogram struct {
	counts []int64 // per latencyBuckets bound
	sum    float64
	count  int64
}

func newHistogramVec() *histogramVec { return &histogramVec{m: map[string]*histogram{}} }

func (h *histogramVec) observe(label string, v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist, ok := h.m[label]
	if !ok {
		hist = &histogram{counts: make([]int64, len(latencyBuckets))}
		h.m[label] = hist
	}
	for i, b := range latencyBuckets {
		if v <= b {
			hist.counts[i]++
		}
	}
	hist.sum += v
	hist.count++
}

// metrics bundles the server's instrument families. Gauges (queue depth,
// draining, cache ratio, engine cache counters) are not stored — they are
// read from their sources at scrape time.
type metrics struct {
	// requests counts finished HTTP requests by endpoint and status code.
	requests *counterVec
	// latency observes request wall time by endpoint.
	latency *histogramVec
	// jobsSubmitted/jobsRejected count queue admissions vs 429 sheds.
	jobsSubmitted *counterVec
	jobsRejected  *counterVec
	// candidatesPruned counts configurations the adaptive search skipped
	// without sizing, by pruning strategy (bound | halving).
	candidatesPruned *counterVec
	// hybridCandidates counts rail assignments hybrid sweeps examined, by
	// outcome (ranked | rejected_infeasible | rejected_area).
	hybridCandidates *counterVec
	// shardsDispatched/shardRetries count coordinator shard attempts and
	// reassignments, by worker URL.
	shardsDispatched *counterVec
	shardRetries     *counterVec
}

func newMetrics() *metrics {
	return &metrics{
		requests:         newCounterVec(),
		latency:          newHistogramVec(),
		jobsSubmitted:    newCounterVec(),
		jobsRejected:     newCounterVec(),
		candidatesPruned: newCounterVec(),
		hybridCandidates: newCounterVec(),
		shardsDispatched: newCounterVec(),
		shardRetries:     newCounterVec(),
	}
}

// notePruned folds one finished exploration's pruning telemetry into the
// counter. Cache hits do not recount: the counter tracks configurations
// actually skipped by compute jobs.
func (m *metrics) notePruned(bound, halving int) {
	if bound > 0 {
		m.candidatesPruned.add(`strategy="bound"`, int64(bound))
	}
	if halving > 0 {
		m.candidatesPruned.add(`strategy="halving"`, int64(halving))
	}
}

// noteHybrid folds one finished hybrid sweep's enumeration telemetry into
// the counter. Cache hits do not recount: the counter tracks assignments
// actually examined by compute jobs.
func (m *metrics) noteHybrid(s soc.SweepStats) {
	if s.Ranked > 0 {
		m.hybridCandidates.add(`outcome="ranked"`, int64(s.Ranked))
	}
	if s.RejectedInfeasible > 0 {
		m.hybridCandidates.add(`outcome="rejected_infeasible"`, int64(s.RejectedInfeasible))
	}
	if s.RejectedArea > 0 {
		m.hybridCandidates.add(`outcome="rejected_area"`, int64(s.RejectedArea))
	}
}

// endpointCode renders the label pair for the request counter.
func endpointCode(endpoint string, code int) string {
	return `endpoint="` + endpoint + `",code="` + strconv.Itoa(code) + `"`
}

func endpointLabel(endpoint string) string { return `endpoint="` + endpoint + `"` }

// workerLabel renders the label for the per-worker shard counters. URLs
// contain no quotes or backslashes in practice; escape defensively anyway.
func workerLabel(url string) string {
	return `worker="` + strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(url) + `"`
}

// gaugeSnapshot carries the point-in-time values the server computes at
// scrape time.
type gaugeSnapshot struct {
	queueDepth   int
	running      int
	inflight     int
	draining     bool
	cacheEntries int
	cacheHits    int64
	cacheMisses  int64
	coalesced    int64
	jobsTracked  int
	// workerHealth maps worker URL -> passing health checks; nil on
	// non-coordinator replicas (the gauge family is then omitted).
	workerHealth map[string]bool
}

func writeCounterFamily(w io.Writer, name, help string, snap map[string]int64) {
	_, _ = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "" {
			_, _ = fmt.Fprintf(w, "%s %d\n", name, snap[k])
		} else {
			_, _ = fmt.Fprintf(w, "%s{%s} %d\n", name, k, snap[k])
		}
	}
}

func writeGauge(w io.Writer, name, help string, v float64) {
	_, _ = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
}

func writeCounter(w io.Writer, name, help string, v int64) {
	_, _ = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// write renders the full exposition: server instruments, point-in-time
// gauges, and the engine-level cache/solver counters (package-wide
// lifetime totals, the same counters core.Stats diffs per run).
func (m *metrics) write(w io.Writer, g gaugeSnapshot) {
	writeCounterFamily(w, "ivoryd_requests_total", "Finished HTTP requests by endpoint and status code.", m.requests.snapshot())
	writeCounterFamily(w, "ivoryd_jobs_submitted_total", "Jobs admitted to the compute queue by endpoint.", m.jobsSubmitted.snapshot())
	writeCounterFamily(w, "ivoryd_jobs_rejected_total", "Jobs shed with 429 because the queue was full, by endpoint.", m.jobsRejected.snapshot())
	writeCounterFamily(w, "ivoryd_candidates_pruned_total", "Configurations the adaptive search skipped without sizing, by strategy.", m.candidatesPruned.snapshot())
	writeCounterFamily(w, "ivoryd_hybrid_candidates_total", "Rail assignments hybrid sweeps examined, by outcome.", m.hybridCandidates.snapshot())
	writeCounterFamily(w, "ivoryd_shards_dispatched_total", "Shard attempts dispatched to cluster workers, by worker URL.", m.shardsDispatched.snapshot())
	writeCounterFamily(w, "ivoryd_shard_retries_total", "Shard reassignments after a failed attempt, by worker URL.", m.shardRetries.snapshot())

	// Histogram family.
	name := "ivoryd_request_duration_seconds"
	_, _ = fmt.Fprintf(w, "# HELP %s Request wall time by endpoint.\n# TYPE %s histogram\n", name, name)
	m.latency.mu.Lock()
	labels := make([]string, 0, len(m.latency.m))
	for k := range m.latency.m {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	for _, label := range labels {
		h := m.latency.m[label]
		for i, b := range latencyBuckets {
			_, _ = fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", name, label,
				strconv.FormatFloat(b, 'g', -1, 64), h.counts[i])
		}
		_, _ = fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, h.count)
		_, _ = fmt.Fprintf(w, "%s_sum{%s} %s\n", name, label, strconv.FormatFloat(h.sum, 'g', -1, 64))
		_, _ = fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, h.count)
	}
	m.latency.mu.Unlock()

	writeGauge(w, "ivoryd_queue_depth", "Jobs accepted but not yet running.", float64(g.queueDepth))
	writeGauge(w, "ivoryd_jobs_running", "Jobs currently executing on workers.", float64(g.running))
	writeGauge(w, "ivoryd_flights_inflight", "Distinct computations in flight (after coalescing).", float64(g.inflight))
	draining := 0.0
	if g.draining {
		draining = 1
	}
	writeGauge(w, "ivoryd_draining", "1 while the server is draining for shutdown.", draining)
	writeGauge(w, "ivoryd_async_jobs_tracked", "Async job records currently retained.", float64(g.jobsTracked))

	if g.workerHealth != nil {
		name := "ivoryd_worker_healthy"
		_, _ = fmt.Fprintf(w, "# HELP %s 1 while the worker passes health checks, by worker URL.\n# TYPE %s gauge\n", name, name)
		urls := make([]string, 0, len(g.workerHealth))
		for u := range g.workerHealth {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		for _, u := range urls {
			v := 0
			if g.workerHealth[u] {
				v = 1
			}
			_, _ = fmt.Fprintf(w, "%s{%s} %d\n", name, workerLabel(u), v)
		}
	}

	writeGauge(w, "ivoryd_result_cache_entries", "Entries in the LRU result cache.", float64(g.cacheEntries))
	writeCounter(w, "ivoryd_result_cache_hits_total", "Result-cache hits.", g.cacheHits)
	writeCounter(w, "ivoryd_result_cache_misses_total", "Result-cache misses.", g.cacheMisses)
	writeCounter(w, "ivoryd_coalesced_requests_total", "Requests that joined an identical in-flight computation.", g.coalesced)
	ratio := 0.0
	if total := g.cacheHits + g.cacheMisses; total > 0 {
		ratio = float64(g.cacheHits) / float64(total)
	}
	writeGauge(w, "ivoryd_result_cache_hit_ratio", "Lifetime result-cache hit ratio.", ratio)

	// Engine-level counters (process-lifetime totals).
	th, tm := topology.CacheStats()
	writeCounter(w, "ivory_topology_cache_hits_total", "Topology analyze-memo hits.", th)
	writeCounter(w, "ivory_topology_cache_misses_total", "Topology analyze-memo misses.", tm)
	gc, gcg := grid.SolverStats()
	writeCounter(w, "ivory_grid_solver_cholesky_total", "Grid solver contexts built on the banded Cholesky path.", gc)
	writeCounter(w, "ivory_grid_solver_cg_total", "Grid solver contexts built on the conjugate-gradient fallback.", gcg)
	ph, pm := pds.TraceCacheStats()
	writeCounter(w, "ivory_pds_trace_cache_hits_total", "PDS core-current trace cache hits.", ph)
	writeCounter(w, "ivory_pds_trace_cache_misses_total", "PDS core-current trace cache misses.", pm)
}

// parseExposition is shared with the tests: it maps "name{labels}" -> value
// for every sample line in a text exposition.
func parseExposition(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}
