// Package server is the Ivory serving subsystem: a long-running HTTP/JSON
// daemon (cmd/ivoryd) that exposes the design-space exploration and
// transient case-study engines behind a bounded job queue, an LRU result
// cache with singleflight coalescing, Prometheus-style metrics, and a
// graceful SIGTERM drain. The CLI (`ivory explore -json`) shares the DTO
// types in this file, so batch and interactive users read one schema.
package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"ivory/internal/core"
	"ivory/internal/experiments"
	"ivory/internal/ivr"
)

// SpecDTO is the wire form of core.Spec: every engine input that affects
// the result, none of the run-control plumbing (workers, context, progress
// — the server owns those). Fields mirror the paper's Table 1.
type SpecDTO struct {
	// Node selects the technology node (e.g. "45nm").
	Node string `json:"node"`
	// VInV and VOutV are the converter input voltage and regulation target.
	VInV  float64 `json:"vin_v"`
	VOutV float64 `json:"vout_v"`
	// IMaxA is the maximum load current (A).
	IMaxA float64 `json:"imax_a"`
	// AreaMM2 is the die-area budget in mm² (the CLI's unit, not m²).
	AreaMM2 float64 `json:"area_mm2"`
	// RippleMaxV bounds static ripple (V); 0 selects 1% of VOut.
	RippleMaxV float64 `json:"ripple_max_v,omitempty"`
	// Objective is "eff" | "area" | "noise" (long forms accepted); empty
	// selects max-efficiency.
	Objective string `json:"objective,omitempty"`
	// EfficiencyFloor prunes low-efficiency candidates under the area/noise
	// objectives; 0 selects the engine default (0.25).
	EfficiencyFloor float64 `json:"efficiency_floor,omitempty"`
	// Kinds restricts the converter families ("SC", "buck", "LDO",
	// case-insensitive); empty explores all three.
	Kinds []string `json:"kinds,omitempty"`
	// FSwMaxHz bounds switching frequency; 0 selects 1 GHz.
	FSwMaxHz float64 `json:"fsw_max_hz,omitempty"`
	// Search is "exhaustive" | "adaptive" (aliases "full" / "pruned");
	// empty selects the exhaustive reference sweep. Adaptive prunes with
	// analytic bounds and successive halving and returns the same ranked
	// winners at a fraction of the evaluations.
	Search string `json:"search,omitempty"`
}

// ToSpec converts the DTO into an engine spec. Validation beyond parsing
// (positive voltages, known node, ...) happens in core.Spec.Normalized.
func (d SpecDTO) ToSpec() (core.Spec, error) {
	obj, err := core.ParseObjective(d.Objective)
	if err != nil {
		return core.Spec{}, err
	}
	search, err := core.ParseSearch(d.Search)
	if err != nil {
		return core.Spec{}, err
	}
	var kinds []core.Kind
	for _, k := range d.Kinds {
		kind, err := core.ParseKind(k)
		if err != nil {
			return core.Spec{}, err
		}
		kinds = append(kinds, kind)
	}
	return core.Spec{
		NodeName:        d.Node,
		VIn:             d.VInV,
		VOut:            d.VOutV,
		IMax:            d.IMaxA,
		AreaMax:         d.AreaMM2 * 1e-6,
		RippleMax:       d.RippleMaxV,
		Objective:       obj,
		EfficiencyFloor: d.EfficiencyFloor,
		Kinds:           kinds,
		FSwMax:          d.FSwMaxHz,
		Search:          search,
	}, nil
}

// SpecDTOFromSpec converts an engine spec (typically the defaulted echo on
// Result.Spec) back to wire form. Run-control fields are dropped.
func SpecDTOFromSpec(s core.Spec) SpecDTO {
	kinds := make([]string, 0, len(s.Kinds))
	for _, k := range s.Kinds {
		kinds = append(kinds, k.String())
	}
	return SpecDTO{
		Node:            s.NodeName,
		VInV:            s.VIn,
		VOutV:           s.VOut,
		IMaxA:           s.IMax,
		AreaMM2:         s.AreaMax * 1e6,
		RippleMaxV:      s.RippleMax,
		Objective:       s.Objective.String(),
		EfficiencyFloor: s.EfficiencyFloor,
		Kinds:           kinds,
		FSwMaxHz:        s.FSwMax,
		Search:          s.Search.String(),
	}
}

// SpecHash returns the canonical identity of a normalized spec: FNV-1a over
// a fixed-order field string with shortest-round-trip float formatting, so
// semantically identical specs — regardless of field order, elided
// defaults, or worker counts — map to one cache/singleflight key. Hash the
// NORMALIZED spec (core.Spec.Normalized); hashing a raw spec would split
// "ripple 0 (defaulted)" and "ripple 10 mV (explicit)" into two keys.
func SpecHash(s core.Spec) string {
	kinds := make([]string, 0, len(s.Kinds))
	for _, k := range s.Kinds {
		kinds = append(kinds, k.String())
	}
	sort.Strings(kinds)
	var b strings.Builder
	b.WriteString("node=")
	b.WriteString(s.NodeName)
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"vin", s.VIn}, {"vout", s.VOut}, {"imax", s.IMax}, {"area", s.AreaMax},
		{"ripple", s.RippleMax}, {"efloor", s.EfficiencyFloor}, {"fswmax", s.FSwMax},
	} {
		b.WriteByte(';')
		b.WriteString(f.name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(f.v, 'g', -1, 64))
	}
	b.WriteString(";obj=")
	b.WriteString(s.Objective.String())
	b.WriteString(";search=")
	b.WriteString(s.Search.String())
	b.WriteString(";kinds=")
	b.WriteString(strings.Join(kinds, ","))
	h := fnv.New64a()
	// strings.Builder's io.Writer never fails.
	_, _ = h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ExploreRequest is the body of POST /v1/explore.
type ExploreRequest struct {
	Spec SpecDTO `json:"spec"`
	// Top bounds the returned candidate list; 0 selects 10, -1 returns all.
	Top int `json:"top,omitempty"`
	// TimeoutMS caps this job's compute deadline below the server default;
	// 0 inherits the server default. Values above the server cap are
	// clamped, not rejected.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Async submits the job and returns 202 with a job id immediately;
	// poll GET /v1/jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
}

// LossDTO itemizes converter losses in watts (ivr.LossBreakdown).
type LossDTO struct {
	ConductionW float64 `json:"conduction_w"`
	GateDriveW  float64 `json:"gate_drive_w"`
	ParasiticW  float64 `json:"parasitic_w"`
	LeakageW    float64 `json:"leakage_w"`
	ControlW    float64 `json:"control_w"`
	MagneticW   float64 `json:"magnetic_w"`
	DropoutW    float64 `json:"dropout_w"`
}

// CandidateDTO is one ranked design point.
type CandidateDTO struct {
	Kind          string  `json:"kind"`
	Label         string  `json:"label"`
	EfficiencyPct float64 `json:"efficiency_pct"`
	RippleMV      float64 `json:"ripple_mv"`
	FSwMHz        float64 `json:"fsw_mhz"`
	AreaMM2       float64 `json:"area_mm2"`
	POutW         float64 `json:"pout_w"`
	Loss          LossDTO `json:"loss"`
}

func candidateDTO(c core.Candidate) CandidateDTO {
	m := c.Metrics
	return CandidateDTO{
		Kind:          c.Kind.String(),
		Label:         c.Label,
		EfficiencyPct: m.Efficiency * 100,
		RippleMV:      m.RippleVpp * 1e3,
		FSwMHz:        m.FSw / 1e6,
		AreaMM2:       m.AreaDie * 1e6,
		POutW:         m.POut,
		Loss:          lossDTO(m.Loss),
	}
}

func lossDTO(l ivr.LossBreakdown) LossDTO {
	return LossDTO{
		ConductionW: l.Conduction,
		GateDriveW:  l.GateDrive,
		ParasiticW:  l.Parasitic,
		LeakageW:    l.Leakage,
		ControlW:    l.Control,
		MagneticW:   l.Magnetic,
		DropoutW:    l.Dropout,
	}
}

// KindStatsDTO is one family's accept/reject tally.
type KindStatsDTO struct {
	Kind     string `json:"kind"`
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
}

// ExploreStatsDTO is the wire form of core.Stats.
type ExploreStatsDTO struct {
	Jobs             int            `json:"jobs"`
	Done             int            `json:"done"`
	Accepted         int            `json:"accepted"`
	Rejected         int            `json:"rejected"`
	PerKind          []KindStatsDTO `json:"per_kind"`
	PrunedBound      int            `json:"pruned_bound"`
	PrunedHalving    int            `json:"pruned_halving"`
	FrontSize        int            `json:"front_size"`
	TopoCacheHits    int64          `json:"topo_cache_hits"`
	TopoCacheMisses  int64          `json:"topo_cache_misses"`
	GridCholesky     int64          `json:"grid_cholesky"`
	GridCG           int64          `json:"grid_cg"`
	WallMS           float64        `json:"wall_ms"`
	CandidatesPerSec float64        `json:"candidates_per_sec"`
	Cancelled        bool           `json:"cancelled,omitempty"`
}

func exploreStatsDTO(s core.Stats) ExploreStatsDTO {
	d := ExploreStatsDTO{
		Jobs:             s.Jobs,
		Done:             s.Done,
		Accepted:         s.Accepted(),
		Rejected:         s.Rejected(),
		PrunedBound:      s.PrunedBound,
		PrunedHalving:    s.PrunedHalving,
		FrontSize:        s.FrontSize,
		TopoCacheHits:    s.TopoCacheHits,
		TopoCacheMisses:  s.TopoCacheMisses,
		GridCholesky:     s.GridCholesky,
		GridCG:           s.GridCG,
		WallMS:           float64(s.Wall.Milliseconds()),
		CandidatesPerSec: s.CandidatesPerSec,
		Cancelled:        s.Cancelled,
	}
	for k := core.KindSC; k <= core.KindLDO; k++ {
		ks := s.ByKind(k)
		if ks.Evaluated() > 0 {
			d.PerKind = append(d.PerKind, KindStatsDTO{Kind: k.String(), Accepted: ks.Accepted, Rejected: ks.Rejected})
		}
	}
	return d
}

// ExploreResponse is the body of a completed exploration — from the server
// or from `ivory explore -json`, byte-identical schemas.
type ExploreResponse struct {
	// SpecHash identifies the normalized spec (the cache key).
	SpecHash string `json:"spec_hash"`
	// Spec echoes the normalized (defaulted) input.
	Spec SpecDTO `json:"spec"`
	// Best is the winning candidate; absent when no candidate survived.
	Best *CandidateDTO `json:"best,omitempty"`
	// Candidates is the ranked list, truncated to the request's Top.
	Candidates []CandidateDTO `json:"candidates"`
	// TotalCandidates is the untruncated feasible-candidate count.
	TotalCandidates int `json:"total_candidates"`
	// Rejected counts configurations that failed sizing or feasibility.
	Rejected int             `json:"rejected"`
	Stats    ExploreStatsDTO `json:"stats"`
	// Cancelled marks a partial result: the run was stopped (deadline or
	// drain) and Candidates covers only the completed prefix of the space.
	Cancelled bool `json:"cancelled,omitempty"`
	// Incomplete marks a cluster partial: shard retries were exhausted and
	// Candidates covers only the slices that completed. Cancelled is also
	// set — an incomplete result IS a stopped run — so clients that only
	// check cancelled keep the PR 3 partial-result contract.
	Incomplete bool `json:"incomplete,omitempty"`
	// Error carries the interruption cause on a partial result.
	Error string `json:"error,omitempty"`
}

// ExploreResponseFromResult converts an engine result — complete, or the
// ranked partial a cancelled run returns — into the wire form, keeping
// every candidate. runErr is the error Explore returned alongside the
// partial result (nil on a complete run). Trim for transport with Trimmed.
func ExploreResponseFromResult(res *core.Result, runErr error) *ExploreResponse {
	r := &ExploreResponse{
		SpecHash:        SpecHash(res.Spec),
		Spec:            SpecDTOFromSpec(res.Spec),
		TotalCandidates: len(res.Candidates),
		Rejected:        res.Rejected,
		Stats:           exploreStatsDTO(res.Stats),
		Cancelled:       res.Stats.Cancelled,
		Candidates:      make([]CandidateDTO, 0, len(res.Candidates)),
	}
	for _, c := range res.Candidates {
		r.Candidates = append(r.Candidates, candidateDTO(c))
	}
	if len(r.Candidates) > 0 {
		best := r.Candidates[0]
		r.Best = &best
	}
	if runErr != nil {
		r.Error = runErr.Error()
		r.Cancelled = true
		r.Incomplete = errors.Is(runErr, ErrIncomplete)
	}
	return r
}

// Trimmed returns a shallow copy with the candidate list bounded to top
// (0 selects 10; negative keeps all). The cache stores the full response;
// each request trims its own view.
func (r *ExploreResponse) Trimmed(top int) *ExploreResponse {
	if top == 0 {
		top = 10
	}
	if top < 0 || top >= len(r.Candidates) {
		return r
	}
	out := *r
	out.Candidates = r.Candidates[:top]
	return &out
}

// TransientRequest is the body of POST /v1/transient: a scoped run of the
// workload-driven transient noise engine (the paper's Fig. 10 case study).
type TransientRequest struct {
	// TUS is the simulated span per cell in µs; 0 selects the case-study
	// default (20 µs).
	TUS float64 `json:"t_us,omitempty"`
	// DtNS is the integration step in ns; 0 selects 1 ns.
	DtNS float64 `json:"dt_ns,omitempty"`
	// Benchmarks restricts the workloads simulated; empty runs all
	// built-in benchmarks (workload.Names). Unknown names are rejected
	// before any simulation runs.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Configs restricts the VR configurations (distributed-IVR counts;
	// 0 = off-chip VRM); empty runs the case-study set {0,1,2,4}.
	Configs   []int `json:"configs,omitempty"`
	TimeoutMS int   `json:"timeout_ms,omitempty"`
	Async     bool  `json:"async,omitempty"`
}

// Hash is the transient request's cache/singleflight key: the engine is
// deterministic for a given (span, step, benchmark set, config set), so
// identical sweeps coalesce exactly like explorations do.
func (t TransientRequest) Hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s;dt=%s",
		strconv.FormatFloat(t.TUS, 'g', -1, 64), strconv.FormatFloat(t.DtNS, 'g', -1, 64))
	benches := append([]string(nil), t.Benchmarks...)
	sort.Strings(benches)
	b.WriteString(";bench=")
	b.WriteString(strings.Join(benches, ","))
	configs := append([]int(nil), t.Configs...)
	sort.Ints(configs)
	b.WriteString(";configs=")
	for i, c := range configs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Options converts the request into engine options. Worker count is the
// server's to set.
func (t TransientRequest) Options(workers int) experiments.TransientOptions {
	return experiments.TransientOptions{
		T:          t.TUS * 1e-6,
		Dt:         t.DtNS * 1e-9,
		Workers:    workers,
		Benchmarks: t.Benchmarks,
		Configs:    t.Configs,
	}
}

// TransientCellDTO is one benchmark × configuration noise summary.
type TransientCellDTO struct {
	Benchmark string  `json:"benchmark"`
	Config    string  `json:"config"`
	MedianV   float64 `json:"median_v"`
	Q1V       float64 `json:"q1_v"`
	Q3V       float64 `json:"q3_v"`
	MinV      float64 `json:"min_v"`
	MaxV      float64 `json:"max_v"`
	NoiseMVpp float64 `json:"noise_mvpp"`
	DroopMV   float64 `json:"droop_mv"`
}

// TransientStatsDTO is the wire form of experiments.TransientStats.
type TransientStatsDTO struct {
	Cells            int     `json:"cells"`
	Done             int     `json:"done"`
	TraceCacheHits   int64   `json:"trace_cache_hits"`
	TraceCacheMisses int64   `json:"trace_cache_misses"`
	ExploreWallMS    float64 `json:"explore_wall_ms"`
	SimWallMS        float64 `json:"sim_wall_ms"`
	WallMS           float64 `json:"wall_ms"`
	CellsPerSec      float64 `json:"cells_per_sec"`
}

// TransientResponse is the body of a completed transient sweep.
type TransientResponse struct {
	// RequestHash identifies the request (the cache key).
	RequestHash string             `json:"request_hash"`
	Cells       []TransientCellDTO `json:"cells"`
	// NoiseByConfigMVpp / DroopByConfigMV aggregate worst-case noise and
	// droop per configuration (the paper's guardband comparison).
	NoiseByConfigMVpp map[string]float64 `json:"noise_by_config_mvpp"`
	DroopByConfigMV   map[string]float64 `json:"droop_by_config_mv"`
	Stats             TransientStatsDTO  `json:"stats"`
	Error             string             `json:"error,omitempty"`
}

// TransientResponseFromResult converts an engine result to wire form.
func TransientResponseFromResult(hash string, res *experiments.Fig10Result) *TransientResponse {
	out := &TransientResponse{
		RequestHash:       hash,
		Cells:             make([]TransientCellDTO, 0, len(res.Cells)),
		NoiseByConfigMVpp: map[string]float64{},
		DroopByConfigMV:   map[string]float64{},
		Stats: TransientStatsDTO{
			Cells:            res.RunStats.Cells,
			Done:             res.RunStats.Done,
			TraceCacheHits:   res.RunStats.TraceCacheHits,
			TraceCacheMisses: res.RunStats.TraceCacheMisses,
			ExploreWallMS:    float64(res.RunStats.ExploreWall.Milliseconds()),
			SimWallMS:        float64(res.RunStats.SimWall.Milliseconds()),
			WallMS:           float64(res.RunStats.Wall.Milliseconds()),
			CellsPerSec:      res.RunStats.CellsPerSec,
		},
	}
	for _, c := range res.Cells {
		out.Cells = append(out.Cells, TransientCellDTO{
			Benchmark: c.Benchmark,
			Config:    c.Config,
			MedianV:   c.Stats.Median,
			Q1V:       c.Stats.Q1,
			Q3V:       c.Stats.Q3,
			MinV:      c.Stats.Min,
			MaxV:      c.Stats.Max,
			NoiseMVpp: c.NoiseVpp * 1e3,
			DroopMV:   c.WorstDroop * 1e3,
		})
	}
	for cfg, v := range res.NoiseByConfig {
		out.NoiseByConfigMVpp[cfg] = v * 1e3
	}
	for cfg, v := range res.DroopByConfig {
		out.DroopByConfigMV[cfg] = v * 1e3
	}
	return out
}

// ClusterWorkerDTO is one replica's health and shard telemetry in the
// GET /v1/cluster body.
type ClusterWorkerDTO struct {
	URL              string `json:"url"`
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	LastError        string `json:"last_error,omitempty"`
	// ShardsOK/ShardsErr/Retries count this worker's completed shard
	// attempts, failed attempts, and reassignments dispatched to it.
	ShardsOK  int64 `json:"shards_ok"`
	ShardsErr int64 `json:"shards_err"`
	Retries   int64 `json:"retries"`
	// Latency quantiles over the last shard attempts (ms).
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP90MS float64 `json:"latency_p90_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
}

// ClusterResponse is the body of GET /v1/cluster. Workers is empty on
// non-coordinator replicas.
type ClusterResponse struct {
	Role    string             `json:"role"`
	Workers []ClusterWorkerDTO `json:"workers,omitempty"`
}

// ErrorResponse is the uniform error body for non-2xx statuses.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterS mirrors the Retry-After header on 429/503 responses.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}
