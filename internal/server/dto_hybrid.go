package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"ivory/internal/pdn"
	"ivory/internal/soc"
	"ivory/internal/workload"
)

// HybridDomainDTO is one power domain of a custom floorplan in the
// POST /v1/hybrid body. Omitting domains entirely selects the default
// five-domain SoC (soc.DefaultFloorplan), which includes a phase-scheduled
// GPU; custom domains drive single built-in benchmarks.
type HybridDomainDTO struct {
	Name string `json:"name"`
	// Cores is the number of identical load blocks.
	Cores int `json:"cores"`
	// TDPPerCoreW is each block's average power (W) at VNominalV.
	TDPPerCoreW float64 `json:"tdp_per_core_w"`
	VNominalV   float64 `json:"vnominal_v"`
	// GridROhm / GridLH are the domain's on-chip grid impedance from a
	// centralized regulation point to a block.
	GridROhm float64 `json:"grid_r_ohm"`
	GridLH   float64 `json:"grid_l_h"`
	// Benchmark names the built-in workload driving the domain.
	Benchmark string `json:"benchmark"`
	// Seed overrides the domain's trace seed; 0 derives it from the
	// floorplan seed and the domain name.
	Seed int64 `json:"seed,omitempty"`
}

// HybridRequest is the body of POST /v1/hybrid: a per-domain rail
// assignment sweep over an SoC floorplan (the hybrid power-delivery
// question — which domains deserve on-chip regulation under a shared
// area budget).
type HybridRequest struct {
	// Domains is the custom floorplan; empty selects the default SoC.
	Domains []HybridDomainDTO `json:"domains,omitempty"`
	// VSourceV is the board supply for a custom floorplan; 0 selects 3.3 V.
	// Ignored (with the default floorplan's 3.3 V) when Domains is empty.
	VSourceV float64 `json:"vsource_v,omitempty"`
	// Seed makes a custom floorplan's workload synthesis reproducible;
	// 0 selects the case-study seed. Ignored when Domains is empty.
	Seed int64 `json:"seed,omitempty"`
	// AreaBudgetMM2 is the shared on-chip regulator area budget (mm²);
	// 0 disables the constraint.
	AreaBudgetMM2 float64 `json:"area_budget_mm2,omitempty"`
	// Rails restricts the per-domain delivery menu ("vrm", "ivr", "ivrN",
	// "ldo"); empty offers the default menu. Order never matters: menus are
	// canonically sorted and deduped before hashing and sweeping.
	Rails []string `json:"rails,omitempty"`
	// TUS / DtNS are the per-cell simulation span (µs) and step (ns);
	// 0 selects the sweep defaults (10 µs, 5 ns).
	TUS  float64 `json:"t_us,omitempty"`
	DtNS float64 `json:"dt_ns,omitempty"`
	// Top bounds the returned candidate list; 0 selects 10, -1 returns all
	// retained candidates (the server retains at most hybridRetain).
	Top       int  `json:"top,omitempty"`
	TimeoutMS int  `json:"timeout_ms,omitempty"`
	Async     bool `json:"async,omitempty"`
}

// hybridRetain caps the ranked candidates a hybrid sweep retains
// server-side. The cache stores one full response per spec hash and each
// request trims its own view, so the retention must cover any Top a later
// identical request may ask for without holding the whole assignment space.
const hybridRetain = 1000

// defaultHybridSeed matches the case-study system seed used across the
// experiments.
const defaultHybridSeed = 20170618

// ToSpec converts the request into a sweep spec (rails parsed and
// canonicalized, floorplan built and validated). Worker count, retention,
// and context are the server's to set.
func (h HybridRequest) ToSpec() (soc.SweepSpec, error) {
	if h.TUS < 0 || h.DtNS < 0 {
		return soc.SweepSpec{}, fmt.Errorf("t_us and dt_ns must be >= 0")
	}
	rails, err := parseRails(h.Rails)
	if err != nil {
		return soc.SweepSpec{}, err
	}
	spec := soc.SweepSpec{
		Rails:         rails,
		AreaBudgetMM2: h.AreaBudgetMM2,
		T:             h.TUS * 1e-6,
		Dt:            h.DtNS * 1e-9,
	}
	if len(h.Domains) > 0 {
		fl, err := h.floorplan()
		if err != nil {
			return soc.SweepSpec{}, err
		}
		spec.Floorplan = fl
	}
	return spec, nil
}

// floorplan realizes the custom-domain form on the case-study off-chip
// network.
func (h HybridRequest) floorplan() (*soc.Floorplan, error) {
	net, err := pdn.TypicalOffChip(60e-9, 1.2e-3)
	if err != nil {
		return nil, err
	}
	vSource := h.VSourceV
	if vSource == 0 {
		vSource = 3.3
	}
	seed := h.Seed
	if seed == 0 {
		seed = defaultHybridSeed
	}
	fl := &soc.Floorplan{Name: "custom", VSource: vSource, Network: net, Seed: seed}
	for _, d := range h.Domains {
		bench, err := workload.Get(d.Benchmark)
		if err != nil {
			return nil, fmt.Errorf("domain %q: %w", d.Name, err)
		}
		fl.Domains = append(fl.Domains, soc.Domain{
			Name:       d.Name,
			Cores:      d.Cores,
			TDPPerCore: d.TDPPerCoreW,
			VNominal:   d.VNominalV,
			//lint:ignore unitflow the wire name spells out both the quantity letter and its unit (grid_r_ohm)
			GridR:    d.GridROhm,
			GridL:    d.GridLH,
			Workload: bench,
			Seed:     d.Seed,
		})
	}
	if err := fl.Validate(); err != nil {
		return nil, err
	}
	return fl, nil
}

func parseRails(tokens []string) ([]soc.Rail, error) {
	var rails []soc.Rail
	for _, t := range tokens {
		r, err := soc.ParseRail(t)
		if err != nil {
			return nil, err
		}
		rails = append(rails, r)
	}
	return soc.NormalizeRails(rails)
}

// Hash is the hybrid request's cache/singleflight key: FNV-1a over a
// fixed-order canonical field string, so semantically identical sweeps —
// regardless of rail listing order, elided defaults, Top, or timeouts —
// map to one key. Call only after ToSpec succeeded (rail tokens must
// parse).
func (h HybridRequest) Hash() string {
	var b strings.Builder
	fv := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, "budget=%s;t=%s;dt=%s", fv(h.AreaBudgetMM2), fv(h.TUS), fv(h.DtNS))
	rails, err := parseRails(h.Rails)
	if err != nil {
		// Unreachable after a successful ToSpec; keep the key stable anyway.
		tokens := append([]string(nil), h.Rails...)
		sort.Strings(tokens)
		b.WriteString(";rails-raw=" + strings.Join(tokens, ","))
	} else {
		b.WriteString(";rails=")
		for i, r := range rails {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(r.String())
		}
	}
	if len(h.Domains) > 0 {
		vSource := h.VSourceV
		if vSource == 0 {
			vSource = 3.3
		}
		seed := h.Seed
		if seed == 0 {
			seed = defaultHybridSeed
		}
		fmt.Fprintf(&b, ";vsource=%s;seed=%d", fv(vSource), seed)
		for _, d := range h.Domains {
			fmt.Fprintf(&b, ";dom=%s,%d,%s,%s,%s,%s,%s,%d",
				d.Name, d.Cores, fv(d.TDPPerCoreW), fv(d.VNominalV),
				fv(d.GridROhm), fv(d.GridLH), d.Benchmark, d.Seed)
		}
	} else {
		b.WriteString(";floorplan=default")
	}
	hsh := fnv.New64a()
	_, _ = hsh.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", hsh.Sum64())
}

// HybridCellDTO is one domain × rail evaluation.
type HybridCellDTO struct {
	Domain string `json:"domain"`
	Rail   string `json:"rail"`
	Config string `json:"config"`
	// NoiseMVpp / DroopMV / MarginMV are the transient noise summary and
	// the guardband fed into the delivery ladder (mV).
	NoiseMVpp float64 `json:"noise_mvpp"`
	DroopMV   float64 `json:"droop_mv"`
	MarginMV  float64 `json:"margin_mv"`
	// AreaMM2 is the on-chip regulator area this rail spends (mm²).
	AreaMM2 float64 `json:"area_mm2"`
	// EfficiencyPct is the domain's guardband-aware delivery efficiency.
	EfficiencyPct float64 `json:"efficiency_pct"`
	// Infeasible carries the rejection reason when the rail cannot serve
	// the domain; the numeric fields are then zero.
	Infeasible string `json:"infeasible,omitempty"`
}

// HybridCandidateDTO is one ranked per-domain rail assignment.
type HybridCandidateDTO struct {
	Rank int `json:"rank"`
	// Assignment is the canonical "domain=rail,..." key.
	Assignment    string  `json:"assignment"`
	EfficiencyPct float64 `json:"efficiency_pct"`
	AreaMM2       float64 `json:"area_mm2"`
	WorstMarginMV float64 `json:"worst_margin_mv"`
	PCoreW        float64 `json:"pcore_w"`
	PSourceW      float64 `json:"psource_w"`
}

// HybridStatsDTO is the wire form of soc.SweepStats.
type HybridStatsDTO struct {
	Cells              int     `json:"cells"`
	CellsInfeasible    int     `json:"cells_infeasible"`
	Assignments        int     `json:"assignments"`
	Ranked             int     `json:"ranked"`
	RejectedInfeasible int     `json:"rejected_infeasible"`
	RejectedArea       int     `json:"rejected_area"`
	WallMS             float64 `json:"wall_ms"`
	AssignmentsPerSec  float64 `json:"assignments_per_sec"`
}

// HybridResponse is the body of a completed hybrid sweep.
type HybridResponse struct {
	// RequestHash identifies the request (the cache key).
	RequestHash string `json:"request_hash"`
	// Floorplan names the swept floorplan; Rails echoes the canonical menu.
	Rails     []string `json:"rails"`
	Floorplan string   `json:"floorplan"`
	// Best is the top-ranked assignment; absent when nothing was feasible.
	Best *HybridCandidateDTO `json:"best,omitempty"`
	// Candidates is the ranked list, truncated to the request's Top.
	Candidates []HybridCandidateDTO `json:"candidates"`
	// Cells is the full domain × rail evaluation grid.
	Cells []HybridCellDTO `json:"cells"`
	Stats HybridStatsDTO  `json:"stats"`
}

// HybridResponseFromResult converts a sweep result to wire form.
func HybridResponseFromResult(hash string, res *soc.SweepResult) *HybridResponse {
	out := &HybridResponse{
		RequestHash: hash,
		Floorplan:   res.Floorplan,
		Rails:       make([]string, 0, len(res.Rails)),
		Candidates:  make([]HybridCandidateDTO, 0, len(res.Candidates)),
		Cells:       make([]HybridCellDTO, 0, len(res.Cells)),
		Stats: HybridStatsDTO{
			Cells:              res.Stats.Cells,
			CellsInfeasible:    res.Stats.CellsInfeasible,
			Assignments:        res.Stats.Assignments,
			Ranked:             res.Stats.Ranked,
			RejectedInfeasible: res.Stats.RejectedInfeasible,
			RejectedArea:       res.Stats.RejectedArea,
			WallMS:             float64(res.Stats.Wall.Milliseconds()),
			AssignmentsPerSec:  res.Stats.AssignmentsPerSec,
		},
	}
	for _, r := range res.Rails {
		out.Rails = append(out.Rails, r.String())
	}
	for _, c := range res.Cells {
		out.Cells = append(out.Cells, HybridCellDTO{
			Domain:        c.Domain,
			Rail:          c.Rail.String(),
			Config:        c.Config,
			NoiseMVpp:     c.NoiseVpp * 1e3,
			DroopMV:       c.WorstDroop * 1e3,
			MarginMV:      c.MarginV * 1e3,
			AreaMM2:       c.AreaM2 * 1e6,
			EfficiencyPct: c.Efficiency * 100,
			Infeasible:    c.Infeasible,
		})
	}
	for i, c := range res.Candidates {
		out.Candidates = append(out.Candidates, HybridCandidateDTO{
			Rank:          i + 1,
			Assignment:    c.Key,
			EfficiencyPct: c.Efficiency * 100,
			AreaMM2:       c.AreaM2 * 1e6,
			WorstMarginMV: c.WorstMarginV * 1e3,
			PCoreW:        c.PCoreW,
			PSourceW:      c.PSourceW,
		})
	}
	if len(out.Candidates) > 0 {
		best := out.Candidates[0]
		out.Best = &best
	}
	return out
}

// Trimmed returns a shallow copy with the candidate list bounded to top
// (0 selects 10; negative keeps all retained). The cache stores the full
// response; each request trims its own view.
func (r *HybridResponse) Trimmed(top int) *HybridResponse {
	if top == 0 {
		top = 10
	}
	if top < 0 || top >= len(r.Candidates) {
		return r
	}
	out := *r
	out.Candidates = r.Candidates[:top]
	return &out
}
