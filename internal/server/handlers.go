package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ivory/internal/ivr"
)

// maxBodyBytes bounds request bodies; specs are a few hundred bytes.
const maxBodyBytes = 1 << 20

// Handler returns the ivoryd route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/explore", s.instrument("explore", s.handleExplore))
	mux.HandleFunc("POST /v1/explore/stream", s.instrument("explore_stream", s.handleExploreStream))
	mux.HandleFunc("POST /v1/transient", s.instrument("transient", s.handleTransient))
	mux.HandleFunc("POST /v1/hybrid", s.instrument("hybrid", s.handleHybrid))
	mux.HandleFunc("POST /v1/shard/explore", s.instrument("shard", s.handleShardExplore))
	mux.HandleFunc("GET /v1/cluster", s.instrument("cluster", s.handleCluster))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJob))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE events leave the process
// as they are produced instead of sitting in the buffer until the run ends.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the request counter and latency
// histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.requests.inc(endpointCode(endpoint, sw.code))
		s.metrics.latency.observe(endpointLabel(endpoint), time.Since(start).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response is already committed; an encode failure here means the
	// client went away, which the request counter has no use for.
	_ = enc.Encode(v)
}

// writeError renders the uniform error body. 429/503 responses carry a
// Retry-After hint derived from the observed queue drain rate
// (Server.retryAfterSeconds): average job wall time scaled by the work
// queued ahead, bounded to [1, 60] seconds.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	resp := ErrorResponse{Error: msg}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		retry := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		resp.RetryAfterS = retry
	}
	writeJSON(w, code, resp)
}

// decodeJSON strictly decodes the body into v: unknown fields are a 400,
// keeping the DTO schema load-bearing instead of advisory.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// submitError maps admission failures to HTTP.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		s.writeError(w, http.StatusTooManyRequests, "job queue full; retry shortly")
	case errors.Is(err, errDraining):
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
	default:
		s.writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// isCancel reports a context-shaped interruption.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// dispatch runs the shared post-validation flow of the two compute
// endpoints: admission (cache -> singleflight -> bounded queue), then
// either a 202 with an async job record or a synchronous wait on the
// flight. render writes the success body (val may carry a ranked partial
// alongside a cancel-shaped err); onError maps terminal failures.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, endpoint, hash string, async bool,
	timeout time.Duration, fn jobFunc, render func(w http.ResponseWriter, val any), onError func(w http.ResponseWriter, err error)) {
	fl, err := s.execute(endpoint, hash, timeout, fn)
	if err != nil {
		s.submitError(w, err)
		return
	}
	if async {
		rec := &jobRecord{id: newJobID(), kind: endpoint, hash: hash, status: JobRunning, created: time.Now()}
		s.jobs.add(rec)
		go func() {
			val, ferr := fl.wait()
			rec.complete(val, ferr)
		}()
		writeJSON(w, http.StatusAccepted, rec.snapshot())
		return
	}
	select {
	case <-fl.done:
	case <-r.Context().Done():
		s.writeError(w, http.StatusGatewayTimeout,
			"request abandoned while the computation runs; retry to pick up the cached result")
		return
	}
	val, ferr := fl.wait()
	if ferr != nil && val == nil {
		onError(w, ferr)
		return
	}
	// val != nil with a cancel-shaped ferr is a ranked partial (deadline or
	// drain): it ships as a 200 with cancelled=true and the error inline.
	render(w, val)
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	spec, err := req.Spec.ToSpec()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	norm, err := spec.Normalized()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := SpecHash(norm)
	engineWorkers := s.cfg.EngineWorkers
	fn := func(ctx context.Context) (any, error, bool) {
		sp := norm
		sp.Context = ctx
		sp.Workers = engineWorkers
		res, xerr := s.explore(sp)
		if xerr != nil {
			if res != nil && len(res.Candidates) > 0 && (isCancel(xerr) || errors.Is(xerr, ErrIncomplete)) {
				// Ranked partial (deadline/drain/lost shards): deliver,
				// don't cache.
				s.metrics.notePruned(res.Stats.PrunedBound, res.Stats.PrunedHalving)
				return ExploreResponseFromResult(res, xerr), xerr, false
			}
			return nil, xerr, false
		}
		s.metrics.notePruned(res.Stats.PrunedBound, res.Stats.PrunedHalving)
		return ExploreResponseFromResult(res, nil), nil, true
	}
	s.dispatch(w, r, "explore", hash, req.Async, s.timeoutFor(req.TimeoutMS), fn,
		func(w http.ResponseWriter, val any) {
			writeJSON(w, http.StatusOK, val.(*ExploreResponse).Trimmed(req.Top))
		},
		func(w http.ResponseWriter, err error) {
			var inf *ivr.InfeasibleError
			switch {
			case errors.As(err, &inf):
				// The space was swept and nothing fits the budget: a valid
				// question with an unwelcome answer, not a server fault.
				s.writeError(w, http.StatusUnprocessableEntity, err.Error())
			case errors.Is(err, context.DeadlineExceeded):
				s.writeError(w, http.StatusGatewayTimeout, "exploration exceeded its deadline before any candidate completed")
			case errors.Is(err, context.Canceled):
				s.writeError(w, http.StatusServiceUnavailable, "exploration cancelled (server draining)")
			default:
				s.writeError(w, http.StatusInternalServerError, err.Error())
			}
		})
}

func (s *Server) handleTransient(w http.ResponseWriter, r *http.Request) {
	var req TransientRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.TUS < 0 || req.DtNS < 0 {
		s.writeError(w, http.StatusBadRequest, "t_us and dt_ns must be >= 0")
		return
	}
	hash := req.Hash()
	opts := req.Options(s.cfg.EngineWorkers)
	fn := func(ctx context.Context) (any, error, bool) {
		res, terr := s.transient(ctx, opts)
		if terr != nil {
			return nil, terr, false
		}
		return TransientResponseFromResult(hash, res), nil, true
	}
	s.dispatch(w, r, "transient", hash, req.Async, s.timeoutFor(req.TimeoutMS), fn,
		func(w http.ResponseWriter, val any) {
			writeJSON(w, http.StatusOK, val)
		},
		func(w http.ResponseWriter, err error) {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				s.writeError(w, http.StatusGatewayTimeout, "transient sweep exceeded its deadline")
			case errors.Is(err, context.Canceled):
				s.writeError(w, http.StatusServiceUnavailable, "transient sweep cancelled (server draining)")
			default:
				// The engine validates inputs (benchmark names, IVR counts)
				// before simulating; those surface as client errors.
				s.writeError(w, http.StatusBadRequest, err.Error())
			}
		})
}

func (s *Server) handleHybrid(w http.ResponseWriter, r *http.Request) {
	var req HybridRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	spec, err := req.ToSpec()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := req.Hash()
	engineWorkers := s.cfg.EngineWorkers
	fn := func(ctx context.Context) (any, error, bool) {
		sp := spec
		sp.Context = ctx
		sp.Workers = engineWorkers
		// Retain the full rankable view once; every Top trims from it.
		sp.Top = hybridRetain
		res, herr := s.hybrid(sp)
		if herr != nil {
			return nil, herr, false
		}
		s.metrics.noteHybrid(res.Stats)
		return HybridResponseFromResult(hash, res), nil, true
	}
	s.dispatch(w, r, "hybrid", hash, req.Async, s.timeoutFor(req.TimeoutMS), fn,
		func(w http.ResponseWriter, val any) {
			writeJSON(w, http.StatusOK, val.(*HybridResponse).Trimmed(req.Top))
		},
		func(w http.ResponseWriter, err error) {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				s.writeError(w, http.StatusGatewayTimeout, "hybrid sweep exceeded its deadline")
			case errors.Is(err, context.Canceled):
				s.writeError(w, http.StatusServiceUnavailable, "hybrid sweep cancelled (server draining)")
			default:
				// The sweep validates its inputs (floorplan, rails, span)
				// before simulating; those surface as client errors.
				s.writeError(w, http.StatusBadRequest, err.Error())
			}
		})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	// 404 covers three cases with one answer: an id that never existed, a
	// finished record past the retention TTL, and a record evicted
	// finished-first under the JobHistory cap. Clients must treat job ids
	// as expiring handles, not durable names.
	rec, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job (records expire after the retention TTL and are evicted under the history cap)")
		return
	}
	writeJSON(w, http.StatusOK, rec.snapshot())
}

// healthBody is the /healthz response.
type healthBody struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthBody{Status: "ok", QueueDepth: s.pool.Depth(), Running: s.pool.Running()}
	code := http.StatusOK
	if s.draining.Load() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleCluster reports the replica's cluster role and, on a coordinator,
// per-worker health, shard latency quantiles, and retry counters.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := ClusterResponse{Role: s.cfg.Role}
	if s.cluster != nil {
		resp.Workers = s.cluster.snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.gauges())
}
