package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"ivory/internal/core"
)

// ssePacket is one parsed server-sent event.
type ssePacket struct {
	name string
	data []byte
}

// parseSSE splits a complete text/event-stream body into events. The
// server always writes "event:" then "data:" then a blank line, one JSON
// object per data line, so a stricter parser than the SSE spec suffices —
// and anything else in the body is a wire-format bug worth failing on.
func parseSSE(t *testing.T, body []byte) []ssePacket {
	t.Helper()
	var out []ssePacket
	var cur ssePacket
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" || cur.data != nil {
				if cur.name == "" || cur.data == nil {
					t.Fatalf("half-formed SSE event: name=%q data=%q", cur.name, cur.data)
				}
				out = append(out, cur)
				cur = ssePacket{}
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return out
}

// TestStreamMatchesSynchronousExplore is the streaming acceptance test,
// run against the real engine: an adaptive exploration streamed over SSE
// emits at least two strictly-improving best-so-far events and exactly one
// terminal result event, and that terminal body is identical to a later
// synchronous POST /v1/explore for the same spec — the stream published
// its result to the cache, so the follow-up is a pure hit.
func TestStreamMatchesSynchronousExplore(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, EngineWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2,"search":"adaptive"}}`
	resp, raw := postJSON(t, ts.URL+"/v1/explore/stream", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d (%s)", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	events := parseSSE(t, raw)
	if len(events) == 0 {
		t.Fatal("empty stream")
	}

	var bests, results int
	var terminal ssePacket
	for i, ev := range events {
		switch ev.name {
		case "best":
			bests++
			var be StreamBestEvent
			if err := json.Unmarshal(ev.data, &be); err != nil {
				t.Fatalf("best event %d: %v (%s)", i, err, ev.data)
			}
			if be.Candidate.Label == "" || be.Evaluated <= 0 {
				t.Errorf("best event %d lacks candidate/telemetry: %s", i, ev.data)
			}
		case "progress":
			var pe StreamProgressEvent
			if err := json.Unmarshal(ev.data, &pe); err != nil {
				t.Fatalf("progress event %d: %v (%s)", i, err, ev.data)
			}
			if pe.Done > pe.Jobs || pe.Jobs <= 0 {
				t.Errorf("progress event %d out of range: %s", i, ev.data)
			}
		case "result":
			results++
			terminal = ev
			if i != len(events)-1 {
				t.Errorf("result event at index %d, want last (%d)", i, len(events)-1)
			}
		case "error":
			t.Fatalf("stream errored: %s", ev.data)
		default:
			t.Fatalf("unknown event %q", ev.name)
		}
	}
	if bests < 2 {
		t.Errorf("stream emitted %d best events, want >= 2", bests)
	}
	if results != 1 {
		t.Fatalf("stream emitted %d result events, want exactly 1", results)
	}

	// The stream writes compact JSON and the sync handler indents, so
	// compare the decoded values, not the bytes. The terminal event carries
	// the full candidate list, so ask the sync endpoint for the untrimmed
	// view (top: -1) of the same spec.
	syncReq := strings.Replace(body, `{"spec":`, `{"top":-1,"spec":`, 1)
	resp, syncBody := postJSON(t, ts.URL+"/v1/explore", syncReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync follow-up: %d (%s)", resp.StatusCode, syncBody)
	}
	var fromStream, fromSync any
	if err := json.Unmarshal(terminal.data, &fromStream); err != nil {
		t.Fatalf("terminal data: %v (%s)", err, terminal.data)
	}
	if err := json.Unmarshal(syncBody, &fromSync); err != nil {
		t.Fatalf("sync body: %v (%s)", err, syncBody)
	}
	if !reflect.DeepEqual(fromStream, fromSync) {
		t.Errorf("stream terminal result differs from synchronous body\nstream: %s\nsync:   %s", terminal.data, syncBody)
	}
	if hits, _ := s.cache.Stats(); hits != 1 {
		t.Errorf("sync follow-up was not a cache hit (hits=%d)", hits)
	}

	// The adaptive run pruned candidates and the counter reached /metrics.
	_, metricsBody := getJSON(t, ts.URL+"/metrics")
	m := parseExposition(string(metricsBody))
	pruned := m[`ivoryd_candidates_pruned_total{strategy="bound"}`] + m[`ivoryd_candidates_pruned_total{strategy="halving"}`]
	if pruned <= 0 {
		t.Errorf("ivoryd_candidates_pruned_total not incremented after an adaptive stream")
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestStreamCacheHitIsTerminalOnly: a spec already in the result cache
// streams as a bare terminal result without re-running the engine.
func TestStreamCacheHitIsTerminalOnly(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, EngineWorkers: 1})
	var calls atomic.Int64
	s.explore = func(sp core.Spec) (*core.Result, error) {
		calls.Add(1)
		return fakeExploreResult(sp, 2), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts.URL+"/v1/explore", specBody(0.9)); resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: %d (%s)", resp.StatusCode, body)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/explore/stream", specBody(0.9))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d (%s)", resp.StatusCode, raw)
	}
	events := parseSSE(t, raw)
	if len(events) != 1 || events[0].name != "result" {
		t.Fatalf("cache-hit stream: got %d events in %q, want exactly one result", len(events), raw)
	}
	if calls.Load() != 1 {
		t.Errorf("cache-hit stream re-ran the engine (%d calls)", calls.Load())
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestStreamRejectsAsyncAndBadSpecs: stream admission validates like the
// synchronous endpoint and refuses the async flag outright.
func TestStreamRejectsAsyncAndBadSpecs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, EngineWorkers: 1})
	var calls atomic.Int64
	s.explore = func(sp core.Spec) (*core.Result, error) {
		calls.Add(1)
		return fakeExploreResult(sp, 1), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct{ name, body string }{
		{"async flag", `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"async":true}`},
		{"bad search", `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2,"search":"greedy"}}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/explore/stream", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, resp.StatusCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not an ErrorResponse", c.name, body)
		}
	}
	if calls.Load() != 0 {
		t.Errorf("rejected streams reached the engine %d times", calls.Load())
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
