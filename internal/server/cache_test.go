package server

import (
	"errors"
	"sync"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes oldest
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats = %d hits/%d misses, want 3/1", hits, misses)
	}
}

func TestLRUUpdateExistingKey(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("value not updated: %v", v)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	f1, leader1 := g.join("k")
	if !leader1 {
		t.Fatal("first join not leader")
	}
	f2, leader2 := g.join("k")
	if leader2 {
		t.Fatal("second join became leader")
	}
	if f1 != f2 {
		t.Fatal("joins returned distinct flights")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, err := f2.wait(); err != nil || v.(int) != 42 {
			t.Errorf("waiter got (%v, %v)", v, err)
		}
	}()
	g.finish("k", f1, 42, nil)
	wg.Wait()
	if g.Coalesced() != 1 {
		t.Fatalf("Coalesced = %d, want 1", g.Coalesced())
	}
	if g.Inflight() != 0 {
		t.Fatalf("Inflight = %d after finish, want 0", g.Inflight())
	}
	// The key is free again.
	if _, leader := g.join("k"); !leader {
		t.Fatal("key not released after finish")
	}
}

func TestFlightGroupAbort(t *testing.T) {
	g := newFlightGroup()
	f, _ := g.join("k")
	g.abort("k", f, ErrBusy)
	if _, err := f.wait(); !errors.Is(err, ErrBusy) {
		t.Fatalf("aborted flight resolved with %v", err)
	}
	if g.Inflight() != 0 {
		t.Fatal("aborted flight still tracked")
	}
}
