package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is a fixed-capacity LRU over completed responses, keyed by
// the canonical spec/request hash. Values are treated as immutable once
// stored: readers share the cached pointer and must copy before mutating
// (ExploreResponse.Trimmed does exactly that).
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses atomic.Int64
}

type cacheEntry struct {
	key string
	val any
}

// newResultCache builds a cache holding up to capacity entries;
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *resultCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) Put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the lifetime hit/miss counters.
func (c *resultCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// flight is one in-progress computation that concurrent identical requests
// share. done is closed exactly once, after val/err are set.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// wait blocks until the flight resolves.
func (f *flight) wait() (any, error) {
	<-f.done
	return f.val, f.err
}

// flightGroup is a minimal singleflight: the first request for a key
// creates the flight (and owns submitting the work), later requests join
// it. Unlike x/sync/singleflight, resolution is explicit — the owner calls
// finish from the worker goroutine when the job completes — so the
// computation survives the leader's HTTP request being abandoned.
type flightGroup struct {
	mu        sync.Mutex
	m         map[string]*flight
	coalesced atomic.Int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flight{}}
}

// join returns the flight for key, creating it when absent. leader reports
// whether this caller created it (and therefore must submit the work and
// eventually finish it, or abort it on submission failure).
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		g.coalesced.Add(1)
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish resolves the flight and removes it from the group so later
// requests start fresh (typically they will hit the cache instead).
func (g *flightGroup) finish(key string, f *flight, val any, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
}

// abort removes a flight whose work was never submitted (queue full) and
// resolves it with the error so any waiter that slipped in unblocks with
// the same outcome the leader saw.
func (g *flightGroup) abort(key string, f *flight, err error) {
	g.finish(key, f, nil, err)
}

// Coalesced returns how many requests joined an existing flight instead of
// starting their own computation.
func (g *flightGroup) Coalesced() int64 { return g.coalesced.Load() }

// Inflight returns the number of open flights.
func (g *flightGroup) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
