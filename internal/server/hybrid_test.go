package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ivory/internal/numeric"
	"ivory/internal/soc"
)

// fakeSweepResult builds a small deterministic hybrid result for the
// engine stub.
func fakeSweepResult() *soc.SweepResult {
	return &soc.SweepResult{
		Floorplan: "stub",
		Rails:     []soc.Rail{{Kind: soc.OffChipVRM}, {Kind: soc.CentralizedIVR}},
		T:         10e-6, Dt: 5e-9,
		Cells: []soc.Cell{
			{Domain: "a", Rail: soc.Rail{Kind: soc.OffChipVRM}, Config: "off-chip VRM",
				NoiseVpp: 0.02, WorstDroop: 0.01, MarginV: 0.01, Efficiency: 0.8,
				PCoreW: 10, PSourceW: 12.5},
			{Domain: "a", Rail: soc.Rail{Kind: soc.CentralizedIVR}, Config: "centralized IVR",
				Infeasible: "stub: no fit"},
		},
		Candidates: []soc.Candidate{{
			Rails: []soc.Rail{{Kind: soc.OffChipVRM}}, Key: "a=vrm",
			Efficiency: 0.8, PCoreW: 10, PSourceW: 12.5, WorstMarginV: 0.01,
		}},
		Stats: soc.SweepStats{
			Cells: 2, CellsInfeasible: 1, Assignments: 2,
			Ranked: 1, RejectedInfeasible: 1,
		},
	}
}

// TestHybridCacheAndCounter pins the /v1/hybrid serving contract: the
// sweep runs once per spec hash (an identical resubmission is a cache
// hit), the response carries the ranked body, and the examined-assignment
// counter appears in /metrics by outcome.
func TestHybridCacheAndCounter(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, EngineWorkers: 1})
	var calls atomic.Int64
	s.hybrid = func(spec soc.SweepSpec) (*soc.SweepResult, error) {
		calls.Add(1)
		return fakeSweepResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"area_budget_mm2":25,"rails":["ivr","vrm"]}`
	resp, b := postJSON(t, ts.URL+"/v1/hybrid", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, b)
	}
	var hr HybridResponse
	if err := json.Unmarshal(b, &hr); err != nil {
		t.Fatalf("bad body %q: %v", b, err)
	}
	if hr.Best == nil || hr.Best.Assignment != "a=vrm" || hr.Best.Rank != 1 {
		t.Fatalf("bad best: %+v", hr.Best)
	}
	if len(hr.Cells) != 2 || hr.Cells[1].Infeasible == "" {
		t.Fatalf("bad cells: %+v", hr.Cells)
	}
	if hr.RequestHash == "" {
		t.Fatal("response lacked request_hash")
	}

	// Identical sweep, rails in the other order: same hash, pure cache hit.
	resp2, b2 := postJSON(t, ts.URL+"/v1/hybrid", `{"area_budget_mm2":25,"rails":["vrm","ivr"]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d (%s)", resp2.StatusCode, b2)
	}
	var hr2 HybridResponse
	if err := json.Unmarshal(b2, &hr2); err != nil {
		t.Fatal(err)
	}
	if hr2.RequestHash != hr.RequestHash {
		t.Errorf("rail order changed the hash: %s vs %s", hr2.RequestHash, hr.RequestHash)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("sweep ran %d times, want 1 (cache hit on resubmit)", got)
	}

	// A different budget is a different computation.
	if _, _ = postJSON(t, ts.URL+"/v1/hybrid", `{"area_budget_mm2":30}`); calls.Load() != 2 {
		t.Errorf("budget change should miss the cache (calls=%d)", calls.Load())
	}

	_, mb := getJSON(t, ts.URL+"/metrics")
	vals := parseExposition(string(mb))
	if got := vals[`ivoryd_hybrid_candidates_total{outcome="ranked"}`]; !numeric.ApproxEqual(got, 2, 0) {
		t.Errorf("ranked counter = %g, want 2 (one per compute, none on cache hits)", got)
	}
	if got := vals[`ivoryd_hybrid_candidates_total{outcome="rejected_infeasible"}`]; !numeric.ApproxEqual(got, 2, 0) {
		t.Errorf("rejected_infeasible counter = %g, want 2", got)
	}
}

// TestHybridHashSemantics pins what is and is not identity: Top, timeouts
// and async are views onto one computation; floorplan and engine inputs
// are not.
func TestHybridHashSemantics(t *testing.T) {
	base := HybridRequest{AreaBudgetMM2: 25, Rails: []string{"vrm", "ivr4"}}
	same := HybridRequest{AreaBudgetMM2: 25, Rails: []string{"ivr4", "vrm"}, Top: 50, TimeoutMS: 1000, Async: true}
	if base.Hash() != same.Hash() {
		t.Error("Top/TimeoutMS/Async/rail-order must not change the hash")
	}
	for name, other := range map[string]HybridRequest{
		"budget": {AreaBudgetMM2: 26, Rails: []string{"vrm", "ivr4"}},
		"rails":  {AreaBudgetMM2: 25, Rails: []string{"vrm", "ivr2"}},
		"span":   {AreaBudgetMM2: 25, Rails: []string{"vrm", "ivr4"}, TUS: 5},
		"domains": {AreaBudgetMM2: 25, Rails: []string{"vrm", "ivr4"},
			Domains: []HybridDomainDTO{{Name: "a", Cores: 1, TDPPerCoreW: 4, VNominalV: 0.85,
				GridROhm: 3e-3, GridLH: 50e-12, Benchmark: "CFD"}}},
	} {
		if other.Hash() == base.Hash() {
			t.Errorf("%s change must change the hash", name)
		}
	}
}

func TestHybridAsync(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, EngineWorkers: 1})
	s.hybrid = func(spec soc.SweepSpec) (*soc.SweepResult, error) {
		return fakeSweepResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/hybrid", `{"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d (%s), want 202", resp.StatusCode, body)
	}
	var job JobStatus
	if err := json.Unmarshal(body, &job); err != nil || job.ID == "" {
		t.Fatalf("bad 202 body %q (%v)", body, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, pb := getJSON(t, ts.URL+"/v1/jobs/"+job.ID)
		var js JobStatus
		if err := json.Unmarshal(pb, &js); err != nil {
			t.Fatalf("poll: %v (%s)", err, pb)
		}
		if js.Status == JobDone {
			if js.Result == nil {
				t.Fatal("done job carried no result")
			}
			rb, err := json.Marshal(js.Result)
			if err != nil {
				t.Fatal(err)
			}
			var hr HybridResponse
			if err := json.Unmarshal(rb, &hr); err != nil || hr.Best == nil {
				t.Fatalf("bad job result %s (%v)", rb, err)
			}
			return
		}
		if js.Status == JobError {
			t.Fatalf("job failed: %s", js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", js.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHybridBadRequests(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, EngineWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for name, body := range map[string]string{
		"bad rail":        `{"rails":["buck"]}`,
		"negative span":   `{"t_us":-1}`,
		"unknown bench":   `{"domains":[{"name":"a","cores":1,"tdp_per_core_w":4,"vnominal_v":0.85,"grid_r_ohm":0.003,"grid_l_h":5e-11,"benchmark":"NOPE"}]}`,
		"nameless domain": `{"domains":[{"cores":1,"tdp_per_core_w":4,"vnominal_v":0.85,"benchmark":"CFD"}]}`,
		"unknown field":   `{"railz":["vrm"]}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/hybrid", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, b)
		}
	}
}

// TestHybridEndToEnd exercises the production seam (the real sweep) on a
// deliberately tiny one-domain floorplan.
func TestHybridEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, EngineWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{
		"domains":[{"name":"cpu","cores":2,"tdp_per_core_w":5,"vnominal_v":0.85,
		            "grid_r_ohm":0.0035,"grid_l_h":5e-11,"benchmark":"CFD"}],
		"rails":["vrm","ivr"],
		"t_us":2,"dt_ns":5
	}`
	resp, b := postJSON(t, ts.URL+"/v1/hybrid", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, b)
	}
	var hr HybridResponse
	if err := json.Unmarshal(b, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Cells) != 2 || hr.Best == nil || hr.Stats.Assignments != 2 {
		t.Fatalf("unexpected result: %s", b)
	}
}
