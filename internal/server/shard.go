package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"

	"ivory/internal/core"
	"ivory/internal/ivr"
)

// The shard wire protocol: a coordinator ships a canonical Spec plus a
// slice of its enumerated design space to a worker replica, and the worker
// returns the per-ref evaluation outcomes. Two addressing modes share one
// request shape:
//
//   - range mode (Refs empty): the slice is [Lo, Hi) of the worker's own
//     canonical enumeration. Total carries the coordinator's enumeration
//     length so version skew (replicas enumerating different spaces) is a
//     409, never a silent mis-merge. This is the exhaustive-Explore path.
//   - ref mode (Refs set): the slice is an explicit ConfigRef list chosen
//     by the coordinator's adaptive branch-and-bound state; Lo/Hi only
//     echo the coordinator's positional window.
//
// Candidate metrics travel as raw engine values (ivr.Metrics), not the
// unit-converted display DTOs: Go's float64 JSON round-trip is exact, so
// the coordinator's ranking, tie-breaking, and pruning decisions are
// bit-identical to a single-node run. Shards are all-or-nothing — a worker
// that cannot finish a slice returns an error status and the coordinator
// retries the whole slice elsewhere — so a merged result never mixes
// torn shard halves.

// ShardRequest is the body of POST /v1/shard/explore.
type ShardRequest struct {
	Spec     SpecDTO `json:"spec"`
	SpecHash string  `json:"spec_hash"`
	// AreaM2 is the coordinator's area budget at engine precision (m²).
	// SpecDTO's mm² unit does not round-trip exactly for every float64
	// (0.05 mm² drifts 1 ULP through ×1e-6, ×1e6, ×1e-6), and the
	// determinism contract needs coordinator and workers to hash and
	// evaluate identical bits; a nonzero value overrides the converted
	// Spec.AreaMM2.
	AreaM2 float64 `json:"area_m2,omitempty"`
	// Lo/Hi is the half-open slice of the canonical enumeration (range
	// mode) or the coordinator's positional window (ref mode).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Total is the coordinator's full enumeration length; nonzero values
	// are cross-checked against the worker's own enumeration.
	Total int `json:"total,omitempty"`
	// Refs switches to ref mode when non-empty.
	Refs []core.ConfigRef `json:"refs,omitempty"`
	// TimeoutMS caps the worker-side compute deadline (clamped under the
	// worker's own RequestTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ShardCandidateDTO is one accepted candidate at full engine precision.
type ShardCandidateDTO struct {
	Kind    int         `json:"kind"`
	Label   string      `json:"label"`
	Metrics ivr.Metrics `json:"metrics"`
}

// ShardOutcomeDTO is the outcome of one ref of the slice.
type ShardOutcomeDTO struct {
	Candidates []ShardCandidateDTO `json:"candidates,omitempty"`
	Rejected   int                 `json:"rejected,omitempty"`
}

// ShardResponse is the body of a completed shard evaluation. Outcomes
// aligns positionally with the requested slice.
type ShardResponse struct {
	SpecHash string            `json:"spec_hash"`
	Lo       int               `json:"lo"`
	Hi       int               `json:"hi"`
	Total    int               `json:"total"`
	Outcomes []ShardOutcomeDTO `json:"outcomes"`
}

func shardOutcomeDTO(o core.RefOutcome) ShardOutcomeDTO {
	d := ShardOutcomeDTO{Rejected: o.Rejected}
	for _, c := range o.Candidates {
		d.Candidates = append(d.Candidates, ShardCandidateDTO{Kind: int(c.Kind), Label: c.Label, Metrics: c.Metrics})
	}
	return d
}

// toRefOutcome reconstructs the engine outcome. The design pointers
// (Candidate.SC/Buck/LDO) do not cross the wire; ranking, pruning, and the
// response DTOs consume only Kind/Label/Metrics, so the merged result is
// still byte-identical on the wire.
func (d ShardOutcomeDTO) toRefOutcome() core.RefOutcome {
	out := core.RefOutcome{Rejected: d.Rejected}
	for _, c := range d.Candidates {
		out.Candidates = append(out.Candidates, core.Candidate{Kind: core.Kind(c.Kind), Label: c.Label, Metrics: c.Metrics})
	}
	return out
}

// refsHash distinguishes ref-mode singleflight keys that share a
// positional window but carry different ref sets.
func refsHash(refs []core.ConfigRef) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	for _, r := range refs {
		put(int(r.Kind))
		put(r.Topo)
		put(r.Cap)
		put(r.Axis)
		put(r.Pol)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// errShardSkew marks a fatal coordinator/worker disagreement (spec hash or
// enumeration length); retrying on another replica of the same build
// cannot help, so the coordinator fails the shard immediately.
var errShardSkew = errors.New("server: shard version skew")

// handleShardExplore serves one shard evaluation on a worker replica. The
// request passes the same admission path as full explorations — bounded
// queue with 429/Retry-After, singleflight per (hash, slice) — but its
// result is never cached: shard fragments must not shadow the full-result
// cache entry of the same spec hash, and the coordinator retries are
// cheaper than cache coherence across partial keys.
func (s *Server) handleShardExplore(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	spec, err := req.Spec.ToSpec()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.AreaM2 > 0 {
		spec.AreaMax = req.AreaM2
	}
	norm, err := spec.Normalized()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := SpecHash(norm)
	if req.SpecHash != "" && req.SpecHash != hash {
		s.writeError(w, http.StatusConflict,
			fmt.Sprintf("spec hash mismatch: coordinator sent %s, worker computed %s (version skew?)", req.SpecHash, hash))
		return
	}
	key := "shard:" + hash + ":" + strconv.Itoa(req.Lo) + "-" + strconv.Itoa(req.Hi)
	if len(req.Refs) > 0 {
		key += ":" + refsHash(req.Refs)
	}
	engineWorkers := s.cfg.EngineWorkers
	fn := func(ctx context.Context) (any, error, bool) {
		sp := norm
		sp.Context = ctx
		sp.Workers = engineWorkers
		var rr *core.RangeResult
		var xerr error
		if len(req.Refs) > 0 {
			rr, xerr = core.EvalRefs(sp, req.Refs)
		} else {
			rr, xerr = core.ExploreRange(sp, req.Lo, req.Hi)
		}
		// All-or-nothing: a cancelled or failed slice returns an error
		// status so the coordinator retries the whole slice; partial shard
		// outcomes never ship.
		if xerr != nil {
			return nil, xerr, false
		}
		if req.Total > 0 && rr.Total != req.Total {
			return nil, fmt.Errorf("%w: coordinator enumerated %d configurations, worker %d", errShardSkew, req.Total, rr.Total), false
		}
		resp := &ShardResponse{SpecHash: hash, Lo: req.Lo, Hi: req.Hi, Total: rr.Total}
		for _, o := range rr.Outcomes {
			resp.Outcomes = append(resp.Outcomes, shardOutcomeDTO(o))
		}
		return resp, nil, false
	}
	fl, err := s.execute("shard", key, s.timeoutFor(req.TimeoutMS), fn)
	if err != nil {
		s.submitError(w, err)
		return
	}
	select {
	case <-fl.done:
	case <-r.Context().Done():
		s.writeError(w, http.StatusGatewayTimeout, "shard request abandoned while the slice runs")
		return
	}
	val, ferr := fl.wait()
	if ferr != nil {
		switch {
		case errors.Is(ferr, errShardSkew):
			s.writeError(w, http.StatusConflict, ferr.Error())
		case isCancel(ferr):
			// Deadline or drain mid-slice: the coordinator should retry the
			// whole slice on another replica.
			s.writeError(w, http.StatusServiceUnavailable, "shard evaluation interrupted: "+ferr.Error())
		default:
			// Bad ranges and invalid refs surface here (the engine validates
			// before evaluating).
			s.writeError(w, http.StatusBadRequest, ferr.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, val)
}
