package core

import (
	"fmt"
	"strings"

	"ivory/internal/numeric"
)

// Stage1Model evaluates the first (off-chip / upstream) conversion stage:
// given its output voltage and the power it must deliver, it returns the
// stage's efficiency. The caller supplies it so that core stays free of
// board-level policy (the experiments package passes its VRM buck model).
type Stage1Model func(vOut, pOut float64) (float64, error)

// TwoStageRow is one intermediate-voltage candidate of a hierarchical
// power-delivery exploration.
type TwoStageRow struct {
	// VMid is the intermediate rail between the stages (V).
	VMid float64
	// Stage1Eff and Stage2Eff are the per-stage efficiencies; Combined is
	// their product.
	Stage1Eff, Stage2Eff, Combined float64
	// Stage2Label names the winning on-chip design at this VMid.
	Stage2Label string
	// Feasible marks rows where both stages close.
	Feasible bool
}

// TwoStageResult is the outcome of ExploreTwoStage.
type TwoStageResult struct {
	// Spec echoes the end-to-end requirement (VIn = source, VOut = load).
	Spec Spec
	// Rows holds every intermediate-voltage candidate.
	Rows []TwoStageRow
	// Best points at the highest combined efficiency row (nil when none).
	Best *TwoStageRow
	// SingleStage is the best direct (one-stage) IVR efficiency for the
	// same end-to-end conversion, for comparison; negative when
	// infeasible.
	SingleStage float64
	// SingleStageLabel names the direct design.
	SingleStageLabel string
}

// ExploreTwoStage explores the hierarchical composition the paper lists
// among its design-space dimensions: an upstream stage (modeled by stage1)
// produces an intermediate rail V_mid, and the on-chip design space is
// re-explored for each V_mid -> VOut conversion. Both the per-stage and
// combined efficiencies are reported alongside the best single-stage
// alternative.
func ExploreTwoStage(spec Spec, vmids []float64, stage1 Stage1Model) (*TwoStageResult, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	if stage1 == nil {
		return nil, fmt.Errorf("core: ExploreTwoStage needs a stage-1 model")
	}
	if len(vmids) == 0 {
		// Default grid between 1.15x VOut and the source.
		lo := spec.VOut * 1.15
		for v := lo; v < spec.VIn*0.95; v += (spec.VIn*0.95 - lo) / 6 {
			vmids = append(vmids, v)
		}
	}
	res := &TwoStageResult{Spec: spec, SingleStage: -1}
	// Single-stage reference.
	if direct, err := Explore(spec); err == nil {
		res.SingleStage = direct.Best.Metrics.Efficiency
		res.SingleStageLabel = direct.Best.Label
	}
	pLoad := spec.VOut * spec.IMax
	for _, vmid := range vmids {
		row := TwoStageRow{VMid: vmid}
		if vmid <= spec.VOut || vmid > spec.VIn {
			res.Rows = append(res.Rows, row)
			continue
		}
		sub := spec
		sub.VIn = vmid
		// The on-chip stage carries the same output requirement.
		r2, err := Explore(sub)
		if err != nil {
			// A cancelled run is a stop request, not an infeasible rail.
			if sub.Context != nil && sub.Context.Err() != nil {
				return nil, sub.Context.Err()
			}
			res.Rows = append(res.Rows, row)
			continue
		}
		row.Stage2Eff = r2.Best.Metrics.Efficiency
		row.Stage2Label = r2.Best.Label
		// Stage 1 must deliver the on-chip stage's input power at V_mid.
		p1 := pLoad / row.Stage2Eff
		e1, err := stage1(vmid, p1)
		if err != nil || e1 <= 0 {
			res.Rows = append(res.Rows, row)
			continue
		}
		row.Stage1Eff = e1
		row.Combined = e1 * row.Stage2Eff
		if numeric.Finite("combined efficiency", row.Combined) != nil {
			// A degenerate stage-2 efficiency poisons the ranking below;
			// record the rail as infeasible instead.
			res.Rows = append(res.Rows, TwoStageRow{VMid: vmid})
			continue
		}
		row.Feasible = true
		res.Rows = append(res.Rows, row)
		if res.Best == nil || row.Combined > res.Best.Combined {
			cp := row
			res.Best = &cp
		}
	}
	if res.Best == nil && res.SingleStage < 0 {
		return nil, fmt.Errorf("core: no feasible single- or two-stage design")
	}
	return res, nil
}

// Format renders the exploration as a table.
func (r *TwoStageResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Two-stage exploration %.2fV -> %.2fV @ %.1fA (%s)\n",
		r.Spec.VIn, r.Spec.VOut, r.Spec.IMax, r.Spec.NodeName)
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-10s %s\n", "Vmid(V)", "stage1(%)", "stage2(%)", "total(%)", "stage-2 design")
	for _, row := range r.Rows {
		if !row.Feasible {
			fmt.Fprintf(&b, "%-8.2f %-10s %-10s %-10s -\n", row.VMid, "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-8.2f %-10.1f %-10.1f %-10.1f %s\n",
			row.VMid, row.Stage1Eff*100, row.Stage2Eff*100, row.Combined*100, row.Stage2Label)
	}
	if r.SingleStage >= 0 {
		fmt.Fprintf(&b, "single-stage reference: %.1f%% (%s)\n", r.SingleStage*100, r.SingleStageLabel)
	}
	if r.Best != nil {
		fmt.Fprintf(&b, "best two-stage: Vmid %.2f V -> %.1f%%\n", r.Best.VMid, r.Best.Combined*100)
	}
	return b.String()
}
