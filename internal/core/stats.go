package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ivory/internal/grid"
	"ivory/internal/topology"
)

// numKinds mirrors the Kind enum (SC, Buck, LDO) for per-kind accounting.
const numKinds = 3

// KindStats counts one converter family's outcomes in an exploration run.
type KindStats struct {
	// Accepted is the number of feasible candidates the family produced.
	Accepted int
	// Rejected counts the family's configurations that failed sizing or
	// feasibility, including enumeration-time rejections (topology
	// analysis, device lookup) attributed before any job runs.
	Rejected int
}

// Evaluated is the total number of configurations the family visited.
func (k KindStats) Evaluated() int { return k.Accepted + k.Rejected }

// Stats is the telemetry record of one Explore run. A snapshot is passed
// to Spec.Progress after every completed evaluation job, and the final
// record lands on Result.Stats. The per-kind counters are deterministic —
// identical for every worker count and to the serial path — while the
// wall-clock and shared-cache fields are measurements, not invariants
// (the topology and grid counters are package-wide, so a concurrent run
// can bleed into the diff).
type Stats struct {
	// Jobs is the number of evaluation jobs the enumeration produced;
	// Done is how many have completed (== Jobs on an uncancelled run).
	Jobs, Done int
	// PerKind indexes KindStats by Kind (KindSC, KindBuck, KindLDO).
	PerKind [numKinds]KindStats
	// TopoCacheHits/Misses are the topology analyze-memo lookups this run
	// performed (hits return a shared Analysis, misses solved KVL/KCL).
	TopoCacheHits, TopoCacheMisses int64
	// GridCholesky/GridCG count grid solver contexts built during the run
	// on the banded direct path vs the conjugate-gradient fallback.
	GridCholesky, GridCG int64
	// PrunedBound counts configurations the adaptive search skipped
	// because their family's analytic efficiency ceiling could not beat
	// the established winners; PrunedHalving counts configurations skipped
	// by successive halving (dropped lattice cells and never-refined grid
	// points). Both are zero on an exhaustive run.
	PrunedBound, PrunedHalving int
	// FrontSize is the cardinality of the incrementally maintained
	// (efficiency, area) Pareto front over the accepted candidates.
	FrontSize int
	// Wall is the elapsed time of the evaluation phase.
	Wall time.Duration
	// CandidatesPerSec is Evaluated()/Wall — the paper's "sweeps are
	// cheap" claim as a number.
	CandidatesPerSec float64
	// Cancelled marks a run stopped by Spec.Context before completion;
	// the merged candidates then cover only the completed jobs.
	Cancelled bool
}

// ByKind returns the counters of one converter family.
func (s Stats) ByKind(k Kind) KindStats {
	if k < 0 || int(k) >= numKinds {
		return KindStats{}
	}
	return s.PerKind[k]
}

// Accepted is the total feasible-candidate count across families.
func (s Stats) Accepted() int {
	n := 0
	for _, k := range s.PerKind {
		n += k.Accepted
	}
	return n
}

// Rejected is the total rejection count across families.
func (s Stats) Rejected() int {
	n := 0
	for _, k := range s.PerKind {
		n += k.Rejected
	}
	return n
}

// Evaluated is the total number of configurations visited.
func (s Stats) Evaluated() int { return s.Accepted() + s.Rejected() }

// Pruned is the total number of configurations the adaptive search
// skipped without evaluating.
func (s Stats) Pruned() int { return s.PrunedBound + s.PrunedHalving }

// String renders the one-line run summary the CLIs print.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d jobs, %d evaluated (%d accepted, %d rejected",
		s.Done, s.Jobs, s.Evaluated(), s.Accepted(), s.Rejected())
	var parts []string
	for k := 0; k < numKinds; k++ {
		ks := s.PerKind[k]
		if ks.Evaluated() > 0 {
			parts = append(parts, fmt.Sprintf("%v %d/%d", Kind(k), ks.Accepted, ks.Evaluated()))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(&b, "; %s", strings.Join(parts, ", "))
	}
	if s.Pruned() > 0 {
		fmt.Fprintf(&b, "; %d pruned (%d bound, %d halving)",
			s.Pruned(), s.PrunedBound, s.PrunedHalving)
	}
	fmt.Fprintf(&b, "), topo cache %d hit/%d miss, grid %d chol/%d cg, %s",
		s.TopoCacheHits, s.TopoCacheMisses, s.GridCholesky, s.GridCG,
		s.Wall.Round(time.Millisecond))
	if s.CandidatesPerSec > 0 {
		fmt.Fprintf(&b, " (%.0f cand/s)", s.CandidatesPerSec)
	}
	if s.Cancelled {
		b.WriteString(" [cancelled]")
	}
	return b.String()
}

// tracker accumulates Stats during the evaluation fan-out and feeds the
// optional progress/improvement callbacks. Counter updates and callback
// invocations are serialized under one mutex, so Spec.Progress and
// Spec.OnImproved never run reentrantly even though completions arrive
// from many worker goroutines. The tracker also maintains the best-so-far
// candidate under the spec's objective and the incremental Pareto front
// over everything accepted.
type tracker struct {
	mu         sync.Mutex
	stats      Stats
	progress   func(Stats)
	onImproved func(Candidate, Stats)
	less       func(a, b Candidate) bool
	best       *Candidate
	front      *ParetoSet
	start      time.Time
	// Baselines for diffing the package-wide cache counters.
	topoHits0, topoMisses0 int64
	gridChol0, gridCG0     int64
}

func newTracker(spec Spec) *tracker {
	t := &tracker{
		progress:   spec.Progress,
		onImproved: spec.OnImproved,
		less:       rankLess(spec.Objective, spec.EfficiencyFloor),
		front:      NewParetoSet(),
		start:      time.Now(),
	}
	t.topoHits0, t.topoMisses0 = topology.CacheStats()
	t.gridChol0, t.gridCG0 = grid.SolverStats()
	return t
}

// snapshotLocked fills the measurement fields; t.mu must be held.
func (t *tracker) snapshotLocked() Stats {
	s := t.stats
	h, m := topology.CacheStats()
	s.TopoCacheHits, s.TopoCacheMisses = h-t.topoHits0, m-t.topoMisses0
	c, g := grid.SolverStats()
	s.GridCholesky, s.GridCG = c-t.gridChol0, g-t.gridCG0
	s.FrontSize = t.front.Size()
	s.Wall = time.Since(t.start)
	if secs := s.Wall.Seconds(); secs > 0 {
		s.CandidatesPerSec = float64(s.Evaluated()) / secs
	}
	return s
}

// addJobs grows the planned-job count. The exhaustive path calls it once;
// the adaptive path calls it at every stage boundary as the surviving
// lattice is expanded.
func (t *tracker) addJobs(n int) {
	t.mu.Lock()
	t.stats.Jobs += n
	t.mu.Unlock()
}

// enumRejected attributes enumeration-time rejections (topology analysis,
// device lookup) to a family before any job runs.
func (t *tracker) enumRejected(kind Kind, n int) {
	t.mu.Lock()
	t.stats.PerKind[kind].Rejected += n
	t.mu.Unlock()
}

// prunedBound / prunedHalving count configurations the adaptive search
// skipped without evaluating.
func (t *tracker) prunedBound(n int) {
	t.mu.Lock()
	t.stats.PrunedBound += n
	t.mu.Unlock()
}

func (t *tracker) prunedHalving(n int) {
	t.mu.Lock()
	t.stats.PrunedHalving += n
	t.mu.Unlock()
}

// jobDone records one completed evaluation unit's outcome, folds its
// candidates into the best-so-far and the Pareto front, and fires the
// callbacks.
func (t *tracker) jobDone(kind Kind, cands []Candidate, rejected int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Done++
	t.stats.PerKind[kind].Accepted += len(cands)
	t.stats.PerKind[kind].Rejected += rejected
	improved := false
	for i := range cands {
		c := cands[i]
		t.front.Insert(c)
		if t.best == nil || t.less(c, *t.best) {
			cc := c
			t.best = &cc
			improved = true
		}
	}
	if improved && t.onImproved != nil {
		t.onImproved(*t.best, t.snapshotLocked())
	}
	if t.progress != nil {
		t.progress(t.snapshotLocked())
	}
}

// finalize returns the completed record.
func (t *tracker) finalize(cancelled bool) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.snapshotLocked()
	s.Cancelled = cancelled
	return s
}
