package core

import (
	"fmt"
	"strings"
)

// DistributionTable is the paper's Table 2: for each converter family, the
// best design at each distribution count, with efficiency, static ripple,
// and switching frequency per count.
type DistributionTable struct {
	// Spec echoes the chip-level specification.
	Spec Spec
	// Counts are the distribution factors evaluated (e.g. 1, 2, 4).
	Counts []int
	// Rows holds one entry per converter family that produced feasible
	// designs.
	Rows []DistributionRow
}

// DistributionRow is one family's line in the table.
type DistributionRow struct {
	// Kind is the converter family; Label describes the winning design at
	// the first feasible count.
	Kind  Kind
	Label string
	// Efficiency, RippleVpp, FSw are indexed like Counts; NaN-free, with
	// Feasible marking valid entries.
	Efficiency []float64
	RippleVpp  []float64
	FSw        []float64
	Feasible   []bool
	// Candidates holds the winning candidate per count (zero value when
	// infeasible).
	Candidates []Candidate
}

// ExploreDistribution splits the chip-level spec across each distribution
// count (per-instance current and area divide by the count) and finds the
// best design of every family at every count.
//
//lint:ignore nonfinite divisions are by validated counts >= 1 on a spec already finiteness-checked by defaults()
func ExploreDistribution(spec Spec, counts []int) (*DistributionTable, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4}
	}
	for _, c := range counts {
		if c < 1 {
			return nil, fmt.Errorf("core: distribution count %d must be >= 1", c)
		}
	}
	table := &DistributionTable{Spec: spec, Counts: counts}
	rows := map[Kind]*DistributionRow{}
	order := []Kind{}
	for i, cnt := range counts {
		sub := spec
		sub.IMax = spec.IMax / float64(cnt)
		sub.AreaMax = spec.AreaMax / float64(cnt)
		res, err := Explore(sub)
		if err != nil {
			// A cancelled run is a stop request, not an infeasible count.
			if sub.Context != nil && sub.Context.Err() != nil {
				return nil, sub.Context.Err()
			}
			continue // a count can be wholly infeasible; others may work
		}
		for _, k := range []Kind{KindSC, KindBuck, KindLDO} {
			cand, ok := res.BestOfKind(k)
			if !ok {
				continue
			}
			row, exists := rows[k]
			if !exists {
				row = &DistributionRow{
					Kind:       k,
					Label:      cand.Label,
					Efficiency: make([]float64, len(counts)),
					RippleVpp:  make([]float64, len(counts)),
					FSw:        make([]float64, len(counts)),
					Feasible:   make([]bool, len(counts)),
					Candidates: make([]Candidate, len(counts)),
				}
				rows[k] = row
				order = append(order, k)
			}
			row.Efficiency[i] = cand.Metrics.Efficiency
			row.RippleVpp[i] = cand.Metrics.RippleVpp
			row.FSw[i] = cand.Metrics.FSw
			row.Feasible[i] = true
			row.Candidates[i] = cand
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("core: no feasible designs at any distribution count")
	}
	for _, k := range order {
		table.Rows = append(table.Rows, *rows[k])
	}
	return table, nil
}

// Format renders the table in the paper's Table 2 layout.
func (t *DistributionTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design space exploration summary (%gV -> %gV, %.3g A, %.3g mm2, node %s)\n",
		t.Spec.VIn, t.Spec.VOut, t.Spec.IMax, t.Spec.AreaMax*1e6, t.Spec.NodeName)
	counts := make([]string, len(t.Counts))
	for i, c := range t.Counts {
		counts[i] = fmt.Sprintf("%d", c)
	}
	fmt.Fprintf(&b, "%-28s distribute: %s\n", "Topology", strings.Join(counts, "/"))
	line := func(name string, vals []float64, feas []bool, format string, scale float64) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			if feas[i] {
				parts[i] = fmt.Sprintf(format, v*scale)
			} else {
				parts[i] = "-"
			}
		}
		fmt.Fprintf(&b, "  %-26s %s\n", name, strings.Join(parts, "/"))
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s (%s)\n", r.Kind, r.Label)
		line("efficiency (%)", r.Efficiency, r.Feasible, "%.1f", 100)
		line("ripple (mV)", r.RippleVpp, r.Feasible, "%.2f", 1e3)
		line("f_sw (MHz)", r.FSw, r.Feasible, "%.0f", 1e-6)
	}
	return b.String()
}

// CaseStudySpec returns the GPU case-study input of the paper's Table 1:
// 20 mm² area budget, 20 W across four SMs, 3.3 V board input, ~1 V output
// (0.85 V nominal + 0.15 V legacy guardband headroom at the converter).
func CaseStudySpec(nodeName string) Spec {
	return Spec{
		NodeName: nodeName,
		VIn:      3.3,
		VOut:     1.0,
		IMax:     20.0 / 0.85, // 20 W at the 0.85 V nominal core rail
		AreaMax:  20e-6,
	}
}
