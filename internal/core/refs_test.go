package core

import (
	"testing"

	"ivory/internal/tech"
)

// Seam tests for the ConfigRef enumeration and the range/ref evaluation
// entry points that cluster mode is built on: slices must tile the full
// sweep exactly, enumeration must be reproducible, and malformed inputs
// must be rejected before any evaluation runs.

// outcomeEqual compares two outcomes candidate-by-candidate on the wire
// fields (kind, label, metrics); design pointers are not compared because
// they do not cross the shard wire.
func outcomeEqual(a, b RefOutcome) bool {
	if a.Rejected != b.Rejected || len(a.Candidates) != len(b.Candidates) {
		return false
	}
	for i := range a.Candidates {
		x, y := a.Candidates[i], b.Candidates[i]
		if x.Kind != y.Kind || x.Label != y.Label || x.Metrics != y.Metrics {
			return false
		}
	}
	return true
}

func TestExploreRangeSlicesTileFullSweep(t *testing.T) {
	spec := smallSpec()
	full, err := ExploreRange(spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := full.Total
	if total == 0 {
		t.Fatal("empty enumeration")
	}
	whole, err := ExploreRange(spec, 0, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Outcomes) != total {
		t.Fatalf("whole-range outcomes %d != total %d", len(whole.Outcomes), total)
	}

	// Tile the space into three uneven slices and re-evaluate: positional
	// concatenation must reproduce the whole-range outcomes exactly.
	cuts := []int{0, total / 3, total / 2, total}
	var tiled []RefOutcome
	for i := 0; i+1 < len(cuts); i++ {
		rr, err := ExploreRange(spec, cuts[i], cuts[i+1])
		if err != nil {
			t.Fatalf("slice [%d,%d): %v", cuts[i], cuts[i+1], err)
		}
		if rr.Total != total {
			t.Fatalf("slice reports total %d, want %d", rr.Total, total)
		}
		tiled = append(tiled, rr.Outcomes...)
	}
	for i := range whole.Outcomes {
		if !outcomeEqual(whole.Outcomes[i], tiled[i]) {
			t.Fatalf("outcome %d differs between whole-range and tiled evaluation", i)
		}
	}
}

func TestExploreRangeMatchesExplore(t *testing.T) {
	spec := smallSpec()
	res, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ExploreRange(spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := ExploreRange(spec, 0, rr.Total)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	rejected := rr.PreRejected
	for _, o := range whole.Outcomes {
		n += len(o.Candidates)
		rejected += o.Rejected
	}
	if n != len(res.Candidates) {
		t.Errorf("range sweep found %d candidates, Explore found %d", n, len(res.Candidates))
	}
	if rejected != res.Rejected {
		t.Errorf("range sweep rejected %d, Explore rejected %d", rejected, res.Rejected)
	}
}

func TestEnumerationIsReproducible(t *testing.T) {
	spec := smallSpec()
	if err := spec.defaults(); err != nil {
		t.Fatal(err)
	}
	node, err := tech.Lookup(spec.NodeName)
	if err != nil {
		t.Fatal(err)
	}
	a, preA := newEvalContext(spec, node).enumerate()
	b, preB := newEvalContext(spec, node).enumerate()
	if len(a) != len(b) || preA != preB {
		t.Fatalf("enumeration not reproducible: %d/%v vs %d/%v", len(a), preA, len(b), preB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs across enumerations: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestExploreRangeBounds(t *testing.T) {
	spec := smallSpec()
	rr, err := ExploreRange(spec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int{{-1, 0}, {5, 2}, {0, rr.Total + 1}} {
		if _, err := ExploreRange(spec, c[0], c[1]); err == nil {
			t.Errorf("range [%d,%d) must be rejected", c[0], c[1])
		}
	}
}

func TestEvalRefsValidation(t *testing.T) {
	spec := smallSpec()
	bad := []ConfigRef{
		{Kind: Kind(99)},
		{Kind: KindSC, Topo: 9999},
		{Kind: KindSC, Pol: 7},
		{Kind: KindBuck, Axis: 9999},
		{Kind: KindLDO, Axis: -1},
	}
	for i, ref := range bad {
		if _, err := EvalRefs(spec, []ConfigRef{ref}); err == nil {
			t.Errorf("ref %d (%+v) must be rejected", i, ref)
		}
	}
}

func TestEvalRefsMatchesRangeSlice(t *testing.T) {
	spec := smallSpec()
	if err := spec.defaults(); err != nil {
		t.Fatal(err)
	}
	node, err := tech.Lookup(spec.NodeName)
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := newEvalContext(spec, node).enumerate()
	lo, hi := len(refs)/4, len(refs)/2
	byRange, err := ExploreRange(spec, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	byRefs, err := EvalRefs(spec, refs[lo:hi])
	if err != nil {
		t.Fatal(err)
	}
	if len(byRange.Outcomes) != len(byRefs.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(byRange.Outcomes), len(byRefs.Outcomes))
	}
	for i := range byRange.Outcomes {
		if !outcomeEqual(byRange.Outcomes[i], byRefs.Outcomes[i]) {
			t.Fatalf("outcome %d differs between range and ref evaluation", i)
		}
	}
}
