package core

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Deterministic ranking and Pareto-front maintenance. Candidate labels are
// not unique (the two SC conductance-allocation policies of one cell share
// a label, as can two capacitor shares that land on the same interleave
// count), so every tie-break in the package goes through candidateKey — a
// canonical, total identity — rather than input order or map iteration.

// fmtG renders a float at shortest-round-trip precision, the same
// formatting the spec hash uses.
func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// candidateKey is the canonical identity of an evaluated design point:
// family, configuration label, and the full-precision metric tuple. Two
// candidates with equal keys are interchangeable for ranking purposes.
func candidateKey(c Candidate) string {
	m := c.Metrics
	return strings.Join([]string{
		strconv.Itoa(int(c.Kind)), c.Label,
		fmtG(m.Efficiency), fmtG(m.AreaDie), fmtG(m.RippleVpp), fmtG(m.FSw), fmtG(m.POut),
	}, "|")
}

// finiteMetrics reports whether the metrics that drive ranking and
// dominance are all finite. Infeasible evaluations can surface NaN rows;
// those must never win a comparison (NaN compares false both ways, which
// under a naive sort leaves them wherever the input order put them).
func finiteMetrics(c Candidate) bool {
	for _, v := range []float64{c.Metrics.Efficiency, c.Metrics.AreaDie, c.Metrics.RippleVpp} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// objectiveLess is the raw objective comparison used by rank, the
// best-so-far tracker, and the adaptive search. It is a strict partial
// order: ties (and NaN pairs) compare false both ways.
func objectiveLess(obj Objective, floor float64) func(a, b Candidate) bool {
	switch obj {
	case MinArea:
		return func(a, b Candidate) bool {
			aOK, bOK := a.Metrics.Efficiency >= floor, b.Metrics.Efficiency >= floor
			if aOK != bOK {
				return aOK
			}
			return a.Metrics.AreaDie < b.Metrics.AreaDie
		}
	case MinNoise:
		return func(a, b Candidate) bool {
			aOK, bOK := a.Metrics.Efficiency >= floor, b.Metrics.Efficiency >= floor
			if aOK != bOK {
				return aOK
			}
			return a.Metrics.RippleVpp < b.Metrics.RippleVpp
		}
	default:
		return func(a, b Candidate) bool {
			return a.Metrics.Efficiency > b.Metrics.Efficiency
		}
	}
}

// rankLess extends objectiveLess to a total order: finite rows first, then
// the objective, then the canonical key. Sorting with it is deterministic
// under any input permutation.
func rankLess(obj Objective, floor float64) func(a, b Candidate) bool {
	less := objectiveLess(obj, floor)
	return func(a, b Candidate) bool {
		if af, bf := finiteMetrics(a), finiteMetrics(b); af != bf {
			return af
		}
		if less(a, b) {
			return true
		}
		if less(b, a) {
			return false
		}
		return candidateKey(a) < candidateKey(b)
	}
}

// ParetoSet maintains the set of mutually non-dominated candidates
// incrementally: each Insert is O(front size), so a running exploration
// can keep the trade-off curve current without the O(n²) recompute over
// the full candidate list. Dominance requires strictly-better in at least
// one objective, so exact metric duplicates coexist on the front (matching
// the batch ParetoFront semantics). Candidates with non-finite metrics are
// rejected at insertion.
type ParetoSet struct {
	noise bool // include ripple as a third objective
	items []Candidate
}

// NewParetoSet builds the two-objective set: efficiency up, area down.
func NewParetoSet() *ParetoSet { return &ParetoSet{} }

// NewParetoSetNoise builds the three-objective set: efficiency up, area
// down, static ripple down.
func NewParetoSetNoise() *ParetoSet { return &ParetoSet{noise: true} }

// dominates reports whether a beats-or-ties c in every objective and
// strictly beats it in at least one.
func (p *ParetoSet) dominates(a, c Candidate) bool {
	am, cm := a.Metrics, c.Metrics
	if am.Efficiency < cm.Efficiency || am.AreaDie > cm.AreaDie {
		return false
	}
	strict := am.Efficiency > cm.Efficiency || am.AreaDie < cm.AreaDie
	if p.noise {
		if am.RippleVpp > cm.RippleVpp {
			return false
		}
		strict = strict || am.RippleVpp < cm.RippleVpp
	}
	return strict
}

// Insert adds c if no current member dominates it, evicting members c
// dominates. It reports whether c joined the front.
func (p *ParetoSet) Insert(c Candidate) bool {
	if !finiteMetrics(c) {
		return false
	}
	// Check domination before filtering: the filter compacts p.items in
	// place, so it must only run once c is known to join.
	for _, d := range p.items {
		if p.dominates(d, c) {
			return false
		}
	}
	keep := p.items[:0]
	for _, d := range p.items {
		if !p.dominates(c, d) {
			keep = append(keep, d)
		}
	}
	p.items = append(keep, c)
	return true
}

// Size returns the current front cardinality.
func (p *ParetoSet) Size() int { return len(p.items) }

// Front returns the members sorted by area, ties broken by the canonical
// candidate key — a deterministic order for any insertion sequence.
func (p *ParetoSet) Front() []Candidate {
	out := append([]Candidate(nil), p.items...)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Metrics.AreaDie, out[j].Metrics.AreaDie
		if ai < aj {
			return true
		}
		if ai > aj {
			return false
		}
		return candidateKey(out[i]) < candidateKey(out[j])
	})
	return out
}
