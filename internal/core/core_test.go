package core

import (
	"math"
	"strings"
	"testing"
)

func smallSpec() Spec {
	return Spec{
		NodeName: "45nm",
		VIn:      3.3,
		VOut:     1.0,
		IMax:     6.0,
		AreaMax:  6e-6,
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.NodeName = "" },
		func(s *Spec) { s.VIn = 0 },
		func(s *Spec) { s.VOut = 4.0 }, // above VIn
		func(s *Spec) { s.IMax = 0 },
		func(s *Spec) { s.AreaMax = 0 },
	}
	for i, mut := range cases {
		sp := smallSpec()
		mut(&sp)
		if _, err := Explore(sp); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := Explore(Spec{NodeName: "nope", VIn: 2, VOut: 1, IMax: 1, AreaMax: 1e-6}); err == nil {
		t.Error("unknown node must fail")
	}
	// Failure injection: NaN and Inf inputs must be rejected up front, not
	// waved through positivity checks (NaN compares false to everything).
	nan := math.NaN()
	for i, mut := range []func(*Spec){
		func(s *Spec) { s.VIn = nan },
		func(s *Spec) { s.VOut = nan },
		func(s *Spec) { s.IMax = nan },
		func(s *Spec) { s.AreaMax = math.Inf(1) },
		func(s *Spec) { s.RippleMax = nan },
	} {
		sp := smallSpec()
		mut(&sp)
		if _, err := Explore(sp); err == nil {
			t.Errorf("NaN/Inf case %d must fail", i)
		}
	}
}

func TestExploreFindsAllFamilies(t *testing.T) {
	res, err := Explore(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, k := range []Kind{KindSC, KindBuck, KindLDO} {
		if _, ok := res.BestOfKind(k); !ok {
			t.Errorf("no feasible %v design", k)
		}
	}
	// Ranked best-first under MaxEfficiency.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Metrics.Efficiency > res.Candidates[i-1].Metrics.Efficiency+1e-12 {
			t.Fatal("candidates not ranked by efficiency")
		}
	}
	// Every candidate respects the area budget.
	for _, c := range res.Candidates {
		if c.Metrics.AreaDie > res.Spec.AreaMax {
			t.Errorf("%s exceeds area budget: %v", c.Label, c.Metrics.AreaDie)
		}
	}
}

// The paper's Table 2 ordering: SC beats buck beats LDO for the GPU spec.
func TestCaseStudyOrdering(t *testing.T) {
	res, err := Explore(CaseStudySpec("45nm"))
	if err != nil {
		t.Fatal(err)
	}
	scBest, ok1 := res.BestOfKind(KindSC)
	buckBest, ok2 := res.BestOfKind(KindBuck)
	ldoBest, ok3 := res.BestOfKind(KindLDO)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing families in the case study")
	}
	if !(scBest.Metrics.Efficiency > buckBest.Metrics.Efficiency &&
		buckBest.Metrics.Efficiency > ldoBest.Metrics.Efficiency) {
		t.Errorf("ordering violated: SC %.3f, buck %.3f, LDO %.3f",
			scBest.Metrics.Efficiency, buckBest.Metrics.Efficiency, ldoBest.Metrics.Efficiency)
	}
	// LDO efficiency pinned near VOut/VIn * etaI ~ 30%.
	if ldoBest.Metrics.Efficiency < 0.25 || ldoBest.Metrics.Efficiency > 0.32 {
		t.Errorf("LDO efficiency %v off the ratio line", ldoBest.Metrics.Efficiency)
	}
	// SC lands in the band around the paper's 80%.
	if scBest.Metrics.Efficiency < 0.60 || scBest.Metrics.Efficiency > 0.92 {
		t.Errorf("SC efficiency %v outside the expected band", scBest.Metrics.Efficiency)
	}
}

func TestObjectives(t *testing.T) {
	spMinArea := smallSpec()
	spMinArea.Objective = MinArea
	ra, err := Explore(spMinArea)
	if err != nil {
		t.Fatal(err)
	}
	spMaxEff := smallSpec()
	re, err := Explore(spMaxEff)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Best.Metrics.AreaDie > re.Best.Metrics.AreaDie {
		t.Errorf("MinArea best (%v m2) larger than MaxEfficiency best (%v m2)",
			ra.Best.Metrics.AreaDie, re.Best.Metrics.AreaDie)
	}
	spNoise := smallSpec()
	spNoise.Objective = MinNoise
	rn, err := Explore(spNoise)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Best.Metrics.RippleVpp > re.Best.Metrics.RippleVpp {
		t.Errorf("MinNoise best ripple %v above MaxEfficiency best %v",
			rn.Best.Metrics.RippleVpp, re.Best.Metrics.RippleVpp)
	}
}

func TestKindsRestriction(t *testing.T) {
	sp := smallSpec()
	sp.Kinds = []Kind{KindLDO}
	res, err := Explore(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Kind != KindLDO {
			t.Fatalf("unexpected %v candidate with LDO-only restriction", c.Kind)
		}
	}
}

func TestRippleTargetHonored(t *testing.T) {
	sp := smallSpec()
	sp.RippleMax = 2e-3
	res, err := Explore(sp)
	if err != nil {
		t.Fatal(err)
	}
	// The best SC candidate should interleave to approach the target.
	c, ok := res.BestOfKind(KindSC)
	if !ok {
		t.Skip("no SC candidate")
	}
	if c.Metrics.RippleVpp > 5*sp.RippleMax {
		t.Errorf("SC ripple %v far above target %v", c.Metrics.RippleVpp, sp.RippleMax)
	}
}

func TestExploreDistributionTable(t *testing.T) {
	tbl, err := ExploreDistribution(CaseStudySpec("45nm"), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("expected multiple families, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row.Efficiency) != 3 {
			t.Fatalf("row %v has %d entries", row.Kind, len(row.Efficiency))
		}
		// Efficiency roughly constant across distribution (proportional
		// split of load and area).
		var vals []float64
		for i, ok := range row.Feasible {
			if ok {
				vals = append(vals, row.Efficiency[i])
			}
		}
		if len(vals) >= 2 {
			for _, v := range vals[1:] {
				if diff := v - vals[0]; diff > 0.08 || diff < -0.08 {
					t.Errorf("%v: efficiency varies too much across distribution: %v", row.Kind, row.Efficiency)
				}
			}
		}
	}
	out := tbl.Format()
	for _, want := range []string{"efficiency (%)", "ripple (mV)", "f_sw (MHz)", "distribute: 1/2/4"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	if _, err := ExploreDistribution(CaseStudySpec("45nm"), []int{0}); err == nil {
		t.Error("zero count must fail")
	}
}

func TestEnumStrings(t *testing.T) {
	if MaxEfficiency.String() != "max-efficiency" || MinArea.String() != "min-area" || MinNoise.String() != "min-noise" {
		t.Error("Objective strings")
	}
	if KindSC.String() != "SC" || KindBuck.String() != "buck" || KindLDO.String() != "LDO" {
		t.Error("Kind strings")
	}
	if Objective(9).String() == "" || Kind(9).String() == "" {
		t.Error("unknown enums")
	}
}
