package core

import (
	"context"
	"fmt"
	"math"

	"ivory/internal/parallel"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

// Distributed evaluation plumbing. The design space of a spec is addressed
// by ConfigRefs — small, serializable coordinates into the canonical
// enumeration lattices (scCapShares, buckFreqs, ldoSampleFreqs) — so the
// expensive sizing/evaluation step can run anywhere: on the local worker
// pool (the classic path), or on remote ivoryd replicas that receive a
// spec plus a ref range over HTTP and return the outcomes (see
// internal/server's cluster mode).
//
// Determinism is the contract that makes this safe: enumeration order is a
// pure function of the normalized spec, every ref evaluates to the same
// candidates on any machine running the same build, and results are merged
// positionally — so a clustered run is bit-identical to a single-node one.

// PolBoth marks an SC ref that evaluates both conductance-allocation
// policies in one unit — the exhaustive sweep's job granularity. The
// adaptive search addresses policies individually with PolCostAware /
// PolUniform.
const (
	PolBoth      = -1
	PolCostAware = 0
	PolUniform   = 1
)

// ConfigRef addresses one evaluation unit of a spec's design space. The
// integer fields index the canonical per-kind axes:
//
//	KindSC:   Topo = scRatios(spec) index, Cap = scCapKinds index,
//	          Axis = scCapShares index, Pol = PolBoth|PolCostAware|PolUniform
//	KindBuck: Topo = phase-plan index (minPhases, minPhases*2 after the
//	          1..64 filter), Axis = buckFreqs index
//	KindLDO:  Axis = ldoSampleFreqs index
//
// A ref is only meaningful against the normalized spec it was enumerated
// from; the serving layer guards this with the canonical spec hash.
type ConfigRef struct {
	Kind Kind `json:"kind"`
	Topo int  `json:"topo,omitempty"`
	Cap  int  `json:"cap,omitempty"`
	Axis int  `json:"axis,omitempty"`
	Pol  int  `json:"pol,omitempty"`
}

// RefOutcome is the evaluation outcome of one ConfigRef: the accepted
// candidates (possibly several — an SC PolBoth unit sizes two policies)
// and the count of configurations rejected during sizing/feasibility.
type RefOutcome struct {
	Candidates []Candidate
	Rejected   int
}

// Evaluator evaluates one deterministic batch of refs and returns the
// outcomes positionally aligned with refs. Implementations must be
// content-deterministic — outcome i depends only on refs[i] and the spec,
// never on scheduling — and should call done(i) as each ref completes so
// run telemetry (Spec.Progress / Spec.OnImproved) stays live; done is safe
// for concurrent invocation. On cancellation or partial failure the
// evaluator returns the outcomes it has (unfinished slots zero-valued)
// together with the error; the engine merges the completed prefix exactly
// like a cancelled local run.
type Evaluator func(ctx context.Context, refs []ConfigRef, done func(i int, out *RefOutcome)) ([]RefOutcome, error)

// evalContext resolves the cheap shared context of a spec's design space —
// topology analyses, device options, phase plans — once, so refs can be
// enumerated and evaluated without re-deriving it per configuration.
type evalContext struct {
	spec   Spec
	node   *tech.Node
	usable float64 // SC area after the controller/routing reserve

	// SC axes (resolved only when KindSC is explored).
	topos   []*topology.Analysis // scRatios order; nil = analysis failed (pre-rejected)
	capOpts []tech.CapacitorOption
	capOK   []bool

	// Buck axes.
	indOK      bool
	ind        tech.InductorOption
	outCapKind tech.CapacitorKind
	phasePlans []int
}

// newEvalContext builds the shared context for an already-defaulted spec.
func newEvalContext(spec Spec, node *tech.Node) *evalContext {
	ec := &evalContext{spec: spec, node: node, usable: 0.80 * spec.AreaMax}
	for _, k := range spec.Kinds {
		switch k {
		case KindSC:
			for _, top := range scRatios(spec) {
				an, err := top.Analyze()
				if err != nil {
					ec.topos = append(ec.topos, nil)
					continue
				}
				ec.topos = append(ec.topos, an)
			}
			ec.capOpts = make([]tech.CapacitorOption, len(scCapKinds))
			ec.capOK = make([]bool, len(scCapKinds))
			for i, kind := range scCapKinds {
				opt, err := node.Capacitor(kind)
				if err != nil {
					continue
				}
				ec.capOpts[i], ec.capOK[i] = opt, true
			}
		case KindBuck:
			ind, err := node.Inductor(tech.IntegratedThinFilm)
			if err != nil {
				continue
			}
			ec.indOK, ec.ind = true, ind
			ec.outCapKind = tech.DeepTrench
			if _, err := node.Capacitor(ec.outCapKind); err != nil {
				ec.outCapKind = tech.MOSCap
			}
			minPhases := int(math.Ceil(spec.IMax / (ind.IMax * 0.8)))
			for _, phases := range []int{minPhases, minPhases * 2} {
				if phases >= 1 && phases <= 64 {
					ec.phasePlans = append(ec.phasePlans, phases)
				}
			}
		}
	}
	return ec
}

// enumerate expands the full exhaustive job list in canonical order —
// spec.Kinds order, then the nested per-kind axes exactly as the serial
// loops of the original Explore walked them — and returns the
// enumeration-time rejection counts (failed topology analyses, missing
// devices) per kind. The ref list is a pure function of the normalized
// spec: every replica of the same build enumerates the identical list.
func (ec *evalContext) enumerate() (refs []ConfigRef, pre [numKinds]int) {
	for _, k := range ec.spec.Kinds {
		switch k {
		case KindSC:
			for ti, an := range ec.topos {
				if an == nil {
					pre[KindSC]++
					continue
				}
				for ci := range scCapKinds {
					if !ec.capOK[ci] {
						continue
					}
					for ai := range scCapShares {
						refs = append(refs, ConfigRef{Kind: KindSC, Topo: ti, Cap: ci, Axis: ai, Pol: PolBoth})
					}
				}
			}
		case KindBuck:
			if !ec.indOK {
				pre[KindBuck]++
				continue
			}
			for pi := range ec.phasePlans {
				for fi, fsw := range buckFreqs {
					if fsw > ec.spec.FSwMax {
						continue
					}
					refs = append(refs, ConfigRef{Kind: KindBuck, Topo: pi, Axis: fi})
				}
			}
		case KindLDO:
			for fi, fs := range ldoSampleFreqs {
				if fs > ec.spec.FSwMax {
					continue
				}
				refs = append(refs, ConfigRef{Kind: KindLDO, Axis: fi})
			}
		}
	}
	return refs, pre
}

// validate bounds-checks a ref against the resolved axes; the serving
// layer calls it on wire-decoded refs before evaluation.
func (ec *evalContext) validate(ref ConfigRef) error {
	switch ref.Kind {
	case KindSC:
		if ref.Topo < 0 || ref.Topo >= len(ec.topos) || ec.topos[ref.Topo] == nil {
			return fmt.Errorf("core: SC ref topology %d out of range", ref.Topo)
		}
		if ref.Cap < 0 || ref.Cap >= len(scCapKinds) || !ec.capOK[ref.Cap] {
			return fmt.Errorf("core: SC ref capacitor kind %d unavailable", ref.Cap)
		}
		if ref.Axis < 0 || ref.Axis >= len(scCapShares) {
			return fmt.Errorf("core: SC ref share index %d out of range", ref.Axis)
		}
		if ref.Pol < PolBoth || ref.Pol > PolUniform {
			return fmt.Errorf("core: SC ref policy %d out of range", ref.Pol)
		}
	case KindBuck:
		if !ec.indOK || ref.Topo < 0 || ref.Topo >= len(ec.phasePlans) {
			return fmt.Errorf("core: buck ref phase plan %d out of range", ref.Topo)
		}
		if ref.Axis < 0 || ref.Axis >= len(buckFreqs) {
			return fmt.Errorf("core: buck ref frequency index %d out of range", ref.Axis)
		}
	case KindLDO:
		if ref.Axis < 0 || ref.Axis >= len(ldoSampleFreqs) {
			return fmt.Errorf("core: LDO ref frequency index %d out of range", ref.Axis)
		}
	default:
		return fmt.Errorf("core: ref has unknown kind %d", int(ref.Kind))
	}
	return nil
}

// eval sizes and evaluates one ref into the shard. The ref must have been
// produced by enumerate or passed validate.
func (ec *evalContext) eval(ref ConfigRef, out *shard) {
	switch ref.Kind {
	case KindSC:
		an := ec.topos[ref.Topo]
		capKind, capOpt := scCapKinds[ref.Cap], ec.capOpts[ref.Cap]
		share := scCapShares[ref.Axis]
		if ref.Pol == PolBoth {
			evalSC(out, ec.spec, ec.node, an, capKind, capOpt, share, ec.usable)
			return
		}
		evalSCPolicy(out, ec.spec, ec.node, an, capKind, capOpt, share, ec.usable, ref.Pol == PolUniform)
	case KindBuck:
		evalBuck(out, ec.spec, ec.node, ec.ind, ec.outCapKind, ec.phasePlans[ref.Topo], buckFreqs[ref.Axis])
	case KindLDO:
		evalLDO(out, ec.spec, ec.node, ldoSampleFreqs[ref.Axis])
	}
}

// localEvaluator runs batches on the in-process worker pool — the classic
// execution path, now expressed through the same seam cluster dispatch
// uses. Scheduling is parallel.ForContext's, so outcomes land in per-index
// slots and the merge stays bit-identical to serial for any worker count.
func (ec *evalContext) localEvaluator(workers int) Evaluator {
	return func(ctx context.Context, refs []ConfigRef, done func(int, *RefOutcome)) ([]RefOutcome, error) {
		outs := make([]RefOutcome, len(refs))
		err := parallel.ForContext(ctx, len(refs), workers, func(i int) {
			var sh shard
			ec.eval(refs[i], &sh)
			outs[i] = RefOutcome{Candidates: sh.candidates, Rejected: sh.rejected}
			done(i, &outs[i])
		})
		return outs, err
	}
}

// RangeResult is the outcome of evaluating one slice of a spec's design
// space — the shard unit of cluster mode.
type RangeResult struct {
	// Outcomes aligns positionally with the evaluated refs.
	Outcomes []RefOutcome
	// Total is the full canonical enumeration length for the spec. A
	// coordinator compares it against its own count to detect version skew
	// before trusting the outcomes.
	Total int
	// PreRejected counts enumeration-time rejections for the whole spec
	// (not the slice). Coordinators count these exactly once from their
	// own enumeration; the field is informational on the worker side.
	PreRejected int
	// Stats carries the slice's evaluation telemetry (per-kind counts,
	// wall time). Enumeration-time rejections are excluded.
	Stats Stats
}

// ExploreRange evaluates the half-open slice [lo, hi) of the spec's
// canonical enumeration on the local pool — the entry point an ivoryd
// worker replica serves. Run control matches Explore: Spec.Context cancels
// mid-slice and the error is returned with whatever outcomes completed.
func ExploreRange(spec Spec, lo, hi int) (*RangeResult, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	node, err := tech.Lookup(spec.NodeName)
	if err != nil {
		return nil, err
	}
	ec := newEvalContext(spec, node)
	refs, pre := ec.enumerate()
	if lo < 0 || hi < lo || hi > len(refs) {
		return nil, fmt.Errorf("core: range [%d,%d) out of bounds for %d enumerated configurations", lo, hi, len(refs))
	}
	rr, err := evalRefsLocal(spec, ec, refs[lo:hi])
	rr.Total = len(refs)
	for _, n := range pre {
		rr.PreRejected += n
	}
	return rr, err
}

// EvalRefs evaluates an explicit ref list on the local pool — the entry
// point a worker serves for adaptive-search stage dispatch, where the ref
// set is decided by the coordinator's branch-and-bound state rather than a
// contiguous range. Refs are validated against the spec before any
// evaluation runs.
func EvalRefs(spec Spec, refs []ConfigRef) (*RangeResult, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	node, err := tech.Lookup(spec.NodeName)
	if err != nil {
		return nil, err
	}
	ec := newEvalContext(spec, node)
	for i, ref := range refs {
		if err := ec.validate(ref); err != nil {
			return nil, fmt.Errorf("core: ref %d invalid: %w", i, err)
		}
	}
	allRefs, pre := ec.enumerate()
	rr, err := evalRefsLocal(spec, ec, refs)
	rr.Total = len(allRefs)
	for _, n := range pre {
		rr.PreRejected += n
	}
	return rr, err
}

// evalRefsLocal fans refs over the local pool with full run telemetry.
func evalRefsLocal(spec Spec, ec *evalContext, refs []ConfigRef) (*RangeResult, error) {
	tr := newTracker(spec)
	tr.addJobs(len(refs))
	eval := ec.localEvaluator(spec.Workers)
	outs, err := eval(specContext(spec), refs, func(i int, out *RefOutcome) {
		tr.jobDone(refs[i].Kind, out.Candidates, out.Rejected)
	})
	return &RangeResult{Outcomes: outs, Stats: tr.finalize(err != nil)}, err
}

// specContext returns the spec's run-control context, Background when unset.
func specContext(spec Spec) context.Context {
	if spec.Context != nil {
		return spec.Context
	}
	return context.Background()
}
