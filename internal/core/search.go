package core

import (
	"fmt"
	"sort"
	"strings"

	"ivory/internal/topology"
)

// Adaptive design-space exploration. The exhaustive sweep visits every
// lattice point; this file implements the pruned strategy behind
// Spec.Search == SearchAdaptive:
//
//   - Analytic efficiency bounds. An SC topology's output is at most the
//     ideal conversion ratio times VIn, so its efficiency can never exceed
//     VOut/(Ratio·VIn). Topology groups are explored best-ceiling-first
//     and each is refined to convergence before the next group's gate, so
//     the loop is a branch-and-bound: a group whose ceiling cannot beat
//     the already-refined winners is skipped wholesale, before any sizing
//     runs.
//   - Successive halving. Each admitted group's (capacitor kind) cells are
//     probed at the low and middle capacitor shares — feasibility islands
//     hug the low-share end on power-dense specs — and only the best cell
//     (plus any cell holding a current winner) is refined, by bisecting
//     the share axis around the incumbent instead of sweeping it. The buck
//     family bisects the same way along its frequency axis. The LDO
//     lattice is smaller than one SC probe stage, so it is evaluated in
//     full.
//   - Incremental Pareto maintenance. Every accepted candidate feeds the
//     tracker's running (efficiency, area) front, so streamed telemetry
//     carries the trade-off curve as it grows.
//
// All pruning decisions happen at stage boundaries, after a deterministic
// merge of the stage's shards — never from racing worker state — so the
// adaptive path is bit-identical for every worker count, exactly like the
// exhaustive one.

// SearchStrategy selects how Explore covers the design space.
type SearchStrategy int

const (
	// SearchExhaustive sweeps the full configuration lattice (the paper's
	// flow, and the reference the adaptive mode is validated against).
	SearchExhaustive SearchStrategy = iota
	// SearchAdaptive prunes with analytic efficiency bounds and
	// successive halving; see the package comment above.
	SearchAdaptive
)

func (s SearchStrategy) String() string {
	switch s {
	case SearchExhaustive:
		return "exhaustive"
	case SearchAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("SearchStrategy(%d)", int(s))
	}
}

// ParseSearch maps a strategy name to its constant. Empty selects the
// exhaustive reference path.
func ParseSearch(s string) (SearchStrategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exhaustive", "full":
		return SearchExhaustive, nil
	case "adaptive", "pruned":
		return SearchAdaptive, nil
	default:
		return SearchExhaustive, fmt.Errorf("core: unknown search strategy %q (want exhaustive|adaptive)", s)
	}
}

// Adaptive tuning. winnersK is the depth of the winner board the pruning
// rules must preserve: the adaptive result's top-winnersK ranked
// candidates match the exhaustive sweep's on the committed paper specs
// (pinned by the equivalence tests). keepCells is how many SC lattice
// cells survive the halving stage on probe merit alone; cells holding a
// current winner are always kept in addition.
const (
	winnersK  = 3
	keepCells = 1
)

// PaperSweepSpecs returns the specs committed across the repository's
// examples and smoke scripts — the sweeps the adaptive-vs-exhaustive
// equivalence tests and benchmarks run.
func PaperSweepSpecs() []Spec {
	return []Spec{
		CaseStudySpec("45nm"), // examples/gpu-casestudy, the paper's Table 2
		{NodeName: "22nm", VIn: 1.8, VOut: 0.9, IMax: 2, AreaMax: 3e-6},  // examples/quickstart
		{NodeName: "45nm", VIn: 3.3, VOut: 0.95, IMax: 6, AreaMax: 5e-6}, // examples/dvfs-transient
		{NodeName: "45nm", VIn: 1.8, VOut: 0.9, IMax: 1, AreaMax: 2e-6},  // scripts/ivoryd_smoke.sh
	}
}

// winnerBoard holds the top-k candidates seen so far under the run's
// total ranking order. Pruning rules consult it: a region is only skipped
// when its analytic ceiling cannot displace the board's last entry.
type winnerBoard struct {
	k    int
	less func(a, b Candidate) bool
	list []Candidate
}

func (w *winnerBoard) observe(c Candidate) {
	i := sort.Search(len(w.list), func(i int) bool { return w.less(c, w.list[i]) })
	if i >= w.k {
		return
	}
	w.list = append(w.list, Candidate{})
	copy(w.list[i+1:], w.list[i:])
	w.list[i] = c
	if len(w.list) > w.k {
		w.list = w.list[:w.k]
	}
}

func (w *winnerBoard) contains(key string) bool {
	for _, c := range w.list {
		if candidateKey(c) == key {
			return true
		}
	}
	return false
}

// canBeat reports whether a region with the given analytic efficiency
// ceiling could still place a candidate on the board. Until the board is
// full nothing is pruned. Under MaxEfficiency the ceiling must reach the
// board's worst efficiency; under the floor-gated objectives a region
// below the floor is only prunable once the whole board clears the floor
// (sub-floor rows rank after every above-floor row, so they can no longer
// displace anything).
func (w *winnerBoard) canBeat(obj Objective, floor, bound float64) bool {
	if len(w.list) < w.k {
		return true
	}
	switch obj {
	case MinArea, MinNoise:
		if bound >= floor {
			return true
		}
		return w.list[len(w.list)-1].Metrics.Efficiency < floor
	default:
		return bound >= w.list[len(w.list)-1].Metrics.Efficiency
	}
}

// runStage fans one deterministic batch of refs through the evaluator,
// merges the outcomes in ref order into the result, and feeds the winner
// board. Pruning decisions made after runStage returns therefore depend
// only on the stage's ref list, never on scheduling — and the evaluator
// may be the local pool or a cluster dispatch, indistinguishably.
func runStage(spec Spec, tr *tracker, res *Result, win *winnerBoard, eval Evaluator, refs []ConfigRef) ([]RefOutcome, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	tr.addJobs(len(refs))
	outs, ferr := eval(specContext(spec), refs, func(i int, out *RefOutcome) {
		tr.jobDone(refs[i].Kind, out.Candidates, out.Rejected)
	})
	for i := range outs {
		res.Candidates = append(res.Candidates, outs[i].Candidates...)
		res.Rejected += outs[i].Rejected
		for _, c := range outs[i].Candidates {
			win.observe(c)
		}
	}
	return outs, ferr
}

// exploreAdaptive is the staged, pruned counterpart of exploreExhaustive.
func exploreAdaptive(spec Spec, ec *evalContext, res *Result, tr *tracker, eval Evaluator) error {
	win := &winnerBoard{k: winnersK, less: rankLess(spec.Objective, spec.EfficiencyFloor)}
	for _, k := range spec.Kinds {
		var err error
		switch k {
		case KindSC:
			err = adaptiveSC(spec, ec, res, tr, win, eval)
		case KindBuck:
			err = adaptiveBuck(spec, ec, res, tr, win, eval)
		case KindLDO:
			err = adaptiveLDO(spec, ec, res, tr, win, eval)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// scEfficiencyBound is the analytic ceiling of one SC topology: the
// regulated output is VOut while the ideal (unloaded) output is
// Ratio·VIn, so conversion efficiency cannot exceed their quotient — the
// intrinsic charge-transfer loss of regulating below the ideal ratio.
func scEfficiencyBound(spec Spec, an *topology.Analysis) float64 {
	return spec.VOut / (an.Ratio * spec.VIn)
}

// axisCell tracks one lattice cell (a fixed choice of every axis except
// the halved one) through probe and refinement stages. Cells address their
// fixed axes by canonical ConfigRef indices, so stage refs can be shipped
// to any evaluator.
type axisCell struct {
	key     string       // deterministic tie-break among cells
	done    map[int]bool // axis indices already evaluated
	best    *Candidate   // best accepted candidate in the cell so far
	bestIdx int          // axis index that produced best

	// SC cell context (unused by buck cells).
	topoIdx int // scRatios index
	capIdx  int // scCapKinds index
	bound   float64
	// Buck cell context.
	planIdx int // phase-plan index
}

// absorb folds the accepted candidates of one (cell, axis index)
// evaluation into the cell state.
func (c *axisCell) absorb(idx int, cands []Candidate, less func(a, b Candidate) bool) {
	for i := range cands {
		if c.best == nil || less(cands[i], *c.best) {
			cc := cands[i]
			c.best = &cc
			c.bestIdx = idx
		}
	}
}

// nextProbes returns the axis indices the cell wants evaluated next:
// bisection of the gaps flanking the incumbent, then a ±2 polish window
// so the runner-up grid points near the optimum are evaluated too. A cell
// with no accepted candidate yet asks for the axis endpoints once, then
// gives up. Indices are ascending for determinism.
func (c *axisCell) nextProbes(n int) []int {
	if c.best == nil {
		var out []int
		for _, i := range []int{0, n - 1} {
			if !c.done[i] {
				out = append(out, i)
			}
		}
		return out
	}
	b := c.bestIdx
	lo, hi := -1, n
	for i := b - 1; i >= 0; i-- {
		if c.done[i] {
			lo = i
			break
		}
	}
	for i := b + 1; i < n; i++ {
		if c.done[i] {
			hi = i
			break
		}
	}
	var out []int
	if b-lo > 1 {
		out = append(out, (b+lo)/2)
	}
	if hi-b > 1 {
		out = append(out, (b+hi)/2)
	}
	if len(out) == 0 {
		for i := b - 2; i <= b+2; i++ {
			if i >= 0 && i < n && !c.done[i] {
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// adaptiveSC explores the switched-capacitor slice topology group by
// topology group, highest analytic ceiling first. Each admitted group is
// probed at the low and middle capacitor shares, halved down to its best
// cell (winner-holding cells are always kept), and refined by bisection —
// all before the next group's bound gate runs, so later groups face the
// strongest possible incumbents and whole topologies are pruned unsized.
func adaptiveSC(spec Spec, ec *evalContext, res *Result, tr *tracker, win *winnerBoard, eval Evaluator) error {
	shares := scCapShares
	type group struct {
		bound float64
		name  string
		cells []*axisCell
	}
	var groups []group
	for ti, an := range ec.topos {
		if an == nil {
			res.Rejected++
			tr.enumRejected(KindSC, 1)
			continue
		}
		g := group{bound: scEfficiencyBound(spec, an), name: an.Name}
		for ci := range scCapKinds {
			if !ec.capOK[ci] {
				continue
			}
			g.cells = append(g.cells, &axisCell{
				key:     fmt.Sprintf("%s|%v", an.Name, scCapKinds[ci]),
				done:    map[int]bool{},
				topoIdx: ti,
				capIdx:  ci,
				bound:   g.bound,
			})
		}
		if len(g.cells) > 0 {
			groups = append(groups, g)
		}
	}
	// Highest ceiling first: the early groups set the bar the later ones
	// must analytically clear.
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].bound > groups[j].bound {
			return true
		}
		if groups[i].bound < groups[j].bound {
			return false
		}
		return groups[i].name < groups[j].name
	})

	scRefs := func(cells []*axisCell, picks [][]int) ([]ConfigRef, []*axisCell, []int) {
		var refs []ConfigRef
		var owner []*axisCell
		var ownerIdx []int
		for ci, c := range cells {
			for _, idx := range picks[ci] {
				c.done[idx] = true
				// Policy order matches the exhaustive unit: cost-aware
				// first, then uniform.
				for _, pol := range []int{PolCostAware, PolUniform} {
					refs = append(refs, ConfigRef{Kind: KindSC, Topo: c.topoIdx, Cap: c.capIdx, Axis: idx, Pol: pol})
					owner = append(owner, c)
					ownerIdx = append(ownerIdx, idx)
				}
			}
		}
		return refs, owner, ownerIdx
	}
	absorbStage := func(outs []RefOutcome, owner []*axisCell, ownerIdx []int) {
		for i := range outs {
			owner[i].absorb(ownerIdx[i], outs[i].Candidates, win.less)
		}
	}

	// Probe at the low and middle shares: on power-dense specs the
	// feasibility island hugs the low-share end (decap starves first), on
	// relaxed specs everything is feasible and the mid probe ranks cells.
	probeIdx := []int{0, len(shares) / 2}
	for _, g := range groups {
		// Bound gate: by the time a group is considered, every better
		// ceiling has already been refined, so the board is as strong as
		// it will get.
		if !win.canBeat(spec.Objective, spec.EfficiencyFloor, g.bound) {
			tr.prunedBound(len(g.cells) * len(shares) * 2)
			continue
		}
		picks := make([][]int, len(g.cells))
		for i := range picks {
			picks[i] = probeIdx
		}
		refs, owner, ownerIdx := scRefs(g.cells, picks)
		outs, err := runStage(spec, tr, res, win, eval, refs)
		absorbStage(outs, owner, ownerIdx)
		if err != nil {
			return err
		}

		// Halve within the group: rank cells by probe merit, keep the best
		// keepCells plus any cell holding a current winner. A kept cell
		// whose probes were all infeasible still gets its high endpoint
		// probed once during refinement (axisCell.nextProbes), rescuing
		// islands that sit above the mid share.
		ranked := append([]*axisCell(nil), g.cells...)
		sort.SliceStable(ranked, func(i, j int) bool {
			a, b := ranked[i], ranked[j]
			if (a.best != nil) != (b.best != nil) {
				return a.best != nil
			}
			if a.best != nil && b.best != nil {
				if win.less(*a.best, *b.best) {
					return true
				}
				if win.less(*b.best, *a.best) {
					return false
				}
			}
			return a.key < b.key
		})
		kept := ranked[:min(keepCells, len(ranked))]
		for _, c := range ranked[len(kept):] {
			if c.best != nil && win.contains(candidateKey(*c.best)) {
				kept = append(kept, c)
			}
		}

		// Refine the survivors' share axis by bisection until every cell
		// converges.
		for {
			picks := make([][]int, len(kept))
			total := 0
			for i, c := range kept {
				picks[i] = c.nextProbes(len(shares))
				total += len(picks[i])
			}
			if total == 0 {
				break
			}
			refs, owner, ownerIdx := scRefs(kept, picks)
			outs, err := runStage(spec, tr, res, win, eval, refs)
			absorbStage(outs, owner, ownerIdx)
			if err != nil {
				return err
			}
		}
		// Account every share the halving never visited.
		for _, c := range g.cells {
			tr.prunedHalving((len(shares) - len(c.done)) * 2)
		}
	}
	return nil
}

// adaptiveBuck explores the buck slice with one cell per phase-count plan
// and bisection refinement along the frequency axis. There is no useful
// analytic efficiency ceiling for a buck (ideally lossless at any ratio),
// so both cells are refined — the savings come from the frequency axis.
func adaptiveBuck(spec Spec, ec *evalContext, res *Result, tr *tracker, win *winnerBoard, eval Evaluator) error {
	if !ec.indOK {
		res.Rejected++
		tr.enumRejected(KindBuck, 1)
		return nil
	}
	// The cell's axis runs over the FSwMax-admissible frequencies; freqIdx
	// maps each local axis position back to the canonical buckFreqs index a
	// ConfigRef carries.
	var freqIdx []int
	for fi, f := range buckFreqs {
		if f <= spec.FSwMax {
			freqIdx = append(freqIdx, fi)
		}
	}
	if len(freqIdx) == 0 {
		return nil
	}
	var cells []*axisCell
	for pi, phases := range ec.phasePlans {
		cells = append(cells, &axisCell{
			key:     fmt.Sprintf("buck|x%d", phases),
			done:    map[int]bool{},
			planIdx: pi,
		})
	}
	buckRefs := func(picks [][]int) ([]ConfigRef, []*axisCell, []int) {
		var refs []ConfigRef
		var owner []*axisCell
		var ownerIdx []int
		for ci, c := range cells {
			for _, idx := range picks[ci] {
				c.done[idx] = true
				refs = append(refs, ConfigRef{Kind: KindBuck, Topo: c.planIdx, Axis: freqIdx[idx]})
				owner = append(owner, c)
				ownerIdx = append(ownerIdx, idx)
			}
		}
		return refs, owner, ownerIdx
	}
	// Probe the low and middle frequencies, then bisect each cell to
	// convergence.
	first := true
	for {
		picks := make([][]int, len(cells))
		total := 0
		for i, c := range cells {
			if first {
				picks[i] = []int{0, len(freqIdx) / 2}
				if picks[i][1] == 0 {
					picks[i] = picks[i][:1]
				}
			} else {
				picks[i] = c.nextProbes(len(freqIdx))
			}
			total += len(picks[i])
		}
		first = false
		if total == 0 {
			break
		}
		refs, owner, ownerIdx := buckRefs(picks)
		outs, err := runStage(spec, tr, res, win, eval, refs)
		for i := range outs {
			owner[i].absorb(ownerIdx[i], outs[i].Candidates, win.less)
		}
		if err != nil {
			return err
		}
	}
	for _, c := range cells {
		tr.prunedHalving(len(freqIdx) - len(c.done))
	}
	return nil
}

// adaptiveLDO evaluates the full LDO lattice: at five sample frequencies
// it is smaller than a single SC probe stage, and evaluating it keeps the
// per-family best exact.
func adaptiveLDO(spec Spec, _ *evalContext, res *Result, tr *tracker, win *winnerBoard, eval Evaluator) error {
	var refs []ConfigRef
	for fi, fs := range ldoSampleFreqs {
		if fs > spec.FSwMax {
			continue
		}
		refs = append(refs, ConfigRef{Kind: KindLDO, Axis: fi})
	}
	_, err := runStage(spec, tr, res, win, eval, refs)
	return err
}
