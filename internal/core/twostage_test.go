package core

import (
	"fmt"
	"testing"

	"ivory/internal/numeric"
)

func constStage1(eff float64) Stage1Model {
	return func(vOut, pOut float64) (float64, error) { return eff, nil }
}

func TestExploreTwoStageBasics(t *testing.T) {
	spec := Spec{NodeName: "45nm", VIn: 3.3, VOut: 0.9, IMax: 6, AreaMax: 8e-6}
	res, err := ExploreTwoStage(spec, []float64{1.5, 1.8}, constStage1(0.92))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible two-stage point")
	}
	for _, row := range res.Rows {
		if row.Feasible && !numeric.ApproxEqual(row.Stage1Eff, 0.92, 0) {
			t.Errorf("stage-1 efficiency not honored: %v", row.Stage1Eff)
		}
	}
	if res.Format() == "" {
		t.Error("empty format")
	}
}

func TestExploreTwoStageDefaultGrid(t *testing.T) {
	spec := Spec{NodeName: "45nm", VIn: 3.3, VOut: 0.9, IMax: 6, AreaMax: 8e-6}
	res, err := ExploreTwoStage(spec, nil, constStage1(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Errorf("default grid too small: %d rows", len(res.Rows))
	}
}

func TestExploreTwoStageValidation(t *testing.T) {
	spec := Spec{NodeName: "45nm", VIn: 3.3, VOut: 0.9, IMax: 6, AreaMax: 8e-6}
	if _, err := ExploreTwoStage(spec, nil, nil); err == nil {
		t.Error("nil stage-1 model must fail")
	}
	bad := spec
	bad.VOut = 5
	if _, err := ExploreTwoStage(bad, nil, constStage1(0.9)); err == nil {
		t.Error("invalid spec must fail")
	}
}

func TestExploreTwoStageSkipsBadRails(t *testing.T) {
	spec := Spec{NodeName: "45nm", VIn: 3.3, VOut: 0.9, IMax: 6, AreaMax: 8e-6}
	// Rails at/below VOut or above VIn are marked infeasible, not errors.
	res, err := ExploreTwoStage(spec, []float64{0.5, 0.9, 3.4, 1.8}, constStage1(0.9))
	if err != nil {
		t.Fatal(err)
	}
	states := map[float64]bool{}
	for _, row := range res.Rows {
		states[row.VMid] = row.Feasible
	}
	for _, v := range []float64{0.5, 0.9, 3.4} {
		if states[v] {
			t.Errorf("Vmid %v should be infeasible", v)
		}
	}
	if !states[1.8] {
		t.Error("Vmid 1.8 should be feasible")
	}
}

func TestExploreTwoStageStage1Errors(t *testing.T) {
	spec := Spec{NodeName: "45nm", VIn: 3.3, VOut: 0.9, IMax: 6, AreaMax: 8e-6}
	failing := func(vOut, pOut float64) (float64, error) { return 0, fmt.Errorf("boom") }
	res, err := ExploreTwoStage(spec, []float64{1.8}, failing)
	// With a single-stage fallback available this still succeeds overall.
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Error("no two-stage point should be feasible with a failing stage 1")
	}
	if res.SingleStage <= 0 {
		t.Error("single-stage reference missing")
	}
}
