package core

import (
	"testing"
)

// familyBest returns the first (best-ranked) candidate of each kind in an
// already-ranked candidate list, keyed by Kind.
func familyBest(cands []Candidate) map[Kind]string {
	out := map[Kind]string{}
	for i := range cands {
		if _, seen := out[cands[i].Kind]; !seen {
			out[cands[i].Kind] = candidateKey(cands[i])
		}
	}
	return out
}

// TestAdaptiveMatchesExhaustiveOnPaperSweeps is the tentpole equivalence
// contract: on every spec committed across the repository's examples and
// smoke scripts, the adaptive search returns the same global best and the
// same top-3 ranked winners as the exhaustive reference — under every
// objective — while, on the specs as committed (default objective),
// evaluating at least 10x fewer configurations and matching the
// per-family bests too. The conservation identity pins the accounting:
// every lattice point is either evaluated or explicitly counted pruned.
func TestAdaptiveMatchesExhaustiveOnPaperSweeps(t *testing.T) {
	for si, base := range PaperSweepSpecs() {
		for _, obj := range []Objective{MaxEfficiency, MinArea, MinNoise} {
			ex := base
			ex.Objective = obj
			ad := ex
			ad.Search = SearchAdaptive
			rex, err := Explore(ex)
			if err != nil {
				t.Fatalf("spec%d %v exhaustive: %v", si, obj, err)
			}
			rad, err := Explore(ad)
			if err != nil {
				t.Fatalf("spec%d %v adaptive: %v", si, obj, err)
			}

			if got, want := candidateKey(rad.Best), candidateKey(rex.Best); got != want {
				t.Errorf("spec%d %v: best diverged\n  adaptive   %s\n  exhaustive %s", si, obj, got, want)
			}
			for i := 0; i < 3 && i < len(rex.Candidates); i++ {
				if i >= len(rad.Candidates) {
					t.Errorf("spec%d %v: adaptive returned %d candidates, want top-3", si, obj, len(rad.Candidates))
					break
				}
				if got, want := candidateKey(rad.Candidates[i]), candidateKey(rex.Candidates[i]); got != want {
					t.Errorf("spec%d %v: rank %d diverged\n  adaptive   %s\n  exhaustive %s", si, obj, i, got, want)
				}
			}

			// Conservation: evaluated + pruned must cover the exhaustive
			// lattice exactly, so the pruning telemetry can be trusted.
			exN, adN := rex.Stats.Evaluated(), rad.Stats.Evaluated()
			if adN+rad.Stats.Pruned() != exN {
				t.Errorf("spec%d %v: accounting leak: adaptive %d evaluated + %d pruned != exhaustive %d",
					si, obj, adN, rad.Stats.Pruned(), exN)
			}
			if rad.Stats.Jobs != rad.Stats.Done {
				t.Errorf("spec%d %v: %d jobs but %d done", si, obj, rad.Stats.Jobs, rad.Stats.Done)
			}
			if rex.Stats.Pruned() != 0 {
				t.Errorf("spec%d %v: exhaustive run reported %d pruned", si, obj, rex.Stats.Pruned())
			}

			// The committed sweeps run the default objective; that is where
			// the ISSUE's 10x bar and the per-family parity are pinned.
			// Under the floor-gated objectives the SC family best is
			// near-degenerate across lattice cells (areas differ by
			// fractions of a percent), so halving only guarantees the
			// global winners there.
			if obj != MaxEfficiency {
				continue
			}
			if ratio := float64(exN) / float64(adN); ratio < 10 {
				t.Errorf("spec%d: adaptive evaluated %d of %d (%.1fx), want >=10x", si, adN, exN, ratio)
			}
			if rad.Stats.Pruned() == 0 {
				t.Errorf("spec%d: adaptive pruned nothing", si)
			}
			fbEx, fbAd := familyBest(rex.Candidates), familyBest(rad.Candidates)
			if len(fbEx) != len(fbAd) {
				t.Errorf("spec%d: families diverged: exhaustive %d, adaptive %d", si, len(fbEx), len(fbAd))
			}
			for k, want := range fbEx {
				if got := fbAd[k]; got != want {
					t.Errorf("spec%d: family %v best diverged\n  adaptive   %s\n  exhaustive %s", si, k, got, want)
				}
			}
		}
	}
}

// TestAdaptiveDeterministicAcrossWorkers pins that every pruning decision
// happens at a deterministic stage boundary: the adaptive result —
// candidates, ranking, and the deterministic Stats counters — is
// bit-identical for any worker count.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	base := CaseStudySpec("45nm")
	base.Search = SearchAdaptive
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		spec := base
		spec.Workers = workers
		res, err := Explore(spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Candidates) != len(ref.Candidates) {
			t.Fatalf("workers=%d: %d candidates, want %d", workers, len(res.Candidates), len(ref.Candidates))
		}
		for i := range res.Candidates {
			if candidateKey(res.Candidates[i]) != candidateKey(ref.Candidates[i]) {
				t.Errorf("workers=%d: candidate %d diverged", workers, i)
			}
		}
		if res.Stats.PerKind != ref.Stats.PerKind ||
			res.Stats.PrunedBound != ref.Stats.PrunedBound ||
			res.Stats.PrunedHalving != ref.Stats.PrunedHalving ||
			res.Stats.Jobs != ref.Stats.Jobs ||
			res.Stats.FrontSize != ref.Stats.FrontSize {
			t.Errorf("workers=%d: stats diverged: %+v vs %+v", workers, res.Stats, ref.Stats)
		}
	}
}

// TestOnImprovedStreamsMonotonicBest pins the streaming contract behind
// /v1/explore/stream: OnImproved fires only on strict improvement under
// the spec's objective, in improving order, and its last emission is the
// run's final Best.
func TestOnImprovedStreamsMonotonicBest(t *testing.T) {
	for _, search := range []SearchStrategy{SearchExhaustive, SearchAdaptive} {
		spec := CaseStudySpec("45nm")
		spec.Search = search
		less := rankLess(spec.Objective, spec.EfficiencyFloor)
		var seen []Candidate
		spec.OnImproved = func(c Candidate, s Stats) {
			seen = append(seen, c)
			if s.Done > s.Jobs {
				t.Errorf("%v: snapshot has Done %d > Jobs %d", search, s.Done, s.Jobs)
			}
		}
		res, err := Explore(spec)
		if err != nil {
			t.Fatalf("%v: %v", search, err)
		}
		if len(seen) == 0 {
			t.Fatalf("%v: OnImproved never fired", search)
		}
		for i := 1; i < len(seen); i++ {
			if !less(seen[i], seen[i-1]) {
				t.Errorf("%v: emission %d did not improve on %d", search, i, i-1)
			}
		}
		if got, want := candidateKey(seen[len(seen)-1]), candidateKey(res.Best); got != want {
			t.Errorf("%v: final emission %s != Best %s", search, got, want)
		}
	}
}

// TestParseSearch covers the strategy surface shared with the DTO layer.
func TestParseSearch(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SearchStrategy
		ok   bool
	}{
		{"", SearchExhaustive, true},
		{"exhaustive", SearchExhaustive, true},
		{"Full", SearchExhaustive, true},
		{"adaptive", SearchAdaptive, true},
		{" PRUNED ", SearchAdaptive, true},
		{"greedy", SearchExhaustive, false},
	} {
		got, err := ParseSearch(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSearch(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if SearchAdaptive.String() != "adaptive" || SearchExhaustive.String() != "exhaustive" {
		t.Errorf("String() mismatch: %v %v", SearchExhaustive, SearchAdaptive)
	}
	if got := SearchStrategy(9).String(); got != "SearchStrategy(9)" {
		t.Errorf("unknown strategy String() = %q", got)
	}
}

// TestSearchValidation pins that out-of-range strategies are rejected up
// front rather than silently falling back to a sweep.
func TestSearchValidation(t *testing.T) {
	spec := CaseStudySpec("45nm")
	spec.Search = SearchStrategy(7)
	if _, err := Explore(spec); err == nil {
		t.Fatal("want error for unknown search strategy")
	}
}
