package core

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func mkCand(kind Kind, label string, eff, area, ripple float64) Candidate {
	c := Candidate{Kind: kind, Label: label}
	c.Metrics.Efficiency = eff
	c.Metrics.AreaDie = area
	c.Metrics.RippleVpp = ripple
	c.Metrics.FSw = 1e8
	c.Metrics.POut = 1
	return c
}

// TestRankDeterministicUnderPermutation is the regression test for the
// ranked-merge determinism bug: labels are not unique and objective scores
// tie, so without the canonical-key tie-break the final order depended on
// input (shard-merge) order. Every permutation must rank byte-identically.
func TestRankDeterministicUnderPermutation(t *testing.T) {
	cands := []Candidate{
		mkCand(KindSC, "a x4", 0.80, 2e-6, 0.01),
		mkCand(KindSC, "a x4", 0.80, 2e-6, 0.02), // same label+eff+area, differs in ripple
		mkCand(KindBuck, "b x1", 0.80, 3e-6, 0.01),
		mkCand(KindSC, "c x2", 0.80, 1e-6, 0.01), // ties eff with a/b
		mkCand(KindLDO, "d", 0.55, 1e-6, 0.00),
		mkCand(KindSC, "e x8", 0.91, 4e-6, 0.03),
	}
	rankOrder := func(in []Candidate) string {
		cp := append([]Candidate(nil), in...)
		sort.Slice(cp, rankSliceLess(cp, MaxEfficiency, 0))
		keys := make([]string, len(cp))
		for i := range cp {
			keys[i] = candidateKey(cp[i])
		}
		return strings.Join(keys, "\n")
	}
	want := rankOrder(cands)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := append([]Candidate(nil), cands...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := rankOrder(perm); got != want {
			t.Fatalf("trial %d: ranking depends on input order\ngot:\n%s\nwant:\n%s", trial, got, want)
		}
	}
}

// rankSliceLess adapts rankLess to sort.Slice for the test.
func rankSliceLess(cp []Candidate, obj Objective, floor float64) func(i, j int) bool {
	less := rankLess(obj, floor)
	return func(i, j int) bool { return less(cp[i], cp[j]) }
}

// TestRankNaNRowsSink pins that candidates with non-finite metrics never
// outrank finite ones under any objective and land in a deterministic
// position (the tail), regardless of where the input order put them.
func TestRankNaNRowsSink(t *testing.T) {
	nan := math.NaN()
	rows := []Candidate{
		mkCand(KindSC, "nan-eff", nan, 2e-6, 0.01),
		mkCand(KindSC, "ok-low", 0.10, 2e-6, 0.01),
		mkCand(KindBuck, "inf-area", 0.90, math.Inf(1), 0.01),
		mkCand(KindSC, "ok-high", 0.90, 2e-6, 0.01),
		mkCand(KindLDO, "nan-ripple", 0.70, 1e-6, nan),
	}
	for _, obj := range []Objective{MaxEfficiency, MinArea, MinNoise} {
		for trial := 0; trial < 8; trial++ {
			cp := append([]Candidate(nil), rows...)
			rand.New(rand.NewSource(int64(trial))).Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
			sort.Slice(cp, rankSliceLess(cp, obj, 0.25))
			for i, c := range cp[:2] {
				if !finiteMetrics(c) {
					t.Fatalf("%v trial %d: non-finite row %q ranked %d", obj, trial, c.Label, i)
				}
			}
			for _, c := range cp[2:] {
				if finiteMetrics(c) {
					t.Fatalf("%v trial %d: finite row %q sank below NaN rows", obj, trial, c.Label)
				}
			}
		}
	}
}

// batchFront is the quadratic reference the incremental set is checked
// against: keep every candidate no other candidate dominates.
func batchFront(in []Candidate, noise bool) map[string]int {
	p := &ParetoSet{noise: noise}
	out := map[string]int{}
	for i := range in {
		if !finiteMetrics(in[i]) {
			continue
		}
		dominated := false
		for j := range in {
			if i != j && finiteMetrics(in[j]) && p.dominates(in[j], in[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			// Exact duplicates never dominate each other, so the front is
			// a multiset: count occurrences per canonical key.
			out[candidateKey(in[i])]++
		}
	}
	return out
}

// TestParetoSetMatchesBatch drives the incremental front with randomized
// candidates and insertion orders and checks it always lands on the batch
// answer, in both the two- and three-objective configurations.
func TestParetoSetMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		noise := trial%2 == 1
		n := 3 + rng.Intn(30)
		cands := make([]Candidate, n)
		for i := range cands {
			// Coarse metric grid to force plenty of ties and duplicates.
			cands[i] = mkCand(KindSC, "p", float64(rng.Intn(5))/5, float64(1+rng.Intn(4))*1e-6, float64(rng.Intn(3))*0.01)
		}
		if trial%5 == 4 {
			cands[rng.Intn(n)].Metrics.Efficiency = math.NaN()
		}
		var set *ParetoSet
		if noise {
			set = NewParetoSetNoise()
		} else {
			set = NewParetoSet()
		}
		for _, c := range cands {
			set.Insert(c)
		}
		want := batchFront(cands, noise)
		front := set.Front()
		got := map[string]int{}
		total := 0
		for _, c := range front {
			if !finiteMetrics(c) {
				t.Fatalf("trial %d: non-finite candidate on front", trial)
			}
			got[candidateKey(c)]++
		}
		for k, n := range want {
			total += n
			if got[k] != n {
				t.Fatalf("trial %d (noise=%v): key %s appears %d times on incremental front, batch says %d", trial, noise, k, got[k], n)
			}
		}
		if len(front) != total {
			t.Fatalf("trial %d (noise=%v): front size %d, want %d", trial, noise, len(front), total)
		}
		if set.Size() != len(front) {
			t.Fatalf("trial %d: Size %d != len(Front) %d", trial, set.Size(), len(front))
		}
	}
}

// TestParetoFrontOrderDeterministic pins Front()'s order: area ascending,
// canonical key on ties, for any insertion order.
func TestParetoFrontOrderDeterministic(t *testing.T) {
	cands := []Candidate{
		mkCand(KindSC, "a", 0.9, 2e-6, 0.01),
		mkCand(KindBuck, "b", 0.8, 1e-6, 0.02),
		mkCand(KindLDO, "c", 0.95, 3e-6, 0.01),
		mkCand(KindSC, "d", 0.8, 1e-6, 0.02), // ties b on every front metric
	}
	var want string
	for trial := 0; trial < 10; trial++ {
		cp := append([]Candidate(nil), cands...)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		set := NewParetoSet()
		for _, c := range cp {
			set.Insert(c)
		}
		var keys []string
		for _, c := range set.Front() {
			keys = append(keys, candidateKey(c))
		}
		got := strings.Join(keys, "\n")
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trial %d: front order depends on insertion order\ngot:\n%s\nwant:\n%s", trial, got, want)
		}
	}
}

// TestResultFrontsExcludeNonFinite feeds Result.ParetoFront and
// MultiObjectiveFront a mix of finite and NaN rows.
func TestResultFrontsExcludeNonFinite(t *testing.T) {
	res := Result{Candidates: []Candidate{
		mkCand(KindSC, "ok", 0.9, 2e-6, 0.01),
		mkCand(KindSC, "bad", math.NaN(), 1e-6, 0.01),
		mkCand(KindBuck, "ok2", 0.5, 1e-6, 0.05),
	}}
	for _, front := range [][]Candidate{res.ParetoFront(), res.MultiObjectiveFront()} {
		if len(front) == 0 {
			t.Fatal("empty front")
		}
		for _, c := range front {
			if !finiteMetrics(c) {
				t.Fatalf("non-finite candidate %q on front", c.Label)
			}
		}
	}
}
