package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ivory/internal/parallel"
)

// TestExploreStatsMatchSerialCounts checks the telemetry record against
// the result it describes and across worker counts: per-kind accepted plus
// rejected must reproduce the serial path's counts exactly.
func TestExploreStatsMatchSerialCounts(t *testing.T) {
	spec := CaseStudySpec("45nm")
	spec.Workers = 1
	serial, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	check := func(res *Result, label string) {
		t.Helper()
		s := res.Stats
		if s.Cancelled {
			t.Fatalf("%s: uncancelled run marked cancelled", label)
		}
		if s.Done != s.Jobs || s.Jobs == 0 {
			t.Fatalf("%s: %d of %d jobs done", label, s.Done, s.Jobs)
		}
		if s.Accepted() != len(res.Candidates) {
			t.Fatalf("%s: stats accepted %d, result has %d candidates",
				label, s.Accepted(), len(res.Candidates))
		}
		if s.Rejected() != res.Rejected {
			t.Fatalf("%s: stats rejected %d, result says %d", label, s.Rejected(), res.Rejected)
		}
		if !reflect.DeepEqual(s.PerKind, serial.Stats.PerKind) {
			t.Fatalf("%s: per-kind stats %+v diverge from serial %+v",
				label, s.PerKind, serial.Stats.PerKind)
		}
		if s.Wall <= 0 {
			t.Fatalf("%s: wall time %v not positive", label, s.Wall)
		}
	}
	check(serial, "serial")
	for _, workers := range []int{0, 3, 16} {
		spec := spec
		spec.Workers = workers
		par, err := Explore(spec)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		check(par, "parallel")
	}
	// The case study explores all three families; each must be accounted.
	for _, k := range []Kind{KindSC, KindBuck, KindLDO} {
		if serial.Stats.ByKind(k).Evaluated() == 0 {
			t.Errorf("kind %v evaluated nothing in the case study", k)
		}
	}
}

// TestExploreProgressMonotonic checks the progress callback: serialized
// (the non-atomic counter below would trip -race otherwise), one call per
// job, Done strictly increasing to Jobs.
func TestExploreProgressMonotonic(t *testing.T) {
	spec := CaseStudySpec("45nm")
	calls, lastDone := 0, 0
	spec.Progress = func(s Stats) {
		calls++
		if s.Done != lastDone+1 {
			t.Errorf("progress Done jumped %d -> %d", lastDone, s.Done)
		}
		lastDone = s.Done
	}
	res, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Stats.Jobs || lastDone != res.Stats.Jobs {
		t.Fatalf("%d progress calls, last Done %d, want %d", calls, lastDone, res.Stats.Jobs)
	}
}

// TestExploreCancelledMidRun cancels from the progress callback after the
// first completed job: Explore must return ctx.Err() promptly together
// with an uncorrupted partial result — every partial candidate identical
// to its serial counterpart, counters consistent, Cancelled set.
func TestExploreCancelledMidRun(t *testing.T) {
	full, err := Explore(CaseStudySpec("45nm"))
	if err != nil {
		t.Fatal(err)
	}
	serialByLabel := map[string]Candidate{}
	for _, c := range full.Candidates {
		serialByLabel[c.Kind.String()+"|"+c.Label] = c
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := CaseStudySpec("45nm")
	spec.Workers = 4
	spec.Context = ctx
	spec.Progress = func(s Stats) {
		if s.Done == 1 {
			cancel()
		}
	}
	res, err := Explore(spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Explore returned no partial result")
	}
	if !res.Stats.Cancelled {
		t.Fatal("partial result not marked cancelled")
	}
	if res.Stats.Done >= res.Stats.Jobs {
		t.Fatalf("cancellation after job 1 still completed %d of %d jobs",
			res.Stats.Done, res.Stats.Jobs)
	}
	if res.Stats.Accepted() != len(res.Candidates) {
		t.Fatalf("partial stats accepted %d, result has %d candidates",
			res.Stats.Accepted(), len(res.Candidates))
	}
	// No shard corruption: every candidate that made it out is exactly the
	// candidate the full sweep produced for the same configuration.
	for _, c := range res.Candidates {
		want, ok := serialByLabel[c.Kind.String()+"|"+c.Label]
		if !ok {
			t.Fatalf("partial candidate %q not present in the full sweep", c.Label)
		}
		if !reflect.DeepEqual(c.Metrics, want.Metrics) {
			t.Fatalf("partial candidate %q metrics diverge from the full sweep", c.Label)
		}
	}
	if len(res.Candidates) > 0 && res.Best.Label != res.Candidates[0].Label {
		t.Fatal("partial result not ranked: Best is not the first candidate")
	}
}

// TestExplorePreCancelled checks an already-cancelled context evaluates
// nothing and still hands back the (empty) telemetry.
func TestExplorePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := CaseStudySpec("45nm")
	spec.Context = ctx
	res, err := Explore(spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Fatal("pre-cancelled Explore must return a cancelled-marked result")
	}
	if res.Stats.Done != 0 || len(res.Candidates) != 0 {
		t.Fatalf("pre-cancelled run evaluated %d jobs, %d candidates",
			res.Stats.Done, len(res.Candidates))
	}
}

// TestExploreDistributionCancelled checks the distribution sweep treats a
// cancelled context as a stop request, not an infeasible count.
func TestExploreDistributionCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := CaseStudySpec("45nm")
	spec.Context = ctx
	if _, err := ExploreDistribution(spec, []int{1, 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestExplorePanicInJobSurfacesIndex injects a panic into an evaluation
// job through the progress callback (which runs inside the job on a worker
// goroutine) and checks the panic-containment contract end to end: the
// process survives the worker, and the caller's goroutine sees exactly one
// *parallel.PanicError naming the job.
func TestExplorePanicInJobSurfacesIndex(t *testing.T) {
	spec := CaseStudySpec("45nm")
	spec.Workers = 4
	spec.Progress = func(s Stats) {
		if s.Done == 3 {
			panic("injected job failure")
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a job did not reach the caller")
		}
		pe, ok := r.(*parallel.PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *parallel.PanicError", r)
		}
		if pe.Value != "injected job failure" {
			t.Fatalf("panic value %v lost in transit", pe.Value)
		}
		if pe.Index < 0 {
			t.Fatalf("panic not tagged with a job index: %d", pe.Index)
		}
	}()
	_, _ = Explore(spec)
	t.Fatal("Explore returned instead of re-raising the job panic")
}

// TestExploreRejectsUnknownKind checks the per-kind accounting's input
// guard: an out-of-range Kind is an error, not a silent no-op.
func TestExploreRejectsUnknownKind(t *testing.T) {
	spec := CaseStudySpec("45nm")
	spec.Kinds = []Kind{KindSC, Kind(9)}
	if _, err := Explore(spec); err == nil {
		t.Fatal("expected an error for an unknown Kind")
	}
}
