package core

import (
	"reflect"
	"runtime"
	"testing"
)

// TestExploreDeterministicAcrossWorkers checks the tentpole guarantee: the
// parallel exploration engine produces bit-identical output to the serial
// path — same candidate ordering, labels, metrics (exact equality, via
// reflect.DeepEqual), rejection counts, and best pick — for any worker
// count. Run under -race in CI, this also exercises the shared
// Analysis/tech.Node read paths from many goroutines.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	for _, obj := range []Objective{MaxEfficiency, MinArea, MinNoise} {
		spec := CaseStudySpec("45nm")
		spec.Objective = obj
		spec.Workers = 1
		serial, err := Explore(spec)
		if err != nil {
			t.Fatalf("objective %v: serial explore: %v", obj, err)
		}
		for _, workers := range []int{0, 2, 8, runtime.NumCPU()} {
			spec := spec
			spec.Workers = workers
			par, err := Explore(spec)
			if err != nil {
				t.Fatalf("objective %v workers %d: %v", obj, workers, err)
			}
			if par.Rejected != serial.Rejected {
				t.Errorf("objective %v workers %d: rejected %d, serial %d",
					obj, workers, par.Rejected, serial.Rejected)
			}
			// The telemetry layer must not perturb — or misreport — the
			// deterministic counts: per-kind accepted/rejected match the
			// serial path exactly.
			if !reflect.DeepEqual(par.Stats.PerKind, serial.Stats.PerKind) {
				t.Errorf("objective %v workers %d: per-kind stats %+v, serial %+v",
					obj, workers, par.Stats.PerKind, serial.Stats.PerKind)
			}
			if par.Stats.Rejected() != serial.Rejected {
				t.Errorf("objective %v workers %d: stats rejected %d, serial %d",
					obj, workers, par.Stats.Rejected(), serial.Rejected)
			}
			if len(par.Candidates) != len(serial.Candidates) {
				t.Fatalf("objective %v workers %d: %d candidates, serial %d",
					obj, workers, len(par.Candidates), len(serial.Candidates))
			}
			for i := range par.Candidates {
				pc, sc := par.Candidates[i], serial.Candidates[i]
				if pc.Kind != sc.Kind || pc.Label != sc.Label {
					t.Fatalf("objective %v workers %d: candidate %d is %v %q, serial %v %q",
						obj, workers, i, pc.Kind, pc.Label, sc.Kind, sc.Label)
				}
				if !reflect.DeepEqual(pc.Metrics, sc.Metrics) {
					t.Fatalf("objective %v workers %d: candidate %d metrics diverge:\n%+v\nvs serial\n%+v",
						obj, workers, i, pc.Metrics, sc.Metrics)
				}
			}
			if !reflect.DeepEqual(par.Best.Metrics, serial.Best.Metrics) || par.Best.Label != serial.Best.Label {
				t.Errorf("objective %v workers %d: best %q diverges from serial %q",
					obj, workers, par.Best.Label, serial.Best.Label)
			}
		}
	}
}

// TestExploreWorkersValidation checks the Workers knob's input contract.
func TestExploreWorkersValidation(t *testing.T) {
	spec := CaseStudySpec("45nm")
	spec.Workers = -1
	if _, err := Explore(spec); err == nil {
		t.Fatal("expected an error for negative Workers")
	}
}

// TestExploreRejectsFailedInterleaveReEvaluation pins the interleave
// fallback fix: a design whose post-interleave re-evaluation fails must be
// rejected, not kept as an over-ripple candidate. Every returned SC
// candidate therefore either meets the ripple target or is interleave-
// capped at 64 phases.
func TestExploreRejectsFailedInterleaveReEvaluation(t *testing.T) {
	spec := CaseStudySpec("45nm")
	res, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	rippleMax := res.Spec.RippleMax // defaulted inside Explore
	for _, c := range res.Candidates {
		if c.Kind != KindSC {
			continue
		}
		if c.Metrics.RippleVpp > rippleMax*1.0001 && c.SC.Config().Interleave < 64 {
			t.Errorf("candidate %q is over the ripple target (%.3g > %.3g V) without being interleave-capped",
				c.Label, c.Metrics.RippleVpp, rippleMax)
		}
	}
}
