// Package core is the Ivory framework proper: it ties the technology
// database, topology analysis, converter static models, and dynamic models
// together behind the four modules of the paper's Fig. 2 — system
// parameters, static design trade-offs, dynamic feedback response, and
// design optimization.
//
// The entry point is Explore: given the user's high-level specification
// (input/output voltage, maximum load current, area budget, optimization
// objective — the paper's Table 1 inputs), it enumerates SC conversion
// ratios and capacitor flavours, buck frequency/phase plans, and LDO
// configurations, sizes each candidate within the area budget, evaluates
// it with the static models, and returns the ranked candidates.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"ivory/internal/buck"
	"ivory/internal/ivr"
	"ivory/internal/ldo"
	"ivory/internal/sc"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

// Objective selects what the design optimizer maximizes/minimizes.
type Objective int

const (
	// MaxEfficiency maximizes conversion efficiency at full load (the
	// paper's default, minimizing power delivery overhead).
	MaxEfficiency Objective = iota
	// MinArea minimizes die area among candidates above the efficiency
	// floor.
	MinArea
	// MinNoise minimizes static output ripple.
	MinNoise
)

func (o Objective) String() string {
	switch o {
	case MaxEfficiency:
		return "max-efficiency"
	case MinArea:
		return "min-area"
	case MinNoise:
		return "min-noise"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective maps an objective name to its constant. Both the canonical
// String form ("max-efficiency") and the CLI/wire short form ("eff") are
// accepted, case-insensitively.
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "eff", "efficiency", "max-efficiency":
		return MaxEfficiency, nil
	case "area", "min-area":
		return MinArea, nil
	case "noise", "min-noise":
		return MinNoise, nil
	default:
		return MaxEfficiency, fmt.Errorf("core: unknown objective %q (want eff|area|noise)", s)
	}
}

// Kind identifies the converter family of a candidate.
type Kind int

const (
	// KindSC marks switched-capacitor candidates.
	KindSC Kind = iota
	// KindBuck marks buck candidates.
	KindBuck
	// KindLDO marks linear-regulator candidates.
	KindLDO
)

func (k Kind) String() string {
	switch k {
	case KindSC:
		return "SC"
	case KindBuck:
		return "buck"
	case KindLDO:
		return "LDO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a converter-family name ("sc", "buck", "ldo",
// case-insensitive) to its constant.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sc":
		return KindSC, nil
	case "buck":
		return KindBuck, nil
	case "ldo":
		return KindLDO, nil
	default:
		return KindSC, fmt.Errorf("core: unknown converter kind %q (want SC|buck|LDO)", s)
	}
}

// Spec is the user's high-level input (paper Table 1).
type Spec struct {
	// NodeName selects the technology node (e.g. "45nm").
	NodeName string
	// VIn and VOut are the converter input voltage and regulation target.
	VIn, VOut float64
	// IMax is the maximum load current the converter must sustain (A).
	IMax float64
	// AreaMax is the die-area budget (m²).
	AreaMax float64
	// RippleMax is the static ripple target (V); zero selects 1% of VOut.
	RippleMax float64
	// Objective selects the optimization target (default MaxEfficiency).
	Objective Objective
	// EfficiencyFloor prunes candidates below this efficiency for the
	// MinArea/MinNoise objectives (default 0.25).
	EfficiencyFloor float64
	// Kinds restricts the families explored; empty means all three.
	Kinds []Kind
	// FSwMax bounds switching frequency (default 1 GHz).
	FSwMax float64
	// Search selects the exploration strategy. SearchExhaustive (the zero
	// value) sweeps the full configuration lattice — the paper's flow and
	// the reference the adaptive mode is tested against. SearchAdaptive
	// prunes with per-family analytic efficiency bounds and successive
	// halving (see search.go) and typically evaluates an order of
	// magnitude fewer configurations.
	Search SearchStrategy
	// Workers bounds the exploration worker pool: 0 uses one worker per
	// CPU, 1 evaluates the space serially (the reference path). The ranked
	// output is bit-identical for every worker count — candidates are
	// merged in enumeration order before ranking.
	Workers int
	// Context, when non-nil, cancels a running exploration: no new
	// evaluation jobs are dispatched, in-flight jobs drain, and Explore
	// returns ctx.Err() alongside the partial ranked result (see Explore).
	// nil selects context.Background() — never cancelled, exactly the old
	// behavior.
	Context context.Context
	// Progress, when non-nil, receives a telemetry snapshot after every
	// completed evaluation job. Calls are serialized (never concurrent)
	// but arrive on worker goroutines; keep the callback fast, and do not
	// start another exploration from inside it. Progress must not mutate
	// shared state the jobs read — the determinism contract assumes the
	// callback only observes.
	Progress func(Stats)
	// OnImproved, when non-nil, receives each candidate that improves on
	// the best-so-far under the spec's objective, together with the
	// telemetry snapshot at that moment. Calls are serialized like
	// Progress and arrive on worker goroutines; the sequence of improving
	// candidates depends on job completion order (it is monotone — every
	// emitted candidate beats the previous one — but not deterministic
	// under parallelism). The final emitted candidate equals Result.Best
	// on an uncancelled run.
	OnImproved func(Candidate, Stats)
}

func (s *Spec) defaults() error {
	if s.NodeName == "" {
		return fmt.Errorf("core: Spec.NodeName is required")
	}
	// NaN compares false against everything, so the positivity checks
	// below would silently wave NaNs through; reject them explicitly.
	for _, v := range []float64{s.VIn, s.VOut, s.IMax, s.AreaMax, s.RippleMax, s.FSwMax, s.EfficiencyFloor} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: Spec contains a NaN/Inf field")
		}
	}
	if s.VIn <= 0 || s.VOut <= 0 || s.VOut >= s.VIn {
		return fmt.Errorf("core: need 0 < VOut < VIn (got %g, %g)", s.VOut, s.VIn)
	}
	if s.IMax <= 0 {
		return fmt.Errorf("core: IMax must be positive")
	}
	if s.AreaMax <= 0 {
		return fmt.Errorf("core: AreaMax must be positive")
	}
	if s.RippleMax == 0 {
		s.RippleMax = 0.01 * s.VOut
	}
	if s.EfficiencyFloor == 0 {
		s.EfficiencyFloor = 0.25
	}
	if s.FSwMax == 0 {
		s.FSwMax = 1e9
	}
	if len(s.Kinds) == 0 {
		s.Kinds = []Kind{KindSC, KindBuck, KindLDO}
	}
	// Per-kind accounting indexes arrays by Kind, so unknown kinds are an
	// input error now rather than a silent no-op (the old nested switch
	// skipped them without a trace).
	for _, k := range s.Kinds {
		if k < 0 || int(k) >= numKinds {
			return fmt.Errorf("core: Spec.Kinds contains unknown kind %d", int(k))
		}
	}
	if s.Workers < 0 {
		return fmt.Errorf("core: Spec.Workers must be >= 0 (got %d)", s.Workers)
	}
	if s.Search < SearchExhaustive || s.Search > SearchAdaptive {
		return fmt.Errorf("core: unknown Spec.Search %d", int(s.Search))
	}
	return nil
}

// Normalized returns a copy of the spec with every default applied — the
// exact spec Explore evaluates and echoes on Result.Spec — or the
// validation error Explore would return for it. Serving layers key caches
// on the normalized spec so requests that differ only in elided defaults
// (RippleMax 0 vs the derived 1% of VOut, an empty vs explicit Kinds list)
// coalesce onto one computation.
func (s Spec) Normalized() (Spec, error) {
	if err := (&s).defaults(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Candidate is one evaluated design point.
type Candidate struct {
	// Kind is the converter family.
	Kind Kind
	// Label describes the configuration (ratio, cap kind, phases...).
	Label string
	// Metrics is the static evaluation at IMax.
	Metrics ivr.Metrics
	// SC, Buck, LDO holds the underlying design (exactly one non-nil).
	SC   *sc.Design
	Buck *buck.Design
	LDO  *ldo.Design
}

// Result is the outcome of a design-space exploration.
type Result struct {
	// Spec echoes the (defaulted) input.
	Spec Spec
	// Best is the winning candidate under the objective.
	Best Candidate
	// Candidates holds every feasible design, ranked best-first.
	Candidates []Candidate
	// Rejected counts configurations that failed sizing or feasibility.
	Rejected int
	// Stats is the run's telemetry record (per-kind counts, cache
	// hit/miss, wall time, throughput; Cancelled on an interrupted run).
	Stats Stats
}

// shard accumulates the outcome of one independent slice of the
// configuration space. Every worker writes only to its own shard; shards
// merge in enumeration order, so the assembled candidate list is identical
// to a serial sweep regardless of how the work was scheduled.
type shard struct {
	candidates []Candidate
	rejected   int
}

// Explore runs the design optimization module over the full space: the
// candidate configurations (kind x topology x cap kind x cap share x
// allocation policy x phase count) are enumerated into a flat work list,
// fanned out over a Spec.Workers-bounded pool, and merged deterministically
// before ranking.
//
// Run control (Spec.Context): when the context is cancelled mid-run, no
// new jobs are dispatched, in-flight jobs drain, and Explore returns the
// context's error TOGETHER with a non-nil partial Result — the candidates
// of every completed job, merged in enumeration order and ranked, with
// Stats.Cancelled set. Callers that only check err keep the old behavior;
// callers wanting partial sweeps read the Result when err is a context
// error. A panic inside an evaluation job is re-raised on the caller's
// goroutine as a *parallel.PanicError carrying the job index.
func Explore(spec Spec) (*Result, error) {
	return ExploreWith(spec, nil)
}

// ExploreWith is Explore with the evaluation step pluggable: every batch of
// enumerated configurations is handed to eval instead of the in-process
// pool, so a serving layer can fan the same deterministic work list out to
// remote replicas (see internal/server's cluster mode). A nil eval selects
// the local pool — ExploreWith(spec, nil) is exactly Explore(spec).
//
// The merge contract is unchanged: outcomes are merged positionally in
// enumeration/stage order before any ranking or pruning decision, so the
// ranked result is bit-identical for any evaluator that returns the same
// per-ref outcomes — local, clustered, or mixed.
func ExploreWith(spec Spec, eval Evaluator) (*Result, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	node, err := tech.Lookup(spec.NodeName)
	if err != nil {
		return nil, err
	}
	ec := newEvalContext(spec, node)
	if eval == nil {
		eval = ec.localEvaluator(spec.Workers)
	}
	res := &Result{Spec: spec}
	tr := newTracker(spec)
	var ferr error
	if spec.Search == SearchAdaptive {
		ferr = exploreAdaptive(spec, ec, res, tr, eval)
	} else {
		ferr = exploreExhaustive(spec, ec, res, tr, eval)
	}
	res.Stats = tr.finalize(ferr != nil)
	if ferr != nil {
		if len(res.Candidates) > 0 {
			res.rank()
			res.Best = res.Candidates[0]
		}
		return res, ferr
	}
	if len(res.Candidates) == 0 {
		return nil, ivr.Infeasible("design space",
			"no feasible converter for %gV->%gV @%gA within %.2g mm2",
			spec.VIn, spec.VOut, spec.IMax, spec.AreaMax*1e6)
	}
	res.rank()
	res.Best = res.Candidates[0]
	return res, nil
}

// exploreExhaustive sweeps the full configuration lattice — the paper's
// flow and the reference path the adaptive strategy is tested against.
func exploreExhaustive(spec Spec, ec *evalContext, res *Result, tr *tracker, eval Evaluator) error {
	// Enumeration resolves the cheap shared context (topology analyses,
	// device lookups) up front; failures there reject exactly as the
	// nested serial loops did. The per-configuration sizing and evaluation
	// — the dominant cost — lands in the ref list.
	refs, pre := ec.enumerate()
	for k := Kind(0); int(k) < numKinds; k++ {
		// Enumeration-time rejections belong to the family being expanded.
		tr.enumRejected(k, pre[k])
		res.Rejected += pre[k]
	}
	tr.addJobs(len(refs))
	outs, ferr := eval(specContext(spec), refs, func(i int, out *RefOutcome) {
		tr.jobDone(refs[i].Kind, out.Candidates, out.Rejected)
	})
	// Merge whatever completed: on an uncancelled run that is every ref;
	// on a cancelled one, the never-started slots are simply empty, so
	// the merge still walks enumeration order with no gaps or tears.
	for i := range outs {
		res.Candidates = append(res.Candidates, outs[i].Candidates...)
		res.Rejected += outs[i].Rejected
	}
	return ferr
}

// scRatios enumerates the SC conversion ratios worth trying for the spec:
// the ideal output must exceed the target with at least 3% regulation
// headroom, and by no more than ~60% (beyond that, efficiency is hopeless).
func scRatios(spec Spec) []*topology.Topology {
	var out []*topology.Topology
	add := func(t *topology.Topology, err error) {
		if err == nil {
			out = append(out, t)
		}
	}
	type ratio struct{ p, q int }
	seen := map[float64]bool{}
	for _, r := range []ratio{{2, 1}, {3, 1}, {4, 1}, {5, 1}, {3, 2}, {4, 3}, {5, 4}, {5, 2}, {5, 3}, {7, 2}, {7, 3}, {8, 3}} {
		m := float64(r.q) / float64(r.p)
		ideal := m * spec.VIn
		if ideal < spec.VOut*1.03 || ideal > spec.VOut*1.6 {
			continue
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		if r.q == 1 || r.q == r.p-1 {
			add(topology.SeriesParallel(r.p, r.q))
		} else {
			add(topology.Ladder(r.p, r.q))
		}
	}
	return out
}

// The evaluation lattices, shared by both search strategies: the
// exhaustive path sweeps them fully, the adaptive path probes them
// coarsely and bisects around the incumbent (search.go). Densities are
// picked for design resolution — ~1.2% steps on the SC capacitor share,
// 29 log-spaced points across the buck frequency decade — at which the
// exhaustive sweep is the high-fidelity reference and the adaptive mode
// earns its keep.
var (
	// scCapKinds is the capacitor-flavour axis of the SC space.
	scCapKinds = []tech.CapacitorKind{tech.DeepTrench, tech.MOSCap, tech.MIMCap}
	// scCapShares is the capacitor area-share lattice.
	scCapShares = linspace(0.50, 0.97, 41)
	// buckFreqs is the buck switching-frequency lattice (Hz).
	buckFreqs = geomspace(30e6, 400e6, 29)
	// ldoSampleFreqs is the digital-LDO sample-frequency lattice (Hz).
	ldoSampleFreqs = []float64{30e6, 60e6, 100e6, 200e6, 300e6}
)

// linspace returns n evenly spaced points over [lo, hi], endpoints exact.
func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// geomspace returns n logarithmically spaced points over [lo, hi],
// endpoints exact.
func geomspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	r := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= r
	}
	out[n-1] = hi
	return out
}

// evalSC sizes and evaluates the two allocation-policy candidates of one
// (topology, cap kind, cap share) cell. Both conductance-allocation
// policies are candidates: the cost-aware split wins when gate drive
// dominates, the plain a_r split when the FSL budget is tight (it keeps
// C·f_sw — and bottom-plate loss — lower).
func evalSC(out *shard, spec Spec, node *tech.Node, an *topology.Analysis,
	capKind tech.CapacitorKind, capOpt tech.CapacitorOption, capShare, usable float64) {
	for _, uniform := range []bool{false, true} {
		evalSCPolicy(out, spec, node, an, capKind, capOpt, capShare, usable, uniform)
	}
}

// evalSCPolicy sizes and evaluates one (topology, cap kind, cap share,
// allocation policy) configuration — the unit the adaptive search counts
// and prunes individually.
func evalSCPolicy(out *shard, spec Spec, node *tech.Node, an *topology.Analysis,
	capKind tech.CapacitorKind, capOpt tech.CapacitorOption, capShare, usable float64, uniform bool) {
	cTot := capOpt.DensityFPerM2 * usable * capShare * 0.9 // 10% to decap
	cDecap := capOpt.DensityFPerM2 * usable * capShare * 0.1
	gTot, err := sc.GTotalForSwitchArea(an, node, spec.VIn, usable*(1-capShare))
	if err != nil {
		out.rejected++
		return
	}
	cfg := sc.Config{
		Analysis: an, Node: node, CapKind: capKind,
		VIn: spec.VIn, VOut: spec.VOut,
		CTotal: cTot, GTotal: gTot, CDecap: cDecap,
		FSwMax:                  spec.FSwMax,
		UniformSwitchAllocation: uniform,
	}
	d, err := sc.New(cfg)
	if err != nil {
		out.rejected++
		return
	}
	m, err := d.Evaluate(spec.IMax)
	if err != nil {
		out.rejected++
		return
	}
	// Interleave to meet the ripple target, then re-evaluate. A design
	// whose interleaved re-evaluation fails is over the ripple target
	// with no way to fix it — reject it rather than keep the
	// single-phase version that already missed the spec.
	if m.RippleVpp > spec.RippleMax {
		n := int(math.Ceil(m.RippleVpp / spec.RippleMax))
		if n > 64 {
			n = 64
		}
		cfg.Interleave = n
		d2, err := sc.New(cfg)
		if err != nil {
			out.rejected++
			return
		}
		m2, err := d2.Evaluate(spec.IMax)
		if err != nil {
			out.rejected++
			return
		}
		d, m = d2, m2
	}
	if m.AreaDie > spec.AreaMax {
		out.rejected++
		return
	}
	out.candidates = append(out.candidates, Candidate{
		Kind:    KindSC,
		Label:   fmt.Sprintf("%s / %v caps / x%d", an.Name, capKind, d.Config().Interleave),
		Metrics: m,
		SC:      d,
	})
}

// evalBuck sizes and evaluates one buck (phase count, frequency) plan.
func evalBuck(out *shard, spec Spec, node *tech.Node, ind tech.InductorOption,
	outCapKind tech.CapacitorKind, phases int, fsw float64) {
	d := spec.VOut / spec.VIn
	iPh := spec.IMax / float64(phases)
	// Target 60% phase-current ripple in CCM. The frequency
	// roll-off coefficient is independent of L0, so the required
	// effective inductance divides by it directly.
	dI := 0.6 * iPh
	lReq := spec.VOut * (1 - d) / (fsw * dI)
	coeff := ind.LEff(1.0, fsw) // roll-off factor at this frequency
	l := lReq / coeff
	if l <= 0 {
		out.rejected++
		return
	}
	// Output capacitance for the ripple target.
	n := float64(phases)
	cOut := dI / (8 * spec.RippleMax * fsw * n * n)
	if cOut < 5e-9 {
		cOut = 5e-9
	}
	cfg := buck.Config{
		Node: node, Inductor: tech.IntegratedThinFilm, OutCap: outCapKind,
		VIn: spec.VIn, VOut: spec.VOut,
		L: l, COut: cOut, FSw: fsw,
		GHigh: 1, GLow: 1, Interleave: phases,
	}
	bd, err := buck.New(cfg)
	if err != nil {
		out.rejected++
		return
	}
	bd, err = bd.OptimizeConductances(spec.IMax)
	if err != nil {
		out.rejected++
		return
	}
	m, err := bd.Evaluate(spec.IMax)
	if err != nil {
		out.rejected++
		return
	}
	if m.AreaDie > spec.AreaMax {
		out.rejected++
		return
	}
	out.candidates = append(out.candidates, Candidate{
		Kind:    KindBuck,
		Label:   fmt.Sprintf("buck x%d @ %.0f MHz", phases, fsw/1e6),
		Metrics: m,
		Buck:    bd,
	})
}

// evalLDO sizes and evaluates one digital-LDO sample-frequency plan.
func evalLDO(out *shard, spec Spec, node *tech.Node, fs float64) {
	headroom := spec.VIn - spec.VOut
	gPass := spec.IMax / headroom * 1.3
	// Output cap sized for the limit-cycle ripple target.
	cOut := spec.IMax / (spec.RippleMax * fs)
	interleave := 1
	// Cap the decap spend at a third of the budget by interleaving.
	capOpt, err := node.Capacitor(tech.DeepTrench)
	if err != nil {
		capOpt, _ = node.Capacitor(tech.MOSCap)
	}
	if a := capOpt.Area(cOut); a > spec.AreaMax/3 {
		shrink := a / (spec.AreaMax / 3)
		interleave = int(math.Ceil(shrink))
		if interleave > 64 {
			interleave = 64
		}
		cOut /= shrink
	}
	cfg := ldo.Config{
		Node: node, VIn: spec.VIn, VOut: spec.VOut,
		GPass: gPass, COut: cOut, FSample: fs, Interleave: interleave,
	}
	ld, err := ldo.New(cfg)
	if err != nil {
		out.rejected++
		return
	}
	m, err := ld.Evaluate(spec.IMax)
	if err != nil {
		out.rejected++
		return
	}
	if m.AreaDie > spec.AreaMax {
		out.rejected++
		return
	}
	out.candidates = append(out.candidates, Candidate{
		Kind:    KindLDO,
		Label:   fmt.Sprintf("digital LDO @ %.0f MHz x%d", fs/1e6, interleave),
		Metrics: m,
		LDO:     ld,
	})
}

// rank orders candidates per the objective. The order is total: objective
// ties fall through to the canonical candidate key and rows with
// non-finite metrics sort last, so the ranked list is byte-identical for
// any input permutation (see pareto.go).
func (r *Result) rank() {
	less := rankLess(r.Spec.Objective, r.Spec.EfficiencyFloor)
	sort.Slice(r.Candidates, func(i, j int) bool { return less(r.Candidates[i], r.Candidates[j]) })
}

// BestOfKind returns the top-ranked candidate of the given family, or false
// when none is feasible.
func (r *Result) BestOfKind(k Kind) (Candidate, bool) {
	for _, c := range r.Candidates {
		if c.Kind == k {
			return c, true
		}
	}
	return Candidate{}, false
}

// ParetoFront returns the candidates not dominated in the
// (efficiency up, area down) plane, sorted by area then canonical key —
// the trade-off curve a designer actually chooses from when neither
// objective is absolute. Rows with non-finite metrics are excluded; the
// front is built by incremental insertion (see ParetoSet) and is
// independent of candidate order.
func (r *Result) ParetoFront() []Candidate {
	p := NewParetoSet()
	for _, c := range r.Candidates {
		p.Insert(c)
	}
	return p.Front()
}

// MultiObjectiveFront is the three-objective flavour of ParetoFront:
// candidates not dominated in (efficiency up, area down, ripple down).
func (r *Result) MultiObjectiveFront() []Candidate {
	p := NewParetoSetNoise()
	for _, c := range r.Candidates {
		p.Insert(c)
	}
	return p.Front()
}
