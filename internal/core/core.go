// Package core is the Ivory framework proper: it ties the technology
// database, topology analysis, converter static models, and dynamic models
// together behind the four modules of the paper's Fig. 2 — system
// parameters, static design trade-offs, dynamic feedback response, and
// design optimization.
//
// The entry point is Explore: given the user's high-level specification
// (input/output voltage, maximum load current, area budget, optimization
// objective — the paper's Table 1 inputs), it enumerates SC conversion
// ratios and capacitor flavours, buck frequency/phase plans, and LDO
// configurations, sizes each candidate within the area budget, evaluates
// it with the static models, and returns the ranked candidates.
package core

import (
	"fmt"
	"math"
	"sort"

	"ivory/internal/buck"
	"ivory/internal/ivr"
	"ivory/internal/ldo"
	"ivory/internal/sc"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

// Objective selects what the design optimizer maximizes/minimizes.
type Objective int

const (
	// MaxEfficiency maximizes conversion efficiency at full load (the
	// paper's default, minimizing power delivery overhead).
	MaxEfficiency Objective = iota
	// MinArea minimizes die area among candidates above the efficiency
	// floor.
	MinArea
	// MinNoise minimizes static output ripple.
	MinNoise
)

func (o Objective) String() string {
	switch o {
	case MaxEfficiency:
		return "max-efficiency"
	case MinArea:
		return "min-area"
	case MinNoise:
		return "min-noise"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Kind identifies the converter family of a candidate.
type Kind int

const (
	// KindSC marks switched-capacitor candidates.
	KindSC Kind = iota
	// KindBuck marks buck candidates.
	KindBuck
	// KindLDO marks linear-regulator candidates.
	KindLDO
)

func (k Kind) String() string {
	switch k {
	case KindSC:
		return "SC"
	case KindBuck:
		return "buck"
	case KindLDO:
		return "LDO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is the user's high-level input (paper Table 1).
type Spec struct {
	// NodeName selects the technology node (e.g. "45nm").
	NodeName string
	// VIn and VOut are the converter input voltage and regulation target.
	VIn, VOut float64
	// IMax is the maximum load current the converter must sustain (A).
	IMax float64
	// AreaMax is the die-area budget (m²).
	AreaMax float64
	// RippleMax is the static ripple target (V); zero selects 1% of VOut.
	RippleMax float64
	// Objective selects the optimization target (default MaxEfficiency).
	Objective Objective
	// EfficiencyFloor prunes candidates below this efficiency for the
	// MinArea/MinNoise objectives (default 0.25).
	EfficiencyFloor float64
	// Kinds restricts the families explored; empty means all three.
	Kinds []Kind
	// FSwMax bounds switching frequency (default 1 GHz).
	FSwMax float64
}

func (s *Spec) defaults() error {
	if s.NodeName == "" {
		return fmt.Errorf("core: Spec.NodeName is required")
	}
	// NaN compares false against everything, so the positivity checks
	// below would silently wave NaNs through; reject them explicitly.
	for _, v := range []float64{s.VIn, s.VOut, s.IMax, s.AreaMax, s.RippleMax, s.FSwMax, s.EfficiencyFloor} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: Spec contains a NaN/Inf field")
		}
	}
	if s.VIn <= 0 || s.VOut <= 0 || s.VOut >= s.VIn {
		return fmt.Errorf("core: need 0 < VOut < VIn (got %g, %g)", s.VOut, s.VIn)
	}
	if s.IMax <= 0 {
		return fmt.Errorf("core: IMax must be positive")
	}
	if s.AreaMax <= 0 {
		return fmt.Errorf("core: AreaMax must be positive")
	}
	if s.RippleMax == 0 {
		s.RippleMax = 0.01 * s.VOut
	}
	if s.EfficiencyFloor == 0 {
		s.EfficiencyFloor = 0.25
	}
	if s.FSwMax == 0 {
		s.FSwMax = 1e9
	}
	if len(s.Kinds) == 0 {
		s.Kinds = []Kind{KindSC, KindBuck, KindLDO}
	}
	return nil
}

// Candidate is one evaluated design point.
type Candidate struct {
	// Kind is the converter family.
	Kind Kind
	// Label describes the configuration (ratio, cap kind, phases...).
	Label string
	// Metrics is the static evaluation at IMax.
	Metrics ivr.Metrics
	// SC, Buck, LDO holds the underlying design (exactly one non-nil).
	SC   *sc.Design
	Buck *buck.Design
	LDO  *ldo.Design
}

// Result is the outcome of a design-space exploration.
type Result struct {
	// Spec echoes the (defaulted) input.
	Spec Spec
	// Best is the winning candidate under the objective.
	Best Candidate
	// Candidates holds every feasible design, ranked best-first.
	Candidates []Candidate
	// Rejected counts configurations that failed sizing or feasibility.
	Rejected int
}

// Explore runs the design optimization module over the full space.
func Explore(spec Spec) (*Result, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	node, err := tech.Lookup(spec.NodeName)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec}
	for _, k := range spec.Kinds {
		switch k {
		case KindSC:
			res.exploreSC(spec, node)
		case KindBuck:
			res.exploreBuck(spec, node)
		case KindLDO:
			res.exploreLDO(spec, node)
		}
	}
	if len(res.Candidates) == 0 {
		return nil, ivr.Infeasible("design space",
			"no feasible converter for %gV->%gV @%gA within %.2g mm2",
			spec.VIn, spec.VOut, spec.IMax, spec.AreaMax*1e6)
	}
	res.rank()
	res.Best = res.Candidates[0]
	return res, nil
}

// scRatios enumerates the SC conversion ratios worth trying for the spec:
// the ideal output must exceed the target with at least 3% regulation
// headroom, and by no more than ~60% (beyond that, efficiency is hopeless).
func scRatios(spec Spec) []*topology.Topology {
	var out []*topology.Topology
	add := func(t *topology.Topology, err error) {
		if err == nil {
			out = append(out, t)
		}
	}
	type ratio struct{ p, q int }
	seen := map[float64]bool{}
	for _, r := range []ratio{{2, 1}, {3, 1}, {4, 1}, {5, 1}, {3, 2}, {4, 3}, {5, 4}, {5, 2}, {5, 3}, {7, 2}, {7, 3}, {8, 3}} {
		m := float64(r.q) / float64(r.p)
		ideal := m * spec.VIn
		if ideal < spec.VOut*1.03 || ideal > spec.VOut*1.6 {
			continue
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		if r.q == 1 || r.q == r.p-1 {
			add(topology.SeriesParallel(r.p, r.q))
		} else {
			add(topology.Ladder(r.p, r.q))
		}
	}
	return out
}

func (r *Result) exploreSC(spec Spec, node *tech.Node) {
	usable := 0.80 * spec.AreaMax // controller/routing reserve
	for _, top := range scRatios(spec) {
		an, err := top.Analyze()
		if err != nil {
			r.Rejected++
			continue
		}
		for _, capKind := range []tech.CapacitorKind{tech.DeepTrench, tech.MOSCap, tech.MIMCap} {
			capOpt, err := node.Capacitor(capKind)
			if err != nil {
				continue
			}
			for _, capShare := range []float64{0.50, 0.70, 0.85, 0.93, 0.97} {
				cTot := capOpt.DensityFPerM2 * usable * capShare * 0.9 // 10% to decap
				cDecap := capOpt.DensityFPerM2 * usable * capShare * 0.1
				gTot, err := sc.GTotalForSwitchArea(an, node, spec.VIn, usable*(1-capShare))
				if err != nil {
					r.Rejected++
					continue
				}
				// Both conductance-allocation policies are candidates: the
				// cost-aware split wins when gate drive dominates, the
				// plain a_r split when the FSL budget is tight (it keeps
				// C·f_sw — and bottom-plate loss — lower).
				for _, uniform := range []bool{false, true} {
					cfg := sc.Config{
						Analysis: an, Node: node, CapKind: capKind,
						VIn: spec.VIn, VOut: spec.VOut,
						CTotal: cTot, GTotal: gTot, CDecap: cDecap,
						FSwMax:                  spec.FSwMax,
						UniformSwitchAllocation: uniform,
					}
					d, err := sc.New(cfg)
					if err != nil {
						r.Rejected++
						continue
					}
					m, err := d.Evaluate(spec.IMax)
					if err != nil {
						r.Rejected++
						continue
					}
					// Interleave to meet the ripple target, then re-evaluate.
					if m.RippleVpp > spec.RippleMax {
						n := int(math.Ceil(m.RippleVpp / spec.RippleMax))
						if n > 64 {
							n = 64
						}
						cfg.Interleave = n
						if d2, err2 := sc.New(cfg); err2 == nil {
							if m2, err2 := d2.Evaluate(spec.IMax); err2 == nil {
								d, m = d2, m2
							}
						}
					}
					if m.AreaDie > spec.AreaMax {
						r.Rejected++
						continue
					}
					r.Candidates = append(r.Candidates, Candidate{
						Kind:    KindSC,
						Label:   fmt.Sprintf("%s / %v caps / x%d", an.Name, capKind, d.Config().Interleave),
						Metrics: m,
						SC:      d,
					})
				}
			}
		}
	}
}

func (r *Result) exploreBuck(spec Spec, node *tech.Node) {
	ind, err := node.Inductor(tech.IntegratedThinFilm)
	if err != nil {
		r.Rejected++
		return
	}
	outCapKind := tech.DeepTrench
	if _, err := node.Capacitor(outCapKind); err != nil {
		outCapKind = tech.MOSCap
	}
	// Phase count from inductor saturation with 25% headroom.
	minPhases := int(math.Ceil(spec.IMax / (ind.IMax * 0.8)))
	for _, phases := range []int{minPhases, minPhases * 2} {
		if phases < 1 || phases > 64 {
			continue
		}
		for _, fsw := range []float64{30e6, 60e6, 100e6, 150e6, 250e6, 400e6} {
			if fsw > spec.FSwMax {
				continue
			}
			d := spec.VOut / spec.VIn
			iPh := spec.IMax / float64(phases)
			// Target 60% phase-current ripple in CCM. The frequency
			// roll-off coefficient is independent of L0, so the required
			// effective inductance divides by it directly.
			dI := 0.6 * iPh
			lReq := spec.VOut * (1 - d) / (fsw * dI)
			coeff := ind.LEff(1.0, fsw) // roll-off factor at this frequency
			l := lReq / coeff
			if l <= 0 {
				r.Rejected++
				continue
			}
			// Output capacitance for the ripple target.
			n := float64(phases)
			cOut := dI / (8 * spec.RippleMax * fsw * n * n)
			if cOut < 5e-9 {
				cOut = 5e-9
			}
			cfg := buck.Config{
				Node: node, Inductor: tech.IntegratedThinFilm, OutCap: outCapKind,
				VIn: spec.VIn, VOut: spec.VOut,
				L: l, COut: cOut, FSw: fsw,
				GHigh: 1, GLow: 1, Interleave: phases,
			}
			bd, err := buck.New(cfg)
			if err != nil {
				r.Rejected++
				continue
			}
			bd, err = bd.OptimizeConductances(spec.IMax)
			if err != nil {
				r.Rejected++
				continue
			}
			m, err := bd.Evaluate(spec.IMax)
			if err != nil {
				r.Rejected++
				continue
			}
			if m.AreaDie > spec.AreaMax {
				r.Rejected++
				continue
			}
			r.Candidates = append(r.Candidates, Candidate{
				Kind:    KindBuck,
				Label:   fmt.Sprintf("buck x%d @ %.0f MHz", phases, fsw/1e6),
				Metrics: m,
				Buck:    bd,
			})
		}
	}
}

func (r *Result) exploreLDO(spec Spec, node *tech.Node) {
	headroom := spec.VIn - spec.VOut
	gPass := spec.IMax / headroom * 1.3
	for _, fs := range []float64{30e6, 100e6, 300e6} {
		if fs > spec.FSwMax {
			continue
		}
		// Output cap sized for the limit-cycle ripple target.
		cOut := spec.IMax / (spec.RippleMax * fs)
		interleave := 1
		// Cap the decap spend at a third of the budget by interleaving.
		capOpt, err := node.Capacitor(tech.DeepTrench)
		if err != nil {
			capOpt, _ = node.Capacitor(tech.MOSCap)
		}
		if a := capOpt.Area(cOut); a > spec.AreaMax/3 {
			shrink := a / (spec.AreaMax / 3)
			interleave = int(math.Ceil(shrink))
			if interleave > 64 {
				interleave = 64
			}
			cOut /= shrink
		}
		cfg := ldo.Config{
			Node: node, VIn: spec.VIn, VOut: spec.VOut,
			GPass: gPass, COut: cOut, FSample: fs, Interleave: interleave,
		}
		ld, err := ldo.New(cfg)
		if err != nil {
			r.Rejected++
			continue
		}
		m, err := ld.Evaluate(spec.IMax)
		if err != nil {
			r.Rejected++
			continue
		}
		if m.AreaDie > spec.AreaMax {
			r.Rejected++
			continue
		}
		r.Candidates = append(r.Candidates, Candidate{
			Kind:    KindLDO,
			Label:   fmt.Sprintf("digital LDO @ %.0f MHz x%d", fs/1e6, interleave),
			Metrics: m,
			LDO:     ld,
		})
	}
}

// rank orders candidates per the objective.
func (r *Result) rank() {
	obj := r.Spec.Objective
	floor := r.Spec.EfficiencyFloor
	less := func(a, b Candidate) bool {
		switch obj {
		case MinArea:
			aOK, bOK := a.Metrics.Efficiency >= floor, b.Metrics.Efficiency >= floor
			if aOK != bOK {
				return aOK
			}
			return a.Metrics.AreaDie < b.Metrics.AreaDie
		case MinNoise:
			aOK, bOK := a.Metrics.Efficiency >= floor, b.Metrics.Efficiency >= floor
			if aOK != bOK {
				return aOK
			}
			return a.Metrics.RippleVpp < b.Metrics.RippleVpp
		default:
			return a.Metrics.Efficiency > b.Metrics.Efficiency
		}
	}
	sort.SliceStable(r.Candidates, func(i, j int) bool { return less(r.Candidates[i], r.Candidates[j]) })
}

// BestOfKind returns the top-ranked candidate of the given family, or false
// when none is feasible.
func (r *Result) BestOfKind(k Kind) (Candidate, bool) {
	for _, c := range r.Candidates {
		if c.Kind == k {
			return c, true
		}
	}
	return Candidate{}, false
}

// ParetoFront returns the candidates not dominated in the
// (efficiency up, area down) plane, sorted by area — the trade-off curve a
// designer actually chooses from when neither objective is absolute.
func (r *Result) ParetoFront() []Candidate {
	var front []Candidate
	for _, c := range r.Candidates {
		dominated := false
		for _, d := range r.Candidates {
			if d.Metrics.Efficiency >= c.Metrics.Efficiency &&
				d.Metrics.AreaDie <= c.Metrics.AreaDie &&
				(d.Metrics.Efficiency > c.Metrics.Efficiency || d.Metrics.AreaDie < c.Metrics.AreaDie) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		return front[i].Metrics.AreaDie < front[j].Metrics.AreaDie
	})
	return front
}
