// Package buck implements Ivory's static model of buck-converter IVRs,
// extending the accepted off-chip VRM loss model (the paper's ref [15]) to
// on-chip regulators: switch conduction and gate losses come from the
// technology database, and the pronounced frequency dependence of
// integrated inductors is captured by a polynomial-fitted L(f) coefficient,
// exactly as the paper describes.
//
// A buck regulates by duty-cycle modulation at a fixed switching frequency
// and — unlike a switched-capacitor converter — sustains a roughly constant
// efficiency across a wide output range, the key qualitative difference the
// design-space exploration exposes.
package buck

import (
	"fmt"
	"math"

	"ivory/internal/ivr"
	"ivory/internal/numeric"
	"ivory/internal/tech"
)

// Config parameterizes a buck converter design point.
type Config struct {
	// Node is the technology node.
	Node *tech.Node
	// Inductor selects the inductor implementation.
	Inductor tech.InductorKind
	// OutCap selects the output capacitor flavour.
	OutCap tech.CapacitorKind
	// VIn and VOut are the input voltage and regulation target (V).
	VIn, VOut float64
	// L is the per-phase inductance (H).
	L float64
	// COut is the total output capacitance (F).
	COut float64
	// FSw is the fixed switching frequency (Hz).
	FSw float64
	// GHigh and GLow are the per-phase high-side / low-side switch
	// conductances (S).
	GHigh, GLow float64
	// Interleave is the number of phases; defaults to 1.
	Interleave int
	// AllowDCM permits operation below the CCM boundary; when false,
	// Evaluate reports infeasibility if the phase current ripple exceeds
	// twice the per-phase load current.
	AllowDCM bool
	// IgnoreInductorRollOff disables the frequency-dependent inductance
	// coefficient (the paper's polynomial-fitted L(f) model), treating the
	// inductor as ideal. Exposed for the ablation study: ignoring the
	// roll-off underestimates current ripple and losses at high f_sw.
	IgnoreInductorRollOff bool
}

// Design is a validated buck converter.
type Design struct {
	cfg Config

	ind    tech.InductorOption
	outCap tech.CapacitorOption

	devHS, devLS     tech.SwitchDevice
	stackHS, stackLS int
	wHS, wLS         float64
}

const (
	driverTax   = 1.3
	routingTax  = 1.10
	ctrlGates   = 2000 // PWM + compensator is busier than an SC hysteretic loop
	clockGates  = 400
	ctrlStaticW = 60e-6
)

// New validates the configuration and maps switches onto technology devices.
func New(cfg Config) (*Design, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("buck: Config.Node is required")
	}
	if cfg.VIn <= 0 || cfg.VOut <= 0 {
		return nil, fmt.Errorf("buck: voltages must be positive")
	}
	if cfg.VOut >= cfg.VIn {
		return nil, ivr.Infeasible("buck", "VOut %.3g V must be below VIn %.3g V", cfg.VOut, cfg.VIn)
	}
	if cfg.L <= 0 || cfg.COut <= 0 || cfg.FSw <= 0 {
		return nil, fmt.Errorf("buck: L, COut, and FSw must be positive")
	}
	if cfg.GHigh <= 0 || cfg.GLow <= 0 {
		return nil, fmt.Errorf("buck: switch conductances must be positive")
	}
	if cfg.Interleave == 0 {
		cfg.Interleave = 1
	}
	if cfg.Interleave < 1 {
		return nil, fmt.Errorf("buck: interleave %d must be >= 1", cfg.Interleave)
	}
	ind, err := cfg.Node.Inductor(cfg.Inductor)
	if err != nil {
		return nil, err
	}
	oc, err := cfg.Node.Capacitor(cfg.OutCap)
	if err != nil {
		return nil, err
	}
	if cfg.VOut > oc.VMax*1.001 {
		return nil, ivr.Infeasible("buck", "output capacitor rated %.2f V below VOut %.2f V", oc.VMax, cfg.VOut)
	}
	d := &Design{cfg: cfg, ind: ind, outCap: oc}
	// Both switches block the full input voltage (switching node swings
	// rail to rail).
	d.devHS, d.stackHS, err = cfg.Node.SwitchForVoltage(cfg.VIn)
	if err != nil {
		return nil, err
	}
	d.devLS, d.stackLS, err = cfg.Node.SwitchForVoltage(cfg.VIn)
	if err != nil {
		return nil, err
	}
	d.wHS = float64(d.stackHS) * d.devHS.ROnWidth * cfg.GHigh
	d.wLS = float64(d.stackLS) * d.devLS.ROnWidth * cfg.GLow
	return d, nil
}

// Config returns the (defaulted) configuration.
func (d *Design) Config() Config { return d.cfg }

// LEff returns the effective per-phase inductance at the switching
// frequency, after the integrated inductor's roll-off (unless disabled).
func (d *Design) LEff() float64 {
	if d.cfg.IgnoreInductorRollOff {
		return d.cfg.L
	}
	return d.ind.LEff(d.cfg.L, d.cfg.FSw)
}

// Duty returns the steady-state duty cycle including the first-order
// conduction-drop correction.
func (d *Design) Duty(iLoad float64) float64 {
	cfg := d.cfg
	iPh := iLoad / float64(cfg.Interleave)
	rhs := 1 / cfg.GHigh
	rls := 1 / cfg.GLow
	rl := d.ind.Resistance(cfg.L, cfg.FSw)
	num := cfg.VOut + iPh*(rls+rl)
	den := cfg.VIn - iPh*(rhs-rls)
	if den <= 0 {
		return 1
	}
	return num / den
}

// RippleCurrent returns the per-phase peak-to-peak inductor current ripple.
func (d *Design) RippleCurrent(iLoad float64) float64 {
	cfg := d.cfg
	dty := d.Duty(iLoad)
	return cfg.VOut * (1 - dty) / (d.LEff() * cfg.FSw)
}

// RippleVoltage returns the output voltage ripple. Interleaving multiplies
// the effective ripple frequency by N and cancels a ~1/N fraction of the
// amplitude, so the combined attenuation scales as 1/N².
func (d *Design) RippleVoltage(iLoad float64) float64 {
	cfg := d.cfg
	n := float64(cfg.Interleave)
	di := d.RippleCurrent(iLoad)
	return di / (8 * cfg.COut * cfg.FSw * n * n)
}

// switchTime returns the voltage-current overlap interval of a hard
// transition, proportional to the node's gate delay (~4 FO4 delays; an FO4
// is roughly 0.5 ns per micron of feature size, so 2e-3 s/m of feature).
func (d *Design) switchTime() float64 {
	return 2e-3 * d.cfg.Node.FeatureM // ~90 ps at 45 nm
}

// Evaluate computes the static metrics at load current iLoad (A).
func (d *Design) Evaluate(iLoad float64) (ivr.Metrics, error) {
	cfg := d.cfg
	if iLoad < 0 {
		return ivr.Metrics{}, fmt.Errorf("buck: negative load current")
	}
	n := float64(cfg.Interleave)
	iPh := iLoad / n
	dty := d.Duty(iLoad)
	if dty >= 1 {
		return ivr.Metrics{}, ivr.Infeasible("buck", "duty saturates at %.3g A — conduction drop exceeds headroom", iLoad)
	}
	di := d.RippleCurrent(iLoad)
	if !cfg.AllowDCM && iLoad > 0 && di/2 > iPh {
		return ivr.Metrics{}, ivr.Infeasible("buck",
			"phase ripple %.3g A exceeds CCM boundary at %.3g A/phase — increase L or allow DCM", di, iPh)
	}
	if iPh+di/2 > d.ind.IMax {
		return ivr.Metrics{}, ivr.Infeasible("buck",
			"peak phase current %.3g A exceeds inductor saturation %.3g A", iPh+di/2, d.ind.IMax)
	}
	iRms2 := iPh*iPh + di*di/12

	var loss ivr.LossBreakdown
	rhs := 1 / cfg.GHigh
	rls := 1 / cfg.GLow
	loss.Conduction = n * iRms2 * (dty*rhs + (1-dty)*rls)
	loss.Magnetic = n * iRms2 * d.ind.Resistance(cfg.L, cfg.FSw)

	// Gate drive of both switches each cycle, per phase.
	vdrHS := d.devHS.VDrive
	vdrLS := d.devLS.VDrive
	loss.GateDrive = n * cfg.FSw * (d.devHS.CGate(d.wHS)*vdrHS*vdrHS + d.devLS.CGate(d.wLS)*vdrLS*vdrLS) * driverTax

	// Hard-switching overlap on the high side plus switching-node
	// drain-capacitance loss.
	tsw := d.switchTime()
	loss.Parasitic = n * cfg.FSw * (cfg.VIn*iPh*tsw + (d.devHS.CDrain(d.wHS)+d.devLS.CDrain(d.wLS))*cfg.VIn*cfg.VIn)

	// Off-state leakage: each switch is off most of the complementary
	// interval.
	loss.Leakage = n * ((1-dty)*d.devHS.Leakage(d.wHS) + dty*d.devLS.Leakage(d.wLS)) * cfg.VIn

	eg := cfg.Node.LogicEnergyPerGateJ
	loss.Control = ctrlStaticW + cfg.FSw*eg*float64(ctrlGates+clockGates*cfg.Interleave)

	pOut := cfg.VOut * iLoad
	eff := 0.0
	if pOut > 0 {
		eff = pOut / (pOut + loss.Total())
	}
	m := ivr.Metrics{
		Topology:   fmt.Sprintf("buck %dphase", cfg.Interleave),
		VIn:        cfg.VIn,
		VOut:       cfg.VOut,
		ILoad:      iLoad,
		POut:       pOut,
		Loss:       loss,
		Efficiency: eff,
		RippleVpp:  d.RippleVoltage(iLoad),
		FSw:        cfg.FSw,
		AreaDie:    d.AreaDie(),
		AreaBoard:  d.AreaBoard(),
	}
	if err := m.Finite(); err != nil {
		return ivr.Metrics{}, err
	}
	return m, nil
}

// AreaDie returns the silicon area (m²): integrated inductors, output caps,
// switches, and controller.
func (d *Design) AreaDie() float64 {
	cfg := d.cfg
	a := 0.0
	if d.ind.DensityHPerM2 > 0 { // integrated inductor lives on-die
		a += float64(cfg.Interleave) * d.ind.Area(cfg.L)
	}
	a += d.outCap.Area(cfg.COut)
	a += float64(d.stackHS)*d.devHS.Area(d.wHS) + float64(d.stackLS)*d.devLS.Area(d.wLS)
	f := cfg.Node.FeatureM
	a += float64(ctrlGates+clockGates*cfg.Interleave) * 40 * f * f * 25
	return a * routingTax
}

// AreaBoard returns the board footprint (m²) of discrete inductors, zero
// for fully integrated designs.
func (d *Design) AreaBoard() float64 {
	if d.ind.DensityHPerM2 > 0 {
		return 0
	}
	return float64(d.cfg.Interleave) * d.ind.FixedAreaM2
}

// OptimizeConductances returns a copy of the design with the high/low-side
// conductances set to the conduction-vs-gate-loss optimum at the given load:
// G* = I_phase · sqrt(weight / (f_sw·κ)) per switch, where κ is the
// device's R·C·V² cost.
func (d *Design) OptimizeConductances(iLoad float64) (*Design, error) {
	cfg := d.cfg
	iPh := iLoad / float64(cfg.Interleave)
	if iPh <= 0 {
		return nil, fmt.Errorf("buck: OptimizeConductances needs a positive load")
	}
	dty := cfg.VOut / cfg.VIn
	opt := func(dev tech.SwitchDevice, stack int, weight float64) float64 {
		vdr := dev.VDrive
		kappa := float64(stack*stack) * dev.ROnWidth * dev.CGatePerWidth * vdr * vdr * driverTax
		return iPh * math.Sqrt(weight/(cfg.FSw*kappa))
	}
	cfg.GHigh = opt(d.devHS, d.stackHS, dty)
	cfg.GLow = opt(d.devLS, d.stackLS, 1-dty)
	if err := numeric.AllFinite("buck: optimized conductances", cfg.GHigh, cfg.GLow); err != nil {
		return nil, err
	}
	return New(cfg)
}

// EfficiencyCurve sweeps the regulation target from vLo to vHi at fixed
// load, returning achieved V_out and efficiency — the buck counterpart of
// the paper's Fig. 8 validation curves. Infeasible points are omitted.
func (d *Design) EfficiencyCurve(iLoad, vLo, vHi float64, points int) (vout, eff []float64) {
	if points < 2 {
		points = 2
	}
	for k := 0; k < points; k++ {
		target := vLo + (vHi-vLo)*float64(k)/float64(points-1)
		cfg := d.cfg
		cfg.VOut = target
		dd, err := New(cfg)
		if err != nil {
			continue
		}
		m, err := dd.Evaluate(iLoad)
		if err != nil {
			continue
		}
		vout = append(vout, m.VOut)
		eff = append(eff, m.Efficiency)
	}
	return vout, eff
}
