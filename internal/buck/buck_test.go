package buck

import (
	"errors"
	"math"
	"testing"

	"ivory/internal/ivr"
	"ivory/internal/tech"
)

func baseConfig() Config {
	return Config{
		Node:       tech.MustLookup("45nm"),
		Inductor:   tech.IntegratedThinFilm,
		OutCap:     tech.DeepTrench,
		VIn:        3.3,
		VOut:       1.0,
		L:          6e-9,
		COut:       40e-9,
		FSw:        150e6,
		GHigh:      4,
		GLow:       6,
		Interleave: 4,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := baseConfig()
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Node = nil
	if _, err := New(bad); err == nil {
		t.Error("nil node must fail")
	}
	bad = cfg
	bad.VOut = 3.5
	if _, err := New(bad); err == nil {
		t.Error("VOut above VIn must fail")
	}
	bad = cfg
	bad.L = 0
	if _, err := New(bad); err == nil {
		t.Error("zero L must fail")
	}
	bad = cfg
	bad.GHigh = 0
	if _, err := New(bad); err == nil {
		t.Error("zero conductance must fail")
	}
	bad = cfg
	bad.Interleave = -1
	if _, err := New(bad); err == nil {
		t.Error("negative interleave must fail")
	}
	// Defaults.
	def := cfg
	def.Interleave = 0
	d, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	if d.Config().Interleave != 1 {
		t.Error("interleave default not applied")
	}
}

func TestDutyCycleBehaviour(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	d0 := d.Duty(0)
	if math.Abs(d0-1.0/3.3) > 1e-9 {
		t.Errorf("no-load duty = %v, want %v", d0, 1.0/3.3)
	}
	// Duty rises with load to cover conduction drops.
	if d.Duty(2) <= d0 {
		t.Error("duty must rise with load")
	}
}

func TestRippleScalesInverselyWithLAndF(t *testing.T) {
	cfg := baseConfig()
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.L = 2 * cfg.L
	d2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	i := 2.0
	if r1, r2 := d1.RippleCurrent(i), d2.RippleCurrent(i); r2 >= r1 {
		t.Errorf("doubling L should cut current ripple: %v -> %v", r1, r2)
	}
	cfg3 := cfg
	cfg3.FSw = 2 * cfg.FSw
	d3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if r1, r3 := d1.RippleCurrent(i), d3.RippleCurrent(i); r3 >= r1 {
		t.Errorf("doubling fsw should cut current ripple: %v -> %v", r1, r3)
	}
}

func TestInterleaveReducesVoltageRipple(t *testing.T) {
	cfg := baseConfig()
	cfg.Interleave = 1
	cfg.GHigh, cfg.GLow = 8, 12 // keep per-phase current sane
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := cfg
	cfg4.Interleave = 4
	d4, err := New(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	i := 1.5
	r1 := d1.RippleVoltage(i)
	r4 := d4.RippleVoltage(i)
	if r4 >= r1/4 {
		t.Errorf("4-phase ripple %v should be well below single-phase %v", r4, r1)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Evaluate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Efficiency <= 0.4 || m.Efficiency >= 0.95 {
		t.Errorf("buck efficiency out of band: %v", m.Efficiency)
	}
	if m.Loss.Magnetic <= 0 || m.Loss.Conduction <= 0 || m.Loss.GateDrive <= 0 {
		t.Errorf("loss breakdown incomplete: %+v", m.Loss)
	}
	if m.AreaDie <= 0 {
		t.Error("die area must be positive for integrated inductor")
	}
	if m.AreaBoard != 0 {
		t.Error("integrated design must have zero board area")
	}
	if m.RippleVpp <= 0 {
		t.Error("ripple must be positive")
	}
}

func TestCCMBoundaryEnforced(t *testing.T) {
	cfg := baseConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Very light load with big ripple: DCM.
	_, err = d.Evaluate(0.05)
	var inf *ivr.InfeasibleError
	if !errors.As(err, &inf) {
		t.Errorf("expected DCM infeasibility, got %v", err)
	}
	cfgDCM := cfg
	cfgDCM.AllowDCM = true
	dd, err := New(cfgDCM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dd.Evaluate(0.05); err != nil {
		t.Errorf("AllowDCM should permit light load: %v", err)
	}
}

func TestInductorSaturationEnforced(t *testing.T) {
	cfg := baseConfig()
	cfg.Interleave = 1
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Evaluate(5.0) // > 2.5 A thin-film saturation
	var inf *ivr.InfeasibleError
	if !errors.As(err, &inf) {
		t.Errorf("expected saturation infeasibility, got %v", err)
	}
}

func TestSurfaceMountUsesBoardArea(t *testing.T) {
	cfg := baseConfig()
	cfg.Inductor = tech.SurfaceMount
	cfg.L = 400e-9
	cfg.FSw = 3e6
	cfg.COut = 5e-6
	cfg.OutCap = tech.MIMCap
	cfg.Interleave = 1
	cfg.GHigh, cfg.GLow = 20, 30
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Evaluate(3.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.AreaBoard <= 0 {
		t.Error("surface-mount inductor must consume board area")
	}
	// Off-chip-style buck at low frequency should be quite efficient.
	if m.Efficiency < 0.8 {
		t.Errorf("VRM-class buck efficiency too low: %v", m.Efficiency)
	}
}

func TestEfficiencyRelativelyFlatAcrossVOut(t *testing.T) {
	// The buck's defining property vs SC: broadly flat efficiency across
	// the output range (paper §2.1).
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err = d.OptimizeConductances(2.0)
	if err != nil {
		t.Fatal(err)
	}
	vout, eff := d.EfficiencyCurve(2.0, 0.8, 1.4, 10)
	if len(eff) < 8 {
		t.Fatalf("curve too short: %d", len(eff))
	}
	mn, mx := eff[0], eff[0]
	for _, e := range eff {
		if e < mn {
			mn = e
		}
		if e > mx {
			mx = e
		}
	}
	if mx-mn > 0.2 {
		t.Errorf("buck efficiency swings too much across VOut: [%v, %v] over %v..%v",
			mn, mx, vout[0], vout[len(vout)-1])
	}
	// No efficiency cliff anywhere in the range: all points feasible.
	if len(vout) != 10 {
		t.Errorf("buck should have no infeasible cliff in-range: %d/10 points", len(vout))
	}
}

func TestOptimizeConductances(t *testing.T) {
	cfg := baseConfig()
	cfg.GHigh, cfg.GLow = 0.3, 0.3 // deliberately bad
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := d.Evaluate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	dOpt, err := d.OptimizeConductances(2.0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := dOpt.Evaluate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Efficiency <= m0.Efficiency {
		t.Errorf("optimized conductances should improve efficiency: %v -> %v",
			m0.Efficiency, m1.Efficiency)
	}
	if _, err := d.OptimizeConductances(0); err == nil {
		t.Error("zero load must fail")
	}
}

func TestFrequencyDependentInductance(t *testing.T) {
	cfg := baseConfig()
	dLow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgHi := cfg
	cfgHi.FSw = 800e6
	dHi, err := New(cfgHi)
	if err != nil {
		t.Fatal(err)
	}
	if dHi.LEff() >= dLow.LEff() {
		t.Errorf("L_eff should roll off with frequency: %v vs %v", dHi.LEff(), dLow.LEff())
	}
}
