package numeric

import (
	"fmt"
	"math"
)

// This file holds the shared finiteness guards the model packages call at
// their return boundaries, plus the epsilon comparison the floatcmp lint
// rule points at. The paper's accuracy claim rests on the optimizer
// ranking millions of candidate designs by efficiency; a single NaN in
// that stream compares false with everything and silently corrupts the
// ranking instead of crashing, so pathological sweep points must be
// turned into errors at the model boundary.

// Finite returns an error when v is NaN or ±Inf, naming the offending
// quantity.
func Finite(name string, v float64) error {
	if math.IsNaN(v) {
		return fmt.Errorf("numeric: %s is NaN", name)
	}
	if math.IsInf(v, 0) {
		return fmt.Errorf("numeric: %s is %v", name, v)
	}
	return nil
}

// AllFinite checks every value and reports the first non-finite one by
// index.
func AllFinite(name string, vs ...float64) error {
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("numeric: %s[%d] is %v", name, i, v)
		}
	}
	return nil
}

// ApproxEqual reports whether a and b agree within tol, using a combined
// absolute/relative criterion: |a-b| <= tol * max(1, |a|, |b|). A
// tolerance of 0 demands bit-exact agreement. NaN never compares equal
// to anything, matching IEEE-754.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:ignore floatcmp the exact fast path of the epsilon helper itself
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
