package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// mnaLike builds an MNA-shaped test system: an n-node resistive mesh with
// sparse off-diagonal coupling plus nb voltage-source border rows whose
// diagonal is structurally zero — the exact shape that forces pivoting in
// the circuit simulator. rng controls the conductance values.
func mnaLike(rng *rand.Rand, n, nb int) *Matrix {
	dim := n + nb
	m := NewMatrix(dim, dim)
	stamp := func(a, b int, g float64) {
		m.Add(a, a, g)
		m.Add(b, b, g)
		m.Add(a, b, -g)
		m.Add(b, a, -g)
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, 1e-12) // Gmin
		stamp(i, (i+1)%n, 0.1+rng.Float64())
	}
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			stamp(a, b, 0.1+10*rng.Float64())
		}
	}
	for k := 0; k < nb; k++ {
		row := n + k
		node := rng.Intn(n)
		m.Set(row, node, 1)
		m.Set(node, row, 1)
	}
	return m
}

func randRHS(rng *rand.Rand, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// The first factorization performs exactly the dense algorithm, so its
// solves must be bit-identical to Factorize/Solve.
func TestSparseLUMatchesDenseBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := mnaLike(rng, 4+rng.Intn(12), rng.Intn(3))
		dense, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSparseLU(m)
		if err != nil {
			t.Fatal(err)
		}
		b := randRHS(rng, m.Rows)
		want := dense.Solve(b)
		got := sp.Solve(b)
		for i := range want {
			//lint:ignore floatcmp the kernel's contract is exact bitwise identity with the dense path
			if got[i] != want[i] {
				t.Fatalf("trial %d: x[%d] = %v, dense %v (must be bit-identical)", trial, i, got[i], want[i])
			}
		}
		//lint:ignore floatcmp determinant must match the dense path bit-for-bit
		if d, dd := sp.Det(), dense.Det(); d != dd {
			t.Fatalf("trial %d: Det %v vs dense %v", trial, d, dd)
		}
	}
}

// Refactoring with the same values keeps the frozen order, so the pruned
// sweep must reproduce the dense solution bit-for-bit.
func TestRefactorSameValuesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := mnaLike(rng, 12, 2)
	dense, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Refactor(m); err != nil {
		t.Fatal(err)
	}
	if sp.Repivots() != 0 {
		t.Fatalf("same-value refactor re-pivoted %d times", sp.Repivots())
	}
	b := randRHS(rng, m.Rows)
	x := make([]float64, m.Rows)
	sp.SolveInto(x, b)
	want := dense.Solve(b)
	for i := range want {
		//lint:ignore floatcmp same-value refactor under a frozen pivot order must be bit-identical
		if x[i] != want[i] {
			t.Fatalf("x[%d] = %v, dense %v (must be bit-identical)", i, x[i], want[i])
		}
	}
}

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// Perturbing values on a fixed pattern (the switch-toggle / new-timestep
// path) must stay within LU roundoff of a fresh dense factorization.
func TestRefactorPerturbedValuesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := mnaLike(rng, 4+rng.Intn(12), 1+rng.Intn(2))
		sp, err := NewSparseLU(m)
		if err != nil {
			t.Fatal(err)
		}
		m2 := m.Clone()
		for i := range m2.Data {
			if m2.Data[i] != 0 {
				m2.Data[i] *= 1 + 0.5*rng.Float64()
			}
		}
		if err := sp.Refactor(m2); err != nil {
			t.Fatal(err)
		}
		dense, err := Factorize(m2)
		if err != nil {
			t.Fatal(err)
		}
		b := randRHS(rng, m2.Rows)
		x := make([]float64, m2.Rows)
		sp.SolveInto(x, b)
		if e := relErr(x, dense.Solve(b)); e > 1e-9 {
			t.Fatalf("trial %d: refactor drifted from dense by %g", trial, e)
		}
	}
}

// A nonzero outside the recorded pattern must trigger the transparent
// re-pivot fallback and still produce the dense answer.
func TestRefactorPatternEscapeFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := mnaLike(rng, 10, 1)
	sp, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	// Couple two nodes that were structurally disconnected.
	added := false
	for i := 0; i < 10 && !added; i++ {
		for j := 0; j < 10 && !added; j++ {
			if i != j && m2.At(i, j) == 0 && !sp.Symbolic().mask[i*m2.Cols+j] {
				m2.Set(i, j, 3)
				m2.Set(j, i, 3)
				m2.Add(i, i, 3)
				m2.Add(j, j, 3)
				added = true
			}
		}
	}
	if !added {
		t.Skip("mesh too dense to find an out-of-pattern position")
	}
	if err := sp.Refactor(m2); err != nil {
		t.Fatal(err)
	}
	if sp.Repivots() == 0 {
		t.Fatal("pattern escape did not trigger a re-pivot")
	}
	dense, err := Factorize(m2)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(rng, m2.Rows)
	x := make([]float64, m2.Rows)
	sp.SolveInto(x, b)
	for i := range x {
		//lint:ignore floatcmp the re-pivot fallback runs the exact dense algorithm, so identity is bitwise
		if x[i] != dense.Solve(b)[i] {
			t.Fatalf("post-fallback solve differs from dense at %d", i)
		}
	}
}

// Swinging a value by 14 orders of magnitude (the switch ron/roff swing)
// degrades the frozen pivots; the threshold-pivoting guard must catch it
// and the answer must still match dense to tight tolerance.
func TestRefactorPivotDegradationRepivots(t *testing.T) {
	m := NewMatrixFrom([][]float64{
		{1e-12 + 20, -20, 0, 1},
		{-20, 20 + 1.0, -1.0, 0},
		{0, -1.0, 1.0 + 1e-12, 0},
		{1, 0, 0, 0},
	})
	sp, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	// Same pattern, switch conductance collapsed 20 -> 1e-12.
	m2 := NewMatrixFrom([][]float64{
		{2e-12, -1e-12, 0, 1},
		{-1e-12, 1e-12 + 1.0, -1.0, 0},
		{0, -1.0, 1.0 + 1e-12, 0},
		{1, 0, 0, 0},
	})
	if err := sp.Refactor(m2); err != nil {
		t.Fatal(err)
	}
	dense, err := Factorize(m2)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{0.5, -0.25, 1, 2}
	x := make([]float64, 4)
	sp.SolveInto(x, b)
	if e := relErr(x, dense.Solve(b)); e > 1e-9 {
		t.Fatalf("degraded-pivot refactor drifted from dense by %g (repivots %d)", e, sp.Repivots())
	}
}

func TestSparseLUSingular(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := NewSparseLU(m); err != ErrSingular {
		t.Fatalf("singular NewSparseLU err = %v, want ErrSingular", err)
	}
	good := NewMatrixFrom([][]float64{{1, 2}, {2, 5}})
	sp, err := NewSparseLU(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Refactor(m); err != ErrSingular {
		t.Fatalf("singular Refactor err = %v, want ErrSingular", err)
	}
	if _, err := NewSparseLU(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square NewSparseLU must fail")
	}
}

// Forks share the symbolic phase but hold independent values — the cached
// switch-state layout in the transient simulator.
func TestForkIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := mnaLike(rng, 8, 1)
	sp, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	for i := range m2.Data {
		if m2.Data[i] != 0 {
			m2.Data[i] *= 2
		}
	}
	fork := sp.Fork()
	if fork.Symbolic() != sp.Symbolic() {
		t.Fatal("fork must share the symbolic structure")
	}
	if err := fork.Refactor(m2); err != nil {
		t.Fatal(err)
	}
	b := randRHS(rng, m.Rows)
	x1 := sp.Solve(b)
	x2 := fork.Solve(b)
	d1, _ := Factorize(m)
	d2, _ := Factorize(m2)
	if e := relErr(x1, d1.Solve(b)); e > 1e-12 {
		t.Fatalf("original drifted after fork refactor: %g", e)
	}
	if e := relErr(x2, d2.Solve(b)); e > 1e-9 {
		t.Fatalf("fork solve off by %g", e)
	}
}

// The refactor + solve fast path must be allocation-free.
func TestRefactorSolveAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := mnaLike(rng, 12, 2)
	sp, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(rng, m.Rows)
	x := make([]float64, m.Rows)
	allocs := testing.AllocsPerRun(100, func() {
		if err := sp.Refactor(m); err != nil {
			t.Fatal(err)
		}
		sp.SolveInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("Refactor+SolveInto allocated %v times per run, want 0", allocs)
	}
}

func TestSymbolicNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := mnaLike(rng, 20, 2)
	sp, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	nnz := sp.Symbolic().NNZ()
	dim := m.Rows
	if nnz <= 0 || nnz > dim*dim {
		t.Fatalf("NNZ = %d out of range (dim %d)", nnz, dim)
	}
	if sp.Symbolic().N() != dim {
		t.Fatalf("N = %d, want %d", sp.Symbolic().N(), dim)
	}
}

// --- complex twin -----------------------------------------------------------

// denseComplexSolve is an independent reference: plain complex Gaussian
// elimination with partial pivoting (the algorithm the AC path used
// before the structure-aware kernel).
func denseComplexSolve(t *testing.T, m []complex128, b []complex128, n int) []complex128 {
	t.Helper()
	a := append([]complex128(nil), m...)
	x := append([]complex128(nil), b...)
	for k := 0; k < n; k++ {
		p, mx := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := cmplx.Abs(a[i*n+k]); ab > mx {
				p, mx = i, ab
			}
		}
		if mx < 1e-300 {
			t.Fatal("singular reference matrix")
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[p*n+j], a[k*n+j] = a[k*n+j], a[p*n+j]
			}
			x[p], x[k] = x[k], x[p]
		}
		piv := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / piv
			if l == 0 {
				continue
			}
			a[i*n+k] = 0
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
			x[i] -= l * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s / a[i*n+i]
	}
	return x
}

// acLike assembles an RC-ladder admittance matrix at angular frequency w:
// the frequency sweep reuses one pattern with drifting values.
func acLike(n int, w float64) []complex128 {
	m := make([]complex128, n*n)
	stamp := func(a, b int, y complex128) {
		if a >= 0 {
			m[a*n+a] += y
		}
		if b >= 0 {
			m[b*n+b] += y
		}
		if a >= 0 && b >= 0 {
			m[a*n+b] -= y
			m[b*n+a] -= y
		}
	}
	for i := 0; i < n; i++ {
		prev := i - 1
		stamp(prev, i, complex(1.0/(1.0+float64(i)), 0))
		stamp(i, -1, complex(0, w*1e-9*float64(i+1)))
		m[i*n+i] += 1e-12
	}
	return m
}

func TestComplexLUFrequencySweepEquivalence(t *testing.T) {
	n := 10
	b := make([]complex128, n)
	b[0] = 1
	first := acLike(n, 2*math.Pi*1e3)
	cf, err := NewComplexLU(first, n)
	if err != nil {
		t.Fatal(err)
	}
	// First factorization is the dense algorithm: bit-identical solve.
	got := cf.Solve(b)
	want := denseComplexSolve(t, first, b, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("first-frequency x[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
	// Sweep six decades on the same pattern through the numeric-only path.
	x := make([]complex128, n)
	for _, f := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9} {
		m := acLike(n, 2*math.Pi*f)
		if err := cf.Refactor(m); err != nil {
			t.Fatal(err)
		}
		cf.SolveInto(x, b)
		want := denseComplexSolve(t, m, b, n)
		num, den := 0.0, 0.0
		for i := range x {
			num += cmplx.Abs(x[i]-want[i]) * cmplx.Abs(x[i]-want[i])
			den += cmplx.Abs(want[i]) * cmplx.Abs(want[i])
		}
		if math.Sqrt(num/den) > 1e-9 {
			t.Fatalf("f=%g: refactor drifted from dense by %g", f, math.Sqrt(num/den))
		}
	}
}

func TestComplexLUAllocationFree(t *testing.T) {
	n := 10
	m := acLike(n, 2*math.Pi*1e6)
	cf, err := NewComplexLU(m, n)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, n)
	b[0] = 1
	x := make([]complex128, n)
	allocs := testing.AllocsPerRun(100, func() {
		if err := cf.Refactor(m); err != nil {
			t.Fatal(err)
		}
		cf.SolveInto(x, b)
	})
	if allocs != 0 {
		t.Fatalf("ComplexLU Refactor+SolveInto allocated %v times per run, want 0", allocs)
	}
}

func TestComplexLUSingularAndShape(t *testing.T) {
	if _, err := NewComplexLU(make([]complex128, 3), 2); err == nil {
		t.Fatal("wrong-length input must fail")
	}
	sing := []complex128{1, 2, 2, 4}
	if _, err := NewComplexLU(sing, 2); err != ErrSingular {
		t.Fatalf("singular NewComplexLU err = %v, want ErrSingular", err)
	}
	ok := []complex128{1, 2, 2, 5}
	cf, err := NewComplexLU(ok, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Refactor(sing); err != ErrSingular {
		t.Fatalf("singular Refactor err = %v, want ErrSingular", err)
	}
}

// --- benchmarks -------------------------------------------------------------

func BenchmarkDenseFactorizeSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := mnaLike(rng, 24, 3)
	rhs := randRHS(rng, m.Rows)
	x := make([]float64, m.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Factorize(m)
		if err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, rhs)
	}
}

func BenchmarkSparseLURefactorSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := mnaLike(rng, 24, 3)
	rhs := randRHS(rng, m.Rows)
	x := make([]float64, m.Rows)
	f, err := NewSparseLU(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Refactor(m); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, rhs)
	}
}
