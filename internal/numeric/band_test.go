package numeric

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPDBand builds a random diagonally dominant band matrix (hence SPD)
// and a dense mirror of it.
func randomSPDBand(t *testing.T, n, bw int, rng *rand.Rand) (*SymBand, *Matrix) {
	t.Helper()
	sb, err := NewSymBand(n, bw)
	if err != nil {
		t.Fatal(err)
	}
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i - bw; j < i; j++ {
			if j < 0 {
				continue
			}
			v := rng.Float64() - 0.5
			sb.Add(i, j, v)
			dense.Add(i, j, v)
			dense.Add(j, i, v)
		}
		sb.Add(i, i, float64(bw)+2)
		dense.Add(i, i, float64(bw)+2)
	}
	return sb, dense
}

func TestBandCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, bw int }{{1, 0}, {5, 1}, {12, 3}, {40, 8}, {64, 16}} {
		sb, dense := randomSPDBand(t, tc.n, tc.bw, rng)
		chol, err := sb.Cholesky()
		if err != nil {
			t.Fatalf("n=%d bw=%d: %v", tc.n, tc.bw, err)
		}
		b := make([]float64, tc.n)
		for i := range b {
			b[i] = rng.Float64() - 0.5
		}
		x, err := chol.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := SolveLinear(dense, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
				t.Fatalf("n=%d bw=%d: x[%d] = %g, LU ref %g", tc.n, tc.bw, i, x[i], ref[i])
			}
		}
	}
}

func TestBandCholeskyRejectsIndefinite(t *testing.T) {
	sb, err := NewSymBand(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Add(0, 0, 1)
	sb.Add(1, 1, -2) // indefinite
	sb.Add(2, 2, 1)
	if _, err := sb.Cholesky(); err == nil {
		t.Fatal("expected failure on an indefinite matrix")
	}
}

func TestBandCholeskyCloneIndependent(t *testing.T) {
	sb, err := NewSymBand(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sb.Add(i, i, 4)
	}
	c := sb.Clone()
	c.Add(0, 0, 100)
	if math.Abs(sb.a[0*(sb.bw+1)+sb.bw]-4) > 0 {
		t.Fatal("Clone aliases the original storage")
	}
}

func TestSymBandValidation(t *testing.T) {
	if _, err := NewSymBand(0, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewSymBand(4, 4); err == nil {
		t.Fatal("expected error for bw >= n")
	}
	chol := &BandCholesky{n: 3, bw: 1, l: make([]float64, 6)}
	if _, err := chol.Solve(make([]float64, 2)); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}
