package numeric

import (
	"math"
	"strings"
	"testing"
)

func TestFinite(t *testing.T) {
	if err := Finite("eff", 0.93); err != nil {
		t.Fatalf("finite value rejected: %v", err)
	}
	if err := Finite("eff", 0); err != nil {
		t.Fatalf("zero rejected: %v", err)
	}
	if err := Finite("eff", math.NaN()); err == nil || !strings.Contains(err.Error(), "eff is NaN") {
		t.Fatalf("NaN: got %v", err)
	}
	if err := Finite("eff", math.Inf(1)); err == nil || !strings.Contains(err.Error(), "+Inf") {
		t.Fatalf("+Inf: got %v", err)
	}
	if err := Finite("eff", math.Inf(-1)); err == nil || !strings.Contains(err.Error(), "-Inf") {
		t.Fatalf("-Inf: got %v", err)
	}
}

func TestAllFinite(t *testing.T) {
	if err := AllFinite("vs"); err != nil {
		t.Fatalf("empty list rejected: %v", err)
	}
	if err := AllFinite("vs", 1, 2, 3); err != nil {
		t.Fatalf("finite list rejected: %v", err)
	}
	err := AllFinite("vs", 1, math.NaN(), math.Inf(1))
	if err == nil || !strings.Contains(err.Error(), "vs[1]") {
		t.Fatalf("want first bad index reported, got %v", err)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},                       // bit-exact at tol 0
		{1, math.Nextafter(1, 2), 0, false},   // one ulp apart fails tol 0
		{1, 1 + 1e-13, 1e-12, true},           // relative criterion near 1
		{1e9, 1e9 * (1 + 1e-13), 1e-12, true}, // relative criterion at large scale
		{1e9, 1e9 + 1, 1e-12, false},
		{0, 1e-13, 1e-12, true}, // absolute floor: max(1, ...) scale
		{0, 1e-11, 1e-12, false},
		{math.NaN(), math.NaN(), 1, false}, // NaN equals nothing
		{math.NaN(), 1, math.Inf(1), false},
		{math.Inf(1), math.Inf(1), 0, true}, // identical infinities are exactly equal
		{math.Inf(1), math.Inf(-1), 0, false},
		{-2, 2, 1, false},
		{-2, 2, 2.1, true},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
