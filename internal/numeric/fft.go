package numeric

import (
	"math"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input length may be
// arbitrary: power-of-two lengths use an in-place radix-2 Cooley-Tukey
// transform, other lengths fall back to Bluestein's chirp-z algorithm so that
// spectrum analysis of odd-length waveforms (common when a simulation window
// is set by a workload trace) needs no padding. The input is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/n so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// fftRadix2 computes an in-place radix-2 DIT FFT. inverse selects the
// conjugate twiddle direction (no normalization is applied here).
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, using
// radix-2 FFTs of length >= 2n-1 rounded up to a power of two.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n)
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		w[k] = cmplx.Rect(1, ang)
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * w[k]
	}
	return out
}

// RealFFTMagnitude computes the single-sided amplitude spectrum of a real
// signal sampled at interval dt. It returns parallel slices of frequencies
// (Hz) and amplitudes (same units as x), covering bins 0..n/2. Amplitudes of
// non-DC bins are doubled to account for the discarded negative frequencies.
func RealFFTMagnitude(x []float64, dt float64) (freq, amp []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	spec := FFT(cx)
	half := n/2 + 1
	freq = make([]float64, half)
	amp = make([]float64, half)
	fs := 1 / dt
	for k := 0; k < half; k++ {
		freq[k] = float64(k) * fs / float64(n)
		a := cmplx.Abs(spec[k]) / float64(n)
		if k != 0 && !(n%2 == 0 && k == n/2) {
			a *= 2
		}
		amp[k] = a
	}
	return freq, amp
}

// Hann applies a Hann window to x in place and returns x. Windowing reduces
// spectral leakage when the analysis interval does not hold an integer
// number of periods of the dominant tones.
func Hann(x []float64) []float64 {
	n := len(x)
	if n < 2 {
		return x
	}
	for i := range x {
		x[i] *= 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return x
}
