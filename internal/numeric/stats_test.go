package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !ApproxEqual(s.Min, 1, 0) || !ApproxEqual(s.Max, 5, 0) {
		t.Errorf("basic fields wrong: %+v", s)
	}
	if !ApproxEqual(s.Mean, 3, 0) || !ApproxEqual(s.Median, 3, 0) {
		t.Errorf("mean/median wrong: %+v", s)
	}
	if !ApproxEqual(s.Q1, 2, 0) || !ApproxEqual(s.Q3, 4, 0) {
		t.Errorf("quartiles wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty sample should be zero Summary")
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	if !ApproxEqual(Quantile(xs, 0), 1, 0) || !ApproxEqual(Quantile(xs, 1), 3, 0) {
		t.Error("quantile edge cases wrong")
	}
	if !ApproxEqual(Quantile(xs, 0.5), 2, 0) {
		t.Error("median wrong")
	}
	if !ApproxEqual(Quantile([]float64{7}, 0.3), 7, 0) {
		t.Error("single-element quantile wrong")
	}
}

func TestPeakToPeakAndRMS(t *testing.T) {
	xs := []float64{-1, 0, 3}
	if !ApproxEqual(PeakToPeak(xs), 4, 0) {
		t.Error("PeakToPeak wrong")
	}
	if math.Abs(RMS([]float64{3, 4})-math.Sqrt(12.5)) > 1e-12 {
		t.Error("RMS wrong")
	}
	if PeakToPeak(nil) != 0 || RMS(nil) != 0 {
		t.Error("empty-slice behavior wrong")
	}
}

func TestClamp(t *testing.T) {
	if !ApproxEqual(Clamp(5, 0, 1), 1, 0) || !ApproxEqual(Clamp(-5, 0, 1), 0, 0) || !ApproxEqual(Clamp(0.5, 0, 1), 0.5, 0) {
		t.Error("Clamp wrong")
	}
}

// Property: whiskers always lie within [Min, Max] and quartiles are ordered.
func TestSummarizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		ordered := s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
		whiskOK := s.WhiskerLo >= s.Min && s.WhiskerHi <= s.Max && s.WhiskerLo <= s.WhiskerHi
		return ordered && whiskOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PeakToPeak is translation invariant and non-negative.
func TestPeakToPeakInvariance(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + shift
		}
		p1, p2 := PeakToPeak(xs), PeakToPeak(ys)
		return p1 >= 0 && math.Abs(p1-p2) < 1e-9*(1+math.Abs(shift))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBisectAndBrent(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	r1, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect = %v", r1)
	}
	r2, err := Brent(f, 0, 2, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-math.Sqrt2) > 1e-10 {
		t.Errorf("Brent = %v", r2)
	}
	if _, err := Bisect(f, 5, 6, 1e-9); err == nil {
		t.Error("expected ErrNoBracket")
	}
	if _, err := Brent(f, 5, 6, 1e-9); err == nil {
		t.Error("expected ErrNoBracket")
	}
}

func TestGoldenSection(t *testing.T) {
	// Minimum of (x-3)^2 + 1.
	xm := GoldenSectionMin(func(x float64) float64 { return (x-3)*(x-3) + 1 }, 0, 10, 1e-9)
	if math.Abs(xm-3) > 1e-6 {
		t.Errorf("GoldenSectionMin = %v", xm)
	}
	xM := GoldenSectionMax(func(x float64) float64 { return -(x - 4) * (x - 4) }, 0, 10, 1e-9)
	if math.Abs(xM-4) > 1e-6 {
		t.Errorf("GoldenSectionMax = %v", xM)
	}
}
