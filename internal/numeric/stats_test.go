package numeric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bitsDiffer reports exact (bit-level) inequality — the selection-based
// quantiles must reproduce the sort-based ones exactly, not approximately.
func bitsDiffer(a, b float64) bool {
	return math.Float64bits(a) != math.Float64bits(b)
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !ApproxEqual(s.Min, 1, 0) || !ApproxEqual(s.Max, 5, 0) {
		t.Errorf("basic fields wrong: %+v", s)
	}
	if !ApproxEqual(s.Mean, 3, 0) || !ApproxEqual(s.Median, 3, 0) {
		t.Errorf("mean/median wrong: %+v", s)
	}
	if !ApproxEqual(s.Q1, 2, 0) || !ApproxEqual(s.Q3, 4, 0) {
		t.Errorf("quartiles wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty sample should be zero Summary")
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	if !ApproxEqual(Quantile(xs, 0), 1, 0) || !ApproxEqual(Quantile(xs, 1), 3, 0) {
		t.Error("quantile edge cases wrong")
	}
	if !ApproxEqual(Quantile(xs, 0.5), 2, 0) {
		t.Error("median wrong")
	}
	if !ApproxEqual(Quantile([]float64{7}, 0.3), 7, 0) {
		t.Error("single-element quantile wrong")
	}
}

func TestPeakToPeakAndRMS(t *testing.T) {
	xs := []float64{-1, 0, 3}
	if !ApproxEqual(PeakToPeak(xs), 4, 0) {
		t.Error("PeakToPeak wrong")
	}
	if math.Abs(RMS([]float64{3, 4})-math.Sqrt(12.5)) > 1e-12 {
		t.Error("RMS wrong")
	}
	if PeakToPeak(nil) != 0 || RMS(nil) != 0 {
		t.Error("empty-slice behavior wrong")
	}
}

func TestClamp(t *testing.T) {
	if !ApproxEqual(Clamp(5, 0, 1), 1, 0) || !ApproxEqual(Clamp(-5, 0, 1), 0, 0) || !ApproxEqual(Clamp(0.5, 0, 1), 0.5, 0) {
		t.Error("Clamp wrong")
	}
}

// Property: whiskers always lie within [Min, Max] and quartiles are ordered.
func TestSummarizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		ordered := s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
		whiskOK := s.WhiskerLo >= s.Min && s.WhiskerHi <= s.Max && s.WhiskerLo <= s.WhiskerHi
		return ordered && whiskOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PeakToPeak is translation invariant and non-negative.
func TestPeakToPeakInvariance(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + shift
		}
		p1, p2 := PeakToPeak(xs), PeakToPeak(ys)
		return p1 >= 0 && math.Abs(p1-p2) < 1e-9*(1+math.Abs(shift))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBisectAndBrent(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	r1, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect = %v", r1)
	}
	r2, err := Brent(f, 0, 2, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-math.Sqrt2) > 1e-10 {
		t.Errorf("Brent = %v", r2)
	}
	if _, err := Bisect(f, 5, 6, 1e-9); err == nil {
		t.Error("expected ErrNoBracket")
	}
	if _, err := Brent(f, 5, 6, 1e-9); err == nil {
		t.Error("expected ErrNoBracket")
	}
}

func TestGoldenSection(t *testing.T) {
	// Minimum of (x-3)^2 + 1.
	xm := GoldenSectionMin(func(x float64) float64 { return (x-3)*(x-3) + 1 }, 0, 10, 1e-9)
	if math.Abs(xm-3) > 1e-6 {
		t.Errorf("GoldenSectionMin = %v", xm)
	}
	xM := GoldenSectionMax(func(x float64) float64 { return -(x - 4) * (x - 4) }, 0, 10, 1e-9)
	if math.Abs(xM-4) > 1e-6 {
		t.Errorf("GoldenSectionMax = %v", xM)
	}
}

// sortedSummary is the pre-selection reference implementation: full sort,
// then quantile interpolation on the sorted data. SummarizeInPlace must
// reproduce its order statistics exactly.
func sortedSummary(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	out := Summary{
		N:      n,
		Min:    s[0],
		Max:    s[n-1],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
	}
	iqr := out.Q3 - out.Q1
	lo, hi := out.Q1-1.5*iqr, out.Q3+1.5*iqr
	out.WhiskerLo, out.WhiskerHi = out.Max, out.Min
	for _, v := range s {
		if v >= lo && v < out.WhiskerLo {
			out.WhiskerLo = v
		}
		if v <= hi && v > out.WhiskerHi {
			out.WhiskerHi = v
		}
	}
	return out
}

// TestSummarizeSelectionMatchesSort checks the selection-based summary
// against the full-sort reference on a spread of sizes, including
// duplicates and already-ordered data.
func TestSummarizeSelectionMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][]float64{
		{3},
		{2, 1},
		{5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{9, 8, 7, 6, 5, 4, 3, 2, 1},
	}
	for n := 10; n <= 10000; n *= 10 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		cases = append(cases, xs)
		dup := make([]float64, n)
		for i := range dup {
			dup[i] = float64(rng.Intn(7))
		}
		cases = append(cases, dup)
	}
	for ci, xs := range cases {
		want := sortedSummary(xs)
		got := Summarize(xs) // must not permute xs
		if bitsDiffer(got.Min, want.Min) || bitsDiffer(got.Max, want.Max) ||
			bitsDiffer(got.Q1, want.Q1) || bitsDiffer(got.Median, want.Median) ||
			bitsDiffer(got.Q3, want.Q3) ||
			bitsDiffer(got.WhiskerLo, want.WhiskerLo) || bitsDiffer(got.WhiskerHi, want.WhiskerHi) {
			t.Errorf("case %d (n=%d): selection summary diverges from sort:\n got %+v\nwant %+v",
				ci, len(xs), got, want)
		}
		// In-place variant returns the same statistics on a scratch copy.
		scratch := make([]float64, len(xs))
		copy(scratch, xs)
		inPlace := SummarizeInPlace(scratch)
		if inPlace != got {
			t.Errorf("case %d: SummarizeInPlace diverges from Summarize:\n got %+v\nwant %+v",
				ci, inPlace, got)
		}
	}
}

// TestSelectKth pins the selection contract: xs[k] lands on its sorted-order
// value with a partition around it.
func TestSelectKth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(20))
		}
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		work := make([]float64, n)
		copy(work, xs)
		if got := selectKth(work, k); bitsDiffer(got, sorted[k]) {
			t.Fatalf("trial %d: selectKth(%d) = %v, want %v", trial, k, got, sorted[k])
		}
		for i := 0; i < k; i++ {
			if work[i] > work[k] {
				t.Fatalf("trial %d: partition violated left of k", trial)
			}
		}
		for i := k + 1; i < n; i++ {
			if work[i] < work[k] {
				t.Fatalf("trial %d: partition violated right of k", trial)
			}
		}
	}
}

// TestLinearSystemStepAllocFree guards the zero-alloc stepping contract the
// PDN transient engine relies on: after construction, Step must not allocate.
func TestLinearSystemStepAllocFree(t *testing.T) {
	a := NewMatrixFrom([][]float64{{-1, 0.5}, {0.25, -2}})
	b := NewMatrixFrom([][]float64{{1, 0}, {0, 1}})
	sys, err := NewLinearSystem(a, b, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0}
	u0 := []float64{0.1, 0}
	u1 := []float64{0.1, 0.2}
	if n := testing.AllocsPerRun(100, func() { sys.Step(x, u0, u1) }); n != 0 {
		t.Errorf("LinearSystem.Step allocates %.0f objects per call, want 0", n)
	}
}

// TestMulVecSolveIntoMatchAllocating checks the Into variants agree with the
// allocating originals and are themselves allocation-free.
func TestMulVecSolveIntoMatchAllocating(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	x := []float64{1, -2, 0.5}
	want := m.MulVec(x)
	dst := make([]float64, 3)
	m.MulVecInto(dst, x)
	for i := range want {
		if bitsDiffer(dst[i], want[i]) {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	f, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{3, 9, 1}
	wantX := f.Solve(rhs)
	gotX := make([]float64, 3)
	f.SolveInto(gotX, rhs)
	for i := range wantX {
		if bitsDiffer(gotX[i], wantX[i]) {
			t.Fatalf("SolveInto[%d] = %v, want %v", i, gotX[i], wantX[i])
		}
	}
	if n := testing.AllocsPerRun(50, func() {
		m.MulVecInto(dst, x)
		f.SolveInto(gotX, rhs)
	}); n != 0 {
		t.Errorf("Into variants allocate %.0f objects per call, want 0", n)
	}
}
