package numeric

import (
	"fmt"
	"math"
	"math/cmplx"
)

// This file holds the structure-aware LU kernels behind the MNA circuit
// simulator. A circuit's matrix pattern is fixed: time steps, switch-state
// changes, and AC frequency points all reassign *values* at the same
// positions. The kernels therefore split factorization into
//
//   - a symbolic phase, run once per pattern: pivot order, fill-in
//     pattern of L and U, and the row/column index lists that drive the
//     pruned elimination and substitution loops; and
//   - a numeric phase (Refactor), run per value change: a sweep over the
//     precomputed pattern into preallocated storage, with no pivot
//     search, no index discovery, and no allocation.
//
// The pivot order is frozen from the factorization that built the
// symbolic phase. Every Refactor guards that choice: if an input nonzero
// falls outside the recorded pattern, or a frozen pivot loses too much
// ground against its column (threshold pivoting, see pivotTau), the
// kernel transparently re-pivots from scratch and rebuilds a private
// symbolic phase. Results are therefore always as accurate as a fresh
// partial-pivoted factorization — the symbolic reuse is purely a fast
// path. When the frozen order matches what partial pivoting would pick,
// the numeric sweep performs bit-for-bit the same arithmetic as the dense
// Factorize/Solve pair.
//
// Storage is dense row-major (the MNA systems are tens of rows, where
// index-list pruning pays but compressed storage overhead does not);
// elimination and substitution cost tracks the nonzero count of L+U, not
// n^3 / n^2.

// pivotTau is the threshold-pivoting tolerance of the numeric refactor: a
// frozen pivot must be at least pivotTau times the largest magnitude in
// its column's remaining pattern, or the kernel falls back to a fresh
// pivot search. 1e-3 is the customary sparse-LU compromise between
// stability (growth bound) and order reuse.
const pivotTau = 1e-3

// pivotTiny is the absolute singularity floor, matching dense Factorize.
const pivotTiny = 1e-300

// Symbolic is the shared, immutable structure of an LU factorization:
// pivot order and the fill-in pattern of L and U. One Symbolic may back
// any number of real (SparseLU) and complex (ComplexLU) numeric
// factorizations concurrently — it is never mutated after construction.
type Symbolic struct {
	n    int
	perm []int  // row permutation: factored row i holds input row perm[i]
	sign int    // determinant sign of the permutation
	mask []bool // mask[i*n+j]: position (i,j) is inside the L+U pattern

	// Index lists driving the pruned loops, all in post-permutation row
	// numbering:
	lcol [][]int32 // per step k: rows i > k with L[i,k] structurally nonzero
	urow [][]int32 // per row k: cols j > k with U[k,j] structurally nonzero
	lrow [][]int32 // per row i: cols j < i with L[i,j] structurally nonzero
}

// N returns the matrix dimension.
func (s *Symbolic) N() int { return s.n }

// NNZ returns the number of structurally nonzero positions in L+U,
// including fill-in — the quantity refactorization cost scales with.
func (s *Symbolic) NNZ() int {
	nnz := 0
	for _, b := range s.mask {
		if b {
			nnz++
		}
	}
	return nnz
}

// buildSymbolic assembles the index lists from a completed structural
// elimination: B is the final L+U pattern (post-permutation), perm/sign
// the recorded pivot outcome.
func buildSymbolic(n int, B []bool, perm []int, sign int) *Symbolic {
	s := &Symbolic{
		n: n, perm: perm, sign: sign, mask: B,
		lcol: make([][]int32, n),
		urow: make([][]int32, n),
		lrow: make([][]int32, n),
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if B[i*n+k] {
				s.lcol[k] = append(s.lcol[k], int32(i))
				s.lrow[i] = append(s.lrow[i], int32(k))
			}
			if B[k*n+i] {
				s.urow[k] = append(s.urow[k], int32(i))
			}
		}
	}
	return s
}

// SparseLU is a real-valued LU factorization with a symbolic-once /
// numeric-refactor split. Build one with NewSparseLU, then call Refactor
// for each new value assignment sharing the pattern; Fork clones the
// handle (sharing the symbolic phase) for factoring several value sets
// side by side, e.g. one per cached switch state.
//
// A SparseLU must not be used from multiple goroutines at once, but
// distinct forks may be, since the shared Symbolic is immutable.
type SparseLU struct {
	sym      *Symbolic
	lu       []float64
	repivots int
}

// NewSparseLU factorizes a (dense partial pivoting, bit-identical to
// Factorize) and records the symbolic structure for later Refactor calls.
// The input is not modified.
func NewSparseLU(a *Matrix) (*SparseLU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("numeric: NewSparseLU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &SparseLU{lu: make([]float64, n*n)}
	copy(f.lu, a.Data)
	if err := f.pivotingFactor(n); err != nil {
		return nil, err
	}
	return f, nil
}

// pivotingFactor runs the full dense partial-pivoted factorization over
// f.lu (which holds the matrix values) and rebuilds f.sym from scratch.
// It performs exactly the arithmetic of Factorize, plus a structural
// shadow pass that records the fill pattern.
func (f *SparseLU) pivotingFactor(n int) error {
	B := make([]bool, n*n)
	for i, v := range f.lu {
		B[i] = v != 0
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	lu := f.lu
	for k := 0; k < n; k++ {
		p, maxAbs := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(lu[i*n+k]); ab > maxAbs {
				p, maxAbs = i, ab
			}
		}
		if maxAbs < pivotTiny {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
				B[p*n+j], B[k*n+j] = B[k*n+j], B[p*n+j]
			}
			perm[p], perm[k] = perm[k], perm[p]
			sign = -sign
		}
		piv := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			if B[i*n+k] {
				for j := k + 1; j < n; j++ {
					if B[k*n+j] {
						B[i*n+j] = true
					}
				}
			}
			l := lu[i*n+k] / piv
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= l * lu[k*n+j]
			}
		}
	}
	f.sym = buildSymbolic(n, B, perm, sign)
	return nil
}

// Symbolic returns the factorization's current symbolic structure.
func (f *SparseLU) Symbolic() *Symbolic { return f.sym }

// Repivots reports how many Refactor calls had to abandon the frozen
// pivot order and re-run the full pivot search (pattern escape or pivot
// degradation past the threshold-pivoting tolerance).
func (f *SparseLU) Repivots() int { return f.repivots }

// Fork returns a new factorization handle sharing this one's symbolic
// structure but with independent value storage. The fork holds no values
// until its first Refactor.
func (f *SparseLU) Fork() *SparseLU {
	return &SparseLU{sym: f.sym, lu: make([]float64, len(f.lu))}
}

// Refactor refactorizes the matrix a, which must share the pattern the
// symbolic phase was built from, into the existing storage. It allocates
// nothing on the fast path. If a's nonzeros escape the recorded pattern
// or a frozen pivot fails the stability test, it transparently re-pivots
// (rebuilding a private symbolic structure) and still succeeds; the only
// error is a singular matrix. The input is not modified.
func (f *SparseLU) Refactor(a *Matrix) error {
	if f.sym == nil || a.Rows != a.Cols || a.Rows != f.sym.n {
		return f.refactorFresh(a)
	}
	n := f.sym.n
	mask := f.sym.mask
	lu := f.lu
	// Gather rows in pivot order, guarding the pattern as we copy.
	for i := 0; i < n; i++ {
		src := a.Data[f.sym.perm[i]*n : f.sym.perm[i]*n+n]
		dst := lu[i*n : i*n+n]
		m := mask[i*n : i*n+n]
		for j, v := range src {
			if v != 0 && !m[j] {
				return f.refactorFresh(a)
			}
			dst[j] = v
		}
	}
	for k := 0; k < n; k++ {
		piv := lu[k*n+k]
		apiv := math.Abs(piv)
		colMax := apiv
		for _, i := range f.sym.lcol[k] {
			if ab := math.Abs(lu[int(i)*n+k]); ab > colMax {
				colMax = ab
			}
		}
		if apiv < pivotTiny || apiv < pivotTau*colMax {
			return f.refactorFresh(a)
		}
		urow := f.sym.urow[k]
		for _, ii := range f.sym.lcol[k] {
			i := int(ii)
			l := lu[i*n+k] / piv
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for _, jj := range urow {
				j := int(jj)
				lu[i*n+j] -= l * lu[k*n+j]
			}
		}
	}
	return nil
}

// refactorFresh is the slow path: full pivot search and a fresh symbolic
// structure private to this handle (shared forks keep theirs).
func (f *SparseLU) refactorFresh(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("numeric: Refactor needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(f.lu) != n*n {
		f.lu = make([]float64, n*n)
	}
	copy(f.lu, a.Data)
	f.repivots++
	return f.pivotingFactor(n)
}

// Solve solves A*x = b against the last refactorization. b is not
// modified.
func (f *SparseLU) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, f.sym.n), b)
}

// SolveInto solves A*x = b into x and returns x, via pattern-pruned
// forward and back substitution. b is not modified; x must not alias b.
// It allocates nothing.
func (f *SparseLU) SolveInto(x, b []float64) []float64 {
	n := f.sym.n
	if len(b) != n {
		panic("numeric: rhs length mismatch in SparseLU.SolveInto")
	}
	if len(x) != n {
		panic("numeric: solution length mismatch in SparseLU.SolveInto")
	}
	lu := f.lu
	for i := 0; i < n; i++ {
		x[i] = b[f.sym.perm[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for _, jj := range f.sym.lrow[i] {
			j := int(jj)
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for _, jj := range f.sym.urow[i] {
			j := int(jj)
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s / lu[i*n+i]
	}
	return x
}

// Det returns the determinant from the last refactorization.
func (f *SparseLU) Det() float64 {
	d := float64(f.sym.sign)
	n := f.sym.n
	for i := 0; i < n; i++ {
		d *= f.lu[i*n+i]
	}
	return d
}

// ComplexLU is the complex-valued twin of SparseLU, sharing the same
// symbolic machinery. The MNA AC sweep has one pattern across all
// frequencies (admittance values move, positions do not), so the kernel
// factors the pattern once at the first frequency and then runs the
// numeric-only sweep per point. The same re-pivot guard applies: if the
// admittance drift degrades a frozen pivot (threshold pivoting on complex
// magnitudes), the factorization transparently re-pivots and carries the
// refreshed order to subsequent frequencies.
type ComplexLU struct {
	sym      *Symbolic
	lu       []complex128
	repivots int
}

// NewComplexLU factorizes the dense row-major n-by-n complex matrix a
// with partial pivoting and records the symbolic structure. The input is
// not modified.
func NewComplexLU(a []complex128, n int) (*ComplexLU, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("numeric: NewComplexLU needs %d values for dim %d, got %d", n*n, n, len(a))
	}
	f := &ComplexLU{lu: make([]complex128, n*n)}
	copy(f.lu, a)
	if err := f.pivotingFactor(n); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *ComplexLU) pivotingFactor(n int) error {
	B := make([]bool, n*n)
	for i, v := range f.lu {
		B[i] = v != 0
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	lu := f.lu
	for k := 0; k < n; k++ {
		p, maxAbs := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := cmplx.Abs(lu[i*n+k]); ab > maxAbs {
				p, maxAbs = i, ab
			}
		}
		if maxAbs < pivotTiny {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
				B[p*n+j], B[k*n+j] = B[k*n+j], B[p*n+j]
			}
			perm[p], perm[k] = perm[k], perm[p]
			sign = -sign
		}
		piv := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			if B[i*n+k] {
				for j := k + 1; j < n; j++ {
					if B[k*n+j] {
						B[i*n+j] = true
					}
				}
			}
			l := lu[i*n+k] / piv
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= l * lu[k*n+j]
			}
		}
	}
	f.sym = buildSymbolic(n, B, perm, sign)
	return nil
}

// Symbolic returns the factorization's current symbolic structure.
func (f *ComplexLU) Symbolic() *Symbolic { return f.sym }

// Repivots reports how many Refactor calls fell back to a full pivot
// search.
func (f *ComplexLU) Repivots() int { return f.repivots }

// Refactor refactorizes the dense row-major matrix a, which must share
// the recorded pattern, into the existing storage; it allocates nothing
// on the fast path and transparently re-pivots when the pattern or the
// pivot stability test is violated. The input is not modified.
func (f *ComplexLU) Refactor(a []complex128) error {
	if f.sym == nil || len(a) != f.sym.n*f.sym.n {
		return f.refactorFresh(a)
	}
	n := f.sym.n
	mask := f.sym.mask
	lu := f.lu
	for i := 0; i < n; i++ {
		src := a[f.sym.perm[i]*n : f.sym.perm[i]*n+n]
		dst := lu[i*n : i*n+n]
		m := mask[i*n : i*n+n]
		for j, v := range src {
			if v != 0 && !m[j] {
				return f.refactorFresh(a)
			}
			dst[j] = v
		}
	}
	for k := 0; k < n; k++ {
		piv := lu[k*n+k]
		apiv := cmplx.Abs(piv)
		colMax := apiv
		for _, i := range f.sym.lcol[k] {
			if ab := cmplx.Abs(lu[int(i)*n+k]); ab > colMax {
				colMax = ab
			}
		}
		if apiv < pivotTiny || apiv < pivotTau*colMax {
			return f.refactorFresh(a)
		}
		urow := f.sym.urow[k]
		for _, ii := range f.sym.lcol[k] {
			i := int(ii)
			l := lu[i*n+k] / piv
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for _, jj := range urow {
				j := int(jj)
				lu[i*n+j] -= l * lu[k*n+j]
			}
		}
	}
	return nil
}

func (f *ComplexLU) refactorFresh(a []complex128) error {
	nsq := len(a)
	n := int(math.Round(math.Sqrt(float64(nsq))))
	if n*n != nsq {
		return fmt.Errorf("numeric: ComplexLU.Refactor input length %d is not a square", nsq)
	}
	if len(f.lu) != nsq {
		f.lu = make([]complex128, nsq)
	}
	copy(f.lu, a)
	f.repivots++
	return f.pivotingFactor(n)
}

// Solve solves A*x = b against the last refactorization. b is not
// modified.
func (f *ComplexLU) Solve(b []complex128) []complex128 {
	return f.SolveInto(make([]complex128, f.sym.n), b)
}

// SolveInto solves A*x = b into x and returns x, via pattern-pruned
// substitution. b is not modified; x must not alias b. It allocates
// nothing.
func (f *ComplexLU) SolveInto(x, b []complex128) []complex128 {
	n := f.sym.n
	if len(b) != n {
		panic("numeric: rhs length mismatch in ComplexLU.SolveInto")
	}
	if len(x) != n {
		panic("numeric: solution length mismatch in ComplexLU.SolveInto")
	}
	lu := f.lu
	for i := 0; i < n; i++ {
		x[i] = b[f.sym.perm[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for _, jj := range f.sym.lrow[i] {
			j := int(jj)
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for _, jj := range f.sym.urow[i] {
			j := int(jj)
			s -= lu[i*n+j] * x[j]
		}
		x[i] = s / lu[i*n+i]
	}
	return x
}
