package numeric

import "fmt"

// DerivFunc computes dx/dt = f(t, x) into dst. dst and x have the same
// length; implementations must not retain either slice.
type DerivFunc func(t float64, x, dst []float64)

// RK4Step advances the ODE dx/dt = f(t, x) by one classical Runge-Kutta step
// of size h, writing the result into x in place. scratch must provide at
// least 5*len(x) float64s of workspace (allocated by the caller so that tight
// simulation loops stay allocation-free).
func RK4Step(f DerivFunc, t float64, x []float64, h float64, scratch []float64) {
	n := len(x)
	if len(scratch) < 5*n {
		panic(fmt.Sprintf("numeric: RK4Step scratch too small: %d < %d", len(scratch), 5*n))
	}
	k1 := scratch[0*n : 1*n]
	k2 := scratch[1*n : 2*n]
	k3 := scratch[2*n : 3*n]
	k4 := scratch[3*n : 4*n]
	tmp := scratch[4*n : 5*n]

	f(t, x, k1)
	for i := 0; i < n; i++ {
		tmp[i] = x[i] + 0.5*h*k1[i]
	}
	f(t+0.5*h, tmp, k2)
	for i := 0; i < n; i++ {
		tmp[i] = x[i] + 0.5*h*k2[i]
	}
	f(t+0.5*h, tmp, k3)
	for i := 0; i < n; i++ {
		tmp[i] = x[i] + h*k3[i]
	}
	f(t+h, tmp, k4)
	for i := 0; i < n; i++ {
		x[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

// IntegrateRK4 integrates dx/dt = f(t, x) from t0 to t1 with fixed step h,
// starting from x0. It returns the sampled times and a snapshot of the state
// at each time (including t0). The final step is shortened to land exactly
// on t1.
func IntegrateRK4(f DerivFunc, t0, t1, h float64, x0 []float64) (ts []float64, xs [][]float64) {
	if h <= 0 {
		panic("numeric: IntegrateRK4 requires h > 0")
	}
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	scratch := make([]float64, 5*n)
	t := t0
	snapshot := func() {
		s := make([]float64, n)
		copy(s, x)
		ts = append(ts, t)
		xs = append(xs, s)
	}
	snapshot()
	for t < t1-1e-15*(t1-t0) {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		RK4Step(f, t, x, step, scratch)
		t += step
		snapshot()
	}
	return ts, xs
}

// LinearSystem describes the LTI state-space system
//
//	dx/dt = A*x + B*u(t)
//
// integrated with the unconditionally stable trapezoidal rule. Circuit
// networks (PDNs with decaps) are stiff — explicit RK4 would need steps at
// the smallest parasitic time constant — so the implicit trapezoidal method
// is the workhorse for PDN transients, exactly as in SPICE.
type LinearSystem struct {
	A *Matrix
	B *Matrix

	h float64
	// Precomputed trapezoidal propagators: one step is
	//
	//	x_{k+1} = prop·x_k + bprop·u_k + bprop·u_{k+1}
	//
	// with prop = (I - h/2 A)⁻¹ (I + h/2 A) and bprop = (I - h/2 A)⁻¹ h/2 B,
	// both solved column-by-column against the LU factorization once at
	// construction. Folding the solve into the propagator turns the per-step
	// work into two small mat-vecs — no substitution passes, no permutation
	// indexing — which matters when a PDN transient steps tens of thousands
	// of times per simulation cell.
	prop  *Matrix
	bprop *Matrix
	// Per-step scratch. Allocating these per call used to dominate the whole
	// case study's allocation profile. Reusing them makes Step
	// allocation-free — and means one LinearSystem must not be stepped from
	// two goroutines at once.
	rhs, bu0, bu1 []float64
}

// NewLinearSystem prepares a trapezoidal stepper with fixed step h for the
// system (A, B). The factorization of (I - h/2*A) is folded into the step
// propagators up front.
func NewLinearSystem(a, b *Matrix, h float64) (*LinearSystem, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("numeric: A must be square, got %dx%d", a.Rows, a.Cols)
	}
	if b.Rows != a.Rows {
		return nil, fmt.Errorf("numeric: B row count %d must match A dimension %d", b.Rows, a.Rows)
	}
	n := a.Rows
	lhs := Identity(n)
	rhs := Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lhs.Add(i, j, -h/2*a.At(i, j))
			rhs.Add(i, j, h/2*a.At(i, j))
		}
	}
	f, err := Factorize(lhs)
	if err != nil {
		return nil, fmt.Errorf("numeric: trapezoidal LHS singular (step %g too large?): %w", h, err)
	}
	bh := b.Clone().Scale(h / 2)
	s := &LinearSystem{
		A: a, B: b, h: h,
		prop:  NewMatrix(n, n),
		bprop: NewMatrix(n, b.Cols),
		rhs:   make([]float64, n),
		bu0:   make([]float64, n),
		bu1:   make([]float64, n),
	}
	col := make([]float64, n)
	sol := make([]float64, n)
	solveColumn := func(src, dst *Matrix, j int) {
		for i := 0; i < n; i++ {
			col[i] = src.At(i, j)
		}
		f.SolveInto(sol, col)
		for i := 0; i < n; i++ {
			dst.Set(i, j, sol[i])
		}
	}
	for j := 0; j < n; j++ {
		solveColumn(rhs, s.prop, j)
	}
	for j := 0; j < b.Cols; j++ {
		solveColumn(bh, s.bprop, j)
	}
	return s, nil
}

// Step advances x (in place) by one trapezoidal step given the input vector
// at the current time (u0) and at the next time (u1):
//
//	(I - h/2 A) x_{k+1} = (I + h/2 A) x_k + h/2 B (u_k + u_{k+1})
//
// evaluated through the precomputed propagators. Step reuses internal
// scratch vectors and allocates nothing; a single LinearSystem must
// therefore only be stepped by one goroutine at a time.
func (s *LinearSystem) Step(x, u0, u1 []float64) {
	s.prop.MulVecInto(s.rhs, x)
	s.bprop.MulVecInto(s.bu0, u0)
	s.bprop.MulVecInto(s.bu1, u1)
	for i := range s.rhs {
		x[i] = s.rhs[i] + s.bu0[i] + s.bu1[i]
	}
}

// StepSize returns the fixed step the system was prepared with.
func (s *LinearSystem) StepSize() float64 { return s.h }
