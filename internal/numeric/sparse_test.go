package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestSparseMulVec(t *testing.T) {
	// 2x2: [[3, -1], [-1, 2]]
	m := NewSparseMatrix(2)
	m.AddDiag(0, 3)
	m.AddDiag(1, 2)
	m.AddSym(0, 1, -1)
	dst := make([]float64, 2)
	m.MulVec([]float64{1, 1}, dst)
	if !ApproxEqual(dst[0], 2, 0) || !ApproxEqual(dst[1], 1, 0) {
		t.Errorf("MulVec = %v, want [2 1]", dst)
	}
	// AddSym on the diagonal folds into diag.
	m2 := NewSparseMatrix(1)
	m2.AddSym(0, 0, 5)
	m2.MulVec([]float64{2}, dst[:1])
	if !ApproxEqual(dst[0], 10, 0) {
		t.Errorf("diagonal AddSym wrong: %v", dst[0])
	}
	// Accumulation onto an existing off-diagonal entry.
	m.AddSym(0, 1, -0.5)
	m.MulVec([]float64{0, 1}, dst)
	if !ApproxEqual(dst[0], -1.5, 0) {
		t.Errorf("accumulated off-diagonal wrong: %v", dst[0])
	}
}

func TestSolveCGAgainstLU(t *testing.T) {
	// Random SPD matrix: A = B^T B + n*I, compare CG vs dense LU.
	rng := rand.New(rand.NewSource(11))
	n := 40
	bm := NewMatrix(n, n)
	for i := range bm.Data {
		bm.Data[i] = rng.NormFloat64()
	}
	dense := bm.Transpose().Mul(bm)
	for i := 0; i < n; i++ {
		dense.Add(i, i, float64(n))
	}
	sp := NewSparseMatrix(n)
	for i := 0; i < n; i++ {
		sp.AddDiag(i, dense.At(i, i))
		for j := i + 1; j < n; j++ {
			if v := dense.At(i, j); v != 0 {
				sp.AddSym(i, j, v)
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err := SolveLinear(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	got, iters, err := sp.SolveCG(b, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Error("no iterations reported")
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveCGLaplacianChain(t *testing.T) {
	// 1-D resistor chain grounded at node 0 (large diagonal), unit current
	// into the far end: potential grows linearly.
	n := 50
	g := 1.0
	sp := NewSparseMatrix(n)
	for i := 0; i+1 < n; i++ {
		sp.AddDiag(i, g)
		sp.AddDiag(i+1, g)
		sp.AddSym(i, i+1, -g)
	}
	sp.AddDiag(0, 1e9)
	b := make([]float64, n)
	b[n-1] = 1
	x, _, err := sp.SolveCG(b, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	// v[k] ~ k * R (R = 1), relative to the grounded end.
	for k := 1; k < n; k++ {
		want := float64(k)
		if math.Abs(x[k]-want) > 1e-6*want {
			t.Fatalf("v[%d] = %v, want %v", k, x[k], want)
		}
	}
}

func TestSolveCGValidation(t *testing.T) {
	sp := NewSparseMatrix(2)
	sp.AddDiag(0, 1)
	// Missing positive diagonal on row 1.
	if _, _, err := sp.SolveCG([]float64{1, 1}, 1e-10, 0); err == nil {
		t.Error("non-positive diagonal must fail")
	}
	sp.AddDiag(1, 1)
	if _, _, err := sp.SolveCG([]float64{1}, 1e-10, 0); err == nil {
		t.Error("rhs length mismatch must fail")
	}
	// Zero rhs short-circuits.
	x, iters, err := sp.SolveCG([]float64{0, 0}, 1e-10, 0)
	if err != nil || iters != 0 || x[0] != 0 {
		t.Error("zero rhs should return immediately")
	}
}
