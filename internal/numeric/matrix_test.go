package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixBasicOps(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !ApproxEqual(c.At(i, j), want[i][j], 0) {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	tr := a.Transpose()
	if !ApproxEqual(tr.At(0, 1), 3, 0) || !ApproxEqual(tr.At(1, 0), 2, 0) {
		t.Errorf("Transpose wrong: %+v", tr)
	}
	v := a.MulVec([]float64{1, 1})
	if !ApproxEqual(v[0], 3, 0) || !ApproxEqual(v[1], 7, 0) {
		t.Errorf("MulVec = %v, want [3 7]", v)
	}
	sum := a.AddMatrix(b)
	if !ApproxEqual(sum.At(0, 0), 6, 0) || !ApproxEqual(sum.At(1, 1), 12, 0) {
		t.Errorf("AddMatrix wrong: %+v", sum)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p := id.Mul(a)
	for i := range p.Data {
		if !ApproxEqual(p.Data[i], a.Data[i], 0) {
			t.Fatalf("I*A != A at %d", i)
		}
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 => x = 1, y = 3
	a := NewMatrixFrom([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("expected singular error, got nil")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 3}, {6, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Errorf("det = %v, want -6", f.Det())
	}
}

func TestInverse(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(p.At(i, j), want, 1e-12) {
				t.Errorf("A*inv(A)(%d,%d) = %v", i, j, p.At(i, j))
			}
		}
	}
}

// Property: for random well-conditioned systems, Solve recovers a known x.
func TestSolveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance for conditioning
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-9) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noisy-free samples; exact recovery expected.
	a := NewMatrix(5, 2)
	b := make([]float64, 5)
	for i := 0; i < 5; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2*x + 1
	}
	c, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c[0], 1, 1e-10) || !almostEq(c[1], 2, 1e-10) {
		t.Errorf("coeffs = %v, want [1 2]", c)
	}
}

func TestLeastSquaresRidgeRankDeficient(t *testing.T) {
	// Columns are identical: without ridge the normal equations are singular.
	a := NewMatrixFrom([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := LeastSquares(a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum-norm solution splits the weight evenly: x ~ [1, 1].
	if !almostEq(x[0], 1, 1e-3) || !almostEq(x[1], 1, 1e-3) {
		t.Errorf("ridge solution = %v, want ~[1 1]", x)
	}
}

func TestDotAndNorm(t *testing.T) {
	if !ApproxEqual(Dot([]float64{1, 2, 3}, []float64{4, 5, 6}), 32, 0) {
		t.Error("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Error("Norm2 wrong")
	}
}

// quick.Check property: (A^T)^T == A for random matrices.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewMatrix(r, c)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		tt := a.Transpose().Transpose()
		if tt.Rows != a.Rows || tt.Cols != a.Cols {
			return false
		}
		for i := range a.Data {
			if !ApproxEqual(tt.Data[i], a.Data[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: det(A*B) == det(A)*det(B) for random small matrices.
func TestDetMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(5)
		a, b := NewMatrix(n, n), NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, 3)
			b.Add(i, i, 3)
		}
		fa, err1 := Factorize(a)
		fb, err2 := Factorize(b)
		fab, err3 := Factorize(a.Mul(b))
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		if !almostEq(fab.Det(), fa.Det()*fb.Det(), 1e-8) {
			t.Errorf("det(AB)=%v det(A)det(B)=%v", fab.Det(), fa.Det()*fb.Det())
		}
	}
}
