package numeric

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample, matching what the
// paper's box plots (Fig. 10) display.
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Std      float64
	Q1, Median, Q3 float64
	// WhiskerLo/WhiskerHi follow the Tukey convention: the most extreme
	// samples within 1.5*IQR of the quartiles.
	WhiskerLo, WhiskerHi float64
}

// Summarize computes descriptive statistics of xs. An empty sample returns
// the zero Summary. The input is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	return SummarizeInPlace(s)
}

// SummarizeInPlace computes the same statistics as Summarize but is free to
// permute xs, partially ordering the buffer around the quartile positions
// (O(n) selection) instead of fully sorting it (O(n log n)). The quartiles
// are exact order statistics, identical to the sorted computation. Use it on
// scratch buffers in hot loops — the case study summarizes a ~10k-sample
// voltage trace per simulation cell.
func SummarizeInPlace(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum, sumsq float64
	mn, mx := xs[0], xs[0]
	for _, v := range xs {
		sum += v
		sumsq += v * v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	out := Summary{
		N:    n,
		Min:  mn,
		Max:  mx,
		Mean: mean,
		Std:  math.Sqrt(variance),
	}
	if n >= 4 {
		// The median select partitions xs around its index kM (prefix <=
		// xs[kM] <= suffix), so xs[:kM+1] holds exactly the kM+1 smallest
		// samples and xs[kM+1:] the rest: Q1 and Q3 each select within
		// their own half instead of the full buffer. The quartiles remain
		// the exact order statistics of the whole sample.
		kM := int(0.5 * float64(n-1))
		out.Median = quantileSelect(xs, 0.5)
		out.Q1 = subQuantile(xs[:kM+1], 0, 0.25*float64(n-1))
		out.Q3 = subQuantile(xs[kM+1:], kM+1, 0.75*float64(n-1))
	} else {
		out.Q1 = quantileSelect(xs, 0.25)
		out.Median = quantileSelect(xs, 0.5)
		out.Q3 = quantileSelect(xs, 0.75)
	}
	iqr := out.Q3 - out.Q1
	lo, hi := out.Q1-1.5*iqr, out.Q3+1.5*iqr
	out.WhiskerLo, out.WhiskerHi = out.Max, out.Min
	for _, v := range xs {
		if v >= lo && v < out.WhiskerLo {
			out.WhiskerLo = v
		}
		if v <= hi && v > out.WhiskerHi {
			out.WhiskerHi = v
		}
	}
	return out
}

// quantileSelect returns the q-quantile of xs by partial selection — the
// exact value quantileSorted would produce on the sorted data, including the
// linear interpolation between adjacent order statistics. It may permute xs.
func quantileSelect(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 1 {
		return xs[0]
	}
	if q <= 0 {
		return selectKth(xs, 0)
	}
	if q >= 1 {
		return selectKth(xs, n-1)
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return selectKth(xs, n-1)
	}
	a := selectKth(xs, lo)
	// After the select, xs[lo+1:] holds every sample above the lo-th order
	// statistic, so its minimum IS the (lo+1)-th — a scan, not a second
	// selection pass.
	b := xs[lo+1]
	for _, v := range xs[lo+2:] {
		if v < b {
			b = v
		}
	}
	return a + frac*(b-a)
}

// subQuantile interpolates the order statistics at floor(pos) and
// floor(pos)+1 of the full sample, given sub = a partition holding exactly
// the order statistics base..base+len(sub)-1. Both required statistics must
// lie inside sub; SummarizeInPlace's quartile positions guarantee that for
// n >= 4.
func subQuantile(sub []float64, base int, pos float64) float64 {
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	i := lo - base
	a := selectKth(sub, i)
	b := sub[i+1]
	for _, v := range sub[i+2:] {
		if v < b {
			b = v
		}
	}
	return a + frac*(b-a)
}

// selectKth partially orders xs so that xs[k] holds the value it would have
// after a full sort, with xs[:k] <= xs[k] <= xs[k+1:]. Iterative Hoare
// quickselect with a median-of-three pivot: deterministic (no randomness, so
// repeated runs permute identically) and O(n) expected.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	return xs[k]
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice
// because a min/max of nothing is a caller bug, not a data condition.
func MinMax(xs []float64) (mn, mx float64) {
	if len(xs) == 0 {
		panic("numeric: MinMax of empty slice")
	}
	mn, mx = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// PeakToPeak returns max(xs) - min(xs), the voltage-noise range metric used
// throughout the case study.
func PeakToPeak(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mn, mx := MinMax(xs)
	return mx - mn
}

// RMS returns the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v * v
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
