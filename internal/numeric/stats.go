package numeric

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample, matching what the
// paper's box plots (Fig. 10) display.
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Std      float64
	Q1, Median, Q3 float64
	// WhiskerLo/WhiskerHi follow the Tukey convention: the most extreme
	// samples within 1.5*IQR of the quartiles.
	WhiskerLo, WhiskerHi float64
}

// Summarize computes descriptive statistics of xs. An empty sample returns
// the zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	var sum, sumsq float64
	for _, v := range s {
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	out := Summary{
		N:      n,
		Min:    s[0],
		Max:    s[n-1],
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
	}
	iqr := out.Q3 - out.Q1
	lo, hi := out.Q1-1.5*iqr, out.Q3+1.5*iqr
	out.WhiskerLo, out.WhiskerHi = out.Max, out.Min
	for _, v := range s {
		if v >= lo && v < out.WhiskerLo {
			out.WhiskerLo = v
		}
		if v <= hi && v > out.WhiskerHi {
			out.WhiskerHi = v
		}
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice
// because a min/max of nothing is a caller bug, not a data condition.
func MinMax(xs []float64) (mn, mx float64) {
	if len(xs) == 0 {
		panic("numeric: MinMax of empty slice")
	}
	mn, mx = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// PeakToPeak returns max(xs) - min(xs), the voltage-noise range metric used
// throughout the case study.
func PeakToPeak(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mn, mx := MinMax(xs)
	return mx - mn
}

// RMS returns the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v * v
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
