package numeric

import (
	"fmt"
	"math"
)

// SparseMatrix is a symmetric positive-definite matrix in coordinate/CSR
// hybrid form, built incrementally and solved with conjugate gradients.
// It exists for the on-chip power-grid meshes, whose Laplacians reach
// thousands of nodes — far past the dense-LU comfort zone.
type SparseMatrix struct {
	n    int
	diag []float64
	// Off-diagonal entries in adjacency form: for each row, the column
	// indices and values.
	cols [][]int32
	vals [][]float64
}

// NewSparseMatrix returns an empty n-by-n sparse matrix.
func NewSparseMatrix(n int) *SparseMatrix {
	return &SparseMatrix{
		n:    n,
		diag: make([]float64, n),
		cols: make([][]int32, n),
		vals: make([][]float64, n),
	}
}

// N returns the dimension.
func (m *SparseMatrix) N() int { return m.n }

// Clone returns an independent deep copy. The grid solver assembles a
// mesh Laplacian once and clones it per regulator tap set (taps only
// touch the diagonal), instead of re-assembling the whole matrix.
func (m *SparseMatrix) Clone() *SparseMatrix {
	c := &SparseMatrix{
		n:    m.n,
		diag: append([]float64(nil), m.diag...),
		cols: make([][]int32, m.n),
		vals: make([][]float64, m.n),
	}
	for i := 0; i < m.n; i++ {
		c.cols[i] = append([]int32(nil), m.cols[i]...)
		c.vals[i] = append([]float64(nil), m.vals[i]...)
	}
	return c
}

// AddDiag accumulates v onto the diagonal entry (i, i).
func (m *SparseMatrix) AddDiag(i int, v float64) { m.diag[i] += v }

// AddSym accumulates v onto both (i, j) and (j, i), i != j.
func (m *SparseMatrix) AddSym(i, j int, v float64) {
	if i == j {
		m.diag[i] += v
		return
	}
	m.addOff(i, j, v)
	m.addOff(j, i, v)
}

func (m *SparseMatrix) addOff(i, j int, v float64) {
	for k, c := range m.cols[i] {
		if int(c) == j {
			m.vals[i][k] += v
			return
		}
	}
	m.cols[i] = append(m.cols[i], int32(j))
	m.vals[i] = append(m.vals[i], v)
}

// MulVec computes dst = M*x.
func (m *SparseMatrix) MulVec(x, dst []float64) {
	for i := 0; i < m.n; i++ {
		s := m.diag[i] * x[i]
		cols := m.cols[i]
		vals := m.vals[i]
		for k := range cols {
			s += vals[k] * x[cols[k]]
		}
		dst[i] = s
	}
}

// SolveCG solves M*x = b with Jacobi-preconditioned conjugate gradients to
// relative residual tol (on ||b||). M must be symmetric positive definite
// (grid Laplacians with at least one grounded node are). Returns the
// solution and the iteration count.
func (m *SparseMatrix) SolveCG(b []float64, tol float64, maxIter int) ([]float64, int, error) {
	if len(b) != m.n {
		return nil, 0, fmt.Errorf("numeric: SolveCG rhs length %d != %d", len(b), m.n)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 4 * m.n
	}
	n := m.n
	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	copy(r, b)
	normB := Norm2(b)
	if normB == 0 {
		return x, 0, nil
	}
	precond := func(dst, src []float64) {
		for i := range dst {
			d := m.diag[i]
			if d <= 0 {
				return
			}
			dst[i] = src[i] / d
		}
	}
	for i := range m.diag {
		if m.diag[i] <= 0 {
			return nil, 0, fmt.Errorf("numeric: SolveCG needs positive diagonal (row %d: %g)", i, m.diag[i])
		}
	}
	precond(z, r)
	copy(p, z)
	rz := Dot(r, z)
	for it := 1; it <= maxIter; it++ {
		m.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return nil, it, fmt.Errorf("numeric: SolveCG lost positive-definiteness (p'Ap = %g)", pap)
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if Norm2(r)/normB < tol {
			return x, it, nil
		}
		precond(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	if Norm2(r)/normB < math.Sqrt(tol) {
		// Close enough for engineering use; report convergence.
		return x, maxIter, nil
	}
	return nil, maxIter, ErrNoConverge
}
