package numeric

import (
	"fmt"
	"math"
)

// Polynomial represents a polynomial by its coefficients in ascending order:
// c[0] + c[1]*x + c[2]*x^2 + ...
type Polynomial []float64

// Eval evaluates the polynomial at x using Horner's rule.
func (p Polynomial) Eval(x float64) float64 {
	s := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		s = s*x + p[i]
	}
	return s
}

// Derivative returns the derivative polynomial.
func (p Polynomial) Derivative() Polynomial {
	if len(p) <= 1 {
		return Polynomial{0}
	}
	d := make(Polynomial, len(p)-1)
	for i := 1; i < len(p); i++ {
		d[i-1] = float64(i) * p[i]
	}
	return d
}

// PolyFit fits a polynomial of the given degree to the points (x[i], y[i])
// in the least-squares sense. It is used, e.g., to capture the
// frequency-dependent inductance coefficient of integrated inductors from
// tabulated characterization data.
func PolyFit(x, y []float64, degree int) (Polynomial, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("numeric: PolyFit needs matching slices, got %d and %d", len(x), len(y))
	}
	if len(x) < degree+1 {
		return nil, fmt.Errorf("numeric: PolyFit degree %d needs at least %d points, got %d", degree, degree+1, len(x))
	}
	// Vandermonde matrix.
	a := NewMatrix(len(x), degree+1)
	for i, xi := range x {
		v := 1.0
		for j := 0; j <= degree; j++ {
			a.Set(i, j, v)
			v *= xi
		}
	}
	c, err := LeastSquares(a, y, 0)
	if err != nil {
		return nil, err
	}
	return Polynomial(c), nil
}

// Interp1 performs piecewise-linear interpolation of the tabulated function
// (xs, ys) at x. Outside the table range the boundary value is held
// (zero-order extrapolation), which is the safe behaviour for device tables.
// xs must be strictly increasing.
func Interp1(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if len(ys) != n {
		panic("numeric: Interp1 length mismatch")
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo] + t*(ys[hi]-ys[lo])
}

// LogInterp1 interpolates linearly in log10(x) space, which suits quantities
// tabulated per decade of frequency.
func LogInterp1(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	lx := make([]float64, n)
	for i, v := range xs {
		lx[i] = log10(v)
	}
	return Interp1(lx, ys, log10(x))
}

func log10(x float64) float64 {
	if x <= 0 {
		return -300
	}
	return math.Log10(x)
}
