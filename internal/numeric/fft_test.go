package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTKnownSpike(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	y := FFT(x)
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*5*float64(i)/float64(n)), 0)
	}
	y := FFT(x)
	// Energy should concentrate in bins 5 and n-5 with magnitude n/2.
	if math.Abs(cmplx.Abs(y[5])-float64(n)/2) > 1e-9 {
		t.Errorf("|Y[5]| = %v, want %v", cmplx.Abs(y[5]), float64(n)/2)
	}
	for k := range y {
		if k == 5 || k == n-5 {
			continue
		}
		if cmplx.Abs(y[k]) > 1e-9 {
			t.Errorf("leakage at bin %d: %v", k, cmplx.Abs(y[k]))
		}
	}
}

func testRoundTrip(t *testing.T, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := IFFT(FFT(x))
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("n=%d: round trip mismatch at %d: %v vs %v", n, i, y[i], x[i])
		}
	}
}

func TestFFTRoundTripPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 1024} {
		testRoundTrip(t, n)
	}
}

func TestFFTRoundTripArbitraryLength(t *testing.T) {
	for _, n := range []int{3, 5, 7, 12, 100, 231, 1000} {
		testRoundTrip(t, n)
	}
}

// Parseval: sum |x|^2 == (1/n) sum |X|^2.
func TestFFTParseval(t *testing.T) {
	for _, n := range []int{16, 37, 128} {
		rng := rand.New(rand.NewSource(99))
		x := make([]complex128, n)
		var ex float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			ex += real(x[i]) * real(x[i])
		}
		y := FFT(x)
		var ey float64
		for _, v := range y {
			ey += real(v)*real(v) + imag(v)*imag(v)
		}
		ey /= float64(n)
		if math.Abs(ex-ey) > 1e-8*(1+ex) {
			t.Errorf("n=%d: Parseval violated: %v vs %v", n, ex, ey)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	n := 128
	rng := rand.New(rand.NewSource(5))
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), 0)
		b[i] = complex(rng.NormFloat64(), 0)
		sum[i] = 2*a[i] + 3*b[i]
	}
	fa, fb, fs := FFT(a), FFT(b), FFT(sum)
	for k := range fs {
		want := 2*fa[k] + 3*fb[k]
		if cmplx.Abs(fs[k]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", k)
		}
	}
}

func TestRealFFTMagnitude(t *testing.T) {
	// 1 V amplitude at 50 MHz sampled at 1 GHz over an integer number of
	// periods must show up as a 1 V bin at 50 MHz.
	fs := 1e9
	f0 := 50e6
	n := 1000 // 50 periods
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	freq, amp := RealFFTMagnitude(x, 1/fs)
	// Locate 50 MHz bin.
	best := 0
	for k := range freq {
		if math.Abs(freq[k]-f0) < math.Abs(freq[best]-f0) {
			best = k
		}
	}
	if math.Abs(freq[best]-f0) > 1 {
		t.Fatalf("bin frequency %v, want %v", freq[best], f0)
	}
	if math.Abs(amp[best]-1) > 1e-6 {
		t.Errorf("amplitude at 50 MHz = %v, want 1", amp[best])
	}
}

func TestHannWindowEndpoints(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	Hann(x)
	if x[0] != 0 || x[len(x)-1] != 0 {
		t.Errorf("Hann endpoints not zero: %v", x)
	}
	if math.Abs(x[2]-1) > 1e-12 {
		t.Errorf("Hann midpoint = %v, want 1", x[2])
	}
}
