package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when the supplied interval does not bracket a
// sign change of the target function.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without meeting the tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// Bisect finds a root of f in [a, b] (f(a) and f(b) must have opposite
// signs) to within tolerance tol on x.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in the bracketing interval [a, b] using Brent's
// method (inverse quadratic interpolation with bisection fallback).
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		//lint:ignore floatcmp exact guard: equal ordinates would divide by zero in the inverse quadratic interpolation
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// GoldenSectionMin minimizes a unimodal function f on [a, b] to x-tolerance
// tol and returns the minimizing x. Used to refine the design optimizer's
// grid search along continuous axes (e.g. switching frequency).
func GoldenSectionMin(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 300 && b-a > tol; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}

// GoldenSectionMax maximizes a unimodal function on [a, b].
func GoldenSectionMax(f func(float64) float64, a, b, tol float64) float64 {
	return GoldenSectionMin(func(x float64) float64 { return -f(x) }, a, b, tol)
}
