package numeric

import (
	"math"
	"testing"
)

func TestRK4ExponentialDecay(t *testing.T) {
	// dx/dt = -x, x(0) = 1 => x(t) = e^-t.
	f := func(t float64, x, dst []float64) { dst[0] = -x[0] }
	ts, xs := IntegrateRK4(f, 0, 1, 1e-3, []float64{1})
	got := xs[len(xs)-1][0]
	want := math.Exp(-1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("x(1) = %v, want %v", got, want)
	}
	if !ApproxEqual(ts[len(ts)-1], 1, 0) {
		t.Errorf("final time %v, want 1", ts[len(ts)-1])
	}
}

func TestRK4Oscillator(t *testing.T) {
	// Harmonic oscillator: energy conservation over 10 periods.
	f := func(t float64, x, dst []float64) {
		dst[0] = x[1]
		dst[1] = -x[0]
	}
	_, xs := IntegrateRK4(f, 0, 20*math.Pi, 1e-3, []float64{1, 0})
	last := xs[len(xs)-1]
	e := last[0]*last[0] + last[1]*last[1]
	if math.Abs(e-1) > 1e-6 {
		t.Errorf("energy drifted to %v", e)
	}
}

func TestTrapezoidalRCDischarge(t *testing.T) {
	// RC discharge: dv/dt = -v/(RC), compare against analytic solution.
	rc := 1e-6
	a := NewMatrixFrom([][]float64{{-1 / rc}})
	b := NewMatrix(1, 1)
	sys, err := NewLinearSystem(a, b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1}
	u := []float64{0}
	steps := 100
	for i := 0; i < steps; i++ {
		sys.Step(x, u, u)
	}
	tEnd := float64(steps) * sys.StepSize()
	want := math.Exp(-tEnd / rc)
	if math.Abs(x[0]-want) > 1e-4 {
		t.Errorf("v = %v, want %v", x[0], want)
	}
}

func TestTrapezoidalDrivenRC(t *testing.T) {
	// Step input through B: dv/dt = (u - v)/RC; final value must approach u.
	rc := 1e-6
	a := NewMatrixFrom([][]float64{{-1 / rc}})
	b := NewMatrixFrom([][]float64{{1 / rc}})
	sys, err := NewLinearSystem(a, b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0}
	u := []float64{2.5}
	for i := 0; i < 2000; i++ { // 20 time constants
		sys.Step(x, u, u)
	}
	if math.Abs(x[0]-2.5) > 1e-6 {
		t.Errorf("settled value %v, want 2.5", x[0])
	}
}

func TestTrapezoidalStiffStability(t *testing.T) {
	// Stiff system with tau=1ns integrated at h=1us: explicit methods would
	// explode; trapezoidal must stay bounded.
	a := NewMatrixFrom([][]float64{{-1e9}})
	b := NewMatrix(1, 1)
	sys, err := NewLinearSystem(a, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1}
	u := []float64{0}
	for i := 0; i < 100; i++ {
		sys.Step(x, u, u)
		if math.Abs(x[0]) > 1 {
			t.Fatalf("unstable at step %d: %v", i, x[0])
		}
	}
}

func TestLinearSystemShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := NewLinearSystem(a, NewMatrix(2, 1), 1e-6); err == nil {
		t.Error("expected error for non-square A")
	}
	sq := Identity(2)
	if _, err := NewLinearSystem(sq, NewMatrix(3, 1), 1e-6); err == nil {
		t.Error("expected error for B row mismatch")
	}
}
