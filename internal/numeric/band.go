package numeric

import (
	"fmt"
	"math"
)

// SymBand is a symmetric positive-definite matrix with a fixed bandwidth,
// stored as its lower band. It exists for the power-grid Laplacians: a
// W x H mesh ordered along its short dimension has bandwidth min(W, H),
// and a banded Cholesky factorization solves many right-hand sides
// against the same matrix far faster than restarting conjugate gradients
// per load point.
//
// Storage is row-major: entry (i, j) with i-bw <= j <= i lives at
// a[i*(bw+1) + (j-i+bw)], so the diagonal sits at offset bw of each row.
type SymBand struct {
	n, bw int
	a     []float64
}

// NewSymBand returns an empty n-by-n band matrix with the given bandwidth.
func NewSymBand(n, bw int) (*SymBand, error) {
	if n < 1 {
		return nil, fmt.Errorf("numeric: SymBand needs n >= 1, got %d", n)
	}
	if bw < 0 || bw >= n {
		return nil, fmt.Errorf("numeric: SymBand bandwidth %d out of range for n=%d", bw, n)
	}
	return &SymBand{n: n, bw: bw, a: make([]float64, n*(bw+1))}, nil
}

// N returns the dimension.
func (s *SymBand) N() int { return s.n }

// Bandwidth returns the (half-)bandwidth.
func (s *SymBand) Bandwidth() int { return s.bw }

// Add accumulates v onto entry (i, j); only the lower triangle is stored,
// so callers add each symmetric pair once with i >= j.
func (s *SymBand) Add(i, j int, v float64) {
	if j > i {
		i, j = j, i
	}
	s.a[i*(s.bw+1)+(j-i+s.bw)] += v
}

// Clone returns an independent copy (used to reuse an assembled mesh
// Laplacian across tap sets that differ only on the diagonal).
func (s *SymBand) Clone() *SymBand {
	c := &SymBand{n: s.n, bw: s.bw, a: make([]float64, len(s.a))}
	copy(c.a, s.a)
	return c
}

// BandCholesky is the lower-triangular Cholesky factor of a SymBand.
type BandCholesky struct {
	n, bw int
	l     []float64
}

// Cholesky factors the matrix as L*Lᵀ. It fails on matrices that are not
// positive definite (a grid Laplacian with at least one grounded tap is).
// The receiver is not modified.
func (s *SymBand) Cholesky() (*BandCholesky, error) {
	n, bw := s.n, s.bw
	w := bw + 1
	l := make([]float64, len(s.a))
	copy(l, s.a)
	for j := 0; j < n; j++ {
		// Diagonal: d = a_jj - Σ_k l_jk².
		d := l[j*w+bw]
		lo := j - bw
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < j; k++ {
			v := l[j*w+(k-j+bw)]
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("numeric: band Cholesky lost positive-definiteness at row %d (pivot %g)", j, d)
		}
		d = math.Sqrt(d)
		l[j*w+bw] = d
		// Column below the pivot: rows i = j+1 .. j+bw.
		hi := j + bw
		if hi >= n {
			hi = n - 1
		}
		for i := j + 1; i <= hi; i++ {
			v := l[i*w+(j-i+bw)]
			klo := i - bw
			if klo < lo {
				klo = lo
			}
			for k := klo; k < j; k++ {
				v -= l[i*w+(k-i+bw)] * l[j*w+(k-j+bw)]
			}
			l[i*w+(j-i+bw)] = v / d
		}
	}
	return &BandCholesky{n: n, bw: bw, l: l}, nil
}

// Solve returns x with L*Lᵀ*x = b. It is safe for concurrent use: the
// factor is read-only after construction.
func (c *BandCholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("numeric: BandCholesky rhs length %d != %d", len(b), c.n)
	}
	n, bw, w := c.n, c.bw, c.bw+1
	x := make([]float64, n)
	copy(x, b)
	// Forward: L*y = b.
	for i := 0; i < n; i++ {
		v := x[i]
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < i; k++ {
			v -= c.l[i*w+(k-i+bw)] * x[k]
		}
		x[i] = v / c.l[i*w+bw]
	}
	// Backward: Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		v := x[i]
		hi := i + bw
		if hi >= n {
			hi = n - 1
		}
		for k := i + 1; k <= hi; k++ {
			v -= c.l[k*w+(i-k+bw)] * x[k]
		}
		x[i] = v / c.l[i*w+bw]
	}
	return x, nil
}
