package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolyEval(t *testing.T) {
	p := Polynomial{1, 2, 3} // 1 + 2x + 3x^2
	if !ApproxEqual(p.Eval(0), 1, 0) {
		t.Error("Eval(0)")
	}
	if !ApproxEqual(p.Eval(2), 17, 0) {
		t.Errorf("Eval(2) = %v, want 17", p.Eval(2))
	}
}

func TestPolyDerivative(t *testing.T) {
	p := Polynomial{5, 3, 2} // 5 + 3x + 2x^2 -> 3 + 4x
	d := p.Derivative()
	if len(d) != 2 || !ApproxEqual(d[0], 3, 0) || !ApproxEqual(d[1], 4, 0) {
		t.Errorf("Derivative = %v", d)
	}
	if len(Polynomial{7}.Derivative()) != 1 {
		t.Error("constant derivative should be {0}")
	}
}

func TestPolyFitExact(t *testing.T) {
	// Exact quadratic recovery.
	want := Polynomial{1, -2, 0.5}
	var xs, ys []float64
	for i := 0; i < 10; i++ {
		x := float64(i) * 0.3
		xs = append(xs, x)
		ys = append(ys, want.Eval(x))
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("coef %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Error("expected underdetermined error")
	}
}

func TestPolyFitNoisyStability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := Polynomial{2, 1}
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x)+0.01*rng.NormFloat64())
	}
	got, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 0.05 || math.Abs(got[1]-1) > 0.01 {
		t.Errorf("noisy fit = %v", got)
	}
}

func TestInterp1(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 40}
	cases := []struct{ x, want float64 }{
		{-1, 0},   // clamp low
		{0, 0},    // exact
		{0.5, 5},  // interior
		{1.5, 25}, // interior
		{3, 40},   // clamp high
	}
	for _, c := range cases {
		if got := Interp1(xs, ys, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interp1(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogInterp1(t *testing.T) {
	// Table at 1e6 and 1e8; value at 1e7 should be the midpoint in log space.
	xs := []float64{1e6, 1e8}
	ys := []float64{10, 20}
	got := LogInterp1(xs, ys, 1e7)
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("LogInterp1 = %v, want 15", got)
	}
}
