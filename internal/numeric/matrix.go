// Package numeric provides the dense linear algebra, spectral, ODE, and
// statistics routines Ivory needs. Everything is implemented from scratch on
// top of the standard library: the tool must run in environments without
// numerical dependencies, and the problem sizes (tens of nodes, thousands of
// time steps) are small enough that straightforward O(n^3) dense algorithms
// with partial pivoting are both fast and robust.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialized r-by-c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("numeric: invalid matrix shape %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have the
// same length.
func NewMatrixFrom(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("numeric: ragged rows in NewMatrixFrom")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("numeric: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.Rows), x)
}

// MulVecInto computes m*x into dst (len m.Rows) and returns dst. dst must
// not alias x. It allocates nothing, which makes it the right call inside
// per-step simulation loops.
func (m *Matrix) MulVecInto(dst, x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("numeric: dimension mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("numeric: MulVecInto dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMatrix returns m + b as a new matrix.
func (m *Matrix) AddMatrix(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("numeric: shape mismatch in AddMatrix")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// ErrSingular is returned when a linear system has no unique solution within
// the pivot tolerance.
var ErrSingular = errors.New("numeric: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above)
	perm []int     // row permutation
	sign int
}

// Factorize computes the LU factorization of the square matrix a. The input
// is not modified.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("numeric: Factorize needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), perm: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.perm {
		f.perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below the diagonal.
		p, maxAbs := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(f.lu[i*n+k]); ab > maxAbs {
				p, maxAbs = i, ab
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.perm[p], f.perm[k] = f.perm[k], f.perm[p]
			f.sign = -f.sign
		}
		piv := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / piv
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A*x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, f.n), b)
}

// SolveInto solves A*x = b into x (len n) and returns x. b is not modified;
// x must not alias b. It allocates nothing.
func (f *LU) SolveInto(x, b []float64) []float64 {
	if len(b) != f.n {
		panic("numeric: rhs length mismatch in LU.Solve")
	}
	if len(x) != f.n {
		panic("numeric: solution length mismatch in LU.SolveInto")
	}
	n := f.n
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveLinear solves the square system a*x = b in one call.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// LeastSquares solves min ||A*x - b||_2 via the normal equations
// (A^T A + ridge*I) x = A^T b. A small ridge keeps rank-deficient systems
// (which arise for switch-current distribution in looped SC topologies)
// solvable; with ridge > 0 the solution approaches the minimum-norm one.
func LeastSquares(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("numeric: LeastSquares shape mismatch: %d rows vs %d rhs", a.Rows, len(b))
	}
	at := a.Transpose()
	ata := at.Mul(a)
	if ridge > 0 {
		for i := 0; i < ata.Rows; i++ {
			ata.Add(i, i, ridge)
		}
	}
	atb := at.MulVec(b)
	return SolveLinear(ata, atb)
}

// Inverse returns the matrix inverse of a.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: length mismatch in Dot")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
