package ivr

import (
	"errors"
	"strings"
	"testing"

	"ivory/internal/numeric"
)

func TestLossBreakdownTotal(t *testing.T) {
	l := LossBreakdown{
		Conduction: 1, GateDrive: 2, Parasitic: 3,
		Leakage: 4, Control: 5, Magnetic: 6, Dropout: 7,
	}
	if !numeric.ApproxEqual(l.Total(), 28, 0) {
		t.Errorf("Total = %v, want 28", l.Total())
	}
	var zero LossBreakdown
	if zero.Total() != 0 {
		t.Error("zero breakdown should total 0")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{
		Topology: "test SC", VIn: 3.3, VOut: 1.0, ILoad: 2,
		POut: 2, Efficiency: 0.8, RippleVpp: 5e-3, FSw: 100e6, AreaDie: 4e-6,
	}
	s := m.String()
	for _, want := range []string{"test SC", "80.0%", "100", "5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Metrics.String missing %q: %s", want, s)
		}
	}
}

func TestInfeasibleError(t *testing.T) {
	err := Infeasible("my design", "needs %d more %s", 3, "capacitors")
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatal("Infeasible must produce an *InfeasibleError")
	}
	if inf.Design != "my design" {
		t.Errorf("design = %q", inf.Design)
	}
	if !strings.Contains(err.Error(), "needs 3 more capacitors") {
		t.Errorf("message = %q", err.Error())
	}
	if !strings.Contains(err.Error(), "my design") {
		t.Errorf("message should name the design: %q", err.Error())
	}
}
