// Package ivr defines the result types shared by all integrated
// voltage-regulator models (switched-capacitor, buck, and linear). The
// static design trade-off module of every topology produces the same
// Metrics record so that the design-space optimizer can compare topologies
// commensurately — the paper stresses that modeling the shared building
// blocks identically across topologies is what makes cross-topology
// comparisons fair.
package ivr

import (
	"fmt"

	"ivory/internal/numeric"
)

// LossBreakdown itemizes converter power losses (W).
type LossBreakdown struct {
	// Conduction covers output-impedance / switch-resistance conduction
	// loss, including SC regulation loss and buck DCR loss.
	Conduction float64
	// GateDrive covers switching loss of the power-switch gates and their
	// driver chains.
	GateDrive float64
	// Parasitic covers drain-junction and bottom-plate capacitor switching
	// losses.
	Parasitic float64
	// Leakage covers switch off-state and capacitor dielectric leakage, and
	// LDO quiescent current.
	Leakage float64
	// Control covers the feedback controller, comparators, and clock
	// generation.
	Control float64
	// Magnetic covers inductor winding (AC+DC) resistance loss for bucks.
	Magnetic float64
	// Dropout covers the intrinsic series-pass dissipation of linear
	// regulators.
	Dropout float64
}

// Total returns the summed loss (W).
func (l LossBreakdown) Total() float64 {
	return l.Conduction + l.GateDrive + l.Parasitic + l.Leakage + l.Control + l.Magnetic + l.Dropout
}

// Metrics is the static evaluation of one converter design at one operating
// point. All powers in watts, voltages in volts, areas in m².
type Metrics struct {
	// Topology names the converter (e.g. "series-parallel 3:1 SC").
	Topology string
	// VIn and VOut are the operating input/output voltages.
	VIn, VOut float64
	// ILoad is the evaluated load current (A).
	ILoad float64
	// POut is the delivered output power (W).
	POut float64
	// Loss itemizes the converter losses at this point.
	Loss LossBreakdown
	// Efficiency is POut / (POut + Loss.Total()).
	Efficiency float64
	// RippleVpp is the static peak-to-peak output voltage ripple (V).
	RippleVpp float64
	// FSw is the switching frequency used at this point (Hz); zero for
	// linear regulators.
	FSw float64
	// AreaDie is the silicon area of the converter (m²); AreaBoard is any
	// board/package footprint (discrete inductors, etc.).
	AreaDie, AreaBoard float64
}

// Finite verifies that every numeric field of the metrics is finite. The
// model packages call it at their Evaluate return boundaries so that a
// pathological sweep point becomes an error instead of a NaN that
// silently loses every comparison in the optimizer's ranking.
func (m Metrics) Finite() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"VIn", m.VIn}, {"VOut", m.VOut}, {"ILoad", m.ILoad}, {"POut", m.POut},
		{"Efficiency", m.Efficiency}, {"RippleVpp", m.RippleVpp}, {"FSw", m.FSw},
		{"AreaDie", m.AreaDie}, {"AreaBoard", m.AreaBoard},
		{"Loss.Conduction", m.Loss.Conduction}, {"Loss.GateDrive", m.Loss.GateDrive},
		{"Loss.Parasitic", m.Loss.Parasitic}, {"Loss.Leakage", m.Loss.Leakage},
		{"Loss.Control", m.Loss.Control}, {"Loss.Magnetic", m.Loss.Magnetic},
		{"Loss.Dropout", m.Loss.Dropout},
	} {
		if err := numeric.Finite(f.name, f.v); err != nil {
			return fmt.Errorf("ivr: %s metrics not finite: %w", m.Topology, err)
		}
	}
	return nil
}

// String summarizes the metrics for logs and reports.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: %.3gV->%.3gV @%.3gA eff=%.1f%% ripple=%.2gmV fsw=%.3gMHz area=%.3gmm2",
		m.Topology, m.VIn, m.VOut, m.ILoad, m.Efficiency*100, m.RippleVpp*1e3, m.FSw/1e6, m.AreaDie*1e6)
}

// InfeasibleError reports that a design cannot meet its operating point.
type InfeasibleError struct {
	Design string
	Reason string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("ivr: %s infeasible: %s", e.Design, e.Reason)
}

// Infeasible constructs an InfeasibleError.
func Infeasible(design, format string, args ...any) error {
	return &InfeasibleError{Design: design, Reason: fmt.Sprintf(format, args...)}
}
