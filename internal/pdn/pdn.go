// Package pdn models the cascaded power-delivery network the paper's Fig. 1
// shows: the off-chip portion (VRM output, PCB planes, package) built from
// discrete RLC segments, the C4-bump interface, and the on-chip grid with
// die decap. A network is a ladder of series R-L segments, each terminated
// by a shunt decoupling branch (C with ESR).
//
// Two views are provided:
//
//   - the analytic input impedance Z(jω) seen by the load, used for
//     resonance analysis and guardband reasoning;
//   - an LTI state-space realization (dx/dt = A·x + B·u with inputs
//     u = [V_src, I_load]) integrated with the unconditionally stable
//     trapezoidal rule, used for transient droop simulation under workload
//     current traces.
package pdn

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"ivory/internal/numeric"
)

// Stage is one ladder segment: a series R-L branch from the previous node,
// terminated by a shunt decap branch (C in series with ESR) at its node.
type Stage struct {
	// Name identifies the stage in reports ("board", "package", "die").
	Name string
	// R and L are the series branch resistance (ohm) and inductance (H).
	R, L float64
	// C is the shunt decap (F) and ESR its series resistance (ohm). Every
	// stage must carry decap (C > 0): a realistic PDN decouples each level,
	// and it keeps the state-space free of inductor cut-sets.
	C, ESR float64
}

// Network is a source-to-load ladder of stages. The load attaches at the
// final stage's node.
type Network struct {
	stages []Stage
}

// New validates and builds a network. At least one stage is required, and
// every stage needs positive R, L, and C.
func New(stages ...Stage) (*Network, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pdn: at least one stage is required")
	}
	for i, s := range stages {
		if s.R <= 0 || s.L <= 0 || s.C <= 0 {
			return nil, fmt.Errorf("pdn: stage %d (%s) needs positive R, L, C (got R=%g L=%g C=%g)",
				i, s.Name, s.R, s.L, s.C)
		}
		if s.ESR < 0 {
			return nil, fmt.Errorf("pdn: stage %d (%s) has negative ESR", i, s.Name)
		}
	}
	cp := make([]Stage, len(stages))
	copy(cp, stages)
	return &Network{stages: cp}, nil
}

// Stages returns a copy of the ladder.
func (n *Network) Stages() []Stage {
	cp := make([]Stage, len(n.stages))
	copy(cp, n.stages)
	return cp
}

// TotalR returns the end-to-end series resistance (the DC IR-drop per
// ampere).
func (n *Network) TotalR() float64 {
	r := 0.0
	for _, s := range n.stages {
		r += s.R
	}
	return r
}

// Impedance returns the complex impedance seen by the load at frequency f
// (Hz), with the source ideal (shorted). Computed by backward ladder
// reduction: starting from the source, each step is a series R+jωL followed
// by a parallel decap branch.
func (n *Network) Impedance(f float64) complex128 {
	omega := 2 * math.Pi * f
	z := complex(0, 0) // ideal source
	for _, s := range n.stages {
		z += complex(s.R, omega*s.L)
		// Shunt branch: ESR + 1/(jωC).
		var zc complex128
		if omega == 0 {
			// DC: decap branch is open.
			continue
		}
		zc = complex(s.ESR, -1/(omega*s.C))
		z = z * zc / (z + zc)
	}
	return z
}

// ImpedanceMagnitude returns |Z(f)| in ohms.
func (n *Network) ImpedanceMagnitude(f float64) float64 {
	return cmplx.Abs(n.Impedance(f))
}

// ResonancePeak scans [fLo, fHi] logarithmically and returns the frequency
// and magnitude of the largest impedance peak — the anti-resonance that
// dominates first-droop noise.
func (n *Network) ResonancePeak(fLo, fHi float64, points int) (f, z float64) {
	if points < 2 {
		points = 2
	}
	best := 0.0
	fBest := fLo
	for i := 0; i < points; i++ {
		freq := fLo * math.Pow(fHi/fLo, float64(i)/float64(points-1))
		m := n.ImpedanceMagnitude(freq)
		if m > best {
			best, fBest = m, freq
		}
	}
	return fBest, best
}

// StateSpace returns the LTI realization of the ladder:
//
//	states  x = [i_L1..i_Lk, v_C1..v_Ck]
//	inputs  u = [V_src, I_load]
//	output  v_load = C_out·x + D·u (last-stage node voltage)
//
// Node voltages eliminate algebraically: v_i = v_Ci + ESR_i·(i_Li − i_L(i+1) − 1{i=k}·I_load).
func (n *Network) StateSpace() (a, b *numeric.Matrix, cOut, dOut []float64) {
	k := len(n.stages)
	nx := 2 * k
	a = numeric.NewMatrix(nx, nx)
	b = numeric.NewMatrix(nx, 2)
	cOut = make([]float64, nx)
	dOut = make([]float64, 2)

	// Helper index maps.
	iL := func(i int) int { return i }     // inductor current of stage i
	vC := func(i int) int { return k + i } // decap voltage of stage i

	// v_i as linear form over states and inputs.
	type lin struct {
		x []float64
		u []float64
	}
	nodeV := make([]lin, k)
	for i := 0; i < k; i++ {
		l := lin{x: make([]float64, nx), u: make([]float64, 2)}
		l.x[vC(i)] = 1
		l.x[iL(i)] += n.stages[i].ESR
		if i+1 < k {
			l.x[iL(i+1)] -= n.stages[i].ESR
		} else {
			l.u[1] -= n.stages[i].ESR // load current drawn at last node
		}
		nodeV[i] = l
	}
	// d iL_i/dt = (v_{i-1} - v_i - R_i iL_i)/L_i ; v_{-1} = V_src.
	for i := 0; i < k; i++ {
		s := n.stages[i]
		addLin := func(l lin, scale float64) {
			for j, v := range l.x {
				a.Add(iL(i), j, scale*v/s.L)
			}
			for j, v := range l.u {
				b.Add(iL(i), j, scale*v/s.L)
			}
		}
		if i == 0 {
			b.Add(iL(0), 0, 1/s.L) // + V_src/L
		} else {
			addLin(nodeV[i-1], +1)
		}
		addLin(nodeV[i], -1)
		a.Add(iL(i), iL(i), -s.R/s.L)
	}
	// d vC_i/dt = i_C/C = (iL_i - iL_{i+1} - 1{i=k-1} I_load)/C_i.
	for i := 0; i < k; i++ {
		s := n.stages[i]
		a.Add(vC(i), iL(i), 1/s.C)
		if i+1 < k {
			a.Add(vC(i), iL(i+1), -1/s.C)
		} else {
			b.Add(vC(i), 1, -1/s.C)
		}
	}
	// Output: last node voltage.
	last := nodeV[k-1]
	copy(cOut, last.x)
	copy(dOut, last.u)
	return a, b, cOut, dOut
}

// Transient simulates the load-node voltage for a piecewise-linear load
// current trace iLoad(t) sampled at fixed step dt over [0, T], with a
// constant source voltage. The network starts in DC steady state at
// iLoad(0). It returns the sampled times and node voltages.
func (n *Network) Transient(vSrc float64, iLoad func(t float64) float64, dt, T float64) (ts, vs []float64, err error) {
	return n.TransientContext(context.Background(), vSrc, iLoad, dt, T, nil, nil)
}

// transientCancelStride is the number of trapezoidal steps between context
// polls. A stride is a small fraction of one simulation cell, so cancellation
// lands mid-cell instead of after it, while the poll itself stays invisible
// in profiles.
const transientCancelStride = 1024

// TransientContext is Transient with run control and buffer reuse: ctx is
// polled every transientCancelStride steps so a cancelled case-study cell
// stops mid-trace, and tsBuf/vsBuf (may be nil) donate their capacity for the
// returned slices, letting hot callers recycle trace storage across
// simulations. On error the returned slices are nil and the buffers' contents
// are unspecified.
func (n *Network) TransientContext(ctx context.Context, vSrc float64, iLoad func(t float64) float64, dt, T float64, tsBuf, vsBuf []float64) (ts, vs []float64, err error) {
	if dt <= 0 || T <= 0 {
		return nil, nil, fmt.Errorf("pdn: dt and T must be positive")
	}
	a, b, cOut, dOut := n.StateSpace()
	sys, err := numeric.NewLinearSystem(a, b, dt)
	if err != nil {
		return nil, nil, fmt.Errorf("pdn: state-space setup: %w", err)
	}
	// DC initial condition: all inductor currents equal the initial load,
	// cap voltages equal their node DC voltages.
	k := len(n.stages)
	x := make([]float64, 2*k)
	i0 := iLoad(0)
	vNode := vSrc
	for i := 0; i < k; i++ {
		vNode -= n.stages[i].R * i0
		x[i] = i0
		x[k+i] = vNode
	}
	steps := int(math.Ceil(T / dt))
	ts = growFloats(tsBuf, steps+1)
	vs = growFloats(vsBuf, steps+1)
	readout := func(t, iNow float64) {
		v := dOut[0]*vSrc + dOut[1]*iNow
		for j, cj := range cOut {
			v += cj * x[j]
		}
		ts = append(ts, t)
		vs = append(vs, v)
	}
	readout(0, i0)
	u0 := []float64{vSrc, i0}
	u1 := []float64{vSrc, 0}
	// iLoad is deterministic in t, so the previous step's end-of-interval
	// sample is this step's start-of-interval sample: one closure call per
	// step instead of three.
	prev := i0
	for s := 1; s <= steps; s++ {
		if s%transientCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		t1 := float64(s) * dt
		cur := iLoad(t1)
		u0[1] = prev
		u1[1] = cur
		sys.Step(x, u0, u1)
		readout(t1, cur)
		prev = cur
	}
	if err := numeric.AllFinite("pdn: transient voltage", vs...); err != nil {
		return nil, nil, err
	}
	return ts, vs, nil
}

// growFloats returns an empty slice backed by buf when its capacity covers
// capHint, or a fresh one otherwise.
func growFloats(buf []float64, capHint int) []float64 {
	if cap(buf) < capHint {
		return make([]float64, 0, capHint)
	}
	return buf[:0]
}

// TypicalOffChip returns the three-level off-chip network used throughout
// the case study, patterned after the GPUVolt equivalent circuit the paper
// adopts: VRM-side bulk capacitance, board plane, package with embedded
// decap, and the C4/grid interface with dieDecap farads of on-die
// capacitance behind gridR ohms of grid spreading resistance.
func TypicalOffChip(dieDecap, gridR float64) (*Network, error) {
	if dieDecap <= 0 {
		return nil, fmt.Errorf("pdn: dieDecap must be positive")
	}
	if gridR <= 0 {
		return nil, fmt.Errorf("pdn: gridR must be positive")
	}
	return New(
		Stage{Name: "board", R: 0.4e-3, L: 1.2e-9, C: 300e-6, ESR: 0.6e-3},
		Stage{Name: "package", R: 0.5e-3, L: 80e-12, C: 4e-6, ESR: 1.0e-3},
		Stage{Name: "die", R: gridR, L: 10e-12, C: dieDecap, ESR: 0.3e-3},
	)
}
