package pdn

import (
	"math"
	"testing"

	"ivory/internal/numeric"
)

func typical(t *testing.T) *Network {
	t.Helper()
	n, err := TypicalOffChip(100e-9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty ladder must fail")
	}
	if _, err := New(Stage{Name: "x", R: 0, L: 1e-9, C: 1e-6}); err == nil {
		t.Error("zero R must fail")
	}
	if _, err := New(Stage{Name: "x", R: 1e-3, L: 1e-9, C: 1e-6, ESR: -1}); err == nil {
		t.Error("negative ESR must fail")
	}
	if _, err := TypicalOffChip(0, 1e-3); err == nil {
		t.Error("zero die decap must fail")
	}
	if _, err := TypicalOffChip(1e-9, 0); err == nil {
		t.Error("zero grid R must fail")
	}
}

func TestStagesCopied(t *testing.T) {
	n := typical(t)
	s := n.Stages()
	s[0].R = 999
	if numeric.ApproxEqual(n.Stages()[0].R, 999, 0) {
		t.Error("Stages must return a copy")
	}
}

func TestImpedanceDCEqualsTotalR(t *testing.T) {
	n := typical(t)
	zdc := n.ImpedanceMagnitude(0)
	if math.Abs(zdc-n.TotalR())/n.TotalR() > 1e-9 {
		t.Errorf("|Z(0)| = %v, want total R %v", zdc, n.TotalR())
	}
}

func TestImpedanceLowFrequencyLimit(t *testing.T) {
	n := typical(t)
	// At very low (non-zero) frequency the decaps are nearly open, so the
	// impedance approaches the series resistance.
	z := n.ImpedanceMagnitude(0.01)
	if math.Abs(z-n.TotalR())/n.TotalR() > 0.05 {
		t.Errorf("|Z(0.01 Hz)| = %v, want ~%v", z, n.TotalR())
	}
}

func TestImpedanceHighFrequencyDecapShunt(t *testing.T) {
	n := typical(t)
	// Far above all resonances the die decap shunts the load: |Z| falls
	// toward the die ESR.
	z := n.ImpedanceMagnitude(10e9)
	die := n.Stages()[2]
	if z > 2*die.ESR+1e-3 {
		t.Errorf("|Z(10 GHz)| = %v, expected near die ESR %v", z, die.ESR)
	}
}

func TestResonancePeakExists(t *testing.T) {
	n := typical(t)
	f, z := n.ResonancePeak(1e4, 1e9, 400)
	if z <= n.TotalR() {
		t.Errorf("no anti-resonance found: peak %v at %v Hz", z, f)
	}
	// First-droop resonance of die decap against package inductance lands
	// in the tens-to-hundreds of MHz for these parameters.
	if f < 1e6 || f > 1e9 {
		t.Errorf("resonance at %v Hz outside plausible band", f)
	}
}

func TestMoreDieDecapLowersResonanceFrequency(t *testing.T) {
	n1, err := TypicalOffChip(50e-9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := TypicalOffChip(500e-9, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	f1, z1 := n1.ResonancePeak(1e5, 1e9, 600)
	f2, z2 := n2.ResonancePeak(1e5, 1e9, 600)
	if f2 >= f1 {
		t.Errorf("more decap should lower the resonance: %v -> %v Hz", f1, f2)
	}
	if z2 >= z1 {
		t.Errorf("more decap should damp the peak: %v -> %v ohm", z1, z2)
	}
}

func TestTransientDCSteadyState(t *testing.T) {
	n := typical(t)
	vSrc := 1.0
	iLoad := func(t float64) float64 { return 2.0 }
	ts, vs, err := n.Transient(vSrc, iLoad, 1e-9, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := vSrc - 2.0*n.TotalR()
	// Starts and stays at DC steady state.
	for i := range ts {
		if math.Abs(vs[i]-want) > 1e-6 {
			t.Fatalf("t=%v: v=%v, want steady %v", ts[i], vs[i], want)
		}
	}
}

func TestTransientStepDroopAndRecovery(t *testing.T) {
	n := typical(t)
	vSrc := 1.0
	step := func(t float64) float64 {
		if t < 200e-9 {
			return 0.5
		}
		return 5.0
	}
	_, vs, err := n.Transient(vSrc, step, 0.2e-9, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	vMin := vs[0]
	for _, v := range vs {
		if v < vMin {
			vMin = v
		}
	}
	vFinalDC := vSrc - 5.0*n.TotalR()
	// The droop must overshoot below the final DC level (first droop), but
	// stay physical (not below, say, 100x the IR drop).
	if vMin >= vFinalDC-1e-6 {
		t.Errorf("no dynamic droop: min %v vs final DC %v", vMin, vFinalDC)
	}
	if vMin < vSrc-0.5 {
		t.Errorf("droop implausibly deep: %v", vMin)
	}
	// Settles near final DC at the end.
	vEnd := vs[len(vs)-1]
	if math.Abs(vEnd-vFinalDC) > 2e-3 {
		t.Errorf("did not settle: %v vs %v", vEnd, vFinalDC)
	}
}

func TestTransientInvalidArgs(t *testing.T) {
	n := typical(t)
	if _, _, err := n.Transient(1, func(float64) float64 { return 0 }, 0, 1e-6); err == nil {
		t.Error("zero dt must fail")
	}
	if _, _, err := n.Transient(1, func(float64) float64 { return 0 }, 1e-9, 0); err == nil {
		t.Error("zero T must fail")
	}
}

func TestStateSpaceDimensions(t *testing.T) {
	n := typical(t)
	a, b, c, d := n.StateSpace()
	k := len(n.Stages())
	if a.Rows != 2*k || a.Cols != 2*k {
		t.Errorf("A is %dx%d, want %dx%d", a.Rows, a.Cols, 2*k, 2*k)
	}
	if b.Rows != 2*k || b.Cols != 2 {
		t.Errorf("B is %dx%d", b.Rows, b.Cols)
	}
	if len(c) != 2*k || len(d) != 2 {
		t.Errorf("C/D lengths %d/%d", len(c), len(d))
	}
}
