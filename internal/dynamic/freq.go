package dynamic

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ZOH returns the zero-order-hold frequency response of the converter's
// switches at noise frequency f for switching frequency fsw (paper Eq. 4),
// normalized to unity DC gain:
//
//	F_sw(jω) = (1 − e^{−jω/f_sw}) / (jω/f_sw)
//
// |ZOH| → 1 for f << f_sw and → 0 for f >> f_sw: the converter cannot
// regulate noise above its switching frequency (paper Eq. 5).
func ZOH(f, fsw float64) complex128 {
	if fsw <= 0 {
		return 0
	}
	if f == 0 {
		return 1
	}
	jwT := complex(0, 2*math.Pi*f/fsw)
	return (1 - cmplx.Exp(-jwT)) / jwT
}

// FreqModel is the generalized converter interference model of the paper's
// Fig. 5: a feedback loop of controller/driver (lumped into a
// transconductance GLoop), switches (ZOH), and the load-side output
// capacitance COut.
type FreqModel struct {
	// FSw is the switching frequency (Hz).
	FSw float64
	// COut is the output-facing capacitance (F).
	COut float64
	// GLoop is the DC loop transconductance (A of correction per V of
	// error, S): controller gain x driver x converter charge rate.
	GLoop float64
}

// Validate checks the model.
func (m FreqModel) Validate() error {
	if m.FSw <= 0 || m.COut <= 0 || m.GLoop <= 0 {
		return fmt.Errorf("dynamic: FreqModel fields must be positive")
	}
	return nil
}

// Response returns the interference transfer |V_out/V_noise|(f) of paper
// Eq. 3: H = F_L / (1 + F_L·F_ctl·F_sw) with F_L = 1/(jωC) and the
// controller collapsed into GLoop:
//
//	H(jω) = 1 / (jωC + GLoop·F_sw(jω))
//
// The noise here is referred as an interfering current at the output node,
// so H has units of impedance (V per A of noise).
func (m FreqModel) Response(f float64) complex128 {
	jwC := complex(0, 2*math.Pi*f*m.COut)
	den := jwC + complex(m.GLoop, 0)*ZOH(f, m.FSw)
	return 1 / den
}

// BareCapResponse returns the response of a bare decoupling capacitor of
// the same size — the comparison of the paper's Fig. 6.
func (m FreqModel) BareCapResponse(f float64) complex128 {
	if f == 0 {
		return complex(math.Inf(1), 0)
	}
	return 1 / complex(0, 2*math.Pi*f*m.COut)
}

// RegulationAdvantage returns |bare cap response| / |converter response| at
// f: how much better the converter suppresses noise than a bare capacitor.
// It approaches 1 above the switching frequency (no advantage) and grows
// below it (active regulation).
func (m FreqModel) RegulationAdvantage(f float64) float64 {
	hc := cmplx.Abs(m.Response(f))
	hb := cmplx.Abs(m.BareCapResponse(f))
	if hc == 0 {
		return math.Inf(1)
	}
	return hb / hc
}
