package dynamic

import (
	"fmt"
	"math"

	"ivory/internal/buck"
)

// BuckParams is the dynamic model of an N-phase buck converter in CCM: per
// the paper, an N-interleaved buck transforms to N parallel-connected buck
// converters for dynamic-response derivation. The model integrates each
// phase's inductor current at in-cycle resolution (so high-frequency load
// noise sees the output capacitance directly) and updates the duty cycle
// with a discrete PI voltage-mode controller once per switching cycle.
type BuckParams struct {
	// VIn is the input voltage (V).
	VIn float64
	// L is the per-phase inductance (H) and RL its series resistance (ohm).
	L, RL float64
	// COut is the output capacitance (F).
	COut float64
	// FSw is the per-phase switching frequency (Hz).
	FSw float64
	// Interleave is the phase count.
	Interleave int
	// Kp and Ki are the PI controller gains (duty per volt, duty per
	// volt-second); zero selects stable defaults derived from the plant.
	Kp, Ki float64
}

// BuckFromDesign maps a static buck design to dynamic parameters.
func BuckFromDesign(d *buck.Design) BuckParams {
	cfg := d.Config()
	return BuckParams{
		VIn:        cfg.VIn,
		L:          d.LEff(),
		RL:         0.05, // series resistance folded into the phase model
		COut:       cfg.COut,
		FSw:        cfg.FSw,
		Interleave: cfg.Interleave,
	}
}

// BuckSimulator runs the combined model of the interleaved buck.
type BuckSimulator struct {
	P BuckParams
}

// Validate checks the parameters.
func (s *BuckSimulator) Validate() error {
	p := s.P
	if p.VIn <= 0 || p.L <= 0 || p.COut <= 0 || p.FSw <= 0 {
		return fmt.Errorf("dynamic: buck VIn, L, COut, FSw must be positive")
	}
	if p.RL < 0 {
		return fmt.Errorf("dynamic: negative RL")
	}
	if p.Interleave < 0 {
		return fmt.Errorf("dynamic: negative interleave")
	}
	return nil
}

// Run simulates the output over [0, T] at step dt with load iLoad(t) and
// reference vRef(t). Phases are staggered by 1/(N·fsw); the PI controller
// samples once per cycle. The converter starts in steady state at vRef(0)
// and iLoad(0).
func (s *BuckSimulator) Run(iLoad, vRef Signal, T, dt float64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateRun(T, dt); err != nil {
		return nil, err
	}
	p := s.P
	n := p.Interleave
	if n == 0 {
		n = 1
	}
	period := 1 / p.FSw
	if dt > period/16 {
		return nil, fmt.Errorf("dynamic: dt %g must resolve the switching period %g (>=16 pts)", dt, period)
	}
	kp, ki := p.Kp, p.Ki
	if kp == 0 && ki == 0 {
		// Voltage-mode gains: the low-frequency plant gain from duty to
		// output is VIn, so kp = 0.5/VIn keeps the proportional loop gain
		// at 0.5 (stable for a one-cycle-delay discrete loop), with the
		// integrator closing the remaining error over ~4 switching cycles.
		kp = 0.5 / p.VIn
		ki = kp * p.FSw / 4
	}

	v0 := vRef(0)
	i0 := iLoad(0)
	duty := (v0 + i0/float64(n)*p.RL) / p.VIn
	if duty >= 1 {
		return nil, fmt.Errorf("dynamic: initial operating point saturates the duty cycle")
	}
	// Per-phase state.
	iL := make([]float64, n)
	phaseStart := make([]float64, n)
	for i := range iL {
		iL[i] = i0 / float64(n)
		phaseStart[i] = float64(i) * period / float64(n)
	}
	v := v0
	integ := 0.0

	steps := int(math.Ceil(T / dt))
	tr := &Trace{Times: make([]float64, 0, steps+1), V: make([]float64, 0, steps+1)}
	tr.Times = append(tr.Times, 0)
	tr.V = append(tr.V, v)
	nextCtl := period
	for k := 1; k <= steps; k++ {
		t := float64(k) * dt
		// PI update once per cycle: feed-forward of the reference plus
		// proportional and integral correction.
		for nextCtl <= t {
			e := vRef(nextCtl) - v
			integ += e * period
			duty = clamp(vRef(nextCtl)/p.VIn+kp*e+ki*integ, 0.02, 0.98)
			nextCtl += period
			tr.SwitchEvents += n
		}
		// In-cycle integration of each phase.
		sum := 0.0
		for i := 0; i < n; i++ {
			frac := math.Mod(t-phaseStart[i], period) / period
			if frac < 0 {
				frac += 1
			}
			vx := 0.0
			if frac < duty {
				vx = p.VIn
			}
			iL[i] += dt * (vx - v - p.RL*iL[i]) / p.L
			if iL[i] < 0 {
				iL[i] = 0 // synchronous rectifier with diode emulation
			}
			sum += iL[i]
		}
		v += dt * (sum - iLoad(t)) / p.COut
		tr.Times = append(tr.Times, t)
		tr.V = append(tr.V, v)
	}
	tr.AvgFSw = p.FSw
	if err := tr.Finite(); err != nil {
		return nil, err
	}
	return tr, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
