package dynamic

import (
	"context"
	"math"
	"sync"
	"testing"
)

// cancelAfterN returns context.Canceled from its Err after n polls — a
// deterministic mid-run cancellation source with no timers.
type cancelAfterN struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *cancelAfterN) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func testParams() SCParams {
	return SCParams{
		Ratio: 0.5, VIn: 2.0, CEq: 40e-9, REq: 0.04, COut: 25e-9,
		FClk: 50e6, Interleave: 8,
	}
}

func tracesEqual(a, b *Trace) bool {
	if len(a.Times) != len(b.Times) || len(a.V) != len(b.V) ||
		a.SwitchEvents != b.SwitchEvents ||
		math.Float64bits(a.AvgFSw) != math.Float64bits(b.AvgFSw) {
		return false
	}
	for i := range a.V {
		if math.Float64bits(a.Times[i]) != math.Float64bits(b.Times[i]) ||
			math.Float64bits(a.V[i]) != math.Float64bits(b.V[i]) {
			return false
		}
	}
	return true
}

// A recycled Trace must reproduce a fresh run exactly, even when its buffers
// were previously filled by a longer, different simulation.
func TestRunIntoBufferReuse(t *testing.T) {
	sim := &SCSimulator{P: testParams()}
	iLoad := Tones(0.3, []float64{0.1}, []float64{80e6})
	vRef := Constant(0.95)

	fresh, err := sim.Run(iLoad, vRef, 2e-6, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the recycled trace with a longer run first.
	tr, err := sim.RunInto(context.Background(), nil, Constant(0.5), vRef, 3e-6, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunInto(context.Background(), tr, iLoad, vRef, 2e-6, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got != tr {
		t.Fatal("RunInto must return the provided trace")
	}
	if !tracesEqual(fresh, got) {
		t.Fatal("recycled trace diverges from a fresh run")
	}

	freshPI, err := sim.RunPI(iLoad, vRef, 2e-6, 0.5e-9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotPI, err := sim.RunPIInto(context.Background(), tr, iLoad, vRef, 2e-6, 0.5e-9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(freshPI, gotPI) {
		t.Fatal("RunPIInto over a recycled trace diverges from RunPI")
	}

	freshCyc, err := sim.CycleByCycle(iLoad, 50e6, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	gotCyc, err := sim.CycleByCycleInto(context.Background(), tr, iLoad, 50e6, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(freshCyc, gotCyc) {
		t.Fatal("CycleByCycleInto over a recycled trace diverges from CycleByCycle")
	}
}

// Cancellation lands inside the step loop: with > runCancelStride steps, a
// context cancelled after its first poll stops the run early.
func TestRunIntoCancellation(t *testing.T) {
	sim := &SCSimulator{P: testParams()}
	iLoad := Constant(0.3)
	vRef := Constant(0.95)
	// 2 µs at 0.2 ns = 10k steps > runCancelStride.
	ctx := &cancelAfterN{Context: context.Background(), after: 1}
	if _, err := sim.RunInto(ctx, nil, iLoad, vRef, 2e-6, 0.2e-9); err != context.Canceled {
		t.Fatalf("RunInto: want context.Canceled, got %v", err)
	}
	if ctx.calls < 2 {
		t.Fatalf("RunInto never polled the context mid-run (%d polls)", ctx.calls)
	}
	ctx = &cancelAfterN{Context: context.Background(), after: 1}
	if _, err := sim.RunPIInto(ctx, nil, iLoad, vRef, 2e-6, 0.2e-9, 0, 0); err != context.Canceled {
		t.Fatalf("RunPIInto: want context.Canceled, got %v", err)
	}
	// An already-cancelled stdlib context works the same way.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunInto(cctx, nil, iLoad, vRef, 2e-6, 0.2e-9); err != context.Canceled {
		t.Fatalf("cancelled context: want context.Canceled, got %v", err)
	}
}

// The in-cycle step loop must be allocation-free once the trace buffers are
// warm: one full re-simulation into a recycled trace performs zero
// allocations.
func TestRunIntoAllocFree(t *testing.T) {
	sim := &SCSimulator{P: testParams()}
	iLoad := Constant(0.3)
	vRef := Constant(0.95)
	tr, err := sim.Run(iLoad, vRef, 1e-6, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(5, func() {
		if _, err := sim.RunInto(context.Background(), tr, iLoad, vRef, 1e-6, 0.5e-9); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("RunInto allocates %.1f times per run with a warm trace", n)
	}
}
