package dynamic

import (
	"context"
	"fmt"
	"math"

	"ivory/internal/sc"
)

// runCancelStride is the number of in-cycle steps between context polls in
// the simulator loops: frequent enough that cancellation lands mid-waveform
// (a stride is well under a millisecond of wall time), rare enough that the
// poll never shows in profiles.
const runCancelStride = 4096

// SCParams is the lumped dynamic model of a switched-capacitor converter:
// an ideal Ratio:1 transformer feeding the output through a charge-transfer
// capacitance CEq and resistance REq, with COut of output-facing
// capacitance. CEq/REq are chosen so the cycle-by-cycle model reproduces
// the static model's SSL and FSL impedances at the limits:
//
//	CEq = C_tot / (Σa_c)²   (slow limit:  R_out -> 1/(CEq·f_sw) = R_SSL)
//	REq = R_FSL / 2         (fast limit:  R_out -> 2·REq       = R_FSL)
type SCParams struct {
	// Ratio is the ideal conversion ratio M; VIn the input voltage (V).
	Ratio, VIn float64
	// CEq and REq are the lumped charge-transfer parameters.
	CEq, REq float64
	// COut is the output-node capacitance: explicit decap plus the
	// phase-connected flying capacitance (the in-cycle decoupling path).
	COut float64
	// FClk is the pump-decision clock (the maximum switching frequency of
	// the hysteretic feedback); the realized average f_sw is lower and
	// load-dependent.
	FClk float64
	// Interleave staggers pump opportunities across N slices, each
	// transferring 1/N of the charge.
	Interleave int
	// HystBand is the allowed overshoot above the reference per pump (V);
	// the controller narrows the transfer pulse to respect it, as real
	// pulse-width-limited hysteretic controllers do. Zero selects 10 mV.
	HystBand float64
}

// SCFromDesign maps a static SC design to its dynamic model parameters,
// clocking the hysteretic loop at the design's maximum frequency.
func SCFromDesign(d *sc.Design) SCParams {
	cfg := d.Config()
	an := cfg.Analysis
	fclk := cfg.FSwMax
	return SCParams{
		Ratio:      an.Ratio,
		VIn:        cfg.VIn,
		CEq:        cfg.CTotal / (an.SumAC * an.SumAC),
		REq:        d.RFSL() / 2,
		COut:       cfg.CDecap + d.CFlyEffective(),
		FClk:       fclk,
		Interleave: cfg.Interleave,
	}
}

// SCFromDesignAtLoad maps a static SC design to dynamic parameters with the
// pump clock set to twice the regulation frequency at the given worst-case
// load (clamped to the design's FSwMax) — the realistic headroom a
// hysteretic controller is clocked with.
func SCFromDesignAtLoad(d *sc.Design, iMax float64) (SCParams, error) {
	p := SCFromDesign(d)
	fReg, err := d.RegulationFrequency(iMax)
	if err != nil {
		return SCParams{}, err
	}
	fclk := 2 * fReg
	if fclk > d.Config().FSwMax {
		fclk = d.Config().FSwMax
	}
	p.FClk = fclk
	return p, nil
}

// SCSimulator runs the combined cycle-by-cycle + in-cycle model of an SC
// converter under hysteretic (clocked lower-bound) feedback: at each slice
// clock tick, the slice pumps iff the output is below the reference; in
// between, the load current discharges COut continuously — which is exactly
// the high-frequency decoupling behaviour of the in-cycle model.
type SCSimulator struct {
	P SCParams
	// VIn optionally overrides the constant input voltage with a waveform,
	// enabling the line-regulation scenarios the paper validates: input
	// steps and ripple propagate into the pump charge (M·v_in(t) − v)
	// and the feedback absorbs them below the switching frequency.
	VIn Signal
}

// vin returns the input voltage at time t.
func (s *SCSimulator) vin(t float64) float64 {
	if s.VIn != nil {
		return s.VIn(t)
	}
	return s.P.VIn
}

// Validate checks the parameter set.
func (s *SCSimulator) Validate() error {
	p := s.P
	if p.Ratio <= 0 || p.VIn <= 0 {
		return fmt.Errorf("dynamic: SC ratio and VIn must be positive")
	}
	if p.CEq <= 0 || p.REq <= 0 || p.COut <= 0 || p.FClk <= 0 {
		return fmt.Errorf("dynamic: SC CEq, REq, COut, FClk must be positive")
	}
	if p.Interleave < 0 {
		return fmt.Errorf("dynamic: negative interleave")
	}
	return nil
}

// Run simulates the output voltage over [0, T] at in-cycle resolution dt,
// with load current iLoad(t) and reference vRef(t) (fast DVFS is a vRef
// schedule). The output starts at vRef(0).
func (s *SCSimulator) Run(iLoad, vRef Signal, T, dt float64) (*Trace, error) {
	return s.RunInto(context.Background(), nil, iLoad, vRef, T, dt)
}

// RunInto is Run with run control and buffer reuse: ctx is polled every
// runCancelStride in-cycle steps so a cancelled case-study cell stops
// mid-waveform, and tr (may be nil) is reset and refilled, recycling its
// Times/V storage across simulations. The returned trace is tr when one was
// provided.
func (s *SCSimulator) RunInto(ctx context.Context, tr *Trace, iLoad, vRef Signal, T, dt float64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateRun(T, dt); err != nil {
		return nil, err
	}
	p := s.P
	n := p.Interleave
	if n == 0 {
		n = 1
	}
	// Slice pump opportunities arrive at n * FClk, round-robin.
	tickPeriod := 1 / (p.FClk * float64(n))
	if dt > tickPeriod {
		return nil, fmt.Errorf("dynamic: dt %g must resolve the slice tick %g", dt, tickPeriod)
	}
	band := p.HystBand
	if band == 0 {
		band = 10e-3
	}
	// Per-pump charge: each of the n slices owns CEq/n and pumps on its
	// tick if below reference, following Eq. 2's exponential charge
	// increment with T_cycle = 1/FClk per slice. Gross overshoot of a
	// large single pump is prevented by the pulse-width limit below.
	ceqSlice := p.CEq / float64(n)
	expFactor := 1 - math.Exp(-1/(p.FClk*2*p.REq*p.CEq))

	steps := int(math.Ceil(T / dt))
	tr = prepareTrace(tr, steps+1)
	v := vRef(0)
	tr.Times = append(tr.Times, 0)
	tr.V = append(tr.V, v)
	nextTick := tickPeriod
	for k := 1; k <= steps; k++ {
		if k%runCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t := float64(k) * dt
		// In-cycle: the load discharges the output-facing capacitance.
		v -= iLoad(t) * dt / p.COut
		// Cycle-by-cycle: pump decision at slice ticks.
		for nextTick <= t {
			if ref := vRef(nextTick); v < ref {
				dq := (p.Ratio*s.vin(nextTick) - v) * ceqSlice * expFactor
				// Pulse-width limiting: do not overshoot ref + band.
				if lim := (ref + band - v) * p.COut; dq > lim {
					dq = lim
				}
				if dq > 0 {
					v += dq / p.COut
					tr.SwitchEvents++
				}
			}
			nextTick += tickPeriod
		}
		tr.Times = append(tr.Times, t)
		tr.V = append(tr.V, v)
	}
	if T > 0 {
		tr.AvgFSw = float64(tr.SwitchEvents) / float64(n) / T
	}
	if err := tr.Finite(); err != nil {
		return nil, err
	}
	return tr, nil
}

// RunPI simulates the SC converter under proportional-integral
// frequency-modulation feedback instead of the hysteretic lower-bound
// loop: the switching frequency follows
//
//	f_sw(t) = clamp(Kp·e + Ki·∫e, FClkMin, FClk),  e = vRef - v
//
// and every cycle transfers the full Eq. 2 charge for its own period. PI
// control trades the hysteretic loop's instant response for a smaller
// limit-cycle ripple and no load-dependent offset (the integrator removes
// it). Zero gains select defaults scaled to the converter: full-scale
// frequency at 50 mV of error, integral closing over ~2 µs.
func (s *SCSimulator) RunPI(iLoad, vRef Signal, T, dt float64, kp, ki float64) (*Trace, error) {
	return s.RunPIInto(context.Background(), nil, iLoad, vRef, T, dt, kp, ki)
}

// RunPIInto is RunPI with the same run control and buffer reuse as RunInto.
func (s *SCSimulator) RunPIInto(ctx context.Context, tr *Trace, iLoad, vRef Signal, T, dt float64, kp, ki float64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateRun(T, dt); err != nil {
		return nil, err
	}
	p := s.P
	if dt > 1/p.FClk {
		return nil, fmt.Errorf("dynamic: dt %g must resolve the maximum switching period %g", dt, 1/p.FClk)
	}
	if kp == 0 && ki == 0 {
		kp = p.FClk / 0.05
		ki = kp / 2e-6
	}
	n := p.Interleave
	if n == 0 {
		n = 1
	}
	fMin := p.FClk / 1e3
	ceqSlice := p.CEq / float64(n)
	steps := int(math.Ceil(T / dt))
	tr = prepareTrace(tr, steps+1)
	v := vRef(0)
	integ := 0.0
	// Anti-windup bound: the integral term alone may command at most the
	// full frequency range.
	integMax := p.FClk / ki
	tr.Times = append(tr.Times, 0)
	tr.V = append(tr.V, v)
	// Frequency-modulation phase accumulator: the controller re-evaluates
	// every in-cycle step (not just at pump instants — a loop that only
	// wakes at its own pump cadence can strand itself at the minimum
	// frequency), and a pump fires whenever the accumulated phase passes 1.
	phase := 0.0
	var fswSum float64
	for k := 1; k <= steps; k++ {
		if k%runCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t := float64(k) * dt
		v -= iLoad(t) * dt / p.COut
		e := vRef(t) - v
		integ += e * dt
		if integ > integMax {
			integ = integMax
		}
		if integ < -integMax {
			integ = -integMax
		}
		fsw := kp*e + ki*integ
		if fsw < fMin {
			fsw = fMin
		}
		if fsw > p.FClk {
			fsw = p.FClk
		}
		phase += fsw * float64(n) * dt
		for phase >= 1 {
			phase -= 1
			// Pump one interleave slice at the commanded frequency; the
			// slice's R·C product is interleave-invariant, so the
			// exponential factor uses the commanded cycle directly.
			exp := 1 - math.Exp(-1/(fsw*2*p.REq*p.CEq))
			dq := (p.Ratio*s.vin(t) - v) * ceqSlice * exp
			if dq > 0 {
				v += dq / p.COut
				tr.SwitchEvents++
				fswSum += fsw
			}
		}
		tr.Times = append(tr.Times, t)
		tr.V = append(tr.V, v)
	}
	if tr.SwitchEvents > 0 {
		tr.AvgFSw = fswSum / float64(tr.SwitchEvents)
	}
	if err := tr.Finite(); err != nil {
		return nil, err
	}
	return tr, nil
}

// CycleByCycle runs only the discrete-time model of paper Eq. 2 at the
// converter period (no in-cycle resolution): one sample per switching cycle
// with a fixed switching frequency — the variant validated against SPICE in
// Fig. 9(a).
func (s *SCSimulator) CycleByCycle(iLoad Signal, fsw, T float64) (*Trace, error) {
	return s.CycleByCycleInto(context.Background(), nil, iLoad, fsw, T)
}

// CycleByCycleInto is CycleByCycle with the same run control and buffer
// reuse as RunInto.
func (s *SCSimulator) CycleByCycleInto(ctx context.Context, tr *Trace, iLoad Signal, fsw, T float64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if fsw <= 0 {
		return nil, fmt.Errorf("dynamic: fsw must be positive")
	}
	p := s.P
	period := 1 / fsw
	if err := validateRun(T, period); err != nil {
		return nil, err
	}
	exp := 1 - math.Exp(-1/(fsw*2*p.REq*p.CEq))
	steps := int(math.Ceil(T * fsw))
	tr = prepareTrace(tr, steps+1)
	v := p.Ratio * p.VIn
	tr.Times = append(tr.Times, 0)
	tr.V = append(tr.V, v)
	for k := 1; k <= steps; k++ {
		if k%runCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t := float64(k) * period
		// Paper Eq. 2.
		v = v + (-iLoad(t)*period+(p.Ratio*s.vin(t)-v)*p.CEq*exp)/p.COut
		tr.Times = append(tr.Times, t)
		tr.V = append(tr.V, v)
		tr.SwitchEvents++
	}
	tr.AvgFSw = fsw
	if err := tr.Finite(); err != nil {
		return nil, err
	}
	return tr, nil
}
