package dynamic

import (
	"fmt"
	"math"

	"ivory/internal/ldo"
)

// LDOParams is the dynamic model of a digital LDO: a segmented pass array
// updated by a clocked bang-bang (or proportional) controller, discharging
// into the output capacitance. Between samples the load current rides
// directly on COut — the in-cycle behaviour.
type LDOParams struct {
	// VIn is the input voltage (V).
	VIn float64
	// GPass is the full-array conductance (S) and Segments the number of
	// independently switchable segments.
	GPass    float64
	Segments int
	// COut is the output capacitance (F).
	COut float64
	// FSample is the controller sampling frequency (Hz).
	FSample float64
	// Proportional selects a proportional (multi-segment step) update
	// instead of single-segment bang-bang.
	Proportional bool
}

// LDOFromDesign maps a static LDO design to dynamic parameters.
func LDOFromDesign(d *ldo.Design) LDOParams {
	cfg := d.Config()
	return LDOParams{
		VIn:      cfg.VIn,
		GPass:    cfg.GPass,
		Segments: 64,
		COut:     cfg.COut,
		FSample:  cfg.FSample,
	}
}

// LDOSimulator runs the digital-LDO dynamic model.
type LDOSimulator struct {
	P LDOParams
}

// Validate checks the parameters.
func (s *LDOSimulator) Validate() error {
	p := s.P
	if p.VIn <= 0 || p.GPass <= 0 || p.COut <= 0 || p.FSample <= 0 {
		return fmt.Errorf("dynamic: LDO VIn, GPass, COut, FSample must be positive")
	}
	if p.Segments < 1 {
		return fmt.Errorf("dynamic: LDO needs at least one segment")
	}
	return nil
}

// Run simulates the output over [0, T] at step dt under load iLoad(t) and
// reference vRef(t). Starts at vRef(0) with the pass array set to carry
// iLoad(0).
func (s *LDOSimulator) Run(iLoad, vRef Signal, T, dt float64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateRun(T, dt); err != nil {
		return nil, err
	}
	p := s.P
	sample := 1 / p.FSample
	if dt > sample {
		return nil, fmt.Errorf("dynamic: dt %g must resolve the sampling period %g", dt, sample)
	}
	gSeg := p.GPass / float64(p.Segments)
	v := vRef(0)
	// Initial segment count carrying the initial load.
	on := 0
	if head := p.VIn - v; head > 0 {
		on = int(math.Round(iLoad(0) / (gSeg * head)))
	}
	on = clampInt(on, 0, p.Segments)

	steps := int(math.Ceil(T / dt))
	tr := &Trace{Times: make([]float64, 0, steps+1), V: make([]float64, 0, steps+1)}
	tr.Times = append(tr.Times, 0)
	tr.V = append(tr.V, v)
	nextSample := sample
	for k := 1; k <= steps; k++ {
		t := float64(k) * dt
		for nextSample <= t {
			e := vRef(nextSample) - v
			if p.Proportional {
				head := p.VIn - v
				if head > 0.01 {
					// Segment step proportional to the error slope.
					stepSegs := int(math.Round(e * p.COut * p.FSample / (gSeg * head)))
					on = clampInt(on+stepSegs, 0, p.Segments)
				}
			} else {
				if e > 0 {
					on = clampInt(on+1, 0, p.Segments)
				} else if e < 0 {
					on = clampInt(on-1, 0, p.Segments)
				}
			}
			nextSample += sample
			tr.SwitchEvents++
		}
		iPass := float64(on) * gSeg * (p.VIn - v)
		if iPass < 0 {
			iPass = 0
		}
		v += dt * (iPass - iLoad(t)) / p.COut
		tr.Times = append(tr.Times, t)
		tr.V = append(tr.V, v)
	}
	tr.AvgFSw = p.FSample
	if err := tr.Finite(); err != nil {
		return nil, err
	}
	return tr, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
