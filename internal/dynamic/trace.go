// Package dynamic implements Ivory's dynamic feedback-response models: the
// combination of a cycle-by-cycle discrete-time model (accurate below the
// switching frequency, paper Eq. 2) with an in-cycle model (the
// output-facing capacitance decoupling noise above the switching frequency)
// that together produce an IVR's full output-voltage waveform under load
// transients and fast DVFS — the paper's key method for capturing noise
// across the whole frequency range at 10³-10⁵x SPICE speed.
package dynamic

import (
	"fmt"
	"math"

	"ivory/internal/numeric"
)

// Signal is a time-varying quantity (load current, reference voltage).
type Signal func(t float64) float64

// Constant returns a constant signal.
func Constant(v float64) Signal { return func(float64) float64 { return v } }

// Sampled wraps uniformly sampled data (period dt) into a Signal with
// zero-order hold; out-of-range times hold the boundary samples.
func Sampled(data []float64, dt float64) Signal {
	n := len(data)
	return func(t float64) float64 {
		if n == 0 {
			return 0
		}
		k := int(t / dt)
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return data[k]
	}
}

// Step returns a signal that is from before tStep and to after. The
// levels are unit-agnostic: load steps pass amperes, reference steps
// volts.
func Step(from, to, tStep float64) Signal {
	return func(t float64) float64 {
		if t < tStep {
			return from
		}
		return to
	}
}

// Tones returns a sum of sinusoids offset around a base value — the
// synthetic multi-tone noise waveform used for the paper's Fig. 6 analysis.
func Tones(base float64, amps, freqs []float64) Signal {
	if len(amps) != len(freqs) {
		panic("dynamic: Tones needs matching amplitude/frequency slices")
	}
	return func(t float64) float64 {
		v := base
		for i, a := range amps {
			v += a * math.Sin(2*math.Pi*freqs[i]*t)
		}
		return v
	}
}

// Trace is a simulated output-voltage waveform with bookkeeping.
type Trace struct {
	// Times and V are the sampled instants and output voltages.
	Times, V []float64
	// SwitchEvents counts converter charge-transfer (pump/PWM) events.
	SwitchEvents int
	// AvgFSw is the average realized switching frequency (Hz).
	AvgFSw float64
}

// Reset clears the trace for reuse, keeping the Times/V capacity so a hot
// caller can recycle one Trace across many simulations.
func (tr *Trace) Reset() {
	tr.Times = tr.Times[:0]
	tr.V = tr.V[:0]
	tr.SwitchEvents = 0
	tr.AvgFSw = 0
}

// prepareTrace resets tr (allocating one when nil) and ensures capacity for
// the requested number of samples, so the simulator append loops never grow.
func prepareTrace(tr *Trace, samples int) *Trace {
	if tr == nil {
		tr = &Trace{}
	}
	tr.Reset()
	if cap(tr.Times) < samples {
		tr.Times = make([]float64, 0, samples)
	}
	if cap(tr.V) < samples {
		tr.V = make([]float64, 0, samples)
	}
	return tr
}

// Finite verifies every sample of the trace is finite. The simulators
// call it before returning so that an unstable integration (NaN/Inf
// creeping into the waveform) surfaces as an error rather than corrupting
// downstream droop/ripple statistics.
func (tr *Trace) Finite() error {
	if err := numeric.AllFinite("dynamic: trace voltage", tr.V...); err != nil {
		return err
	}
	return numeric.Finite("dynamic: average f_sw", tr.AvgFSw)
}

// Stats summarizes the waveform.
func (tr *Trace) Stats() numeric.Summary { return numeric.Summarize(tr.V) }

// PeakToPeak returns the voltage-noise range max(V)-min(V).
func (tr *Trace) PeakToPeak() float64 { return numeric.PeakToPeak(tr.V) }

// WorstDroop returns ref - min(V), the depth below the reference that sets
// the guardband.
func (tr *Trace) WorstDroop(ref float64) float64 {
	if len(tr.V) == 0 {
		return 0
	}
	mn, _ := numeric.MinMax(tr.V)
	return ref - mn
}

// Spectrum returns the single-sided amplitude spectrum of the waveform
// (with the mean removed), for regulation-effect analysis à la Fig. 6.
func (tr *Trace) Spectrum() (freq, amp []float64) {
	n := len(tr.V)
	if n < 2 {
		return nil, nil
	}
	dt := tr.Times[1] - tr.Times[0]
	mean := numeric.Mean(tr.V)
	x := make([]float64, n)
	for i, v := range tr.V {
		x[i] = v - mean
	}
	return numeric.RealFFTMagnitude(x, dt)
}

func validateRun(T, dt float64) error {
	if dt <= 0 || T <= 0 || T < dt {
		return fmt.Errorf("dynamic: need 0 < dt <= T (dt=%g, T=%g)", dt, T)
	}
	if T/dt > 5e7 {
		return fmt.Errorf("dynamic: %g steps is beyond the supported budget", T/dt)
	}
	return nil
}
