package dynamic

import (
	"math"
	"testing"

	"ivory/internal/buck"
	"ivory/internal/ldo"
	"ivory/internal/numeric"
	"ivory/internal/sc"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

func scParams() SCParams {
	return SCParams{
		Ratio: 0.5, VIn: 2.0,
		CEq: 40e-9, REq: 0.04,
		COut: 25e-9, FClk: 200e6,
	}
}

func TestSCValidate(t *testing.T) {
	s := &SCSimulator{P: scParams()}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := scParams()
	bad.CEq = 0
	if err := (&SCSimulator{P: bad}).Validate(); err == nil {
		t.Error("zero CEq must fail")
	}
	bad = scParams()
	bad.Ratio = -1
	if err := (&SCSimulator{P: bad}).Validate(); err == nil {
		t.Error("negative ratio must fail")
	}
}

func TestSCRegulatesToReference(t *testing.T) {
	s := &SCSimulator{P: scParams()}
	vref := 0.9
	tr, err := s.Run(Constant(0.3), Constant(vref), 4e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of the second half should sit at/just below the reference
	// (lower-bound hysteretic control rides the reference from below +
	// pump overshoot above).
	half := tr.V[len(tr.V)/2:]
	mean := numeric.Mean(half)
	if math.Abs(mean-vref) > 0.05 {
		t.Errorf("regulated mean %v, want ~%v", mean, vref)
	}
	if tr.SwitchEvents == 0 {
		t.Error("no pump events")
	}
	if tr.AvgFSw <= 0 || tr.AvgFSw > s.P.FClk {
		t.Errorf("average fsw %v outside (0, FClk]", tr.AvgFSw)
	}
}

func TestSCLoadStepDroop(t *testing.T) {
	s := &SCSimulator{P: scParams()}
	vref := 0.9
	step := Step(0.1, 0.8, 2e-6)
	tr, err := s.Run(step, Constant(vref), 5e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Find the worst droop after the step.
	worst := vref
	for i, tt := range tr.Times {
		if tt >= 2e-6 && tr.V[i] < worst {
			worst = tr.V[i]
		}
	}
	droop := vref - worst
	if droop <= 0 {
		t.Error("load step must produce a droop")
	}
	// And the converter must recover: final value close to vref.
	if math.Abs(tr.V[len(tr.V)-1]-vref) > 0.06 {
		t.Errorf("did not recover: %v", tr.V[len(tr.V)-1])
	}
}

func TestSCDVFSTracking(t *testing.T) {
	// Fast DVFS: reference steps up mid-run; output must follow.
	s := &SCSimulator{P: scParams()}
	vr := Step(0.7, 0.9, 2e-6)
	tr, err := s.Run(Constant(0.2), vr, 6e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Before: near 0.7; after settling: near 0.9.
	var before, after []float64
	for i, tt := range tr.Times {
		if tt > 1e-6 && tt < 2e-6 {
			before = append(before, tr.V[i])
		}
		if tt > 5e-6 {
			after = append(after, tr.V[i])
		}
	}
	if m := numeric.Mean(before); math.Abs(m-0.7) > 0.05 {
		t.Errorf("pre-DVFS level %v, want ~0.7", m)
	}
	if m := numeric.Mean(after); math.Abs(m-0.9) > 0.05 {
		t.Errorf("post-DVFS level %v, want ~0.9", m)
	}
}

func TestSCInterleavingReducesRipple(t *testing.T) {
	p1 := scParams()
	p1.Interleave = 1
	p4 := scParams()
	p4.Interleave = 4
	load := Constant(0.3)
	tr1, err := (&SCSimulator{P: p1}).Run(load, Constant(0.9), 4e-6, 0.1e-9)
	if err != nil {
		t.Fatal(err)
	}
	tr4, err := (&SCSimulator{P: p4}).Run(load, Constant(0.9), 4e-6, 0.1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Compare steady-state ripple on the second half.
	r1 := numeric.PeakToPeak(tr1.V[len(tr1.V)/2:])
	r4 := numeric.PeakToPeak(tr4.V[len(tr4.V)/2:])
	if r4 >= r1 {
		t.Errorf("interleaving should reduce ripple: %v -> %v", r1, r4)
	}
}

func TestSCPIControlRegulates(t *testing.T) {
	p := scParams()
	p.Interleave = 8
	s := &SCSimulator{P: p}
	vref := 0.9
	tr, err := s.RunPI(Constant(0.3), Constant(vref), 10e-6, 0.5e-9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The integrator removes the steady offset: mean of the trailing
	// quarter sits on the reference.
	tail := tr.V[3*len(tr.V)/4:]
	mean := numeric.Mean(tail)
	if math.Abs(mean-vref) > 0.01 {
		t.Errorf("PI-regulated mean %v, want %v", mean, vref)
	}
	if tr.AvgFSw <= 0 || tr.AvgFSw > s.P.FClk {
		t.Errorf("avg fsw %v out of range", tr.AvgFSw)
	}
	// Load-step recovery.
	tr2, err := s.RunPI(Step(0.1, 0.5, 4e-6), Constant(vref), 12e-6, 0.5e-9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	final := numeric.Mean(tr2.V[9*len(tr2.V)/10:])
	if math.Abs(final-vref) > 0.015 {
		t.Errorf("PI did not recover the step: %v", final)
	}
}

func TestSCPIValidation(t *testing.T) {
	s := &SCSimulator{P: scParams()}
	if _, err := s.RunPI(Constant(0.1), Constant(0.9), 1e-6, 1e-7, 0, 0); err == nil {
		t.Error("coarse dt must fail")
	}
	bad := scParams()
	bad.COut = 0
	if _, err := (&SCSimulator{P: bad}).RunPI(Constant(0.1), Constant(0.9), 1e-6, 1e-9, 0, 0); err == nil {
		t.Error("invalid params must fail")
	}
}

// The cycle-by-cycle model must settle at the static model's droop
// prediction: V = M*VIn - I*Rout(fsw).
func TestCycleByCycleMatchesStaticDroop(t *testing.T) {
	p := scParams()
	s := &SCSimulator{P: p}
	fsw := 100e6
	iload := 0.3
	tr, err := s.CycleByCycle(Constant(iload), fsw, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	vFinal := tr.V[len(tr.V)-1]
	// Equivalent static impedances of the lumped model.
	rssl := 1 / (p.CEq * fsw)
	rfsl := 2 * p.REq
	exp := 1 - math.Exp(-1/(fsw*2*p.REq*p.CEq))
	// Steady state of Eq. 2: droop = I*T/(CEq*exp).
	want := p.Ratio*p.VIn - iload/(fsw*p.CEq*exp)
	if math.Abs(vFinal-want) > 1e-3 {
		t.Errorf("settled at %v, want %v", vFinal, want)
	}
	// The settled droop lies between the SSL-only and quadrature bounds.
	droop := p.Ratio*p.VIn - vFinal
	if droop < iload*rssl*0.99 || droop > iload*(rssl+rfsl)*1.01 {
		t.Errorf("droop %v outside [%v, %v]", droop, iload*rssl, iload*(rssl+rfsl))
	}
}

func TestSCRunValidation(t *testing.T) {
	s := &SCSimulator{P: scParams()}
	if _, err := s.Run(Constant(0), Constant(0.9), 0, 1e-9); err == nil {
		t.Error("zero T must fail")
	}
	if _, err := s.Run(Constant(0), Constant(0.9), 1e-6, 1e-7); err == nil {
		t.Error("dt above tick period must fail")
	}
	if _, err := s.CycleByCycle(Constant(0), 0, 1e-6); err == nil {
		t.Error("zero fsw must fail")
	}
}

func buckParams() BuckParams {
	return BuckParams{
		VIn: 3.3, L: 10e-9, RL: 0.05,
		COut: 100e-9, FSw: 100e6, Interleave: 4,
	}
}

func TestBuckRegulatesAndRecovers(t *testing.T) {
	s := &BuckSimulator{P: buckParams()}
	vref := 1.0
	step := Step(0.5, 2.0, 4e-6)
	tr, err := s.Run(step, Constant(vref), 10e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Settled before the step.
	var pre, post []float64
	for i, tt := range tr.Times {
		if tt > 3e-6 && tt < 4e-6 {
			pre = append(pre, tr.V[i])
		}
		if tt > 9e-6 {
			post = append(post, tr.V[i])
		}
	}
	if m := numeric.Mean(pre); math.Abs(m-vref) > 0.05 {
		t.Errorf("pre-step level %v", m)
	}
	if m := numeric.Mean(post); math.Abs(m-vref) > 0.05 {
		t.Errorf("post-step level %v (no recovery)", m)
	}
	// Droop at the step moment exists.
	worst := vref
	for i, tt := range tr.Times {
		if tt >= 4e-6 && tt < 6e-6 && tr.V[i] < worst {
			worst = tr.V[i]
		}
	}
	if vref-worst <= 0 {
		t.Error("no droop on load step")
	}
}

func TestBuckValidation(t *testing.T) {
	s := &BuckSimulator{P: buckParams()}
	if _, err := s.Run(Constant(0.5), Constant(1), 1e-6, 1e-7); err == nil {
		t.Error("coarse dt must fail")
	}
	bad := buckParams()
	bad.L = 0
	if err := (&BuckSimulator{P: bad}).Validate(); err == nil {
		t.Error("zero L must fail")
	}
	sat := buckParams()
	s2 := &BuckSimulator{P: sat}
	if _, err := s2.Run(Constant(0.5), Constant(3.4), 1e-6, 0.2e-9); err == nil {
		t.Error("reference above VIn must saturate duty and fail")
	}
}

func ldoParams() LDOParams {
	return LDOParams{VIn: 1.8, GPass: 10, Segments: 64, COut: 20e-9, FSample: 200e6}
}

func TestLDORegulatesAndTracks(t *testing.T) {
	s := &LDOSimulator{P: ldoParams()}
	vref := 1.0
	tr, err := s.Run(Constant(0.5), Constant(vref), 4e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	mean := numeric.Mean(tr.V[len(tr.V)/2:])
	if math.Abs(mean-vref) > 0.05 {
		t.Errorf("LDO regulated mean %v", mean)
	}
	// Load step droop + recovery.
	tr2, err := s.Run(Step(0.2, 1.5, 2e-6), Constant(vref), 6e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	final := numeric.Mean(tr2.V[9*len(tr2.V)/10:])
	if math.Abs(final-vref) > 0.05 {
		t.Errorf("LDO did not recover: %v", final)
	}
}

func TestLDOProportionalFasterThanBangBang(t *testing.T) {
	pb := ldoParams()
	pp := ldoParams()
	pp.Proportional = true
	step := Step(0.2, 1.5, 1e-6)
	trB, err := (&LDOSimulator{P: pb}).Run(step, Constant(1.0), 3e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	trP, err := (&LDOSimulator{P: pp}).Run(step, Constant(1.0), 3e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if trP.WorstDroop(1.0) >= trB.WorstDroop(1.0) {
		t.Errorf("proportional control should cut the droop: %v vs %v",
			trP.WorstDroop(1.0), trB.WorstDroop(1.0))
	}
}

func TestLDOValidation(t *testing.T) {
	bad := ldoParams()
	bad.Segments = 0
	if err := (&LDOSimulator{P: bad}).Validate(); err == nil {
		t.Error("zero segments must fail")
	}
	s := &LDOSimulator{P: ldoParams()}
	if _, err := s.Run(Constant(0), Constant(1), 1e-6, 1e-7); err == nil {
		t.Error("coarse dt must fail")
	}
}

func TestZOHProperties(t *testing.T) {
	fsw := 100e6
	if math.Abs(real(ZOH(0, fsw))-1) > 1e-12 {
		t.Error("ZOH(0) must be 1")
	}
	// Magnitude decays with frequency.
	m1 := cmplxAbs(ZOH(10e6, fsw))
	m2 := cmplxAbs(ZOH(300e6, fsw))
	if m2 >= m1 {
		t.Errorf("ZOH should decay: %v -> %v", m1, m2)
	}
	// Nulls at multiples of fsw.
	if cmplxAbs(ZOH(fsw, fsw)) > 1e-9 {
		t.Error("ZOH must null at fsw")
	}
}

func TestFreqModelRegulationAdvantage(t *testing.T) {
	m := FreqModel{FSw: 200e6, COut: 1e-9, GLoop: 0.5}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 6 finding: at/above fsw the converter is just a
	// capacitor (advantage ~ 1); far below, regulation wins.
	lo := m.RegulationAdvantage(1e6)
	hi := m.RegulationAdvantage(400e6)
	if lo < 3 {
		t.Errorf("low-frequency regulation advantage too small: %v", lo)
	}
	if math.Abs(hi-1) > 0.35 {
		t.Errorf("above fsw the advantage should be ~1, got %v", hi)
	}
	bad := FreqModel{}
	if err := bad.Validate(); err == nil {
		t.Error("zero model must fail")
	}
}

func TestSignalsAndTrace(t *testing.T) {
	s := Sampled([]float64{1, 2, 3}, 1e-6)
	if !numeric.ApproxEqual(s(-1), 1, 0) || !numeric.ApproxEqual(s(0.5e-6), 1, 0) || !numeric.ApproxEqual(s(1.5e-6), 2, 0) || !numeric.ApproxEqual(s(10e-6), 3, 0) {
		t.Error("Sampled wrong")
	}
	tn := Tones(5, []float64{1}, []float64{1e6})
	if math.Abs(tn(0)-5) > 1e-12 {
		t.Error("Tones base wrong")
	}
	if math.Abs(tn(0.25e-6)-6) > 1e-9 {
		t.Error("Tones peak wrong")
	}
	tr := &Trace{Times: []float64{0, 1e-9, 2e-9}, V: []float64{1, 0.9, 1.1}}
	if math.Abs(tr.PeakToPeak()-0.2) > 1e-12 {
		t.Error("PeakToPeak wrong")
	}
	if math.Abs(tr.WorstDroop(1.0)-0.1) > 1e-12 {
		t.Error("WorstDroop wrong")
	}
	f, a := tr.Spectrum()
	if len(f) == 0 || len(a) != len(f) {
		t.Error("Spectrum shape wrong")
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// Line regulation (the third validation scenario the paper lists): an
// input-voltage step propagates into the output attenuated by the ratio
// and the feedback re-regulates.
func TestSCLineRegulation(t *testing.T) {
	p := scParams()
	p.Interleave = 4
	s := &SCSimulator{
		P:   p,
		VIn: Step(2.0, 2.3, 3e-6), // 300 mV line step
	}
	vref := 0.9
	tr, err := s.Run(Constant(0.3), Constant(vref), 8e-6, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	var pre, post []float64
	var peak float64
	for i, tt := range tr.Times {
		if tt > 2e-6 && tt < 3e-6 {
			pre = append(pre, tr.V[i])
		}
		if tt > 7e-6 {
			post = append(post, tr.V[i])
		}
		if tt >= 3e-6 && tt < 4e-6 && tr.V[i] > peak {
			peak = tr.V[i]
		}
	}
	mPre, mPost := numeric.Mean(pre), numeric.Mean(post)
	// The feedback holds the output across the line step.
	if math.Abs(mPre-vref) > 0.03 || math.Abs(mPost-vref) > 0.03 {
		t.Errorf("line step broke regulation: pre %v, post %v", mPre, mPost)
	}
	// The transient overshoot stays bounded well below the ratio-scaled
	// input step (the hysteretic loop only pumps below the reference, so
	// line steps cannot push the output past ref + pump granularity).
	if peak > vref+0.15*0.5+0.05 {
		t.Errorf("line-step overshoot too large: %v", peak)
	}
	// And the line-regulation scenario with the PI loop holds too.
	trPI, err := s.RunPI(Constant(0.3), Constant(vref), 8e-6, 0.5e-9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tail := numeric.Mean(trPI.V[9*len(trPI.V)/10:])
	if math.Abs(tail-vref) > 0.02 {
		t.Errorf("PI line regulation failed: %v", tail)
	}
}

func TestFromDesignMappings(t *testing.T) {
	node := tech.MustLookup("45nm")
	top, err := topology.SeriesParallel(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	an, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	scd, err := sc.New(sc.Config{
		Analysis: an, Node: node, CapKind: tech.DeepTrench,
		VIn: 1.8, VOut: 0.8, CTotal: 40e-9, GTotal: 120, CDecap: 10e-9,
		Interleave: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := SCFromDesign(scd)
	if !numeric.ApproxEqual(p.Ratio, an.Ratio, 0) || p.Interleave != 4 {
		t.Errorf("SCFromDesign fields wrong: %+v", p)
	}
	// CEq reproduces RSSL at any frequency: 1/(CEq*f) == RSSL(f).
	f := 100e6
	if math.Abs(1/(p.CEq*f)-scd.RSSL(f)) > 1e-9*scd.RSSL(f) {
		t.Error("CEq does not reproduce RSSL")
	}
	// REq reproduces RFSL.
	if math.Abs(2*p.REq-scd.RFSL()) > 1e-12 {
		t.Error("REq does not reproduce RFSL")
	}
	pl, err := SCFromDesignAtLoad(scd, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if pl.FClk <= 0 || pl.FClk > scd.Config().FSwMax {
		t.Errorf("load-aware clock %v out of range", pl.FClk)
	}
	// Unsustainable load errors out.
	if _, err := SCFromDesignAtLoad(scd, 1e6); err == nil {
		t.Error("unsustainable load must fail")
	}

	bkd, err := buck.New(buck.Config{
		Node: node, Inductor: tech.IntegratedThinFilm, OutCap: tech.DeepTrench,
		VIn: 1.8, VOut: 0.9, L: 8e-9, COut: 50e-9, FSw: 100e6,
		GHigh: 5, GLow: 8, Interleave: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	bp := BuckFromDesign(bkd)
	if !numeric.ApproxEqual(bp.VIn, 1.8, 0) || bp.Interleave != 2 || bp.L <= 0 {
		t.Errorf("BuckFromDesign fields wrong: %+v", bp)
	}
	if err := (&BuckSimulator{P: bp}).Validate(); err != nil {
		t.Error(err)
	}

	ld, err := ldo.New(ldo.Config{Node: node, VIn: 1.2, VOut: 0.9, GPass: 10, COut: 10e-9, FSample: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	lp := LDOFromDesign(ld)
	if !numeric.ApproxEqual(lp.GPass, 10, 0) || lp.Segments < 2 {
		t.Errorf("LDOFromDesign fields wrong: %+v", lp)
	}
	if err := (&LDOSimulator{P: lp}).Validate(); err != nil {
		t.Error(err)
	}
}
