package sc

import (
	"math"
	"testing"
	"testing/quick"

	"ivory/internal/tech"
	"ivory/internal/topology"
)

// Property: across random valid sizings, the regulated output lands on the
// target and the realized efficiency stays below the ideal-ratio bound.
func TestRegulationProperty(t *testing.T) {
	top, err := topology.SeriesParallel(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	an, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	node := tech.MustLookup("32nm")
	f := func(cRaw, gRaw, iRaw uint16) bool {
		ctot := 10e-9 + float64(cRaw%1000)*1e-10 // 10..110 nF
		gtot := 50 + float64(gRaw%200)           // 50..250 S
		iload := 0.05 + float64(iRaw%40)*0.01    // 0.05..0.45 A
		d, err := New(Config{
			Analysis: an, Node: node, CapKind: tech.DeepTrench,
			VIn: 1.8, VOut: 0.8, CTotal: ctot, GTotal: gtot, CDecap: 5e-9,
		})
		if err != nil {
			return false
		}
		m, err := d.Evaluate(iload)
		if err != nil {
			// Infeasible sizings are allowed, just not wrong answers.
			return true
		}
		if math.Abs(m.VOut-0.8) > 1e-6 {
			return false
		}
		bound := m.VOut / (an.Ratio * 1.8)
		if m.Efficiency > bound+1e-9 || m.Efficiency <= 0 {
			return false
		}
		return m.AreaDie > 0 && m.RippleVpp >= 0 && m.Loss.Total() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: RSSL scales exactly as 1/(C·f): doubling either halves it.
func TestRSSLScalingProperty(t *testing.T) {
	top, _ := topology.SeriesParallel(3, 1)
	an, _ := top.Analyze()
	node := tech.MustLookup("45nm")
	f := func(cRaw uint16, fRaw uint16) bool {
		ctot := 20e-9 + float64(cRaw%500)*1e-10
		fsw := 10e6 + float64(fRaw%200)*1e6
		mk := func(c float64) *Design {
			d, err := New(Config{
				Analysis: an, Node: node, CapKind: tech.DeepTrench,
				VIn: 3.3, VOut: 1.0, CTotal: c, GTotal: 100, CDecap: 5e-9,
			})
			if err != nil {
				return nil
			}
			return d
		}
		d1 := mk(ctot)
		d2 := mk(2 * ctot)
		if d1 == nil || d2 == nil {
			return true
		}
		r1 := d1.RSSL(fsw)
		if math.Abs(d1.RSSL(2*fsw)-r1/2) > 1e-12*r1 {
			return false
		}
		return math.Abs(d2.RSSL(fsw)-r1/2) < 1e-12*r1+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: element values returned by ElementValues reconstruct the
// design's totals.
func TestElementValuesConsistency(t *testing.T) {
	tops := []*topology.Topology{}
	for p := 2; p <= 5; p++ {
		tp, err := topology.SeriesParallel(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		tops = append(tops, tp)
	}
	node := tech.MustLookup("45nm")
	for _, tp := range tops {
		an, err := tp.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(Config{
			Analysis: an, Node: node, CapKind: tech.DeepTrench,
			VIn: 3.3, VOut: 0.9 / float64(3) * 3.3 / 3.3, CTotal: 100e-9, GTotal: 200, CDecap: 5e-9,
		})
		if err != nil {
			// Some ratios cannot hit this target; skip.
			continue
		}
		caps, rons := d.ElementValues()
		var cSum, gSum float64
		for _, c := range caps {
			cSum += c
		}
		for _, r := range rons {
			gSum += 1 / r
		}
		if math.Abs(cSum-100e-9)/100e-9 > 1e-9 {
			t.Errorf("%s: cap sum %v != CTotal", an.Name, cSum)
		}
		if math.Abs(gSum-200)/200 > 1e-9 {
			t.Errorf("%s: conductance sum %v != GTotal", an.Name, gSum)
		}
	}
}

// The two conductance-allocation policies trade regimes. The plain a_r
// split is the R_FSL-minimizing allocation, so when the droop budget is
// tight it keeps the regulation frequency — and the C·f_sw-proportional
// bottom-plate loss — lower. The cost-aware split trades a little R_FSL
// for cheaper gate drive, winning when the droop budget has slack. The
// design optimizer tries both; here we pin the slack-budget regime where
// cost-aware must win.
func TestCostAwareWinsGateDominatedRegime(t *testing.T) {
	top, _ := topology.SeriesParallel(3, 1) // mixed core/IO switches at 3.3 V
	an, _ := top.Analyze()
	node := tech.MustLookup("45nm")
	iLoad := 2.0 // R_req = 0.05 ohm >> R_FSL at these conductances
	f := func(gRaw uint16) bool {
		gtot := 1500 + float64(gRaw%2000) // generous conductance
		base := Config{
			Analysis: an, Node: node, CapKind: tech.DeepTrench,
			VIn: 3.3, VOut: 1.0, CTotal: 2000e-9, GTotal: gtot, CDecap: 20e-9,
		}
		dCA, err1 := New(base)
		uni := base
		uni.UniformSwitchAllocation = true
		dU, err2 := New(uni)
		if err1 != nil || err2 != nil {
			return true
		}
		mCA, err1 := dCA.Evaluate(iLoad)
		mU, err2 := dU.Evaluate(iLoad)
		if err1 != nil || err2 != nil {
			return true
		}
		return mCA.Efficiency >= mU.Efficiency-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// And uniform allocation must always yield the lower (or equal) R_FSL —
// it is the FSL-optimal split by construction.
func TestUniformAllocationMinimizesRFSL(t *testing.T) {
	node := tech.MustLookup("45nm")
	tops := [][2]int{{2, 1}, {3, 1}, {4, 1}, {3, 2}}
	for _, pq := range tops {
		top, err := topology.SeriesParallel(pq[0], pq[1])
		if err != nil {
			t.Fatal(err)
		}
		an, err := top.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		base := Config{
			Analysis: an, Node: node, CapKind: tech.DeepTrench,
			VIn: 3.3, VOut: an.Ratio * 3.3 * 0.9, CTotal: 100e-9, GTotal: 500, CDecap: 5e-9,
		}
		dCA, err := New(base)
		if err != nil {
			t.Fatal(err)
		}
		uni := base
		uni.UniformSwitchAllocation = true
		dU, err := New(uni)
		if err != nil {
			t.Fatal(err)
		}
		if dU.RFSL() > dCA.RFSL()+1e-12 {
			t.Errorf("%s: uniform RFSL %v above cost-aware %v", an.Name, dU.RFSL(), dCA.RFSL())
		}
	}
}
