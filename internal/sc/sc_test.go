package sc

import (
	"errors"
	"math"
	"testing"

	"ivory/internal/ivr"
	"ivory/internal/tech"
	"ivory/internal/topology"

	"ivory/internal/numeric"
)

func mustAnalysis(t *testing.T, top *topology.Topology, err error) *topology.Analysis {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	an, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func baseConfig(t *testing.T) Config {
	t.Helper()
	top, err := topology.SeriesParallel(2, 1)
	an := mustAnalysis(t, top, err)
	return Config{
		Analysis: an,
		Node:     tech.MustLookup("32nm"),
		CapKind:  tech.MOSCap,
		VIn:      1.8,
		VOut:     0.8,
		CTotal:   50e-9,
		GTotal:   120,
		CDecap:   10e-9,
	}
}

func TestNewDefaultsAndValidation(t *testing.T) {
	cfg := baseConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Config()
	if !numeric.ApproxEqual(got.Duty, 0.5, 0) || got.Interleave != 1 || !numeric.ApproxEqual(got.FSwMax, defaultFSwMax, 0) || !numeric.ApproxEqual(got.FSwMin, defaultFSwMin, 0) {
		t.Errorf("defaults not applied: %+v", got)
	}

	bad := cfg
	bad.Analysis = nil
	if _, err := New(bad); err == nil {
		t.Error("nil analysis must fail")
	}
	bad = cfg
	bad.Node = nil
	if _, err := New(bad); err == nil {
		t.Error("nil node must fail")
	}
	bad = cfg
	bad.VOut = 1.0 // above ideal 0.9
	if _, err := New(bad); err == nil {
		t.Error("VOut above ideal ratio must fail")
	}
	bad = cfg
	bad.CTotal = 0
	if _, err := New(bad); err == nil {
		t.Error("zero CTotal must fail")
	}
	bad = cfg
	bad.Duty = 1.5
	if _, err := New(bad); err == nil {
		t.Error("duty > 1 must fail")
	}
	bad = cfg
	bad.Interleave = -2
	if _, err := New(bad); err == nil {
		t.Error("negative interleave must fail")
	}
}

func TestCapacitorVoltageRating(t *testing.T) {
	// A 2:1 from 3.3 V puts 1.65 V on a MOS cap rated ~1 V at 32 nm: reject.
	cfg := baseConfig(t)
	cfg.VIn = 3.3
	cfg.VOut = 1.4
	if _, err := New(cfg); err == nil {
		t.Error("over-voltage MOS cap must be rejected")
	}
	// MIM caps are rated 3.3 V: accepted.
	cfg.CapKind = tech.MIMCap
	if _, err := New(cfg); err != nil {
		t.Errorf("MIM variant should pass: %v", err)
	}
}

func TestImpedanceFormulas(t *testing.T) {
	cfg := baseConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := cfg.Analysis
	fsw := 100e6
	wantSSL := an.SumAC * an.SumAC / (cfg.CTotal * fsw)
	if math.Abs(d.RSSL(fsw)-wantSSL) > 1e-12 {
		t.Errorf("RSSL = %v, want %v", d.RSSL(fsw), wantSSL)
	}
	wantFSL := an.SumAR * an.SumAR / (cfg.GTotal * 0.5)
	if math.Abs(d.RFSL()-wantFSL) > 1e-12 {
		t.Errorf("RFSL = %v, want %v", d.RFSL(), wantFSL)
	}
	// RSSL halves when frequency doubles.
	if math.Abs(d.RSSL(2*fsw)-wantSSL/2) > 1e-12 {
		t.Error("RSSL must scale as 1/fsw")
	}
	// Total impedance is the quadrature sum.
	want := math.Hypot(wantSSL, wantFSL)
	if math.Abs(d.ROut(fsw)-want) > 1e-12 {
		t.Error("ROut must be sqrt(RSSL^2 + RFSL^2)")
	}
}

func TestRegulationFrequencyConsistency(t *testing.T) {
	cfg := baseConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iLoad := 0.4
	fsw, err := d.RegulationFrequency(iLoad)
	if err != nil {
		t.Fatal(err)
	}
	// At the regulation frequency, droop must land V_out at the target.
	vOut := cfg.Analysis.Ratio*cfg.VIn - iLoad*d.ROut(fsw)
	if math.Abs(vOut-cfg.VOut) > 1e-6 {
		t.Errorf("regulated V_out = %v, want %v", vOut, cfg.VOut)
	}
	// Heavier load needs a higher frequency.
	fsw2, err := d.RegulationFrequency(2 * iLoad)
	if err != nil {
		t.Fatal(err)
	}
	if fsw2 <= fsw {
		t.Errorf("fsw should rise with load: %v -> %v", fsw, fsw2)
	}
	// Zero load settles at the floor.
	f0, err := d.RegulationFrequency(0)
	if err != nil || !numeric.ApproxEqual(f0, d.Config().FSwMin, 0) {
		t.Errorf("zero-load frequency: %v, %v", f0, err)
	}
}

func TestRegulationInfeasibleCases(t *testing.T) {
	cfg := baseConfig(t)
	cfg.GTotal = 0.5 // tiny switches: FSL dominates
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.RegulationFrequency(5)
	var inf *ivr.InfeasibleError
	if !errors.As(err, &inf) {
		t.Errorf("expected InfeasibleError, got %v", err)
	}

	// Tiny capacitance: frequency limit exceeded.
	cfg = baseConfig(t)
	cfg.CTotal = 5e-12
	d, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = d.RegulationFrequency(1.0); !errors.As(err, &inf) {
		t.Errorf("expected frequency-limit infeasibility, got %v", err)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	cfg := baseConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Evaluate(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.VOut-cfg.VOut) > 1e-6 {
		t.Errorf("VOut = %v", m.VOut)
	}
	if m.Efficiency <= 0.5 || m.Efficiency >= 0.92 {
		t.Errorf("2:1 SC efficiency out of plausible band: %v", m.Efficiency)
	}
	// Efficiency can never exceed the ideal-ratio bound VOut/(M*VIn).
	bound := m.VOut / (cfg.Analysis.Ratio * cfg.VIn)
	if m.Efficiency > bound+1e-9 {
		t.Errorf("efficiency %v above ideal bound %v", m.Efficiency, bound)
	}
	if m.Loss.Conduction <= 0 || m.Loss.GateDrive <= 0 || m.Loss.Control <= 0 {
		t.Errorf("loss breakdown incomplete: %+v", m.Loss)
	}
	if m.AreaDie <= 0 {
		t.Error("area must be positive")
	}
	if m.RippleVpp <= 0 {
		t.Error("ripple must be positive under load")
	}
	if m.POut <= 0 || m.FSw <= 0 {
		t.Error("basic metrics missing")
	}
	if m.String() == "" {
		t.Error("String() empty")
	}
}

func TestEvaluateAtOpenLoop(t *testing.T) {
	cfg := baseConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Higher frequency -> lower impedance -> higher open-loop V_out.
	m1, err := d.EvaluateAt(0.4, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := d.EvaluateAt(0.4, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if m2.VOut <= m1.VOut {
		t.Errorf("open-loop VOut should rise with fsw: %v -> %v", m1.VOut, m2.VOut)
	}
	if _, err := d.EvaluateAt(0.4, 0); err == nil {
		t.Error("zero fsw must fail")
	}
	// Crushing load at low frequency collapses the output.
	if _, err := d.EvaluateAt(100, 1e6); err == nil {
		t.Error("collapsed output must fail")
	}
}

func TestInterleavingReducesRipple(t *testing.T) {
	cfg := baseConfig(t)
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := cfg
	cfg8.Interleave = 8
	d8, err := New(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	r1 := d1.Ripple(0.4, 100e6)
	r8 := d8.Ripple(0.4, 100e6)
	if math.Abs(r8-r1/8) > 1e-12 {
		t.Errorf("8-way interleave ripple %v, want %v", r8, r1/8)
	}
	// Static efficiency barely changes with interleaving (same totals, a
	// bit more clock distribution).
	m1, err1 := d1.Evaluate(0.4)
	m8, err8 := d8.Evaluate(0.4)
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	if math.Abs(m1.Efficiency-m8.Efficiency) > 0.02 {
		t.Errorf("interleaving changed efficiency too much: %v vs %v", m1.Efficiency, m8.Efficiency)
	}
}

func TestEfficiencyPeaksNearIdealRatio(t *testing.T) {
	cfg := baseConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vout, eff := d.EfficiencyCurve(0.4, 0.3, 0.89, 40)
	if len(vout) < 10 {
		t.Fatalf("curve too short: %d points", len(vout))
	}
	// Efficiency should be increasing in V_out over most of the range
	// (the linear-like region the paper shows in Fig. 7).
	peakIdx := 0
	for i, e := range eff {
		if e > eff[peakIdx] {
			peakIdx = i
		}
	}
	if vout[peakIdx] < 0.75 {
		t.Errorf("peak efficiency at VOut=%v, expected near the 0.9 V ideal", vout[peakIdx])
	}
	// All points bounded by the ideal-ratio line.
	for i := range vout {
		bound := vout[i] / (cfg.Analysis.Ratio * cfg.VIn)
		if eff[i] > bound+1e-9 {
			t.Errorf("point %d: efficiency %v above bound %v", i, eff[i], bound)
		}
	}
}

func TestGTotalForSwitchAreaRoundTrip(t *testing.T) {
	cfg := baseConfig(t)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	area := d.SwitchArea()
	if area <= 0 {
		t.Fatal("switch area must be positive")
	}
	g, err := GTotalForSwitchArea(cfg.Analysis, cfg.Node, cfg.VIn, area)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-cfg.GTotal)/cfg.GTotal > 1e-9 {
		t.Errorf("round trip GTotal = %v, want %v", g, cfg.GTotal)
	}
	if _, err := GTotalForSwitchArea(cfg.Analysis, cfg.Node, cfg.VIn, 0); err == nil {
		t.Error("zero area must fail")
	}
}

func TestHigherCapDensityHelpsEfficiency(t *testing.T) {
	// With deep-trench caps the same area affords more capacitance, so at
	// equal CTotal the trench design runs at the same frequency but the
	// paper's area-constrained story is: for the same area, trench gives
	// lower f_sw and higher efficiency. Emulate by comparing equal-area
	// designs.
	cfg := baseConfig(t)
	node := cfg.Node
	mos, _ := node.Capacitor(tech.MOSCap)
	dt, _ := node.Capacitor(tech.DeepTrench)
	area := mos.Area(cfg.CTotal)
	cfgTrench := cfg
	cfgTrench.CapKind = tech.DeepTrench
	cfgTrench.CTotal = dt.DensityFPerM2 * area
	dMOS, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dTrench, err := New(cfgTrench)
	if err != nil {
		t.Fatal(err)
	}
	mM, err1 := dMOS.Evaluate(0.4)
	mT, err2 := dTrench.Evaluate(0.4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if mT.FSw >= mM.FSw {
		t.Errorf("trench design should regulate at lower fsw: %v vs %v", mT.FSw, mM.FSw)
	}
	if mT.Efficiency <= mM.Efficiency {
		t.Errorf("trench design should be more efficient at equal area: %v vs %v",
			mT.Efficiency, mM.Efficiency)
	}
}

func TestThreeToOneFromBoardVoltage(t *testing.T) {
	// The case-study configuration: 3:1 SC from 3.3 V targeting ~1 V.
	top, err := topology.SeriesParallel(3, 1)
	an := mustAnalysis(t, top, err)
	cfg := Config{
		Analysis: an,
		Node:     tech.MustLookup("45nm"),
		CapKind:  tech.DeepTrench, // fly caps hold only Vin/3
		VIn:      3.3,
		VOut:     1.0,
		CTotal:   400e-9,
		GTotal:   600,
		CDecap:   20e-9,
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Evaluate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Efficiency < 0.55 || m.Efficiency > 0.92 {
		t.Errorf("3:1 efficiency out of band: %v", m.Efficiency)
	}
}
