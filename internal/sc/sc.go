// Package sc implements Ivory's static model of switched-capacitor (SC)
// integrated voltage regulators, following the Seeman charge-multiplier
// methodology the paper adopts (its Eq. 1):
//
//	R_SSL = (Σ a_c,i)² / (C_tot · f_sw)     slow-switching-limit impedance
//	R_FSL = (Σ a_r,i)² / (G_tot · D_cyc)    fast-switching-limit impedance
//	R_out = sqrt(R_SSL² + R_FSL²)
//
// The model regulates the output by switching-frequency modulation: given a
// target V_out below the ideal M·V_in, the design's R_SSL (and hence f_sw)
// is chosen so that V_out = M·V_in − I_load·R_out at the evaluated load.
// On top of the intrinsic I²·R_out loss it accounts for gate-drive,
// drain/bottom-plate parasitic, leakage, and controller losses, all derived
// from the technology database, plus die area. Interleaving divides the
// converter into N phase-shifted slices, leaving static efficiency
// essentially unchanged while dividing the output ripple.
package sc

import (
	"fmt"
	"math"

	"ivory/internal/ivr"
	"ivory/internal/numeric"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

// Config parameterizes an SC converter design point.
type Config struct {
	// Analysis is the topology characterization (ratio + multipliers).
	Analysis *topology.Analysis
	// Node is the technology node the converter is built in.
	Node *tech.Node
	// CapKind selects the flying-capacitor flavour.
	CapKind tech.CapacitorKind
	// VIn is the input voltage (V).
	VIn float64
	// VOut is the regulation target (V); must be below Analysis.Ratio*VIn.
	VOut float64
	// CTotal is the total flying capacitance (F).
	CTotal float64
	// GTotal is the total switch conductance (S).
	GTotal float64
	// Duty is the phase duty cycle; defaults to 0.5.
	Duty float64
	// Interleave is the number of phase-shifted slices; defaults to 1.
	Interleave int
	// CDecap is explicit output decoupling capacitance (F).
	CDecap float64
	// FSwMax caps the controller's switching frequency (Hz); defaults to
	// 2 GHz, beyond which gate-drive modeling assumptions break down.
	FSwMax float64
	// FSwMin floors the frequency-modulation feedback (Hz); defaults to
	// 100 kHz.
	FSwMin float64
	// BottomPlateLossFactor scales the raw bottom-plate parasitic loss to
	// model charge-recycling techniques (Tong et al., the paper's ref [4]).
	// Zero selects the default of 0.3 (70 % recycled); set to 1 for a
	// design without recycling.
	BottomPlateLossFactor float64
	// UniformSwitchAllocation disables the cost-aware conductance split
	// and uses the plain G_i ∝ a_r,i rule of the basic optimal-sizing
	// derivation. With homogeneous devices the two coincide; with mixed
	// core/I-O switches the cost-aware split is strictly better. Exposed
	// for the ablation study.
	UniformSwitchAllocation bool
}

// Design is a validated, device-mapped SC converter ready for evaluation.
type Design struct {
	cfg Config

	// Per-switch device mapping.
	devs   []tech.SwitchDevice
	stacks []int
	gShare []float64 // per-switch conductance (S)
	widths []float64 // per-switch total width (m)

	// Per-cap allocation.
	capOpt tech.CapacitorOption
	capC   []float64 // per-cap capacitance (F)

	decapOpt tech.CapacitorOption
}

const (
	defaultFSwMax    = 2e9
	defaultFSwMin    = 100e3
	defaultBPRecycle = 0.3
	driverTax        = 1.3  // gate-drive loss multiplier for the driver chain
	routingTax       = 1.10 // area multiplier for routing/keep-out
	ctrlGates        = 1500 // feedback controller complexity
	clockGates       = 400  // clock generator + per-slice distribution
	ctrlStaticW      = 50e-6
)

// New validates the configuration, allocates capacitance and conductance
// across elements in proportion to their charge multipliers (the
// loss-optimal split), and maps every switch onto the cheapest technology
// device able to block its off-state voltage.
func New(cfg Config) (*Design, error) {
	if cfg.Analysis == nil {
		return nil, fmt.Errorf("sc: Config.Analysis is required")
	}
	if cfg.Node == nil {
		return nil, fmt.Errorf("sc: Config.Node is required")
	}
	if cfg.VIn <= 0 || cfg.VOut <= 0 {
		return nil, fmt.Errorf("sc: voltages must be positive (VIn=%g, VOut=%g)", cfg.VIn, cfg.VOut)
	}
	if cfg.CTotal <= 0 || cfg.GTotal <= 0 {
		return nil, fmt.Errorf("sc: CTotal and GTotal must be positive")
	}
	if cfg.Duty == 0 {
		cfg.Duty = 0.5
	}
	if cfg.Duty <= 0 || cfg.Duty > 1 {
		return nil, fmt.Errorf("sc: duty cycle %g outside (0, 1]", cfg.Duty)
	}
	if cfg.Interleave == 0 {
		cfg.Interleave = 1
	}
	if cfg.Interleave < 1 {
		return nil, fmt.Errorf("sc: interleave %d must be >= 1", cfg.Interleave)
	}
	if cfg.FSwMax == 0 {
		cfg.FSwMax = defaultFSwMax
	}
	if cfg.FSwMin == 0 {
		cfg.FSwMin = defaultFSwMin
	}
	if cfg.BottomPlateLossFactor == 0 {
		cfg.BottomPlateLossFactor = defaultBPRecycle
	}
	if cfg.BottomPlateLossFactor < 0 || cfg.BottomPlateLossFactor > 1 {
		return nil, fmt.Errorf("sc: BottomPlateLossFactor %g outside [0, 1]", cfg.BottomPlateLossFactor)
	}
	ideal := cfg.Analysis.Ratio * cfg.VIn
	if cfg.VOut >= ideal {
		return nil, ivr.Infeasible(cfg.Analysis.Name,
			"target VOut %.3g V not below ideal output %.3g V (= %.3g * %.3g V)",
			cfg.VOut, ideal, cfg.Analysis.Ratio, cfg.VIn)
	}
	capOpt, err := cfg.Node.Capacitor(cfg.CapKind)
	if err != nil {
		return nil, err
	}
	d := &Design{cfg: cfg, capOpt: capOpt}
	// Decap uses the densest low-voltage option available: deep trench if
	// present, MOS otherwise.
	if dt, err := cfg.Node.Capacitor(tech.DeepTrench); err == nil {
		d.decapOpt = dt
	} else {
		d.decapOpt = capOpt
	}
	an := cfg.Analysis
	// Capacitance allocation proportional to |a_c| (optimal SSL split).
	d.capC = make([]float64, an.NumCaps)
	for i, m := range an.CapMultipliers {
		d.capC[i] = cfg.CTotal * m / an.SumAC
		// Voltage-rating check against the capacitor option.
		if v := an.CapVoltages[i] * cfg.VIn; v > capOpt.VMax*1.001 {
			return nil, ivr.Infeasible(an.Name,
				"capacitor %d holds %.2f V, above the %.2f V rating of %v caps", i, v, capOpt.VMax, cfg.CapKind)
		}
	}
	// Per-switch device selection and conductance allocation.
	devs, stacks, weights, err := switchPlan(an, cfg.Node, cfg.VIn, cfg.UniformSwitchAllocation)
	if err != nil {
		return nil, err
	}
	d.devs = devs
	d.stacks = stacks
	d.gShare = make([]float64, an.NumSwitches)
	d.widths = make([]float64, an.NumSwitches)
	for i := range devs {
		d.gShare[i] = cfg.GTotal * weights[i]
		// Stack of s devices in series: total R = s * RonW/W.
		d.widths[i] = float64(stacks[i]) * devs[i].ROnWidth * d.gShare[i]
	}
	if err := numeric.AllFinite("sc: capacitor allocation", d.capC...); err != nil {
		return nil, err
	}
	if err := numeric.AllFinite("sc: switch widths", d.widths...); err != nil {
		return nil, err
	}
	return d, nil
}

// switchPlan maps each switch of the topology onto a technology device
// (respecting its blocking voltage) and computes the conductance allocation
// weights. Weights follow the loss-optimal split for heterogeneous
// switches: G_i ∝ a_r,i / sqrt(κ_i), where κ_i = stack²·RonW·CgW·Vdrive² is
// the switch's conduction-times-gate-energy cost. For a topology whose
// switches all use the same device this reduces to the paper's G_i ∝ a_r,i
// split and reproduces R_FSL = (Σa_r)²/(G_tot·D) exactly.
func switchPlan(an *topology.Analysis, node *tech.Node, vin float64, uniform bool) (devs []tech.SwitchDevice, stacks []int, weights []float64, err error) {
	devs = make([]tech.SwitchDevice, an.NumSwitches)
	stacks = make([]int, an.NumSwitches)
	weights = make([]float64, an.NumSwitches)
	sum := 0.0
	for i, m := range an.SwitchMultipliers {
		vBlock := an.SwitchBlockVoltages[i] * vin
		if vBlock < 0.1*vin {
			vBlock = 0.1 * vin // floor: every switch sees some stress
		}
		dev, stack, err := node.SwitchForVoltage(vBlock)
		if err != nil {
			return nil, nil, nil, err
		}
		devs[i] = dev
		stacks[i] = stack
		vdr := dev.VDrive
		kappa := float64(stack*stack) * dev.ROnWidth * dev.CGatePerWidth * vdr * vdr
		w := m / math.Sqrt(kappa)
		if uniform {
			w = m
		}
		weights[i] = w
		sum += w
	}
	if sum <= 0 {
		return nil, nil, nil, fmt.Errorf("sc: degenerate switch multipliers in %s", an.Name)
	}
	for i := range weights {
		weights[i] /= sum
	}
	return devs, stacks, weights, nil
}

// Config returns the (defaulted) configuration of the design.
func (d *Design) Config() Config { return d.cfg }

// RSSL returns the slow-switching-limit output impedance at f_sw.
func (d *Design) RSSL(fsw float64) float64 {
	an := d.cfg.Analysis
	return an.SumAC * an.SumAC / (d.cfg.CTotal * fsw)
}

// RFSL returns the fast-switching-limit output impedance:
// R_FSL = (1/D)·Σ a_r,i²/G_i with the design's conductance allocation,
// which equals the paper's (Σa_r)²/(G_tot·D) when all switches share one
// device class.
func (d *Design) RFSL() float64 {
	an := d.cfg.Analysis
	sum := 0.0
	for i, m := range an.SwitchMultipliers {
		if d.gShare[i] <= 0 {
			continue
		}
		sum += m * m / d.gShare[i]
	}
	return sum / d.cfg.Duty
}

// ROut returns the total output impedance at f_sw.
func (d *Design) ROut(fsw float64) float64 {
	rssl := d.RSSL(fsw)
	rfsl := d.RFSL()
	return math.Sqrt(rssl*rssl + rfsl*rfsl)
}

// RegulationFrequency returns the switching frequency at which the
// converter's droop places V_out exactly at the target for load current
// iLoad — the steady-state operating point of the frequency-modulation
// feedback loop. It errors when the target is unreachable (droop exceeds
// the FSL bound) or needs a frequency above FSwMax.
func (d *Design) RegulationFrequency(iLoad float64) (float64, error) {
	cfg := d.cfg
	an := cfg.Analysis
	if iLoad <= 0 {
		return cfg.FSwMin, nil
	}
	rReq := (an.Ratio*cfg.VIn - cfg.VOut) / iLoad
	rfsl := d.RFSL()
	if rReq <= rfsl {
		return 0, ivr.Infeasible(an.Name,
			"required output impedance %.3g ohm below FSL bound %.3g ohm at %.3g A — increase GTotal or lower VOut",
			rReq, rfsl, iLoad)
	}
	rssl := math.Sqrt(rReq*rReq - rfsl*rfsl)
	fsw := an.SumAC * an.SumAC / (cfg.CTotal * rssl)
	if fsw > cfg.FSwMax {
		return 0, ivr.Infeasible(an.Name,
			"regulation needs f_sw %.3g Hz above the %.3g Hz limit — increase CTotal", fsw, cfg.FSwMax)
	}
	if fsw < cfg.FSwMin {
		fsw = cfg.FSwMin
	}
	if err := numeric.Finite("sc: regulation f_sw", fsw); err != nil {
		return 0, err
	}
	return fsw, nil
}

// Evaluate computes the static metrics at load current iLoad (A), with the
// feedback loop holding V_out at the configured target.
func (d *Design) Evaluate(iLoad float64) (ivr.Metrics, error) {
	fsw, err := d.RegulationFrequency(iLoad)
	if err != nil {
		return ivr.Metrics{}, err
	}
	return d.EvaluateAt(iLoad, fsw)
}

// EvaluateAt computes the static metrics at an explicit switching frequency
// (open-loop), exposing the raw efficiency-vs-frequency trade-off.
func (d *Design) EvaluateAt(iLoad, fsw float64) (ivr.Metrics, error) {
	cfg := d.cfg
	an := cfg.Analysis
	if fsw <= 0 {
		return ivr.Metrics{}, fmt.Errorf("sc: fsw must be positive")
	}
	rOut := d.ROut(fsw)
	vOut := an.Ratio*cfg.VIn - iLoad*rOut
	if vOut <= 0 {
		return ivr.Metrics{}, ivr.Infeasible(an.Name, "output collapses (%.3g V) at %.3g A, f_sw %.3g Hz", vOut, iLoad, fsw)
	}
	var loss ivr.LossBreakdown
	// Intrinsic conduction/regulation loss through the output impedance.
	loss.Conduction = iLoad * iLoad * rOut

	// Gate drive: per-switch stack gate capacitance cycled each period.
	for i := range d.devs {
		dev := d.devs[i]
		cg := dev.CGate(d.widths[i]) // total gate cap of the stack width
		loss.GateDrive += fsw * cg * dev.VDrive * dev.VDrive
	}
	loss.GateDrive *= driverTax

	// Drain-junction parasitics switched across each device's blocking
	// voltage, plus capacitor bottom-plate parasitics.
	for i := range d.devs {
		vb := an.SwitchBlockVoltages[i] * cfg.VIn
		loss.Parasitic += fsw * d.devs[i].CDrain(d.widths[i]) * vb * vb
	}
	for i, c := range d.capC {
		swing := an.CapBottomSwing[i] * cfg.VIn
		loss.Parasitic += cfg.BottomPlateLossFactor * fsw * d.capOpt.BottomPlateRatio * c * swing * swing
	}

	// Leakage: capacitor dielectric leakage plus off-state switch leakage
	// (each switch is off half the time).
	for i, c := range d.capC {
		loss.Leakage += c * d.capOpt.LeakPerFarad * an.CapVoltages[i] * cfg.VIn
	}
	for i := range d.devs {
		vb := an.SwitchBlockVoltages[i] * cfg.VIn
		loss.Leakage += 0.5 * d.devs[i].Leakage(d.widths[i]) * vb
	}

	// Controller, comparator, and clocking.
	eg := cfg.Node.LogicEnergyPerGateJ
	loss.Control = ctrlStaticW + fsw*eg*float64(ctrlGates+clockGates*cfg.Interleave)

	pOut := vOut * iLoad
	eff := 0.0
	if pOut > 0 {
		eff = pOut / (pOut + loss.Total())
	}
	m := ivr.Metrics{
		Topology:   an.Name + " SC",
		VIn:        cfg.VIn,
		VOut:       vOut,
		ILoad:      iLoad,
		POut:       pOut,
		Loss:       loss,
		Efficiency: eff,
		RippleVpp:  d.Ripple(iLoad, fsw),
		FSw:        fsw,
		AreaDie:    d.Area(),
	}
	if err := m.Finite(); err != nil {
		return ivr.Metrics{}, err
	}
	return m, nil
}

// ElementValues returns the per-capacitor capacitances (F) and per-switch
// on-resistances (ohm) of the design — the values a switch-level simulator
// needs to build the equivalent netlist.
func (d *Design) ElementValues() (caps, rons []float64) {
	caps = append([]float64(nil), d.capC...)
	rons = make([]float64, len(d.gShare))
	for i, g := range d.gShare {
		rons[i] = 1 / g
	}
	return caps, rons
}

// CFlyEffective returns the flying capacitance effectively decoupling the
// output within a phase — the quantity the in-cycle dynamic model uses.
// On average half of the total flying capacitance faces the output.
func (d *Design) CFlyEffective() float64 { return 0.5 * d.cfg.CTotal }

// Ripple estimates the static peak-to-peak output ripple: the load
// discharges the output-facing capacitance between phase boundaries, whose
// spacing shrinks with interleaving.
func (d *Design) Ripple(iLoad, fsw float64) float64 {
	if iLoad <= 0 || fsw <= 0 {
		return 0
	}
	tPhase := 1 / (2 * fsw * float64(d.cfg.Interleave))
	cEff := d.cfg.CDecap + d.CFlyEffective()
	if cEff <= 0 {
		return 0
	}
	return iLoad * tPhase / cEff
}

// Area returns the total die area (m²): flying caps, decap, switches, and
// controller, with a routing tax.
func (d *Design) Area() float64 {
	a := d.capOpt.Area(d.cfg.CTotal)
	a += d.decapOpt.Area(d.cfg.CDecap)
	for i := range d.devs {
		a += float64(d.stacks[i]) * d.devs[i].Area(d.widths[i])
	}
	// Controller macro: gate count at 40 F^2 per gate equivalent.
	f := d.cfg.Node.FeatureM
	a += float64(ctrlGates+clockGates*d.cfg.Interleave) * 40 * f * f * 25
	return a * routingTax
}

// SwitchArea returns only the power-switch area (m²), used by area-split
// optimization.
func (d *Design) SwitchArea() float64 {
	a := 0.0
	for i := range d.devs {
		a += float64(d.stacks[i]) * d.devs[i].Area(d.widths[i])
	}
	return a
}

// GTotalForSwitchArea returns the total conductance achievable with the
// given switch area (m²) for this design's topology and voltage mapping.
// Conductance shares follow the optimal |a_r| split, so area relates to
// G_total through the multiplier-weighted stack costs.
func GTotalForSwitchArea(an *topology.Analysis, node *tech.Node, vin, areaM2 float64) (float64, error) {
	if areaM2 <= 0 {
		return 0, fmt.Errorf("sc: switch area must be positive")
	}
	devs, stacks, weights, err := switchPlan(an, node, vin, false)
	if err != nil {
		return 0, err
	}
	// area = G_total · Σ w_i · s_i² · RonW_i · AreaPerW_i
	denom := 0.0
	for i := range devs {
		denom += weights[i] * float64(stacks[i]*stacks[i]) * devs[i].ROnWidth * devs[i].AreaPerWidth
	}
	if denom <= 0 {
		return 0, fmt.Errorf("sc: degenerate switch multipliers")
	}
	gTotal := areaM2 / denom
	if err := numeric.Finite("sc: G_total for switch area", gTotal); err != nil {
		return 0, err
	}
	return gTotal, nil
}

// EfficiencyCurve sweeps the open-loop output voltage from vLo to vHi (by
// varying f_sw regulation) at fixed load and returns parallel slices of
// achieved V_out and efficiency — the curve shape validated in the paper's
// Fig. 7. Points past the efficiency cliff (unreachable targets) are
// omitted, mirroring the "non-functional region" of real converters.
func (d *Design) EfficiencyCurve(iLoad, vLo, vHi float64, points int) (vout, eff []float64) {
	if points < 2 {
		points = 2
	}
	for k := 0; k < points; k++ {
		target := vLo + (vHi-vLo)*float64(k)/float64(points-1)
		cfg := d.cfg
		cfg.VOut = target
		dd, err := New(cfg)
		if err != nil {
			continue
		}
		m, err := dd.Evaluate(iLoad)
		if err != nil {
			continue
		}
		vout = append(vout, m.VOut)
		eff = append(eff, m.Efficiency)
	}
	return vout, eff
}
