package sc

import (
	"fmt"

	"ivory/internal/ivr"
	"ivory/internal/topology"
)

// Reconfigurable models a gear-shifting switched-capacitor converter: one
// switch/capacitor fabric that can be reconfigured between several
// conversion ratios at run time — the style of design the paper validates
// against silicon in Fig. 7 (a 32 nm reconfigurable 3:2 / 2:1 converter)
// and the natural companion to DVFS, where the best ratio tracks the
// output voltage.
//
// Every gear shares the same configuration (technology, C/G budget, area);
// only the topology analysis differs. Evaluation picks the most efficient
// feasible gear for the requested operating point.
type Reconfigurable struct {
	gears []*Design
}

// NewReconfigurable builds one Design per gear from the shared base
// configuration (base.Analysis is ignored). At least one gear must be
// feasible for construction to succeed; per-operating-point feasibility is
// decided at evaluation time.
func NewReconfigurable(base Config, gears []*topology.Analysis) (*Reconfigurable, error) {
	if len(gears) == 0 {
		return nil, fmt.Errorf("sc: reconfigurable converter needs at least one gear")
	}
	r := &Reconfigurable{}
	var firstErr error
	for _, an := range gears {
		cfg := base
		cfg.Analysis = an
		d, err := New(cfg)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.gears = append(r.gears, d)
	}
	if len(r.gears) == 0 {
		return nil, fmt.Errorf("sc: no feasible gear: %w", firstErr)
	}
	return r, nil
}

// Gears returns the constructed gear designs.
func (r *Reconfigurable) Gears() []*Design {
	return append([]*Design(nil), r.gears...)
}

// EvaluateAtVOut re-targets every gear to the requested output voltage,
// evaluates each at the load, and returns the best gear's metrics along
// with its index. Gears whose ideal ratio cannot reach the target are
// skipped — exactly the gear-shifting decision a reconfigurable
// controller makes.
func (r *Reconfigurable) EvaluateAtVOut(vOut, iLoad float64) (ivr.Metrics, int, error) {
	bestIdx := -1
	var best ivr.Metrics
	var firstErr error
	for i, g := range r.gears {
		cfg := g.Config()
		cfg.VOut = vOut
		d, err := New(cfg)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m, err := d.Evaluate(iLoad)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if bestIdx < 0 || m.Efficiency > best.Efficiency {
			bestIdx = i
			best = m
		}
	}
	if bestIdx < 0 {
		return ivr.Metrics{}, -1, ivr.Infeasible("reconfigurable SC",
			"no gear reaches %.3g V at %.3g A: %v", vOut, iLoad, firstErr)
	}
	return best, bestIdx, nil
}

// EfficiencyEnvelope sweeps the output voltage and returns, per point, the
// best gear's efficiency and which gear won — the upper envelope of the
// per-gear efficiency curves, which is what a DVFS governor experiences.
func (r *Reconfigurable) EfficiencyEnvelope(iLoad, vLo, vHi float64, points int) (vout, eff []float64, gear []int) {
	if points < 2 {
		points = 2
	}
	for k := 0; k < points; k++ {
		target := vLo + (vHi-vLo)*float64(k)/float64(points-1)
		m, idx, err := r.EvaluateAtVOut(target, iLoad)
		if err != nil {
			continue
		}
		vout = append(vout, target)
		eff = append(eff, m.Efficiency)
		gear = append(gear, idx)
	}
	return vout, eff, gear
}

// ShiftPoints returns the output voltages (midpoints between sweep samples)
// where the winning gear changes across the envelope.
func (r *Reconfigurable) ShiftPoints(iLoad, vLo, vHi float64, points int) []float64 {
	vout, _, gear := r.EfficiencyEnvelope(iLoad, vLo, vHi, points)
	var shifts []float64
	for i := 1; i < len(gear); i++ {
		if gear[i] != gear[i-1] {
			shifts = append(shifts, 0.5*(vout[i-1]+vout[i]))
		}
	}
	return shifts
}
