package sc

import (
	"testing"

	"ivory/internal/tech"
	"ivory/internal/topology"
)

func reconfigGears(t *testing.T) []*topology.Analysis {
	t.Helper()
	var out []*topology.Analysis
	for _, pq := range [][2]int{{2, 1}, {3, 2}} {
		top, err := topology.SeriesParallel(pq[0], pq[1])
		if err != nil {
			t.Fatal(err)
		}
		an, err := top.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, an)
	}
	return out
}

func reconfigBase() Config {
	return Config{
		Node:    tech.MustLookup("32nm"),
		CapKind: tech.DeepTrench,
		VIn:     1.8,
		VOut:    0.8, // placeholder; EvaluateAtVOut re-targets
		CTotal:  60e-9,
		GTotal:  150,
		CDecap:  15e-9,
	}
}

func TestReconfigurableConstruction(t *testing.T) {
	r, err := NewReconfigurable(reconfigBase(), reconfigGears(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Gears()) != 2 {
		t.Fatalf("expected 2 gears, got %d", len(r.Gears()))
	}
	if _, err := NewReconfigurable(reconfigBase(), nil); err == nil {
		t.Error("no gears must fail")
	}
	// A base that no gear can satisfy.
	bad := reconfigBase()
	bad.VOut = 1.7
	if _, err := NewReconfigurable(bad, reconfigGears(t)); err == nil {
		t.Error("infeasible base must fail")
	}
}

// The defining behaviour: low targets select the 2:1 gear, high targets
// the 3:2 gear, and the envelope beats either single gear across the
// combined range.
func TestReconfigurableGearShifting(t *testing.T) {
	gears := reconfigGears(t)
	r, err := NewReconfigurable(reconfigBase(), gears)
	if err != nil {
		t.Fatal(err)
	}
	iLoad := 0.3
	// 0.8 V: only reachable efficiently by the 2:1 gear (ideal 0.9 V);
	// the 3:2 gear (ideal 1.2 V) would burn 0.4 V of droop.
	mLo, gLo, err := r.EvaluateAtVOut(0.80, iLoad)
	if err != nil {
		t.Fatal(err)
	}
	// 1.1 V: out of the 2:1 gear's range entirely.
	mHi, gHi, err := r.EvaluateAtVOut(1.10, iLoad)
	if err != nil {
		t.Fatal(err)
	}
	if gLo == gHi {
		t.Errorf("expected a gear shift between 0.8 V (gear %d) and 1.1 V (gear %d)", gLo, gHi)
	}
	if mLo.Efficiency <= 0.5 || mHi.Efficiency <= 0.5 {
		t.Errorf("gear efficiencies implausible: %v, %v", mLo.Efficiency, mHi.Efficiency)
	}
	// The shift point falls between the two targets.
	shifts := r.ShiftPoints(iLoad, 0.70, 1.15, 24)
	if len(shifts) == 0 {
		t.Fatal("no shift point found")
	}
	if shifts[0] < 0.75 || shifts[0] > 1.1 {
		t.Errorf("shift at %.3f V outside the expected window", shifts[0])
	}
}

// Envelope dominance: at every point the envelope is at least as good as
// each individual gear.
func TestReconfigurableEnvelopeDominates(t *testing.T) {
	gears := reconfigGears(t)
	r, err := NewReconfigurable(reconfigBase(), gears)
	if err != nil {
		t.Fatal(err)
	}
	iLoad := 0.3
	vout, eff, _ := r.EfficiencyEnvelope(iLoad, 0.7, 1.1, 16)
	if len(vout) < 10 {
		t.Fatalf("envelope too short: %d points", len(vout))
	}
	for i, v := range vout {
		for _, g := range r.Gears() {
			cfg := g.Config()
			cfg.VOut = v
			d, err := New(cfg)
			if err != nil {
				continue
			}
			m, err := d.Evaluate(iLoad)
			if err != nil {
				continue
			}
			if m.Efficiency > eff[i]+1e-9 {
				t.Errorf("v=%.3f: single gear %.4f beats envelope %.4f", v, m.Efficiency, eff[i])
			}
		}
	}
}

func TestReconfigurableInfeasiblePoint(t *testing.T) {
	r, err := NewReconfigurable(reconfigBase(), reconfigGears(t))
	if err != nil {
		t.Fatal(err)
	}
	// Above every gear's ideal output.
	if _, _, err := r.EvaluateAtVOut(1.5, 0.3); err == nil {
		t.Error("unreachable target must fail")
	}
}
