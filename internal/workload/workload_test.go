package workload

import (
	"math"
	"testing"

	"ivory/internal/numeric"
)

func TestNamesAndGet(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("expected the paper's 7 benchmarks, got %d", len(names))
	}
	for _, n := range names {
		b, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != n {
			t.Errorf("benchmark %s name mismatch", n)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestPowerTraceDeterministic(t *testing.T) {
	b, _ := Get("CFD")
	a := b.PowerTrace(5, 1e-8, 2000, 42)
	c := b.PowerTrace(5, 1e-8, 2000, 42)
	for i := range a {
		if !numeric.ApproxEqual(a[i], c[i], 0) {
			t.Fatal("same seed must reproduce the trace")
		}
	}
	d := b.PowerTrace(5, 1e-8, 2000, 43)
	same := true
	for i := range a {
		if !numeric.ApproxEqual(a[i], d[i], 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestPowerTraceBounds(t *testing.T) {
	for _, name := range Names() {
		b, _ := Get(name)
		tr := b.PowerTrace(5, 1e-8, 50000, 1)
		mn, mx := numeric.MinMax(tr)
		if mn < 0.05*5-1e-9 || mx > 1.25*5+1e-9 {
			t.Errorf("%s: trace outside clamp: [%v, %v]", name, mn, mx)
		}
		mean := numeric.Mean(tr)
		if mean < 0.2*5 || mean > 1.0*5 {
			t.Errorf("%s: mean power %v implausible", name, mean)
		}
	}
}

func TestPowerTraceMeansDiffer(t *testing.T) {
	cfd, _ := Get("CFD")
	bfs, _ := Get("BFS2")
	mc := numeric.Mean(cfd.PowerTrace(5, 1e-8, 50000, 7))
	mb := numeric.Mean(bfs.PowerTrace(5, 1e-8, 50000, 7))
	// CFD is the heavier workload.
	if mc <= mb {
		t.Errorf("CFD mean %v should exceed BFS2 %v", mc, mb)
	}
}

func TestPowerTraceSpectrumHasBurstContent(t *testing.T) {
	b, _ := Get("CFD")
	dt := 1e-9
	tr := b.PowerTrace(5, dt, 1<<16, 3)
	mean := numeric.Mean(tr)
	x := make([]float64, len(tr))
	for i, v := range tr {
		x[i] = v - mean
	}
	freq, amp := numeric.RealFFTMagnitude(x, dt)
	// Find amplitude near the 20 MHz burst tone and compare to a quiet
	// band (e.g. 45 MHz, off the tone grid).
	ampNear := func(f0 float64) float64 {
		best := 0.0
		for i, f := range freq {
			if math.Abs(f-f0) < 0.4e6 && amp[i] > best {
				best = amp[i]
			}
		}
		return best
	}
	tone := ampNear(20e6)
	quiet := ampNear(45e6)
	if tone < 2*quiet {
		t.Errorf("burst tone not visible: %v vs quiet %v", tone, quiet)
	}
}

func TestPowerTraceEdgeCases(t *testing.T) {
	b, _ := Get("LUD")
	if b.PowerTrace(0, 1e-9, 10, 1) != nil {
		t.Error("zero TDP must return nil")
	}
	if b.PowerTrace(5, 0, 10, 1) != nil {
		t.Error("zero dt must return nil")
	}
	if b.PowerTrace(5, 1e-9, 0, 1) != nil {
		t.Error("zero samples must return nil")
	}
}

func TestLoadModelValidate(t *testing.T) {
	ok := LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LoadModel{
		{PNominal: 0, VNominal: 1},
		{PNominal: 5, VNominal: 0},
		{PNominal: 5, VNominal: 1, LeakFraction: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLoadModelCurrent(t *testing.T) {
	m := LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.2}
	// At nominal voltage and full activity, P = I*V = PNominal.
	i := m.Current(1, 0.85)
	if math.Abs(i*0.85-5)/5 > 1e-9 {
		t.Errorf("nominal power %v, want 5", i*0.85)
	}
	// Current rises with voltage (dynamic CVf + leakage both grow).
	if m.Current(1, 0.95) <= m.Current(1, 0.85) {
		t.Error("current should rise with V")
	}
	// Zero activity leaves only leakage.
	leakOnly := m.Current(0, 0.85)
	want := 5 * 0.2 / 0.85
	if math.Abs(leakOnly-want)/want > 1e-9 {
		t.Errorf("leakage-only current %v, want %v", leakOnly, want)
	}
	// DVFS mode: cubic dependence beats quadratic below nominal.
	dvfs := m
	dvfs.FrequencyTracksV = true
	if dvfs.Current(1, 0.6) >= m.Current(1, 0.6) {
		t.Error("frequency-tracking current should be lower at reduced V")
	}
	if m.Current(1, 0) != 0 {
		t.Error("zero voltage edge case")
	}
}

func TestCurrentTraceConversion(t *testing.T) {
	m := LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.2}
	b, _ := Get("HOTSP")
	p := b.PowerTrace(5, 1e-8, 5000, 9)
	i := m.CurrentTrace(p, 0.85)
	if len(i) != len(p) {
		t.Fatal("length mismatch")
	}
	// At the reference voltage, I ~= P/V sample by sample.
	for k := range p {
		want := p[k] / 0.85
		if math.Abs(i[k]-want)/want > 0.02 {
			t.Fatalf("sample %d: I=%v, want ~%v", k, i[k], want)
		}
	}
}
