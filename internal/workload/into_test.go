package workload

import (
	"math"
	"testing"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// The hoisted trace conversion must match the per-sample model exactly: the
// loop factors out the voltage-only terms, but each sample still evaluates
// the identical expression Current would.
func TestCurrentTraceIntoMatchesCurrent(t *testing.T) {
	for _, tracks := range []bool{false, true} {
		m := LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25, FrequencyTracksV: tracks}
		b, err := Get("CFD")
		if err != nil {
			t.Fatal(err)
		}
		power := b.PowerTrace(5, 1e-9, 2048, 42)
		// Include a below-leakage sample so the activity clamp is exercised.
		power[17] = 0.1
		for _, v := range []float64{0.80, 0.85, 0.92} {
			got := m.CurrentTrace(power, v)
			pdynNom := m.PNominal * (1 - m.LeakFraction)
			for i, p := range power {
				activity := (p - m.PNominal*m.LeakFraction) / pdynNom
				if activity < 0 {
					activity = 0
				}
				want := m.Current(activity, v)
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("tracksV=%v v=%.2f sample %d: trace %v vs per-sample %v", tracks, v, i, got[i], want)
				}
			}
		}
		// Non-positive voltage zeroes the trace, matching Current.
		for _, z := range m.CurrentTrace(power, 0) {
			if z != 0 {
				t.Fatal("v<=0 must produce a zero trace")
			}
		}
	}
}

func TestPowerTraceIntoReuse(t *testing.T) {
	b, err := Get("LUD")
	if err != nil {
		t.Fatal(err)
	}
	want := b.PowerTrace(5, 1e-9, 4096, 99)
	buf := make([]float64, 0, 4096)
	got := b.PowerTraceInto(buf, 5, 1e-9, 4096, 99)
	if !bitsEqual(want, got) {
		t.Fatal("PowerTraceInto with a donated buffer diverges from PowerTrace")
	}
	// A second call with different parameters overwrites the same backing
	// array; the PRNG stream restarts from the seed, so equal inputs give
	// equal outputs again.
	again := b.PowerTraceInto(got, 5, 1e-9, 4096, 99)
	if !bitsEqual(want, again) {
		t.Fatal("PowerTraceInto is not reproducible over a reused buffer")
	}
}

// The trace converters are steady-state inner loops: with warm buffers they
// must not allocate at all.
func TestTraceIntoAllocFree(t *testing.T) {
	m := LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25}
	b, err := Get("CFD")
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, 4096)
	out := make([]float64, 4096)
	// PowerTraceInto's only remaining allocations are the deterministic PRNG
	// (rand.New + source) it must construct per trace; the sample buffer and
	// tone phases are reused/stack-allocated.
	if n := testing.AllocsPerRun(10, func() {
		power = b.PowerTraceInto(power, 5, 1e-9, 4096, 7)
	}); n > 2 {
		t.Errorf("PowerTraceInto allocates %.1f times per run with a warm buffer (want <= 2: the PRNG)", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		out = m.CurrentTraceInto(out, power, 0.85)
	}); n != 0 {
		t.Errorf("CurrentTraceInto allocates %.1f times per run with a warm buffer", n)
	}
}
