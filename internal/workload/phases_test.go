package workload

import (
	"math"
	"testing"
)

func testSchedule() PhaseSchedule {
	return PhaseSchedule{
		Name: "cpu-burst",
		Phases: []Phase{
			{Benchmark: "CFD", Duration: 3e-6},
			{Benchmark: "BFS2", Duration: 2e-6, Scale: 0.5},
			{Benchmark: "HOTSP", Duration: 4e-6, Scale: 1.1},
		},
	}
}

func TestPhaseScheduleValidate(t *testing.T) {
	if err := testSchedule().Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	cases := []PhaseSchedule{
		{Name: "", Phases: []Phase{{Benchmark: "CFD", Duration: 1e-6}}},
		{Name: "empty"},
		{Name: "unknown", Phases: []Phase{{Benchmark: "NOPE", Duration: 1e-6}}},
		{Name: "zero-dur", Phases: []Phase{{Benchmark: "CFD"}}},
		{Name: "neg-scale", Phases: []Phase{{Benchmark: "CFD", Duration: 1e-6, Scale: -1}}},
	}
	for _, ps := range cases {
		if err := ps.Validate(); err == nil {
			t.Errorf("schedule %q: expected a validation error", ps.Name)
		}
	}
}

// TestPhaseScheduleGolden pins the synthesized trace at the phase
// boundaries: the first and last sample of every occurrence across one
// full cycle plus the wrap back into phase 0. Any change to the seed
// derivation, the boundary sample assignment, or the per-phase restart
// breaks these values and must be called out as a breaking change.
func TestPhaseScheduleGolden(t *testing.T) {
	ps := testSchedule()
	const (
		tdp  = 5.0
		dt   = 1e-8
		n    = 1200 // 12 µs: one full 9 µs cycle plus 3 µs of the next
		seed = 20170618
	)
	got := ps.PowerTrace(tdp, dt, n, seed)
	if len(got) != n {
		t.Fatalf("trace length %d, want %d", len(got), n)
	}
	// Occurrence sample ranges at dt=10 ns: CFD [0,300), BFS2 [300,500),
	// HOTSP [500,900), CFD again [900,1200).
	golden := map[int]float64{
		0:    goldenPhase0First,
		299:  goldenPhase0Last,
		300:  goldenPhase1First,
		499:  goldenPhase1Last,
		500:  goldenPhase2First,
		899:  goldenPhase2Last,
		900:  goldenPhase3First,
		1199: goldenPhase3Last,
	}
	for k, want := range golden {
		//lint:ignore floatcmp golden samples are pinned bit-exactly
		if got[k] != want {
			t.Errorf("sample %d = %.17g, want %.17g", k, got[k], want)
		}
	}
}

// Pinned by TestPhaseScheduleGolden (values produced by the derivation
// rule documented in the package doc; regenerate only on an intentional
// contract change).
const (
	goldenPhase0First = 2.8495338742332632
	goldenPhase0Last  = 3.2903631157322906
	goldenPhase1First = 1.2191357979838418
	goldenPhase1Last  = 1.1962438730832199
	goldenPhase2First = 3.2959405769161458
	goldenPhase2Last  = 3.831343518837421
	goldenPhase3First = 4.2946945784903932
	goldenPhase3Last  = 3.5213041425238991
)

// TestPhaseSchedulePrefixStable proves extending the span never changes
// already-generated samples, and repeated synthesis is bit-identical.
func TestPhaseSchedulePrefixStable(t *testing.T) {
	ps := testSchedule()
	short := ps.PowerTrace(5, 1e-8, 400, 7)
	long := ps.PowerTrace(5, 1e-8, 1600, 7)
	again := ps.PowerTrace(5, 1e-8, 1600, 7)
	for k := range short {
		//lint:ignore floatcmp prefix stability is a bit-exact contract
		if short[k] != long[k] {
			t.Fatalf("prefix diverges at sample %d: %g vs %g", k, short[k], long[k])
		}
	}
	for k := range long {
		//lint:ignore floatcmp regeneration must be bit-identical
		if long[k] != again[k] {
			t.Fatalf("rerun diverges at sample %d", k)
		}
	}
}

// TestPhaseScheduleSegmentsMatchBenchmarks proves each occurrence is the
// phase benchmark's own trace restarted at local time zero under the
// derived seed — the composition adds no synthesis of its own.
func TestPhaseScheduleSegmentsMatchBenchmarks(t *testing.T) {
	ps := testSchedule()
	const (
		tdp  = 5.0
		dt   = 1e-8
		n    = 900
		seed = 99
	)
	got := ps.PowerTrace(tdp, dt, n, seed)
	segs := []struct {
		occ        int
		bench      string
		begin, end int
		scale      float64
	}{
		{0, "CFD", 0, 300, 1},
		{1, "BFS2", 300, 500, 0.5},
		{2, "HOTSP", 500, 900, 1.1},
	}
	for _, s := range segs {
		b, err := Get(s.bench)
		if err != nil {
			t.Fatal(err)
		}
		direct := b.PowerTrace(tdp, dt, s.end-s.begin, ps.segmentSeed(seed, s.occ, s.bench))
		for i, v := range direct {
			//lint:ignore floatcmp segment stitching is a bit-exact contract
			if want := v * s.scale; got[s.begin+i] != want {
				t.Fatalf("occurrence %d sample %d: %g, want %g", s.occ, i, got[s.begin+i], want)
			}
		}
	}
}

// TestPhaseScheduleInto exercises buffer reuse and the degenerate-input
// contract shared with Benchmark.PowerTraceInto.
func TestPhaseScheduleInto(t *testing.T) {
	ps := testSchedule()
	buf := make([]float64, 512)
	out := ps.PowerTraceInto(buf, 5, 1e-8, 256, 3)
	if &out[0] != &buf[0] || len(out) != 256 {
		t.Fatalf("expected in-place reuse of the donated buffer")
	}
	fresh := ps.PowerTrace(5, 1e-8, 256, 3)
	for k := range fresh {
		//lint:ignore floatcmp buffer reuse must not change a single bit
		if out[k] != fresh[k] {
			t.Fatalf("reused-buffer trace diverges at %d", k)
		}
	}
	if ps.PowerTraceInto(nil, 0, 1e-8, 16, 1) != nil ||
		ps.PowerTraceInto(nil, 5, 0, 16, 1) != nil ||
		ps.PowerTraceInto(nil, 5, 1e-8, 0, 1) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
	bad := PhaseSchedule{Name: "bad", Phases: []Phase{{Benchmark: "NOPE", Duration: 1e-6}}}
	if bad.PowerTraceInto(nil, 5, 1e-8, 16, 1) != nil {
		t.Fatal("invalid schedule must return nil")
	}
	for _, v := range out {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("non-physical sample %g", v)
		}
	}
}

// TestTraceSignatureDistinguishes covers the memo-identity contract of
// Source.TraceSignature for both implementations.
func TestTraceSignatureDistinguishes(t *testing.T) {
	base := testSchedule()
	variants := []PhaseSchedule{}
	renamed := base
	renamed.Name = "other"
	variants = append(variants, renamed)
	longer := base
	longer.Phases = append(append([]Phase(nil), base.Phases...), Phase{Benchmark: "KMN", Duration: 1e-6})
	variants = append(variants, longer)
	scaled := base
	scaled.Phases = append([]Phase(nil), base.Phases...)
	scaled.Phases[1].Scale = 0.75
	variants = append(variants, scaled)
	for _, v := range variants {
		if v.TraceSignature() == base.TraceSignature() {
			t.Errorf("schedule %q shares the base signature", v.Name)
		}
	}
	cfd, _ := Get("CFD")
	bfs, _ := Get("BFS2")
	if cfd.TraceSignature() == bfs.TraceSignature() {
		t.Error("distinct benchmarks share a signature")
	}
	if cfd.TraceSignature() == base.TraceSignature() {
		t.Error("benchmark and schedule signatures collide")
	}
	tweaked := cfd
	tweaked.Base += 0.01
	if tweaked.TraceSignature() == cfd.TraceSignature() {
		t.Error("parameter change did not change the benchmark signature")
	}
}
