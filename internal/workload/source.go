package workload

import "math"

// Source is the trace-synthesis seam the transient engines consume: any
// deterministic generator of per-core power traces. Benchmark (one
// workload's character) and PhaseSchedule (a timed composition of
// benchmarks) both implement it, so a heterogeneous-SoC domain can run a
// single benchmark or a phase program through exactly the same simulation
// path.
type Source interface {
	// TraceName identifies the source in results and per-core seed
	// derivation (the engines fold it into each core's PRNG stream seed).
	TraceName() string
	// TraceSignature digests every trace-determining parameter into a
	// 64-bit FNV-1a fingerprint; two sources produce identical traces for
	// identical (tdp, dt, n, seed) inputs only if their signatures match,
	// which is what trace memos key on.
	TraceSignature() uint64
	// PowerTraceInto synthesizes n samples of power draw (W) at interval
	// dt for a block of the given TDP into dst (nil or undersized dst
	// allocates). The same seed always yields the same trace.
	PowerTraceInto(dst []float64, tdp, dt float64, n int, seed int64) []float64
}

// FNV-1a, inlined rather than importing hash/fnv so signature and seed
// derivation stay allocation-free over mixed field types. The constants and
// folding match internal/pds's digest helpers, keeping Benchmark
// fingerprints identical across the two packages.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnv1aU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func fnv1aFloat(h uint64, f float64) uint64 { return fnv1aU64(h, math.Float64bits(f)) }

// TraceName implements Source.
func (b Benchmark) TraceName() string { return b.Name }

// TraceSignature implements Source: an FNV-1a digest over every
// trace-determining benchmark parameter, so a custom Benchmark reusing a
// builtin name cannot collide with it in a trace memo.
func (b Benchmark) TraceSignature() uint64 {
	h := fnv1aString(fnvOffset64, b.Name)
	h = fnv1aFloat(h, b.Base)
	h = fnv1aFloat(h, b.PhaseAmp)
	h = fnv1aFloat(h, b.PhasePeriod)
	h = fnv1aFloat(h, b.BurstAmp)
	for _, f := range b.BurstFreqs {
		h = fnv1aFloat(h, f)
	}
	h = fnv1aFloat(h, b.StepProb)
	h = fnv1aFloat(h, b.NoiseSigma)
	return h
}
