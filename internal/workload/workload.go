// Package workload supplies the load-side inputs of the case study: power
// traces of GPU benchmarks and the digital-load current model.
//
// The paper drives Ivory with GPGPU-Sim/GPUWattch power traces of CUDA SDK
// and Rodinia workloads. Those simulators (and their traces) are outside
// this reproduction's scope, so the package synthesizes per-benchmark
// traces instead: each benchmark is parameterized by its published
// character — average utilization, slow phase structure (kernel launches),
// fast burst spectrum, and step intensity — and generated from a seeded
// PRNG so experiments are reproducible. The dynamic analysis only consumes
// I(t), so the synthetic traces exercise exactly the same code paths and
// preserve the relative noise ordering across regulator configurations.
//
// # Seed derivation
//
// Every generator in this package is a pure function of its seed. The
// layering rule, outermost first:
//
//   - The transient engines derive one stream per core as
//     systemSeed XOR FNV-1a(source name, core index), where the source
//     name is Source.TraceName — a benchmark's Name or a schedule's Name.
//   - A PhaseSchedule further derives one stream per phase occurrence as
//     coreSeed XOR FNV-1a(schedule name, occurrence index, phase benchmark
//     name), then hands that seed to the phase benchmark's PowerTraceInto
//     restarted at local time zero.
//
// Names enter through FNV-1a hashes (never lengths or positions), so
// distinct names always select distinct streams, every cycle through a
// schedule redraws fresh randomness, and regenerating any prefix of a
// trace is bit-identical regardless of the requested span. The
// PhaseSchedule golden test pins this contract.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Benchmark characterizes one synthetic workload.
type Benchmark struct {
	// Name is the benchmark identifier (e.g. "CFD").
	Name string
	// Base is the average utilization (fraction of TDP).
	Base float64
	// PhaseAmp is the amplitude of slow kernel-phase swings (fraction).
	PhaseAmp float64
	// PhasePeriod is the kernel-phase duration (s).
	PhasePeriod float64
	// BurstAmp is the fast current-burst amplitude (fraction of TDP).
	BurstAmp float64
	// BurstFreqs are the characteristic burst frequencies (Hz).
	BurstFreqs []float64
	// StepProb is the per-sample probability of an activity step (kernel
	// boundary, barrier) at microsecond granularity.
	StepProb float64
	// NoiseSigma is the white per-sample noise level (fraction).
	NoiseSigma float64
}

// builtin benchmarks follow the seven workloads of the paper's Figs. 10-11,
// with characters drawn from published GPUVolt/GPUWattch descriptions:
// CFD is the noisiest (large kernels with sharp di/dt), BFS is irregular
// and memory-bound, LUD ramps as the triangular solve shrinks, etc.
var builtin = map[string]Benchmark{
	"BACKP": {Name: "BACKP", Base: 0.62, PhaseAmp: 0.12, PhasePeriod: 18e-6, BurstAmp: 0.10,
		BurstFreqs: []float64{2e6, 15e6}, StepProb: 0.015, NoiseSigma: 0.03},
	"BFS2": {Name: "BFS2", Base: 0.45, PhaseAmp: 0.20, PhasePeriod: 9e-6, BurstAmp: 0.08,
		BurstFreqs: []float64{1e6, 8e6}, StepProb: 0.030, NoiseSigma: 0.05},
	"CFD": {Name: "CFD", Base: 0.70, PhaseAmp: 0.18, PhasePeriod: 25e-6, BurstAmp: 0.16,
		BurstFreqs: []float64{3e6, 20e6, 60e6}, StepProb: 0.020, NoiseSigma: 0.04},
	"HOTSP": {Name: "HOTSP", Base: 0.66, PhaseAmp: 0.10, PhasePeriod: 14e-6, BurstAmp: 0.09,
		BurstFreqs: []float64{5e6, 25e6}, StepProb: 0.010, NoiseSigma: 0.03},
	"KMN": {Name: "KMN", Base: 0.55, PhaseAmp: 0.16, PhasePeriod: 12e-6, BurstAmp: 0.11,
		BurstFreqs: []float64{2e6, 12e6}, StepProb: 0.018, NoiseSigma: 0.04},
	"LUD": {Name: "LUD", Base: 0.58, PhaseAmp: 0.14, PhasePeriod: 10e-6, BurstAmp: 0.10,
		BurstFreqs: []float64{4e6, 18e6}, StepProb: 0.022, NoiseSigma: 0.035},
	"MGST": {Name: "MGST", Base: 0.52, PhaseAmp: 0.15, PhasePeriod: 11e-6, BurstAmp: 0.12,
		BurstFreqs: []float64{1.5e6, 10e6, 35e6}, StepProb: 0.025, NoiseSigma: 0.045},
}

// Names returns the sorted benchmark names.
func Names() []string {
	out := make([]string, 0, len(builtin))
	for k := range builtin {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the named benchmark.
func Get(name string) (Benchmark, error) {
	b, ok := builtin[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// PowerTrace synthesizes n samples of the benchmark's power draw (W) at
// sample interval dt for a core of the given TDP. The same seed always
// yields the same trace.
func (b Benchmark) PowerTrace(tdp, dt float64, n int, seed int64) []float64 {
	return b.PowerTraceInto(nil, tdp, dt, n, seed)
}

// PowerTraceInto is PowerTrace with buffer reuse: dst (may be nil) donates
// its capacity when it fits n samples. The PRNG stream is consumed exactly as
// PowerTrace does, so the two produce identical traces for identical seeds.
func (b Benchmark) PowerTraceInto(dst []float64, tdp, dt float64, n int, seed int64) []float64 {
	if n <= 0 || tdp <= 0 || dt <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	// Random phases for the burst tones. The stack array covers every builtin
	// benchmark (≤ 3 tones), keeping trace regeneration allocation-free.
	var phaseArr [8]float64
	var phases []float64
	if len(b.BurstFreqs) <= len(phaseArr) {
		phases = phaseArr[:len(b.BurstFreqs)]
	} else {
		phases = make([]float64, len(b.BurstFreqs))
	}
	for i := range phases {
		phases[i] = rng.Float64() * 2 * math.Pi
	}
	out := dst
	if cap(out) < n {
		out = make([]float64, n)
	} else {
		out = out[:n]
	}
	phaseLevel := b.Base
	nextPhase := b.PhasePeriod * (0.5 + rng.Float64())
	stepLevel := 0.0
	// Step checks happen at ~microsecond granularity regardless of dt.
	stepEvery := int(math.Max(1, 1e-6/dt))
	for k := 0; k < n; k++ {
		t := float64(k) * dt
		if t >= nextPhase {
			phaseLevel = b.Base + b.PhaseAmp*(2*rng.Float64()-1)
			nextPhase += b.PhasePeriod * (0.5 + rng.Float64())
		}
		if k%stepEvery == 0 && rng.Float64() < b.StepProb {
			// Kernel boundary: drop toward idle or jump to full throttle.
			// The sharp edges are the di/dt content that excites PDN
			// resonances (the first-droop events of GPUVolt).
			if rng.Float64() < 0.5 {
				stepLevel = -0.4 * rng.Float64()
			} else {
				stepLevel = 0.35 * rng.Float64()
			}
		} else if k%stepEvery == 0 {
			stepLevel *= 0.7 // steps decay over microseconds
		}
		v := phaseLevel + stepLevel + b.NoiseSigma*rng.NormFloat64()
		for i, f := range b.BurstFreqs {
			v += b.BurstAmp / float64(len(b.BurstFreqs)) * math.Sin(2*math.Pi*f*t+phases[i])
		}
		if v < 0.05 {
			v = 0.05
		}
		if v > 1.25 {
			v = 1.25
		}
		out[k] = v * tdp
	}
	return out
}

// LoadModel converts power demand into supply current, capturing the
// voltage dependence the paper embeds (dynamic + leakage): once the
// maximal load is specified the model yields the current at any voltage
// and activity level.
type LoadModel struct {
	// PNominal is the dynamic power at VNominal, full activity (W).
	PNominal float64
	// VNominal is the nominal supply (V).
	VNominal float64
	// LeakFraction is the leakage share of total nominal power.
	LeakFraction float64
	// FrequencyTracksV makes clock frequency scale with voltage (DVFS
	// operation), giving dynamic power a cubic rather than quadratic
	// voltage dependence.
	FrequencyTracksV bool
}

// Validate checks the model.
func (m LoadModel) Validate() error {
	if m.PNominal <= 0 || m.VNominal <= 0 {
		return fmt.Errorf("workload: PNominal and VNominal must be positive")
	}
	if m.LeakFraction < 0 || m.LeakFraction >= 1 {
		return fmt.Errorf("workload: LeakFraction %g outside [0, 1)", m.LeakFraction)
	}
	return nil
}

// Current returns the supply current (A) at the given activity (0..1+) and
// supply voltage v. Dynamic current scales as activity·C·V·f (f fixed or
// tracking V); leakage scales exponentially with voltage (~60 mV/decade of
// sub-threshold slope folded into a 100 mV e-fold).
func (m LoadModel) Current(activity, v float64) float64 {
	if v <= 0 {
		return 0
	}
	pdynNom := m.PNominal * (1 - m.LeakFraction)
	// P_dyn = a·C·V²·f -> I_dyn = a·C·V·f.
	iDynNom := pdynNom / m.VNominal
	scale := v / m.VNominal
	iDyn := activity * iDynNom * scale
	if m.FrequencyTracksV {
		iDyn *= scale
	}
	iLeakNom := m.PNominal * m.LeakFraction / m.VNominal
	iLeak := iLeakNom * math.Exp((v-m.VNominal)/0.1)
	return iDyn + iLeak
}

// CurrentTrace converts a power trace (W, at VNominal reference) into a
// current trace (A) at the actual supply voltage v using the load model:
// the activity of each sample is inferred from the power sample.
func (m LoadModel) CurrentTrace(power []float64, v float64) []float64 {
	return m.CurrentTraceInto(nil, power, v)
}

// CurrentTraceInto is CurrentTrace with buffer reuse: dst (may be nil)
// donates its capacity when it fits len(power) samples. The voltage-only
// factors (leakage exponential, dynamic scale) are hoisted out of the loop;
// each sample still evaluates the exact expression LoadModel.Current would,
// so the hoisted form stays bit-identical to calling Current per sample.
func (m LoadModel) CurrentTraceInto(dst, power []float64, v float64) []float64 {
	out := dst
	if cap(out) < len(power) {
		out = make([]float64, len(power))
	} else {
		out = out[:len(power)]
	}
	if v <= 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	pdynNom := m.PNominal * (1 - m.LeakFraction)
	pLeak := m.PNominal * m.LeakFraction
	iDynNom := pdynNom / m.VNominal
	scale := v / m.VNominal
	iLeak := m.PNominal * m.LeakFraction / m.VNominal * math.Exp((v-m.VNominal)/0.1)
	for i, p := range power {
		activity := (p - pLeak) / pdynNom
		if activity < 0 {
			activity = 0
		}
		iDyn := activity * iDynNom * scale
		if m.FrequencyTracksV {
			iDyn *= scale
		}
		out[i] = iDyn + iLeak
	}
	return out
}
