package spice

import (
	"fmt"

	"ivory/internal/topology"
)

// SCOptions parameterizes a switch-level SC converter testbench.
type SCOptions struct {
	// VIn is the input supply voltage (V).
	VIn float64
	// FSw is the two-phase switching frequency (Hz).
	FSw float64
	// CLoad is the output decoupling capacitance (F).
	CLoad float64
	// ILoad is the DC load current (A); use Load for a time-varying one.
	ILoad float64
	// Load, when non-nil, overrides ILoad with a waveform.
	Load Waveform
	// DeadFrac is the clock dead-time fraction; defaults to 0.02.
	DeadFrac float64
	// VOutIC pre-charges the output capacitor; zero selects the ideal
	// no-load level Ratio*VIn. Setting it to the expected regulated level
	// starts the converter in (near) periodic steady state.
	VOutIC float64
}

// BuildSC converts a two-phase SC topology plus element values (per-cap
// capacitance, per-switch on-resistance — e.g. from sc.Design.ElementValues)
// into a switch-level netlist. Capacitors start pre-charged at their ideal
// DC voltages, and the output at the ideal ratio, so that periodic steady
// state is reached within a few switching cycles.
//
// Node names: "vin", "vout", ground "0", internal "n<k>". The input source
// is "vsrc"; the load current source is "iload".
func BuildSC(top *topology.Topology, an *topology.Analysis, caps, rons []float64, opt SCOptions) (*Circuit, error) {
	if top == nil || an == nil {
		return nil, fmt.Errorf("spice: BuildSC needs a topology and its analysis")
	}
	if len(caps) != len(top.Caps) || len(rons) != len(top.Switches) {
		return nil, fmt.Errorf("spice: BuildSC element count mismatch: %d/%d caps, %d/%d switches",
			len(caps), len(top.Caps), len(rons), len(top.Switches))
	}
	if opt.VIn <= 0 || opt.FSw <= 0 || opt.CLoad <= 0 {
		return nil, fmt.Errorf("spice: BuildSC needs positive VIn, FSw, CLoad")
	}
	dead := opt.DeadFrac
	if dead == 0 {
		dead = 0.02
	}
	name := func(n topology.Node) string {
		switch n {
		case topology.Gnd:
			return "0"
		case topology.Vin:
			return "vin"
		case topology.Vout:
			return "vout"
		default:
			return fmt.Sprintf("n%d", int(n))
		}
	}
	c := NewCircuit()
	c.V("vsrc", "vin", "0", DC(opt.VIn))
	for i, cap := range top.Caps {
		if caps[i] <= 0 {
			return nil, fmt.Errorf("spice: capacitor %d must be positive", i)
		}
		ic := an.CapVoltages[i] * opt.VIn
		c.C(fmt.Sprintf("c%d", i), name(cap.Pos), name(cap.Neg), caps[i], ic)
	}
	for i, sw := range top.Switches {
		if rons[i] <= 0 {
			return nil, fmt.Errorf("spice: switch %d on-resistance must be positive", i)
		}
		c.SW(fmt.Sprintf("s%d", i), name(sw.A), name(sw.B), rons[i],
			TwoPhaseClock(opt.FSw, int(sw.Phase), dead))
	}
	voutIC := opt.VOutIC
	if voutIC == 0 {
		voutIC = an.Ratio * opt.VIn
	}
	c.C("cload", "vout", "0", opt.CLoad, voutIC)
	load := opt.Load
	if load == nil {
		load = DC(opt.ILoad)
	}
	c.I("iload", "vout", "0", load)
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

// BuckOptions parameterizes a switch-level buck testbench.
type BuckOptions struct {
	// VIn is the input supply (V) and Duty the PWM duty cycle.
	VIn, Duty float64
	// FSw is the switching frequency (Hz).
	FSw float64
	// L is the inductance (H) and RL its series resistance (ohm).
	L, RL float64
	// COut is the output capacitance (F).
	COut float64
	// RHigh and RLow are switch on-resistances (ohm).
	RHigh, RLow float64
	// ILoad is the DC load; Load overrides it when non-nil.
	ILoad float64
	Load  Waveform
}

// BuildBuck constructs a synchronous buck netlist: high-side switch from
// "vin" to "sw", low-side from "sw" to ground (complementary drive),
// inductor+DCR from "sw" to "vout", output cap, and the load source. The
// output is pre-charged to Duty*VIn.
func BuildBuck(opt BuckOptions) (*Circuit, error) {
	if opt.VIn <= 0 || opt.Duty <= 0 || opt.Duty >= 1 || opt.FSw <= 0 {
		return nil, fmt.Errorf("spice: BuildBuck needs positive VIn/FSw and duty in (0,1)")
	}
	if opt.L <= 0 || opt.COut <= 0 || opt.RHigh <= 0 || opt.RLow <= 0 || opt.RL < 0 {
		return nil, fmt.Errorf("spice: BuildBuck element values invalid")
	}
	c := NewCircuit()
	c.V("vsrc", "vin", "0", DC(opt.VIn))
	c.SW("shs", "vin", "sw", opt.RHigh, DutyClock(opt.FSw, opt.Duty, false))
	c.SW("sls", "sw", "0", opt.RLow, DutyClock(opt.FSw, opt.Duty, true))
	vout0 := opt.Duty * opt.VIn
	iL0 := opt.ILoad
	if opt.RL > 0 {
		c.R("rl", "sw", "lx", opt.RL)
		c.L("l1", "lx", "vout", opt.L, iL0)
	} else {
		c.L("l1", "sw", "vout", opt.L, iL0)
	}
	c.C("cout", "vout", "0", opt.COut, vout0)
	load := opt.Load
	if load == nil {
		load = DC(opt.ILoad)
	}
	c.I("iload", "vout", "0", load)
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

// MeasureEfficiency runs the circuit for `cycles` switching periods at
// step points-per-cycle resolution and returns input power, output power,
// and efficiency measured over the trailing half (past start-up).
// It assumes BuildSC/BuildBuck naming: source "vsrc" at node "vin", load
// current source "iload" at node "vout".
func MeasureEfficiency(c *Circuit, fsw float64, cycles, pointsPerCycle int, loadCurrent Waveform) (pin, pout, eff float64, err error) {
	if cycles < 4 || pointsPerCycle < 8 {
		return 0, 0, 0, fmt.Errorf("spice: need >= 4 cycles and >= 8 points per cycle")
	}
	h := 1 / (fsw * float64(pointsPerCycle))
	T := float64(cycles) / fsw
	res, err := c.Tran(h, T)
	if err != nil {
		return 0, 0, 0, err
	}
	pin = res.AvgPower("vin", "vsrc", 0.5)
	// Output power: v(vout) * i_load(t) averaged over the same window.
	v := res.V["vout"]
	start := len(v) / 2
	sum := 0.0
	for k := start; k < len(v); k++ {
		sum += v[k] * loadCurrent(res.Times[k])
	}
	pout = sum / float64(len(v)-start)
	if pin <= 0 {
		return pin, pout, 0, fmt.Errorf("spice: non-positive input power %g (not in steady state?)", pin)
	}
	return pin, pout, pout / pin, nil
}
