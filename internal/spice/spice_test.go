package spice

import (
	"math"
	"strings"
	"testing"

	"ivory/internal/numeric"
)

func TestResistorDividerDC(t *testing.T) {
	c := NewCircuit()
	c.V("v1", "a", "0", DC(10))
	c.R("r1", "a", "b", 1000)
	c.R("r2", "b", "0", 1000)
	res, err := c.Tran(1e-6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Avg("b", 0.5); math.Abs(got-5) > 1e-6 {
		t.Errorf("divider mid = %v, want 5", got)
	}
	// Source current: 10 V over 2 kohm.
	iw := res.SourceI["v1"]
	if math.Abs(iw[len(iw)-1]-5e-3) > 1e-9 {
		t.Errorf("source current = %v, want 5 mA", iw[len(iw)-1])
	}
}

func TestRCCharging(t *testing.T) {
	// v(t) = V(1 - e^{-t/RC}) from zero IC.
	r, cap := 1e3, 1e-9 // tau = 1us
	c := NewCircuit()
	c.V("v1", "a", "0", DC(1))
	c.R("r1", "a", "b", r)
	c.C("c1", "b", "0", cap, 0)
	res, err := c.Tran(1e-9, 5e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, chk := range []struct{ t, want float64 }{
		{1e-6, 1 - math.Exp(-1)},
		{2e-6, 1 - math.Exp(-2)},
		{5e-6, 1 - math.Exp(-5)},
	} {
		k := int(chk.t / 1e-9)
		got := res.At("b", k)
		if math.Abs(got-chk.want) > 2e-3 {
			t.Errorf("v(%g) = %v, want %v", chk.t, got, chk.want)
		}
	}
}

func TestCapacitorInitialCondition(t *testing.T) {
	c := NewCircuit()
	c.R("r1", "a", "0", 1e3)
	c.C("c1", "a", "0", 1e-9, 2.5)
	res, err := c.Tran(1e-9, 100e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.At("a", 0); math.Abs(got-2.5) > 1e-2 {
		t.Errorf("IC not honored: v(0) = %v, want 2.5", got)
	}
	// Discharging exponential.
	k := 50 // 50 ns, tau = 1 us
	want := 2.5 * math.Exp(-50e-9/1e-6)
	if got := res.At("a", k); math.Abs(got-want) > 2e-2 {
		t.Errorf("v(50ns) = %v, want %v", got, want)
	}
}

func TestRLCStepResponseFrequency(t *testing.T) {
	// Series RLC driven by a step: ringing frequency ~ 1/(2*pi*sqrt(LC)).
	l, cap := 1e-6, 1e-9 // f0 = 5.03 MHz
	c := NewCircuit()
	c.V("v1", "a", "0", DC(1))
	c.R("r1", "a", "b", 5) // underdamped
	c.L("l1", "b", "c", l, 0)
	c.C("c1", "c", "0", cap, 0)
	res, err := c.Tran(1e-9, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Find first two peaks of v(c).
	w := res.V["c"]
	var peaks []int
	for k := 1; k < len(w)-1; k++ {
		if w[k] > w[k-1] && w[k] >= w[k+1] && w[k] > 1.05 {
			peaks = append(peaks, k)
		}
	}
	if len(peaks) < 2 {
		t.Fatalf("expected ringing, found %d peaks", len(peaks))
	}
	period := res.Times[peaks[1]] - res.Times[peaks[0]]
	f := 1 / period
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*cap))
	if math.Abs(f-f0)/f0 > 0.05 {
		t.Errorf("ringing at %v Hz, want ~%v Hz", f, f0)
	}
}

func TestInductorDCShort(t *testing.T) {
	// At DC an inductor is a short: final current = V/R.
	c := NewCircuit()
	c.V("v1", "a", "0", DC(2))
	c.R("r1", "a", "b", 10)
	c.L("l1", "b", "0", 1e-6, 0)
	res, err := c.Tran(1e-8, 5e-5) // 500 tau
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Avg("b", 0.1); math.Abs(got) > 1e-3 {
		t.Errorf("inductor node should sit at ~0 V, got %v", got)
	}
	iw := res.SourceI["v1"]
	if math.Abs(iw[len(iw)-1]-0.2) > 1e-3 {
		t.Errorf("final current %v, want 0.2 A", iw[len(iw)-1])
	}
}

func TestSwitchToggling(t *testing.T) {
	// A switch chopping a DC source into an RC filter: average ~ duty * V.
	c := NewCircuit()
	c.V("v1", "a", "0", DC(1))
	// Synchronous chopper: node b driven to 1 or 0 through equal 1-ohm
	// switches, filtered by R into C -> average settles at duty * V.
	c.SW("s1", "a", "b", 1, DutyClock(1e6, 0.3, false))
	c.SW("s2", "b", "0", 1, DutyClock(1e6, 0.3, true))
	c.R("r1", "b", "c", 100)
	c.C("c1", "c", "0", 1e-6, 0.3)
	res, err := c.Tran(1e-8, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Avg("c", 0.3)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("chopped average = %v, want ~0.3", got)
	}
	if res.Refactorizations > 8 {
		t.Errorf("switch-state factorization cache ineffective: %d refactorizations", res.Refactorizations)
	}
}

func TestPWLAndPulseWaveforms(t *testing.T) {
	p := PWL([]float64{0, 1, 2}, []float64{0, 10, 0})
	if !numeric.ApproxEqual(p(0.5), 5, 0) || !numeric.ApproxEqual(p(1.5), 5, 0) || !numeric.ApproxEqual(p(3), 0, 0) {
		t.Error("PWL wrong")
	}
	q := Pulse(0, 1, 1e-6, 0.25)
	if !numeric.ApproxEqual(q(0.1e-6), 1, 0) || !numeric.ApproxEqual(q(0.5e-6), 0, 0) {
		t.Error("Pulse wrong")
	}
}

func TestTwoPhaseClockNonOverlap(t *testing.T) {
	fsw := 1e6
	p1 := TwoPhaseClock(fsw, 1, 0.02)
	p2 := TwoPhaseClock(fsw, 2, 0.02)
	for i := 0; i < 1000; i++ {
		tt := float64(i) * 1e-9
		if p1(tt) && p2(tt) {
			t.Fatalf("phases overlap at %v", tt)
		}
	}
	// Both phases actually conduct at some point.
	any1, any2 := false, false
	for i := 0; i < 1000; i++ {
		tt := float64(i) * 1e-9
		any1 = any1 || p1(tt)
		any2 = any2 || p2(tt)
	}
	if !any1 || !any2 {
		t.Error("phases never close")
	}
}

func TestValidationErrors(t *testing.T) {
	c := NewCircuit()
	c.R("r1", "a", "0", -5)
	if _, err := c.Tran(1e-9, 1e-6); err == nil {
		t.Error("negative resistance must fail")
	}
	c2 := NewCircuit()
	if _, err := c2.Tran(1e-9, 1e-6); err == nil {
		t.Error("empty circuit must fail")
	}
	c3 := NewCircuit()
	c3.R("r1", "a", "0", 5)
	if _, err := c3.Tran(0, 1e-6); err == nil {
		t.Error("zero step must fail")
	}
}

func TestEnergyConservationRC(t *testing.T) {
	// Charging a cap through a resistor from zero: the source delivers
	// Q*V, the cap stores C*V^2/2, the resistor burns the other half.
	c := NewCircuit()
	c.V("v1", "a", "0", DC(1))
	c.R("r1", "a", "b", 1e3)
	c.C("c1", "b", "0", 1e-9, 0)
	res, err := c.Tran(0.5e-9, 20e-6) // 20 tau: fully charged
	if err != nil {
		t.Fatal(err)
	}
	// Integrate source energy.
	e := 0.0
	iw := res.SourceI["v1"]
	for k := 1; k < len(iw); k++ {
		e += 1.0 * iw[k] * (res.Times[k] - res.Times[k-1])
	}
	want := 1e-9 * 1 * 1 // Q*V = C*V^2
	if math.Abs(e-want)/want > 0.01 {
		t.Errorf("source energy %v, want %v", e, want)
	}
}

func TestVCVSAmplifier(t *testing.T) {
	// Ideal x10 amplifier driving a load.
	c := NewCircuit()
	c.V("vin", "in", "0", DC(0.1))
	c.E("eamp", "out", "0", "in", "0", 10)
	c.R("rl", "out", "0", 1000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V["out"]-1.0) > 1e-6 {
		t.Errorf("VCVS output %v, want 1.0", op.V["out"])
	}
	// And in transient.
	res, err := c.Tran(1e-9, 100e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Avg("out", 0.5); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("VCVS transient output %v", got)
	}
}

func TestVCCSTransconductance(t *testing.T) {
	// gm = 10 mS sensing 0.2 V into a 1 kohm load: i = 2 mA, v = -2 V
	// (current a->b pulls node a down through the load).
	c := NewCircuit()
	c.V("vin", "in", "0", DC(0.2))
	c.G("g1", "out", "0", "in", "0", 10e-3)
	c.R("rl", "out", "0", 1000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V["out"]+2.0) > 1e-6 {
		t.Errorf("VCCS output %v, want -2.0", op.V["out"])
	}
}

func TestVCVSFeedbackDivider(t *testing.T) {
	// Op-amp-style closed loop via VCVS with gain 1e5: non-inverting
	// follower of 0.5 V built from a divider reference.
	c := NewCircuit()
	c.V("vin", "ref", "0", DC(0.5))
	// error amp: out = A*(ref - fb)
	c.E("ea", "out", "0", "ref", "fb", 1e5)
	// unity feedback
	c.R("rf", "out", "fb", 1)
	c.R("rg", "fb", "0", 1e9)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V["out"]-0.5) > 1e-3 {
		t.Errorf("follower output %v, want 0.5", op.V["out"])
	}
}

func TestControlledSourcesInAC(t *testing.T) {
	// VCCS into a capacitor forms an integrator: |H| falls as 1/f.
	c := NewCircuit()
	c.V("vac", "in", "0", DC(0))
	c.G("g1", "0", "out", "in", "0", 1e-3) // current INTO out
	c.C("c1", "out", "0", 1e-9, 0)
	c.R("rbig", "out", "0", 1e9)
	res, err := c.AC([]float64{1e3, 1e4, 1e5}, "vac")
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := res.Mag("out", 0), res.Mag("out", 1)
	if math.Abs(h1/h2-10) > 0.2 {
		t.Errorf("integrator slope wrong: %v / %v", h1, h2)
	}
}

func TestParseControlledSources(t *testing.T) {
	deck := `
V1 in 0 0.1
E1 out 0 in 0 10
R1 out 0 1k
G1 o2 0 in 0 5m
R2 o2 0 2k
`
	c, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V["out"]-1.0) > 1e-6 {
		t.Errorf("parsed VCVS wrong: %v", op.V["out"])
	}
	if math.Abs(op.V["o2"]+1.0) > 1e-6 {
		t.Errorf("parsed VCCS wrong: %v", op.V["o2"])
	}
	if _, err := ParseNetlist(strings.NewReader("E1 a 0 b")); err == nil {
		t.Error("short E card must fail")
	}
}
