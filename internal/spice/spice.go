// Package spice is a from-scratch transient circuit simulator in the SPICE
// tradition, built on modified nodal analysis (MNA) with trapezoidal
// companion models. It is Ivory's stand-in for the commercial SPICE/Cadence
// simulations the paper validates against (Figs. 4, 7-9): converter
// netlists are simulated switch-by-switch at fine time steps, and the
// analytical models are compared against the resulting waveforms,
// efficiencies, and runtimes.
//
// Supported elements: resistors, capacitors (trapezoidal companion),
// inductors (Norton companion), independent voltage sources (branch-current
// formulation), independent current sources, and time-controlled resistive
// switches. Switch state changes trigger a re-factorization of the MNA
// matrix; factorizations are cached per switch-state vector, so periodic
// two-phase converters pay the factorization cost only twice.
package spice

import (
	"fmt"
	"math"
	"sort"

	"ivory/internal/numeric"
)

// Waveform is a time-stamped signal source: given t it returns a value.
type Waveform func(t float64) float64

// DC returns a constant waveform.
func DC(v float64) Waveform { return func(float64) float64 { return v } }

// PWL returns a piecewise-linear waveform through the (t, v) points; it
// holds the boundary values outside the range. Times must be increasing.
func PWL(ts, vs []float64) Waveform {
	return func(t float64) float64 { return numeric.Interp1(ts, vs, t) }
}

// periodFrac returns the position of t inside a cycle of the given period
// as a fraction in [0, 1). Floor-based rather than math.Mod: the phase
// comparators run once per switch per transient step, and math.Mod's
// software frexp/ldexp loop dominated the whole simulation profile.
func periodFrac(t, period float64) float64 {
	frac := t / period
	frac -= math.Floor(frac)
	return frac
}

// Pulse returns a square pulse train: v1 for the first duty fraction of
// each period, v0 otherwise.
func Pulse(v0, v1, period, duty float64) Waveform {
	return func(t float64) float64 {
		if periodFrac(t, period) < duty {
			return v1
		}
		return v0
	}
}

// Control decides whether a switch is closed at time t.
type Control func(t float64) bool

// TwoPhaseClock returns the control function for phase ph (1 or 2) of a
// two-phase non-overlapping clock at frequency fsw: phase 1 conducts during
// the first half period, phase 2 during the second, each shortened by the
// dead-time fraction on both edges to prevent shoot-through.
func TwoPhaseClock(fsw float64, ph int, deadFrac float64) Control {
	period := 1 / fsw
	return func(t float64) bool {
		frac := periodFrac(t, period)
		switch ph {
		case 1:
			return frac >= deadFrac && frac < 0.5-deadFrac
		default:
			return frac >= 0.5+deadFrac && frac < 1-deadFrac
		}
	}
}

// DutyClock returns a control closed during the first duty fraction of each
// switching period (inverted if invert is true) — the PWM drive of a buck
// converter's high side (and, inverted, its synchronous low side).
func DutyClock(fsw, duty float64, invert bool) Control {
	period := 1 / fsw
	return func(t float64) bool {
		on := periodFrac(t, period) < duty
		if invert {
			return !on
		}
		return on
	}
}

// element kinds
type elemKind int

const (
	kindR elemKind = iota
	kindC
	kindL
	kindV
	kindI
	kindSW
	kindVCVS // E: voltage-controlled voltage source
	kindVCCS // G: voltage-controlled current source
)

type element struct {
	kind  elemKind
	name  string
	a, b  int // node indices (-1 = ground)
	value float64
	ic    float64  // initial condition (V for caps, A for inductors)
	wave  Waveform // for V/I sources
	ctrl  Control  // for switches
	ron   float64
	roff  float64
	// controlled sources: sensing nodes and gain
	cp, cn int
	gain   float64

	// runtime state
	branch int     // branch index for V sources
	state  float64 // companion state: cap current / inductor current
	aux    float64 // companion auxiliary: cap voltage / inductor voltage
}

// Circuit is a netlist under construction.
type Circuit struct {
	nodeIdx  map[string]int
	nodeName []string
	elems    []*element
	err      error
}

// NewCircuit returns an empty circuit. Node "0" (and "gnd") is ground.
func NewCircuit() *Circuit {
	return &Circuit{nodeIdx: map[string]int{}}
}

func (c *Circuit) node(name string) int {
	if name == "0" || name == "gnd" || name == "GND" {
		return -1
	}
	if i, ok := c.nodeIdx[name]; ok {
		return i
	}
	i := len(c.nodeName)
	c.nodeIdx[name] = i
	c.nodeName = append(c.nodeName, name)
	return i
}

func (c *Circuit) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("spice: "+format, args...)
	}
}

// R adds a resistor of r ohms between nodes a and b.
func (c *Circuit) R(name, a, b string, r float64) {
	if r <= 0 {
		c.fail("resistor %s must have positive resistance", name)
		return
	}
	c.elems = append(c.elems, &element{kind: kindR, name: name, a: c.node(a), b: c.node(b), value: r})
}

// C adds a capacitor of f farads with initial voltage ic.
func (c *Circuit) C(name, a, b string, f, ic float64) {
	if f <= 0 {
		c.fail("capacitor %s must have positive capacitance", name)
		return
	}
	c.elems = append(c.elems, &element{kind: kindC, name: name, a: c.node(a), b: c.node(b), value: f, ic: ic})
}

// L adds an inductor of h henries with initial current ic (flowing a->b).
func (c *Circuit) L(name, a, b string, h, ic float64) {
	if h <= 0 {
		c.fail("inductor %s must have positive inductance", name)
		return
	}
	c.elems = append(c.elems, &element{kind: kindL, name: name, a: c.node(a), b: c.node(b), value: h, ic: ic})
}

// V adds an independent voltage source (a positive w.r.t. b).
func (c *Circuit) V(name, a, b string, w Waveform) {
	c.elems = append(c.elems, &element{kind: kindV, name: name, a: c.node(a), b: c.node(b), wave: w})
}

// I adds an independent current source drawing current from a into b
// through the source (conventional direction a->b).
func (c *Circuit) I(name, a, b string, w Waveform) {
	c.elems = append(c.elems, &element{kind: kindI, name: name, a: c.node(a), b: c.node(b), wave: w})
}

// SW adds a time-controlled switch with on-resistance ron (off-conductance
// is a tiny leak keeping the matrix well-posed).
func (c *Circuit) SW(name, a, b string, ron float64, ctrl Control) {
	if ron <= 0 {
		c.fail("switch %s must have positive on-resistance", name)
		return
	}
	c.elems = append(c.elems, &element{
		kind: kindSW, name: name, a: c.node(a), b: c.node(b),
		ron: ron, roff: 1e12, ctrl: ctrl,
	})
}

// E adds a voltage-controlled voltage source: v(a,b) = gain * v(cp,cn).
func (c *Circuit) E(name, a, b, cp, cn string, gain float64) {
	c.elems = append(c.elems, &element{
		kind: kindVCVS, name: name,
		a: c.node(a), b: c.node(b),
		cp: c.node(cp), cn: c.node(cn), gain: gain,
	})
}

// G adds a voltage-controlled current source: i(a->b) = gain * v(cp,cn),
// i.e. a transconductance of `gain` siemens.
func (c *Circuit) G(name, a, b, cp, cn string, gain float64) {
	c.elems = append(c.elems, &element{
		kind: kindVCCS, name: name,
		a: c.node(a), b: c.node(b),
		cp: c.node(cp), cn: c.node(cn), gain: gain,
	})
}

// Nodes returns the sorted non-ground node names.
func (c *Circuit) Nodes() []string {
	out := append([]string(nil), c.nodeName...)
	sort.Strings(out)
	return out
}

// Result holds a transient simulation's sampled waveforms.
type Result struct {
	// Times holds the sample instants, including t = 0.
	Times []float64
	// V maps node name -> waveform. Ground is not included.
	V map[string][]float64
	// SourceI maps voltage-source name -> branch current (flowing from the
	// + terminal through the source).
	SourceI map[string][]float64
	// Steps counts solver steps; Refactorizations counts LU factorizations
	// triggered by switch-state changes (useful for performance analysis).
	Steps, Refactorizations int
}

// At returns the voltage of node at sample k (ground returns 0).
func (r *Result) At(node string, k int) float64 {
	w, ok := r.V[node]
	if !ok {
		return 0
	}
	return w[k]
}

// Avg returns the time-average of the node voltage over the last fraction
// `window` of the run (window in (0,1]; e.g. 0.5 = second half).
func (r *Result) Avg(node string, window float64) float64 {
	w, ok := r.V[node]
	if !ok || len(w) == 0 {
		return 0
	}
	start := int(float64(len(w)) * (1 - window))
	if start < 0 {
		start = 0
	}
	return numeric.Mean(w[start:])
}

// AvgPower returns the average of v(node)*i(source) over the trailing
// window — the power delivered by the named voltage source when node is its
// positive terminal.
func (r *Result) AvgPower(node, source string, window float64) float64 {
	v, ok := r.V[node]
	iw, ok2 := r.SourceI[source]
	if !ok || !ok2 || len(v) == 0 {
		return 0
	}
	start := int(float64(len(v)) * (1 - window))
	if start < 0 {
		start = 0
	}
	sum := 0.0
	for k := start; k < len(v); k++ {
		sum += v[k] * iw[k]
	}
	return sum / float64(len(v)-start)
}

// swStamp is the precomputed plan for one switch: its node pair, on/off
// conductances, and control. Switches are the only elements whose matrix
// stamps change during a transient run, so state changes restamp exactly
// these positions on top of the time-invariant base matrix.
type swStamp struct {
	a, b     int
	gon, gof float64
	ctrl     Control
}

// rhsStamp is the precomputed plan for one right-hand-side contributor
// (companion current of a cap/inductor, or an independent source).
type rhsStamp struct {
	a, b int
	g    float64 // companion conductance (caps/inductors)
	e    *element
}

// Tran runs a transient simulation with fixed step h over [0, T]. Initial
// conditions come from the declared element ICs (nodes start at the voltage
// implied by capacitor ICs where determined, 0 otherwise, via one backward-
// Euler start step).
//
// The linear-algebra core is structure-aware: the MNA matrix is stamped
// once into a base matrix, switch-state changes restamp only the switch
// conductances and renumerate the one shared symbolic LU factorization
// (see numeric.SparseLU), and the per-step loop — right-hand-side refresh,
// solve, companion update, waveform record — allocates nothing.
func (c *Circuit) Tran(h, T float64) (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	if h <= 0 || T <= 0 || T < h {
		return nil, fmt.Errorf("spice: need 0 < h <= T (h=%g, T=%g)", h, T)
	}
	n := len(c.nodeName)
	// Assign branch indices to voltage sources.
	nb := 0
	for _, e := range c.elems {
		if e.kind == kindV || e.kind == kindVCVS {
			e.branch = n + nb
			nb++
		}
	}
	dim := n + nb
	if dim == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}

	// Initialize companion states from ICs and gather the per-kind stamp
	// plans that drive the allocation-free inner loop.
	var caps, inds []rhsStamp
	var vsrcs, isrcs []*element
	var sws []swStamp
	for _, e := range c.elems {
		switch e.kind {
		case kindC:
			e.aux = e.ic // cap voltage
			e.state = 0  // cap current
			caps = append(caps, rhsStamp{a: e.a, b: e.b, g: 2 * e.value / h, e: e})
		case kindL:
			e.state = e.ic // inductor current
			e.aux = 0      // inductor voltage
			inds = append(inds, rhsStamp{a: e.a, b: e.b, g: h / (2 * e.value), e: e})
		case kindV:
			vsrcs = append(vsrcs, e)
		case kindI:
			isrcs = append(isrcs, e)
		case kindSW:
			sws = append(sws, swStamp{a: e.a, b: e.b, gon: 1 / e.ron, gof: 1 / e.roff, ctrl: e.ctrl})
		}
	}

	steps := int(math.Ceil(T / h))
	res := &Result{
		Times:   make([]float64, steps+1),
		V:       map[string][]float64{},
		SourceI: map[string][]float64{},
	}
	// Full-length, index-addressed waveform columns: the record path must
	// not hash node names or grow slices per step.
	vcols := make([][]float64, n)
	for i, name := range c.nodeName {
		vcols[i] = make([]float64, steps+1)
		res.V[name] = vcols[i]
	}
	srcCols := make([][]float64, len(vsrcs))
	for i, e := range vsrcs {
		srcCols[i] = make([]float64, steps+1)
		res.SourceI[e.name] = srcCols[i]
	}

	// Base MNA matrix: every time-invariant stamp (R, companion C/L
	// conductances, source/controlled-source incidence, Gmin). Switch
	// conductances are restamped per cached state into work.
	base := numeric.NewMatrix(dim, dim)
	stampG := func(m *numeric.Matrix, a, b int, g float64) {
		if a >= 0 {
			m.Add(a, a, g)
		}
		if b >= 0 {
			m.Add(b, b, g)
		}
		if a >= 0 && b >= 0 {
			m.Add(a, b, -g)
			m.Add(b, a, -g)
		}
	}
	for _, e := range c.elems {
		switch e.kind {
		case kindR:
			stampG(base, e.a, e.b, 1/e.value)
		case kindC:
			stampG(base, e.a, e.b, 2*e.value/h)
		case kindL:
			stampG(base, e.a, e.b, h/(2*e.value))
		case kindV, kindVCVS:
			if e.a >= 0 {
				base.Add(e.a, e.branch, 1)
				base.Add(e.branch, e.a, 1)
			}
			if e.b >= 0 {
				base.Add(e.b, e.branch, -1)
				base.Add(e.branch, e.b, -1)
			}
			if e.kind == kindVCVS {
				if e.cp >= 0 {
					base.Add(e.branch, e.cp, -e.gain)
				}
				if e.cn >= 0 {
					base.Add(e.branch, e.cn, e.gain)
				}
			}
		case kindVCCS:
			stampVCCS(base, e)
		}
	}
	// Ground leak on every node guards against floating subcircuits.
	for i := 0; i < n; i++ {
		base.Add(i, i, 1e-12)
	}
	work := numeric.NewMatrix(dim, dim)

	// Factorization cache keyed by the switch-state bitmask. The first
	// state pays the symbolic analysis; every further state forks the
	// shared symbolic structure and redoes only the numeric sweep.
	// Circuits with more than 64 switches chain extra mask words and key
	// the cache by the words' string encoding (built only on state
	// changes, never per step).
	nw := (len(sws) + 63) / 64
	if nw == 0 {
		nw = 1
	}
	maskBuf := make([]uint64, nw)
	curMask := make([]uint64, nw)
	computeMask := func(t float64) []uint64 {
		for i := range maskBuf {
			maskBuf[i] = 0
		}
		for i := range sws {
			if sws[i].ctrl(t) {
				maskBuf[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		return maskBuf
	}
	maskEq := func(a, b []uint64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	cache := map[uint64]*numeric.SparseLU{}
	var cacheWide map[string]*numeric.SparseLU
	var symSeed *numeric.SparseLU
	wideKey := func(mask []uint64) string {
		b := make([]byte, 8*len(mask))
		for i, w := range mask {
			for k := 0; k < 8; k++ {
				b[8*i+k] = byte(w >> (8 * uint(k)))
			}
		}
		return string(b)
	}
	build := func(t float64) (*numeric.SparseLU, error) {
		copy(work.Data, base.Data)
		for i := range sws {
			g := sws[i].gof
			if sws[i].ctrl(t) {
				g = sws[i].gon
			}
			stampG(work, sws[i].a, sws[i].b, g)
		}
		res.Refactorizations++
		if symSeed == nil {
			f, err := numeric.NewSparseLU(work)
			if err != nil {
				return nil, fmt.Errorf("spice: singular MNA matrix: %w", err)
			}
			symSeed = f
			return f, nil
		}
		f := symSeed.Fork()
		if err := f.Refactor(work); err != nil {
			return nil, fmt.Errorf("spice: singular MNA matrix: %w", err)
		}
		return f, nil
	}

	rhs := make([]float64, dim)
	x := make([]float64, dim)
	record := func(s int, t float64) {
		res.Times[s] = t
		for i := range vcols {
			vcols[i][s] = x[i]
		}
		for i, e := range vsrcs {
			// MNA branch current flows + -> - inside the source; the
			// current delivered by the source is its negative.
			srcCols[i][s] = -x[e.branch]
		}
	}

	// Initial solve at t=0: one backward-Euler step of size h from the
	// declared ICs. The companion conductances C/h and h/L stay within the
	// dynamic range of the regular stamps, keeping the matrix well
	// conditioned; capacitor voltages relax by at most one step from their
	// ICs, which the warm-up cycles absorb.
	hInit := h
	{
		m := numeric.NewMatrix(dim, dim)
		stamp := func(a, b int, g float64) {
			if a >= 0 {
				m.Add(a, a, g)
			}
			if b >= 0 {
				m.Add(b, b, g)
			}
			if a >= 0 && b >= 0 {
				m.Add(a, b, -g)
				m.Add(b, a, -g)
			}
		}
		for i := range rhs {
			rhs[i] = 0
		}
		addI := func(a, b int, i float64) {
			if a >= 0 {
				rhs[a] += i
			}
			if b >= 0 {
				rhs[b] -= i
			}
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindR:
				stamp(e.a, e.b, 1/e.value)
			case kindC:
				g := e.value / hInit
				stamp(e.a, e.b, g)
				addI(e.a, e.b, g*e.aux) // pins v_ab ~ ic
			case kindL:
				g := hInit / e.value
				stamp(e.a, e.b, g)
				addI(e.a, e.b, -e.state)
			case kindSW:
				r := e.roff
				if e.ctrl(0) {
					r = e.ron
				}
				stamp(e.a, e.b, 1/r)
			case kindV:
				if e.a >= 0 {
					m.Add(e.a, e.branch, 1)
					m.Add(e.branch, e.a, 1)
				}
				if e.b >= 0 {
					m.Add(e.b, e.branch, -1)
					m.Add(e.branch, e.b, -1)
				}
				rhs[e.branch] = e.wave(0)
			case kindVCVS:
				if e.a >= 0 {
					m.Add(e.a, e.branch, 1)
					m.Add(e.branch, e.a, 1)
				}
				if e.b >= 0 {
					m.Add(e.b, e.branch, -1)
					m.Add(e.branch, e.b, -1)
				}
				if e.cp >= 0 {
					m.Add(e.branch, e.cp, -e.gain)
				}
				if e.cn >= 0 {
					m.Add(e.branch, e.cn, e.gain)
				}
			case kindVCCS:
				stampVCCS(m, e)
			case kindI:
				addI(e.a, e.b, -e.wave(0))
			}
		}
		for i := 0; i < n; i++ {
			m.Add(i, i, 1e-12)
		}
		f, err := numeric.Factorize(m)
		if err != nil {
			return nil, fmt.Errorf("spice: singular matrix at t=0: %w", err)
		}
		f.SolveInto(x, rhs)
		// Seed companion states from the t=0 solution.
		vAt := func(i int) float64 {
			if i < 0 {
				return 0
			}
			return x[i]
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindC:
				e.aux = vAt(e.a) - vAt(e.b)
				e.state = 0
			case kindL:
				e.aux = 0
			}
		}
	}
	record(0, 0)

	addI := func(a, b int, i float64) {
		if a >= 0 {
			rhs[a] += i
		}
		if b >= 0 {
			rhs[b] -= i
		}
	}
	vAt := func(i int) float64 {
		if i < 0 {
			return 0
		}
		return x[i]
	}
	var lu *numeric.SparseLU
	for s := 1; s <= steps; s++ {
		t := float64(s) * h
		mask := computeMask(t)
		if lu == nil || !maskEq(mask, curMask) {
			var cached *numeric.SparseLU
			var ok bool
			if nw == 1 {
				cached, ok = cache[mask[0]]
			} else if cacheWide != nil {
				cached, ok = cacheWide[wideKey(mask)]
			}
			if ok {
				lu = cached
			} else {
				f, err := build(t)
				if err != nil {
					return nil, err
				}
				if nw == 1 {
					cache[mask[0]] = f
				} else {
					if cacheWide == nil {
						cacheWide = map[string]*numeric.SparseLU{}
					}
					cacheWide[wideKey(mask)] = f
				}
				lu = f
			}
			copy(curMask, mask)
		}
		for i := range rhs {
			rhs[i] = 0
		}
		for i := range caps {
			// Trapezoidal companion: Ieq = g*v + i (into node a).
			st := &caps[i]
			addI(st.a, st.b, st.g*st.e.aux+st.e.state)
		}
		for i := range inds {
			// Norton companion: Ieq = -(i + g*v).
			st := &inds[i]
			addI(st.a, st.b, -(st.e.state + st.g*st.e.aux))
		}
		for _, e := range vsrcs {
			rhs[e.branch] = e.wave(t)
		}
		for _, e := range isrcs {
			addI(e.a, e.b, -e.wave(t))
		}
		lu.SolveInto(x, rhs)
		res.Steps++
		// Update companion states.
		for i := range caps {
			st := &caps[i]
			v := vAt(st.a) - vAt(st.b)
			iNew := st.g*(v-st.e.aux) - st.e.state
			st.e.state = iNew
			st.e.aux = v
		}
		for i := range inds {
			st := &inds[i]
			v := vAt(st.a) - vAt(st.b)
			iNew := st.e.state + st.g*(v+st.e.aux)
			st.e.state = iNew
			st.e.aux = v
		}
		record(s, t)
	}
	return res, nil
}

// stampVCCS stamps a voltage-controlled current source into the MNA matrix:
// current gain*(v_cp - v_cn) flows from a to b.
func stampVCCS(m *numeric.Matrix, e *element) {
	add := func(row, col int, v float64) {
		if row >= 0 && col >= 0 {
			m.Add(row, col, v)
		}
	}
	add(e.a, e.cp, e.gain)
	add(e.a, e.cn, -e.gain)
	add(e.b, e.cp, -e.gain)
	add(e.b, e.cn, e.gain)
}
