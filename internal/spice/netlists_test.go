package spice

import (
	"math"
	"testing"

	"ivory/internal/topology"
)

func buildSC21(t *testing.T, ctot, gtot, vin, fsw, iload float64) (*Circuit, *topology.Analysis) {
	t.Helper()
	top, err := topology.SeriesParallel(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	an, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, an.NumCaps)
	for i, m := range an.CapMultipliers {
		caps[i] = ctot * m / an.SumAC
	}
	rons := make([]float64, an.NumSwitches)
	for i, m := range an.SwitchMultipliers {
		rons[i] = an.SumAR / (gtot * m)
	}
	c, err := BuildSC(top, an, caps, rons, SCOptions{
		VIn: vin, FSw: fsw, CLoad: 20e-9, ILoad: iload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, an
}

// The headline validation (paper Fig. 7): the analytic SSL/FSL model must
// track the switch-level simulation of the same converter.
func TestSCConverterMatchesAnalyticModel(t *testing.T) {
	vin, fsw, iload := 2.0, 50e6, 0.2
	ctot, gtot := 10e-9, 100.0
	c, an := buildSC21(t, ctot, gtot, vin, fsw, iload)
	pin, pout, eff, err := MeasureEfficiency(c, fsw, 40, 64, DC(iload))
	if err != nil {
		t.Fatal(err)
	}
	// Analytic prediction (conduction-only: the netlist has ideal drives).
	rssl := an.SumAC * an.SumAC / (ctot * fsw)
	rfsl := an.SumAR * an.SumAR / (gtot * 0.5)
	rout := math.Hypot(rssl, rfsl)
	vPred := an.Ratio*vin - iload*rout
	effPred := vPred / (an.Ratio * vin)

	// Simulated output voltage from output power.
	vSim := pout / iload
	if math.Abs(vSim-vPred) > 0.05*vin {
		t.Errorf("V_out: sim %v vs model %v", vSim, vPred)
	}
	if math.Abs(eff-effPred) > 0.05 {
		t.Errorf("efficiency: sim %v vs model %v", eff, effPred)
	}
	if pin < pout {
		t.Errorf("simulator created energy: pin %v < pout %v", pin, pout)
	}
}

// Sweeping frequency: simulated output impedance interpolates between the
// SSL (1/f) and FSL (flat) asymptotes.
func TestSCImpedanceFrequencyBehaviour(t *testing.T) {
	vin, iload := 2.0, 0.2
	ctot, gtot := 10e-9, 100.0
	vAt := func(fsw float64) float64 {
		c, _ := buildSC21(t, ctot, gtot, vin, fsw, iload)
		_, pout, _, err := MeasureEfficiency(c, fsw, 40, 64, DC(iload))
		if err != nil {
			t.Fatal(err)
		}
		return pout / iload
	}
	vLo := vAt(10e6)
	vMid := vAt(40e6)
	vHi := vAt(200e6)
	// Output rises monotonically with frequency (SSL shrinks)...
	if !(vLo < vMid && vMid < vHi) {
		t.Errorf("V_out should rise with fsw: %v, %v, %v", vLo, vMid, vHi)
	}
	// ...but saturates at the FSL bound below the ideal ratio.
	ideal := 0.5 * vin
	if vHi >= ideal {
		t.Errorf("V_out %v cannot reach the ideal %v", vHi, ideal)
	}
}

func TestBuildSCValidation(t *testing.T) {
	top, _ := topology.SeriesParallel(2, 1)
	an, _ := top.Analyze()
	if _, err := BuildSC(nil, an, nil, nil, SCOptions{}); err == nil {
		t.Error("nil topology must fail")
	}
	if _, err := BuildSC(top, an, []float64{1e-9}, []float64{1}, SCOptions{VIn: 1, FSw: 1e6, CLoad: 1e-9}); err == nil {
		t.Error("switch count mismatch must fail")
	}
	caps := []float64{1e-9}
	rons := []float64{1, 1, 1, 1}
	if _, err := BuildSC(top, an, caps, rons, SCOptions{VIn: 0, FSw: 1e6, CLoad: 1e-9}); err == nil {
		t.Error("zero VIn must fail")
	}
	if _, err := BuildSC(top, an, []float64{-1}, rons, SCOptions{VIn: 1, FSw: 1e6, CLoad: 1e-9}); err == nil {
		t.Error("negative cap must fail")
	}
}

func TestBuckConverterMatchesIdealConversion(t *testing.T) {
	opt := BuckOptions{
		VIn: 3.3, Duty: 0.4, FSw: 20e6,
		L: 100e-9, RL: 0.05, COut: 1e-6,
		RHigh: 0.05, RLow: 0.05,
		ILoad: 1.0,
	}
	c, err := BuildBuck(opt)
	if err != nil {
		t.Fatal(err)
	}
	pin, pout, eff, err := MeasureEfficiency(c, opt.FSw, 60, 64, DC(opt.ILoad))
	if err != nil {
		t.Fatal(err)
	}
	// Average V_out = D*VIn - I*(avg switch R + DCR).
	rAvg := opt.Duty*opt.RHigh + (1-opt.Duty)*opt.RLow + opt.RL
	vPred := opt.Duty*opt.VIn - opt.ILoad*rAvg
	vSim := pout / opt.ILoad
	if math.Abs(vSim-vPred) > 0.05*vPred {
		t.Errorf("buck V_out: sim %v vs model %v", vSim, vPred)
	}
	if eff < 0.85 || eff > 1.0 {
		t.Errorf("buck sim efficiency implausible: %v (pin %v pout %v)", eff, pin, pout)
	}
}

func TestBuildBuckValidation(t *testing.T) {
	if _, err := BuildBuck(BuckOptions{}); err == nil {
		t.Error("zero options must fail")
	}
	if _, err := BuildBuck(BuckOptions{VIn: 1, Duty: 1.2, FSw: 1e6, L: 1e-9, COut: 1e-9, RHigh: 1, RLow: 1}); err == nil {
		t.Error("duty > 1 must fail")
	}
}

func TestMeasureEfficiencyValidation(t *testing.T) {
	c := NewCircuit()
	c.V("vsrc", "vin", "0", DC(1))
	c.R("r", "vin", "vout", 1)
	c.I("iload", "vout", "0", DC(0.1))
	if _, _, _, err := MeasureEfficiency(c, 1e6, 2, 64, DC(0.1)); err == nil {
		t.Error("too few cycles must fail")
	}
	if _, _, _, err := MeasureEfficiency(c, 1e6, 10, 4, DC(0.1)); err == nil {
		t.Error("too few points must fail")
	}
	_, _, eff, err := MeasureEfficiency(c, 1e6, 10, 16, DC(0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Resistive "converter": eff = vout/vin = 0.9.
	if math.Abs(eff-0.9) > 1e-6 {
		t.Errorf("resistive efficiency %v, want 0.9", eff)
	}
}
