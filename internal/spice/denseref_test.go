package spice

// Reference implementations of the transient and AC analyses as they were
// before the structure-aware kernel overhaul: per-state dense rebuild +
// numeric.Factorize for Tran, a fresh dense complex Gaussian elimination
// per frequency for AC. The equivalence suite pins the production paths
// against these — they are the ground truth the optimized kernels must
// reproduce within 1e-9 relative tolerance.

import (
	"fmt"
	"math"
	"math/cmplx"

	"ivory/internal/numeric"
)

// tranDenseRef is the pre-overhaul Tran: rebuilds and densely factorizes
// the full MNA matrix per switch state (cached by state-vector string) and
// allocates a fresh solution per step.
func tranDenseRef(c *Circuit, h, T float64) (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	if h <= 0 || T <= 0 || T < h {
		return nil, fmt.Errorf("spice: need 0 < h <= T (h=%g, T=%g)", h, T)
	}
	n := len(c.nodeName)
	nb := 0
	for _, e := range c.elems {
		if e.kind == kindV || e.kind == kindVCVS {
			e.branch = n + nb
			nb++
		}
	}
	dim := n + nb
	if dim == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}
	for _, e := range c.elems {
		switch e.kind {
		case kindC:
			e.aux = e.ic
			e.state = 0
		case kindL:
			e.state = e.ic
			e.aux = 0
		}
	}
	steps := int(math.Ceil(T / h))
	res := &Result{
		Times:   make([]float64, 0, steps+1),
		V:       map[string][]float64{},
		SourceI: map[string][]float64{},
	}
	for _, name := range c.nodeName {
		res.V[name] = make([]float64, 0, steps+1)
	}
	for _, e := range c.elems {
		if e.kind == kindV {
			res.SourceI[e.name] = make([]float64, 0, steps+1)
		}
	}
	cache := map[string]*numeric.LU{}
	stateKey := func(t float64) string {
		key := make([]byte, 0, 8)
		for _, e := range c.elems {
			if e.kind == kindSW {
				if e.ctrl(t) {
					key = append(key, '1')
				} else {
					key = append(key, '0')
				}
			}
		}
		return string(key)
	}
	build := func(t float64) (*numeric.LU, error) {
		m := numeric.NewMatrix(dim, dim)
		stamp := func(a, b int, g float64) {
			if a >= 0 {
				m.Add(a, a, g)
			}
			if b >= 0 {
				m.Add(b, b, g)
			}
			if a >= 0 && b >= 0 {
				m.Add(a, b, -g)
				m.Add(b, a, -g)
			}
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindR:
				stamp(e.a, e.b, 1/e.value)
			case kindC:
				stamp(e.a, e.b, 2*e.value/h)
			case kindL:
				stamp(e.a, e.b, h/(2*e.value))
			case kindSW:
				r := e.roff
				if e.ctrl(t) {
					r = e.ron
				}
				stamp(e.a, e.b, 1/r)
			case kindV:
				if e.a >= 0 {
					m.Add(e.a, e.branch, 1)
					m.Add(e.branch, e.a, 1)
				}
				if e.b >= 0 {
					m.Add(e.b, e.branch, -1)
					m.Add(e.branch, e.b, -1)
				}
			case kindVCVS:
				if e.a >= 0 {
					m.Add(e.a, e.branch, 1)
					m.Add(e.branch, e.a, 1)
				}
				if e.b >= 0 {
					m.Add(e.b, e.branch, -1)
					m.Add(e.branch, e.b, -1)
				}
				if e.cp >= 0 {
					m.Add(e.branch, e.cp, -e.gain)
				}
				if e.cn >= 0 {
					m.Add(e.branch, e.cn, e.gain)
				}
			case kindVCCS:
				stampVCCS(m, e)
			}
		}
		for i := 0; i < n; i++ {
			m.Add(i, i, 1e-12)
		}
		res.Refactorizations++
		f, err := numeric.Factorize(m)
		if err != nil {
			return nil, fmt.Errorf("spice: singular MNA matrix: %w", err)
		}
		return f, nil
	}
	rhs := make([]float64, dim)
	x := make([]float64, dim)
	record := func(t float64) {
		res.Times = append(res.Times, t)
		for i, name := range c.nodeName {
			res.V[name] = append(res.V[name], x[i])
		}
		for _, e := range c.elems {
			if e.kind == kindV {
				res.SourceI[e.name] = append(res.SourceI[e.name], -x[e.branch])
			}
		}
	}
	// Initial backward-Euler step from ICs, identical to the production
	// path (which kept this dense one-shot).
	{
		m := numeric.NewMatrix(dim, dim)
		stamp := func(a, b int, g float64) {
			if a >= 0 {
				m.Add(a, a, g)
			}
			if b >= 0 {
				m.Add(b, b, g)
			}
			if a >= 0 && b >= 0 {
				m.Add(a, b, -g)
				m.Add(b, a, -g)
			}
		}
		for i := range rhs {
			rhs[i] = 0
		}
		addI := func(a, b int, i float64) {
			if a >= 0 {
				rhs[a] += i
			}
			if b >= 0 {
				rhs[b] -= i
			}
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindR:
				stamp(e.a, e.b, 1/e.value)
			case kindC:
				g := e.value / h
				stamp(e.a, e.b, g)
				addI(e.a, e.b, g*e.aux)
			case kindL:
				g := h / e.value
				stamp(e.a, e.b, g)
				addI(e.a, e.b, -e.state)
			case kindSW:
				r := e.roff
				if e.ctrl(0) {
					r = e.ron
				}
				stamp(e.a, e.b, 1/r)
			case kindV:
				if e.a >= 0 {
					m.Add(e.a, e.branch, 1)
					m.Add(e.branch, e.a, 1)
				}
				if e.b >= 0 {
					m.Add(e.b, e.branch, -1)
					m.Add(e.branch, e.b, -1)
				}
				rhs[e.branch] = e.wave(0)
			case kindVCVS:
				if e.a >= 0 {
					m.Add(e.a, e.branch, 1)
					m.Add(e.branch, e.a, 1)
				}
				if e.b >= 0 {
					m.Add(e.b, e.branch, -1)
					m.Add(e.branch, e.b, -1)
				}
				if e.cp >= 0 {
					m.Add(e.branch, e.cp, -e.gain)
				}
				if e.cn >= 0 {
					m.Add(e.branch, e.cn, e.gain)
				}
			case kindVCCS:
				stampVCCS(m, e)
			case kindI:
				addI(e.a, e.b, -e.wave(0))
			}
		}
		for i := 0; i < n; i++ {
			m.Add(i, i, 1e-12)
		}
		f, err := numeric.Factorize(m)
		if err != nil {
			return nil, fmt.Errorf("spice: singular matrix at t=0: %w", err)
		}
		copy(x, f.Solve(rhs))
		vAt := func(i int) float64 {
			if i < 0 {
				return 0
			}
			return x[i]
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindC:
				e.aux = vAt(e.a) - vAt(e.b)
				e.state = 0
			case kindL:
				e.aux = 0
			}
		}
	}
	record(0)
	var lu *numeric.LU
	curKey := ""
	for s := 1; s <= steps; s++ {
		t := float64(s) * h
		key := stateKey(t)
		if lu == nil || key != curKey {
			if f, ok := cache[key]; ok {
				lu = f
			} else {
				f, err := build(t)
				if err != nil {
					return nil, err
				}
				cache[key] = f
				lu = f
			}
			curKey = key
		}
		for i := range rhs {
			rhs[i] = 0
		}
		addI := func(a, b int, i float64) {
			if a >= 0 {
				rhs[a] += i
			}
			if b >= 0 {
				rhs[b] -= i
			}
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindC:
				g := 2 * e.value / h
				addI(e.a, e.b, g*e.aux+e.state)
			case kindL:
				g := h / (2 * e.value)
				addI(e.a, e.b, -(e.state + g*e.aux))
			case kindV:
				rhs[e.branch] = e.wave(t)
			case kindI:
				addI(e.a, e.b, -e.wave(t))
			}
		}
		copy(x, lu.Solve(rhs))
		res.Steps++
		vAt := func(i int) float64 {
			if i < 0 {
				return 0
			}
			return x[i]
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindC:
				v := vAt(e.a) - vAt(e.b)
				g := 2 * e.value / h
				iNew := g*(v-e.aux) - e.state
				e.state = iNew
				e.aux = v
			case kindL:
				v := vAt(e.a) - vAt(e.b)
				g := h / (2 * e.value)
				iNew := e.state + g*(v+e.aux)
				e.state = iNew
				e.aux = v
			}
		}
		record(t)
	}
	return res, nil
}

// acDenseRef is the pre-overhaul AC: a fresh dense complex matrix and a
// full pivoted Gaussian elimination at every frequency.
func acDenseRef(c *Circuit, freqs []float64, acSource string) (*ACResult, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("spice: AC needs at least one frequency")
	}
	found := false
	for _, e := range c.elems {
		if (e.kind == kindV || e.kind == kindI) && e.name == acSource {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("spice: AC source %q not found", acSource)
	}
	n := len(c.nodeName)
	nb := 0
	for _, e := range c.elems {
		if e.kind == kindV || e.kind == kindVCVS {
			e.branch = n + nb
			nb++
		}
	}
	dim := n + nb
	if dim == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}
	res := &ACResult{Freqs: append([]float64(nil), freqs...), V: map[string][]complex128{}}
	for _, name := range c.nodeName {
		res.V[name] = make([]complex128, len(freqs))
	}
	for fi, f := range freqs {
		omega := 2 * math.Pi * f
		m := make([]complex128, dim*dim)
		rhs := make([]complex128, dim)
		stamp := func(a, b int, y complex128) {
			if a >= 0 {
				m[a*dim+a] += y
			}
			if b >= 0 {
				m[b*dim+b] += y
			}
			if a >= 0 && b >= 0 {
				m[a*dim+b] -= y
				m[b*dim+a] -= y
			}
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindR:
				stamp(e.a, e.b, complex(1/e.value, 0))
			case kindC:
				stamp(e.a, e.b, complex(0, omega*e.value))
			case kindL:
				if omega == 0 {
					stamp(e.a, e.b, complex(1e9, 0))
				} else {
					stamp(e.a, e.b, complex(0, -1/(omega*e.value)))
				}
			case kindSW:
				r := e.roff
				if e.ctrl(0) {
					r = e.ron
				}
				stamp(e.a, e.b, complex(1/r, 0))
			case kindV:
				if e.a >= 0 {
					m[e.a*dim+e.branch] += 1
					m[e.branch*dim+e.a] += 1
				}
				if e.b >= 0 {
					m[e.b*dim+e.branch] -= 1
					m[e.branch*dim+e.b] -= 1
				}
				if e.name == acSource {
					rhs[e.branch] = 1
				}
			case kindVCVS:
				if e.a >= 0 {
					m[e.a*dim+e.branch] += 1
					m[e.branch*dim+e.a] += 1
				}
				if e.b >= 0 {
					m[e.b*dim+e.branch] -= 1
					m[e.branch*dim+e.b] -= 1
				}
				if e.cp >= 0 {
					m[e.branch*dim+e.cp] -= complex(e.gain, 0)
				}
				if e.cn >= 0 {
					m[e.branch*dim+e.cn] += complex(e.gain, 0)
				}
			case kindVCCS:
				g := complex(e.gain, 0)
				addAt := func(row, col int, v complex128) {
					if row >= 0 && col >= 0 {
						m[row*dim+col] += v
					}
				}
				addAt(e.a, e.cp, g)
				addAt(e.a, e.cn, -g)
				addAt(e.b, e.cp, -g)
				addAt(e.b, e.cn, g)
			case kindI:
				if e.name == acSource {
					if e.a >= 0 {
						rhs[e.a] += 1
					}
					if e.b >= 0 {
						rhs[e.b] -= 1
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			m[i*dim+i] += 1e-12
		}
		x, err := refSolveComplex(m, rhs, dim)
		if err != nil {
			return nil, fmt.Errorf("spice: AC solve failed at %g Hz: %w", f, err)
		}
		for i, name := range c.nodeName {
			res.V[name][fi] = x[i]
		}
	}
	return res, nil
}

func refSolveComplex(m []complex128, b []complex128, n int) ([]complex128, error) {
	a := make([]complex128, len(m))
	copy(a, m)
	x := make([]complex128, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		p, mx := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := cmplx.Abs(a[i*n+k]); ab > mx {
				p, mx = i, ab
			}
		}
		if mx < 1e-300 {
			return nil, fmt.Errorf("singular complex matrix")
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[p*n+j], a[k*n+j] = a[k*n+j], a[p*n+j]
			}
			x[p], x[k] = x[k], x[p]
		}
		piv := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / piv
			if l == 0 {
				continue
			}
			a[i*n+k] = 0
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
			x[i] -= l * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s / a[i*n+i]
	}
	return x, nil
}
