package spice

import (
	"math"
	"strings"
	"testing"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"10", 10},
		{"3.3", 3.3},
		{"10n", 10e-9},
		{"10nF", 10e-9},
		{"2.5u", 2.5e-6},
		{"100p", 100e-12},
		{"1f", 1e-15},
		{"4.7k", 4.7e3},
		{"2meg", 2e6},
		{"1g", 1e9},
		{"0.5t", 0.5e12},
		{"1m", 1e-3},
		{"1e-9", 1e-9},
		{"2.5e6", 2.5e6},
		{"-3m", -3e-3},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-15*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "10q", "--3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestParseNetlistRCFilter(t *testing.T) {
	deck := `
* simple RC low-pass
V1 in 0 1.0
R1 in out 1k
C1 out 0 1n ic=0
.end
`
	c, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(1e-9, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Avg("out", 0.2); math.Abs(got-1.0) > 1e-3 {
		t.Errorf("settled output %v, want 1", got)
	}
}

func TestParseNetlistContinuationAndComments(t *testing.T) {
	deck := `
* PWL source across two lines
V1 a 0 PWL 0 0
+ 1u 1 2u 0
R1 a 0 1k ; load
`
	c, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(10e-9, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Peak at ~1us should reach ~1V.
	peak := 0.0
	for _, v := range res.V["a"] {
		if v > peak {
			peak = v
		}
	}
	if math.Abs(peak-1) > 0.02 {
		t.Errorf("PWL peak %v, want ~1", peak)
	}
}

func TestParseNetlistSCConverter(t *testing.T) {
	// A 2:1 SC converter written as a text deck.
	deck := `
* 2:1 switched-capacitor converter, 10 MHz
Vin vin 0 2.0
C1 p n 20n ic=1
S1 vin p 0.05 CLK 10meg 1
S2 n out 0.05 CLK 10meg 1
S3 p out 0.05 CLK 10meg 2
S4 n 0 0.05 CLK 10meg 2
Cload out 0 200n ic=0.9
Iload out 0 0.1
`
	c, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(1/(10e6*64), 40/10e6)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Avg("out", 0.3)
	// Droop below the ideal 1 V, but still regulating near it.
	if v < 0.8 || v >= 1.0 {
		t.Errorf("converter output %v, want in [0.8, 1.0)", v)
	}
}

func TestParseNetlistPulseAndDuty(t *testing.T) {
	deck := `
V1 a 0 PULSE 0 1 1u 0.25
S1 a b 1 DUTY 1meg 0.5 inv
R1 b 0 1k
`
	c, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tran(1e-9, 4e-6); err != nil {
		t.Fatal(err)
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"R1 a 0",              // too few fields
		"Q1 a 0 5",            // unknown element
		"R1 a 0 10q",          // bad suffix
		"V1 a 0 PWL 0 0 0 1",  // non-increasing PWL
		"V1 a 0 PWL 0 0 1u",   // odd PWL fields
		"S1 a b 1 CLK 1meg 3", // bad phase
		"S1 a b 1 WAT 1meg 1", // bad mode
		"S1 a b 1 DUTY 1meg",  // missing duty
		".option reltol=1e-3", // unsupported directive
		"V1 a 0 PULSE 0 1 1u", // short PULSE
		"L1 a 0 1u ic=bogus",  // bad IC
		"C1 a 0 -1n",          // negative cap (caught by builder)
	}
	for _, deck := range cases {
		if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
			t.Errorf("deck %q should fail", deck)
		}
	}
}
