package spice

import (
	"math"
	"testing"
)

func TestOPDivider(t *testing.T) {
	c := NewCircuit()
	c.V("v1", "a", "0", DC(9))
	c.R("r1", "a", "b", 2000)
	c.R("r2", "b", "0", 1000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V["b"]-3) > 1e-6 {
		t.Errorf("divider = %v, want 3", op.V["b"])
	}
	if math.Abs(op.SourceI["v1"]-3e-3) > 1e-9 {
		t.Errorf("source current %v, want 3 mA", op.SourceI["v1"])
	}
}

func TestOPCapacitorOpenInductorShort(t *testing.T) {
	c := NewCircuit()
	c.V("v1", "a", "0", DC(5))
	c.R("r1", "a", "b", 1000)
	c.C("c1", "b", "0", 1e-9, 0) // open at DC: no current path through it
	c.L("l1", "b", "c", 1e-6, 0) // short at DC
	c.R("r2", "c", "0", 1000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	// Divider through r1-(L short)-r2: b = c = 2.5 V.
	if math.Abs(op.V["b"]-2.5) > 1e-3 || math.Abs(op.V["c"]-2.5) > 1e-3 {
		t.Errorf("b=%v c=%v, want 2.5", op.V["b"], op.V["c"])
	}
}

func TestOPCurrentSourceAndSwitch(t *testing.T) {
	c := NewCircuit()
	c.I("i1", "0", "a", DC(1e-3)) // 1 mA into node a
	c.R("r1", "a", "0", 1000)
	c.SW("s1", "a", "b", 1, func(float64) bool { return false })
	c.R("r2", "b", "0", 1000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V["a"]-1) > 1e-3 {
		t.Errorf("v(a) = %v, want 1", op.V["a"])
	}
	if op.V["b"] > 1e-3 {
		t.Errorf("open switch leaked: v(b) = %v", op.V["b"])
	}
}

func TestOPEmptyCircuit(t *testing.T) {
	c := NewCircuit()
	if _, err := c.OP(); err == nil {
		t.Error("empty circuit must fail")
	}
}
