package spice

import (
	"strings"
	"testing"
)

// TestParseNetlistErrorMessages pins the parser's diagnostics: each failure
// mode must name what went wrong and where, not just return "error". The
// line prefix matters most — decks arrive from files, and "line 3" is the
// difference between a fix and a hunt.
func TestParseNetlistErrorMessages(t *testing.T) {
	cases := []struct {
		name, deck, want string
	}{
		{
			name: "malformed card too few fields",
			deck: "R1 in 0",
			want: "at least 4 fields",
		},
		{
			name: "unknown element letter",
			deck: "Q1 b c 100",
			want: `unknown element type "Q"`,
		},
		{
			name: "unknown suffix on value",
			deck: "R1 in 0 10q",
			want: `unknown suffix "q"`,
		},
		{
			name: "bad mantissa",
			deck: "R1 in 0 ..5",
			want: "bad number",
		},
		{
			name: "unsupported directive",
			deck: "R1 in 0 1k\n.tran 1n 1u",
			want: "unsupported directive .TRAN",
		},
		{
			name: "controlled source too few args",
			deck: "E1 out 0 in",
			want: "controlled source needs",
		},
		{
			name: "switch too few args",
			deck: "S1 a b 1",
			want: "switch needs",
		},
		{
			name: "CLK switch missing phase",
			deck: "S1 a b 1 CLK 1meg",
			want: "CLK switch needs",
		},
		{
			name: "CLK phase out of range",
			deck: "S1 a b 1 CLK 1meg 7",
			want: "phase must be 1 or 2",
		},
		{
			name: "unknown switch mode",
			deck: "S1 a b 1 PWM 1meg 0.5",
			want: `unknown switch mode "PWM"`,
		},
		{
			name: "PULSE too few fields",
			deck: "V1 in 0 PULSE 0 1 1u",
			want: "PULSE needs",
		},
		{
			name: "PWL odd field count",
			deck: "I1 in 0 PWL 0 0 1u",
			want: "even number",
		},
		{
			name: "PWL non-increasing times",
			deck: "V1 in 0 PWL 0 0 1u 1 1u 2",
			want: "times must be increasing",
		},
		{
			name: "bad initial condition",
			deck: "C1 a 0 1n ic=bogus",
			want: "bad number",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseNetlist(strings.NewReader(c.deck))
			if err == nil {
				t.Fatalf("deck %q parsed", c.deck)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestParseNetlistErrorNamesLine: a failing card is reported with its
// 1-based line number (post comment/continuation folding) and its text.
func TestParseNetlistErrorNamesLine(t *testing.T) {
	deck := "* power stage\nR1 in mid 1k\nC1 mid 0 10nF\nQ9 mid 0 5\n"
	_, err := ParseNetlist(strings.NewReader(deck))
	if err == nil {
		t.Fatal("bad deck parsed")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "Q9") {
		t.Errorf("error %q lacks line number and offending card", err)
	}
}

// TestParseNetlistDanglingContinuation: a "+" continuation with no card
// before it cannot silently extend nothing — it must be rejected as a card
// of its own (there is nothing correct to attach it to).
func TestParseNetlistDanglingContinuation(t *testing.T) {
	_, err := ParseNetlist(strings.NewReader("+ 1 0 10k\nR1 a 0 1k\n"))
	if err == nil {
		t.Fatal("leading continuation line parsed")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error %q does not point at the dangling continuation", err)
	}
}

// TestParseNetlistNoElements: comment-only and directive-only decks are an
// explicit "no elements" error, not an empty circuit that fails later.
func TestParseNetlistNoElements(t *testing.T) {
	for _, deck := range []string{
		"",
		"* just a comment\n* another\n",
		".end\n",
		"* header\n.end\n",
	} {
		_, err := ParseNetlist(strings.NewReader(deck))
		if err == nil {
			t.Errorf("deck %q parsed", deck)
			continue
		}
		if !strings.Contains(err.Error(), "no elements") {
			t.Errorf("deck %q: error %q, want a 'no elements' diagnostic", deck, err)
		}
	}
}

// TestParseValueErrorPaths covers the value lexer's rejects alongside the
// accepted oddballs that sit right at the boundary.
func TestParseValueErrorPaths(t *testing.T) {
	bad := []string{"", "  ", "q", "10x", "--5", "1e", "1e+900meg"}
	for _, s := range bad {
		if v, err := ParseValue(s); err == nil {
			t.Errorf("ParseValue(%q) = %g, want error", s, v)
		}
	}
	good := map[string]float64{
		"10nF":  10e-9, // trailing unit letters after the suffix are ignored
		"3.3k":  3300,
		"2meg":  2e6,
		"1e3":   1000,
		"-5m":   -5e-3,
		"+2.5u": 2.5e-6,
	}
	for s, want := range good {
		v, err := ParseValue(s)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", s, err)
			continue
		}
		if diff := (v - want) / want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("ParseValue(%q) = %g, want %g", s, v, want)
		}
	}
}
