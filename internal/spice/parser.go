package spice

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseNetlist reads a SPICE-flavoured text netlist into a Circuit. The
// dialect is the classic card format, one element per line:
//
//   - comment
//     R<name> <node+> <node-> <value>
//     C<name> <node+> <node-> <value> [ic=<v>]
//     L<name> <node+> <node-> <value> [ic=<i>]
//     V<name> <node+> <node-> <value>            (DC)
//     V<name> <node+> <node-> PULSE <v0> <v1> <period> <duty>
//     V<name> <node+> <node-> PWL <t1> <v1> <t2> <v2> ...
//     I<name> <node+> <node-> <value> | PULSE ... | PWL ...
//     S<name> <node+> <node-> <ron> CLK <fsw> <phase 1|2>   (two-phase switch)
//     S<name> <node+> <node-> <ron> DUTY <fsw> <duty> [inv] (PWM switch)
//     E<name> <node+> <node-> <cp> <cn> <gain>    (VCVS)
//     G<name> <node+> <node-> <cp> <cn> <gain>    (VCCS, siemens)
//     .end                                        (optional terminator)
//
// Values accept engineering suffixes (f, p, n, u, m, k, meg, g, t). Node
// "0" (or "gnd") is ground. Continuation lines starting with "+" extend
// the previous card.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	c := NewCircuit()
	var lines []string
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "*") {
			continue
		}
		if strings.HasPrefix(raw, "+") && len(lines) > 0 {
			lines[len(lines)-1] += " " + strings.TrimSpace(raw[1:])
			continue
		}
		lines = append(lines, raw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spice: reading netlist: %w", err)
	}
	for ln, raw := range lines {
		if err := parseCard(c, raw); err != nil {
			return nil, fmt.Errorf("spice: line %d (%q): %w", ln+1, raw, err)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if len(c.elems) == 0 {
		return nil, fmt.Errorf("spice: netlist has no elements")
	}
	return c, nil
}

func parseCard(c *Circuit, raw string) error {
	if i := strings.IndexAny(raw, ";"); i >= 0 {
		raw = raw[:i]
	}
	f := strings.Fields(raw)
	if len(f) == 0 {
		return nil
	}
	card := strings.ToUpper(f[0])
	if strings.HasPrefix(card, ".") {
		switch card {
		case ".END", ".ENDS":
			return nil
		default:
			return fmt.Errorf("unsupported directive %s", card)
		}
	}
	if len(f) < 4 {
		return fmt.Errorf("element card needs at least 4 fields")
	}
	name, a, b := f[0], f[1], f[2]
	rest := f[3:]
	switch card[0] {
	case 'R':
		v, err := ParseValue(rest[0])
		if err != nil {
			return err
		}
		c.R(name, a, b, v)
	case 'C':
		v, err := ParseValue(rest[0])
		if err != nil {
			return err
		}
		ic, err := parseIC(rest[1:])
		if err != nil {
			return err
		}
		c.C(name, a, b, v, ic)
	case 'L':
		v, err := ParseValue(rest[0])
		if err != nil {
			return err
		}
		ic, err := parseIC(rest[1:])
		if err != nil {
			return err
		}
		c.L(name, a, b, v, ic)
	case 'V', 'I':
		w, err := parseSource(rest)
		if err != nil {
			return err
		}
		if card[0] == 'V' {
			c.V(name, a, b, w)
		} else {
			c.I(name, a, b, w)
		}
	case 'E', 'G':
		// E/G <a> <b> <cp> <cn> <gain>
		if len(rest) < 3 {
			return fmt.Errorf("controlled source needs <cp> <cn> <gain>")
		}
		gain, err := ParseValue(rest[2])
		if err != nil {
			return err
		}
		if card[0] == 'E' {
			c.E(name, a, b, rest[0], rest[1], gain)
		} else {
			c.G(name, a, b, rest[0], rest[1], gain)
		}
	case 'S':
		if len(rest) < 3 {
			return fmt.Errorf("switch needs <ron> CLK|DUTY args")
		}
		ron, err := ParseValue(rest[0])
		if err != nil {
			return err
		}
		mode := strings.ToUpper(rest[1])
		switch mode {
		case "CLK":
			if len(rest) < 4 {
				return fmt.Errorf("CLK switch needs <fsw> <phase>")
			}
			fsw, err := ParseValue(rest[2])
			if err != nil {
				return err
			}
			ph, err := strconv.Atoi(rest[3])
			if err != nil || (ph != 1 && ph != 2) {
				return fmt.Errorf("CLK phase must be 1 or 2")
			}
			c.SW(name, a, b, ron, TwoPhaseClock(fsw, ph, 0.02))
		case "DUTY":
			if len(rest) < 4 {
				return fmt.Errorf("DUTY switch needs <fsw> <duty> [inv]")
			}
			fsw, err := ParseValue(rest[2])
			if err != nil {
				return err
			}
			duty, err := ParseValue(rest[3])
			if err != nil {
				return err
			}
			inv := len(rest) > 4 && strings.EqualFold(rest[4], "inv")
			c.SW(name, a, b, ron, DutyClock(fsw, duty, inv))
		default:
			return fmt.Errorf("unknown switch mode %q", rest[1])
		}
	default:
		return fmt.Errorf("unknown element type %q", card[:1])
	}
	return nil
}

func parseIC(fields []string) (float64, error) {
	for _, f := range fields {
		low := strings.ToLower(f)
		if strings.HasPrefix(low, "ic=") {
			return ParseValue(low[3:])
		}
	}
	return 0, nil
}

func parseSource(rest []string) (Waveform, error) {
	switch strings.ToUpper(rest[0]) {
	case "PULSE":
		if len(rest) < 5 {
			return nil, fmt.Errorf("PULSE needs <v0> <v1> <period> <duty>")
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := ParseValue(rest[1+i])
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return Pulse(vals[0], vals[1], vals[2], vals[3]), nil
	case "PWL":
		pts := rest[1:]
		if len(pts) < 4 || len(pts)%2 != 0 {
			return nil, fmt.Errorf("PWL needs an even number (>= 4) of time/value fields")
		}
		var ts, vs []float64
		for i := 0; i < len(pts); i += 2 {
			tv, err := ParseValue(pts[i])
			if err != nil {
				return nil, err
			}
			vv, err := ParseValue(pts[i+1])
			if err != nil {
				return nil, err
			}
			if len(ts) > 0 && tv <= ts[len(ts)-1] {
				return nil, fmt.Errorf("PWL times must be increasing")
			}
			ts = append(ts, tv)
			vs = append(vs, vv)
		}
		return PWL(ts, vs), nil
	default:
		v, err := ParseValue(rest[0])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	}
}

// ParseValue parses a SPICE-style number with an optional engineering
// suffix: f p n u m k meg g t (case-insensitive). Trailing unit letters
// after the suffix are ignored ("10nF", "3.3k", "2meg").
func ParseValue(s string) (float64, error) {
	low := strings.ToLower(strings.TrimSpace(s))
	if low == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Split mantissa from suffix.
	end := len(low)
	for i, r := range low {
		if (r >= '0' && r <= '9') || r == '.' || r == '+' || r == '-' {
			continue
		}
		if (r == 'e') && i > 0 && i+1 < len(low) {
			// scientific notation exponent: consume sign/digits after it
			rest := low[i+1:]
			if len(rest) > 0 && (rest[0] == '+' || rest[0] == '-' || (rest[0] >= '0' && rest[0] <= '9')) {
				continue
			}
		}
		end = i
		break
	}
	mant := low[:end]
	suffix := low[end:]
	v, err := strconv.ParseFloat(mant, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	mult := 1.0
	switch {
	case suffix == "":
		mult = 1
	case strings.HasPrefix(suffix, "meg"):
		mult = 1e6
	case strings.HasPrefix(suffix, "f"):
		mult = 1e-15
	case strings.HasPrefix(suffix, "p"):
		mult = 1e-12
	case strings.HasPrefix(suffix, "n"):
		mult = 1e-9
	case strings.HasPrefix(suffix, "u"):
		mult = 1e-6
	case strings.HasPrefix(suffix, "m"):
		mult = 1e-3
	case strings.HasPrefix(suffix, "k"):
		mult = 1e3
	case strings.HasPrefix(suffix, "g"):
		mult = 1e9
	case strings.HasPrefix(suffix, "t"):
		mult = 1e12
	default:
		return 0, fmt.Errorf("unknown suffix %q in %q", suffix, s)
	}
	out := v * mult
	if math.IsInf(out, 0) || math.IsNaN(out) {
		return 0, fmt.Errorf("value %q out of range", s)
	}
	return out, nil
}
