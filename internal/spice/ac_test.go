package spice

import (
	"math"
	"testing"

	"ivory/internal/pdn"
)

func TestACVoltageDividerFlat(t *testing.T) {
	c := NewCircuit()
	c.V("vac", "a", "0", DC(0))
	c.R("r1", "a", "b", 1000)
	c.R("r2", "b", "0", 1000)
	res, err := c.AC([]float64{10, 1e3, 1e6}, "vac")
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Freqs {
		if math.Abs(res.Mag("b", k)-0.5) > 1e-9 {
			t.Errorf("f=%v: divider = %v, want 0.5", res.Freqs[k], res.Mag("b", k))
		}
	}
}

func TestACRCLowPassCorner(t *testing.T) {
	// RC low pass: -3 dB at f = 1/(2*pi*RC); magnitude 1/sqrt(2).
	r, cap := 1e3, 1e-9
	fc := 1 / (2 * math.Pi * r * cap)
	c := NewCircuit()
	c.V("vac", "a", "0", DC(0))
	c.R("r1", "a", "b", r)
	c.C("c1", "b", "0", cap, 0)
	res, err := c.AC([]float64{fc / 100, fc, fc * 100}, "vac")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mag("b", 0)-1) > 1e-3 {
		t.Errorf("passband gain %v", res.Mag("b", 0))
	}
	if math.Abs(res.Mag("b", 1)-1/math.Sqrt2) > 1e-3 {
		t.Errorf("corner gain %v, want %v", res.Mag("b", 1), 1/math.Sqrt2)
	}
	if res.Mag("b", 2) > 0.02 {
		t.Errorf("stopband gain %v", res.Mag("b", 2))
	}
	// Phase at the corner is -45 degrees.
	if math.Abs(res.PhaseDeg("b", 1)+45) > 0.5 {
		t.Errorf("corner phase %v, want -45", res.PhaseDeg("b", 1))
	}
}

func TestACSeriesResonance(t *testing.T) {
	// Series RLC driven by current: node impedance dips to R at resonance.
	r, l, cap := 2.0, 1e-6, 1e-9
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*cap))
	c := NewCircuit()
	c.I("iac", "a", "0", DC(0))
	c.R("r1", "a", "b", r)
	c.L("l1", "b", "c", l, 0)
	c.C("c1", "c", "0", cap, 0)
	res, err := c.AC([]float64{f0 / 10, f0, f0 * 10}, "iac")
	if err != nil {
		t.Fatal(err)
	}
	zRes := res.Mag("a", 1)
	if math.Abs(zRes-r) > 0.05*r {
		t.Errorf("resonant impedance %v, want ~%v", zRes, r)
	}
	if res.Mag("a", 0) < 5*r || res.Mag("a", 2) < 5*r {
		t.Errorf("off-resonance impedance should be much larger: %v, %v",
			res.Mag("a", 0), res.Mag("a", 2))
	}
}

// Cross-validation: the analytic PDN ladder impedance must match the AC
// analysis of the equivalent netlist across six decades.
func TestACMatchesPDNImpedance(t *testing.T) {
	net, err := pdn.TypicalOffChip(80e-9, 1.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCircuit()
	// Build the ladder: source node shorted to ground (ideal source), load
	// node driven with a 1 A AC current source.
	prev := "0"
	for i, s := range net.Stages() {
		node := nodeName(i)
		c.R(nodeName(i)+"_r", prev, node+"_l", s.R)
		c.L(nodeName(i)+"_ind", node+"_l", node, s.L, 0)
		if s.ESR > 0 {
			c.R(node+"_esr", node, node+"_c", s.ESR)
			c.C(node+"_cap", node+"_c", "0", s.C, 0)
		} else {
			c.C(node+"_cap", node, "0", s.C, 0)
		}
		prev = node
	}
	c.I("iac", prev, "0", DC(0))

	var freqs []float64
	for d := 3.0; d <= 9; d += 0.25 {
		freqs = append(freqs, math.Pow(10, d))
	}
	res, err := c.AC(freqs, "iac")
	if err != nil {
		t.Fatal(err)
	}
	for k, f := range freqs {
		zSpice := res.Mag(prev, k)
		zModel := net.ImpedanceMagnitude(f)
		if rel := math.Abs(zSpice-zModel) / math.Max(zModel, 1e-9); rel > 0.02 {
			t.Errorf("f=%.3g Hz: spice %v vs analytic %v (%.1f%% off)",
				f, zSpice, zModel, rel*100)
		}
	}
}

func nodeName(i int) string {
	return string(rune('p'+i)) + "n"
}

func TestACValidation(t *testing.T) {
	c := NewCircuit()
	c.V("v1", "a", "0", DC(1))
	c.R("r1", "a", "0", 10)
	if _, err := c.AC(nil, "v1"); err == nil {
		t.Error("empty frequency list must fail")
	}
	if _, err := c.AC([]float64{1e3}, "nope"); err == nil {
		t.Error("unknown AC source must fail")
	}
}

func TestACSwitchStateFrozen(t *testing.T) {
	// A switch closed at t=0 conducts in AC analysis.
	c := NewCircuit()
	c.V("vac", "a", "0", DC(0))
	c.SW("s1", "a", "b", 1, func(t float64) bool { return true })
	c.R("r1", "b", "0", 999)
	res, err := c.AC([]float64{1e3}, "vac")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mag("b", 0)-0.999) > 1e-6 {
		t.Errorf("closed switch divider = %v", res.Mag("b", 0))
	}
	// And an open one blocks.
	c2 := NewCircuit()
	c2.V("vac", "a", "0", DC(0))
	c2.SW("s1", "a", "b", 1, func(t float64) bool { return false })
	c2.R("r1", "b", "0", 999)
	res2, err := c2.AC([]float64{1e3}, "vac")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mag("b", 0) > 1e-6 {
		t.Errorf("open switch leaked %v", res2.Mag("b", 0))
	}
}
