package spice

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ACResult holds a small-signal frequency sweep: per frequency, the complex
// node voltages in response to unit-amplitude excitation of the circuit's
// AC sources.
type ACResult struct {
	// Freqs are the analysis frequencies (Hz).
	Freqs []float64
	// V maps node name -> complex response per frequency.
	V map[string][]complex128
}

// Mag returns |V(node)| at sweep index k (0 for unknown nodes).
func (r *ACResult) Mag(node string, k int) float64 {
	w, ok := r.V[node]
	if !ok {
		return 0
	}
	return cmplx.Abs(w[k])
}

// PhaseDeg returns the phase of V(node) at sweep index k in degrees.
func (r *ACResult) PhaseDeg(node string, k int) float64 {
	w, ok := r.V[node]
	if !ok {
		return 0
	}
	return cmplx.Phase(w[k]) * 180 / math.Pi
}

// AC performs linear small-signal analysis across the given frequencies.
// Every V source contributes its DC value as a *unit* AC magnitude is not
// assumed: instead, acMag selects the source by name and drives it with
// amplitude 1 (all other independent sources are zeroed), which is the
// SPICE ".ac" convention. Switches are frozen in the state their control
// reports at t = 0. Capacitors and inductors stamp their complex
// admittances directly, so the result is exact at each frequency (no time
// stepping).
//
// The typical use is impedance extraction: drive a 1 A AC current source
// into a node and read that node's voltage — it *is* Z(jω).
func (c *Circuit) AC(freqs []float64, acSource string) (*ACResult, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("spice: AC needs at least one frequency")
	}
	found := false
	for _, e := range c.elems {
		if (e.kind == kindV || e.kind == kindI) && e.name == acSource {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("spice: AC source %q not found", acSource)
	}
	n := len(c.nodeName)
	nb := 0
	for _, e := range c.elems {
		if e.kind == kindV || e.kind == kindVCVS {
			e.branch = n + nb
			nb++
		}
	}
	dim := n + nb
	if dim == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}
	res := &ACResult{Freqs: append([]float64(nil), freqs...), V: map[string][]complex128{}}
	for _, name := range c.nodeName {
		res.V[name] = make([]complex128, len(freqs))
	}
	// Dense complex solve per frequency: small circuits, exactness over
	// speed.
	for fi, f := range freqs {
		omega := 2 * math.Pi * f
		m := make([]complex128, dim*dim)
		rhs := make([]complex128, dim)
		stamp := func(a, b int, y complex128) {
			if a >= 0 {
				m[a*dim+a] += y
			}
			if b >= 0 {
				m[b*dim+b] += y
			}
			if a >= 0 && b >= 0 {
				m[a*dim+b] -= y
				m[b*dim+a] -= y
			}
		}
		for _, e := range c.elems {
			switch e.kind {
			case kindR:
				stamp(e.a, e.b, complex(1/e.value, 0))
			case kindC:
				stamp(e.a, e.b, complex(0, omega*e.value))
			case kindL:
				if omega == 0 {
					stamp(e.a, e.b, complex(1e9, 0)) // DC short
				} else {
					stamp(e.a, e.b, complex(0, -1/(omega*e.value)))
				}
			case kindSW:
				r := e.roff
				if e.ctrl(0) {
					r = e.ron
				}
				stamp(e.a, e.b, complex(1/r, 0))
			case kindV:
				if e.a >= 0 {
					m[e.a*dim+e.branch] += 1
					m[e.branch*dim+e.a] += 1
				}
				if e.b >= 0 {
					m[e.b*dim+e.branch] -= 1
					m[e.branch*dim+e.b] -= 1
				}
				if e.name == acSource {
					rhs[e.branch] = 1
				}
			case kindVCVS:
				if e.a >= 0 {
					m[e.a*dim+e.branch] += 1
					m[e.branch*dim+e.a] += 1
				}
				if e.b >= 0 {
					m[e.b*dim+e.branch] -= 1
					m[e.branch*dim+e.b] -= 1
				}
				if e.cp >= 0 {
					m[e.branch*dim+e.cp] -= complex(e.gain, 0)
				}
				if e.cn >= 0 {
					m[e.branch*dim+e.cn] += complex(e.gain, 0)
				}
			case kindVCCS:
				g := complex(e.gain, 0)
				addAt := func(row, col int, v complex128) {
					if row >= 0 && col >= 0 {
						m[row*dim+col] += v
					}
				}
				addAt(e.a, e.cp, g)
				addAt(e.a, e.cn, -g)
				addAt(e.b, e.cp, -g)
				addAt(e.b, e.cn, g)
			case kindI:
				if e.name == acSource {
					// Unit AC current driven from b into a (so that the
					// read voltage at a is +Z for a grounded b).
					if e.a >= 0 {
						rhs[e.a] += 1
					}
					if e.b >= 0 {
						rhs[e.b] -= 1
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			m[i*dim+i] += 1e-12
		}
		x, err := solveComplex(m, rhs, dim)
		if err != nil {
			return nil, fmt.Errorf("spice: AC solve failed at %g Hz: %w", f, err)
		}
		for i, name := range c.nodeName {
			res.V[name][fi] = x[i]
		}
	}
	return res, nil
}

// solveComplex is dense complex Gaussian elimination with partial pivoting.
func solveComplex(m []complex128, b []complex128, n int) ([]complex128, error) {
	a := make([]complex128, len(m))
	copy(a, m)
	x := make([]complex128, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		p, mx := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := cmplx.Abs(a[i*n+k]); ab > mx {
				p, mx = i, ab
			}
		}
		if mx < 1e-300 {
			return nil, fmt.Errorf("singular complex matrix")
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[p*n+j], a[k*n+j] = a[k*n+j], a[p*n+j]
			}
			x[p], x[k] = x[k], x[p]
		}
		piv := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / piv
			if l == 0 {
				continue
			}
			a[i*n+k] = 0
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
			x[i] -= l * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s / a[i*n+i]
	}
	return x, nil
}
