package spice

import (
	"fmt"
	"math"
	"math/cmplx"

	"ivory/internal/numeric"
)

// ACResult holds a small-signal frequency sweep: per frequency, the complex
// node voltages in response to unit-amplitude excitation of the circuit's
// AC sources.
type ACResult struct {
	// Freqs are the analysis frequencies (Hz).
	Freqs []float64
	// V maps node name -> complex response per frequency.
	V map[string][]complex128
}

// Mag returns |V(node)| at sweep index k (0 for unknown nodes).
func (r *ACResult) Mag(node string, k int) float64 {
	w, ok := r.V[node]
	if !ok {
		return 0
	}
	return cmplx.Abs(w[k])
}

// PhaseDeg returns the phase of V(node) at sweep index k in degrees.
func (r *ACResult) PhaseDeg(node string, k int) float64 {
	w, ok := r.V[node]
	if !ok {
		return 0
	}
	return cmplx.Phase(w[k]) * 180 / math.Pi
}

// AC performs linear small-signal analysis across the given frequencies.
// Every V source contributes its DC value as a *unit* AC magnitude is not
// assumed: instead, acMag selects the source by name and drives it with
// amplitude 1 (all other independent sources are zeroed), which is the
// SPICE ".ac" convention. Switches are frozen in the state their control
// reports at t = 0. Capacitors and inductors stamp their complex
// admittances directly, so the result is exact at each frequency (no time
// stepping).
//
// The typical use is impedance extraction: drive a 1 A AC current source
// into a node and read that node's voltage — it *is* Z(jω).
func (c *Circuit) AC(freqs []float64, acSource string) (*ACResult, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("spice: AC needs at least one frequency")
	}
	found := false
	for _, e := range c.elems {
		if (e.kind == kindV || e.kind == kindI) && e.name == acSource {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("spice: AC source %q not found", acSource)
	}
	n := len(c.nodeName)
	nb := 0
	for _, e := range c.elems {
		if e.kind == kindV || e.kind == kindVCVS {
			e.branch = n + nb
			nb++
		}
	}
	dim := n + nb
	if dim == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}
	res := &ACResult{Freqs: append([]float64(nil), freqs...), V: map[string][]complex128{}}
	cols := make([][]complex128, n)
	for i, name := range c.nodeName {
		cols[i] = make([]complex128, len(freqs))
		res.V[name] = cols[i]
	}

	// The sweep shares one sparsity pattern: only the C/L admittance
	// values move with frequency. Assemble the frequency-invariant stamps
	// (R, frozen switches, source incidence, controlled sources, Gmin, and
	// the excitation vector) once into a base matrix, then per frequency
	// restamp the reactive admittances on a copy and renumerate the one
	// complex factorization — the pattern is analyzed at the first point
	// and only the numeric sweep runs thereafter (numeric.ComplexLU).
	base := make([]complex128, dim*dim)
	rhs := make([]complex128, dim)
	stampY := func(m []complex128, a, b int, y complex128) {
		if a >= 0 {
			m[a*dim+a] += y
		}
		if b >= 0 {
			m[b*dim+b] += y
		}
		if a >= 0 && b >= 0 {
			m[a*dim+b] -= y
			m[b*dim+a] -= y
		}
	}
	// Reactive stamp plan: node pairs and values of the elements restamped
	// per frequency.
	type reactive struct {
		a, b int
		val  float64 // capacitance (F) or inductance (H)
		isL  bool
	}
	var reactives []reactive
	for _, e := range c.elems {
		switch e.kind {
		case kindR:
			stampY(base, e.a, e.b, complex(1/e.value, 0))
		case kindC:
			reactives = append(reactives, reactive{a: e.a, b: e.b, val: e.value})
		case kindL:
			reactives = append(reactives, reactive{a: e.a, b: e.b, val: e.value, isL: true})
		case kindSW:
			r := e.roff
			if e.ctrl(0) {
				r = e.ron
			}
			stampY(base, e.a, e.b, complex(1/r, 0))
		case kindV:
			if e.a >= 0 {
				base[e.a*dim+e.branch] += 1
				base[e.branch*dim+e.a] += 1
			}
			if e.b >= 0 {
				base[e.b*dim+e.branch] -= 1
				base[e.branch*dim+e.b] -= 1
			}
			if e.name == acSource {
				rhs[e.branch] = 1
			}
		case kindVCVS:
			if e.a >= 0 {
				base[e.a*dim+e.branch] += 1
				base[e.branch*dim+e.a] += 1
			}
			if e.b >= 0 {
				base[e.b*dim+e.branch] -= 1
				base[e.branch*dim+e.b] -= 1
			}
			if e.cp >= 0 {
				base[e.branch*dim+e.cp] -= complex(e.gain, 0)
			}
			if e.cn >= 0 {
				base[e.branch*dim+e.cn] += complex(e.gain, 0)
			}
		case kindVCCS:
			g := complex(e.gain, 0)
			addAt := func(row, col int, v complex128) {
				if row >= 0 && col >= 0 {
					base[row*dim+col] += v
				}
			}
			addAt(e.a, e.cp, g)
			addAt(e.a, e.cn, -g)
			addAt(e.b, e.cp, -g)
			addAt(e.b, e.cn, g)
		case kindI:
			if e.name == acSource {
				// Unit AC current driven from b into a (so that the
				// read voltage at a is +Z for a grounded b).
				if e.a >= 0 {
					rhs[e.a] += 1
				}
				if e.b >= 0 {
					rhs[e.b] -= 1
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		base[i*dim+i] += 1e-12
	}

	m := make([]complex128, dim*dim)
	x := make([]complex128, dim)
	var lu *numeric.ComplexLU
	for fi, f := range freqs {
		omega := 2 * math.Pi * f
		copy(m, base)
		for _, r := range reactives {
			switch {
			case !r.isL:
				stampY(m, r.a, r.b, complex(0, omega*r.val))
			case omega == 0:
				stampY(m, r.a, r.b, complex(1e9, 0)) // DC short
			default:
				stampY(m, r.a, r.b, complex(0, -1/(omega*r.val)))
			}
		}
		var err error
		if lu == nil {
			lu, err = numeric.NewComplexLU(m, dim)
		} else {
			err = lu.Refactor(m)
		}
		if err != nil {
			return nil, fmt.Errorf("spice: AC solve failed at %g Hz: %w", f, err)
		}
		lu.SolveInto(x, rhs)
		for i := range cols {
			cols[i][fi] = x[i]
		}
	}
	return res, nil
}
