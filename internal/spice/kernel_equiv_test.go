package spice

// Equivalence suite for the structure-aware kernel overhaul: the
// production Tran/AC paths (symbolic-once sparse LU, switch-bitmask state
// cache, allocation-free stepping) must reproduce the dense reference
// implementations in denseref_test.go within 1e-9 relative tolerance on
// every committed netlist family, including the switch-toggle and
// singular-matrix paths.

import (
	"math"
	"math/cmplx"
	"testing"
)

const equivTol = 1e-9

func buildBuckT(t *testing.T) *Circuit {
	t.Helper()
	c, err := BuildBuck(BuckOptions{
		VIn: 3.3, Duty: 0.4, FSw: 20e6,
		L: 100e-9, RL: 0.05, COut: 1e-6,
		RHigh: 0.05, RLow: 0.05,
		ILoad: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// compareTran checks two transient results for step-count identity and
// waveform agreement within the relative tolerance (normalized per
// waveform by its reference peak).
func compareTran(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Steps != want.Steps || len(got.Times) != len(want.Times) {
		t.Fatalf("shape mismatch: %d/%d steps, %d/%d samples",
			got.Steps, want.Steps, len(got.Times), len(want.Times))
	}
	if got.Refactorizations != want.Refactorizations {
		t.Errorf("refactorizations %d, reference %d", got.Refactorizations, want.Refactorizations)
	}
	for k := range got.Times {
		//lint:ignore floatcmp both paths compute t = k*h identically; the time axis must match exactly
		if got.Times[k] != want.Times[k] {
			t.Fatalf("time axis diverged at %d: %v vs %v", k, got.Times[k], want.Times[k])
		}
	}
	check := func(kind, name string, g, w []float64) {
		if len(g) != len(w) {
			t.Fatalf("%s %q length %d vs %d", kind, name, len(g), len(w))
		}
		scale := 0.0
		for _, v := range w {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		for k := range g {
			if math.Abs(g[k]-w[k]) > equivTol*scale {
				t.Fatalf("%s %q diverged at sample %d: %v vs %v (tol %g rel)",
					kind, name, k, g[k], w[k], equivTol)
			}
		}
	}
	for name, w := range want.V {
		check("node", name, got.V[name], w)
	}
	for name, w := range want.SourceI {
		check("source", name, got.SourceI[name], w)
	}
}

func TestTranEquivalenceBuck(t *testing.T) {
	fsw := 20e6
	h, T := 1/(fsw*64), 40/fsw
	want, err := tranDenseRef(buildBuckT(t), h, T)
	if err != nil {
		t.Fatal(err)
	}
	got, err := buildBuckT(t).Tran(h, T)
	if err != nil {
		t.Fatal(err)
	}
	compareTran(t, got, want)
	// Synchronous buck: exactly the high-side-on and low-side-on states.
	if got.Refactorizations != 2 {
		t.Errorf("buck factorized %d states, want 2", got.Refactorizations)
	}
}

func TestTranEquivalenceSC21(t *testing.T) {
	vin, fsw, iload := 2.0, 50e6, 0.2
	h, T := 1/(fsw*64), 40/fsw
	ref, _ := buildSC21(t, 10e-9, 100.0, vin, fsw, iload)
	want, err := tranDenseRef(ref, h, T)
	if err != nil {
		t.Fatal(err)
	}
	ckt, _ := buildSC21(t, 10e-9, 100.0, vin, fsw, iload)
	got, err := ckt.Tran(h, T)
	if err != nil {
		t.Fatal(err)
	}
	compareTran(t, got, want)
	// Two-phase clock with dead time: phase-1, phase-2, and all-open.
	if got.Refactorizations != 3 {
		t.Errorf("SC factorized %d states, want 3", got.Refactorizations)
	}
}

// An aperiodic toggle layered over a periodic clock walks through switch
// states that revisit the cache and force mid-run refactorizations.
func buildToggleCircuit() *Circuit {
	c := NewCircuit()
	c.V("vsrc", "vin", "0", DC(5))
	c.SW("s1", "vin", "mid", 0.1, DutyClock(10e6, 0.5, false))
	c.SW("s2", "mid", "out", 0.2, func(t float64) bool { return t > 2e-6 })
	c.R("r1", "mid", "0", 50)
	c.C("c1", "out", "0", 10e-9, 0)
	c.R("rload", "out", "0", 100)
	c.L("l1", "vin", "out", 1e-6, 0)
	return c
}

func TestTranEquivalenceSwitchToggle(t *testing.T) {
	h, T := 1e-9, 4e-6
	want, err := tranDenseRef(buildToggleCircuit(), h, T)
	if err != nil {
		t.Fatal(err)
	}
	got, err := buildToggleCircuit().Tran(h, T)
	if err != nil {
		t.Fatal(err)
	}
	compareTran(t, got, want)
	if got.Refactorizations != 4 {
		t.Errorf("toggle circuit factorized %d states, want 4", got.Refactorizations)
	}
}

// More than 64 switches spills the state bitmask into multiple words and
// the string-keyed wide cache; results must be unchanged.
func TestTranEquivalenceWideSwitchMask(t *testing.T) {
	build := func() *Circuit {
		c := NewCircuit()
		c.V("vsrc", "vin", "0", DC(3))
		for i := 0; i < 66; i++ {
			c.SW(nameOf("spar", i), "vin", "mid", 40, func(float64) bool { return true })
		}
		for i := 0; i < 4; i++ {
			c.SW(nameOf("sclk", i), "mid", "out", 2, DutyClock(5e6, 0.5, i%2 == 1))
		}
		c.C("c1", "out", "0", 5e-9, 0)
		c.R("rload", "out", "0", 20)
		return c
	}
	h, T := 2e-9, 2e-6
	want, err := tranDenseRef(build(), h, T)
	if err != nil {
		t.Fatal(err)
	}
	got, err := build().Tran(h, T)
	if err != nil {
		t.Fatal(err)
	}
	compareTran(t, got, want)
}

func nameOf(prefix string, i int) string {
	return prefix + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// Two ideal voltage sources in parallel produce duplicate branch rows —
// the singular path must fail identically in both implementations.
func TestTranSingularMatrix(t *testing.T) {
	build := func() *Circuit {
		c := NewCircuit()
		c.V("v1", "a", "0", DC(1))
		c.V("v2", "a", "0", DC(2))
		c.R("r1", "a", "0", 10)
		c.C("c1", "a", "0", 1e-9, 0)
		return c
	}
	if _, err := build().Tran(1e-9, 1e-7); err == nil {
		t.Fatal("parallel voltage sources must be singular")
	}
	if _, err := tranDenseRef(build(), 1e-9, 1e-7); err == nil {
		t.Fatal("reference accepts the singular circuit the kernel rejects")
	}
}

func compareAC(t *testing.T, got, want *ACResult) {
	t.Helper()
	if len(got.Freqs) != len(want.Freqs) {
		t.Fatalf("frequency axis %d vs %d", len(got.Freqs), len(want.Freqs))
	}
	for name, w := range want.V {
		g := got.V[name]
		if len(g) != len(w) {
			t.Fatalf("node %q response length %d vs %d", name, len(g), len(w))
		}
		scale := 0.0
		for _, v := range w {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		for k := range g {
			if cmplx.Abs(g[k]-w[k]) > equivTol*scale {
				t.Fatalf("node %q diverged at frequency %g: %v vs %v",
					name, want.Freqs[k], g[k], w[k])
			}
		}
	}
}

func acSweepFreqs() []float64 {
	freqs := make([]float64, 120)
	for i := range freqs {
		freqs[i] = 1e3 * math.Pow(10, 6*float64(i)/float64(len(freqs)-1))
	}
	// Include the DC special case (inductors stamped as shorts).
	return append([]float64{0}, freqs...)
}

func TestACEquivalenceBuck(t *testing.T) {
	freqs := acSweepFreqs()
	want, err := acDenseRef(buildBuckT(t), freqs, "vsrc")
	if err != nil {
		t.Fatal(err)
	}
	got, err := buildBuckT(t).AC(freqs, "vsrc")
	if err != nil {
		t.Fatal(err)
	}
	compareAC(t, got, want)
}

func TestACEquivalenceSC21(t *testing.T) {
	freqs := acSweepFreqs()
	ckt, _ := buildSC21(t, 10e-9, 100.0, 2.0, 50e6, 0.2)
	want, err := acDenseRef(ckt, freqs, "vsrc")
	if err != nil {
		t.Fatal(err)
	}
	ckt2, _ := buildSC21(t, 10e-9, 100.0, 2.0, 50e6, 0.2)
	got, err := ckt2.AC(freqs, "vsrc")
	if err != nil {
		t.Fatal(err)
	}
	compareAC(t, got, want)
}

func TestACSingularMatrix(t *testing.T) {
	c := NewCircuit()
	c.V("v1", "a", "0", DC(1))
	c.V("v2", "a", "0", DC(2))
	c.C("c1", "a", "0", 1e-9, 0)
	if _, err := c.AC([]float64{1e3, 1e6}, "v1"); err == nil {
		t.Fatal("parallel voltage sources must be singular in AC")
	}
}

// The transient inner loop must be allocation-free: doubling the step
// count must not change the number of allocation events (only the sizes
// of the up-front waveform buffers).
func TestTranAllocsIndependentOfSteps(t *testing.T) {
	fsw := 20e6
	h := 1 / (fsw * 64)
	ckt := buildBuckT(t)
	run := func(cycles int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := ckt.Tran(h, float64(cycles)/fsw); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := run(10)
	long := run(40)
	if long-short > 4 {
		t.Fatalf("allocations scale with steps: %v at 10 cycles vs %v at 40 (inner loop allocates)", short, long)
	}
}
