package spice

import (
	"fmt"

	"ivory/internal/numeric"
)

// OPResult holds a DC operating point.
type OPResult struct {
	// V maps node name -> DC voltage.
	V map[string]float64
	// SourceI maps voltage-source name -> delivered DC current.
	SourceI map[string]float64
}

// OP computes the DC operating point: capacitors open, inductors short,
// switches frozen at their t = 0 state, sources at their t = 0 values.
// Inductor "shorts" are stamped as large conductances, capacitor "opens"
// as the solver's Gmin, which keeps the formulation identical to the
// transient stamps and the matrix well conditioned.
func (c *Circuit) OP() (*OPResult, error) {
	if c.err != nil {
		return nil, c.err
	}
	n := len(c.nodeName)
	nb := 0
	for _, e := range c.elems {
		if e.kind == kindV || e.kind == kindVCVS {
			e.branch = n + nb
			nb++
		}
	}
	dim := n + nb
	if dim == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}
	m := numeric.NewMatrix(dim, dim)
	rhs := make([]float64, dim)
	stamp := func(a, b int, g float64) {
		if a >= 0 {
			m.Add(a, a, g)
		}
		if b >= 0 {
			m.Add(b, b, g)
		}
		if a >= 0 && b >= 0 {
			m.Add(a, b, -g)
			m.Add(b, a, -g)
		}
	}
	addI := func(a, b int, i float64) {
		if a >= 0 {
			rhs[a] += i
		}
		if b >= 0 {
			rhs[b] -= i
		}
	}
	const gShort = 1e9
	for _, e := range c.elems {
		switch e.kind {
		case kindR:
			stamp(e.a, e.b, 1/e.value)
		case kindC:
			// open: nothing (Gmin below keeps nodes defined)
		case kindL:
			stamp(e.a, e.b, gShort)
		case kindSW:
			r := e.roff
			if e.ctrl(0) {
				r = e.ron
			}
			stamp(e.a, e.b, 1/r)
		case kindV:
			if e.a >= 0 {
				m.Add(e.a, e.branch, 1)
				m.Add(e.branch, e.a, 1)
			}
			if e.b >= 0 {
				m.Add(e.b, e.branch, -1)
				m.Add(e.branch, e.b, -1)
			}
			rhs[e.branch] = e.wave(0)
		case kindVCVS:
			if e.a >= 0 {
				m.Add(e.a, e.branch, 1)
				m.Add(e.branch, e.a, 1)
			}
			if e.b >= 0 {
				m.Add(e.b, e.branch, -1)
				m.Add(e.branch, e.b, -1)
			}
			if e.cp >= 0 {
				m.Add(e.branch, e.cp, -e.gain)
			}
			if e.cn >= 0 {
				m.Add(e.branch, e.cn, e.gain)
			}
		case kindVCCS:
			stampVCCS(m, e)
		case kindI:
			addI(e.a, e.b, -e.wave(0))
		}
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, 1e-12)
	}
	f, err := numeric.Factorize(m)
	if err != nil {
		return nil, fmt.Errorf("spice: singular DC matrix: %w", err)
	}
	x := f.Solve(rhs)
	res := &OPResult{V: map[string]float64{}, SourceI: map[string]float64{}}
	for i, name := range c.nodeName {
		res.V[name] = x[i]
	}
	for _, e := range c.elems {
		if e.kind == kindV {
			res.SourceI[e.name] = -x[e.branch]
		}
	}
	return res, nil
}
