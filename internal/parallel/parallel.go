// Package parallel holds the tiny fan-out helper shared by the design-space
// exploration engine and the grid placement heuristic. It exists so every
// hot loop parallelizes the same way: a bounded worker pool pulling indices
// off an atomic counter, with the caller responsible for writing results
// into per-index slots so merge order stays deterministic.
//
// ForContext adds the run-control contract on top: a panic inside any job
// is recovered, tagged with its job index, and re-raised exactly once on
// the caller's goroutine (a bare For/go panic would kill the process from
// an anonymous goroutine with no indication of which job died), and
// cancelling the context stops the dispatch of new jobs — in-flight jobs
// drain, then ctx.Err() is returned.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from a job so it can be re-raised on
// the caller's goroutine with the failing job identified. The original
// panic value and the panicking goroutine's stack are preserved.
type PanicError struct {
	// Index is the job index passed to the function that panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack trace, captured at the
	// recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v", e.Index, e.Value)
}

// For runs fn(i) for every i in [0, n), spread over min(workers, n)
// goroutines. workers <= 0 selects runtime.NumCPU(); workers == 1 runs the
// loop inline with no goroutines (the serial reference path). fn must be
// safe for concurrent invocation and must confine its writes to data owned
// by index i. A panic in fn surfaces on the caller's goroutine as a
// *PanicError (see ForContext).
func For(n, workers int, fn func(int)) {
	// context.Background() is never cancelled, so the error is always nil.
	_ = ForContext(context.Background(), n, workers, fn)
}

// ForContext is For with run control. Scheduling is identical to For —
// an atomic index counter feeding min(workers, n) goroutines, workers == 1
// running inline in ascending order — so results written to per-index
// slots stay bit-identical to the serial path for every worker count.
//
// Two behaviours are layered on top:
//
//   - Panic containment: a panic in any fn(i) is recovered and tagged with
//     its job index; remaining jobs are not dispatched, in-flight jobs
//     finish, and the first recovered panic is re-raised exactly once on
//     the caller's goroutine as a *PanicError.
//   - Cancellation: when ctx (nil selects context.Background()) is
//     cancelled, no new jobs are dispatched; after in-flight jobs drain,
//     ctx.Err() is returned. Jobs that already completed have fully
//     written their slots — the caller sees a clean prefix-of-work, never
//     a torn write.
func ForContext(ctx context.Context, n, workers int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	// The first recovered panic wins; later ones (other workers may fail
	// before they observe stop) are dropped so the caller fails exactly
	// once.
	var (
		panicOnce sync.Once
		recovered *PanicError
		stop      atomic.Bool
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					recovered = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
				})
				stop.Store(true)
			}
		}()
		fn(i)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			run(i)
			if stop.Load() {
				panic(recovered)
			}
		}
		// Mirror the pooled path: a cancellation that lands during the
		// final job still reports ctx.Err(), so both paths agree.
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	// wg.Wait is the happens-before edge that makes every worker's writes
	// (job slots, recovered) visible here.
	wg.Wait()
	if recovered != nil {
		panic(recovered)
	}
	return ctx.Err()
}
