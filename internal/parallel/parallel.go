// Package parallel holds the tiny fan-out helper shared by the design-space
// exploration engine and the grid placement heuristic. It exists so every
// hot loop parallelizes the same way: a bounded worker pool pulling indices
// off an atomic counter, with the caller responsible for writing results
// into per-index slots so merge order stays deterministic.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), spread over min(workers, n)
// goroutines. workers <= 0 selects runtime.NumCPU(); workers == 1 runs the
// loop inline with no goroutines (the serial reference path). fn must be
// safe for concurrent invocation and must confine its writes to data owned
// by index i.
func For(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
