package parallel

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is the long-lived counterpart of ForContext: a fixed set of worker
// goroutines draining a bounded job queue. ForContext serves one-shot
// fan-outs whose size is known up front; Pool serves streams — a daemon
// accepting requests over time — where the queue bound is the backpressure
// signal (a full queue means "tell the caller to retry", not "block the
// accept loop").
//
// The panic contract mirrors ForContext: a panic inside a job is recovered
// on the worker so one bad request cannot kill the process. Because a pool
// has no single caller to re-raise on, the recovered value goes to the
// OnPanic hook (as a *PanicError with the panicking goroutine's stack)
// instead; jobs that manage their own outcome should additionally recover
// internally to attribute the failure to their request.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	running atomic.Int64
	// seq numbers jobs in submission order for PanicError.Index.
	seq atomic.Int64
	// onPanic receives panics that escape a job. Set once at construction;
	// nil drops them after recovery (the worker survives either way).
	onPanic func(*PanicError)
}

// NewPool starts a pool of `workers` goroutines behind a queue holding up
// to `depth` pending jobs. workers <= 0 selects runtime.NumCPU(); depth < 0
// is treated as 0 (submissions succeed only when a worker is idle to take
// the handoff). onPanic, when non-nil, is called (serially per panicking
// job, possibly concurrently across workers) with any panic recovered from
// a job.
func NewPool(workers, depth int, onPanic func(*PanicError)) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{jobs: make(chan func(), depth), onPanic: onPanic}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		p.running.Add(1)
		p.runOne(job)
		p.running.Add(-1)
	}
}

// runOne isolates the recover so a panic unwinds only the job, not the
// worker loop.
func (p *Pool) runOne(job func()) {
	idx := int(p.seq.Add(1)) - 1
	defer func() {
		if r := recover(); r != nil {
			if p.onPanic != nil {
				p.onPanic(&PanicError{Index: idx, Value: r, Stack: debug.Stack()})
			}
		}
	}()
	job()
}

// TrySubmit enqueues the job without blocking. It returns false when the
// queue is full or the pool is closed — the caller's cue to shed load
// (HTTP 429) rather than queue unboundedly.
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- job:
		return true
	default:
		return false
	}
}

// Depth reports the number of queued (accepted but not yet started) jobs.
func (p *Pool) Depth() int { return len(p.jobs) }

// Running reports the number of jobs currently executing on workers.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Close stops admission, drains every queued job, and waits for in-flight
// jobs to finish. It is idempotent and safe to call concurrently with
// TrySubmit (late submissions simply return false).
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
