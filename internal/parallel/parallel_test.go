package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSerialIsInOrder(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial path visited %v, want ascending order", order)
		}
	}
}

// TestForContextCoversAllIndices checks the uncancelled path is identical
// to For: every index visited exactly once, nil error.
func TestForContextCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 500
		hits := make([]atomic.Int32, n)
		if err := ForContext(context.Background(), n, workers, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

// TestForContextNilContext checks nil selects the background context.
func TestForContextNilContext(t *testing.T) {
	var ran atomic.Int32
	if err := ForContext(nil, 3, 2, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("nil ctx ran %d of 3 jobs", ran.Load())
	}
}

// TestForContextPanicSurfacesIndex checks the panic-containment contract:
// a panic in one job is re-raised exactly once on the caller's goroutine as
// a *PanicError carrying the job index, for both the inline and pooled
// paths, and jobs already in flight still drain.
func TestForContextPanicSurfacesIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var completed atomic.Int32
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate to the caller", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if pe.Index != 7 {
					t.Fatalf("workers=%d: panic tagged with job %d, want 7", workers, pe.Index)
				}
				if pe.Value != "boom" {
					t.Fatalf("workers=%d: panic value %v, want boom", workers, pe.Value)
				}
				if !strings.Contains(pe.Error(), "job 7") {
					t.Fatalf("workers=%d: error %q does not name the job", workers, pe.Error())
				}
				if len(pe.Stack) == 0 {
					t.Fatalf("workers=%d: no stack captured", workers)
				}
			}()
			// The call panics before returning, so there is no error to check.
			_ = ForContext(context.Background(), 64, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
				completed.Add(1)
			})
			t.Fatalf("workers=%d: ForContext returned instead of panicking", workers)
		}()
		if workers == 1 && completed.Load() != 7 {
			t.Fatalf("serial path ran %d jobs before the panic, want 7", completed.Load())
		}
	}
}

// TestForContextPanicFailsExactlyOnce checks that with several panicking
// jobs only one panic reaches the caller.
func TestForContextPanicFailsExactlyOnce(t *testing.T) {
	panics := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				panics++
				if _, ok := r.(*PanicError); !ok {
					t.Fatalf("recovered %T, want *PanicError", r)
				}
			}
		}()
		// Panics before returning; no error to check.
		_ = ForContext(context.Background(), 256, 8, func(i int) { panic(i) })
	}()
	if panics != 1 {
		t.Fatalf("caller saw %d panics, want exactly 1", panics)
	}
}

// TestForContextCancelStopsDispatch checks that cancelling mid-run stops
// new jobs promptly, drains in-flight jobs, and returns ctx.Err().
func TestForContextCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 100000
	var started atomic.Int32
	err := ForContext(ctx, n, 4, func(i int) {
		if started.Add(1) == 8 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// In-flight jobs drain, so a few over the trigger count is fine; the
	// full space must not have been swept.
	if got := started.Load(); got >= n {
		t.Fatalf("cancellation did not stop dispatch: %d of %d jobs ran", got, n)
	}
}

// TestForContextPreCancelled checks an already-cancelled context runs
// nothing.
func TestForContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForContext(ctx, 50, workers, func(int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d jobs ran under a pre-cancelled context", workers, ran.Load())
		}
	}
}

// TestForContextDeadline checks timeout-style cancellation surfaces as
// context.DeadlineExceeded.
func TestForContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := ForContext(ctx, 1<<30, 2, func(int) { time.Sleep(10 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
