package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSerialIsInOrder(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial path visited %v, want ascending order", order)
		}
	}
}
