package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryAcceptedJob(t *testing.T) {
	p := NewPool(4, 64, nil)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatalf("submit %d rejected with a deep queue", i)
		}
	}
	p.Close()
	if got := n.Load(); got != 50 {
		t.Fatalf("ran %d of 50 jobs", got)
	}
}

func TestPoolBackpressureWhenFull(t *testing.T) {
	p := NewPool(1, 1, nil)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first submit rejected")
	}
	<-started // worker busy
	if !p.TrySubmit(func() {}) {
		t.Fatal("queue slot submit rejected")
	}
	// Worker occupied and the single queue slot taken: the next submit
	// must shed, not block.
	if p.TrySubmit(func() {}) {
		t.Fatal("overfull submit accepted")
	}
	if d := p.Depth(); d != 1 {
		t.Fatalf("Depth = %d, want 1", d)
	}
	close(block)
}

func TestPoolCloseDrainsQueuedJobs(t *testing.T) {
	p := NewPool(2, 16, nil)
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		if !p.TrySubmit(func() { time.Sleep(time.Millisecond); n.Add(1) }) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	p.Close()
	if got := n.Load(); got != 10 {
		t.Fatalf("Close drained %d of 10 jobs", got)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit after Close accepted")
	}
	p.Close() // idempotent
}

func TestPoolPanicContainment(t *testing.T) {
	var mu sync.Mutex
	var caught []*PanicError
	p := NewPool(2, 16, func(pe *PanicError) {
		mu.Lock()
		caught = append(caught, pe)
		mu.Unlock()
	})
	var ok atomic.Int64
	if !p.TrySubmit(func() { panic("boom") }) {
		t.Fatal("submit rejected")
	}
	// The worker that recovered the panic must keep serving jobs.
	for i := 0; i < 8; i++ {
		if !p.TrySubmit(func() { ok.Add(1) }) {
			t.Fatalf("post-panic submit %d rejected", i)
		}
	}
	p.Close()
	if got := ok.Load(); got != 8 {
		t.Fatalf("%d of 8 jobs ran after the panic", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(caught) != 1 {
		t.Fatalf("caught %d panics, want 1", len(caught))
	}
	if caught[0].Value != "boom" || len(caught[0].Stack) == 0 {
		t.Fatalf("panic not preserved: %+v", caught[0])
	}
}
