// Package ldo implements Ivory's model of digital low-dropout linear
// regulators. Following recent design trends the paper cites, the feedback
// path is a clocked digital comparator/controller rather than an analog Gm
// amplifier, which makes transient response a function of the sampling
// frequency. A linear regulator's efficiency is intrinsically bounded by
// the conversion ratio: η = η_I · V_out/V_in, where the current efficiency
// η_I (≈99 % in state-of-the-art designs at moderate load) accounts for
// quiescent and bias currents.
package ldo

import (
	"fmt"

	"ivory/internal/ivr"
	"ivory/internal/tech"
)

// Config parameterizes a digital LDO design point.
type Config struct {
	// Node is the technology node.
	Node *tech.Node
	// VIn and VOut are the input voltage and regulation target (V).
	VIn, VOut float64
	// GPass is the fully-on conductance of the pass device array (S); it
	// bounds the dropout the regulator can sustain at full load.
	GPass float64
	// COut is the output capacitance (F).
	COut float64
	// FSample is the digital feedback sampling frequency (Hz).
	FSample float64
	// CurrentEfficiency is η_I; zero selects the default 0.99.
	CurrentEfficiency float64
	// Interleave splits the pass array into independently clocked segments
	// (phase-spread update), reducing the limit-cycle ripple; defaults to 1.
	Interleave int
}

// Design is a validated LDO.
type Design struct {
	cfg   Config
	dev   tech.SwitchDevice
	stack int
	width float64
}

const (
	defaultEtaI = 0.99
	routingTax  = 1.10
	ctrlGates   = 1200
	ctrlStaticW = 40e-6
)

// New validates the configuration and sizes the pass device.
func New(cfg Config) (*Design, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("ldo: Config.Node is required")
	}
	if cfg.VIn <= 0 || cfg.VOut <= 0 {
		return nil, fmt.Errorf("ldo: voltages must be positive")
	}
	if cfg.VOut >= cfg.VIn {
		return nil, ivr.Infeasible("ldo", "VOut %.3g V must be below VIn %.3g V", cfg.VOut, cfg.VIn)
	}
	if cfg.GPass <= 0 || cfg.COut <= 0 || cfg.FSample <= 0 {
		return nil, fmt.Errorf("ldo: GPass, COut, and FSample must be positive")
	}
	if cfg.CurrentEfficiency == 0 {
		cfg.CurrentEfficiency = defaultEtaI
	}
	if cfg.CurrentEfficiency <= 0 || cfg.CurrentEfficiency > 1 {
		return nil, fmt.Errorf("ldo: current efficiency %g outside (0, 1]", cfg.CurrentEfficiency)
	}
	if cfg.Interleave == 0 {
		cfg.Interleave = 1
	}
	if cfg.Interleave < 1 {
		return nil, fmt.Errorf("ldo: interleave %d must be >= 1", cfg.Interleave)
	}
	// The pass device must survive VIn on its drain when the output is
	// discharged.
	dev, stack, err := cfg.Node.SwitchForVoltage(cfg.VIn)
	if err != nil {
		return nil, err
	}
	d := &Design{cfg: cfg, dev: dev, stack: stack}
	d.width = float64(stack) * dev.ROnWidth * cfg.GPass
	return d, nil
}

// Config returns the (defaulted) configuration.
func (d *Design) Config() Config { return d.cfg }

// MaxCurrent returns the largest load the regulator can pass while holding
// the target output: the dropout limit (VIn-VOut)·GPass.
func (d *Design) MaxCurrent() float64 {
	return (d.cfg.VIn - d.cfg.VOut) * d.cfg.GPass
}

// Ripple returns the limit-cycle output ripple of the clocked feedback: the
// load discharges COut for one sampling period before the pass array
// updates, and interleaved segments phase-spread the correction.
func (d *Design) Ripple(iLoad float64) float64 {
	if iLoad <= 0 {
		return 0
	}
	return iLoad / (d.cfg.COut * d.cfg.FSample * float64(d.cfg.Interleave))
}

// Evaluate computes the static metrics at load current iLoad (A).
func (d *Design) Evaluate(iLoad float64) (ivr.Metrics, error) {
	cfg := d.cfg
	if iLoad < 0 {
		return ivr.Metrics{}, fmt.Errorf("ldo: negative load current")
	}
	if iLoad > d.MaxCurrent() {
		return ivr.Metrics{}, ivr.Infeasible("ldo",
			"load %.3g A exceeds the %.3g A dropout limit at %.3g V headroom",
			iLoad, d.MaxCurrent(), cfg.VIn-cfg.VOut)
	}
	var loss ivr.LossBreakdown
	// Intrinsic series-pass dissipation.
	loss.Dropout = (cfg.VIn - cfg.VOut) * iLoad
	// Quiescent / bias current drawn from the input at full voltage.
	iq := iLoad * (1/cfg.CurrentEfficiency - 1)
	loss.Leakage = iq * cfg.VIn
	// Digital controller and comparator.
	eg := cfg.Node.LogicEnergyPerGateJ
	loss.Control = ctrlStaticW + cfg.FSample*eg*float64(ctrlGates*cfg.Interleave)
	// Pass-array gate activity: only a fraction of segments toggle per
	// sample in steady state; charge a tenth of the array per cycle.
	vdr := d.dev.VDrive
	loss.GateDrive = 0.1 * cfg.FSample * d.dev.CGate(d.width) * vdr * vdr

	pOut := cfg.VOut * iLoad
	eff := 0.0
	if pOut > 0 {
		eff = pOut / (pOut + loss.Total())
	}
	m := ivr.Metrics{
		Topology:   "digital LDO",
		VIn:        cfg.VIn,
		VOut:       cfg.VOut,
		ILoad:      iLoad,
		POut:       pOut,
		Loss:       loss,
		Efficiency: eff,
		RippleVpp:  d.Ripple(iLoad),
		FSw:        cfg.FSample,
		AreaDie:    d.Area(),
	}
	if err := m.Finite(); err != nil {
		return ivr.Metrics{}, err
	}
	return m, nil
}

// Area returns the die area (m²): pass array, output cap, controller.
func (d *Design) Area() float64 {
	cfg := d.cfg
	a := float64(d.stack) * d.dev.Area(d.width)
	// Output decap uses the densest available option.
	capOpt, err := cfg.Node.Capacitor(tech.DeepTrench)
	if err != nil {
		capOpt, _ = cfg.Node.Capacitor(tech.MOSCap)
	}
	a += capOpt.Area(cfg.COut)
	f := cfg.Node.FeatureM
	a += float64(ctrlGates*cfg.Interleave) * 40 * f * f * 25
	return a * routingTax
}

// EfficiencyCurve sweeps the target output voltage at fixed load; the
// linear-in-VOut efficiency line (η ≈ η_I·V_out/V_in) is the defining
// contrast with switching converters.
func (d *Design) EfficiencyCurve(iLoad, vLo, vHi float64, points int) (vout, eff []float64) {
	if points < 2 {
		points = 2
	}
	for k := 0; k < points; k++ {
		target := vLo + (vHi-vLo)*float64(k)/float64(points-1)
		cfg := d.cfg
		cfg.VOut = target
		dd, err := New(cfg)
		if err != nil {
			continue
		}
		m, err := dd.Evaluate(iLoad)
		if err != nil {
			continue
		}
		vout = append(vout, m.VOut)
		eff = append(eff, m.Efficiency)
	}
	return vout, eff
}
