package ldo

import (
	"errors"
	"math"
	"testing"

	"ivory/internal/ivr"
	"ivory/internal/tech"

	"ivory/internal/numeric"
)

func baseConfig() Config {
	return Config{
		Node:    tech.MustLookup("45nm"),
		VIn:     1.8,
		VOut:    1.0,
		GPass:   10,
		COut:    20e-9,
		FSample: 100e6,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(baseConfig()); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Node = nil },
		func(c *Config) { c.VIn = 0 },
		func(c *Config) { c.VOut = 2.0 }, // above VIn
		func(c *Config) { c.GPass = 0 },
		func(c *Config) { c.COut = 0 },
		func(c *Config) { c.FSample = 0 },
		func(c *Config) { c.CurrentEfficiency = 1.5 },
		func(c *Config) { c.Interleave = -1 },
	}
	for i, mut := range cases {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEfficiencyTracksConversionRatio(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Evaluate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.99 * 1.0 / 1.8
	if math.Abs(m.Efficiency-want) > 0.02 {
		t.Errorf("efficiency %v, want ~%v", m.Efficiency, want)
	}
	if m.Loss.Dropout <= 0 {
		t.Error("dropout loss must dominate")
	}
}

func TestDropoutLimit(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Headroom 0.8 V at GPass 10 S -> 8 A limit.
	if math.Abs(d.MaxCurrent()-8) > 1e-12 {
		t.Errorf("MaxCurrent = %v, want 8", d.MaxCurrent())
	}
	_, err = d.Evaluate(9)
	var inf *ivr.InfeasibleError
	if !errors.As(err, &inf) {
		t.Errorf("expected dropout infeasibility, got %v", err)
	}
}

func TestRippleBehaviour(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1 := d.Ripple(1.0)
	if r1 <= 0 {
		t.Fatal("ripple must be positive under load")
	}
	// Faster sampling cuts ripple proportionally.
	cfg := baseConfig()
	cfg.FSample = 200e6
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2.Ripple(1.0)-r1/2) > 1e-12 {
		t.Error("ripple should scale as 1/FSample")
	}
	// Interleaving cuts ripple too.
	cfg = baseConfig()
	cfg.Interleave = 4
	d4, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d4.Ripple(1.0)-r1/4) > 1e-12 {
		t.Error("ripple should scale as 1/Interleave")
	}
	if d.Ripple(0) != 0 {
		t.Error("no ripple without load")
	}
}

func TestEfficiencyCurveIsLinear(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	vout, eff := d.EfficiencyCurve(1.0, 0.5, 1.5, 11)
	if len(vout) < 10 {
		t.Fatalf("curve too short: %d", len(vout))
	}
	// Check linearity: eff/vout ratio nearly constant.
	ratio0 := eff[0] / vout[0]
	for i := range vout {
		r := eff[i] / vout[i]
		if math.Abs(r-ratio0)/ratio0 > 0.03 {
			t.Errorf("efficiency not linear in VOut at %v: ratio %v vs %v", vout[i], r, ratio0)
		}
	}
}

func TestAreaPositiveAndMonotonic(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Area() <= 0 {
		t.Fatal("area must be positive")
	}
	cfg := baseConfig()
	cfg.GPass = 50
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Area() <= d.Area() {
		t.Error("bigger pass array must use more area")
	}
}

func TestNegativeLoadRejected(t *testing.T) {
	d, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Evaluate(-1); err == nil {
		t.Error("negative load must fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := baseConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Config()
	if !numeric.ApproxEqual(got.CurrentEfficiency, defaultEtaI, 0) || got.Interleave != 1 {
		t.Errorf("defaults not applied: %+v", got)
	}
}
