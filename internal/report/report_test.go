package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter(dir)
	err := w.CSV("data", []string{"a", "b"}, [][]float64{{1, 2}, {3.5, -4}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "data.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 || lines[0] != "a,b" || lines[1] != "1,2" {
		t.Errorf("unexpected content: %q", string(raw))
	}
	if len(w.Written) != 1 {
		t.Errorf("written paths: %v", w.Written)
	}
}

func TestCSVStringsEscaping(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter(dir)
	err := w.CSVStrings("x.csv", []string{"name", "note"},
		[][]string{{`has,comma`, `has "quote"`}})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(filepath.Join(dir, "x.csv"))
	want := `"has,comma","has ""quote"""`
	if !strings.Contains(string(raw), want) {
		t.Errorf("escaping wrong: %q", string(raw))
	}
}

func TestCSVErrors(t *testing.T) {
	w := &Writer{}
	if err := w.CSV("x", []string{"a"}, nil); err == nil {
		t.Error("missing directory must fail")
	}
	w = NewWriter(t.TempDir())
	if err := w.CSV("x", []string{"a", "b"}, [][]float64{{1}}); err == nil {
		t.Error("ragged row must fail")
	}
}
