// Package report writes experiment data as CSV files, the plot-ready
// companion to the text tables cmd/ivory-exp prints: one file per figure,
// one row per data point, ready for any plotting tool.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Writer emits CSV files into a directory (created on first use).
type Writer struct {
	// Dir is the output directory.
	Dir string
	// Written collects the paths written, in order.
	Written []string
}

// NewWriter returns a Writer rooted at dir.
func NewWriter(dir string) *Writer { return &Writer{Dir: dir} }

// CSV writes rows of float64 columns under the given header. The file name
// gets a .csv suffix if missing.
func (w *Writer) CSV(name string, header []string, rows [][]float64) error {
	srows := make([][]string, len(rows))
	for i, r := range rows {
		s := make([]string, len(r))
		for j, v := range r {
			s[j] = strconv.FormatFloat(v, 'g', 10, 64)
		}
		srows[i] = s
	}
	return w.CSVStrings(name, header, srows)
}

// CSVStrings writes pre-formatted rows.
func (w *Writer) CSVStrings(name string, header []string, rows [][]string) error {
	if w.Dir == "" {
		return fmt.Errorf("report: writer has no directory")
	}
	if err := os.MkdirAll(w.Dir, 0o755); err != nil {
		return fmt.Errorf("report: creating %s: %w", w.Dir, err)
	}
	if !strings.HasSuffix(name, ".csv") {
		name += ".csv"
	}
	path := filepath.Join(w.Dir, name)
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(escape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		if len(r) != len(header) {
			return fmt.Errorf("report: %s: row width %d != header %d", name, len(r), len(header))
		}
		writeRow(r)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("report: writing %s: %w", path, err)
	}
	w.Written = append(w.Written, path)
	return nil
}

func escape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
