package experiments

import (
	"context"
	"fmt"

	"ivory/internal/buck"
	"ivory/internal/core"
	"ivory/internal/parallel"
	"ivory/internal/pds"
	"ivory/internal/tech"
)

// Fig13Result reproduces the paper's Fig. 13: the source-to-core power
// breakdown of every PDS configuration, combining the static converter
// efficiencies with the guardbands extracted from the dynamic noise
// analysis, and the headline delivery-efficiency improvement of the
// optimal distributed-IVR PDS over the off-chip VRM baseline.
type Fig13Result struct {
	Breakdowns []pds.Breakdown
	// Margins holds the guardband used per configuration (V).
	Margins map[string]float64
	// ImprovementPP is the delivery-efficiency gain (percentage points) of
	// the best IVR configuration over the off-chip VRM.
	ImprovementPP float64
	// BestConfig names the winning configuration.
	BestConfig string
}

// vrmEfficiency evaluates an off-chip VRM (surface-mount buck at low
// frequency) producing vOut at power pOut from the 3.3 V board rail, using
// the same buck model as on-chip designs — the commensurate-modeling
// principle of the paper.
func vrmEfficiency(vIn, vOut, pOut float64) (float64, error) {
	iLoad := pOut / vOut
	cfg := buck.Config{
		Node:       tech.MustLookup("130nm"), // board-class silicon
		Inductor:   tech.SurfaceMount,
		OutCap:     tech.MIMCap,
		VIn:        vIn,
		VOut:       vOut,
		L:          300e-9,
		COut:       20e-6,
		FSw:        2e6,
		GHigh:      50,
		GLow:       80,
		Interleave: 4,
	}
	d, err := buck.New(cfg)
	if err != nil {
		return 0, err
	}
	d, err = d.OptimizeConductances(iLoad)
	if err != nil {
		return 0, err
	}
	m, err := d.Evaluate(iLoad)
	if err != nil {
		return 0, err
	}
	// Board-level realities the on-chip model does not include: the input
	// filter network and sense/trace resistance between the VRM and the
	// board plane (~1.2 mOhm at the output current), plus the analog
	// controller's quiescent power.
	rTrace := 1.2e-3
	pTrace := iLoad * iLoad * rTrace
	pCtl := 0.25
	loss := m.Loss.Total() + pTrace + pCtl
	return m.POut / (m.POut + loss), nil
}

// Fig13 computes the power breakdowns. The noise analysis (Fig. 10) is
// re-run at a reduced span to extract guardbands; pass a pre-computed
// result to reuse it.
func Fig13(noise *Fig10Result) (*Fig13Result, error) {
	return Fig13Context(context.Background(), noise)
}

// Fig13Context is Fig13 with run control threaded into the noise analysis
// (when not pre-computed) and each margin-aware re-exploration.
func Fig13Context(ctx context.Context, noise *Fig10Result) (*Fig13Result, error) {
	return Fig13Run(ctx, noise, TransientOptions{})
}

// Fig13Run fans the per-configuration work — the off-chip VRM sizing and
// each margin-aware IVR re-exploration — out over opt.Workers, then merges
// breakdowns in configuration order, so results match the serial path
// bit-for-bit at every worker count.
func Fig13Run(ctx context.Context, noise *Fig10Result, opt TransientOptions) (*Fig13Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	if noise == nil {
		noise, err = Fig10Run(ctx, opt)
		if err != nil {
			return nil, err
		}
	}
	res := &Fig13Result{Margins: map[string]float64{}}
	pCore := cs.System.TDPPerCore * float64(cs.System.Cores)
	// Phase 1: per-configuration conversion parameters, fanned out. Each
	// slot is owned by its configuration index; margins are recorded in the
	// merge below to keep map writes single-goroutine.
	params := make([]pds.BreakdownParams, len(noiseConfigs))
	errs := make([]error, len(noiseConfigs))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ferr := parallel.ForContext(runCtx, len(noiseConfigs), opt.Workers, func(i int) {
		nIVR := noiseConfigs[i]
		name := configName(nIVR)
		margin := noise.DroopByConfig[name]
		if margin < 0 {
			margin = 0
		}
		if nIVR == 0 {
			// The board VRM must produce the core voltage plus margin.
			vrmEff, err := vrmEfficiency(cs.System.VSource, cs.System.VNominal+margin, pCore)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			params[i] = pds.BreakdownParams{
				Config: name, Margin: margin,
				VRMEfficiency: vrmEff, NumIVRs: 0,
			}
			return
		}
		// Re-explore the IVR at its actual regulated level (nominal plus
		// this configuration's own margin): the margin-aware
		// co-optimization the paper's §5.4 describes.
		vOp := cs.System.VNominal + margin
		spec := cs.Spec
		spec.VOut = vOp
		spec.IMax = cs.System.TDPPerCore * float64(cs.System.Cores) / cs.System.VNominal
		spec.Context = runCtx
		expRes, err := core.Explore(spec)
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		cand, ok := expRes.BestOfKind(core.KindSC)
		if !ok {
			errs[i] = fmt.Errorf("experiments: no SC design at V_op %.3f", vOp)
			cancel()
			return
		}
		params[i] = pds.BreakdownParams{
			Config: name, Margin: margin,
			IVREfficiency: cand.Metrics.Efficiency,
			// The board rail reaches the IVRs through the PDN with only
			// light conditioning (3.3 V pass-through).
			VRMEfficiency: 0.97,
			NumIVRs:       nIVR,
		}
	})
	if err := firstCellError(errs); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	// Phase 2: breakdowns and aggregates, in enumeration order.
	var offEff float64
	bestEff := -1.0
	for i, nIVR := range noiseConfigs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := configName(nIVR)
		res.Margins[name] = params[i].Margin
		b, err := cs.System.PowerBreakdown(params[i])
		if err != nil {
			return nil, err
		}
		res.Breakdowns = append(res.Breakdowns, b)
		if nIVR == 0 {
			offEff = b.Efficiency
		} else if b.Efficiency > bestEff {
			bestEff = b.Efficiency
			res.BestConfig = name
		}
	}
	res.ImprovementPP = (bestEff - offEff) * 100
	return res, nil
}

// Format renders the breakdown table.
func (r *Fig13Result) Format() string {
	rows := make([][]string, 0, len(r.Breakdowns))
	for _, b := range r.Breakdowns {
		rows = append(rows, []string{
			b.Config,
			fmt.Sprintf("%.0f", r.Margins[b.Config]*1e3),
			fmt.Sprintf("%.1f", b.PCoreUseful),
			fmt.Sprintf("%.2f", b.PMargin),
			fmt.Sprintf("%.2f", b.PGridIR),
			fmt.Sprintf("%.2f", b.PIVRLoss),
			fmt.Sprintf("%.2f", b.PPDNIR),
			fmt.Sprintf("%.2f", b.PVRMLoss),
			fmt.Sprintf("%.2f", b.PSource),
			fmt.Sprintf("%.1f", b.Efficiency*100),
		})
	}
	out := "Fig. 13 — PDS power breakdown and delivery efficiency\n"
	out += table([]string{"config", "margin(mV)", "P_core(W)", "P_margin", "P_grid", "P_IVR", "P_PDN", "P_VRM", "P_src(W)", "eff(%)"}, rows)
	out += fmt.Sprintf("Best IVR configuration: %s, +%.1f pp delivery efficiency over the off-chip VRM (paper: +9.5 pp)\n",
		r.BestConfig, r.ImprovementPP)
	return out
}
