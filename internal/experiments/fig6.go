package experiments

import (
	"fmt"
	"math"

	"ivory/internal/dynamic"
)

// Fig6Tone compares the converter and a bare capacitor at one noise tone.
type Fig6Tone struct {
	// Freq is the tone frequency (Hz).
	Freq float64
	// AmpConverter and AmpBareCap are the output-voltage spectral
	// amplitudes under active regulation and under a bare decoupling
	// capacitor of the same size.
	AmpConverter, AmpBareCap float64
	// Ratio is AmpConverter / AmpBareCap: ~1 at/above the switching
	// frequency (no regulation, paper Eq. 5), <1 below it.
	Ratio float64
}

// Fig6Result reproduces the paper's Fig. 6: the regulation effect of an SC
// converter on multi-tone voltage noise compared with a bare capacitor,
// analyzed through the FFT of the simulated waveforms.
type Fig6Result struct {
	// FSw is the converter switching frequency; CFly the fly capacitance.
	FSw, CFly float64
	Tones     []Fig6Tone
	// Advantage1MHz etc. record the analytic RegulationAdvantage at the
	// tone frequencies for cross-checking against the time-domain result.
	AnalyticAdvantage []float64
}

// Fig6 runs the multi-tone regulation experiment: a 20 MHz SC converter
// with 1 nF of output-facing fly capacitance, against noise tones at 1, 50,
// and 100 MHz (below, above, and far above the switching frequency).
func Fig6() (*Fig6Result, error) {
	fsw := 20e6
	cfly := 1e-9
	// Tones below, above, and far above f_sw, deliberately off the
	// switching-harmonic grid so pump harmonics don't alias onto them.
	tones := []float64{1e6, 53e6, 97e6}
	amps := []float64{1e-3, 1e-3, 1e-3} // 1 mA noise per tone
	base := 0.1

	params := dynamic.SCParams{
		Ratio: 0.5, VIn: 2.0,
		CEq: 4e-9, REq: 0.5,
		COut: cfly, FClk: fsw,
		HystBand: 5e-3,
	}
	sim := &dynamic.SCSimulator{P: params}
	load := dynamic.Tones(base, amps, tones)
	T := 40e-6 // 40 cycles of the slowest tone
	dt := 1e-9
	tr, err := sim.Run(load, dynamic.Constant(0.95), T, dt)
	if err != nil {
		return nil, err
	}

	// Bare capacitor of the same size: the DC load is served by an ideal
	// source, noise rides on the capacitor alone.
	bare := &dynamic.Trace{Times: make([]float64, len(tr.Times)), V: make([]float64, len(tr.V))}
	v := 0.95
	bare.Times[0], bare.V[0] = 0, v
	for k := 1; k < len(tr.Times); k++ {
		t := tr.Times[k]
		v -= (load(t) - base) * dt / cfly
		bare.Times[k] = t
		bare.V[k] = v
	}

	fc, ac := tr.Spectrum()
	fb, ab := bare.Spectrum()
	ampNear := func(freqs, amp []float64, f0 float64) float64 {
		best := 0.0
		for i, f := range freqs {
			if math.Abs(f-f0) < 0.5e6 && amp[i] > best {
				best = amp[i]
			}
		}
		return best
	}
	res := &Fig6Result{FSw: fsw, CFly: cfly}
	model := dynamic.FreqModel{FSw: fsw, COut: cfly, GLoop: params.CEq * fsw}
	for _, f0 := range tones {
		conv := ampNear(fc, ac, f0)
		bareA := ampNear(fb, ab, f0)
		ratio := math.Inf(1)
		if bareA > 0 {
			ratio = conv / bareA
		}
		res.Tones = append(res.Tones, Fig6Tone{Freq: f0, AmpConverter: conv, AmpBareCap: bareA, Ratio: ratio})
		res.AnalyticAdvantage = append(res.AnalyticAdvantage, model.RegulationAdvantage(f0))
	}
	return res, nil
}

// Format renders the figure data.
func (r *Fig6Result) Format() string {
	rows := make([][]string, 0, len(r.Tones))
	for i, t := range r.Tones {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", t.Freq/1e6),
			fmt.Sprintf("%.3f", t.AmpConverter*1e3),
			fmt.Sprintf("%.3f", t.AmpBareCap*1e3),
			fmt.Sprintf("%.2f", t.Ratio),
			fmt.Sprintf("%.2f", r.AnalyticAdvantage[i]),
		})
	}
	return fmt.Sprintf("Fig. 6 — regulation effect of a %.0f MHz SC converter vs a %.1f nF capacitor\n",
		r.FSw/1e6, r.CFly*1e9) +
		table([]string{"tone(MHz)", "conv(mV)", "cap(mV)", "conv/cap", "analytic adv"}, rows)
}
