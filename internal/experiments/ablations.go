package experiments

import (
	"context"
	"fmt"

	"ivory/internal/buck"
	"ivory/internal/core"
	"ivory/internal/dynamic"
	"ivory/internal/numeric"
	"ivory/internal/parallel"
	"ivory/internal/sc"
	"ivory/internal/tech"
)

// AblationResult quantifies the design choices DESIGN.md calls out: each
// row disables one modeling/optimization feature and reports the resulting
// efficiency or accuracy delta at the case-study operating point.
type AblationResult struct {
	Rows []AblationRow
}

// AblationRow is one ablation outcome.
type AblationRow struct {
	// Name labels the ablation.
	Name string
	// Baseline and Ablated are the metric values with the feature on/off.
	Baseline, Ablated float64
	// Unit names the metric ("efficiency %", "ripple mV", ...).
	Unit string
	// Note explains what the delta means.
	Note string
}

// Ablations runs all four studies.
func Ablations() (*AblationResult, error) {
	return AblationsContext(context.Background())
}

// AblationsContext is Ablations with run control threaded into the
// baseline exploration (the dominant cost).
func AblationsContext(ctx context.Context) (*AblationResult, error) {
	return AblationsRun(ctx, TransientOptions{})
}

// AblationsRun runs the baseline exploration serially (studies 1-2 need its
// best SC candidate), then fans the four independent studies out over
// opt.Workers into per-index row slots, so the table order matches the
// serial path for every worker count.
func AblationsRun(ctx context.Context, opt TransientOptions) (*AblationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	spec := cs.Spec
	spec.VOut = 0.9
	spec.Context = ctx

	base, err := core.Explore(spec)
	if err != nil {
		return nil, err
	}
	cand, ok := base.BestOfKind(core.KindSC)
	if !ok {
		return nil, fmt.Errorf("experiments: no SC candidate for ablations")
	}
	cfg := cand.SC.Config()
	mBase, err := cand.SC.Evaluate(spec.IMax)
	if err != nil {
		return nil, err
	}

	studies := []func(context.Context) (AblationRow, error){
		// 1) Cost-aware vs uniform switch-conductance allocation: the 3:1 SC
		//    mixes core and I/O devices, so the split matters.
		func(context.Context) (AblationRow, error) {
			uniformCfg := cfg
			uniformCfg.UniformSwitchAllocation = true
			uniform, err := sc.New(uniformCfg)
			if err != nil {
				return AblationRow{}, err
			}
			mUni, err := uniform.Evaluate(spec.IMax)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Name:     "cost-aware G allocation",
				Baseline: mBase.Efficiency * 100,
				Ablated:  mUni.Efficiency * 100,
				Unit:     "efficiency %",
				Note:     "uniform a_r-proportional split over mixed core/IO switches",
			}, nil
		},
		// 2) Bottom-plate charge recycling (the paper's ref [4]).
		func(context.Context) (AblationRow, error) {
			noRecycleCfg := cfg
			noRecycleCfg.BottomPlateLossFactor = 1.0
			noRecycle, err := sc.New(noRecycleCfg)
			if err != nil {
				return AblationRow{}, err
			}
			mNoRec, err := noRecycle.Evaluate(spec.IMax)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Name:     "bottom-plate charge recycling",
				Baseline: mBase.Efficiency * 100,
				Ablated:  mNoRec.Efficiency * 100,
				Unit:     "efficiency %",
				Note:     "full bottom-plate loss without recycling",
			}, nil
		},
		// 3) Frequency-dependent inductance in the buck model.
		func(context.Context) (AblationRow, error) {
			bcfg := buck.Config{
				Node: tech.MustLookup(caseNode), Inductor: tech.IntegratedThinFilm,
				OutCap: tech.DeepTrench, VIn: 3.3, VOut: 1.0,
				L: 5e-9, COut: 100e-9, FSw: 400e6, GHigh: 4, GLow: 6, Interleave: 8,
			}
			bBase, err := buck.New(bcfg)
			if err != nil {
				return AblationRow{}, err
			}
			bcfgNoRoll := bcfg
			bcfgNoRoll.IgnoreInductorRollOff = true
			bNoRoll, err := buck.New(bcfgNoRoll)
			if err != nil {
				return AblationRow{}, err
			}
			iLoad := 8.0
			return AblationRow{
				Name:     "inductor L(f) roll-off",
				Baseline: bBase.RippleCurrent(iLoad),
				Ablated:  bNoRoll.RippleCurrent(iLoad),
				Unit:     "phase ripple A",
				Note:     "ideal inductance underestimates ripple at 400 MHz",
			}, nil
		},
		// 4) In-cycle model vs cycle-by-cycle only: high-frequency load
		//    noise is invisible at cycle granularity.
		func(runCtx context.Context) (AblationRow, error) {
			params := dynamic.SCParams{
				Ratio: 0.5, VIn: 2.0, CEq: 40e-9, REq: 0.04, COut: 25e-9, FClk: 50e6,
			}
			sim := &dynamic.SCSimulator{P: params}
			noise := dynamic.Tones(0.2, []float64{0.1}, []float64{223e6})
			combined, err := sim.RunInto(runCtx, nil, noise, dynamic.Constant(0.95), 2e-6, 0.2e-9)
			if err != nil {
				return AblationRow{}, err
			}
			cycleOnly, err := sim.CycleByCycleInto(runCtx, nil, noise, 50e6, 2e-6)
			if err != nil {
				return AblationRow{}, err
			}
			halfC := combined.V[len(combined.V)/2:]
			halfS := cycleOnly.V[len(cycleOnly.V)/2:]
			return AblationRow{
				Name:     "in-cycle model",
				Baseline: numeric.PeakToPeak(halfC) * 1e3,
				Ablated:  numeric.PeakToPeak(halfS) * 1e3,
				Unit:     "HF ripple mVpp",
				Note:     "cycle-only sampling aliases 223 MHz noise",
			}, nil
		},
	}
	rows := make([]AblationRow, len(studies))
	errs := make([]error, len(studies))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ferr := parallel.ForContext(runCtx, len(studies), opt.Workers, func(i int) {
		row, err := studies[i](runCtx)
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		rows[i] = row
	})
	if err := firstCellError(errs); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	return &AblationResult{Rows: rows}, nil
}

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%.2f", row.Baseline),
			fmt.Sprintf("%.2f", row.Ablated),
			row.Unit,
			row.Note,
		})
	}
	return "Ablations — modeling/optimization features on vs off\n" +
		table([]string{"feature", "with", "without", "unit", "note"}, rows)
}
