package experiments

import (
	"fmt"

	"ivory/internal/dynamic"
	"ivory/internal/numeric"
)

// FamilyTransientRow is one regulator family's load-step response.
type FamilyTransientRow struct {
	// Family names the regulator.
	Family string
	// WorstDroopMV is the deepest excursion below the reference (mV).
	WorstDroopMV float64
	// RecoveryNS is the time from the step until the output stays within
	// 1% of the reference (ns).
	RecoveryNS float64
	// SteadyRippleMV is the pre-step steady-state ripple (mVpp).
	SteadyRippleMV float64
}

// FamilyTransientsResult compares the dynamic load-step response of the
// three regulator families at a common operating point — the cross-family
// transient comparison Ivory's commensurate modeling enables (the same
// principle as the paper's static Table 2, applied to dynamics).
type FamilyTransientsResult struct {
	// VRef and the step magnitudes document the common scenario.
	VRef, IStep0, IStep1 float64
	Rows                 []FamilyTransientRow
}

// FamilyTransients runs the comparison: 1.8 V -> 0.9 V regulators at 45 nm
// hit with a 0.5 -> 2.0 A load step.
func FamilyTransients() (*FamilyTransientsResult, error) {
	vref := 0.9
	i0, i1 := 0.5, 2.0
	tStep := 2e-6
	T := 6e-6
	load := dynamic.Step(i0, i1, tStep)
	res := &FamilyTransientsResult{VRef: vref, IStep0: i0, IStep1: i1}

	analyze := func(family string, tr *dynamic.Trace) {
		worst := vref
		var preStep, postSteady []float64
		for i, t := range tr.Times {
			if t > tStep/2 && t < tStep {
				preStep = append(preStep, tr.V[i])
			}
			if t > T-0.5e-6 {
				postSteady = append(postSteady, tr.V[i])
			}
			if t >= tStep && tr.V[i] < worst {
				worst = tr.V[i]
			}
		}
		// Recovery is measured against the regulator's own post-step
		// steady level (hysteretic loops carry a load-dependent offset),
		// with a band wide enough for the steady ripple.
		settled := numeric.Mean(postSteady)
		// Recovery: first time after the step that the output climbs back
		// to its post-step steady level (robust for both first-order
		// recoveries and ringing loops, and for hysteretic loops whose
		// steady level carries a load-dependent offset).
		recovery := T - tStep
		for i, t := range tr.Times {
			if t < tStep {
				continue
			}
			if tr.V[i] >= settled {
				recovery = t - tStep
				break
			}
		}
		res.Rows = append(res.Rows, FamilyTransientRow{
			Family:         family,
			WorstDroopMV:   (vref - worst) * 1e3,
			RecoveryNS:     recovery * 1e9,
			SteadyRippleMV: numeric.PeakToPeak(preStep) * 1e3,
		})
	}

	// SC: 2:1 from 1.8 V, hysteretic feedback.
	scSim := &dynamic.SCSimulator{P: dynamic.SCParams{
		Ratio: 0.5, VIn: 1.8, CEq: 600e-9, REq: 0.008,
		COut: 60e-9, FClk: 200e6, Interleave: 4,
	}}
	trSC, err := scSim.Run(load, dynamic.Constant(vref), T, 0.5e-9)
	if err != nil {
		return nil, err
	}
	analyze("SC (hysteretic)", trSC)

	// Buck: 4-phase voltage-mode PI.
	buckSim := &dynamic.BuckSimulator{P: dynamic.BuckParams{
		VIn: 1.8, L: 8e-9, RL: 0.04, COut: 120e-9, FSw: 100e6, Interleave: 4,
	}}
	trBuck, err := buckSim.Run(load, dynamic.Constant(vref), T, 0.5e-9)
	if err != nil {
		return nil, err
	}
	analyze("buck (PI)", trBuck)

	// Digital LDO: proportional segmented control.
	ldoSim := &dynamic.LDOSimulator{P: dynamic.LDOParams{
		VIn: 1.8, GPass: 8, Segments: 128, COut: 60e-9, FSample: 200e6,
		Proportional: true,
	}}
	trLDO, err := ldoSim.Run(load, dynamic.Constant(vref), T, 0.5e-9)
	if err != nil {
		return nil, err
	}
	analyze("digital LDO (prop.)", trLDO)
	return res, nil
}

// Format renders the comparison.
func (r *FamilyTransientsResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Family,
			fmt.Sprintf("%.1f", row.WorstDroopMV),
			fmt.Sprintf("%.0f", row.RecoveryNS),
			fmt.Sprintf("%.2f", row.SteadyRippleMV),
		})
	}
	return fmt.Sprintf("Extension — family transient comparison (%.2f V, %.1f -> %.1f A step)\n",
		r.VRef, r.IStep0, r.IStep1) +
		table([]string{"family", "worst droop(mV)", "recovery(ns)", "steady ripple(mVpp)"}, rows)
}
