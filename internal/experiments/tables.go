package experiments

import (
	"context"
	"fmt"

	"ivory/internal/core"
	"ivory/internal/pdn"
	"ivory/internal/pds"
	"ivory/internal/workload"
)

// caseNode is the technology node the case study runs in. The paper's case
// study targets an embedded GPU with an IVR area budget scaled from Intel's
// 45 nm FIVR, so 45 nm is the reference node here.
const caseNode = "45nm"

// CaseSystem bundles the full case-study platform: the Table 1 parameters
// realized as a pds.System plus the chip-level design spec.
type CaseSystem struct {
	Spec   core.Spec
	System *pds.System
}

// NewCaseSystem builds the paper's Table 1 configuration: four Fermi-class
// SMs at 5 W each, 0.85 V nominal (+0.15 V legacy guardband at the board
// VRM), 3.3 V board supply, 20 mm² IVR area budget, up to 4 distributed
// IVRs, and the GPUVolt-style off-chip PDN.
func NewCaseSystem() (*CaseSystem, error) {
	net, err := pdn.TypicalOffChip(60e-9, 1.2e-3)
	if err != nil {
		return nil, err
	}
	sys := &pds.System{
		Cores:      4,
		TDPPerCore: 5,
		VNominal:   0.85,
		VSource:    3.3,
		Load:       workload.LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25},
		GridR:      3.5e-3,
		GridL:      50e-12,
		Network:    net,
		Seed:       seed,
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return &CaseSystem{Spec: core.CaseStudySpec(caseNode), System: sys}, nil
}

// Table1 formats the case-study input parameters (paper Table 1).
func Table1() (string, error) {
	cs, err := NewCaseSystem()
	if err != nil {
		return "", err
	}
	s := cs.Spec
	sys := cs.System
	rows := [][]string{
		{"Max. area (mm2)", fmt.Sprintf("%.0f", s.AreaMax*1e6)},
		{"Total average power (W)", fmt.Sprintf("%.0f", sys.TDPPerCore*float64(sys.Cores))},
		{"Input / output (V)", fmt.Sprintf("%.1f / %.2f", s.VIn, s.VOut)},
		{"Core nominal voltage (V)", fmt.Sprintf("%.2f", sys.VNominal)},
		{"Max distributed IVRs", fmt.Sprintf("%d", sys.Cores)},
		{"Max load current (A)", fmt.Sprintf("%.1f", s.IMax)},
		{"Technology node", caseNode},
		{"Off-chip PDN R (mOhm)", fmt.Sprintf("%.2f", sys.Network.TotalR()*1e3)},
		{"On-chip grid R (mOhm) / L (pH)", fmt.Sprintf("%.1f / %.0f", sys.GridR*1e3, sys.GridL*1e12)},
	}
	return "Table 1 — case-study input parameters\n" + table([]string{"parameter", "value"}, rows), nil
}

// Table2 runs the design-space exploration across 1/2/4 distributed IVRs
// (paper Table 2).
func Table2() (*core.DistributionTable, error) {
	return Table2Context(context.Background())
}

// Table2Context is Table2 with run control threaded into every per-count
// exploration of the distribution sweep.
func Table2Context(ctx context.Context) (*core.DistributionTable, error) {
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	spec := cs.Spec
	spec.Context = ctx
	return core.ExploreDistribution(spec, []int{1, 2, 4})
}
