package experiments

import (
	"fmt"

	"ivory/internal/report"
)

// Every experiment result knows how to emit its plot-ready data. The file
// names follow the paper's figure numbering.

// WriteCSV emits fig4.csv.
func (r *Fig4Result) WriteCSV(w *report.Writer) error {
	rows := make([][]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []float64{
			row.FSw, row.TSpice.Seconds(), row.TModel.Seconds(),
			row.Speedup, row.VSpice, row.VModel,
		})
	}
	return w.CSV("fig4", []string{"fsw_hz", "t_sim_s", "t_model_s", "speedup", "v_sim", "v_model"}, rows)
}

// WriteCSV emits fig6.csv.
func (r *Fig6Result) WriteCSV(w *report.Writer) error {
	rows := make([][]float64, 0, len(r.Tones))
	for i, tn := range r.Tones {
		rows = append(rows, []float64{
			tn.Freq, tn.AmpConverter, tn.AmpBareCap, tn.Ratio, r.AnalyticAdvantage[i],
		})
	}
	return w.CSV("fig6", []string{"tone_hz", "amp_converter_v", "amp_cap_v", "ratio", "analytic_advantage"}, rows)
}

// WriteCSV emits fig7.csv with one row per (case, point).
func (r *Fig7Result) WriteCSV(w *report.Writer) error {
	var rows [][]string
	for _, c := range r.Cases {
		for _, p := range c.Points {
			rows = append(rows, []string{
				c.Name,
				fmt.Sprintf("%g", p.VOutTarget),
				fmt.Sprintf("%g", p.EffModel),
				fmt.Sprintf("%g", p.EffModelCond),
				fmt.Sprintf("%g", p.EffSim),
				fmt.Sprintf("%g", p.Err),
			})
		}
	}
	return w.CSVStrings("fig7", []string{"case", "vout_v", "eff_model", "eff_model_cond", "eff_sim", "err"}, rows)
}

// WriteCSV emits fig8.csv.
func (r *Fig8Result) WriteCSV(w *report.Writer) error {
	var rows [][]string
	for _, c := range r.Cases {
		for _, p := range c.Points {
			rows = append(rows, []string{
				c.Name,
				fmt.Sprintf("%g", p.ILoad),
				fmt.Sprintf("%g", p.VOutTarget),
				fmt.Sprintf("%g", p.EffModel),
				fmt.Sprintf("%g", p.EffModelCond),
				fmt.Sprintf("%g", p.EffSim),
			})
		}
	}
	return w.CSVStrings("fig8", []string{"case", "iload_a", "vout_v", "eff_model", "eff_model_cond", "eff_sim"}, rows)
}

// WriteCSV emits fig9_waveform.csv and fig9_summary.csv.
func (r *Fig9Result) WriteCSV(w *report.Writer) error {
	rows := make([][]float64, 0, len(r.CycleTimes))
	for i := range r.CycleTimes {
		rows = append(rows, []float64{r.CycleTimes[i], r.CycleModel[i], r.CycleSim[i]})
	}
	if err := w.CSV("fig9_waveform", []string{"t_s", "v_model", "v_sim"}, rows); err != nil {
		return err
	}
	return w.CSV("fig9_summary", []string{"cycle_rmse_v", "cycle_maxerr_v", "incycle_model_v", "incycle_sim_v"},
		[][]float64{{r.CycleRMSE, r.CycleMaxErr, r.InCycleRippleModel, r.InCycleRippleSim}})
}

// WriteCSV emits fig10.csv (box stats) and fig11.csv (CFD traces).
func (r *Fig10Result) WriteCSV(w *report.Writer) error {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Benchmark, c.Config,
			fmt.Sprintf("%g", c.Stats.Min),
			fmt.Sprintf("%g", c.Stats.Q1),
			fmt.Sprintf("%g", c.Stats.Median),
			fmt.Sprintf("%g", c.Stats.Q3),
			fmt.Sprintf("%g", c.Stats.Max),
			fmt.Sprintf("%g", c.NoiseVpp),
			fmt.Sprintf("%g", c.WorstDroop),
		})
	}
	if err := w.CSVStrings("fig10",
		[]string{"benchmark", "config", "min", "q1", "median", "q3", "max", "vpp", "droop"}, rows); err != nil {
		return err
	}
	// CFD waveforms: t + one column per configuration.
	header := []string{"t_s"}
	var configs []string
	for _, n := range noiseConfigs {
		configs = append(configs, configName(n))
		header = append(header, configName(n))
	}
	var wave [][]float64
	for k := range r.CFDTimes {
		row := []float64{r.CFDTimes[k]}
		ok := true
		for _, cfg := range configs {
			tr := r.CFDTraces[cfg]
			if k >= len(tr) {
				ok = false
				break
			}
			row = append(row, tr[k])
		}
		if ok {
			wave = append(wave, row)
		}
	}
	return w.CSV("fig11", header, wave)
}

// WriteCSV emits fig12.csv.
func (r *Fig12Result) WriteCSV(w *report.Writer) error {
	rows := make([][]float64, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []float64{p.AreaMM2, p.EffSC, p.EffBuck, p.EffLDO})
	}
	return w.CSV("fig12", []string{"area_mm2", "eff_sc", "eff_buck", "eff_ldo"}, rows)
}

// WriteCSV emits fig13.csv.
func (r *Fig13Result) WriteCSV(w *report.Writer) error {
	var rows [][]string
	for _, b := range r.Breakdowns {
		rows = append(rows, []string{
			b.Config,
			fmt.Sprintf("%g", r.Margins[b.Config]),
			fmt.Sprintf("%g", b.PCoreUseful),
			fmt.Sprintf("%g", b.PMargin),
			fmt.Sprintf("%g", b.PGridIR),
			fmt.Sprintf("%g", b.PIVRLoss),
			fmt.Sprintf("%g", b.PPDNIR),
			fmt.Sprintf("%g", b.PVRMLoss),
			fmt.Sprintf("%g", b.PSource),
			fmt.Sprintf("%g", b.Efficiency),
		})
	}
	return w.CSVStrings("fig13",
		[]string{"config", "margin_v", "p_core_w", "p_margin_w", "p_grid_w", "p_ivr_w", "p_pdn_w", "p_vrm_w", "p_source_w", "efficiency"}, rows)
}

// WriteCSV emits ablations.csv.
func (r *AblationResult) WriteCSV(w *report.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%g", row.Baseline),
			fmt.Sprintf("%g", row.Ablated),
			row.Unit,
		})
	}
	return w.CSVStrings("ablations", []string{"feature", "with", "without", "unit"}, rows)
}

// WriteCSV emits twostage.csv.
func (r *TwoStageResult) WriteCSV(w *report.Writer) error {
	var rows [][]float64
	for _, row := range r.Inner.Rows {
		feas := 0.0
		if row.Feasible {
			feas = 1
		}
		rows = append(rows, []float64{row.VMid, row.Stage1Eff, row.Stage2Eff, row.Combined, feas})
	}
	return w.CSV("twostage", []string{"vmid_v", "stage1_eff", "stage2_eff", "combined_eff", "feasible"}, rows)
}

// WriteCSV emits dvfs.csv.
func (r *DVFSResult) WriteCSV(w *report.Writer) error {
	rows := make([][]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []float64{row.PeriodUS, row.EnergySavingPct, row.ResidencyPct})
	}
	return w.CSV("dvfs", []string{"period_us", "saving_pct", "residency_pct"}, rows)
}

// WriteCSV emits families.csv.
func (r *FamilyTransientsResult) WriteCSV(w *report.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Family,
			fmt.Sprintf("%g", row.WorstDroopMV),
			fmt.Sprintf("%g", row.RecoveryNS),
			fmt.Sprintf("%g", row.SteadyRippleMV),
		})
	}
	return w.CSVStrings("families", []string{"family", "droop_mv", "recovery_ns", "ripple_mvpp"}, rows)
}

// WriteCSV emits gridscale.csv.
func (r *GridScaleResult) WriteCSV(w *report.Writer) error {
	rows := make([][]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []float64{float64(row.N), row.REff, row.Ratio, row.InvN})
	}
	return w.CSV("gridscale", []string{"n_ivrs", "r_eff_ohm", "ratio_vs_centralized", "inv_n"}, rows)
}

// WriteCSV emits gears.csv.
func (r *GearsResult) WriteCSV(w *report.Writer) error {
	rows := make([][]float64, 0, len(r.VOut))
	for i := range r.VOut {
		rows = append(rows, []float64{r.VOut[i], r.Envelope[i], float64(r.Gear[i])})
	}
	return w.CSV("gears", []string{"vout_v", "efficiency", "gear_index"}, rows)
}

// WriteCSV emits nodes.csv.
func (r *NodeSweepResult) WriteCSV(w *report.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		if !row.Feasible {
			continue
		}
		rows = append(rows, []string{
			row.Node, row.Kind,
			fmt.Sprintf("%g", row.Efficiency),
			fmt.Sprintf("%g", row.AreaMM2),
			fmt.Sprintf("%g", row.FSwMHz),
		})
	}
	return w.CSVStrings("nodes", []string{"node", "kind", "efficiency", "area_mm2", "fsw_mhz"}, rows)
}
