package experiments

import (
	"context"
	"fmt"

	"ivory/internal/core"
	"ivory/internal/dynamic"
	"ivory/internal/numeric"
	"ivory/internal/sc"
)

// TwoStageResult wraps the hierarchical-composition exploration the paper
// lists among Ivory's capabilities: off-chip VRM to an intermediate rail,
// on-chip IVR from there to the core.
type TwoStageResult struct {
	Inner *core.TwoStageResult
}

// TwoStage explores intermediate rails for the case-study conversion.
func TwoStage() (*TwoStageResult, error) {
	return TwoStageContext(context.Background())
}

// TwoStageContext is TwoStage with run control threaded into the
// single-stage reference and every per-rail re-exploration.
func TwoStageContext(ctx context.Context) (*TwoStageResult, error) {
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	spec := cs.Spec
	spec.VOut = 0.9
	spec.Context = ctx
	stage1 := func(vOut, pOut float64) (float64, error) {
		return vrmEfficiency(cs.System.VSource, vOut, pOut)
	}
	inner, err := core.ExploreTwoStage(spec, []float64{1.2, 1.5, 1.8, 2.2, 2.6}, stage1)
	if err != nil {
		return nil, err
	}
	return &TwoStageResult{Inner: inner}, nil
}

// Format renders the exploration.
func (r *TwoStageResult) Format() string {
	return "Extension — hierarchical (two-stage) power delivery\n" + r.Inner.Format()
}

// DVFSRow is one schedule period of the fast-DVFS study.
type DVFSRow struct {
	// PeriodUS is the DVFS toggle period (µs).
	PeriodUS float64
	// EnergySavingPct is the core+IVR energy saved vs running fixed at the
	// high voltage for the same work pattern.
	EnergySavingPct float64
	// ResidencyPct is the fraction of each low phase actually spent at the
	// low voltage (transitions eat the rest).
	ResidencyPct float64
}

// DVFSResult is the fast per-core DVFS exploration — the future-work item
// the paper's §5.4 flags ("fast DVFS could yield further improvement and
// can also be explored using Ivory").
type DVFSResult struct {
	// UpTransitionNS and DownTransitionNS are the measured reference-step
	// transition times of the case-study IVR.
	UpTransitionNS, DownTransitionNS float64
	Rows                             []DVFSRow
}

// FastDVFS measures DVFS transition times of the case-study SC IVR with
// the dynamic model, then evaluates the energy benefit of toggling between
// a 0.95 V active state and a 0.70 V idle state (50 % duty) across
// schedule periods.
func FastDVFS() (*DVFSResult, error) {
	return FastDVFSContext(context.Background())
}

// FastDVFSContext is FastDVFS with run control threaded into the
// case-study exploration that picks the IVR design.
func FastDVFSContext(ctx context.Context) (*DVFSResult, error) {
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	design, err := caseIVRDesign(ctx, cs)
	if err != nil {
		return nil, err
	}
	vHi, vLo := 0.95, 0.70
	iHi := cs.Spec.IMax / 4 // one core's worth on one distributed IVR
	params, err := dynamic.SCFromDesignAtLoad(design, cs.Spec.IMax)
	if err != nil {
		return nil, err
	}
	// One of four distributed instances.
	params.CEq /= 4
	params.COut /= 4
	params.Interleave = 8
	sim := &dynamic.SCSimulator{P: params}
	res := &DVFSResult{}

	// Measure the up transition: start regulated at vLo, step the
	// reference to vHi.
	tick := 1 / (params.FClk * float64(params.Interleave))
	tStep := 0.5e-6
	tr, err := sim.Run(dynamic.Constant(iHi*0.4), dynamic.Step(vLo, vHi, tStep), 2e-6, tick)
	if err != nil {
		return nil, err
	}
	res.UpTransitionNS = settleTime(tr, tStep, vHi, 0.02) * 1e9
	trDown, err := sim.Run(dynamic.Constant(iHi*0.4), dynamic.Step(vHi, vLo, tStep), 4e-6, tick)
	if err != nil {
		return nil, err
	}
	res.DownTransitionNS = settleTimeDown(trDown, tStep, vLo, 0.02) * 1e9

	// Energy accounting: the load spends half its time active (vHi, full
	// current) and half idle (vLo, leakage-dominated). Without DVFS the
	// idle phase still sits at vHi. Transition intervals are spent at vHi
	// (conservative) and the converter's efficiency at each operating
	// point scales the drawn energy.
	load := cs.System.Load
	effAt := func(v, i float64) float64 {
		cfg := design.Config()
		cfg.VOut = v
		d2, err := sc.New(cfg)
		if err != nil {
			return 0.70 // fallback: conservative flat efficiency
		}
		m, err := d2.Evaluate(i)
		if err != nil {
			return 0.70
		}
		return m.Efficiency
	}
	iActive := load.Current(1.0, vHi)
	iIdleLo := load.Current(0.05, vLo)
	iIdleHi := load.Current(0.05, vHi)
	effActive := effAt(vHi, iActive)
	effIdleLo := effAt(vLo, iIdleLo)
	effIdleHi := effAt(vHi, iIdleHi)
	tTrans := (res.UpTransitionNS + res.DownTransitionNS) * 1e-9
	for _, periodUS := range []float64{0.5, 1, 2, 5, 10, 50} {
		p := periodUS * 1e-6
		half := p / 2
		// Fixed-voltage energy per period.
		eFixed := half*vHi*iActive/effActive + half*vHi*iIdleHi/effIdleHi
		// DVFS: the idle half loses tTrans to transitions (at vHi cost).
		resid := (half - tTrans) / half
		if resid < 0 {
			resid = 0
		}
		eDVFS := half*vHi*iActive/effActive +
			(half-half*resid)*vHi*iIdleHi/effIdleHi +
			half*resid*vLo*iIdleLo/effIdleLo
		saving := (eFixed - eDVFS) / eFixed * 100
		res.Rows = append(res.Rows, DVFSRow{
			PeriodUS:        periodUS,
			EnergySavingPct: saving,
			ResidencyPct:    resid * 100,
		})
	}
	return res, nil
}

// settleTime returns the time from tStep until the waveform first stays
// within tol of target.
func settleTime(tr *dynamic.Trace, tStep, target, tol float64) float64 {
	for i, t := range tr.Times {
		if t >= tStep && tr.V[i] >= target*(1-tol) {
			return t - tStep
		}
	}
	return tr.Times[len(tr.Times)-1] - tStep
}

// settleTimeDown is the falling-edge variant.
func settleTimeDown(tr *dynamic.Trace, tStep, target, tol float64) float64 {
	for i, t := range tr.Times {
		if t >= tStep && tr.V[i] <= target*(1+tol) {
			return t - tStep
		}
	}
	return tr.Times[len(tr.Times)-1] - tStep
}

// Format renders the DVFS study.
func (r *DVFSResult) Format() string {
	out := "Extension — fast per-core DVFS with the case-study IVR\n"
	out += fmt.Sprintf("reference-step transitions: up %.0f ns, down %.0f ns\n",
		r.UpTransitionNS, r.DownTransitionNS)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", row.PeriodUS),
			fmt.Sprintf("%.1f", row.EnergySavingPct),
			fmt.Sprintf("%.1f", row.ResidencyPct),
		})
	}
	out += table([]string{"period(us)", "energy saving(%)", "low-V residency(%)"}, rows)
	out += fmt.Sprintf("asymptotic saving %.1f%% — fast IVR transitions keep savings high even at sub-microsecond scheduling\n",
		numeric.Clamp(r.Rows[len(r.Rows)-1].EnergySavingPct, 0, 100))
	return out
}
