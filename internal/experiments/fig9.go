package experiments

import (
	"fmt"
	"math"

	"ivory/internal/dynamic"
	"ivory/internal/numeric"
	"ivory/internal/spice"
)

// Fig9Result reproduces the paper's Fig. 9: transient-response validation
// of (a) the cycle-by-cycle model and (b) the in-cycle model against the
// circuit simulator.
type Fig9Result struct {
	// CycleTimes/CycleModel/CycleSim sample the output voltage during a
	// load step, at switching-cycle granularity.
	CycleTimes, CycleModel, CycleSim []float64
	// CycleRMSE and CycleMaxErr quantify the (a) comparison.
	CycleRMSE, CycleMaxErr float64
	// InCycleRippleModel/Sim compare the intra-cycle ripple amplitude under
	// a high-frequency noise tone — the (b) comparison.
	InCycleRippleModel, InCycleRippleSim float64
	// InCycleErr is the relative ripple disagreement.
	InCycleErr float64
}

// Fig9 runs both validations on the reference 2:1 converter.
func Fig9() (*Fig9Result, error) {
	res := &Fig9Result{}
	d, top, an, err := mustSC(20e-9, 150, 0.8, 2e9)
	if err != nil {
		return nil, err
	}
	caps, rons := d.ElementValues()
	vin := 1.8
	fsw := 50e6
	cload := 100e-9

	// (a) Cycle-by-cycle: load step 0.1 -> 0.4 A mid-run, open loop.
	tStep := 2e-6
	T := 6e-6
	iStep0, iStep1 := 0.1, 0.4
	loadSig := dynamic.Step(iStep0, iStep1, tStep)
	ckt, err := spice.BuildSC(top, an, caps, rons, spice.SCOptions{
		VIn: vin, FSw: fsw, CLoad: cload, ILoad: 0,
		Load:   spice.Waveform(func(t float64) float64 { return loadSig(t) }),
		VOutIC: an.Ratio*vin - iStep0*d.ROut(fsw),
	})
	if err != nil {
		return nil, err
	}
	sres, err := ckt.Tran(1/(fsw*64), T)
	if err != nil {
		return nil, err
	}
	params := dynamic.SCFromDesign(d)
	// The testbench's explicit load capacitance replaces the design decap.
	params.COut = cload + 0.5*d.Config().CTotal
	sim := &dynamic.SCSimulator{P: params}
	tr, err := sim.CycleByCycle(loadSig, fsw, T)
	if err != nil {
		return nil, err
	}
	// The cycle model starts at the no-load ideal; align by starting the
	// comparison after its initial settling (first 20 cycles).
	skip := 20
	var se, worst float64
	n := 0
	for k := skip; k < len(tr.Times); k++ {
		t := tr.Times[k]
		idx := int(t * fsw * 64)
		if idx >= len(sres.Times) {
			break
		}
		mv := tr.V[k]
		sv := sres.At("vout", idx)
		res.CycleTimes = append(res.CycleTimes, t)
		res.CycleModel = append(res.CycleModel, mv)
		res.CycleSim = append(res.CycleSim, sv)
		e := math.Abs(mv - sv)
		se += e * e
		if e > worst {
			worst = e
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: fig9 produced no comparable samples")
	}
	res.CycleRMSE = math.Sqrt(se / float64(n))
	res.CycleMaxErr = worst

	// (b) In-cycle: a 217 MHz noise tone (above fsw, off the harmonic grid) rides on the load; the
	// output ripple is set by the output-facing capacitance alone.
	toneHz := 217e6
	toneA := 0.1
	iBase := 0.2
	noisy := dynamic.Tones(iBase, []float64{toneA}, []float64{toneHz})
	ckt2, err := spice.BuildSC(top, an, caps, rons, spice.SCOptions{
		VIn: vin, FSw: fsw, CLoad: cload, ILoad: 0,
		Load:   spice.Waveform(func(t float64) float64 { return noisy(t) }),
		VOutIC: an.Ratio*vin - iBase*d.ROut(fsw),
	})
	if err != nil {
		return nil, err
	}
	sres2, err := ckt2.Tran(1/(toneHz*32), 4e-6)
	if err != nil {
		return nil, err
	}
	// Simulated tone amplitude from the spectrum around the tone frequency.
	vout2 := sres2.V["vout"]
	half := vout2[len(vout2)/2:]
	mean := numeric.Mean(half)
	x := make([]float64, len(half))
	for i, v := range half {
		x[i] = v - mean
	}
	freqs, amps := numeric.RealFFTMagnitude(x, 1/(toneHz*32))
	vSim := 0.0
	for i, f := range freqs {
		if math.Abs(f-toneHz) < toneHz/50 && amps[i] > vSim {
			vSim = amps[i]
		}
	}
	// In-cycle model: above f_sw the converter is just its output-facing
	// capacitance (paper Eq. 5): ripple amplitude = I_tone / (w*C).
	cEff := cload + 0.5*d.Config().CTotal
	vModel := toneA / (2 * math.Pi * toneHz * cEff)
	res.InCycleRippleModel = vModel
	res.InCycleRippleSim = vSim
	if vSim > 0 {
		res.InCycleErr = math.Abs(vModel-vSim) / vSim
	}
	return res, nil
}

// Format renders the validation summary plus a waveform excerpt.
func (r *Fig9Result) Format() string {
	out := "Fig. 9 — transient response validation\n"
	out += fmt.Sprintf("(a) cycle-by-cycle vs simulation: RMSE %.2f mV, max err %.2f mV over %d cycles\n",
		r.CycleRMSE*1e3, r.CycleMaxErr*1e3, len(r.CycleTimes))
	step := len(r.CycleTimes) / 12
	if step < 1 {
		step = 1
	}
	rows := [][]string{}
	for k := 0; k < len(r.CycleTimes); k += step {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.CycleTimes[k]*1e6),
			fmt.Sprintf("%.4f", r.CycleModel[k]),
			fmt.Sprintf("%.4f", r.CycleSim[k]),
		})
	}
	out += table([]string{"t(us)", "model(V)", "sim(V)"}, rows)
	out += fmt.Sprintf("(b) in-cycle ripple at 217 MHz: model %.3f mV vs sim %.3f mV (err %.1f%%)\n",
		r.InCycleRippleModel*1e3, r.InCycleRippleSim*1e3, r.InCycleErr*100)
	return out
}
