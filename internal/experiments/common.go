// Package experiments regenerates every table and figure of the paper's
// evaluation (Figs. 4, 6-13 and Tables 1-2). Each experiment is a function
// returning a self-describing result with a Format method; the cmd/ivory-exp
// binary prints them and the root-level benchmarks time them. Seeds are
// fixed so runs are reproducible.
//
// Absolute numbers differ from the paper — the baseline is this repo's own
// MNA simulator rather than Cadence, devices come from the built-in
// technology tables rather than the authors' PDKs, and workload traces are
// synthetic — but each experiment reproduces the paper's qualitative shape:
// who wins, how curves bend, and where crossovers sit. EXPERIMENTS.md
// records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"

	"ivory/internal/sc"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

// seed fixes all stochastic inputs of the experiments.
const seed = 20170618 // DAC'17 began June 18, 2017

// mustSC builds the reference 2:1 SC design used by several validation
// experiments: 32 nm, 1.8 V in, deep-trench flying caps.
func mustSC(ctot, gtot, vout float64, fswMax float64) (*sc.Design, *topology.Topology, *topology.Analysis, error) {
	top, err := topology.SeriesParallel(2, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	an, err := top.Analyze()
	if err != nil {
		return nil, nil, nil, err
	}
	d, err := sc.New(sc.Config{
		Analysis: an,
		Node:     tech.MustLookup("32nm"),
		CapKind:  tech.DeepTrench,
		VIn:      1.8,
		VOut:     vout,
		CTotal:   ctot,
		GTotal:   gtot,
		CDecap:   ctot / 2,
		FSwMax:   fswMax,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return d, top, an, nil
}

// table renders rows of labeled columns with reasonable alignment.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
