package experiments

import (
	"context"
	"fmt"
	"time"

	"ivory/internal/core"
	"ivory/internal/numeric"
	"ivory/internal/parallel"
	"ivory/internal/pds"
	"ivory/internal/sc"
	"ivory/internal/workload"
)

// noiseConfigs are the four PDS configurations of the case study.
var noiseConfigs = []int{0, 1, 2, 4} // 0 = off-chip VRM

func configName(n int) string {
	switch n {
	case 0:
		return "off-chip VRM"
	case 1:
		return "centralized IVR"
	default:
		return fmt.Sprintf("%d distributed IVRs", n)
	}
}

// Fig10Cell is one benchmark x configuration box-plot entry.
type Fig10Cell struct {
	Benchmark string
	Config    string
	// Stats summarizes the core-voltage distribution (box plot input).
	Stats numeric.Summary
	// NoiseVpp is the voltage-noise range.
	NoiseVpp float64
	// WorstDroop is VNominal - min(V).
	WorstDroop float64
}

// Fig10Result reproduces the paper's Fig. 10: voltage-noise statistics of
// every benchmark under every VR configuration, and (reusing the same
// simulations) the paper's Fig. 11 waveforms for CFD.
type Fig10Result struct {
	Cells []Fig10Cell
	// CFDTraces holds the Fig. 11 waveforms: config name -> core voltage.
	CFDTimes  []float64
	CFDTraces map[string][]float64
	// NoiseByConfig aggregates the worst-case noise range per config.
	NoiseByConfig map[string]float64
	// DroopByConfig aggregates the worst droop per config (the guardband).
	DroopByConfig map[string]float64
	// Configs records the IVR counts the run covered (the case-study set
	// {0,1,2,4} unless TransientOptions.Configs narrowed it).
	Configs []int
	// RunStats is the engine telemetry of the run that produced the result.
	RunStats TransientStats
}

// caseIVRDesign builds the chip-level SC converter the static exploration
// selects for the case study (best SC candidate of Table 2), re-sized to
// totals and with generous interleaving for the dynamic analysis.
func caseIVRDesign(ctx context.Context, cs *CaseSystem) (*sc.Design, error) {
	spec := cs.Spec
	spec.Context = ctx
	res, err := core.Explore(spec)
	if err != nil {
		return nil, err
	}
	cand, ok := res.BestOfKind(core.KindSC)
	if !ok {
		return nil, fmt.Errorf("experiments: no SC design for the case study")
	}
	cfg := cand.SC.Config()
	// The dynamic analysis regulates at the core's nominal voltage.
	cfg.VOut = cs.System.VNominal
	cfg.Interleave = 32
	cfg.FSwMax = 500e6
	return sc.New(cfg)
}

// Fig10 runs the workload-driven noise analysis. T and dt control the
// simulated span per cell; zero selects 20 µs at 1 ns.
func Fig10(T, dt float64) (*Fig10Result, error) {
	return Fig10Context(context.Background(), T, dt)
}

// Fig10Context is Fig10 with run control: the context cancels the
// underlying exploration and every in-flight simulation cell (the poll sits
// inside the transient integration loops, so cancellation does not wait for
// a cell to finish).
func Fig10Context(ctx context.Context, T, dt float64) (*Fig10Result, error) {
	return Fig10Run(ctx, TransientOptions{T: T, Dt: dt})
}

// fig10Cell names one benchmark × configuration simulation.
type fig10Cell struct {
	bench string
	nIVR  int
}

// fig10Cells enumerates the benchmark × configuration grid in the fixed
// order the serial loop used; the parallel merge walks the same order.
// opt.Benchmarks/opt.Configs narrow the grid for scoped (serving) runs;
// the defaults reproduce the full case study. Selections are validated
// here so a bad request fails before any simulation burns a worker.
func fig10Cells(opt TransientOptions) ([]fig10Cell, []int, error) {
	names := opt.Benchmarks
	if len(names) == 0 {
		names = workload.Names()
	} else {
		for _, b := range names {
			if _, err := workload.Get(b); err != nil {
				return nil, nil, err
			}
		}
	}
	configs := opt.Configs
	if len(configs) == 0 {
		configs = noiseConfigs
	} else {
		for _, n := range configs {
			if n < 0 {
				return nil, nil, fmt.Errorf("experiments: negative IVR count %d", n)
			}
		}
	}
	cells := make([]fig10Cell, 0, len(names)*len(configs))
	for _, b := range names {
		for _, n := range configs {
			cells = append(cells, fig10Cell{bench: b, nIVR: n})
		}
	}
	if len(cells) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty benchmark x configuration grid")
	}
	return cells, configs, nil
}

// Fig10Run is the engine entry point: the benchmark × configuration cells
// fan out over opt.Workers goroutines, each simulating independently into
// pooled scratch, and the merge walks the enumeration order — so the result
// is bit-identical to the serial path for every worker count. Only CFD
// cells retain their waveforms (Fig. 11); the rest carry statistics alone.
func Fig10Run(ctx context.Context, opt TransientOptions) (*Fig10Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	T, dt := opt.T, opt.Dt
	if T <= 0 {
		T = 20e-6
	}
	if dt <= 0 {
		dt = 1e-9
	}
	cells, configs, err := fig10Cells(opt)
	if err != nil {
		return nil, err
	}
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	exploreStart := time.Now()
	design, err := caseIVRDesign(ctx, cs)
	if err != nil {
		return nil, err
	}
	tracker := newTransientTracker(len(cells), time.Since(exploreStart), opt.Progress)
	results := make([]*pds.NoiseResult, len(cells))
	errs := make([]error, len(cells))
	// A failing cell cancels the run context so sibling cells stop instead
	// of burning a full simulation each.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ferr := parallel.ForContext(runCtx, len(cells), opt.Workers, func(i int) {
		c := cells[i]
		bench, err := workload.Get(c.bench)
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		scr := scratchPool.Get().(*pds.Scratch)
		defer scratchPool.Put(scr)
		simOpt := pds.SimOptions{KeepTrace: c.bench == "CFD", Scratch: scr}
		var nr *pds.NoiseResult
		if c.nIVR == 0 {
			nr, err = cs.System.SimulateOffChipVRMContext(runCtx, bench, T, dt, simOpt)
		} else {
			nr, err = cs.System.SimulateIVRContext(runCtx, design, c.nIVR, bench, T, dt, simOpt)
		}
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s / %s: %w", c.bench, configName(c.nIVR), err)
			cancel()
			return
		}
		results[i] = nr
		tracker.cellDone()
	})
	if err := firstCellError(errs); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	res := &Fig10Result{
		CFDTraces:     map[string][]float64{},
		NoiseByConfig: map[string]float64{},
		DroopByConfig: map[string]float64{},
		Configs:       configs,
	}
	for i, nr := range results {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := cells[i]
		res.Cells = append(res.Cells, Fig10Cell{
			Benchmark:  c.bench,
			Config:     nr.Config,
			Stats:      nr.Stats(),
			NoiseVpp:   nr.NoiseVpp,
			WorstDroop: nr.WorstDroop,
		})
		if nr.NoiseVpp > res.NoiseByConfig[nr.Config] {
			res.NoiseByConfig[nr.Config] = nr.NoiseVpp
		}
		if nr.WorstDroop > res.DroopByConfig[nr.Config] {
			res.DroopByConfig[nr.Config] = nr.WorstDroop
		}
		if c.bench == "CFD" {
			if res.CFDTimes == nil {
				res.CFDTimes = nr.Times
			}
			res.CFDTraces[nr.Config] = nr.VCore
		}
	}
	res.RunStats = tracker.finalize(false)
	return res, nil
}

// Format renders the box-plot table (Fig. 10).
func (r *Fig10Result) Format() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Benchmark,
			c.Config,
			fmt.Sprintf("%.4f", c.Stats.Median),
			fmt.Sprintf("%.4f", c.Stats.Q1),
			fmt.Sprintf("%.4f", c.Stats.Q3),
			fmt.Sprintf("%.4f", c.Stats.Min),
			fmt.Sprintf("%.4f", c.Stats.Max),
			fmt.Sprintf("%.1f", c.NoiseVpp*1e3),
		})
	}
	out := "Fig. 10 — voltage-noise statistics per benchmark and VR configuration\n"
	out += table([]string{"benchmark", "config", "median", "Q1", "Q3", "min", "max", "Vpp(mV)"}, rows)
	out += "\nWorst-case noise range per configuration:\n"
	for _, n := range r.configsOrDefault() {
		name := configName(n)
		out += fmt.Sprintf("  %-22s %.1f mV (worst droop %.1f mV)\n",
			name, r.NoiseByConfig[name]*1e3, r.DroopByConfig[name]*1e3)
	}
	return out
}

// configsOrDefault returns the run's configuration list, falling back to
// the case-study set for results built before the field existed.
func (r *Fig10Result) configsOrDefault() []int {
	if len(r.Configs) > 0 {
		return r.Configs
	}
	return noiseConfigs
}

// FormatFig11 renders the CFD waveform comparison (Fig. 11).
func (r *Fig10Result) FormatFig11() string {
	out := "Fig. 11 — CFD supply-voltage traces per VR configuration\n"
	cfgList := r.configsOrDefault()
	configs := make([]string, 0, len(cfgList))
	for _, n := range cfgList {
		configs = append(configs, configName(n))
	}
	out += "Noise ranges: "
	for i, cfg := range configs {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %.0f mV", cfg, numeric.PeakToPeak(r.CFDTraces[cfg])*1e3)
	}
	out += "\n"
	// Waveform excerpt.
	n := len(r.CFDTimes)
	step := n / 16
	if step < 1 {
		step = 1
	}
	header := append([]string{"t(us)"}, configs...)
	rows := [][]string{}
	for k := 0; k < n; k += step {
		row := []string{fmt.Sprintf("%.2f", r.CFDTimes[k]*1e6)}
		for _, cfg := range configs {
			row = append(row, fmt.Sprintf("%.4f", r.CFDTraces[cfg][k]))
		}
		rows = append(rows, row)
	}
	out += table(header, rows)
	return out
}
