package experiments

import (
	"fmt"
	"time"

	"ivory/internal/dynamic"
	"ivory/internal/spice"
)

// Fig4Row is one frequency point of the speedup experiment.
type Fig4Row struct {
	// FSw is the converter switching frequency (Hz).
	FSw float64
	// TSpice and TModel are wall-clock runtimes of the circuit simulator
	// and the cycle-by-cycle + in-cycle model over the same simulated span.
	TSpice, TModel time.Duration
	// Speedup is TSpice / TModel.
	Speedup float64
	// VSpice and VModel are the settled output voltages, demonstrating
	// that the fast model tracks the simulator.
	VSpice, VModel float64
}

// Fig4Result reproduces the paper's Fig. 4: Ivory model speedup over SPICE
// as a function of switching frequency. The spans are chosen so the SPICE
// baseline resolves every switching cycle (64 points per cycle) while the
// model integrates the same interval — exactly the trade the paper
// quantifies at 10^3-10^5x.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 runs the speedup sweep over a fixed simulated span. The circuit
// simulator must resolve every switching cycle (64 points each), so its
// cost grows with f_sw; the combined model's in-cycle step is set by the
// noise band it needs to capture (~2 ns), independent of f_sw — which is
// why the paper's speedup climbs with switching frequency. spanSeconds
// controls the simulated interval (default 5 µs when <= 0).
//
// Note on absolute numbers: the baseline here is this repo's lean MNA
// simulator (no device models, no Newton iterations); commercial SPICE on
// transistor-level netlists costs orders of magnitude more per step, which
// is where the paper's 10^3-10^5x range comes from.
func Fig4(spanSeconds float64) (*Fig4Result, error) {
	if spanSeconds <= 0 {
		spanSeconds = 5e-6
	}
	res := &Fig4Result{}
	iLoad := 0.3
	vin := 1.8
	for _, fsw := range []float64{10e6, 20e6, 50e6, 100e6, 200e6, 500e6} {
		d, top, an, err := mustSC(20e-9, 150, 0.8, 2e9)
		if err != nil {
			return nil, err
		}
		caps, rons := d.ElementValues()
		vPred := an.Ratio*vin - iLoad*d.ROut(fsw)
		ckt, err := spice.BuildSC(top, an, caps, rons, spice.SCOptions{
			VIn: vin, FSw: fsw, CLoad: 400e-9, ILoad: iLoad, VOutIC: vPred,
		})
		if err != nil {
			return nil, err
		}
		T := spanSeconds
		h := 1 / (64 * fsw)

		t0 := time.Now()
		sres, err := ckt.Tran(h, T)
		if err != nil {
			return nil, err
		}
		tSpice := time.Since(t0)
		vSpice := sres.Avg("vout", 0.25)

		// Static/dynamic model prediction of the settled output.
		vModel := vPred

		params := dynamic.SCFromDesign(d)
		params.FClk = fsw
		params.COut = 400e-9 + 10e-9
		sim := &dynamic.SCSimulator{P: params}
		dt := 2e-9
		if tick := 1 / fsw; dt > tick {
			dt = tick
		}
		t0 = time.Now()
		if _, err := sim.Run(dynamic.Constant(iLoad), dynamic.Constant(vModel), T, dt); err != nil {
			return nil, err
		}
		tModel := time.Since(t0)

		speedup := float64(tSpice) / float64(tModel)
		res.Rows = append(res.Rows, Fig4Row{
			FSw: fsw, TSpice: tSpice, TModel: tModel,
			Speedup: speedup, VSpice: vSpice, VModel: vModel,
		})
	}
	return res, nil
}

// Format renders the figure data.
func (r *Fig4Result) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.FSw/1e6),
			row.TSpice.String(),
			row.TModel.String(),
			fmt.Sprintf("%.0fx", row.Speedup),
			fmt.Sprintf("%.4f", row.VSpice),
			fmt.Sprintf("%.4f", row.VModel),
		})
	}
	return "Fig. 4 — Ivory model speedup vs circuit simulation\n" +
		table([]string{"fsw(MHz)", "t_spice", "t_model", "speedup", "V_spice", "V_model"}, rows)
}
