package experiments

import (
	"context"
	"fmt"

	"ivory/internal/report"
	"ivory/internal/soc"
)

// DefaultHybridBudgetMM2 is the shared on-chip regulator area budget the
// hybrid experiment sweeps under: deliberately binding — roughly one big
// domain's SC converter — so the optimizer has to choose which domains
// deserve their on-chip area rather than regulating everything.
const DefaultHybridBudgetMM2 = 25

// HybridResult is the hybrid rail-assignment study: the full domain × rail
// evaluation grid of the default five-domain SoC plus the ranked
// assignments under the area budget.
type HybridResult struct {
	*soc.SweepResult
}

// Hybrid runs the study with default settings.
func Hybrid() (*HybridResult, error) {
	return HybridRun(context.Background(), TransientOptions{})
}

// HybridRun sweeps per-domain rail assignments for the default SoC
// floorplan under the default area budget. Cell evaluation fans out over
// opt.Workers; ranked output is bit-identical at every worker count.
func HybridRun(ctx context.Context, opt TransientOptions) (*HybridResult, error) {
	res, err := soc.Sweep(soc.SweepSpec{
		Context:       ctx,
		Workers:       opt.Workers,
		AreaBudgetMM2: DefaultHybridBudgetMM2,
		Top:           10,
	})
	if err != nil {
		return nil, err
	}
	return &HybridResult{res}, nil
}

// Format renders the cell grid and the ranked assignments.
func (r *HybridResult) Format() string {
	cellRows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		if c.Infeasible != "" {
			cellRows = append(cellRows, []string{
				c.Domain, c.Rail.String(), "-", "-", "-", "-", "infeasible: " + c.Infeasible,
			})
			continue
		}
		cellRows = append(cellRows, []string{
			c.Domain,
			c.Rail.String(),
			fmt.Sprintf("%.1f", c.NoiseVpp*1e3),
			fmt.Sprintf("%.1f", c.MarginV*1e3),
			fmt.Sprintf("%.2f", c.AreaM2*1e6),
			fmt.Sprintf("%.1f", c.Efficiency*100),
			"",
		})
	}
	candRows := make([][]string, 0, len(r.Candidates))
	for i, c := range r.Candidates {
		candRows = append(candRows, []string{
			fmt.Sprintf("%d", i+1),
			c.Key,
			fmt.Sprintf("%.2f", c.Efficiency*100),
			fmt.Sprintf("%.2f", c.AreaM2*1e6),
			fmt.Sprintf("%.1f", c.WorstMarginV*1e3),
		})
	}
	s := r.Stats
	head := fmt.Sprintf(
		"Extension — hybrid per-domain rail assignment (%s, %d domains, budget %.0f mm², %.0f µs @ %.0f ns)\n",
		r.Floorplan, len(r.Cells)/len(r.Rails), r.AreaBudgetMM2, r.T*1e6, r.Dt*1e9)
	return head +
		table([]string{"domain", "rail", "Vpp(mV)", "margin(mV)", "area(mm²)", "eff(%)", "note"}, cellRows) +
		"\n" +
		table([]string{"rank", "assignment", "eff(%)", "area(mm²)", "worst margin(mV)"}, candRows) +
		fmt.Sprintf("\n%d cells (%d infeasible); %d assignments: %d ranked, %d rejected infeasible, %d over budget (%.2g/s)\n",
			s.Cells, s.CellsInfeasible, s.Assignments, s.Ranked, s.RejectedInfeasible, s.RejectedArea, s.AssignmentsPerSec)
}

// WriteCSV emits hybrid_cells.csv (the evaluation grid) and
// hybrid_rank.csv (the ranked assignments).
func (r *HybridResult) WriteCSV(w *report.Writer) error {
	cellRows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		cellRows = append(cellRows, []string{
			c.Domain,
			c.Rail.String(),
			fmt.Sprintf("%g", c.NoiseVpp),
			fmt.Sprintf("%g", c.WorstDroop),
			fmt.Sprintf("%g", c.MarginV),
			fmt.Sprintf("%g", c.AreaM2*1e6),
			fmt.Sprintf("%g", c.Efficiency),
			c.Infeasible,
		})
	}
	if err := w.CSVStrings("hybrid_cells",
		[]string{"domain", "rail", "vpp_v", "worst_droop_v", "margin_v", "area_mm2", "eff", "infeasible"},
		cellRows); err != nil {
		return err
	}
	candRows := make([][]string, 0, len(r.Candidates))
	for i, c := range r.Candidates {
		candRows = append(candRows, []string{
			fmt.Sprintf("%d", i+1),
			c.Key,
			fmt.Sprintf("%g", c.Efficiency),
			fmt.Sprintf("%g", c.AreaM2*1e6),
			fmt.Sprintf("%g", c.WorstMarginV),
		})
	}
	return w.CSVStrings("hybrid_rank",
		[]string{"rank", "assignment", "eff", "area_mm2", "worst_margin_v"}, candRows)
}
