package experiments

import (
	"fmt"
	"math"

	"ivory/internal/buck"
	"ivory/internal/spice"
	"ivory/internal/tech"
)

// Fig8Point is one buck validation point.
type Fig8Point struct {
	// ILoad is the load current (A); VOutTarget the regulation target.
	ILoad, VOutTarget float64
	// EffModel is the analytic efficiency; EffModelCond the
	// conduction-only part (what the ideal-drive netlist captures);
	// EffSim the simulated efficiency; VSim the simulated average output.
	EffModel, EffModelCond, EffSim, VSim float64
	// Err is |EffModelCond - EffSim|.
	Err float64
}

// Fig8Case is one buck configuration's sweep.
type Fig8Case struct {
	Name   string
	Points []Fig8Point
	MaxErr float64
}

// Fig8Result reproduces the paper's Fig. 8: buck converter efficiency
// validation. The measured 2.5-D interposer-inductor converter (45 nm SOI,
// 1/3/4 A) and the Cadence-simulated design (1/2 A) are both replaced by
// switch-level MNA simulations of the same element values — the documented
// substitution.
type Fig8Result struct {
	Cases []Fig8Case
}

// Fig8 runs both validation cases.
func Fig8() (*Fig8Result, error) {
	res := &Fig8Result{}
	run := func(name, node string, vin, vout, l, fsw float64, phases int, loads []float64) error {
		c := Fig8Case{Name: name}
		for _, iLoad := range loads {
			cfg := buck.Config{
				Node:     tech.MustLookup(node),
				Inductor: tech.IntegratedThinFilm,
				OutCap:   tech.DeepTrench,
				VIn:      vin, VOut: vout,
				L: l, COut: 200e-9, FSw: fsw,
				GHigh: 5, GLow: 8, Interleave: phases,
			}
			bd, err := buck.New(cfg)
			if err != nil {
				return err
			}
			bd, err = bd.OptimizeConductances(iLoad)
			if err != nil {
				return err
			}
			m, err := bd.Evaluate(iLoad)
			if err != nil {
				continue // outside the feasible load range
			}
			// Switch-level testbench of a single phase carrying its share.
			bcfg := bd.Config()
			iPh := iLoad / float64(phases)
			duty := bd.Duty(iLoad)
			ind, err := tech.MustLookup(node).Inductor(tech.IntegratedThinFilm)
			if err != nil {
				return err
			}
			ckt, err := spice.BuildBuck(spice.BuckOptions{
				VIn: vin, Duty: duty, FSw: fsw,
				L: ind.LEff(bcfg.L, fsw), RL: ind.Resistance(bcfg.L, fsw),
				COut:  bcfg.COut / float64(phases),
				RHigh: 1 / bcfg.GHigh, RLow: 1 / bcfg.GLow,
				ILoad: iPh,
			})
			if err != nil {
				return err
			}
			pin, pout, effSim, err := spice.MeasureEfficiency(ckt, fsw, 120, 48, spice.DC(iPh))
			if err != nil {
				return err
			}
			_ = pin
			// Conduction-only analytic efficiency: output power over output
			// power plus conduction + magnetic losses.
			pc := m.Loss.Conduction + m.Loss.Magnetic
			effCond := m.POut / (m.POut + pc)
			pt := Fig8Point{
				ILoad: iLoad, VOutTarget: vout,
				EffModel: m.Efficiency, EffModelCond: effCond,
				EffSim: effSim, VSim: pout / iPh,
				Err: math.Abs(effCond - effSim),
			}
			if pt.Err > c.MaxErr {
				c.MaxErr = pt.Err
			}
			c.Points = append(c.Points, pt)
		}
		if len(c.Points) == 0 {
			return fmt.Errorf("experiments: fig8 case %s produced no points", name)
		}
		res.Cases = append(res.Cases, c)
		return nil
	}
	// 2.5-D interposer-class converter at 45 nm, 1/3/4 A.
	if err := run("2.5D buck @45nm", "45nm", 1.8, 0.9, 5e-9, 100e6, 2, []float64{1, 3, 4}); err != nil {
		return nil, err
	}
	// Simulated design, 1/2 A.
	if err := run("buck @22nm", "22nm", 1.5, 0.8, 4e-9, 150e6, 1, []float64{1, 2}); err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders the validation table.
func (r *Fig8Result) Format() string {
	out := "Fig. 8 — buck efficiency validation (model vs switch-level simulation)\n"
	for _, c := range r.Cases {
		rows := make([][]string, 0, len(c.Points))
		for _, p := range c.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%.1f", p.ILoad),
				fmt.Sprintf("%.2f", p.VOutTarget),
				fmt.Sprintf("%.1f", p.EffModel*100),
				fmt.Sprintf("%.1f", p.EffModelCond*100),
				fmt.Sprintf("%.1f", p.EffSim*100),
				fmt.Sprintf("%.3f", p.VSim),
				fmt.Sprintf("%.2f", p.Err*100),
			})
		}
		out += fmt.Sprintf("%s (max err %.2f%%)\n", c.Name, c.MaxErr*100)
		out += table([]string{"I(A)", "Vout(V)", "model(%)", "model-cond(%)", "sim(%)", "V_sim", "err(pp)"}, rows)
	}
	return out
}
