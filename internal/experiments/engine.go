package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ivory/internal/pds"
)

// TransientOptions controls the parallel transient case-study engine shared
// by Fig10/Fig11 (noise + waveforms), Fig13 (power breakdown), Fig12 (area
// sweep), GridScale, and the ablations.
type TransientOptions struct {
	// T and Dt set the simulated span per cell; zero selects the case-study
	// defaults (20 µs at 1 ns).
	T, Dt float64
	// Workers bounds the cell fan-out. <= 0 selects runtime.NumCPU();
	// 1 is the serial reference path. Results are bit-identical for every
	// worker count: cells are independent and merged in enumeration order.
	Workers int
	// Progress, when set, receives a snapshot after every completed cell.
	// It is called from a single goroutine at a time (never reentrantly).
	Progress func(TransientStats)
	// Benchmarks restricts the workload set of the noise engine (Fig10Run)
	// to the named built-in benchmarks (workload.Names()); empty selects
	// every benchmark. A name outside the registry is an input error. The
	// per-figure runners with fixed enumerations (Fig12/Fig13/GridScale/
	// Ablations) ignore the filter.
	Benchmarks []string
	// Configs restricts the VR configurations of the noise engine to the
	// given distributed-IVR counts (0 = off-chip VRM); empty selects the
	// case-study set {0, 1, 2, 4}. Negative counts are an input error.
	// Ignored by the fixed-enumeration runners, like Benchmarks.
	Configs []int
}

// TransientStats is the telemetry record of one transient-engine run,
// mirroring core.Stats for the exploration engine. Cell counters are
// deterministic; cache and wall-clock fields are measurements (the trace
// cache counters are package-wide, so a concurrent run can bleed into the
// diff).
type TransientStats struct {
	// Cells is the number of simulation cells the run enumerates; Done is
	// how many have completed (== Cells on an uncancelled run).
	Cells, Done int
	// TraceCacheHits/Misses are the pds core-current trace memo lookups
	// this run performed.
	TraceCacheHits, TraceCacheMisses int64
	// ExploreWall is time spent in static design-space exploration
	// (selecting the IVR design) before any cell ran; SimWall is the
	// transient fan-out; Wall the total.
	ExploreWall, SimWall, Wall time.Duration
	// CellsPerSec is Done/SimWall.
	CellsPerSec float64
	// Cancelled marks a run stopped by the context before completion.
	Cancelled bool
}

// String renders the one-line run summary the CLIs print.
func (s TransientStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d cells, trace cache %d hit/%d miss, explore %s + sim %s = %s",
		s.Done, s.Cells, s.TraceCacheHits, s.TraceCacheMisses,
		s.ExploreWall.Round(time.Millisecond), s.SimWall.Round(time.Millisecond),
		s.Wall.Round(time.Millisecond))
	if s.CellsPerSec > 0 {
		fmt.Fprintf(&b, " (%.1f cells/s)", s.CellsPerSec)
	}
	if s.Cancelled {
		b.WriteString(" [cancelled]")
	}
	return b.String()
}

// transientTracker accumulates TransientStats during the cell fan-out and
// feeds the optional progress callback, serialized under one mutex exactly
// like core's exploration tracker.
type transientTracker struct {
	mu       sync.Mutex
	stats    TransientStats
	progress func(TransientStats)
	start    time.Time
	simStart time.Time
	// Baselines for diffing the package-wide trace-cache counters.
	hits0, misses0 int64
}

func newTransientTracker(cells int, exploreWall time.Duration, progress func(TransientStats)) *transientTracker {
	t := &transientTracker{progress: progress, start: time.Now(), simStart: time.Now()}
	t.hits0, t.misses0 = pds.TraceCacheStats()
	t.stats.Cells = cells
	t.stats.ExploreWall = exploreWall
	return t
}

// snapshotLocked fills the measurement fields; t.mu must be held.
func (t *transientTracker) snapshotLocked() TransientStats {
	s := t.stats
	h, m := pds.TraceCacheStats()
	s.TraceCacheHits, s.TraceCacheMisses = h-t.hits0, m-t.misses0
	s.SimWall = time.Since(t.simStart)
	s.Wall = s.ExploreWall + s.SimWall
	if secs := s.SimWall.Seconds(); secs > 0 {
		s.CellsPerSec = float64(s.Done) / secs
	}
	return s
}

// cellDone records one completed cell and, when a progress callback is
// registered, hands it a snapshot.
func (t *transientTracker) cellDone() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Done++
	if t.progress != nil {
		t.progress(t.snapshotLocked())
	}
}

// finalize returns the completed record.
func (t *transientTracker) finalize(cancelled bool) TransientStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.snapshotLocked()
	s.Cancelled = cancelled
	return s
}

// firstCellError picks the error to surface from a cell fan-out: the first
// real failure in enumeration order. Cancellation-shaped errors are held
// back — when one cell fails it cancels the shared run context, and sibling
// cells then fail with context.Canceled; reporting one of those instead of
// the root cause would hide the actual failing cell.
func firstCellError(errs []error) error {
	var cancelErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = e
			}
			continue
		}
		return e
	}
	return cancelErr
}

// scratchPool recycles pds simulation scratch across cells and runs. Each
// in-flight cell holds exactly one Scratch, so the pool's live set is
// bounded by the worker count.
var scratchPool = sync.Pool{New: func() any { return new(pds.Scratch) }}
