package experiments

import (
	"fmt"
	"math"

	"ivory/internal/sc"
	"ivory/internal/spice"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

// Fig7Point is one validation point: the analytic model against the
// switch-level simulation at an output-voltage setting.
type Fig7Point struct {
	// VOutTarget is the regulation target.
	VOutTarget float64
	// EffModel is the full analytic efficiency; EffModelCond is the
	// conduction-only efficiency (the quantity the switch-level netlist
	// captures, since its drives are ideal); EffSim is the simulated one.
	EffModel, EffModelCond, EffSim float64
	// Err is |EffModelCond - EffSim|.
	Err float64
}

// Fig7Case is one converter configuration's validation sweep.
type Fig7Case struct {
	// Name describes the configuration (ratio, node, capacitor flavour).
	Name string
	// Points are the sweep results up to the efficiency cliff.
	Points []Fig7Point
	// MaxErr is the worst conduction-efficiency disagreement.
	MaxErr float64
}

// Fig7Result reproduces the paper's Fig. 7: SC converter efficiency
// validation. The left plot's silicon measurements (32 nm SOI 3:2 and 2:1)
// and the right plot's Cadence simulations (2:1 and 3:1 at low/high
// capacitor density) are both replaced by this repo's MNA simulator — the
// documented substitution — so every case compares the analytic model
// against a switch-level simulation of the same netlist.
type Fig7Result struct {
	Cases []Fig7Case
}

// Fig7 runs all four validation cases.
func Fig7() (*Fig7Result, error) {
	res := &Fig7Result{}
	run := func(name string, p, q int, node string, kind tech.CapacitorKind, vin float64, ctot, gtot, iload float64, vLo, vHi float64) error {
		top, err := topology.SeriesParallel(p, q)
		if err != nil {
			return err
		}
		an, err := top.Analyze()
		if err != nil {
			return err
		}
		c := Fig7Case{Name: name}
		for k := 0; k < 7; k++ {
			target := vLo + (vHi-vLo)*float64(k)/6
			d, err := sc.New(sc.Config{
				Analysis: an, Node: tech.MustLookup(node), CapKind: kind,
				VIn: vin, VOut: target, CTotal: ctot, GTotal: gtot, CDecap: ctot / 4,
				FSwMax: 2e9,
			})
			if err != nil {
				continue // past the cliff: non-functional region
			}
			m, err := d.Evaluate(iload)
			if err != nil {
				continue
			}
			caps, rons := d.ElementValues()
			// A stiff output rail (>> flying capacitance) matches the SSL
			// model's assumption; the paper's testbenches decouple the
			// output the same way.
			ckt, err := spice.BuildSC(top, an, caps, rons, spice.SCOptions{
				VIn: vin, FSw: m.FSw, CLoad: 20 * ctot, ILoad: iload, VOutIC: m.VOut,
			})
			if err != nil {
				return err
			}
			_, pout, effSim, err := spice.MeasureEfficiency(ckt, m.FSw, 60, 48, spice.DC(iload))
			if err != nil {
				return err
			}
			_ = pout
			effCond := m.VOut / (an.Ratio * vin)
			pt := Fig7Point{
				VOutTarget:   target,
				EffModel:     m.Efficiency,
				EffModelCond: effCond,
				EffSim:       effSim,
				Err:          math.Abs(effCond - effSim),
			}
			if pt.Err > c.MaxErr {
				c.MaxErr = pt.Err
			}
			c.Points = append(c.Points, pt)
		}
		if len(c.Points) == 0 {
			return fmt.Errorf("experiments: fig7 case %s produced no functional points", name)
		}
		res.Cases = append(res.Cases, c)
		return nil
	}
	// Left plot stand-ins: 32 nm, 3:2 and 2:1 (the reconfigurable silicon).
	if err := run("3:2 @32nm trench", 3, 2, "32nm", tech.DeepTrench, 1.8, 30e-9, 120, 0.3, 0.90, 1.17); err != nil {
		return nil, err
	}
	if err := run("2:1 @32nm trench", 2, 1, "32nm", tech.DeepTrench, 1.8, 30e-9, 120, 0.3, 0.62, 0.87); err != nil {
		return nil, err
	}
	// Right plot stand-ins: low density (MOS caps) vs high density (trench).
	if err := run("2:1 @22nm low-density", 2, 1, "22nm", tech.MOSCap, 1.6, 10e-9, 80, 0.15, 0.55, 0.77); err != nil {
		return nil, err
	}
	if err := run("3:1 @22nm high-density", 3, 1, "22nm", tech.DeepTrench, 1.6, 30e-9, 80, 0.1, 0.38, 0.51); err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders the validation table.
func (r *Fig7Result) Format() string {
	out := "Fig. 7 — SC efficiency validation (model vs switch-level simulation)\n"
	for _, c := range r.Cases {
		rows := make([][]string, 0, len(c.Points))
		for _, p := range c.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%.3f", p.VOutTarget),
				fmt.Sprintf("%.1f", p.EffModel*100),
				fmt.Sprintf("%.1f", p.EffModelCond*100),
				fmt.Sprintf("%.1f", p.EffSim*100),
				fmt.Sprintf("%.2f", p.Err*100),
			})
		}
		out += fmt.Sprintf("%s (max err %.2f%%)\n", c.Name, c.MaxErr*100)
		out += table([]string{"Vout(V)", "model(%)", "model-cond(%)", "sim(%)", "err(pp)"}, rows)
	}
	return out
}
