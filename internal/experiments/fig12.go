package experiments

import (
	"context"
	"fmt"

	"ivory/internal/core"
	"ivory/internal/parallel"
)

// Fig12Point is one area budget's best-efficiency outcome per family.
type Fig12Point struct {
	// AreaMM2 is the budget in mm².
	AreaMM2 float64
	// EffSC, EffBuck, EffLDO are the best efficiencies (negative when
	// infeasible at this budget).
	EffSC, EffBuck, EffLDO float64
}

// Fig12Result reproduces the paper's Fig. 12: the IVR efficiency trade-off
// with area. SC efficiency climbs steeply with capacitance area and
// overtakes the buck once the budget affords enough flying capacitance;
// the LDO is area-insensitive but ratio-bound.
type Fig12Result struct {
	Points []Fig12Point
	// CrossoverMM2 is the smallest budget where SC beats buck (0 when it
	// never does in the sweep).
	CrossoverMM2 float64
}

// Fig12 sweeps the area budget for the case-study operating point.
func Fig12() (*Fig12Result, error) {
	return Fig12Context(context.Background())
}

// Fig12Context is Fig12 with run control threaded into each per-budget
// exploration.
func Fig12Context(ctx context.Context) (*Fig12Result, error) {
	return Fig12Run(ctx, TransientOptions{})
}

// Fig12Run fans the per-budget explorations out over opt.Workers; the
// crossover scan runs on the merged, budget-ordered points, so the result
// matches the serial sweep for every worker count.
func Fig12Run(ctx context.Context, opt TransientOptions) (*Fig12Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	budgets := []float64{2, 4, 6, 10, 14, 20, 28, 40}
	points := make([]Fig12Point, len(budgets))
	ferr := parallel.ForContext(ctx, len(budgets), opt.Workers, func(i int) {
		areaMM2 := budgets[i]
		spec := cs.Spec
		spec.AreaMax = areaMM2 * 1e-6
		spec.Context = ctx
		pt := Fig12Point{AreaMM2: areaMM2, EffSC: -1, EffBuck: -1, EffLDO: -1}
		// An exploration error at one budget means the budget is infeasible
		// (unless the whole run was cancelled, which the post-merge check
		// below surfaces): the point stays at its "-" sentinel values.
		if r, err := core.Explore(spec); err == nil {
			if c, ok := r.BestOfKind(core.KindSC); ok {
				pt.EffSC = c.Metrics.Efficiency
			}
			if c, ok := r.BestOfKind(core.KindBuck); ok {
				pt.EffBuck = c.Metrics.Efficiency
			}
			if c, ok := r.BestOfKind(core.KindLDO); ok {
				pt.EffLDO = c.Metrics.Efficiency
			}
		}
		points[i] = pt
	})
	if ferr != nil {
		return nil, ferr
	}
	if err := ctx.Err(); err != nil {
		// Cancellation, not an infeasible budget: discard the partial sweep.
		return nil, err
	}
	res := &Fig12Result{Points: points}
	for _, pt := range points {
		if res.CrossoverMM2 == 0 && pt.EffSC > pt.EffBuck && pt.EffSC > 0 && pt.EffBuck > 0 {
			res.CrossoverMM2 = pt.AreaMM2
		}
	}
	return res, nil
}

// Format renders the trade-off table.
func (r *Fig12Result) Format() string {
	rows := make([][]string, 0, len(r.Points))
	fmtEff := func(e float64) string {
		if e < 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", e*100)
	}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.AreaMM2),
			fmtEff(p.EffSC),
			fmtEff(p.EffBuck),
			fmtEff(p.EffLDO),
		})
	}
	out := "Fig. 12 — IVR efficiency trade-off with area budget\n"
	out += table([]string{"area(mm2)", "SC(%)", "buck(%)", "LDO(%)"}, rows)
	if r.CrossoverMM2 > 0 {
		out += fmt.Sprintf("SC overtakes buck at ~%.0f mm2\n", r.CrossoverMM2)
	}
	return out
}
