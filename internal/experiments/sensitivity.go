package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ivory/internal/core"
	"ivory/internal/numeric"
	"ivory/internal/sc"
	"ivory/internal/tech"
)

// VariationResult is a Monte-Carlo process-variation study of the
// case-study SC design. The paper notes that both SC and buck efficiency
// "is sensitive to device parameters which depend on technology and process
// options"; this quantifies that sensitivity: switch on-resistance, gate
// capacitance, and capacitor density are perturbed log-normally and the
// winning design is re-evaluated (same sizing — the fabricated design
// cannot re-optimize itself).
type VariationResult struct {
	// Samples is the Monte-Carlo count; Sigma the per-parameter relative
	// spread.
	Samples int
	Sigma   float64
	// Nominal is the unperturbed efficiency.
	Nominal float64
	// Stats summarizes the efficiency distribution.
	Stats numeric.Summary
	// FailFraction is the share of samples where the perturbed design
	// cannot reach the regulation target at full load.
	FailFraction float64
}

// Variation runs the Monte-Carlo study.
func Variation(samples int, sigma float64) (*VariationResult, error) {
	return VariationContext(context.Background(), samples, sigma)
}

// VariationContext is Variation with run control: it cancels the baseline
// exploration and is re-checked between Monte-Carlo samples.
func VariationContext(ctx context.Context, samples int, sigma float64) (*VariationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if samples <= 0 {
		samples = 200
	}
	if sigma <= 0 {
		sigma = 0.10 // 10 % (3-sigma ~ 30 %): early-stage corner spread
	}
	cs, err := NewCaseSystem()
	if err != nil {
		return nil, err
	}
	spec := cs.Spec
	spec.VOut = 0.9
	spec.Context = ctx
	res, err := core.Explore(spec)
	if err != nil {
		return nil, err
	}
	cand, ok := res.BestOfKind(core.KindSC)
	if !ok {
		return nil, fmt.Errorf("experiments: no SC design for the variation study")
	}
	baseCfg := cand.SC.Config()
	baseNode := baseCfg.Node
	out := &VariationResult{Samples: samples, Sigma: sigma, Nominal: cand.Metrics.Efficiency}

	rng := rand.New(rand.NewSource(seed))
	var effs []float64
	fails := 0
	for k := 0; k < samples; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		node := perturbNode(baseNode, sigma, rng, k)
		cfg := baseCfg
		cfg.Node = node
		// The fabricated capacitor bank shrinks/grows with density.
		capBase, err1 := baseNode.Capacitor(cfg.CapKind)
		capVar, err2 := node.Capacitor(cfg.CapKind)
		if err1 == nil && err2 == nil && capBase.DensityFPerM2 > 0 {
			cfg.CTotal *= capVar.DensityFPerM2 / capBase.DensityFPerM2
			cfg.CDecap *= capVar.DensityFPerM2 / capBase.DensityFPerM2
		}
		d, err := sc.New(cfg)
		if err != nil {
			fails++
			continue
		}
		m, err := d.Evaluate(spec.IMax)
		if err != nil {
			fails++
			continue
		}
		effs = append(effs, m.Efficiency)
	}
	out.Stats = numeric.Summarize(effs)
	out.FailFraction = float64(fails) / float64(samples)
	return out, nil
}

// perturbNode returns a copy of the node with log-normal-ish multiplicative
// perturbations on the process-sensitive parameters.
func perturbNode(n *tech.Node, sigma float64, rng *rand.Rand, k int) *tech.Node {
	mul := func() float64 {
		m := 1 + sigma*rng.NormFloat64()
		if m < 0.5 {
			m = 0.5
		}
		if m > 1.5 {
			m = 1.5
		}
		return m
	}
	out := *n
	out.Name = fmt.Sprintf("%s-mc%d", n.Name, k)
	out.Switches = map[tech.DeviceClass]tech.SwitchDevice{}
	for class, sw := range n.Switches {
		sw.ROnWidth *= mul()
		sw.CGatePerWidth *= mul()
		out.Switches[class] = sw
	}
	out.Capacitors = map[tech.CapacitorKind]tech.CapacitorOption{}
	for kind, c := range n.Capacitors {
		c.DensityFPerM2 *= mul()
		out.Capacitors[kind] = c
	}
	out.Inductors = n.Inductors
	return &out
}

// Format renders the study.
func (r *VariationResult) Format() string {
	s := r.Stats
	out := fmt.Sprintf("Extension — process-variation sensitivity (%d samples, %.0f%% sigma per parameter)\n",
		r.Samples, r.Sigma*100)
	out += fmt.Sprintf("nominal efficiency: %.1f%%\n", r.Nominal*100)
	out += fmt.Sprintf("distribution: min %.1f%%, Q1 %.1f%%, median %.1f%%, Q3 %.1f%%, max %.1f%% (std %.2f pp)\n",
		s.Min*100, s.Q1*100, s.Median*100, s.Q3*100, s.Max*100, s.Std*100)
	out += fmt.Sprintf("regulation failures at full load: %.1f%% of corners\n", r.FailFraction*100)
	return out
}

// NodeSweepRow is one technology node's best case-study design.
type NodeSweepRow struct {
	Node       string
	Kind       string
	Label      string
	Efficiency float64
	AreaMM2    float64
	FSwMHz     float64
	Feasible   bool
}

// NodeSweepResult explores the case-study spec across every built-in
// technology node — the cross-technology optimization the paper's
// conclusion highlights ("optimizing across technologies and topologies
// can yield efficiency and area savings otherwise missed").
type NodeSweepResult struct {
	Rows []NodeSweepRow
}

// NodeSweep runs the per-node exploration.
func NodeSweep() (*NodeSweepResult, error) {
	return NodeSweepContext(context.Background())
}

// NodeSweepContext is NodeSweep with run control threaded into each
// per-node exploration.
func NodeSweepContext(ctx context.Context) (*NodeSweepResult, error) {
	out := &NodeSweepResult{}
	for _, name := range tech.Nodes() {
		spec := core.CaseStudySpec(name)
		spec.Context = ctx
		row := NodeSweepRow{Node: name}
		res, err := core.Explore(spec)
		if err != nil && ctx != nil && ctx.Err() != nil {
			// Cancellation, not an infeasible node: stop the sweep.
			return nil, ctx.Err()
		}
		if err == nil {
			best := res.Best
			row.Kind = best.Kind.String()
			row.Label = best.Label
			row.Efficiency = best.Metrics.Efficiency
			row.AreaMM2 = best.Metrics.AreaDie * 1e6
			row.FSwMHz = best.Metrics.FSw / 1e6
			row.Feasible = true
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders the sweep.
func (r *NodeSweepResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		if !row.Feasible {
			rows = append(rows, []string{row.Node, "-", "-", "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			row.Node, row.Kind,
			fmt.Sprintf("%.1f", row.Efficiency*100),
			fmt.Sprintf("%.1f", row.AreaMM2),
			fmt.Sprintf("%.0f", row.FSwMHz),
			row.Label,
		})
	}
	return "Extension — best case-study design per technology node\n" +
		table([]string{"node", "kind", "eff(%)", "area(mm2)", "fsw(MHz)", "design"}, rows)
}
