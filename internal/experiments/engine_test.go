package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// Determinism is the engine's core contract: the benchmark × configuration
// fan-out must be bit-identical to the serial path for every worker count.
func TestFig10RunDeterministicAcrossWorkers(t *testing.T) {
	opt := TransientOptions{T: 4e-6, Dt: 1e-9}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	var ref *Fig10Result
	for _, w := range workerCounts {
		o := opt
		o.Workers = w
		r, err := Fig10Run(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if r.RunStats.Done != r.RunStats.Cells || r.RunStats.Cells != len(r.Cells) {
			t.Errorf("workers=%d: telemetry cells %d/%d vs %d results",
				w, r.RunStats.Done, r.RunStats.Cells, len(r.Cells))
		}
		if ref == nil {
			ref = r
			continue
		}
		if !reflect.DeepEqual(ref.Cells, r.Cells) {
			t.Errorf("workers=%d: Cells diverge from the serial run", w)
		}
		if !reflect.DeepEqual(ref.NoiseByConfig, r.NoiseByConfig) {
			t.Errorf("workers=%d: NoiseByConfig diverges: %v vs %v", w, r.NoiseByConfig, ref.NoiseByConfig)
		}
		if !reflect.DeepEqual(ref.DroopByConfig, r.DroopByConfig) {
			t.Errorf("workers=%d: DroopByConfig diverges", w)
		}
		if !reflect.DeepEqual(ref.CFDTimes, r.CFDTimes) || !reflect.DeepEqual(ref.CFDTraces, r.CFDTraces) {
			t.Errorf("workers=%d: CFD waveforms diverge", w)
		}
	}
	// Only CFD cells retain waveforms; box-plot cells must not drag the full
	// traces along.
	if len(ref.CFDTraces) != len(noiseConfigs) {
		t.Errorf("expected %d CFD traces, got %d", len(noiseConfigs), len(ref.CFDTraces))
	}
}

func TestFig13RunDeterministicAcrossWorkers(t *testing.T) {
	noise, err := Fig10Run(context.Background(), TransientOptions{T: 4e-6, Dt: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Fig13Run(context.Background(), noise, TransientOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig13Run(context.Background(), noise, TransientOptions{Workers: runtime.NumCPU() + 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Breakdowns, par.Breakdowns) {
		t.Error("Breakdowns diverge across worker counts")
	}
	if !reflect.DeepEqual(ref.Margins, par.Margins) {
		t.Error("Margins diverge across worker counts")
	}
	if ref.BestConfig != par.BestConfig ||
		math.Float64bits(ref.ImprovementPP) != math.Float64bits(par.ImprovementPP) {
		t.Errorf("headline result diverges: %s %+v pp vs %s %+v pp",
			par.BestConfig, par.ImprovementPP, ref.BestConfig, ref.ImprovementPP)
	}
}

func TestGridScaleRunDeterministicAcrossWorkers(t *testing.T) {
	ref, err := GridScaleRun(context.Background(), TransientOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := GridScaleRun(context.Background(), TransientOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Rows, par.Rows) {
		t.Errorf("grid-scaling rows diverge across worker counts:\n%v\nvs\n%v", par.Rows, ref.Rows)
	}
}

// A cancelled run surfaces a cancellation-shaped error rather than a partial
// result, whether cancelled before or during the fan-out.
func TestFig10RunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig10Run(ctx, TransientOptions{T: 4e-6, Dt: 1e-9}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: want context.Canceled, got %v", err)
	}
	// Cancel from the progress callback: the run is mid-fan-out with cells
	// still pending, so the cancellation must land inside a simulation cell.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	fired := 0
	_, err := Fig10Run(ctx2, TransientOptions{T: 4e-6, Dt: 1e-9, Progress: func(TransientStats) {
		fired++
		if fired == 1 {
			cancel2()
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation: want context.Canceled, got %v", err)
	}
}

// Fig13Run threads its context through both phases (the per-configuration
// explorations and the breakdown merge); a pre-cancelled run must fail
// fast with a cancellation-shaped error instead of sizing designs.
func TestFig13RunCancellation(t *testing.T) {
	noise, err := Fig10Run(context.Background(), TransientOptions{T: 4e-6, Dt: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig13Run(ctx, noise, TransientOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: want context.Canceled, got %v", err)
	}
}

// The progress callback sees monotonically increasing completion and the
// final telemetry accounts for every cell.
func TestFig10RunProgress(t *testing.T) {
	var mu sync.Mutex
	var done []int
	r, err := Fig10Run(context.Background(), TransientOptions{T: 4e-6, Dt: 1e-9, Progress: func(s TransientStats) {
		mu.Lock()
		done = append(done, s.Done)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != r.RunStats.Cells {
		t.Fatalf("progress fired %d times for %d cells", len(done), r.RunStats.Cells)
	}
	for i := 1; i < len(done); i++ {
		if done[i] != done[i-1]+1 {
			t.Fatalf("progress counter not monotone: %v", done)
		}
	}
	if r.RunStats.SimWall <= 0 || r.RunStats.Wall < r.RunStats.SimWall {
		t.Errorf("wall-clock telemetry inconsistent: %+v", r.RunStats)
	}
	if r.RunStats.TraceCacheHits+r.RunStats.TraceCacheMisses == 0 {
		t.Error("run performed no trace-cache lookups")
	}
	s := r.RunStats.String()
	for _, want := range []string{"cells", "trace cache", "explore"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats summary missing %q: %s", want, s)
		}
	}
}

func TestAblationsRunDeterministicAcrossWorkers(t *testing.T) {
	ref, err := AblationsRun(context.Background(), TransientOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AblationsRun(context.Background(), TransientOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Rows, par.Rows) {
		t.Errorf("ablation rows diverge across worker counts:\n%v\nvs\n%v", par.Rows, ref.Rows)
	}
}

func TestFirstCellError(t *testing.T) {
	real1 := fmt.Errorf("cell 3: %w", errors.New("diverged"))
	canc := fmt.Errorf("cell 1: %w", context.Canceled)
	if got := firstCellError([]error{nil, canc, nil, real1}); got != real1 {
		t.Errorf("real failure must outrank sibling cancellations, got %v", got)
	}
	if got := firstCellError([]error{nil, canc, nil}); got != canc {
		t.Errorf("cancellation surfaces when it is the only error, got %v", got)
	}
	if got := firstCellError([]error{nil, nil}); got != nil {
		t.Errorf("no errors must return nil, got %v", got)
	}
}
