package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivory/internal/report"

	"ivory/internal/numeric"
)

// Every extension result emits plot-ready CSVs.
func TestExtensionCSVWriters(t *testing.T) {
	dir := t.TempDir()
	w := report.NewWriter(dir)
	g, err := Gears()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteCSV(w); err != nil {
		t.Fatal(err)
	}
	gs, err := GridScale()
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.WriteCSV(w); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"gears.csv", "gridscale.csv"} {
		raw, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(raw)), "\n")) < 3 {
			t.Errorf("%s: too few rows", f)
		}
	}
}

func TestAblationsAllMeaningful(t *testing.T) {
	r, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("expected 4 ablations, got %d", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	// Cost-aware allocation must beat the uniform split.
	if a := byName["cost-aware G allocation"]; a.Baseline <= a.Ablated {
		t.Errorf("cost-aware allocation should win: %.2f vs %.2f", a.Baseline, a.Ablated)
	}
	// Charge recycling must improve efficiency.
	if a := byName["bottom-plate charge recycling"]; a.Baseline <= a.Ablated {
		t.Errorf("recycling should win: %.2f vs %.2f", a.Baseline, a.Ablated)
	}
	// Ignoring inductor roll-off underestimates ripple.
	if a := byName["inductor L(f) roll-off"]; a.Baseline <= a.Ablated {
		t.Errorf("roll-off should increase ripple: %.3f vs %.3f", a.Baseline, a.Ablated)
	}
	// The cycle-only model misrepresents high-frequency ripple.
	if a := byName["in-cycle model"]; numeric.ApproxEqual(a.Baseline, a.Ablated, 0) {
		t.Error("in-cycle model should change the HF ripple estimate")
	}
	if !strings.Contains(r.Format(), "Ablations") {
		t.Error("Format incomplete")
	}
}

func TestTwoStageExploration(t *testing.T) {
	r, err := TwoStage()
	if err != nil {
		t.Fatal(err)
	}
	inner := r.Inner
	if inner.Best == nil {
		t.Fatal("no feasible two-stage design")
	}
	feasible := 0
	for _, row := range inner.Rows {
		if !row.Feasible {
			continue
		}
		feasible++
		if row.Combined > row.Stage1Eff || row.Combined > row.Stage2Eff {
			t.Errorf("Vmid %.2f: combined efficiency exceeds a stage", row.VMid)
		}
		if row.Combined <= 0 || row.Combined >= 1 {
			t.Errorf("Vmid %.2f: combined %.3f out of range", row.VMid, row.Combined)
		}
	}
	if feasible < 3 {
		t.Errorf("only %d feasible intermediate rails", feasible)
	}
	// The best intermediate rail should sit well below the source: deep
	// first-stage conversion is cheap off-chip, shallow second-stage
	// conversion is cheap on-chip.
	if inner.Best.VMid > 2.4 {
		t.Errorf("best Vmid %.2f implausibly close to the source", inner.Best.VMid)
	}
	if !strings.Contains(r.Format(), "two-stage") {
		t.Error("Format incomplete")
	}
}

func TestVariationStudy(t *testing.T) {
	r, err := Variation(80, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.N < 60 {
		t.Fatalf("too few surviving samples: %d", r.Stats.N)
	}
	// The distribution brackets the nominal point.
	if !(r.Stats.Min <= r.Nominal && r.Nominal <= r.Stats.Max) {
		t.Errorf("nominal %.3f outside [%v, %v]", r.Nominal, r.Stats.Min, r.Stats.Max)
	}
	// 10% parameter spread should not move efficiency by more than a few
	// points either way — the regulation loop absorbs parameter shifts.
	if r.Stats.Std > 0.05 {
		t.Errorf("efficiency spread implausibly wide: %.3f", r.Stats.Std)
	}
	if r.FailFraction > 0.2 {
		t.Errorf("too many corner failures: %.2f", r.FailFraction)
	}
	if !strings.Contains(r.Format(), "process-variation") {
		t.Error("Format incomplete")
	}
}

func TestNodeSweepTrends(t *testing.T) {
	r, err := NodeSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 8 {
		t.Fatalf("expected all builtin nodes, got %d", len(r.Rows))
	}
	byNode := map[string]NodeSweepRow{}
	for _, row := range r.Rows {
		byNode[row.Node] = row
	}
	// Advanced nodes (dense trench caps, better switches) favor the SC and
	// beat the oldest node's best design.
	new14, ok1 := byNode["14nm"]
	old130, ok2 := byNode["130nm"]
	if !ok1 || !ok2 || !new14.Feasible || !old130.Feasible {
		t.Fatal("missing node rows")
	}
	if new14.Kind != "SC" {
		t.Errorf("14nm winner should be SC, got %s", new14.Kind)
	}
	if new14.Efficiency <= old130.Efficiency {
		t.Errorf("scaling should help: 14nm %.3f vs 130nm %.3f", new14.Efficiency, old130.Efficiency)
	}
	if !strings.Contains(r.Format(), "per technology node") {
		t.Error("Format incomplete")
	}
}

func TestGearsEnvelope(t *testing.T) {
	r, err := Gears()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.VOut) < 15 {
		t.Fatalf("envelope too short: %d", len(r.VOut))
	}
	// Exactly one gear shift, in the crossing window between the 2:1 and
	// 3:2 ideal outputs (0.9 V and 1.2 V ideals at 1.8 V in).
	if len(r.ShiftV) != 1 {
		t.Fatalf("expected one gear shift, got %v", r.ShiftV)
	}
	if r.ShiftV[0] < 0.8 || r.ShiftV[0] > 1.0 {
		t.Errorf("shift at %.2f V outside the crossing window", r.ShiftV[0])
	}
	// Low targets use gear 0 (2:1), high targets gear 1 (3:2).
	if r.Gear[0] != 0 || r.Gear[len(r.Gear)-1] != 1 {
		t.Errorf("gear assignment wrong: %v", r.Gear)
	}
	if !strings.Contains(r.Format(), "gear shift") {
		t.Error("Format incomplete")
	}
}

func TestGridScaleMonotone(t *testing.T) {
	r, err := GridScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("expected 4 distribution counts, got %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].REff > r.Rows[i-1].REff+1e-12 {
			t.Errorf("grid resistance should not grow with distribution: %v", r.Rows)
		}
	}
	// Point-of-load (N = cores) cuts the spreading resistance strongly.
	if r.Rows[2].Ratio > 0.6 {
		t.Errorf("4 IVRs should cut grid resistance well below centralized: ratio %.2f", r.Rows[2].Ratio)
	}
	// But not to zero: the core regions are larger than a tap.
	if r.Rows[2].REff <= 0 {
		t.Error("core regions should retain residual spreading resistance")
	}
	if !strings.Contains(r.Format(), "grid-resistance scaling") {
		t.Error("Format incomplete")
	}
}

func TestFamilyTransientsOrdering(t *testing.T) {
	r, err := FamilyTransients()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("expected 3 families, got %d", len(r.Rows))
	}
	byName := map[string]FamilyTransientRow{}
	for _, row := range r.Rows {
		byName[row.Family] = row
		if row.WorstDroopMV <= 0 {
			t.Errorf("%s: no droop measured", row.Family)
		}
		if row.RecoveryNS < 0 || row.RecoveryNS > 5000 {
			t.Errorf("%s: recovery %.0f ns implausible", row.Family, row.RecoveryNS)
		}
	}
	// The SC's charge reservoir gives it the smallest droop; the buck's
	// inductor slew + loop latency the largest.
	sc := byName["SC (hysteretic)"]
	buck := byName["buck (PI)"]
	if sc.WorstDroopMV >= buck.WorstDroopMV {
		t.Errorf("SC droop %.1f should be below buck %.1f", sc.WorstDroopMV, buck.WorstDroopMV)
	}
	if !strings.Contains(r.Format(), "family transient") {
		t.Error("Format incomplete")
	}
}

func TestFastDVFSBehaviour(t *testing.T) {
	r, err := FastDVFS()
	if err != nil {
		t.Fatal(err)
	}
	// Transitions at nanosecond scale — the headline IVR capability.
	if r.UpTransitionNS <= 0 || r.UpTransitionNS > 500 {
		t.Errorf("up transition %.0f ns implausible", r.UpTransitionNS)
	}
	if r.DownTransitionNS <= 0 || r.DownTransitionNS > 2000 {
		t.Errorf("down transition %.0f ns implausible", r.DownTransitionNS)
	}
	if len(r.Rows) < 4 {
		t.Fatal("too few schedule periods")
	}
	// Savings are positive everywhere and non-decreasing with period.
	for i, row := range r.Rows {
		if row.EnergySavingPct <= 0 {
			t.Errorf("period %.1f us: no energy saving (%.1f%%)", row.PeriodUS, row.EnergySavingPct)
		}
		if row.ResidencyPct < 0 || row.ResidencyPct > 100 {
			t.Errorf("period %.1f us: residency %.1f%%", row.PeriodUS, row.ResidencyPct)
		}
		if i > 0 && row.EnergySavingPct < r.Rows[i-1].EnergySavingPct-1e-9 {
			t.Errorf("savings should not fall with longer periods")
		}
	}
	if !strings.Contains(r.Format(), "DVFS") {
		t.Error("Format incomplete")
	}
}
