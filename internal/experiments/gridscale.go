package experiments

import (
	"context"
	"fmt"

	"ivory/internal/grid"
	"ivory/internal/parallel"
)

// GridScaleRow is one distribution count's geometric grid analysis.
type GridScaleRow struct {
	// N is the IVR count; Taps the chosen placements.
	N    int
	Taps []grid.Point
	// REff is the worst-case effective grid resistance over the cores
	// (ohm), and Ratio its value relative to the centralized case.
	REff, Ratio float64
	// InvN is the 1/N reference the lumped PDS model assumes.
	InvN float64
}

// GridScaleResult grounds the PDS model's "grid impedance divided by the
// IVR count" assumption in floorplan geometry: a 2-D mesh of the 4-SM die
// with IVR taps placed by the heuristic, solved exactly.
type GridScaleResult struct {
	MeshW, MeshH int
	RTile        float64
	Rows         []GridScaleRow
}

// GridScale runs the placement study on a 24x24-tile mesh of the
// case-study die.
func GridScale() (*GridScaleResult, error) {
	return GridScaleContext(context.Background())
}

// GridScaleContext is GridScale with run control threaded into the
// placement heuristic and the region resistance sweeps.
func GridScaleContext(ctx context.Context) (*GridScaleResult, error) {
	return GridScaleRun(ctx, TransientOptions{})
}

// GridScaleRun fans the per-distribution-count analyses (placement, solver
// factorization, region sweep) out over opt.Workers. The Ratio column needs
// the centralized row as its reference, so ratios are derived after the
// deterministic per-index merge — results are identical for every worker
// count.
func GridScaleRun(ctx context.Context, opt TransientOptions) (*GridScaleResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// 20 mm2 die -> ~4.5 mm on a side; 24 tiles of ~190 um at ~27 mohm/sq
	// sheet and a handful of squares per tile link.
	m, err := grid.NewMesh(24, 24, 0.05)
	if err != nil {
		return nil, err
	}
	centers := m.QuadCores()
	// Each SM occupies a 3x3-tile region around its center; the worst tile
	// of any region sets the spreading resistance (a regulator tap cannot
	// cover a whole core).
	var region []grid.Point
	for _, c := range centers {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				region = append(region, grid.Point{X: c.X + dx, Y: c.Y + dy})
			}
		}
	}
	res := &GridScaleResult{MeshW: m.W, MeshH: m.H, RTile: m.RTile}
	counts := []int{1, 2, 4, 8}
	rows := make([]GridScaleRow, len(counts))
	errs := make([]error, len(counts))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ferr := parallel.ForContext(runCtx, len(counts), opt.Workers, func(i int) {
		n := counts[i]
		taps, err := m.PlaceIVRsContext(runCtx, n, centers)
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		// One solver context per tap set: the Laplacian is factored once and
		// reused for every per-tile solve in the region sweep.
		s, err := m.NewSolver(taps)
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		r, err := s.WorstCaseResistanceContext(runCtx, region)
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		rows[i] = GridScaleRow{N: n, Taps: taps, REff: r, InvN: 1 / float64(n)}
	})
	if err := firstCellError(errs); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	r1 := rows[0].REff
	for i := range rows {
		if r1 > 0 {
			rows[i].Ratio = rows[i].REff / r1
		}
	}
	res.Rows = rows
	return res, nil
}

// Format renders the study.
func (r *GridScaleResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.4f", row.REff),
			fmt.Sprintf("%.2f", row.Ratio),
			fmt.Sprintf("%.2f", row.InvN),
			fmt.Sprintf("%v", row.Taps),
		})
	}
	return fmt.Sprintf("Extension — grid-resistance scaling with IVR distribution (%dx%d mesh, %.0f mΩ/link)\n",
		r.MeshW, r.MeshH, r.RTile*1e3) +
		table([]string{"IVRs", "worst R_eff(Ω)", "vs centralized", "1/N ref", "placements"}, rows)
}
