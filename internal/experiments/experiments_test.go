package experiments

import (
	"strings"
	"testing"

	"ivory/internal/numeric"
)

func TestFig4SpeedupShape(t *testing.T) {
	r, err := Fig4(2e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("too few frequency points: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Speedup <= 1 {
			t.Errorf("fsw %.0f MHz: model not faster than simulation (%.1fx)", row.FSw/1e6, row.Speedup)
		}
		// Model voltage tracks the simulation within a few percent.
		if d := row.VSpice - row.VModel; d > 0.05 || d < -0.05 {
			t.Errorf("fsw %.0f MHz: V mismatch: sim %.4f vs model %.4f", row.FSw/1e6, row.VSpice, row.VModel)
		}
	}
	// Speedup grows with switching frequency (the paper's trend).
	first, last := r.Rows[0].Speedup, r.Rows[len(r.Rows)-1].Speedup
	if last < 3*first {
		t.Errorf("speedup should grow strongly with fsw: %.0fx -> %.0fx", first, last)
	}
	if !strings.Contains(r.Format(), "speedup") {
		t.Error("Format output incomplete")
	}
}

func TestFig6RegulationShape(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tones) != 3 {
		t.Fatalf("expected 3 tones, got %d", len(r.Tones))
	}
	// Below fsw: active regulation clearly beats the bare capacitor.
	if r.Tones[0].Ratio > 0.5 {
		t.Errorf("below fsw the converter should regulate: conv/cap = %.2f", r.Tones[0].Ratio)
	}
	// At/above fsw: converter and capacitor are equivalent (paper Eq. 5).
	for _, tn := range r.Tones[1:] {
		if tn.Ratio < 0.6 || tn.Ratio > 1.6 {
			t.Errorf("tone %.0f MHz: conv/cap = %.2f, want ~1", tn.Freq/1e6, tn.Ratio)
		}
	}
	// The analytic model agrees qualitatively.
	if r.AnalyticAdvantage[0] < 2 {
		t.Errorf("analytic advantage below fsw should be large: %v", r.AnalyticAdvantage[0])
	}
	if !strings.Contains(r.Format(), "regulation effect") {
		t.Error("Format output incomplete")
	}
}

func TestFig7ValidationAccuracy(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 4 {
		t.Fatalf("expected 4 validation cases, got %d", len(r.Cases))
	}
	for _, c := range r.Cases {
		if len(c.Points) < 4 {
			t.Errorf("%s: only %d functional points", c.Name, len(c.Points))
		}
		// Conduction model vs simulation within 3 percentage points over
		// the functional range.
		if c.MaxErr > 0.03 {
			t.Errorf("%s: max model-vs-sim error %.2f%%", c.Name, c.MaxErr*100)
		}
		// Efficiency increases with V_out up to the peak (paper's shape).
		for i := 1; i < len(c.Points)-1; i++ {
			if c.Points[i].EffModelCond < c.Points[i-1].EffModelCond {
				t.Errorf("%s: conduction efficiency not rising with V_out", c.Name)
				break
			}
		}
	}
	if !strings.Contains(r.Format(), "SC efficiency validation") {
		t.Error("Format output incomplete")
	}
}

func TestFig8ValidationAccuracy(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 2 {
		t.Fatalf("expected 2 buck cases, got %d", len(r.Cases))
	}
	for _, c := range r.Cases {
		if c.MaxErr > 0.03 {
			t.Errorf("%s: max error %.2f%%", c.Name, c.MaxErr*100)
		}
		// Efficiency falls with load (conduction grows quadratically) —
		// the measured converter's shape in the paper.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].EffModel >= c.Points[i-1].EffModel {
				t.Errorf("%s: efficiency should fall with load", c.Name)
			}
		}
	}
}

func TestFig9TransientAccuracy(t *testing.T) {
	r, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Cycle-by-cycle: settled-level agreement within 10 mV RMS.
	if r.CycleRMSE > 0.010 {
		t.Errorf("cycle-by-cycle RMSE %.2f mV too large", r.CycleRMSE*1e3)
	}
	// In-cycle ripple within 15%.
	if r.InCycleErr > 0.15 {
		t.Errorf("in-cycle ripple error %.1f%%", r.InCycleErr*100)
	}
	if len(r.CycleTimes) < 50 {
		t.Error("too few comparison samples")
	}
}

func TestTable1Contents(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"20", "3.3", "0.85", "45nm"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	eff := map[string]float64{}
	for _, row := range tbl.Rows {
		for i, ok := range row.Feasible {
			if ok {
				eff[row.Kind.String()] = row.Efficiency[i]
				break
			}
			_ = i
		}
	}
	if !(eff["SC"] > eff["buck"] && eff["buck"] > eff["LDO"]) {
		t.Errorf("Table 2 ordering violated: %v", eff)
	}
}

func TestFig10And11NoiseOrdering(t *testing.T) {
	r, err := Fig10(10e-6, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 7*4 {
		t.Fatalf("expected 28 cells, got %d", len(r.Cells))
	}
	off := r.NoiseByConfig["off-chip VRM"]
	cen := r.NoiseByConfig["centralized IVR"]
	four := r.NoiseByConfig["4 distributed IVRs"]
	if !(off > cen && cen > four) {
		t.Errorf("worst-case noise ordering violated: off %.3f, cen %.3f, 4d %.3f", off, cen, four)
	}
	// CFD waveforms exist for all four configurations.
	if len(r.CFDTraces) != 4 {
		t.Errorf("expected 4 CFD traces, got %d", len(r.CFDTraces))
	}
	if !strings.Contains(r.FormatFig11(), "CFD") || !strings.Contains(r.Format(), "Vpp") {
		t.Error("format output incomplete")
	}
}

func TestFig12AreaTradeoff(t *testing.T) {
	r, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 5 {
		t.Fatalf("too few area points: %d", len(r.Points))
	}
	// SC efficiency grows with area budget; LDO is area-insensitive.
	var firstSC, lastSC float64 = -1, -1
	for _, p := range r.Points {
		if p.EffSC > 0 {
			if firstSC < 0 {
				firstSC = p.EffSC
			}
			lastSC = p.EffSC
		}
	}
	if firstSC < 0 || lastSC <= firstSC {
		t.Errorf("SC efficiency should grow with area: %.3f -> %.3f", firstSC, lastSC)
	}
	// At the case-study budget (20 mm2) SC beats buck.
	for _, p := range r.Points {
		if numeric.ApproxEqual(p.AreaMM2, 20, 0) {
			if p.EffSC <= p.EffBuck {
				t.Errorf("at 20 mm2 SC should beat buck: %.3f vs %.3f", p.EffSC, p.EffBuck)
			}
		}
	}
}

func TestFig13IVRWins(t *testing.T) {
	noise, err := Fig10(10e-6, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig13(noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Breakdowns) != 4 {
		t.Fatalf("expected 4 breakdowns, got %d", len(r.Breakdowns))
	}
	// The headline result: a distributed-IVR PDS beats the off-chip VRM.
	if r.ImprovementPP <= 0 {
		t.Errorf("IVR PDS should win: improvement %.1f pp", r.ImprovementPP)
	}
	if r.ImprovementPP > 25 {
		t.Errorf("improvement %.1f pp implausibly large", r.ImprovementPP)
	}
	if !strings.Contains(r.BestConfig, "distributed") {
		t.Errorf("best config should be distributed: %s", r.BestConfig)
	}
	// Every breakdown's ladder sums to the source power.
	for _, b := range r.Breakdowns {
		sum := b.PCoreUseful + b.PMargin + b.PGridIR + b.PIVRLoss + b.PPDNIR + b.PVRMLoss
		if d := (b.PSource - sum) / b.PSource; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: ladder does not sum: %v vs %v", b.Config, b.PSource, sum)
		}
	}
	if !strings.Contains(r.Format(), "delivery efficiency") {
		t.Error("Format output incomplete")
	}
}
