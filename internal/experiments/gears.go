package experiments

import (
	"fmt"

	"ivory/internal/sc"
	"ivory/internal/tech"
	"ivory/internal/topology"
)

// GearsResult studies a reconfigurable (gear-shifting) SC converter of the
// style the paper validates in Fig. 7's left plot: one 32 nm fabric that
// reconfigures between the 3:2 and 2:1 ratios, with the governor selecting
// the better gear per output voltage — the DVFS-companion behaviour.
type GearsResult struct {
	// VOut / Envelope / Gear trace the best-gear efficiency envelope.
	VOut, Envelope []float64
	Gear           []int
	// GearNames labels the gears.
	GearNames []string
	// ShiftV are the gear-shift voltages found on the envelope.
	ShiftV []float64
}

// Gears runs the envelope sweep.
func Gears() (*GearsResult, error) {
	var gears []*topology.Analysis
	names := []string{"2:1", "3:2"}
	for _, pq := range [][2]int{{2, 1}, {3, 2}} {
		top, err := topology.SeriesParallel(pq[0], pq[1])
		if err != nil {
			return nil, err
		}
		an, err := top.Analyze()
		if err != nil {
			return nil, err
		}
		gears = append(gears, an)
	}
	base := sc.Config{
		Node:    tech.MustLookup("32nm"),
		CapKind: tech.DeepTrench,
		VIn:     1.8,
		VOut:    0.8,
		CTotal:  60e-9,
		GTotal:  150,
		CDecap:  15e-9,
	}
	r, err := sc.NewReconfigurable(base, gears)
	if err != nil {
		return nil, err
	}
	iLoad := 0.3
	vout, eff, gear := r.EfficiencyEnvelope(iLoad, 0.60, 1.15, 23)
	if len(vout) == 0 {
		return nil, fmt.Errorf("experiments: empty gear envelope")
	}
	return &GearsResult{
		VOut:      vout,
		Envelope:  eff,
		Gear:      gear,
		GearNames: names,
		ShiftV:    r.ShiftPoints(iLoad, 0.60, 1.15, 23),
	}, nil
}

// Format renders the envelope.
func (r *GearsResult) Format() string {
	rows := make([][]string, 0, len(r.VOut))
	for i := range r.VOut {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", r.VOut[i]),
			fmt.Sprintf("%.1f", r.Envelope[i]*100),
			r.GearNames[r.Gear[i]],
		})
	}
	out := "Extension — reconfigurable (gear-shifting) SC converter envelope\n"
	out += table([]string{"Vout(V)", "eff(%)", "gear"}, rows)
	for _, s := range r.ShiftV {
		out += fmt.Sprintf("gear shift at ~%.2f V\n", s)
	}
	return out
}
