// Package topology models two-phase switched-capacitor converter topologies
// and computes their charge-multiplier vectors using the analytical
// methodology of Seeman & Sanders that the paper adopts.
//
// A topology is a netlist of flying/DC capacitors and phase-assigned
// switches between nodes. From it the package derives, fully analytically:
//
//   - the ideal (no-load) conversion ratio M = Vout/Vin,
//   - the capacitor charge-multiplier vector a_c (charge through each
//     capacitor per unit output charge),
//   - the switch charge-multiplier vector a_r,
//   - per-element voltage ratings (capacitor DC voltage, switch blocking
//     voltage), needed to choose device classes from the technology database.
//
// These feed the paper's Eq. (1): R_SSL = (Σ|a_c|)²/(C_tot·f_sw) and
// R_FSL = (Σ|a_r|)²/(G_tot·D_cyc) under optimal capacitance/conductance
// allocation.
//
// Built-in generators cover the families Ivory ships (series-parallel and
// symmetric ladder for any supported ratio) plus Dickson, Fibonacci, and
// doubler topologies; advanced users can also supply charge-multiplier
// vectors directly via Custom, mirroring the paper's plug-in interface.
package topology

import (
	"fmt"
	"math"

	"ivory/internal/numeric"
)

// Node identifies a circuit node. Three nodes are reserved; internal nodes
// are created with Builder.NewNode.
type Node int

const (
	// Gnd is the ground reference.
	Gnd Node = 0
	// Vin is the converter input terminal.
	Vin Node = 1
	// Vout is the converter output terminal.
	Vout Node = 2

	numReserved = 3
)

// Phase identifies one of the two non-overlapping switching phases.
type Phase int

const (
	// Phi1 is the first switching phase.
	Phi1 Phase = 1
	// Phi2 is the second switching phase.
	Phi2 Phase = 2
)

// other returns the complementary phase.
func (p Phase) other() Phase {
	if p == Phi1 {
		return Phi2
	}
	return Phi1
}

// Cap is a capacitor element between Pos and Neg. Both flying and DC
// (rail-attached) capacitors are expressed this way.
type Cap struct {
	Pos, Neg Node
	// Label is an optional human-readable designator (e.g. "C1", "Dc2").
	Label string
}

// Switch is a switch element closed during Phase and open otherwise.
type Switch struct {
	A, B  Node
	Phase Phase
	// Label is an optional designator.
	Label string
}

// Topology is a two-phase switched-capacitor converter netlist.
type Topology struct {
	// Name describes the topology, e.g. "series-parallel 3:1".
	Name     string
	numNodes int
	Caps     []Cap
	Switches []Switch
}

// Builder incrementally constructs a Topology.
type Builder struct {
	t Topology
}

// NewBuilder returns a Builder for a named topology.
func NewBuilder(name string) *Builder {
	return &Builder{t: Topology{Name: name, numNodes: numReserved}}
}

// NewNode allocates a fresh internal node.
func (b *Builder) NewNode() Node {
	n := Node(b.t.numNodes)
	b.t.numNodes++
	return n
}

// AddCap adds a capacitor between pos and neg.
func (b *Builder) AddCap(pos, neg Node, label string) {
	b.t.Caps = append(b.t.Caps, Cap{Pos: pos, Neg: neg, Label: label})
}

// AddSwitch adds a switch between a and b, closed during phase.
func (b *Builder) AddSwitch(a, bb Node, phase Phase, label string) {
	b.t.Switches = append(b.t.Switches, Switch{A: a, B: bb, Phase: phase, Label: label})
}

// Build returns the completed topology.
func (b *Builder) Build() *Topology {
	t := b.t // copy
	return &t
}

// NumNodes returns the total node count including the three reserved nodes.
func (t *Topology) NumNodes() int { return t.numNodes }

// Analysis is the analytical characterization of a topology.
type Analysis struct {
	// Name echoes the topology name.
	Name string
	// Ratio is the ideal no-load conversion ratio M = Vout/Vin.
	Ratio float64
	// CapMultipliers holds |a_c,i| per capacitor (unit output charge).
	CapMultipliers []float64
	// SwitchMultipliers holds |a_r,i| per switch.
	SwitchMultipliers []float64
	// SumAC = Σ|a_c,i| — the SSL metric of Eq. (1).
	SumAC float64
	// SumAR = Σ|a_r,i| — the FSL metric of Eq. (1).
	SumAR float64
	// CapVoltages holds each capacitor's DC voltage as a fraction of Vin.
	CapVoltages []float64
	// CapBottomSwing holds the phase-to-phase voltage swing of each
	// capacitor's negative (bottom) plate as a fraction of Vin; it drives
	// the bottom-plate parasitic loss term.
	CapBottomSwing []float64
	// SwitchBlockVoltages holds each switch's off-state blocking voltage as
	// a fraction of Vin.
	SwitchBlockVoltages []float64
	// InputCharge is the net charge drawn from Vin per unit output charge.
	// For a lossless two-port it equals Ratio (power conservation), a
	// property the test suite checks for every generated topology.
	InputCharge float64
	// NumCaps and NumSwitches are element counts.
	NumCaps, NumSwitches int
}

const (
	ridge       = 1e-11
	residualTol = 1e-6
)

// Analyze solves the topology for its ideal ratio and charge-multiplier
// vectors. It returns an error for inconsistent netlists (e.g. a switch
// network that shorts the input) or degenerate ones (no output path).
//
// Results are memoized package-wide by canonical netlist (see cache.go):
// repeated analyses of the same topology — every Explore call re-derives
// the handful of ratios in its search window — return the cached Analysis.
// The returned Analysis is shared; treat it as read-only.
func (t *Topology) Analyze() (*Analysis, error) {
	return t.analyzeCached()
}

// analyze is the uncached solve behind Analyze.
func (t *Topology) analyze() (*Analysis, error) {
	if len(t.Caps) == 0 && len(t.Switches) == 0 {
		return nil, fmt.Errorf("topology %s: empty netlist", t.Name)
	}
	v1, v2, vc, ratio, err := t.solveKVL()
	if err != nil {
		return nil, err
	}
	qc, qs, qin, err := t.solveKCL()
	if err != nil {
		return nil, err
	}
	an := &Analysis{
		Name:                t.Name,
		Ratio:               ratio,
		CapMultipliers:      make([]float64, len(t.Caps)),
		SwitchMultipliers:   make([]float64, len(t.Switches)),
		CapVoltages:         make([]float64, len(t.Caps)),
		CapBottomSwing:      make([]float64, len(t.Caps)),
		SwitchBlockVoltages: make([]float64, len(t.Switches)),
		InputCharge:         qin,
		NumCaps:             len(t.Caps),
		NumSwitches:         len(t.Switches),
	}
	for i, c := range t.Caps {
		an.CapMultipliers[i] = math.Abs(qc[i])
		an.CapVoltages[i] = math.Abs(vc[i])
		an.CapBottomSwing[i] = math.Abs(v1[c.Neg] - v2[c.Neg])
		an.SumAC += an.CapMultipliers[i]
	}
	for i, sw := range t.Switches {
		an.SwitchMultipliers[i] = math.Abs(qs[i])
		an.SumAR += an.SwitchMultipliers[i]
		// Blocking voltage in the off phase.
		var va, vb float64
		if sw.Phase == Phi1 {
			va, vb = v2[sw.A], v2[sw.B]
		} else {
			va, vb = v1[sw.A], v1[sw.B]
		}
		an.SwitchBlockVoltages[i] = math.Abs(va - vb)
	}
	return an, nil
}

// solveKVL solves for per-phase node potentials (normalized to Vin = 1),
// capacitor DC voltages, and the ideal ratio.
func (t *Topology) solveKVL() (v1, v2, vc []float64, ratio float64, err error) {
	n := t.numNodes
	nc := len(t.Caps)
	// Unknown layout: [v1(0..n-1), v2(0..n-1), vc(0..nc-1), M]
	cols := 2*n + nc + 1
	idxV := func(ph Phase, node Node) int {
		if ph == Phi1 {
			return int(node)
		}
		return n + int(node)
	}
	idxC := func(i int) int { return 2*n + i }
	idxM := 2*n + nc

	var rows [][]float64
	var rhs []float64
	addRow := func(entries map[int]float64, b float64) {
		row := make([]float64, cols)
		for j, v := range entries {
			row[j] = v
		}
		rows = append(rows, row)
		rhs = append(rhs, b)
	}
	for _, ph := range []Phase{Phi1, Phi2} {
		addRow(map[int]float64{idxV(ph, Gnd): 1}, 0)
		addRow(map[int]float64{idxV(ph, Vin): 1}, 1)
		addRow(map[int]float64{idxV(ph, Vout): 1, idxM: -1}, 0)
		for i, c := range t.Caps {
			addRow(map[int]float64{idxV(ph, c.Pos): 1, idxV(ph, c.Neg): -1, idxC(i): -1}, 0)
		}
	}
	for _, sw := range t.Switches {
		addRow(map[int]float64{idxV(sw.Phase, sw.A): 1, idxV(sw.Phase, sw.B): -1}, 0)
	}
	a := numeric.NewMatrixFrom(rows)
	x, err := numeric.LeastSquares(a, rhs, ridge)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("topology %s: KVL solve failed: %w", t.Name, err)
	}
	// Verify the least-squares solution actually satisfies the equations:
	// a large residual means the netlist over-constrains the voltages (e.g.
	// switches shorting Vin to Gnd in one phase).
	res := a.MulVec(x)
	for i := range res {
		res[i] -= rhs[i]
	}
	if numeric.Norm2(res) > residualTol {
		return nil, nil, nil, 0, fmt.Errorf("topology %s: inconsistent voltage constraints (residual %.2g) — netlist shorts a source or fights itself", t.Name, numeric.Norm2(res))
	}
	v1 = x[:n]
	v2 = x[n : 2*n]
	vc = x[2*n : 2*n+nc]
	ratio = x[idxM]
	if ratio <= 1e-9 {
		return nil, nil, nil, 0, fmt.Errorf("topology %s: degenerate conversion ratio %.3g — output not driven", t.Name, ratio)
	}
	return v1, v2, vc, ratio, nil
}

// solveKCL solves the per-phase charge-flow balance for one unit of output
// charge per cycle and returns per-capacitor and per-switch charges.
// Capacitor charge is parameterized as +q in phase 1 and -q in phase 2
// (periodic steady state). Where parallel switch paths make the flow
// distribution ambiguous, the minimum-norm solution is returned, which
// corresponds to the optimal (loss-minimizing) split assumed by the
// optimal-sizing SSL/FSL formulas.
func (t *Topology) solveKCL() (qc, qs []float64, qin float64, err error) {
	n := t.numNodes
	nc := len(t.Caps)
	ns := len(t.Switches)
	// Unknown layout: [qc(0..nc-1), qs(0..ns-1), qin1, qin2, qout1, qout2]
	cols := nc + ns + 4
	idxQC := func(i int) int { return i }
	idxQS := func(i int) int { return nc + i }
	idxIn := func(ph Phase) int { return nc + ns + int(ph) - 1 }
	idxOut := func(ph Phase) int { return nc + ns + 2 + int(ph) - 1 }

	var rows [][]float64
	var rhs []float64
	addRow := func(row []float64, b float64) {
		rows = append(rows, row)
		rhs = append(rhs, b)
	}
	for _, ph := range []Phase{Phi1, Phi2} {
		sign := 1.0
		if ph == Phi2 {
			sign = -1.0
		}
		for node := Node(0); node < Node(n); node++ {
			if node == Gnd {
				continue // ground absorbs the slack; skip to avoid redundancy
			}
			row := make([]float64, cols)
			used := false
			for i, c := range t.Caps {
				if c.Pos == node {
					row[idxQC(i)] -= sign // charge leaves node into cap + terminal
					used = true
				}
				if c.Neg == node {
					row[idxQC(i)] += sign
					used = true
				}
			}
			for i, sw := range t.Switches {
				if sw.Phase != ph {
					continue
				}
				if sw.A == node {
					row[idxQS(i)] -= 1 // positive qs flows A -> B
					used = true
				}
				if sw.B == node {
					row[idxQS(i)] += 1
					used = true
				}
			}
			if node == Vin {
				row[idxIn(ph)] += 1
				used = true
			}
			if node == Vout {
				row[idxOut(ph)] -= 1
				used = true
			}
			if used {
				addRow(row, 0)
			}
		}
	}
	// Normalize: one unit of charge delivered to the output per cycle.
	row := make([]float64, cols)
	row[idxOut(Phi1)] = 1
	row[idxOut(Phi2)] = 1
	addRow(row, 1)

	a := numeric.NewMatrixFrom(rows)
	x, err := numeric.LeastSquares(a, rhs, ridge)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("topology %s: KCL solve failed: %w", t.Name, err)
	}
	res := a.MulVec(x)
	for i := range res {
		res[i] -= rhs[i]
	}
	if numeric.Norm2(res) > residualTol {
		return nil, nil, 0, fmt.Errorf("topology %s: charge flow infeasible (residual %.2g) — no conductive path to the output", t.Name, numeric.Norm2(res))
	}
	qin = x[idxIn(Phi1)] + x[idxIn(Phi2)]
	return x[:nc], x[nc : nc+ns], qin, nil
}

// Custom wraps explicitly supplied charge-multiplier vectors into an
// Analysis, the escape hatch the paper offers advanced users. Voltage
// ratings default to the larger of |ratio| and |1-ratio| per element when
// not supplied.
func Custom(name string, ratio float64, capMult, switchMult []float64) (*Analysis, error) {
	if ratio <= 0 {
		return nil, fmt.Errorf("topology: custom %s: ratio must be positive", name)
	}
	if len(capMult) == 0 || len(switchMult) == 0 {
		return nil, fmt.Errorf("topology: custom %s: multiplier vectors must be non-empty", name)
	}
	an := &Analysis{
		Name:                name,
		Ratio:               ratio,
		CapMultipliers:      append([]float64(nil), capMult...),
		SwitchMultipliers:   append([]float64(nil), switchMult...),
		CapVoltages:         make([]float64, len(capMult)),
		CapBottomSwing:      make([]float64, len(capMult)),
		SwitchBlockVoltages: make([]float64, len(switchMult)),
		InputCharge:         ratio,
		NumCaps:             len(capMult),
		NumSwitches:         len(switchMult),
	}
	rating := math.Max(ratio, 1-ratio)
	for i, m := range capMult {
		if m < 0 {
			return nil, fmt.Errorf("topology: custom %s: negative capacitor multiplier", name)
		}
		an.SumAC += m
		an.CapVoltages[i] = rating
		an.CapBottomSwing[i] = ratio // conservative default for user topologies
	}
	for i, m := range switchMult {
		if m < 0 {
			return nil, fmt.Errorf("topology: custom %s: negative switch multiplier", name)
		}
		an.SumAR += m
		an.SwitchBlockVoltages[i] = rating
	}
	return an, nil
}
