package topology

import "fmt"

// Cascade composes two analyzed stages into the analysis of the series
// connection A -> B (A's output feeds B's input) — the hierarchical
// composition of multi-stage conversion the paper supports. Per unit of
// final output charge, stage B moves its own multipliers directly, while
// stage A must source B's input charge (M_B per unit out, by charge
// conservation in an ideal stage), so A's multipliers scale by M_B.
// Element voltage ratings are referred to the overall input: B's elements
// see voltages scaled by A's ratio.
//
// The result is exact for the ideal (no-load) ratio and for the SSL/FSL
// multiplier bookkeeping; inter-stage decoupling is assumed stiff, which is
// the same assumption the per-stage models make about their rails.
func Cascade(name string, a, b *Analysis) (*Analysis, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("topology: Cascade needs two analyses")
	}
	if a.Ratio <= 0 || b.Ratio <= 0 {
		return nil, fmt.Errorf("topology: Cascade needs positive stage ratios")
	}
	if name == "" {
		name = fmt.Sprintf("%s -> %s", a.Name, b.Name)
	}
	out := &Analysis{
		Name:        name,
		Ratio:       a.Ratio * b.Ratio,
		NumCaps:     a.NumCaps + b.NumCaps,
		NumSwitches: a.NumSwitches + b.NumSwitches,
	}
	out.InputCharge = out.Ratio
	// Stage A: multipliers scale by B's input charge per unit final output.
	for i, m := range a.CapMultipliers {
		out.CapMultipliers = append(out.CapMultipliers, m*b.Ratio)
		out.CapVoltages = append(out.CapVoltages, a.CapVoltages[i])
		out.CapBottomSwing = append(out.CapBottomSwing, a.CapBottomSwing[i])
	}
	for i, m := range a.SwitchMultipliers {
		out.SwitchMultipliers = append(out.SwitchMultipliers, m*b.Ratio)
		out.SwitchBlockVoltages = append(out.SwitchBlockVoltages, a.SwitchBlockVoltages[i])
	}
	// Stage B: multipliers pass through; voltages are fractions of B's
	// input, which is a.Ratio of the overall input.
	for i, m := range b.CapMultipliers {
		out.CapMultipliers = append(out.CapMultipliers, m)
		out.CapVoltages = append(out.CapVoltages, b.CapVoltages[i]*a.Ratio)
		out.CapBottomSwing = append(out.CapBottomSwing, b.CapBottomSwing[i]*a.Ratio)
	}
	for i, m := range b.SwitchMultipliers {
		out.SwitchMultipliers = append(out.SwitchMultipliers, m)
		out.SwitchBlockVoltages = append(out.SwitchBlockVoltages, b.SwitchBlockVoltages[i]*a.Ratio)
	}
	for _, m := range out.CapMultipliers {
		out.SumAC += m
	}
	for _, m := range out.SwitchMultipliers {
		out.SumAR += m
	}
	return out, nil
}
