package topology

import "fmt"

// SeriesParallel returns the series-parallel converter with conversion
// ratio q/p (input p : output q, e.g. 3:1 or 3:2). The series-parallel
// family realizes the classic 1/p ratios (q = 1) and the complementary
// (p-1)/p ratios (q = p-1); other fractional ratios belong to the ladder
// family (see Ladder).
func SeriesParallel(p, q int) (*Topology, error) {
	if p < 2 || q < 1 || q >= p {
		return nil, fmt.Errorf("topology: series-parallel %d:%d: need p >= 2 and 1 <= q < p", p, q)
	}
	switch {
	case q == 1:
		return spDown(p), nil
	case q == p-1:
		return spFractional(p), nil
	default:
		return nil, fmt.Errorf("topology: series-parallel %d:%d not in the family (q must be 1 or p-1); use Ladder(%d, %d)", p, q, p, q)
	}
}

// spDown builds the classic series-parallel p:1 step-down converter:
// phase 1 stacks the p-1 flying caps in series between Vin and Vout, phase 2
// parallels all caps with the output.
func spDown(p int) *Topology {
	b := NewBuilder(fmt.Sprintf("series-parallel %d:1", p))
	nCaps := p - 1
	pos := make([]Node, nCaps)
	neg := make([]Node, nCaps)
	for i := 0; i < nCaps; i++ {
		pos[i] = b.NewNode()
		neg[i] = b.NewNode()
		b.AddCap(pos[i], neg[i], fmt.Sprintf("C%d", i+1))
	}
	// Phase 1: Vin - C1 - C2 - ... - C(p-1) - Vout chain.
	b.AddSwitch(Vin, pos[0], Phi1, "s_in")
	for i := 0; i < nCaps-1; i++ {
		b.AddSwitch(neg[i], pos[i+1], Phi1, fmt.Sprintf("s_link%d", i+1))
	}
	b.AddSwitch(neg[nCaps-1], Vout, Phi1, "s_out1")
	// Phase 2: every cap in parallel with the output.
	for i := 0; i < nCaps; i++ {
		b.AddSwitch(pos[i], Vout, Phi2, fmt.Sprintf("s_top%d", i+1))
		b.AddSwitch(neg[i], Gnd, Phi2, fmt.Sprintf("s_bot%d", i+1))
	}
	return b.Build()
}

// spFractional builds the series-parallel p:(p-1) converter: phase 1
// charges each of the p-1 caps between Vin and Vout (to Vin/p each), phase 2
// stacks them from ground to the output.
func spFractional(p int) *Topology {
	b := NewBuilder(fmt.Sprintf("series-parallel %d:%d", p, p-1))
	nCaps := p - 1
	pos := make([]Node, nCaps)
	neg := make([]Node, nCaps)
	for i := 0; i < nCaps; i++ {
		pos[i] = b.NewNode()
		neg[i] = b.NewNode()
		b.AddCap(pos[i], neg[i], fmt.Sprintf("C%d", i+1))
	}
	// Phase 1: each cap between Vin (pos) and Vout (neg).
	for i := 0; i < nCaps; i++ {
		b.AddSwitch(Vin, pos[i], Phi1, fmt.Sprintf("s_in%d", i+1))
		b.AddSwitch(neg[i], Vout, Phi1, fmt.Sprintf("s_mid%d", i+1))
	}
	// Phase 2: series stack Gnd - C(p-1) ... C1 - Vout.
	b.AddSwitch(neg[nCaps-1], Gnd, Phi2, "s_gnd")
	for i := nCaps - 1; i > 0; i-- {
		b.AddSwitch(pos[i], neg[i-1], Phi2, fmt.Sprintf("s_stk%d", i))
	}
	b.AddSwitch(pos[0], Vout, Phi2, "s_out2")
	return b.Build()
}

// Ladder returns the symmetric ladder converter with ratio q/p. The ladder
// consists of a DC capacitor string dividing Vin into p equal rungs, with
// p-1 flying capacitors that alternate between adjacent rungs to enforce the
// equal division; the output taps rung q. Any 1 <= q < p is supported,
// which is why the paper pairs the ladder with series-parallel as its two
// built-in families.
func Ladder(p, q int) (*Topology, error) {
	if p < 2 || q < 1 || q >= p {
		return nil, fmt.Errorf("topology: ladder %d:%d: need p >= 2 and 1 <= q < p", p, q)
	}
	b := NewBuilder(fmt.Sprintf("ladder %d:%d", p, q))
	// Rung nodes u_0 = Gnd, u_1 ... u_{p-1}, u_p = Vin; u_q = Vout.
	rung := make([]Node, p+1)
	rung[0] = Gnd
	rung[p] = Vin
	for j := 1; j < p; j++ {
		if j == q {
			rung[j] = Vout
		} else {
			rung[j] = b.NewNode()
		}
	}
	// DC string: one cap per rung interval. The interval attached to both
	// rails (only possible when p == 1) cannot occur here.
	for j := 1; j <= p; j++ {
		b.AddCap(rung[j], rung[j-1], fmt.Sprintf("D%d", j))
	}
	// Flying caps F_j alternate across interval j (phase 1) and j+1 (phase 2).
	for j := 1; j < p; j++ {
		fp := b.NewNode()
		fn := b.NewNode()
		b.AddCap(fp, fn, fmt.Sprintf("F%d", j))
		b.AddSwitch(fp, rung[j], Phi1, fmt.Sprintf("sF%d_t1", j))
		b.AddSwitch(fn, rung[j-1], Phi1, fmt.Sprintf("sF%d_b1", j))
		b.AddSwitch(fp, rung[j+1], Phi2, fmt.Sprintf("sF%d_t2", j))
		b.AddSwitch(fn, rung[j], Phi2, fmt.Sprintf("sF%d_b2", j))
	}
	return b.Build(), nil
}

// Dickson returns the Dickson (charge-pump) converter configured as a p:1
// step-down. It is generated as the canonical 1:p step-up ladder of
// alternately clocked flying caps and then operated in reverse, which yields
// the same charge-multiplier magnitudes.
func Dickson(p int) (*Topology, error) {
	if p < 2 {
		return nil, fmt.Errorf("topology: dickson %d:1: need p >= 2", p)
	}
	// Build step-down directly: think of the step-up pump from Vout (low
	// rail, here the output) to Vin and reverse the power flow. Cap j
	// (j = 1..p-1) has its bottom plate toggled between Gnd and Vout, and
	// its top plate switched along a chain whose far end reaches Vin.
	b := NewBuilder(fmt.Sprintf("dickson %d:1", p))
	tops := make([]Node, p-1)
	for j := 0; j < p-1; j++ {
		top := b.NewNode()
		bot := b.NewNode()
		tops[j] = top
		b.AddCap(top, bot, fmt.Sprintf("C%d", j+1))
		// Alternate the bottom-plate drive phase along the chain.
		chargePh := Phi1
		if j%2 == 1 {
			chargePh = Phi2
		}
		b.AddSwitch(bot, Gnd, chargePh, fmt.Sprintf("sB%d_g", j+1))
		b.AddSwitch(bot, Vout, chargePh.other(), fmt.Sprintf("sB%d_o", j+1))
	}
	// Top-plate chain: Vout -> C1 -> C2 -> ... -> C(p-1) -> Vin.
	// C_j charges (top connects toward the output side) in its charge phase
	// and hands charge up-chain in the other phase.
	for j := 0; j < p-1; j++ {
		chargePh := Phi1
		if j%2 == 1 {
			chargePh = Phi2
		}
		var lower Node
		if j == 0 {
			lower = Vout
		} else {
			lower = tops[j-1]
		}
		b.AddSwitch(tops[j], lower, chargePh, fmt.Sprintf("sT%d_lo", j+1))
	}
	// Last cap connects to Vin in its boost phase.
	lastPh := Phi1
	if (p-2)%2 == 1 {
		lastPh = Phi2
	}
	b.AddSwitch(tops[p-2], Vin, lastPh.other(), "sT_in")
	return b.Build(), nil
}

// Doubler returns a cascade of k 2:1 stages, realizing a 2^k : 1 step-down.
// Intermediate stages hand off through DC link capacitors.
func Doubler(k int) (*Topology, error) {
	if k < 1 {
		return nil, fmt.Errorf("topology: doubler: need k >= 1 stages")
	}
	b := NewBuilder(fmt.Sprintf("doubler %d:1 (%d stages)", 1<<k, k))
	hi := Vin
	for s := 0; s < k; s++ {
		var lo Node
		if s == k-1 {
			lo = Vout
		} else {
			lo = b.NewNode()
			// DC link capacitor stabilizing the intermediate rail.
			b.AddCap(lo, Gnd, fmt.Sprintf("Dc%d", s+1))
		}
		fp := b.NewNode()
		fn := b.NewNode()
		b.AddCap(fp, fn, fmt.Sprintf("F%d", s+1))
		// Alternate stage phasing to balance the two phases.
		ph := Phi1
		if s%2 == 1 {
			ph = Phi2
		}
		b.AddSwitch(fp, hi, ph, fmt.Sprintf("s%d_a", s+1))
		b.AddSwitch(fn, lo, ph, fmt.Sprintf("s%d_b", s+1))
		b.AddSwitch(fp, lo, ph.other(), fmt.Sprintf("s%d_c", s+1))
		b.AddSwitch(fn, Gnd, ph.other(), fmt.Sprintf("s%d_d", s+1))
		hi = lo
	}
	return b.Build(), nil
}

// Fibonacci returns the Fibonacci converter with k stages, realizing a
// Fib(k+2):1 step-down (k=1 -> 2:1, k=2 -> 3:1, k=3 -> 5:1, ...). It is the
// asymptotically ratio-densest two-phase family per capacitor.
func Fibonacci(k int) (*Topology, error) {
	if k < 1 {
		return nil, fmt.Errorf("topology: fibonacci: need k >= 1 stages")
	}
	// Build as a step-up from Vout to Vin (power flows down-conversion).
	// boosted[i] is the node reaching Fib(i+2)*Vout during that stage's
	// boost phase; stage i's cap charges to Fib(i+1)*Vout.
	b := NewBuilder(fmt.Sprintf("fibonacci %d stages", k))
	// Stage bookkeeping: prev = boosted node of stage i-1 (or Vout),
	// prevPrev = boosted node of stage i-2 (or Vout).
	prevPrev := Vout // "stage -1" output = Vout (1x)
	prev := Vout     // "stage 0" output  = Vout (1x)
	for i := 1; i <= k; i++ {
		ph := Phi1 // this stage boosts in ph, charges in the other
		if i%2 == 0 {
			ph = Phi2
		}
		top := b.NewNode()
		bot := b.NewNode()
		b.AddCap(top, bot, fmt.Sprintf("C%d", i))
		// Charge phase: top connects to the previous stage's boosted node
		// (which is boosted in ph.other()), bottom to ground.
		b.AddSwitch(top, prev, ph.other(), fmt.Sprintf("s%d_chg", i))
		b.AddSwitch(bot, Gnd, ph.other(), fmt.Sprintf("s%d_gnd", i))
		// Boost phase: bottom rides on stage i-2's boosted node.
		b.AddSwitch(bot, prevPrev, ph, fmt.Sprintf("s%d_ride", i))
		if i == k {
			// Final stage's boosted top is the high-voltage terminal: Vin.
			b.AddSwitch(top, Vin, ph, fmt.Sprintf("s%d_out", i))
		}
		prevPrev = prev
		prev = top
	}
	return b.Build(), nil
}

// Fib returns the k-th Fibonacci number with Fib(1) = Fib(2) = 1.
func Fib(k int) int {
	a, bb := 1, 1
	for i := 3; i <= k; i++ {
		a, bb = bb, a+bb
	}
	if k <= 0 {
		return 0
	}
	return bb
}
