package topology

import (
	"math"
	"testing"
)

func TestCascadeRatioAndCounts(t *testing.T) {
	a := analyze(t, r(SeriesParallel(2, 1)))
	b := analyze(t, r(SeriesParallel(3, 2)))
	c, err := Cascade("", a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 1/2 * 2/3 = 1/3.
	if math.Abs(c.Ratio-1.0/3.0) > 1e-9 {
		t.Errorf("cascade ratio %v, want 1/3", c.Ratio)
	}
	if c.NumCaps != a.NumCaps+b.NumCaps || c.NumSwitches != a.NumSwitches+b.NumSwitches {
		t.Error("element counts wrong")
	}
	if c.Name == "" {
		t.Error("default name missing")
	}
	if math.Abs(c.InputCharge-c.Ratio) > 1e-9 {
		t.Error("power conservation violated")
	}
}

func TestCascadeMultiplierScaling(t *testing.T) {
	a := analyze(t, r(SeriesParallel(2, 1))) // SumAC = 1/2
	b := analyze(t, r(SeriesParallel(2, 1)))
	c, err := Cascade("4:1 via two 2:1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Stage A scaled by M_B = 1/2: 0.25; stage B unscaled: 0.5.
	want := 0.5*0.5 + 0.5
	if math.Abs(c.SumAC-want) > 1e-9 {
		t.Errorf("cascade SumAC %v, want %v", c.SumAC, want)
	}
	// Compare against the monolithic doubler (same structure): the
	// cascade's SSL metric should match the doubler's flying-cap portion
	// reasonably; both realize 4:1.
	if math.Abs(c.Ratio-0.25) > 1e-9 {
		t.Error("cascade 4:1 ratio wrong")
	}
	// Stage-B element voltages referred to the overall input: a 2:1
	// second stage's cap holds half of ITS input = 1/4 of the overall.
	lastCap := c.CapVoltages[len(c.CapVoltages)-1]
	if math.Abs(lastCap-0.25) > 1e-6 {
		t.Errorf("stage-B cap voltage %v, want 0.25", lastCap)
	}
}

func TestCascadeVersusDirectRatio(t *testing.T) {
	// 3:1 followed by 2:1 gives 6:1 — a ratio no single built-in family
	// provides directly; the cascade synthesizes it.
	a := analyze(t, r(SeriesParallel(3, 1)))
	b := analyze(t, r(SeriesParallel(2, 1)))
	c, err := Cascade("6:1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Ratio-1.0/6.0) > 1e-9 {
		t.Errorf("6:1 cascade ratio %v", c.Ratio)
	}
	// All multipliers positive, voltages within (0, 1].
	for i, m := range c.CapMultipliers {
		if m <= 0 {
			t.Errorf("cap %d multiplier %v", i, m)
		}
		if c.CapVoltages[i] <= 0 || c.CapVoltages[i] > 1 {
			t.Errorf("cap %d voltage %v", i, c.CapVoltages[i])
		}
	}
}

func TestCascadeValidation(t *testing.T) {
	a := analyze(t, r(SeriesParallel(2, 1)))
	if _, err := Cascade("x", nil, a); err == nil {
		t.Error("nil stage must fail")
	}
	bad := *a
	bad.Ratio = 0
	if _, err := Cascade("x", a, &bad); err == nil {
		t.Error("zero ratio must fail")
	}
}
