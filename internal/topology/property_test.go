package topology

import (
	"math"
	"testing"
	"testing/quick"

	"ivory/internal/numeric"
)

// Property: any valid ladder (p, q) yields ratio q/p, conserves power
// (input charge == ratio), and produces positive multiplier sums.
func TestLadderPropertyRandom(t *testing.T) {
	f := func(pRaw, qRaw uint8) bool {
		p := int(pRaw%7) + 2 // 2..8
		q := int(qRaw)%(p-1) + 1
		top, err := Ladder(p, q)
		if err != nil {
			return false
		}
		an, err := top.Analyze()
		if err != nil {
			return false
		}
		want := float64(q) / float64(p)
		if math.Abs(an.Ratio-want) > 1e-6 {
			return false
		}
		if math.Abs(an.InputCharge-an.Ratio) > 1e-5 {
			return false
		}
		return an.SumAC > 0 && an.SumAR > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: scaling has no meaning at the topology level — analyzing twice
// gives identical results (purity / determinism).
func TestAnalyzeDeterministic(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw%5) + 2
		top, err := SeriesParallel(p, 1)
		if err != nil {
			return false
		}
		a1, err1 := top.Analyze()
		a2, err2 := top.Analyze()
		if err1 != nil || err2 != nil {
			return false
		}
		if !numeric.ApproxEqual(a1.Ratio, a2.Ratio, 0) || !numeric.ApproxEqual(a1.SumAC, a2.SumAC, 0) || !numeric.ApproxEqual(a1.SumAR, a2.SumAR, 0) {
			return false
		}
		for i := range a1.CapMultipliers {
			if !numeric.ApproxEqual(a1.CapMultipliers[i], a2.CapMultipliers[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the SSL metric of the series-parallel family is minimal among
// the built-in families at the same ratio (SP is SSL-optimal for its
// ratios).
func TestSeriesParallelSSLOptimalProperty(t *testing.T) {
	for p := 2; p <= 6; p++ {
		sp, err := SeriesParallel(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		anSP, err := sp.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		ld, err := Ladder(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		anLD, err := ld.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if anSP.SumAC > anLD.SumAC+1e-9 {
			t.Errorf("p=%d: SP SumAC %.4f above ladder %.4f", p, anSP.SumAC, anLD.SumAC)
		}
		dk, err := Dickson(p)
		if err != nil {
			t.Fatal(err)
		}
		anDK, err := dk.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if anSP.SumAC > anDK.SumAC+1e-9 {
			t.Errorf("p=%d: SP SumAC %.4f above dickson %.4f", p, anSP.SumAC, anDK.SumAC)
		}
	}
}
