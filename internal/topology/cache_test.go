package topology

import (
	"math"
	"testing"
)

// TestAnalyzeMemoized checks that repeated Analyze calls return the cached
// (pointer-identical) Analysis, and that the cached result equals a fresh
// uncached solve field for field.
func TestAnalyzeMemoized(t *testing.T) {
	top, err := Ladder(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("second Analyze did not return the cached Analysis")
	}
	fresh, err := top.analyze()
	if err != nil {
		t.Fatal(err)
	}
	if fresh == a1 {
		t.Fatal("uncached analyze returned the cached pointer")
	}
	if math.Abs(fresh.Ratio-a1.Ratio) > 0 || math.Abs(fresh.SumAC-a1.SumAC) > 0 || math.Abs(fresh.SumAR-a1.SumAR) > 0 {
		t.Fatalf("cached analysis diverged from a fresh solve: %+v vs %+v", a1, fresh)
	}
	for i := range fresh.CapMultipliers {
		if math.Abs(fresh.CapMultipliers[i]-a1.CapMultipliers[i]) > 0 {
			t.Fatalf("cap multiplier %d diverged", i)
		}
	}
}

// TestAnalyzeCacheKeyDistinguishesNetlists checks that two structurally
// different topologies sharing a name do not collide in the cache.
func TestAnalyzeCacheKeyDistinguishesNetlists(t *testing.T) {
	build := func(stackSwitch bool) *Topology {
		b := NewBuilder("same-name")
		p := b.NewNode()
		n := b.NewNode()
		b.AddCap(p, n, "C1")
		b.AddSwitch(Vin, p, Phi1, "s1")
		b.AddSwitch(n, Vout, Phi1, "s2")
		b.AddSwitch(p, Vout, Phi2, "s3")
		if stackSwitch {
			b.AddSwitch(n, Gnd, Phi2, "s4")
		} else {
			b.AddSwitch(n, Vout, Phi2, "s4")
		}
		return b.Build()
	}
	a, err := build(true).Analyze() // 2:1 divider
	if err != nil {
		t.Fatal(err)
	}
	bAn, err := build(false).Analyze() // cap paralleled with output in phase 2... different circuit
	if err == nil && math.Abs(bAn.Ratio-a.Ratio) <= 1e-12 {
		t.Fatalf("structurally different netlists returned the same cached ratio %g", a.Ratio)
	}
	// Same netlist rebuilt from scratch must hit the cache.
	c, err := build(true).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("identical rebuilt netlist missed the cache")
	}
}

func BenchmarkAnalyzeCached(b *testing.B) {
	top, err := Ladder(7, 3)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := top.Analyze(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeUncached(b *testing.B) {
	top, err := Ladder(7, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.analyze(); err != nil {
			b.Fatal(err)
		}
	}
}
