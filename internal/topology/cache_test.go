package topology

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestAnalyzeCacheStatsCount checks the exported hit/miss telemetry: a
// first-sight Analyze is a miss, the repeat is a hit.
func TestAnalyzeCacheStatsCount(t *testing.T) {
	top := NewBuilder("cache-stats-probe").Build()
	h0, m0 := CacheStats()
	_, _ = top.Analyze() // empty netlist: errors are memoized too
	h1, m1 := CacheStats()
	if m1 != m0+1 || h1 != h0 {
		t.Fatalf("first sight: hits %d->%d misses %d->%d, want one miss", h0, h1, m0, m1)
	}
	_, _ = top.Analyze()
	h2, m2 := CacheStats()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("repeat: hits %d->%d misses %d->%d, want one hit", h1, h2, m1, m2)
	}
}

// TestAnalyzeCacheCapConcurrent floods the memo with unique one-off
// netlists from many goroutines. The reserve-then-store CAS must hold the
// resident entry count exactly equal to analyzeCount and never let it
// overshoot analyzeCacheLimit — the old check-then-store version let N
// concurrent first-sight misses all pass the cap check at limit-1 and
// overshoot by up to the worker count. Run under -race in CI.
func TestAnalyzeCacheCapConcurrent(t *testing.T) {
	// The flood fills the package-global memo to its cap, which would
	// starve every later test of cache slots; drain it on the way out.
	// Tests in this package run sequentially, so the reset cannot race.
	defer func() {
		analyzeCache.Range(func(k, _ any) bool { analyzeCache.Delete(k); return true })
		analyzeCount.Store(0)
	}()
	const workers = 16
	const perWorker = 96 // 1536 unique keys, well past the 512-entry cap
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				// Unique name -> unique cache key; the empty netlist makes
				// the analyze itself trivially cheap (its error is cached).
				top := NewBuilder(fmt.Sprintf("cap-race-%d-%d", w, k)).Build()
				if _, err := top.Analyze(); err == nil {
					t.Error("empty netlist unexpectedly analyzed")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	entries := int64(0)
	analyzeCache.Range(func(_, _ any) bool { entries++; return true })
	count := analyzeCount.Load()
	if count > analyzeCacheLimit {
		t.Fatalf("analyzeCount %d overshot the %d-entry cap", count, analyzeCacheLimit)
	}
	if entries != count {
		t.Fatalf("cache holds %d entries but analyzeCount says %d", entries, count)
	}
	if entries > analyzeCacheLimit {
		t.Fatalf("cache holds %d entries, over the %d cap", entries, analyzeCacheLimit)
	}
}

// TestAnalyzeCacheDuplicateKeyReservesOneSlot hammers one fresh key from
// many goroutines: however the insert race resolves, at most one slot may
// stay reserved for it (losers must return theirs).
func TestAnalyzeCacheDuplicateKeyReservesOneSlot(t *testing.T) {
	before := analyzeCount.Load()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = NewBuilder("dup-key-probe").Build().Analyze()
		}()
	}
	wg.Wait()
	// <= 1, not == 1: the cap-flood test may already have filled the cache,
	// in which case nothing is stored at all.
	if d := analyzeCount.Load() - before; d > 1 {
		t.Fatalf("one key consumed %d slots", d)
	}
}

// TestAnalyzeMemoized checks that repeated Analyze calls return the cached
// (pointer-identical) Analysis, and that the cached result equals a fresh
// uncached solve field for field.
func TestAnalyzeMemoized(t *testing.T) {
	top, err := Ladder(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("second Analyze did not return the cached Analysis")
	}
	fresh, err := top.analyze()
	if err != nil {
		t.Fatal(err)
	}
	if fresh == a1 {
		t.Fatal("uncached analyze returned the cached pointer")
	}
	if math.Abs(fresh.Ratio-a1.Ratio) > 0 || math.Abs(fresh.SumAC-a1.SumAC) > 0 || math.Abs(fresh.SumAR-a1.SumAR) > 0 {
		t.Fatalf("cached analysis diverged from a fresh solve: %+v vs %+v", a1, fresh)
	}
	for i := range fresh.CapMultipliers {
		if math.Abs(fresh.CapMultipliers[i]-a1.CapMultipliers[i]) > 0 {
			t.Fatalf("cap multiplier %d diverged", i)
		}
	}
}

// TestAnalyzeCacheKeyDistinguishesNetlists checks that two structurally
// different topologies sharing a name do not collide in the cache.
func TestAnalyzeCacheKeyDistinguishesNetlists(t *testing.T) {
	build := func(stackSwitch bool) *Topology {
		b := NewBuilder("same-name")
		p := b.NewNode()
		n := b.NewNode()
		b.AddCap(p, n, "C1")
		b.AddSwitch(Vin, p, Phi1, "s1")
		b.AddSwitch(n, Vout, Phi1, "s2")
		b.AddSwitch(p, Vout, Phi2, "s3")
		if stackSwitch {
			b.AddSwitch(n, Gnd, Phi2, "s4")
		} else {
			b.AddSwitch(n, Vout, Phi2, "s4")
		}
		return b.Build()
	}
	a, err := build(true).Analyze() // 2:1 divider
	if err != nil {
		t.Fatal(err)
	}
	bAn, err := build(false).Analyze() // cap paralleled with output in phase 2... different circuit
	if err == nil && math.Abs(bAn.Ratio-a.Ratio) <= 1e-12 {
		t.Fatalf("structurally different netlists returned the same cached ratio %g", a.Ratio)
	}
	// Same netlist rebuilt from scratch must hit the cache.
	c, err := build(true).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("identical rebuilt netlist missed the cache")
	}
}

func BenchmarkAnalyzeCached(b *testing.B) {
	top, err := Ladder(7, 3)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := top.Analyze(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeUncached(b *testing.B) {
	top, err := Ladder(7, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.analyze(); err != nil {
			b.Fatal(err)
		}
	}
}
