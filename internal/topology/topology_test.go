package topology

import (
	"math"
	"testing"
)

// genResult lets multi-value generator calls forward into analyze:
// analyze(t, r(SeriesParallel(3, 1))).
type genResult struct {
	top *Topology
	err error
}

func r(top *Topology, err error) genResult { return genResult{top, err} }

func analyze(t *testing.T, res genResult) *Analysis {
	t.Helper()
	top, err := res.top, res.err
	if err != nil {
		t.Fatal(err)
	}
	an, err := top.Analyze()
	if err != nil {
		t.Fatalf("%s: %v", top.Name, err)
	}
	return an
}

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6f, want %.6f", name, got, want)
	}
}

func TestSeriesParallel2to1(t *testing.T) {
	an := analyze(t, r(SeriesParallel(2, 1)))
	wantClose(t, "ratio", an.Ratio, 0.5, 1e-6)
	// One fly cap, a_c = 1/2.
	wantClose(t, "SumAC", an.SumAC, 0.5, 1e-6)
	// 4 switches each carrying 1/2 per unit output charge.
	wantClose(t, "SumAR", an.SumAR, 2.0, 1e-6)
	if an.NumCaps != 1 || an.NumSwitches != 4 {
		t.Errorf("element counts: %d caps, %d switches", an.NumCaps, an.NumSwitches)
	}
	// Cap holds Vin/2.
	wantClose(t, "capV", an.CapVoltages[0], 0.5, 1e-6)
}

func TestSeriesParallelClassicRatios(t *testing.T) {
	for p := 2; p <= 6; p++ {
		an := analyze(t, r(SeriesParallel(p, 1)))
		wantClose(t, an.Name+" ratio", an.Ratio, 1/float64(p), 1e-6)
		// Known closed forms: SumAC = (p-1)/p, SumAR = (3p-2)/p.
		wantClose(t, an.Name+" SumAC", an.SumAC, float64(p-1)/float64(p), 1e-6)
		wantClose(t, an.Name+" SumAR", an.SumAR, float64(3*p-2)/float64(p), 1e-6)
	}
}

func TestSeriesParallelFractionalRatios(t *testing.T) {
	for p := 2; p <= 6; p++ {
		an := analyze(t, r(SeriesParallel(p, p-1)))
		wantClose(t, an.Name+" ratio", an.Ratio, float64(p-1)/float64(p), 1e-6)
		wantClose(t, an.Name+" SumAC", an.SumAC, float64(p-1)/float64(p), 1e-6)
		wantClose(t, an.Name+" SumAR", an.SumAR, float64(3*p-2)/float64(p), 1e-6)
		// Every cap holds Vin/p.
		for i, v := range an.CapVoltages {
			wantClose(t, an.Name+" capV", v, 1/float64(p), 1e-6)
			_ = i
		}
	}
}

func TestSeriesParallelRejectsUnsupported(t *testing.T) {
	if _, err := SeriesParallel(5, 2); err == nil {
		t.Error("5:2 should not be series-parallel")
	}
	if _, err := SeriesParallel(1, 1); err == nil {
		t.Error("p < 2 must be rejected")
	}
	if _, err := SeriesParallel(3, 3); err == nil {
		t.Error("q >= p must be rejected")
	}
}

func TestLadderRatios(t *testing.T) {
	cases := []struct{ p, q int }{
		{2, 1}, {3, 1}, {3, 2}, {4, 1}, {4, 3}, {5, 2}, {5, 3}, {7, 3},
	}
	for _, c := range cases {
		an := analyze(t, r(Ladder(c.p, c.q)))
		wantClose(t, an.Name+" ratio", an.Ratio, float64(c.q)/float64(c.p), 1e-6)
	}
}

func TestLadderRejectsBadArgs(t *testing.T) {
	if _, err := Ladder(1, 1); err == nil {
		t.Error("p < 2 must be rejected")
	}
	if _, err := Ladder(4, 4); err == nil {
		t.Error("q >= p must be rejected")
	}
	if _, err := Ladder(4, 0); err == nil {
		t.Error("q < 1 must be rejected")
	}
}

func TestLadderCostsMoreThanSeriesParallel(t *testing.T) {
	// For the same 3:1 ratio the ladder's SSL metric must be at least the
	// series-parallel one; SP is SSL-optimal in this ratio family.
	sp := analyze(t, r(SeriesParallel(3, 1)))
	ld := analyze(t, r(Ladder(3, 1)))
	if ld.SumAC < sp.SumAC-1e-9 {
		t.Errorf("ladder SumAC %.4f unexpectedly beats series-parallel %.4f", ld.SumAC, sp.SumAC)
	}
}

func TestDicksonRatios(t *testing.T) {
	for p := 2; p <= 6; p++ {
		an := analyze(t, r(Dickson(p)))
		wantClose(t, an.Name+" ratio", an.Ratio, 1/float64(p), 1e-6)
	}
	if _, err := Dickson(1); err == nil {
		t.Error("Dickson(1) must be rejected")
	}
}

func TestDoublerRatios(t *testing.T) {
	for k := 1; k <= 4; k++ {
		an := analyze(t, r(Doubler(k)))
		wantClose(t, an.Name+" ratio", an.Ratio, 1/float64(int(1)<<k), 1e-6)
	}
	if _, err := Doubler(0); err == nil {
		t.Error("Doubler(0) must be rejected")
	}
}

func TestFibonacciRatios(t *testing.T) {
	for k := 1; k <= 5; k++ {
		an := analyze(t, r(Fibonacci(k)))
		want := 1 / float64(Fib(k+2))
		wantClose(t, an.Name+" ratio", an.Ratio, want, 1e-6)
	}
	if _, err := Fibonacci(0); err == nil {
		t.Error("Fibonacci(0) must be rejected")
	}
}

func TestFibHelper(t *testing.T) {
	want := []int{0, 1, 1, 2, 3, 5, 8, 13}
	for k, w := range want {
		if Fib(k) != w {
			t.Errorf("Fib(%d) = %d, want %d", k, Fib(k), w)
		}
	}
}

// Power conservation: for every generated topology, the ideal input charge
// per unit output charge equals the conversion ratio.
func TestInputChargeEqualsRatio(t *testing.T) {
	var tops []*Topology
	add := func(tp *Topology, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tops = append(tops, tp)
	}
	for p := 2; p <= 5; p++ {
		add(SeriesParallel(p, 1))
		add(SeriesParallel(p, p-1))
		for q := 1; q < p; q++ {
			add(Ladder(p, q))
		}
		add(Dickson(p))
	}
	for k := 1; k <= 4; k++ {
		add(Doubler(k))
		add(Fibonacci(k))
	}
	for _, tp := range tops {
		an, err := tp.Analyze()
		if err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		if math.Abs(an.InputCharge-an.Ratio) > 1e-5 {
			t.Errorf("%s: input charge %.6f != ratio %.6f (power conservation violated)",
				tp.Name, an.InputCharge, an.Ratio)
		}
	}
}

// Sanity across all families: multipliers non-negative, voltages within
// [0, 1] of Vin, switch blocking voltages bounded by Vin.
func TestAnalysisInvariants(t *testing.T) {
	var tops []*Topology
	add := func(tp *Topology, err error) {
		if err == nil {
			tops = append(tops, tp)
		}
	}
	for p := 2; p <= 6; p++ {
		add(SeriesParallel(p, 1))
		add(SeriesParallel(p, p-1))
		for q := 1; q < p; q++ {
			add(Ladder(p, q))
		}
		add(Dickson(p))
	}
	for _, tp := range tops {
		an, err := tp.Analyze()
		if err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		for i, m := range an.CapMultipliers {
			if m < -1e-12 {
				t.Errorf("%s cap %d: negative multiplier %v", tp.Name, i, m)
			}
		}
		for i, v := range an.CapVoltages {
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s cap %d: voltage %v outside [0,1]", tp.Name, i, v)
			}
		}
		for i, v := range an.SwitchBlockVoltages {
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s switch %d: blocking voltage %v outside [0,1]", tp.Name, i, v)
			}
		}
		if an.SumAC <= 0 || an.SumAR <= 0 {
			t.Errorf("%s: non-positive multiplier sums", tp.Name)
		}
	}
}

func TestDegenerateTopologies(t *testing.T) {
	// Empty netlist.
	b := NewBuilder("empty")
	if _, err := b.Build().Analyze(); err == nil {
		t.Error("empty netlist must fail")
	}
	// Switch shorting Vin to Gnd in phase 1: inconsistent KVL.
	b = NewBuilder("short")
	b.AddSwitch(Vin, Gnd, Phi1, "bad")
	b.AddCap(Vin, Vout, "c")
	if _, err := b.Build().Analyze(); err == nil {
		t.Error("shorted input must fail")
	}
	// Output never driven: a cap dangling between internal nodes only.
	b = NewBuilder("floating")
	n1 := b.NewNode()
	n2 := b.NewNode()
	b.AddCap(n1, n2, "c")
	b.AddSwitch(n1, Vin, Phi1, "s1")
	b.AddSwitch(n2, Gnd, Phi1, "s2")
	if _, err := b.Build().Analyze(); err == nil {
		t.Error("undriven output must fail")
	}
}

func TestCustomAnalysis(t *testing.T) {
	an, err := Custom("user 4:1", 0.25, []float64{0.5, 0.25}, []float64{0.25, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "SumAC", an.SumAC, 0.75, 1e-12)
	wantClose(t, "SumAR", an.SumAR, 1.0, 1e-12)
	if an.NumCaps != 2 || an.NumSwitches != 3 {
		t.Error("custom element counts wrong")
	}
	if _, err := Custom("bad", -1, []float64{1}, []float64{1}); err == nil {
		t.Error("negative ratio must fail")
	}
	if _, err := Custom("bad", 0.5, nil, []float64{1}); err == nil {
		t.Error("empty vectors must fail")
	}
	if _, err := Custom("bad", 0.5, []float64{-1}, []float64{1}); err == nil {
		t.Error("negative multipliers must fail")
	}
}

func TestBuilderNodes(t *testing.T) {
	b := NewBuilder("nodes")
	n1 := b.NewNode()
	n2 := b.NewNode()
	if n1 == n2 || n1 < numReserved || n2 < numReserved {
		t.Error("NewNode must return fresh non-reserved nodes")
	}
	b.AddCap(n1, n2, "c")
	tp := b.Build()
	if tp.NumNodes() != numReserved+2 {
		t.Errorf("NumNodes = %d", tp.NumNodes())
	}
}

// The 3:2 series-parallel converter the paper validates against (Fig. 7
// left): ratio 2/3, caps hold Vin/3.
func TestPaperValidationTopologies(t *testing.T) {
	an32 := analyze(t, r(SeriesParallel(3, 2)))
	wantClose(t, "3:2 ratio", an32.Ratio, 2.0/3.0, 1e-6)
	an21 := analyze(t, r(SeriesParallel(2, 1)))
	wantClose(t, "2:1 ratio", an21.Ratio, 0.5, 1e-6)
	an31 := analyze(t, r(SeriesParallel(3, 1)))
	wantClose(t, "3:1 ratio", an31.Ratio, 1.0/3.0, 1e-6)
	an41 := analyze(t, r(SeriesParallel(4, 1)))
	wantClose(t, "4:1 ratio", an41.Ratio, 0.25, 1e-6)
}
