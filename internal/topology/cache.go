package topology

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Analyze results are memoized package-wide: every Explore call re-derives
// the same Analysis for the same conversion ratio (the generators are
// deterministic), and the KVL/KCL least-squares solves dominate the cost of
// enumerating the SC design space. The cache key is the canonical netlist —
// name, node count, capacitor terminals, switch terminals and phases — so
// two structurally different topologies never collide even if a user reuses
// a name. Element labels are excluded: they do not influence the analysis.
//
// Cached values (including errors, which are just as deterministic) are
// shared across callers and goroutines; Analysis is treated as read-only
// everywhere in the tree, which the determinism tests exercise under the
// race detector.
var (
	analyzeCache sync.Map // canonical key -> cachedAnalysis
	analyzeCount atomic.Int64
)

// analyzeCacheLimit bounds the memo so adversarial streams of one-off
// custom netlists cannot grow it without bound; past the limit, analyses
// are computed but not stored.
const analyzeCacheLimit = 512

type cachedAnalysis struct {
	an  *Analysis
	err error
}

// cacheKey serializes the structural identity of the netlist.
func (t *Topology) cacheKey() string {
	var b strings.Builder
	b.Grow(len(t.Name) + 8*len(t.Caps) + 12*len(t.Switches) + 16)
	b.WriteString(t.Name)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(t.numNodes))
	for _, c := range t.Caps {
		b.WriteByte('c')
		b.WriteString(strconv.Itoa(int(c.Pos)))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(c.Neg)))
	}
	for _, sw := range t.Switches {
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(int(sw.A)))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(sw.B)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(sw.Phase)))
	}
	return b.String()
}

// analyzeCached returns the memoized analysis for t, computing and
// (size permitting) storing it on first sight.
func (t *Topology) analyzeCached() (*Analysis, error) {
	key := t.cacheKey()
	if v, ok := analyzeCache.Load(key); ok {
		c := v.(cachedAnalysis)
		return c.an, c.err
	}
	an, err := t.analyze()
	if analyzeCount.Load() < analyzeCacheLimit {
		if _, loaded := analyzeCache.LoadOrStore(key, cachedAnalysis{an: an, err: err}); !loaded {
			analyzeCount.Add(1)
		}
	}
	return an, err
}
