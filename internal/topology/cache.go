package topology

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Analyze results are memoized package-wide: every Explore call re-derives
// the same Analysis for the same conversion ratio (the generators are
// deterministic), and the KVL/KCL least-squares solves dominate the cost of
// enumerating the SC design space. The cache key is the canonical netlist —
// name, node count, capacitor terminals, switch terminals and phases — so
// two structurally different topologies never collide even if a user reuses
// a name. Element labels are excluded: they do not influence the analysis.
//
// Cached values (including errors, which are just as deterministic) are
// shared across callers and goroutines; Analysis is treated as read-only
// everywhere in the tree, which the determinism tests exercise under the
// race detector.
var (
	analyzeCache sync.Map // canonical key -> cachedAnalysis
	analyzeCount atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
)

// CacheStats returns the cumulative hit/miss counters of the package-wide
// Analyze memo. The counters only grow; callers wanting per-run telemetry
// (core.Explore's Stats does) snapshot before and diff after. Concurrent
// runs share the counters, so a diff taken while another exploration is in
// flight attributes its lookups too — the numbers are telemetry, not an
// accounting invariant.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// analyzeCacheLimit bounds the memo so adversarial streams of one-off
// custom netlists cannot grow it without bound; past the limit, analyses
// are computed but not stored.
const analyzeCacheLimit = 512

type cachedAnalysis struct {
	an  *Analysis
	err error
}

// cacheKey serializes the structural identity of the netlist.
func (t *Topology) cacheKey() string {
	var b strings.Builder
	b.Grow(len(t.Name) + 8*len(t.Caps) + 12*len(t.Switches) + 16)
	b.WriteString(t.Name)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(t.numNodes))
	for _, c := range t.Caps {
		b.WriteByte('c')
		b.WriteString(strconv.Itoa(int(c.Pos)))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(c.Neg)))
	}
	for _, sw := range t.Switches {
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(int(sw.A)))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(sw.B)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(sw.Phase)))
	}
	return b.String()
}

// analyzeCached returns the memoized analysis for t, computing and
// (size permitting) storing it on first sight.
//
// The size cap is enforced by reserving a slot before storing: a plain
// "check count, then LoadOrStore" lets N concurrent first-sight misses all
// pass the check at count limit-1 and overshoot the bound by up to the
// worker count. The CAS increment below admits exactly one storer per free
// slot; a storer that then loses the LoadOrStore race (another goroutine
// inserted the same key first) returns its reservation, so analyzeCount
// always equals the number of entries actually resident.
func (t *Topology) analyzeCached() (*Analysis, error) {
	key := t.cacheKey()
	if v, ok := analyzeCache.Load(key); ok {
		cacheHits.Add(1)
		c := v.(cachedAnalysis)
		return c.an, c.err
	}
	cacheMisses.Add(1)
	an, err := t.analyze()
	for {
		n := analyzeCount.Load()
		if n >= analyzeCacheLimit {
			// Cache full: computed but not stored, as before.
			return an, err
		}
		if !analyzeCount.CompareAndSwap(n, n+1) {
			continue // another goroutine moved the count; re-check the cap
		}
		if _, loaded := analyzeCache.LoadOrStore(key, cachedAnalysis{an: an, err: err}); loaded {
			analyzeCount.Add(-1) // lost the insert race; give the slot back
		}
		return an, err
	}
}
