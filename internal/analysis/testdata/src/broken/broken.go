// Package broken is a lint-loader corpus fixture: it deliberately fails
// to typecheck (undefined identifier) while still containing a finding a
// syntactic analyzer can reach, pinning the degraded-typecheck path.
package broken

var _ = undefinedThing

// Close compares floats for equality so floatcmp has something to report
// even though the package carries a type error.
func Close() float64 {
	x := 0.1
	y := 0.2
	if x == y {
		return 1
	}
	return 0
}
