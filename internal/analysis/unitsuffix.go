package analysis

import (
	"go/ast"
	"strings"
	"unicode"
)

// UnitSuffixPackages lists the import-path suffixes of the packages whose
// exported float64 API surface must carry unit markers.
var UnitSuffixPackages = []string{
	"internal/tech",
	"internal/sc",
	"internal/buck",
	"internal/ldo",
}

// UnitWords is the configurable allowlist of unit-bearing name tokens
// (matched case-insensitively against CamelCase tokens of the name). The
// driver extends it via -unitsuffix.allow.
var UnitWords = map[string]bool{
	// frequencies
	"hz": true, "khz": true, "mhz": true, "ghz": true,
	// voltages / currents
	"mv": true, "uv": true, "a": true, "ma": true, "ua": true,
	// impedances
	"ohm": true, "mohm": true, "kohm": true,
	// capacitance / inductance
	"pf": true, "nf": true, "uf": true, "ff": true, "nh": true, "uh": true, "ph": true,
	// power / energy
	"mw": true, "uw": true, "nw": true, "joule": true,
	// times
	"ns": true, "us": true, "ps": true, "ms": true, "sec": true, "seconds": true,
	// geometry
	"m2": true, "mm2": true, "um2": true, "um": true, "nm": true, "mm": true, "m": true,
	"width": true, "farad": true, "volt": true, "amp": true, "watt": true, "henry": true,
	// named rails: Vdd is volts by construction
	"vdd": true,
	// dimensionless by convention
	"eff": true, "efficiency": true, "duty": true, "ratio": true, "factor": true,
	"pct": true, "percent": true, "gain": true, "db": true, "multiplier": true,
}

// unitSymbols are the single-letter electrical quantity symbols accepted
// as CamelCase tokens (VIn, CTotal, GHigh, IMax, LEff, ...): the
// codebase's established prefix convention.
var unitSymbols = map[string]bool{
	"V": true, "I": true, "C": true, "G": true, "L": true, "R": true,
	"F": true, "H": true, "W": true, "P": true, "Q": true, "T": true, "E": true,
	"J": true,
}

// leadSymbols extends the same convention to all-lowercase parameter
// names ("fsw", "vout", "iload"). 'a' is deliberately absent so that
// "area" does not pass as amperes.
var leadSymbols = map[byte]bool{
	'v': true, 'i': true, 'c': true, 'g': true, 'l': true, 'r': true,
	'f': true, 'h': true, 'w': true, 'p': true, 'q': true, 't': true,
}

// UnitSuffix flags exported float64 struct fields and parameters of
// exported functions in the device/model packages whose names carry no
// unit information.
//
// Ivory mixes volts, hertz, farads, ohms, watts, and square metres in
// adjacent fields; the BAG-style generator bugs the paper's domain is
// littered with come precisely from unit-ambiguous parameters. A float64
// name must either contain a unit token (Hz, Ohm, M2, Eff, ...) or start
// with a quantity-symbol letter (VIn, CTotal, fsw, iLoad). Names that
// are genuinely dimensionless can extend the allowlist via
// -unitsuffix.allow or carry a //lint:ignore unitsuffix comment.
var UnitSuffix = &Analyzer{
	Name: "unitsuffix",
	Doc:  "flag exported float64 fields/params without a unit-bearing name token",
	Run:  runUnitSuffix,
}

func runUnitSuffix(pass *Pass) error {
	if !pathMatches(pass.Pkg.Path(), UnitSuffixPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() || pass.InTestFile(ts.Pos()) {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						if !IsFloat(pass.TypeOf(fld.Type)) {
							continue
						}
						for _, name := range fld.Names {
							if name.IsExported() && !hasUnitToken(name.Name) {
								pass.Reportf(name.Pos(),
									"exported float64 field %s.%s carries no unit in its name; add a unit token (see -unitsuffix.allow) or a quantity-symbol prefix",
									ts.Name.Name, name.Name)
							}
						}
					}
				}
			case *ast.FuncDecl:
				if !d.Name.IsExported() || pass.InTestFile(d.Pos()) {
					continue
				}
				for _, fld := range d.Type.Params.List {
					if !IsFloat(pass.TypeOf(fld.Type)) {
						continue
					}
					for _, name := range fld.Names {
						if !hasUnitToken(name.Name) {
							pass.Reportf(name.Pos(),
								"float64 parameter %s of exported %s carries no unit in its name; add a unit token or a quantity-symbol prefix",
								name.Name, d.Name.Name)
						}
					}
				}
			}
		}
	}
	return nil
}

// hasUnitToken reports whether any CamelCase token of name is a known
// unit word or quantity symbol.
func hasUnitToken(name string) bool {
	toks := camelTokens(name)
	for i, t := range toks {
		if UnitWords[strings.ToLower(t)] {
			return true
		}
		if len(t) == 1 && unitSymbols[t] {
			return true
		}
		// Leading lowercase quantity-symbol letter: the parameter
		// convention used throughout the codebase (iLoad, vLo, fsw, l0).
		if i == 0 && len(t) == 1 && leadSymbols[t[0]] {
			return true
		}
	}
	// All-lowercase compounds ("fsw", "vout", "iload") pass on a leading
	// quantity-symbol letter.
	if len(toks) == 1 && len(name) > 1 && name == strings.ToLower(name) && leadSymbols[name[0]] {
		return true
	}
	return false
}

// camelTokens splits a Go identifier into CamelCase tokens; digits split
// off into their own tokens ("l0" -> ["l", "0"], "AreaMM2" -> ["Area",
// "MM", "2"] ... with the run-of-caps rule "MM2" -> ["MM2"] kept whole).
func camelTokens(name string) []string {
	var toks []string
	runes := []rune(name)
	start := 0
	for i := 1; i <= len(runes); i++ {
		if i == len(runes) {
			toks = append(toks, string(runes[start:i]))
			break
		}
		prev, cur := runes[i-1], runes[i]
		boundary := false
		switch {
		case unicode.IsDigit(cur) != unicode.IsDigit(prev):
			// letter<->digit transition stays attached when the letter run
			// is upper-case (unit tokens like M2, MM2); splits otherwise.
			boundary = !unicode.IsUpper(prev) && !unicode.IsDigit(prev)
		case unicode.IsUpper(cur) && !unicode.IsUpper(prev):
			boundary = true
		case unicode.IsUpper(prev) && unicode.IsUpper(cur) && i+1 < len(runes) && unicode.IsLower(runes[i+1]):
			// "ABCd" -> "AB" + "Cd"
			boundary = true
		}
		if boundary {
			toks = append(toks, string(runes[start:i]))
			start = i
		}
	}
	return toks
}
