// Package analysis is Ivory's stdlib-only static-analysis framework.
//
// The paper's central claim — SPICE-class accuracy at 10^3–10^5× speed —
// only holds if the model code never silently produces NaN/Inf
// efficiencies, never compares float64 with ==, and keeps physical units
// straight. The analyzers in this package encode those invariants as
// machine-checked rules; cmd/ivory-lint runs them over the whole module
// and gates CI.
//
// The framework deliberately uses nothing outside the standard library
// (go/ast, go/parser, go/types, go/importer): go.mod stays
// dependency-free. The shape mirrors golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function that inspects one typechecked package
// through a Pass and reports Diagnostics — but is much smaller.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -disable flags, and
	// //lint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a short human-readable description of what the analyzer
	// reports and why.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf. Returning an error aborts the whole lint run (use it
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the name of the analyzer that produced it.
	Analyzer string
	// Message describes the finding.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one typechecked package through one analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token.Pos values to file positions.
	Fset *token.FileSet
	// Files are the parsed source files of the package, tests included.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info holds the type information recorded during checking.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. API-hygiene
// analyzers (unitsuffix, nonfinite) skip test files; correctness analyzers
// (floatcmp, droppederr, powsquare) do not.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.Position(pos).Filename
	return len(f) >= len("_test.go") && f[len(f)-len("_test.go"):] == "_test.go"
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	// Idents on the left of := are definitions, not typed expressions;
	// resolve them through their object like types.Info.TypeOf does.
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// IsFloat reports whether t's underlying type is a floating-point basic
// type (float32, float64, or an untyped float constant).
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// CalleeName returns the bare name of a call's callee — "IsNaN" for
// math.IsNaN(x), "Close" for f.Close(), "foo" for foo() — or "" when the
// callee is not an identifier or selector (e.g. a call of a call).
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// CalleeFunc resolves the called function or method object, or nil for
// builtins, conversions, and function-valued expressions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}
